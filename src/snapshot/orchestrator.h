#ifndef SILKMOTH_SNAPSHOT_ORCHESTRATOR_H_
#define SILKMOTH_SNAPSHOT_ORCHESTRATOR_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "snapshot/shard_runner.h"

namespace silkmoth {

/// Process supervision for the out-of-process snapshot pipeline
/// (`build → shard-run × N → merge`): the orchestrator forks/execs one
/// `shard-run` worker per shard under bounded parallelism, enforces a
/// per-shard wall-clock deadline, classifies every failure (non-zero exit,
/// signal/crash, timeout, corrupt or truncated result file), and retries
/// failed shards with capped exponential backoff plus deterministic
/// jitter. Retries are safe because shard-result writes are atomic
/// (AtomicFileWriter's .tmp + rename) and shard runs are idempotent — a
/// re-run shard produces byte-identical output, so a fault-then-retry run
/// merges to exactly the fault-free stream. On exhausted retries the
/// caller either fails strict (per-shard diagnostics, non-zero exit) or
/// degrades gracefully via MergeShardResults' partial mode. Every run
/// emits a machine-readable RunReport for the future serve and
/// workload-harness lanes.

/// How one worker attempt ended — the orchestrator's failure taxonomy.
enum class ShardOutcome {
  kSuccess,       ///< Exit 0 and the result file loaded clean.
  kExitNonZero,   ///< Worker exited with a non-zero status.
  kSignal,        ///< Worker died on a signal (crash, abort, kill).
  kTimeout,       ///< Worker overran the deadline and was SIGKILLed.
  kCorruptResult, ///< Worker exited 0 but its result file was missing,
                  ///< truncated, or malformed.
  kSpawnFailure,  ///< fork/exec itself failed.
};

/// Stable lower-case name of a ShardOutcome (used in reports and logs).
const char* ShardOutcomeName(ShardOutcome outcome);

/// A test-only injection plan entry: arm `fault` (a SILKMOTH_FAULT spec
/// string) in the environment of shard `shard`'s attempt number `attempt`
/// (1-based; 0 = every attempt). This is how the fault matrix drives
/// deterministic per-attempt failures through real worker processes.
struct FaultPlan {
  uint32_t shard = 0;   ///< Target shard id.
  int attempt = 0;      ///< 1-based attempt to arm; 0 arms every attempt.
  std::string fault;    ///< SILKMOTH_FAULT spec handed to the worker.
};

/// Parses "shard=K,attempt=N,fault=SITE:ACTION[:...]" (the hidden
/// `--inject` flag's grammar) into `*out`. Returns "" on success, else a
/// one-line error.
std::string ParseFaultPlan(const std::string& text, FaultPlan* out);

/// Everything RunSupervised needs to drive one supervised pipeline run.
struct OrchestratorOptions {
  std::string worker_binary;   ///< Path to the silkmoth_cli binary to exec.
  std::string snapshot_path;   ///< Snapshot the workers load.
  std::string result_dir;      ///< Directory for result files + worker logs.
  std::string query_path;      ///< External query payload ("" = self-join).
  /// Extra worker flags forwarded verbatim (metric/phi/delta/threads/...).
  std::vector<std::string> worker_flags;
  uint32_t num_shards = 0;     ///< Shard count of the snapshot.
  int max_parallel = 0;        ///< Concurrent workers; 0 = min(shards, 4).
  int max_attempts = 3;        ///< Attempts per shard (first try + retries).
  double shard_deadline_seconds = 0.0;  ///< Per-attempt wall clock; 0 = off.
  double backoff_base_seconds = 0.05;   ///< First retry's base wait.
  double backoff_cap_seconds = 2.0;     ///< Upper bound on any wait.
  uint64_t backoff_seed = 0;   ///< Jitter seed (deterministic given seed).
  std::vector<FaultPlan> injections;  ///< Test-only per-attempt fault arming.
  /// Cooperative cancellation (the CLI's SIGTERM handler sets it): when the
  /// flag goes true, the supervisor SIGKILLs and reaps every active worker
  /// — none outlives it — marks unfinished shards failed, and returns with
  /// the report reflecting the abort. nullptr = never cancelled.
  const std::atomic<bool>* cancel = nullptr;
};

/// One worker attempt in the run report.
struct AttemptRecord {
  int attempt = 0;             ///< 1-based attempt number.
  ShardOutcome outcome = ShardOutcome::kSuccess;  ///< How it ended.
  int code = 0;                ///< Exit code or signal number (0 otherwise).
  double seconds = 0.0;        ///< Wall clock of the attempt itself.
  double backoff_seconds = 0.0;  ///< Wait scheduled *after* this attempt.
  std::string detail;          ///< One-line diagnostic ("" on success).
};

/// One shard's full supervision history.
struct ShardRunRecord {
  uint32_t shard = 0;          ///< Shard id.
  bool ok = false;             ///< True when some attempt succeeded.
  std::string result_path;     ///< Where the shard's result file lives.
  std::vector<AttemptRecord> attempts;  ///< Every attempt, in order.
};

/// Machine-readable summary of one supervised run. ToJson() is the
/// contract consumed by tests today and the serve/workload-harness lanes
/// next; docs/CLI.md documents the schema.
struct RunReport {
  bool ok = false;             ///< Every shard produced a clean result.
  uint32_t num_shards = 0;     ///< Shard count of the run.
  size_t attempts_total = 0;   ///< Worker processes launched.
  size_t retries = 0;          ///< Attempts beyond each shard's first.
  size_t timeouts = 0;         ///< Attempts killed for overrunning.
  double wall_seconds = 0.0;   ///< Supervision wall clock, end to end.
  std::vector<uint32_t> failed_shards;  ///< Shards with no successful
                                        ///< attempt, ascending.
  std::vector<ShardRunRecord> shards;   ///< Per-shard histories, by id.

  /// Serializes the report as a single JSON object (schema in
  /// docs/CLI.md, "Run report").
  std::string ToJson() const;
};

/// The capped-exponential-backoff-with-jitter schedule: the wait before
/// attempt `next_attempt` (2-based — there is no wait before the first
/// attempt) of shard `shard`. Deterministic in (seed, shard, attempt):
/// base doubles per prior failure, is clamped to `cap`, and jitter scales
/// the result into [0.5, 1.0]× so concurrent retries spread out instead
/// of stampeding. Exposed for the scheduling unit test.
double BackoffSeconds(int next_attempt, uint32_t shard, double base,
                      double cap, uint64_t seed);

/// Runs the supervised pipeline: launches shard-run workers for every
/// shard of `options.snapshot_path` under the policy in `options`,
/// retries per-shard failures, and fills `*report` with the full
/// supervision history (always, success or not). For every shard whose
/// final attempt succeeded, the loaded ShardResult is appended to
/// `*results` (ascending shard id). Returns "" when supervision ran to
/// completion — check `report->ok` / `report->failed_shards` for the
/// verdict — or a one-line error when the run could not be supervised at
/// all (unsupported platform, unusable result directory).
std::string RunSupervised(const OrchestratorOptions& options,
                          RunReport* report,
                          std::vector<ShardResult>* results);

}  // namespace silkmoth

#endif  // SILKMOTH_SNAPSHOT_ORCHESTRATOR_H_
