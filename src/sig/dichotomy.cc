#include "sig/greedy_internal.h"
#include "sig/scheme.h"
#include "sig/simthresh.h"
#include "text/similarity.h"

namespace silkmoth {

Signature DichotomySignature(const SetRecord& set, const InvertedIndex& index,
                             const SchemeParams& params) {
  using sig_internal::CollectTokens;
  using sig_internal::RunGreedy;

  const std::vector<ElementUnits> units = MakeElementUnits(set, params.phi);
  const std::vector<sig_internal::TokenOcc> tokens =
      CollectTokens(units, index);

  // Completion requirement per element: once an element holds b_i selected
  // units it is a valid sim-thresh set and the remaining tokens become free
  // (Section 6.4). At α = 0 completion is unreachable and this degenerates
  // to the weighted scheme, matching Section 8.2's observation.
  std::vector<size_t> completion(units.size());
  for (size_t i = 0; i < units.size(); ++i) {
    completion[i] = SimThreshUnits(units[i], params.alpha);
  }

  sig_internal::GreedyResult greedy =
      RunGreedy(units, tokens, params.theta, completion);

  Signature sig;
  const size_t n = units.size();
  sig.probe.resize(n);
  sig.miss_bound.resize(n);
  sig.alpha_protected.assign(n, 0);
  std::vector<double> li_bound(n);
  for (size_t i = 0; i < n; ++i) {
    sig.probe[i] = std::move(greedy.state[i].chosen);
    const double kb = units[i].BoundAfter(greedy.state[i].selected_units);
    if (greedy.state[i].complete) {
      sig.alpha_protected[i] = 1;
      sig.miss_bound[i] = 0.0;  // Missing l_i ⇒ φ < α ⇒ φ_α = 0.
    } else {
      sig.miss_bound[i] = kb;
    }
    li_bound[i] = kb;
  }
  sig.valid = greedy.reached;
  FinalizeSignature(&sig, params, li_bound);
  return sig;
}

}  // namespace silkmoth
