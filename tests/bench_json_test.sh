#!/usr/bin/env bash
# BENCH_*.json contract test: `silkmoth_cli bench` must list the registry,
# emit schema-valid JSON (validated by tests/bench_schema_check.py), keep
# every field outside the top-level "timing" key byte-reproducible across
# same-spec runs, and fail with the documented exit codes on misuse.
#
# Usage: bench_json_test.sh /path/to/silkmoth_cli
set -euo pipefail

CLI="${1:?usage: bench_json_test.sh /path/to/silkmoth_cli}"
CHECK="$(cd "$(dirname "$0")" && pwd)/bench_schema_check.py"
DIFF="$(cd "$(dirname "$0")" && pwd)/bench_report_diff.py"
TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

fail() { echo "FAIL: $*" >&2; exit 1; }

command -v python3 > /dev/null || { echo "skip: python3 not found"; exit 0; }

# --- --list names the whole registry -----------------------------------
"$CLI" bench --list > "$TMP/list.txt"
count=$(tail -n +2 "$TMP/list.txt" | wc -l)
[ "$count" -ge 6 ] || fail "--list names $count workloads, expected >= 6"
grep -q "schema-sim-zipf" "$TMP/list.txt" || fail "--list missing schema-sim-zipf"
echo "ok: --list names $count workloads"

# --- schema validity on a closed-loop and a sustained workload ----------
# Shrunken via overrides so the test stays fast; the schema checker sees
# exactly what CI's full-size smoke produces.
"$CLI" bench --workload schema-sim-zipf --requests 8 --batch 2 \
  --json "$TMP/BENCH_closed.json" > /dev/null
"$CLI" bench --workload schema-sim-sustained --requests 8 --batch 2 \
  --duration 0.05 --json "$TMP/BENCH_sustained.json" > /dev/null
python3 "$CHECK" "$TMP/BENCH_closed.json" "$TMP/BENCH_sustained.json" \
  || fail "schema check rejected freshly emitted reports"
echo "ok: emitted reports are schema-valid"

# --- determinism: same spec, two runs, strip "timing", byte-diff --------
"$CLI" bench --workload columns-cont-zipf-4shard --requests 8 --batch 2 \
  --json "$TMP/run_a.json" > /dev/null
"$CLI" bench --workload columns-cont-zipf-4shard --requests 8 --batch 2 \
  --json "$TMP/run_b.json" > /dev/null
python3 - "$TMP/run_a.json" "$TMP/run_b.json" << 'EOF' \
  || fail "deterministic fields differ between same-spec runs"
import json, sys
docs = []
for path in sys.argv[1:]:
    with open(path) as f:
        doc = json.load(f)
    del doc["timing"]  # the one nondeterministic subtree, by contract
    docs.append(json.dumps(doc, sort_keys=True))
sys.exit(0 if docs[0] == docs[1] else 1)
EOF
echo "ok: same-spec runs identical outside \"timing\""

# --- bench_report_diff.py: clean on same-spec, loud on cross-spec --------
python3 "$DIFF" "$TMP/run_a.json" "$TMP/run_b.json" > /dev/null \
  || fail "report diff flagged two same-spec runs"
rc=0
python3 "$DIFF" "$TMP/run_a.json" "$TMP/BENCH_closed.json" \
  2> "$TMP/diff.log" || rc=$?
[ "$rc" -eq 1 ] || fail "report diff on different workloads: expected exit 1, got $rc"
grep -q "DRIFT: workload.name" "$TMP/diff.log" || fail "diff missing workload drift line"
grep -q "REGRESSION: funnel" "$TMP/diff.log" || fail "diff missing funnel regression line"
echo "ok: bench_report_diff.py separates clean and dirty comparisons"

# --- top-k workload: serves through SearchTopK, floor must engage --------
"$CLI" bench --workload columns-cont-topk --requests 12 --batch 2 \
  --json "$TMP/BENCH_topk.json" > /dev/null
python3 "$CHECK" "$TMP/BENCH_topk.json" \
  || fail "schema check rejected the top-k report"
python3 - "$TMP/BENCH_topk.json" << 'EOF' || fail "top-k funnel not engaged"
import json, sys
doc = json.load(open(sys.argv[1]))
assert doc["workload"]["top_k"] == 4, doc["workload"]
assert doc["funnel"]["heap_floor_rejects"] > 0, doc["funnel"]
EOF
echo "ok: top-k workload runs with an engaged floor"

# --- override provenance: the report records what actually ran ----------
python3 - "$TMP/run_a.json" << 'EOF' || fail "overrides not recorded"
import json, sys
doc = json.load(open(sys.argv[1]))
w = doc["workload"]
assert w["requests"] == 8 and w["batch"] == 2, w
assert w["num_shards"] == 4, w  # the registry value, untouched
EOF
echo "ok: report records the overridden spec"

# --- error paths --------------------------------------------------------
rc=0
"$CLI" bench --workload no-such-thing 2> "$TMP/err.log" || rc=$?
[ "$rc" -eq 2 ] || fail "unknown workload: expected exit 2, got $rc"
grep -q "unknown workload" "$TMP/err.log" || fail "missing diagnostic"
echo "ok: unknown workload exits 2"

rc=0
"$CLI" bench 2> "$TMP/err.log" || rc=$?
[ "$rc" -eq 2 ] || fail "bench without --workload: expected exit 2, got $rc"
echo "ok: bench without --workload exits 2"

rc=0
"$CLI" bench --workload schema-sim-zipf --requests -3 2> "$TMP/err.log" \
  || rc=$?
[ "$rc" -eq 2 ] || fail "negative --requests: expected exit 2, got $rc"
echo "ok: invalid override exits 2"

echo "PASS"
