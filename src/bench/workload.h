#ifndef SILKMOTH_BENCH_WORKLOAD_H_
#define SILKMOTH_BENCH_WORKLOAD_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "core/options.h"
#include "datagen/builders.h"
#include "text/tokenizer.h"

namespace silkmoth::bench {

/// Corpus shapes the bench harness can synthesize — the same three Table-3
/// applications the figure benches reproduce (bench/bench_common.h delegates
/// its dataset construction here so the two stay in lockstep).
enum class CorpusKind {
  kDblpTitles,   ///< DBLP-style titles; q-gram tokens, edit similarity.
  kSchemaSets,   ///< Web-table schemas; word tokens, few long elements.
  kColumnSets,   ///< Web-table columns; word tokens, many short elements.
};

const char* CorpusKindName(CorpusKind kind);

/// How request reference sets are drawn from the corpus.
enum class QueryMix {
  kUniform,  ///< Every corpus set equally likely.
  kZipfian,  ///< Rank-r set drawn ∝ 1/(r+1)^skew — a hot-key serving mix.
             ///< Ranks map directly to set ids, so with contiguous shard
             ///< ranges the head of the distribution concentrates in the
             ///< low shards (the hot-shard shape, deliberately).
};

const char* QueryMixName(QueryMix mix);

/// Runner execution mode. The reading rules for the two modes' telemetry
/// differ — see docs/COUNTERS.md, "Bench telemetry".
enum class RunMode {
  kClosedLoop,  ///< Each worker issues its requests back to back, exactly
                ///< once; per-request latency under zero queueing.
  kSustained,   ///< The request stream is re-issued in whole rounds until
                ///< `sustained_seconds` elapses; throughput under saturation.
};

const char* RunModeName(RunMode mode);

/// One named, fully declarative bench scenario: metric × thresholds ×
/// corpus shape × query mix × shard/worker counts × mode. Everything that
/// shapes the work is in the spec (no environment variables), so a spec +
/// seed pins the byte-exact request stream and every deterministic output
/// field of BENCH_<name>.json.
struct WorkloadSpec {
  std::string name;      ///< Registry key, also the BENCH_<name>.json stem.
  std::string scenario;  ///< One-line human description for --list.

  CorpusKind corpus = CorpusKind::kSchemaSets;
  size_t corpus_sets = 600;   ///< Sets in the synthesized corpus.
  uint64_t corpus_seed = 7;   ///< Generator seed (fixed per workload).

  /// Engine configuration: metric/φ/δ/α/scheme/exact_scores/num_shards.
  /// num_threads stays 1 — a request is served single-threaded and
  /// concurrency comes from `workers`, the serving-process shape.
  Options options;

  QueryMix mix = QueryMix::kUniform;
  double zipf_skew = 0.99;    ///< Used only when mix == kZipfian.

  size_t requests = 48;       ///< Requests per round.
  size_t batch = 4;           ///< Reference sets per request.
  uint64_t request_seed = 0x51171C;  ///< Request-stream RNG seed.

  int workers = 1;            ///< Closed-loop client threads.
  RunMode mode = RunMode::kClosedLoop;
  double sustained_seconds = 0.4;  ///< Minimum run time (sustained mode).

  /// When positive, each request runs SearchTopK(ref, top_k) instead of
  /// Search — the KOIOS-style floating-floor serving shape. Top-k serving
  /// is single-index (SilkMoth, not ShardedEngine), so specs using it must
  /// keep num_shards at 1.
  size_t top_k = 0;

  /// When positive, the corpus's last `delta_sets` sets are withheld from
  /// the base index and arrive as one timed DeltaShard ingest instead —
  /// the dynamic-corpus serving shape. The run then has two measured
  /// passes: an uncounted pre-ingest pass over the base shards alone
  /// (pairs_pre_ingest) and the counted round 0 over base + delta. The
  /// request stream is still drawn over the FULL corpus, so the stream
  /// hash stays comparable with the workload's static twin. Direct lane
  /// only: incompatible with top_k and serve, and must stay below
  /// corpus_sets.
  size_t delta_sets = 0;

  /// When true, requests go through the resident ServeEngine's frame path
  /// (encode the payload, Submit(), wait for the response frame) instead of
  /// calling Discover directly — the daemon's admission/worker machinery
  /// measured in-process. `workers` then sizes both the closed-loop clients
  /// and the engine's worker lanes. Incompatible with top_k.
  bool serve = false;
};

/// The registry: every named workload, in a stable order. Names are unique;
/// the CI bench smoke runs a subset and commits their BENCH_*.json, so
/// renaming or removing an entry is a trajectory break — add, don't mutate.
const std::vector<WorkloadSpec>& AllWorkloads();

/// Looks a workload up by name; nullptr when absent.
const WorkloadSpec* FindWorkload(std::string_view name);

/// Synthesizes the raw corpus for `kind`: the exact parameterizations the
/// figure benches use (bench/bench_common.h calls this), so registry
/// workloads and figure benches measure the same data shapes.
RawSets GenerateCorpusRaw(CorpusKind kind, size_t num_sets, uint64_t seed);

/// The tokenizer a spec's φ implies (q-grams for edit similarities, words
/// otherwise) — the same rule the CLI applies to --data files.
TokenizerKind SpecTokenizer(const WorkloadSpec& spec);

/// The deterministic request stream: requests × batch corpus set ids drawn
/// by the spec's mix from `Rng(spec.request_seed)`. Generated up front,
/// single-threaded, before any worker starts — workers consume disjoint
/// slices, which is why the stream (and every counter derived from it) is
/// identical at every worker count.
std::vector<uint32_t> GenerateRequestStream(const WorkloadSpec& spec,
                                            size_t num_corpus_sets);

/// Canonical serialization of a request stream ("id,id,...\n" per request
/// row) — what the determinism tests diff and what the stream hash pins.
std::string SerializeRequestStream(const std::vector<uint32_t>& stream,
                                   size_t batch);

/// FNV-1a of SerializeRequestStream — the `request_stream_hash` field of
/// BENCH_<name>.json, so two JSON files are comparable only when their
/// request streams were identical.
uint64_t HashRequestStream(const std::vector<uint32_t>& stream, size_t batch);

}  // namespace silkmoth::bench

#endif  // SILKMOTH_BENCH_WORKLOAD_H_
