#include "datagen/builders.h"

#include <gtest/gtest.h>

namespace silkmoth {
namespace {

TEST(BuildersTest, FreshDictionaryPerCollection) {
  RawSets raw = {{"a b"}, {"b c"}};
  Collection c1 = BuildCollection(raw, TokenizerKind::kWord);
  Collection c2 = BuildCollection(raw, TokenizerKind::kWord);
  EXPECT_NE(c1.dict.get(), c2.dict.get());
  EXPECT_EQ(c1.dict->size(), 3u);
}

TEST(BuildersTest, SharedDictionaryKeepsIds) {
  RawSets raw1 = {{"alpha beta"}};
  RawSets raw2 = {{"beta gamma"}};
  Collection c1 = BuildCollection(raw1, TokenizerKind::kWord);
  Collection c2 =
      BuildCollectionWithDict(raw2, TokenizerKind::kWord, 0, c1.dict);
  EXPECT_EQ(c1.dict.get(), c2.dict.get());
  const TokenId beta = c1.dict->Lookup("beta");
  ASSERT_NE(beta, kInvalidToken);
  // "beta" appears in both collections under one id.
  EXPECT_TRUE(std::binary_search(c1.sets[0].elements[0].tokens.begin(),
                                 c1.sets[0].elements[0].tokens.end(), beta));
  EXPECT_TRUE(std::binary_search(c2.sets[0].elements[0].tokens.begin(),
                                 c2.sets[0].elements[0].tokens.end(), beta));
}

TEST(BuildersTest, BuildReferenceInternsNewTokens) {
  RawSets raw = {{"known tokens"}};
  Collection data = BuildCollection(raw, TokenizerKind::kWord);
  const size_t before = data.dict->size();
  SetRecord ref = BuildReference({"known plus fresh"}, TokenizerKind::kWord,
                                 0, &data);
  EXPECT_GT(data.dict->size(), before);
  ASSERT_EQ(ref.Size(), 1u);
  EXPECT_EQ(ref.elements[0].tokens.size(), 3u);
}

TEST(BuildersTest, QGramCollectionCarriesChunks) {
  RawSets raw = {{"abcdef"}};
  Collection data = BuildCollection(raw, TokenizerKind::kQGram, 3);
  ASSERT_EQ(data.sets[0].Size(), 1u);
  EXPECT_EQ(data.sets[0].elements[0].chunks.size(), 2u);
  EXPECT_EQ(data.sets[0].elements[0].tokens.size(), 6u);
}

TEST(BuildersTest, EmptySetsPreserved) {
  RawSets raw = {{}, {"x"}};
  Collection data = BuildCollection(raw, TokenizerKind::kWord);
  ASSERT_EQ(data.NumSets(), 2u);
  EXPECT_TRUE(data.sets[0].Empty());
  EXPECT_EQ(data.NumElements(), 1u);
}

TEST(BuildersTest, CollectionCounters) {
  RawSets raw = {{"a b", "c"}, {"a"}};
  Collection data = BuildCollection(raw, TokenizerKind::kWord);
  EXPECT_EQ(data.NumSets(), 2u);
  EXPECT_EQ(data.NumElements(), 3u);
  EXPECT_EQ(data.NumTokenOccurrences(), 4u);
}

}  // namespace
}  // namespace silkmoth
