#include "sig/signature.h"

#include <algorithm>
#include <unordered_map>

namespace silkmoth {

size_t Signature::NumProbeTokens() const {
  size_t n = 0;
  for (const auto& p : probe) n += p.size();
  return n;
}

std::vector<TokenId> Signature::FlatTokens() const {
  std::vector<TokenId> flat;
  for (const auto& p : probe) flat.insert(flat.end(), p.begin(), p.end());
  std::sort(flat.begin(), flat.end());
  flat.erase(std::unique(flat.begin(), flat.end()), flat.end());
  return flat;
}

size_t Signature::Cost(const InvertedIndex& index) const {
  size_t cost = 0;
  for (TokenId t : FlatTokens()) cost += index.ListSize(t);
  return cost;
}

double ElementUnits::BoundAfter(size_t selected) const {
  if (size <= 0.0) return 0.0;
  const double sel = static_cast<double>(std::min(selected, total_units));
  if (edit) {
    // Definition 11: |r_i| / (|r_i| + |k_i|).
    return size / (size + static_cast<double>(selected));
  }
  return sel >= size ? 0.0 : (size - sel) / size;
}

double ElementUnits::Gain(size_t selected, uint32_t mult) const {
  return BoundAfter(selected) - BoundAfter(selected + mult);
}

std::vector<ElementUnits> MakeElementUnits(const SetRecord& set,
                                           SimilarityKind phi) {
  std::vector<ElementUnits> units;
  units.reserve(set.elements.size());
  const bool edit = IsEditSimilarity(phi);
  for (const Element& e : set.elements) {
    ElementUnits u;
    u.edit = edit;
    if (edit) {
      u.size = static_cast<double>(e.text.size());
      // e.chunks is sorted with multiplicity; collapse runs.
      for (size_t i = 0; i < e.chunks.size();) {
        size_t j = i;
        while (j < e.chunks.size() && e.chunks[j] == e.chunks[i]) ++j;
        u.tokens.push_back(e.chunks[i]);
        u.mults.push_back(static_cast<uint32_t>(j - i));
        i = j;
      }
    } else {
      u.size = static_cast<double>(e.tokens.size());
      u.tokens.assign(e.tokens.begin(), e.tokens.end());
      u.mults.assign(e.tokens.size(), 1);
    }
    for (uint32_t m : u.mults) u.total_units += m;
    units.push_back(std::move(u));
  }
  return units;
}

void FinalizeSignature(Signature* sig, const SchemeParams& params,
                       const std::vector<double>& li_bound) {
  const size_t n = sig->probe.size();
  sig->check_threshold.resize(n);
  sig->miss_bound_sum = 0.0;
  for (size_t i = 0; i < n; ++i) {
    sig->miss_bound_sum += sig->miss_bound[i];
    if (params.alpha > kFloatSlack) {
      // Section 6.5: a probed match below min(α, bound-over-l_i) cannot
      // rescue the element — φ < α collapses to 0 under φ_α.
      sig->check_threshold[i] = std::min(params.alpha, li_bound[i]);
    } else {
      sig->check_threshold[i] = sig->miss_bound[i];
    }
  }
}

}  // namespace silkmoth
