// Approximate inclusion dependency discovery (Section 8.1's search
// application): given a reference column R, find all columns S in a corpus
// that approximately CONTAIN R — candidates for joinable columns.
//
// Each column is a set, each cell value an element, each whitespace word a
// token; SET-CONTAINMENT with Jaccard element similarity tolerates dirty
// values ("Fifth Street" vs "5th St").
//
// Usage: inclusion_dependency [num_columns] [delta]

#include <cstdio>
#include <cstdlib>

#include "core/brute_force.h"
#include "core/engine.h"
#include "datagen/webtable.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  using namespace silkmoth;

  const size_t num_columns =
      argc > 1 ? static_cast<size_t>(std::atoll(argv[1])) : 3000;
  Options options;
  options.metric = Relatedness::kContainment;
  options.phi = SimilarityKind::kJaccard;
  options.delta = argc > 2 ? std::atof(argv[2]) : 0.7;
  options.alpha = 0.5;

  WebTableParams params = InclusionDependencyDefaults(num_columns);
  Collection data = BuildCollection(GenerateColumnSets(params),
                                    TokenizerKind::kWord);
  SilkMoth engine(&data, options);
  if (!engine.ok()) {
    std::fprintf(stderr, "bad options: %s\n", engine.error().c_str());
    return 1;
  }

  // Reference columns: the paper draws columns with > 4 distinct values (to
  // skip categorical columns). Take every 200th such column.
  std::vector<uint32_t> refs;
  for (uint32_t s = 0; s < data.sets.size() && refs.size() < 15; s += 200) {
    if (data.sets[s].Size() > 4) refs.push_back(s);
  }

  std::printf("inclusion dependency: %zu columns, %zu references, "
              "delta=%.2f alpha=%.2f\n\n",
              data.NumSets(), refs.size(), options.delta, options.alpha);

  WallTimer timer;
  size_t total = 0;
  SearchStats stats;
  for (uint32_t r : refs) {
    auto matches = engine.Search(data.sets[r], &stats);
    for (const auto& m : matches) {
      if (m.set_id != r) {
        ++total;
        if (total <= 8) {
          std::printf("column %u (%zu values) contained in column %u "
                      "(%zu values): containment %.3f\n",
                      r, data.sets[r].Size(), m.set_id,
                      data.sets[m.set_id].Size(), m.relatedness);
        }
      }
    }
  }
  std::printf("\n%zu joinable column pairs in %.3fs "
              "(%zu candidates -> %zu after filters -> %zu verified)\n",
              total, timer.ElapsedSeconds(), stats.initial_candidates,
              stats.after_nn, stats.verifications);

  // Spot-check exactness against brute force on the first reference.
  if (!refs.empty()) {
    BruteForce oracle(&data, options);
    const bool agree =
        engine.Search(data.sets[refs[0]]) == oracle.Search(data.sets[refs[0]]);
    std::printf("brute-force agreement on reference %u: %s\n", refs[0],
                agree ? "yes" : "NO (bug!)");
    if (!agree) return 1;
  }
  return 0;
}
