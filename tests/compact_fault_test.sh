#!/usr/bin/env bash
# Crash-safe compaction, against the real binary: drive `compact` through
# the compact-write fault matrix and pin the atomic-publish contract
# (docs/ARCHITECTURE.md, "Dynamic corpora"):
#
#   - `fail` at commit: compact exits non-zero, publishes nothing, and the
#     staged ".tmp" is swept by the writer's destructor;
#   - `torn`/`corrupt` at commit: the damage is *published* (these model a
#     medium that lied after the rename), and the loader refuses the file
#     with the corrupt-snapshot exit — a damaged next generation is never
#     silently served;
#   - `kill` at commit: the process dies before the rename, so the next
#     generation never becomes visible; a leftover ".tmp" is the only
#     residue and a fault-free re-run from the same inputs succeeds;
#   - split mode, `kill` at the K-th rename: shard files rename before the
#     common file, so dying between renames leaves the next generation
#     headless (no common file => not loadable) while the base keeps
#     loading throughout.
#
# Usage: compact_fault_test.sh /path/to/silkmoth_cli
set -euo pipefail

CLI="${1:?usage: compact_fault_test.sh /path/to/silkmoth_cli}"
TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

fail() { echo "FAIL: $*" >&2; exit 1; }

OPTS=(--metric containment --delta 0.7 --alpha 0.5)

"$CLI" generate columns 60 "$TMP/all.txt" > /dev/null
awk 'BEGIN{RS=""; ORS="\n\n"} NR<=40' "$TMP/all.txt" > "$TMP/base.txt"
awk 'BEGIN{RS=""; ORS="\n\n"} NR>40'  "$TMP/all.txt" > "$TMP/batch.txt"

"$CLI" build --data "$TMP/base.txt" --out "$TMP/base.snap" --shards 3 \
  "${OPTS[@]}" > /dev/null
"$CLI" ingest --snapshot "$TMP/base.snap" --input "$TMP/batch.txt" \
  --delta-out "$TMP/delta.txt" > /dev/null

# base_loads LABEL: the base generation must keep loading (the old
# generation survives every compaction fault).
base_loads() {
  "$CLI" discover --snapshot "$TMP/base.snap" --delta-file "$TMP/delta.txt" \
    "${OPTS[@]}" > /dev/null 2>&1 \
    || fail "$1: base generation stopped loading"
}

# no_tmp LABEL DIR: no staged ".tmp" residue may survive.
no_tmp() {
  ls "$2"/*.tmp > /dev/null 2>&1 && fail "$1: staged .tmp survived"
  return 0
}

# The fault-free reference: live (base + delta) pair stream, which every
# successfully compacted generation must reproduce byte for byte.
"$CLI" discover --snapshot "$TMP/base.snap" --delta-file "$TMP/delta.txt" \
  "${OPTS[@]}" | grep -v '^#' > "$TMP/want.txt"
[ -s "$TMP/want.txt" ] || fail "reference discover produced no pairs"

compact_cmd() {  # compact_cmd OUT [EXTRA...]
  local out="$1"; shift
  "$CLI" compact --snapshot "$TMP/base.snap" --delta-file "$TMP/delta.txt" \
    --out "$out" --shards 2 "$@"
}

# --- fail at commit: nothing published, no residue ------------------------
D="$TMP/fail"; mkdir "$D"
rc=0
SILKMOTH_FAULT=compact-write:fail \
  compact_cmd "$D/next.snap" > "$D/out" 2>&1 || rc=$?
[ "$rc" -ne 0 ] || fail "fail: compact exited 0 under an injected commit failure"
[ ! -e "$D/next.snap" ] || fail "fail: a next generation was published"
no_tmp "fail" "$D"
base_loads "fail"
echo "ok: fail at commit (exit $rc, nothing published, no .tmp)"

# --- torn / corrupt at commit: damage published, loader refuses -----------
for row in "torn:128" "corrupt:40"; do
  name="${row%%:*}"
  D="$TMP/$name"; mkdir "$D"
  rc=0
  SILKMOTH_FAULT="compact-write:$row" \
    compact_cmd "$D/next.snap" > "$D/out" 2>&1 || rc=$?
  [ "$rc" -eq 0 ] || fail "$name: compact should publish the damaged file (exit $rc)"
  [ -e "$D/next.snap" ] || fail "$name: damaged file missing after publish"
  no_tmp "$name" "$D"
  rc=0
  "$CLI" discover --snapshot "$D/next.snap" "${OPTS[@]}" \
    > /dev/null 2> "$D/err" || rc=$?
  [ "$rc" -eq 3 ] \
    || fail "$name: loader accepted a damaged next generation (exit $rc)"
  [ -s "$D/err" ] || fail "$name: loader refused silently"
  base_loads "$name"
  echo "ok: $name at commit (published damage refused with exit 3)"
done

# --- kill at commit: next generation never visible; re-run succeeds -------
D="$TMP/kill"; mkdir "$D"
rc=0
SILKMOTH_FAULT=compact-write:kill \
  compact_cmd "$D/next.snap" > "$D/out" 2>&1 || rc=$?
[ "$rc" -eq $((128 + 9)) ] || fail "kill: expected SIGKILL status 137, got $rc"
[ ! -e "$D/next.snap" ] \
  || fail "kill: a partially committed next generation is visible"
base_loads "kill"
# A leftover .tmp is legitimate here (the process died mid-stage); the
# recovery story is simply re-running compact, which re-stages and renames.
rm -f "$D"/*.tmp
compact_cmd "$D/next.snap" > "$D/out2" 2>&1 \
  || fail "kill: fault-free re-run failed: $(cat "$D/out2")"
"$CLI" discover --snapshot "$D/next.snap" "${OPTS[@]}" \
  | grep -v '^#' > "$D/got.txt"
cmp -s "$TMP/want.txt" "$D/got.txt" \
  || fail "kill: recovered generation differs from live base+delta"
echo "ok: kill at commit (no partial visible, re-run byte-identical)"

# --- split mode: kill at the K-th rename --------------------------------
# Renames run shard files first, common last. Dying at any K <= shards
# leaves the next generation headless; dying before the last rename must
# never yield a loadable generation.
for K in 1 2; do
  D="$TMP/split$K"; mkdir "$D"
  rc=0
  SILKMOTH_FAULT="compact-write:kill:0:$K" \
    compact_cmd "$D/next.snap" --split > "$D/out" 2>&1 || rc=$?
  [ "$rc" -eq $((128 + 9)) ] \
    || fail "split$K: expected SIGKILL status 137, got $rc"
  rc=0
  "$CLI" discover --snapshot "$D/next.snap" "${OPTS[@]}" \
    > /dev/null 2>&1 || rc=$?
  [ "$rc" -ne 0 ] \
    || fail "split$K: a headless split generation loaded successfully"
  base_loads "split$K"
  echo "ok: split kill at rename $K (next generation not loadable)"
done

# Split fault-free control: all three files publish, the generation loads,
# and its stream matches the live base+delta reference.
D="$TMP/splitok"; mkdir "$D"
compact_cmd "$D/next.snap" --split > "$D/out" 2>&1 \
  || fail "splitok: $(cat "$D/out")"
no_tmp "splitok" "$D"
"$CLI" discover --snapshot "$D/next.snap" "${OPTS[@]}" \
  | grep -v '^#' > "$D/got.txt"
cmp -s "$TMP/want.txt" "$D/got.txt" \
  || fail "splitok: split generation differs from live base+delta"
echo "ok: split fault-free control (byte-identical)"

echo "PASS compact_fault_test"
