#include "serve/admission.h"

namespace silkmoth {
namespace serve {

std::string ServeCounters::ToJson() const {
  std::string j = "{";
  const auto add = [&](const char* name, const std::atomic<uint64_t>& v) {
    if (j.size() > 1) j += ",";
    j += "\"";
    j += name;
    j += "\":" + std::to_string(v.load(std::memory_order_relaxed));
  };
  add("requests_admitted", requests_admitted);
  add("requests_shed", requests_shed);
  add("requests_served", requests_served);
  add("deadline_exceeded", deadline_exceeded);
  add("malformed_frames", malformed_frames);
  add("worker_faults", worker_faults);
  add("write_errors", write_errors);
  add("swap_generations", swap_generations);
  add("delta_sets", delta_sets);
  add("delta_oov_tokens", delta_oov_tokens);
  add("compactions", compactions);
  j += "}";
  return j;
}

AdmissionQueues::AdmissionQueues(size_t workers, size_t max_queue,
                                 size_t max_inflight_bytes)
    : max_queue_(max_queue), max_inflight_bytes_(max_inflight_bytes) {
  lanes_.reserve(workers == 0 ? 1 : workers);
  for (size_t i = 0; i < (workers == 0 ? 1 : workers); ++i) {
    lanes_.push_back(std::make_unique<Lane>());
  }
}

bool AdmissionQueues::TryPush(ServeRequest& req) {
  {
    std::lock_guard<std::mutex> lk(admit_mu_);
    if (shutdown_.load(std::memory_order_relaxed)) return false;
    if (depth_.load(std::memory_order_relaxed) >= max_queue_) return false;
    const size_t inflight = inflight_bytes_.load(std::memory_order_relaxed);
    if (req.charged_bytes > max_inflight_bytes_ ||
        inflight > max_inflight_bytes_ - req.charged_bytes) {
      return false;
    }
    depth_.fetch_add(1, std::memory_order_relaxed);
    inflight_bytes_.fetch_add(req.charged_bytes, std::memory_order_relaxed);
  }
  Lane& lane =
      *lanes_[rr_.fetch_add(1, std::memory_order_relaxed) % lanes_.size()];
  {
    std::lock_guard<std::mutex> lk(lane.mu);
    lane.q.push_back(std::move(req));
  }
  lane.cv.notify_one();
  return true;
}

bool AdmissionQueues::Pop(size_t worker, ServeRequest* out) {
  Lane& lane = *lanes_[worker % lanes_.size()];
  std::unique_lock<std::mutex> lk(lane.mu);
  lane.cv.wait(lk, [&] {
    return shutdown_.load(std::memory_order_relaxed) || !lane.q.empty();
  });
  if (lane.q.empty()) return false;  // Shutdown and fully drained.
  *out = std::move(lane.q.front());
  lane.q.pop_front();
  depth_.fetch_sub(1, std::memory_order_relaxed);
  return true;
}

void AdmissionQueues::Release(size_t bytes) {
  inflight_bytes_.fetch_sub(bytes, std::memory_order_relaxed);
}

void AdmissionQueues::Shutdown() {
  {
    // Taken so no TryPush is mid-admission when the flag flips — after
    // Shutdown() returns, the queued population only shrinks.
    std::lock_guard<std::mutex> lk(admit_mu_);
    shutdown_.store(true, std::memory_order_relaxed);
  }
  for (auto& lane : lanes_) {
    std::lock_guard<std::mutex> lk(lane->mu);
    lane->cv.notify_all();
  }
}

}  // namespace serve
}  // namespace silkmoth
