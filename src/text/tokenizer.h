#ifndef SILKMOTH_TEXT_TOKENIZER_H_
#define SILKMOTH_TEXT_TOKENIZER_H_

#include <string>
#include <string_view>
#include <vector>

#include "text/dataset.h"
#include "text/token_dictionary.h"

namespace silkmoth {

/// Padding character appended to strings before q-gram extraction
/// (footnote 3 of the paper: q-1 special characters are padded at the end).
/// '\x01' cannot occur in input text by contract of the data builders.
inline constexpr char kQGramPad = '\x01';

/// Tokenization mode. Word tokens serve Jaccard similarity; q-grams (index
/// tokens) plus q-chunks (signature tokens) serve edit similarity.
enum class TokenizerKind {
  kWord,
  kQGram,
};

/// Converts raw element strings into Element records against a shared
/// dictionary.
///
/// WordTokenizer splits on runs of whitespace; each distinct word becomes one
/// token. QGramTokenizer extracts all q-length substrings of the end-padded
/// string as `tokens` and the non-overlapping q-length substrings as
/// `chunks` (with multiplicity).
///
/// Elements are views; the tokenizer materializes their bytes into the
/// caller-supplied arena, which must outlive every element built through it.
class Tokenizer {
 public:
  /// Creates a word tokenizer (q ignored) or q-gram tokenizer (q >= 1).
  Tokenizer(TokenizerKind kind, int q = 0);

  TokenizerKind kind() const { return kind_; }
  int q() const { return q_; }

  /// Tokenizes `text` into an Element, interning through `dict` and storing
  /// the element's bytes in `arena`.
  Element MakeElement(std::string_view text, TokenDictionary* dict,
                      ElementArena* arena) const;

  /// Tokenizes a whole set given its element strings. The set's elements
  /// live in `arena`; the returned SetRecord does not hold the arena itself
  /// (callers owning standalone sets attach it via SetRecord::arena).
  SetRecord MakeSet(const std::vector<std::string>& element_texts,
                    TokenDictionary* dict, ElementArena* arena) const;

 private:
  TokenizerKind kind_;
  int q_;
};

/// Splits `text` on whitespace runs; returns the word views in order.
std::vector<std::string_view> SplitWords(std::string_view text);

/// Returns `text` padded with q-1 kQGramPad characters at the end.
std::string PadForQGrams(std::string_view text, int q);

}  // namespace silkmoth

#endif  // SILKMOTH_TEXT_TOKENIZER_H_
