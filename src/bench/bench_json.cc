#include "bench/bench_json.h"

#include <iomanip>
#include <sstream>

#include "core/options.h"
#include "text/similarity.h"

namespace silkmoth::bench {

namespace {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string Str(const std::string& s) { return "\"" + JsonEscape(s) + "\""; }

std::string Hex64(uint64_t v) {
  std::ostringstream out;
  out << "\"0x" << std::hex << std::setfill('0') << std::setw(16) << v
      << "\"";
  return out.str();
}

std::string Dbl(double v) {
  std::ostringstream out;
  out << std::setprecision(17) << v;
  return out.str();
}

}  // namespace

std::string BenchResultToJson(const BenchResult& r) {
  const WorkloadSpec& s = r.spec;
  const Options& o = s.options;
  const SearchStats total = r.funnel.Total();
  std::ostringstream out;
  out << "{\n";
  out << "  \"bench_schema_version\": " << kBenchSchemaVersion << ",\n";

  out << "  \"workload\": {\n"
      << "    \"name\": " << Str(s.name) << ",\n"
      << "    \"scenario\": " << Str(s.scenario) << ",\n"
      << "    \"corpus\": " << Str(CorpusKindName(s.corpus)) << ",\n"
      << "    \"corpus_sets\": " << s.corpus_sets << ",\n"
      << "    \"corpus_seed\": " << s.corpus_seed << ",\n"
      << "    \"metric\": " << Str(RelatednessName(o.metric)) << ",\n"
      << "    \"phi\": " << Str(SimilarityKindName(o.phi)) << ",\n"
      << "    \"delta\": " << Dbl(o.delta) << ",\n"
      << "    \"alpha\": " << Dbl(o.alpha) << ",\n"
      << "    \"q\": " << o.EffectiveQ() << ",\n"
      << "    \"scheme\": " << Str(SignatureSchemeName(o.scheme)) << ",\n"
      << "    \"exact_scores\": " << (o.exact_scores ? "true" : "false")
      << ",\n"
      << "    \"num_shards\": " << o.num_shards << ",\n"
      << "    \"mix\": " << Str(QueryMixName(s.mix)) << ",\n"
      << "    \"zipf_skew\": " << Dbl(s.zipf_skew) << ",\n"
      << "    \"requests\": " << s.requests << ",\n"
      << "    \"batch\": " << s.batch << ",\n"
      << "    \"request_seed\": " << s.request_seed << ",\n"
      << "    \"workers\": " << s.workers << ",\n"
      << "    \"mode\": " << Str(RunModeName(s.mode)) << ",\n"
      << "    \"sustained_seconds\": " << Dbl(s.sustained_seconds) << ",\n"
      << "    \"top_k\": " << s.top_k << ",\n"
      << "    \"delta_sets\": " << s.delta_sets << ",\n"
      << "    \"serve\": " << (s.serve ? "true" : "false") << "\n"
      << "  },\n";

  out << "  \"corpus\": {\n"
      << "    \"sets\": " << r.corpus_sets << ",\n"
      << "    \"elements\": " << r.corpus_elements << ",\n"
      << "    \"tokens\": " << r.corpus_tokens << "\n"
      << "  },\n";

  out << "  \"requests\": {\n"
      << "    \"total\": " << s.requests << ",\n"
      << "    \"reference_sets\": " << s.requests * s.batch << ",\n"
      << "    \"stream_hash\": " << Hex64(r.request_stream_hash) << ",\n"
      << "    \"oov_tokens\": " << r.pool_oov_tokens << "\n"
      << "  },\n";

  out << "  \"results\": {\n"
      << "    \"pairs_per_round\": " << r.pairs_per_round << "\n"
      << "  },\n";

  // Dynamic-corpus lane facts (workload.delta_sets > 0; all zero
  // otherwise). Deterministic: the ingested-set count, the distinct
  // tokens the ingest interned, and the pairs a full pass over the base
  // shards alone reports.
  out << "  \"delta\": {\n"
      << "    \"sets\": " << r.delta_sets << ",\n"
      << "    \"oov_tokens\": " << r.delta_oov_tokens << ",\n"
      << "    \"pairs_pre_ingest\": " << r.pairs_pre_ingest << "\n"
      << "  },\n";

  // Funnel counters of exactly one full stream pass (round 0), counters
  // only — the four *_seconds phase timers move under "timing" below so
  // this object stays deterministic.
  out << "  \"funnel\": " << total.CountersJson() << ",\n";
  out << "  \"per_shard_results\": [";
  for (size_t i = 0; i < r.funnel.per_shard.size(); ++i) {
    out << (i == 0 ? "" : ", ") << r.funnel.per_shard[i].results;
  }
  out << "],\n";

  // Everything below varies run to run — the one key the determinism test
  // strips.
  out << "  \"timing\": {\n"
      << "    \"build_seconds\": " << Dbl(r.build_seconds) << ",\n"
      << "    \"ingest_seconds\": " << Dbl(r.ingest_seconds) << ",\n"
      << "    \"pre_ingest_seconds\": " << Dbl(r.pre_ingest_seconds)
      << ",\n"
      << "    \"run_seconds\": " << Dbl(r.run_seconds) << ",\n"
      << "    \"completed_requests\": " << r.completed_requests << ",\n"
      << "    \"requests_per_second\": " << Dbl(r.requests_per_second)
      << ",\n"
      << "    \"latency_ns\": {\n"
      << "      \"count\": " << r.latency.Count() << ",\n"
      << "      \"min\": " << r.latency.Min() << ",\n"
      << "      \"mean\": " << Dbl(r.latency.Mean()) << ",\n"
      << "      \"p50\": " << r.latency.Percentile(50) << ",\n"
      << "      \"p90\": " << r.latency.Percentile(90) << ",\n"
      << "      \"p95\": " << r.latency.Percentile(95) << ",\n"
      << "      \"p99\": " << r.latency.Percentile(99) << ",\n"
      << "      \"max\": " << r.latency.Max() << "\n"
      << "    },\n"
      << "    \"phase_seconds\": {\n"
      << "      \"signature\": " << Dbl(total.signature_seconds) << ",\n"
      << "      \"selection\": " << Dbl(total.selection_seconds) << ",\n"
      << "      \"nn\": " << Dbl(total.nn_seconds) << ",\n"
      << "      \"verify\": " << Dbl(total.verify_seconds) << "\n"
      << "    },\n"
      << "    \"peak_rss_bytes\": " << r.peak_rss_bytes << ",\n"
      // Serve-lane daemon counters; all zero for direct-lane workloads.
      // Admitted/served scale with the sustained round count, hence
      // "timing"; nonzero shed/deadline/fault values mean the bench run
      // itself misbehaved (admission is sized so nothing sheds).
      << "    \"serve_counters\": {\n"
      << "      \"requests_admitted\": " << r.serve_requests_admitted
      << ",\n"
      << "      \"requests_shed\": " << r.serve_requests_shed << ",\n"
      << "      \"requests_served\": " << r.serve_requests_served << ",\n"
      << "      \"deadline_exceeded\": " << r.serve_deadline_exceeded
      << ",\n"
      << "      \"worker_faults\": " << r.serve_worker_faults << "\n"
      << "    }\n"
      << "  }\n";
  out << "}\n";
  return out.str();
}

}  // namespace silkmoth::bench
