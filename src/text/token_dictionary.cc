#include "text/token_dictionary.h"

namespace silkmoth {

TokenId TokenDictionary::Intern(std::string_view token) {
  auto it = ids_.find(std::string(token));
  if (it != ids_.end()) return it->second;
  TokenId id = static_cast<TokenId>(tokens_.size());
  tokens_.emplace_back(token);
  ids_.emplace(tokens_.back(), id);
  return id;
}

TokenId TokenDictionary::Lookup(std::string_view token) const {
  auto it = ids_.find(std::string(token));
  if (it == ids_.end()) return kInvalidToken;
  return it->second;
}

}  // namespace silkmoth
