#include "index/inverted_index.h"

#include <algorithm>

namespace silkmoth {

void InvertedIndex::Build(const Collection& collection) {
  lists_.clear();
  size_t num_tokens = collection.dict ? collection.dict->size() : 0;
  lists_.resize(num_tokens);
  for (uint32_t s = 0; s < collection.sets.size(); ++s) {
    const SetRecord& set = collection.sets[s];
    for (uint32_t e = 0; e < set.elements.size(); ++e) {
      for (TokenId t : set.elements[e].tokens) {
        if (t >= lists_.size()) lists_.resize(t + 1);
        lists_[t].push_back(Posting{s, e});
      }
    }
  }
  // Element token lists are already deduplicated, and sets/elements are
  // visited in order, so each list is sorted and unique by construction;
  // enforce it anyway to stay robust against future callers.
  for (auto& list : lists_) {
    if (!std::is_sorted(list.begin(), list.end())) {
      std::sort(list.begin(), list.end());
    }
    list.erase(std::unique(list.begin(), list.end()), list.end());
    list.shrink_to_fit();
  }
}

std::span<const Posting> InvertedIndex::List(TokenId t) const {
  if (t >= lists_.size()) return {};
  return lists_[t];
}

std::span<const Posting> InvertedIndex::ListInSet(TokenId t,
                                                  uint32_t set_id) const {
  auto list = List(t);
  auto lo = std::lower_bound(list.begin(), list.end(), Posting{set_id, 0});
  auto hi = std::lower_bound(lo, list.end(), Posting{set_id + 1, 0});
  return {lo, hi};
}

size_t InvertedIndex::TotalPostings() const {
  size_t n = 0;
  for (const auto& list : lists_) n += list.size();
  return n;
}

}  // namespace silkmoth
