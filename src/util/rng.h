#ifndef SILKMOTH_UTIL_RNG_H_
#define SILKMOTH_UTIL_RNG_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace silkmoth {

/// Deterministic, seedable pseudo-random number generator.
///
/// Implements xoshiro256** seeded through splitmix64. The generator is
/// intentionally self-contained (no <random> engines) so that every dataset,
/// test sweep, and benchmark in this repository is bit-reproducible across
/// standard libraries and platforms.
class Rng {
 public:
  explicit Rng(uint64_t seed);

  /// Returns the next raw 64-bit value.
  uint64_t Next();

  /// Returns a uniform integer in [0, bound). `bound` must be > 0.
  uint64_t NextBounded(uint64_t bound);

  /// Returns a uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t NextInRange(int64_t lo, int64_t hi);

  /// Returns a uniform double in [0, 1).
  double NextDouble();

  /// Returns true with probability `p` (clamped to [0, 1]).
  bool NextBool(double p);

  /// Fisher-Yates shuffle of `items`.
  template <typename T>
  void Shuffle(std::vector<T>* items) {
    if (items->empty()) return;
    for (size_t i = items->size() - 1; i > 0; --i) {
      size_t j = static_cast<size_t>(NextBounded(i + 1));
      std::swap((*items)[i], (*items)[j]);
    }
  }

  /// Splits off an independent generator; useful for giving each worker or
  /// dataset section its own stream while keeping the parent deterministic.
  Rng Split();

 private:
  uint64_t state_[4];
};

}  // namespace silkmoth

#endif  // SILKMOTH_UTIL_RNG_H_
