#include "filter/check_filter.h"

#include <algorithm>
#include <unordered_map>

#include "core/relatedness.h"
#include "text/similarity.h"

namespace silkmoth {
namespace {

// Per-set accumulation state during selection.
struct Accum {
  Candidate cand;
  bool size_ok = true;
};

}  // namespace

std::vector<Candidate> SelectAndCheckCandidates(
    const SetRecord& ref, const Signature& sig, const Collection& data,
    const InvertedIndex& index, const Options& options, bool apply_check,
    CheckFilterStats* stats) {
  const ElementSimilarity* sim = GetSimilarity(options.phi);
  std::unordered_map<uint32_t, Accum> accum;

  for (uint32_t i = 0; i < sig.probe.size(); ++i) {
    const Element& r_elem = ref.elements[i];
    for (TokenId t : sig.probe[i]) {
      for (const Posting& p : index.List(t)) {
        if (stats != nullptr) ++stats->postings_scanned;
        auto [it, inserted] = accum.try_emplace(p.set_id);
        Accum& a = it->second;
        if (inserted) {
          a.cand.set_id = p.set_id;
          a.size_ok = SizeFeasible(ref.Size(),
                                   data.sets[p.set_id].Size(), options);
          if (stats != nullptr) {
            ++stats->initial_candidates;
            if (!a.size_ok) ++stats->size_filtered;
          }
        }
        if (!a.size_ok) continue;
        const Element& s_elem = data.sets[p.set_id].elements[p.elem_id];
        const double score =
            sim->ScoreThresholded(r_elem, s_elem, options.alpha);
        if (stats != nullptr) ++stats->similarity_calls;
        auto& best = a.cand.best;
        if (!best.empty() && best.back().first == i) {
          best.back().second = std::max(best.back().second, score);
        } else {
          best.emplace_back(i, score);
        }
        if (score >= sig.check_threshold[i] - kFloatSlack) {
          a.cand.strong = true;
        }
      }
    }
  }

  // The check filter may prune a candidate with no strong match only when
  // the signature's miss-bound sum certifies Σ_i bound_i < θ; that always
  // holds for valid weighted-family signatures.
  const double theta = MatchingThreshold(options.delta, ref.Size());
  const bool bound_certifies = sig.miss_bound_sum < theta - kFloatSlack;

  std::vector<Candidate> out;
  out.reserve(accum.size());
  for (auto& [set_id, a] : accum) {
    if (!a.size_ok) continue;
    if (apply_check && bound_certifies && !a.cand.strong) {
      if (stats != nullptr) ++stats->check_filtered;
      continue;
    }
    out.push_back(std::move(a.cand));
  }
  std::sort(out.begin(), out.end(),
            [](const Candidate& a, const Candidate& b) {
              return a.set_id < b.set_id;
            });
  return out;
}

std::vector<Candidate> AllCandidates(const SetRecord& ref,
                                     const Collection& data,
                                     const Options& options) {
  std::vector<Candidate> out;
  for (uint32_t s = 0; s < data.sets.size(); ++s) {
    if (!SizeFeasible(ref.Size(), data.sets[s].Size(), options)) continue;
    Candidate c;
    c.set_id = s;
    c.strong = true;
    out.push_back(std::move(c));
  }
  return out;
}

}  // namespace silkmoth
