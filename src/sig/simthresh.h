#ifndef SILKMOTH_SIG_SIMTHRESH_H_
#define SILKMOTH_SIG_SIMTHRESH_H_

#include <cstddef>

#include "sig/signature.h"

namespace silkmoth {

/// Sentinel: sim-thresh protection is impossible for this element (α = 0, or
/// the element is too short to host the required number of units).
inline constexpr size_t kNoSimThresh = static_cast<size_t>(-1);

/// Number of signature UNITS an element needs so that any s missing all of
/// them has φ(r, s) < α (Section 6.1 for Jaccard, Section 7.2 for edit
/// similarity):
///   Jaccard: ⌊(1-α)|r|⌋ + 1 tokens,
///   edit:    ⌊(1-α)/α · |r|⌋ + 1 q-chunks.
/// Returns kNoSimThresh when protection is impossible.
size_t SimThreshUnits(const ElementUnits& element, double alpha);

}  // namespace silkmoth

#endif  // SILKMOTH_SIG_SIMTHRESH_H_
