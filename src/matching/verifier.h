#ifndef SILKMOTH_MATCHING_VERIFIER_H_
#define SILKMOTH_MATCHING_VERIFIER_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "text/dataset.h"
#include "text/similarity.h"

namespace silkmoth {

/// Counters describing one maximum-matching evaluation.
struct MatchingStats {
  size_t matrix_rows = 0;       ///< Rows fed to the Hungarian solver.
  size_t matrix_cols = 0;       ///< Columns fed to the Hungarian solver.
  size_t reduced_pairs = 0;     ///< Identical pairs removed by reduction.
  size_t similarity_calls = 0;  ///< φ evaluations performed.
  size_t bound_accepts = 0;     ///< Decisions settled by the greedy lower bound.
  size_t bound_rejects = 0;     ///< Decisions settled by the maxima upper bound.
  size_t tier2_accepts = 0;     ///< Accepts settled by the local-max tier-2
                                ///< lower bound after greedy failed.
  size_t floor_rejects = 0;     ///< Candidates dropped against the caller's
                                ///< floating floor (`floor_theta`), not θ.
  size_t exact_solves = 0;      ///< Hungarian runs in the ambiguous band.
  size_t reporting_solves = 0;  ///< Hungarian runs made purely to report an
                                ///< exact score on a bound-settled accept.
};

/// Outcome of a bound-guided threshold verification (ScoreDecision).
struct VerifyDecision {
  bool related = false;  ///< Matching score >= theta (within slack)?
  double score = 0.0;    ///< Exact matching score when `exact` is set, else
                         ///< the bound that settled the decision.
  double lower = 0.0;    ///< Greedy-matching lower bound (incl. reduction).
  double upper = 0.0;    ///< Row/column-maxima upper bound (incl. reduction).
  bool exact = false;    ///< `score` is the exact maximum matching score.
};

/// One aligned element pair in a maximum matching, for explainability.
struct AlignedPair {
  uint32_t r_elem = 0;  ///< Element index in R.
  uint32_t s_elem = 0;  ///< Element index in S.
  double score = 0.0;   ///< φ_α of the pair (> 0; zero pairs are omitted).

  /// Structural equality (indices and exact score).
  friend bool operator==(const AlignedPair&, const AlignedPair&) = default;
};

/// Computes the maximum matching score |R ∩̃φα S| (Section 2.1).
///
/// When `use_reduction` is true, `alpha` is 0, and 1-φ is a metric (Jaccard
/// distance, Eds dual), identical elements of R and S are paired greedily
/// before the O(n^3) matching runs on the reduced sets (Section 5.3). The
/// result is exactly the same score; reduction is a pure optimization, and it
/// is silently skipped whenever its preconditions do not hold.
class MaxMatchingVerifier {
 public:
  /// `sim` is the resolved element similarity φ (must outlive the
  /// verifier); scores below `alpha` count as 0. `use_reduction` requests
  /// reduction-based verification, which activates only when its
  /// preconditions hold (see the class comment).
  MaxMatchingVerifier(const ElementSimilarity* sim, double alpha,
                      bool use_reduction);

  /// Maximum matching score between r and s. `stats` is optional.
  double Score(const SetRecord& r, const SetRecord& s,
               MatchingStats* stats = nullptr) const;

  /// Bound-guided threshold test (Section 5.3 refinement): is the maximum
  /// matching score at least `theta`?
  ///
  /// Builds the weight matrix once, then sandwiches the optimum between
  /// cheap matching lower bounds and the min of the row-maxima and
  /// column-maxima sums. Tier 1 is a greedy matching (rows in descending
  /// row-max order take their heaviest free column); when it fails to settle
  /// an accept, tier 2 runs the near-linear local-max matching (Birn et al.,
  /// arXiv:1302.4587, a guaranteed 1/2-approximation) and the lower bound
  /// becomes the max of the two — the bounds are incomparable in general.
  /// The bounds settle the decision outside `(theta - margin, theta +
  /// margin)`; the exact O(n³) Hungarian solver runs only in that ambiguous
  /// band (counted in `exact_solves`), deciding `score >= theta -
  /// kFloatSlack`.
  ///
  /// `margin` is the caller's slack budget: it must cover both bound-side
  /// float drift and any tolerance the caller's own acceptance test applies
  /// at a different scale (search passes test the *relatedness ratio* within
  /// kFloatSlack, which is a matching-score tolerance of up to
  /// kFloatSlack·(|R|+|S|) — they pass a margin of that magnitude so a
  /// bound-settled decision can never disagree with the ratio test). The
  /// effective margin is clamped to at least kFloatSlack so a bound-reject
  /// can never contradict the exact path's `score >= theta - kFloatSlack`
  /// accept test, whatever the caller passes.
  ///
  /// `floor_theta`, when above `theta`, is a floating secondary threshold
  /// (top-k search passes the current k-th-best score): once the upper bound
  /// falls below `floor_theta - margin` the candidate is rejected (counted
  /// in `floor_rejects`) without running any matching bound or solve, even
  /// if it would have cleared θ. Pass a negative value (the default) to
  /// disable it.
  ///
  /// `score` is exact (bit-compatible with Score()) when `exact` is set:
  /// always after an ambiguous-band solve, and on bound-accepts when
  /// `need_exact_score` is true — that mode runs the solver on the
  /// already-built matrix purely to report the score (the *decision* is
  /// still the bound's; it is counted in `reporting_solves`, not
  /// `exact_solves`). Rejects report the upper bound and never solve.
  VerifyDecision ScoreDecision(const SetRecord& r, const SetRecord& s,
                               double theta, MatchingStats* stats = nullptr,
                               double margin = kFloatSlack,
                               bool need_exact_score = false,
                               double floor_theta = -1.0) const;

  /// As Score, but also reports the alignment achieving it (pairs with
  /// positive φ_α only, sorted by r_elem). Used for explaining why two sets
  /// are related; always computed without the reduction so element indices
  /// refer to the original sets.
  double ScoreWithAlignment(const SetRecord& r, const SetRecord& s,
                            std::vector<AlignedPair>* alignment) const;

  /// True when the reduction optimization will actually run.
  bool ReductionActive() const { return reduction_active_; }

 private:
  /// Applies reduction-based peeling (when active) and emits the surviving
  /// element pointers; returns the number of identical pairs removed.
  size_t SelectElements(const SetRecord& r, const SetRecord& s,
                        std::vector<const Element*>* r_elems,
                        std::vector<const Element*>* s_elems) const;

  double ScoreDense(const std::vector<const Element*>& r_elems,
                    const std::vector<const Element*>& s_elems,
                    MatchingStats* stats) const;

  const ElementSimilarity* sim_;
  double alpha_;
  bool reduction_active_;
};

}  // namespace silkmoth

#endif  // SILKMOTH_MATCHING_VERIFIER_H_
