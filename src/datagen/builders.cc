#include "datagen/builders.h"

namespace silkmoth {

Collection BuildCollection(const RawSets& raw, TokenizerKind kind, int q) {
  return BuildCollectionWithDict(raw, kind, q,
                                 std::make_shared<TokenDictionary>());
}

Collection BuildCollectionWithDict(const RawSets& raw, TokenizerKind kind,
                                   int q,
                                   std::shared_ptr<TokenDictionary> dict) {
  Collection collection;
  collection.dict = std::move(dict);
  const Tokenizer tokenizer(kind, q);
  collection.sets.reserve(raw.size());
  for (const auto& set_texts : raw) {
    collection.sets.push_back(
        tokenizer.MakeSet(set_texts, collection.dict.get()));
  }
  return collection;
}

SetRecord BuildReference(const std::vector<std::string>& element_texts,
                         TokenizerKind kind, int q, Collection* collection) {
  const Tokenizer tokenizer(kind, q);
  return tokenizer.MakeSet(element_texts, collection->dict.get());
}

}  // namespace silkmoth
