#ifndef SILKMOTH_CORE_SEARCH_PASS_H_
#define SILKMOTH_CORE_SEARCH_PASS_H_

#include <cstdint>
#include <vector>

#include "core/options.h"
#include "core/stats.h"
#include "index/inverted_index.h"
#include "text/dataset.h"

namespace silkmoth {

struct QueryScratch;

/// One related set found for a reference.
struct SearchMatch {
  uint32_t set_id = 0;          ///< Index into the indexed collection.
  double matching_score = 0.0;  ///< |R ∩̃φα S|.
  double relatedness = 0.0;     ///< similar() or contain() value.

  /// Structural equality (id and exact scores).
  friend bool operator==(const SearchMatch&, const SearchMatch&) = default;
};

/// Sentinel for RunSearchPass's `exclude_set`: exclude nothing.
inline constexpr uint32_t kNoExclude = static_cast<uint32_t>(-1);

/// Runs one full search pass (Section 3): signature generation, candidate
/// selection + check filter, NN filter, verification. Results are sorted by
/// set id. `exclude_set` skips one set id (self-pairs in discovery mode);
/// pass kNoExclude to keep all.
///
/// The similarity for options.phi is resolved once per pass and handed to
/// every stage. `scratch` supplies the reusable epoch-stamped buffers the
/// filters run on; pass one instance per thread and reuse it across
/// references (discovery does). When null, a pass-local scratch is used.
///
/// `scan_range` is the candidate universe `index` was built over (a shard's
/// set-id range). Signature-probed candidates are already confined to it
/// because the index holds no postings outside the range; the range only
/// steers the §7.3 no-valid-signature fallback, which scans sets directly
/// instead of going through the index. Callers with a full index keep the
/// default (everything).
///
/// `top_k`, when positive, switches the pass to top-k mode (KOIOS-style
/// early termination): verification keeps a running heap of the k best
/// matches, and once it is full the k-th-best relatedness becomes a
/// floating floor threaded into the verifier — candidates whose upper
/// bound cannot reach it are dropped (`heap_floor_rejects`) without any
/// matching bound or solve. The returned matches are exactly the k best
/// of the full result set, sorted best-first (relatedness descending, set
/// id ascending on ties) instead of by set id.
std::vector<SearchMatch> RunSearchPass(const SetRecord& ref,
                                       const Collection& data,
                                       const InvertedIndex& index,
                                       const Options& options,
                                       uint32_t exclude_set = kNoExclude,
                                       SearchStats* stats = nullptr,
                                       QueryScratch* scratch = nullptr,
                                       SetIdRange scan_range = {},
                                       size_t top_k = 0);

}  // namespace silkmoth

#endif  // SILKMOTH_CORE_SEARCH_PASS_H_
