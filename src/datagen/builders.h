#ifndef SILKMOTH_DATAGEN_BUILDERS_H_
#define SILKMOTH_DATAGEN_BUILDERS_H_

#include <memory>
#include <string>
#include <vector>

#include "text/dataset.h"
#include "text/tokenizer.h"

namespace silkmoth {

/// Raw textual sets: each set is a list of element strings.
using RawSets = std::vector<std::vector<std::string>>;

/// Tokenizes raw sets into a Collection with a fresh dictionary.
/// `kind`/`q` select word tokens (Jaccard) or q-grams+q-chunks (edit
/// similarity). Empty elements are dropped; empty sets are kept (they can
/// never be related to anything, and keeping them preserves set ids).
Collection BuildCollection(const RawSets& raw, TokenizerKind kind, int q = 0);

/// Tokenizes raw sets against an existing dictionary (for reference
/// collections searched against an already-built Collection).
Collection BuildCollectionWithDict(const RawSets& raw, TokenizerKind kind,
                                   int q,
                                   std::shared_ptr<TokenDictionary> dict);

/// Tokenizes a single reference set against `collection`'s dictionary.
SetRecord BuildReference(const std::vector<std::string>& element_texts,
                         TokenizerKind kind, int q, Collection* collection);

}  // namespace silkmoth

#endif  // SILKMOTH_DATAGEN_BUILDERS_H_
