#ifndef SILKMOTH_INDEX_INVERTED_INDEX_H_
#define SILKMOTH_INDEX_INVERTED_INDEX_H_

#include <cstdint>
#include <span>
#include <vector>

#include "text/dataset.h"

namespace silkmoth {

/// One entry of an inverted list: which element of which set contains the
/// token. Ordered by (set, elem) so per-set ranges can be binary searched.
struct Posting {
  uint32_t set_id;
  uint32_t elem_id;

  friend bool operator==(const Posting&, const Posting&) = default;
  friend auto operator<=>(const Posting&, const Posting&) = default;
};

/// Inverted index over a Collection (Section 3 of the paper).
///
/// For each token t, List(t) yields the sorted, deduplicated postings of all
/// (set, element) pairs containing t. The index is immutable after Build and
/// safe to share across threads. Tokens interned after Build (e.g. from a
/// search reference not present in the data) simply have empty lists.
///
/// Storage is CSR (compressed sparse row): one contiguous postings array
/// plus a per-token offsets array. Probing k tokens touches k contiguous
/// ranges of one allocation instead of k separately heap-allocated vectors,
/// and ListSize is an O(1) offsets difference — the signature schemes call
/// it once per candidate token when ordering probes by frequency.
class InvertedIndex {
 public:
  InvertedIndex() = default;

  /// Builds the index over `collection`. Any previous contents are replaced.
  void Build(const Collection& collection);

  /// Postings of token t (empty span for unknown tokens).
  std::span<const Posting> List(TokenId t) const {
    if (static_cast<size_t>(t) + 1 >= offsets_.size()) return {};
    return {postings_.data() + offsets_[t], offsets_[t + 1] - offsets_[t]};
  }

  /// |I[t]|: inverted list length; the signature schemes' token cost.
  size_t ListSize(TokenId t) const {
    if (static_cast<size_t>(t) + 1 >= offsets_.size()) return 0;
    return offsets_[t + 1] - offsets_[t];
  }

  /// Postings of token t restricted to set `set_id` (binary search).
  std::span<const Posting> ListInSet(TokenId t, uint32_t set_id) const;

  /// Number of token ids covered (>= max token id at Build time + 1).
  size_t NumTokens() const {
    return offsets_.empty() ? 0 : offsets_.size() - 1;
  }

  /// Sum of all list sizes.
  size_t TotalPostings() const { return postings_.size(); }

 private:
  std::vector<Posting> postings_;  ///< All lists, concatenated by token.
  std::vector<size_t> offsets_;    ///< Token t's list: [offsets_[t], offsets_[t+1]).
};

}  // namespace silkmoth

#endif  // SILKMOTH_INDEX_INVERTED_INDEX_H_
