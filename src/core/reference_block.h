#ifndef SILKMOTH_CORE_REFERENCE_BLOCK_H_
#define SILKMOTH_CORE_REFERENCE_BLOCK_H_

#include <algorithm>
#include <cstdint>

#include "index/inverted_index.h"
#include "text/dataset.h"

namespace silkmoth {

/// The reference side of a discovery run, as a first-class borrowed view.
///
/// SilkMoth defines discovery over a reference collection R streamed against
/// an indexed collection S. Historically every execution path hardwired
/// R = S (the whole-collection self-join); a ReferenceBlock makes the
/// reference side pluggable instead. A block is one of:
///
///  - a **self-join block** over (a sub-range of) the indexed collection
///    itself — `refs` is the indexed collection, `self_join` is true, and
///    self-pair exclusion plus the symmetric-metric unordered-pair dedup
///    apply. The full-range self-join block reproduces the classic
///    `DiscoverSelf` byte for byte (the refactor's parity safety net);
///    narrowing `range` distributes the *reference* stream — the union of
///    disjoint self-join blocks over one collection equals the full
///    self-join, because exclusion and dedup are per-reference decisions.
///
///  - an **external query block** — `refs` is a separate collection
///    tokenized against the *indexed collection's* dictionary (token
///    identity must be global; see BuildQueryBlock in
///    datagen/builders.h). Every reference/candidate pair is evaluated:
///    no exclusion, no dedup, and under SET-CONTAINMENT the query sets
///    are always the R of Definition 2 (|R| <= |S| enforced against the
///    corpus sets). Out-of-vocabulary query tokens are interned after the
///    corpus index was built, so they carry empty inverted lists: they can
///    never generate candidates, but they still count toward |R| and the
///    per-element φ evaluations — exactly the containment/similarity
///    semantics of a token the corpus simply does not contain.
///
/// A block is a *view*: it does not own `refs`, which must outlive every
/// discovery run the block is passed to. Blocks are cheap to copy.
struct ReferenceBlock {
  /// The collection providing the reference sets. Self-join blocks point at
  /// the indexed collection itself; external blocks at a query collection
  /// sharing the indexed collection's dictionary. Never null in a valid
  /// block.
  const Collection* refs = nullptr;

  /// The sub-range of `refs` streamed as references (global set ids into
  /// `refs`; reported PairMatch::ref_id values stay global). The default
  /// covers the whole collection; NumRefs()/end_id() clamp to its size.
  SetIdRange range{};

  /// True for self-join blocks: `refs` is the indexed collection, self
  /// pairs are excluded, and symmetric metrics report each unordered pair
  /// once.
  bool self_join = false;

  /// External blocks: distinct query tokens absent from the corpus
  /// dictionary at tokenization time (0 for self-join blocks). Feeds the
  /// SearchStats::oov_tokens counter.
  size_t oov_tokens = 0;

  /// External blocks: FNV-1a fingerprint of the raw query payload
  /// (HashRawSets), 0 for self-join blocks. The shard-result protocol
  /// records it so merging shard streams produced against different query
  /// payloads is refused.
  uint64_t content_hash = 0;

  /// The full-collection self-join block over `data`: today's DiscoverSelf
  /// semantics, unchanged.
  static ReferenceBlock SelfJoin(const Collection& data) {
    ReferenceBlock block;
    block.refs = &data;
    block.range = {0, static_cast<uint32_t>(data.NumSets())};
    block.self_join = true;
    return block;
  }

  /// A self-join block restricted to references [begin, end) of `data`.
  /// Candidates still come from the whole indexed collection; only the
  /// reference stream narrows.
  static ReferenceBlock SelfJoinRange(const Collection& data, uint32_t begin,
                                      uint32_t end) {
    ReferenceBlock block = SelfJoin(data);
    block.range = {begin, end};
    return block;
  }

  /// An external block over a query collection tokenized against the
  /// indexed collection's dictionary. Prefer BuildQueryBlock
  /// (datagen/builders.h), which also counts OOV tokens and fingerprints
  /// the payload; this raw factory serves callers that tokenized
  /// themselves.
  static ReferenceBlock External(const Collection& query) {
    ReferenceBlock block;
    block.refs = &query;
    block.range = {0, static_cast<uint32_t>(query.NumSets())};
    return block;
  }

  /// First reference id streamed (clamped to the collection size).
  uint32_t begin_id() const {
    return std::min(range.begin, static_cast<uint32_t>(refs->NumSets()));
  }

  /// Past-the-end reference id streamed (clamped to the collection size).
  uint32_t end_id() const {
    return std::min(range.end, static_cast<uint32_t>(refs->NumSets()));
  }

  /// Number of reference sets the block streams.
  uint32_t NumRefs() const {
    const uint32_t b = begin_id();
    const uint32_t e = end_id();
    return e > b ? e - b : 0;
  }
};

}  // namespace silkmoth

#endif  // SILKMOTH_CORE_REFERENCE_BLOCK_H_
