#include "text/tokenizer.h"

#include <gtest/gtest.h>

namespace silkmoth {
namespace {

/// Shared backing store for the elements these tests build; outlives them
/// all (an Element is a view into its arena).
ElementArena* TestArena() {
  static ElementArena arena;
  return &arena;
}

TEST(SplitWordsTest, BasicSplit) {
  auto words = SplitWords("77 Mass Ave");
  ASSERT_EQ(words.size(), 3u);
  EXPECT_EQ(words[0], "77");
  EXPECT_EQ(words[1], "Mass");
  EXPECT_EQ(words[2], "Ave");
}

TEST(SplitWordsTest, CollapsesWhitespaceRuns) {
  auto words = SplitWords("  a \t b\n\nc  ");
  ASSERT_EQ(words.size(), 3u);
  EXPECT_EQ(words[0], "a");
  EXPECT_EQ(words[2], "c");
}

TEST(SplitWordsTest, EmptyAndAllSpace) {
  EXPECT_TRUE(SplitWords("").empty());
  EXPECT_TRUE(SplitWords("   \t ").empty());
}

TEST(PadForQGramsTest, AppendsQMinusOnePads) {
  const std::string padded = PadForQGrams("abc", 3);
  EXPECT_EQ(padded.size(), 5u);
  EXPECT_EQ(padded.substr(0, 3), "abc");
  EXPECT_EQ(padded[3], kQGramPad);
  EXPECT_EQ(padded[4], kQGramPad);
}

TEST(WordTokenizerTest, TokensAreSortedUnique) {
  TokenDictionary dict;
  Tokenizer tok(TokenizerKind::kWord);
  Element e = tok.MakeElement("b a b c a", &dict, TestArena());
  EXPECT_EQ(e.text, "b a b c a");
  ASSERT_EQ(e.tokens.size(), 3u);  // a, b, c deduplicated.
  EXPECT_TRUE(std::is_sorted(e.tokens.begin(), e.tokens.end()));
  EXPECT_TRUE(e.chunks.empty());
}

TEST(QGramTokenizerTest, GramCountEqualsTextLength) {
  // With q-1 end pads, a string of length L has exactly L q-grams.
  TokenDictionary dict;
  Tokenizer tok(TokenizerKind::kQGram, 3);
  Element e = tok.MakeElement("abcde", &dict, TestArena());
  // Tokens are deduplicated, but "abcde" has 5 distinct padded 3-grams.
  EXPECT_EQ(e.tokens.size(), 5u);
}

TEST(QGramTokenizerTest, ChunkCountIsCeilLenOverQ) {
  TokenDictionary dict;
  Tokenizer tok(TokenizerKind::kQGram, 3);
  EXPECT_EQ(tok.MakeElement("abcdef", &dict, TestArena()).chunks.size(), 2u);   // 6/3
  EXPECT_EQ(tok.MakeElement("abcdefg", &dict, TestArena()).chunks.size(), 3u);  // ceil(7/3)
  EXPECT_EQ(tok.MakeElement("ab", &dict, TestArena()).chunks.size(), 1u);       // ceil(2/3)
}

TEST(QGramTokenizerTest, ChunksAreQGramsOfPaddedString) {
  TokenDictionary dict;
  Tokenizer tok(TokenizerKind::kQGram, 2);
  Element e = tok.MakeElement("abc", &dict, TestArena());
  // Chunks: "ab", "c<pad>"; both must also be index tokens of the element.
  for (TokenId c : e.chunks) {
    EXPECT_TRUE(std::find(e.tokens.begin(), e.tokens.end(), c) !=
                e.tokens.end())
        << "chunk token " << dict.Token(c) << " missing from q-grams";
  }
}

TEST(QGramTokenizerTest, ChunksKeepMultiplicity) {
  TokenDictionary dict;
  Tokenizer tok(TokenizerKind::kQGram, 2);
  // "abab" -> chunks "ab","ab": same token twice.
  Element e = tok.MakeElement("abab", &dict, TestArena());
  ASSERT_EQ(e.chunks.size(), 2u);
  EXPECT_EQ(e.chunks[0], e.chunks[1]);
}

TEST(QGramTokenizerTest, ShortStringStillHasOneChunk) {
  TokenDictionary dict;
  Tokenizer tok(TokenizerKind::kQGram, 4);
  Element e = tok.MakeElement("ab", &dict, TestArena());
  ASSERT_EQ(e.chunks.size(), 1u);
  EXPECT_EQ(dict.Token(e.chunks[0]).size(), 4u);  // Padded to q.
}

TEST(QGramTokenizerTest, EmptyTextHasNoTokens) {
  TokenDictionary dict;
  Tokenizer tok(TokenizerKind::kQGram, 3);
  Element e = tok.MakeElement("", &dict, TestArena());
  EXPECT_TRUE(e.tokens.empty());
  EXPECT_TRUE(e.chunks.empty());
}

TEST(MakeSetTest, DropsEmptyElements) {
  TokenDictionary dict;
  Tokenizer tok(TokenizerKind::kWord);
  SetRecord set = tok.MakeSet({"a b", "", "   ", "c"}, &dict, TestArena());
  EXPECT_EQ(set.Size(), 2u);
}

TEST(MakeSetTest, PreservesElementOrder) {
  TokenDictionary dict;
  Tokenizer tok(TokenizerKind::kWord);
  SetRecord set = tok.MakeSet({"first one", "second one"}, &dict, TestArena());
  ASSERT_EQ(set.Size(), 2u);
  EXPECT_EQ(set.elements[0].text, "first one");
  EXPECT_EQ(set.elements[1].text, "second one");
}

TEST(MakeSetTest, SharedDictionaryAcrossSets) {
  TokenDictionary dict;
  Tokenizer tok(TokenizerKind::kWord);
  SetRecord a = tok.MakeSet({"alpha beta"}, &dict, TestArena());
  SetRecord b = tok.MakeSet({"beta gamma"}, &dict, TestArena());
  // "beta" must have the same id in both.
  EXPECT_EQ(a.elements[0].tokens.size(), 2u);
  EXPECT_EQ(b.elements[0].tokens.size(), 2u);
  const TokenId beta = dict.Lookup("beta");
  EXPECT_NE(std::find(a.elements[0].tokens.begin(),
                      a.elements[0].tokens.end(), beta),
            a.elements[0].tokens.end());
  EXPECT_NE(std::find(b.elements[0].tokens.begin(),
                      b.elements[0].tokens.end(), beta),
            b.elements[0].tokens.end());
}

class QGramSweep : public ::testing::TestWithParam<int> {};

TEST_P(QGramSweep, GramAndChunkInvariants) {
  const int q = GetParam();
  TokenDictionary dict;
  Tokenizer tok(TokenizerKind::kQGram, q);
  const std::string text = "the quick brown fox";
  Element e = tok.MakeElement(text, &dict, TestArena());
  // ceil(len/q) chunks, each a q-length string.
  EXPECT_EQ(e.chunks.size(),
            (text.size() + static_cast<size_t>(q) - 1) /
                static_cast<size_t>(q));
  for (TokenId c : e.chunks) {
    EXPECT_EQ(dict.Token(c).size(), static_cast<size_t>(q));
  }
  // Distinct grams bounded by text length.
  EXPECT_LE(e.tokens.size(), text.size());
}

INSTANTIATE_TEST_SUITE_P(Qs, QGramSweep, ::testing::Values(1, 2, 3, 4, 5, 8));

}  // namespace
}  // namespace silkmoth
