#include <algorithm>

#include <gtest/gtest.h>

#include "paper_example.h"
#include "sig/scheme.h"
#include "sig/simthresh.h"

namespace silkmoth {
namespace {

using test::MakePaperExample;
using test::T;

SchemeParams Params(double theta, double alpha,
                    SignatureSchemeKind scheme = SignatureSchemeKind::kDichotomy) {
  SchemeParams p;
  p.scheme = scheme;
  p.phi = SimilarityKind::kJaccard;
  p.theta = theta;
  p.alpha = alpha;
  return p;
}

TEST(DichotomySignatureTest, PaperExample13) {
  // α = δ = 0.7: pick t12, then t11 which completes r3 (b_3 = 2); the bound
  // sum becomes 1 + 1 + 0 = 2.0 < θ = 2.1, so L^T_R = {t11, t12}.
  auto ex = MakePaperExample();
  InvertedIndex index;
  index.Build(ex.data);
  Signature sig = DichotomySignature(ex.ref, index, Params(2.1, 0.7));
  ASSERT_TRUE(sig.valid);
  EXPECT_EQ(sig.FlatTokens(), (std::vector<TokenId>{T(11), T(12)}));
  EXPECT_TRUE(sig.probe[0].empty());
  EXPECT_TRUE(sig.probe[1].empty());
  std::vector<TokenId> l3 = sig.probe[2];
  std::sort(l3.begin(), l3.end());
  EXPECT_EQ(l3, (std::vector<TokenId>{T(11), T(12)}));
  // r3 is α-protected (complete); r1/r2 are not.
  EXPECT_FALSE(sig.alpha_protected[0]);
  EXPECT_FALSE(sig.alpha_protected[1]);
  EXPECT_TRUE(sig.alpha_protected[2]);
  // Miss bounds: 1, 1, 0.
  EXPECT_NEAR(sig.miss_bound[0], 1.0, 1e-12);
  EXPECT_NEAR(sig.miss_bound[1], 1.0, 1e-12);
  EXPECT_NEAR(sig.miss_bound[2], 0.0, 1e-12);
  EXPECT_NEAR(sig.miss_bound_sum, 2.0, 1e-12);
}

TEST(DichotomySignatureTest, AlphaZeroReducesToWeighted) {
  // Section 8.2: all schemes reduce to the weighted scheme when α = 0.
  auto ex = MakePaperExample();
  InvertedIndex index;
  index.Build(ex.data);
  Signature dich = DichotomySignature(ex.ref, index, Params(2.1, 0.0));
  SchemeParams wp = Params(2.1, 0.0, SignatureSchemeKind::kWeighted);
  Signature weighted = WeightedSignature(ex.ref, index, wp);
  EXPECT_EQ(dich.FlatTokens(), weighted.FlatTokens());
  EXPECT_EQ(dich.miss_bound, weighted.miss_bound);
  for (auto prot : dich.alpha_protected) EXPECT_FALSE(prot);
}

TEST(DichotomySignatureTest, ProtectedElementsHaveEnoughUnits) {
  auto ex = MakePaperExample();
  InvertedIndex index;
  index.Build(ex.data);
  for (double alpha : {0.25, 0.5, 0.7, 0.9}) {
    Signature sig = DichotomySignature(ex.ref, index, Params(2.1, alpha));
    const auto units = MakeElementUnits(ex.ref, SimilarityKind::kJaccard);
    for (size_t i = 0; i < sig.probe.size(); ++i) {
      if (!sig.alpha_protected[i]) continue;
      const size_t b = SimThreshUnits(units[i], alpha);
      ASSERT_NE(b, kNoSimThresh);
      EXPECT_GE(sig.probe[i].size(), b) << "alpha=" << alpha << " i=" << i;
      EXPECT_DOUBLE_EQ(sig.miss_bound[i], 0.0);
    }
  }
}

TEST(DichotomySignatureTest, ValidityBoundHolds) {
  auto ex = MakePaperExample();
  InvertedIndex index;
  index.Build(ex.data);
  for (double alpha : {0.0, 0.3, 0.7}) {
    for (double theta : {1.0, 1.8, 2.1, 2.55}) {
      Signature sig = DichotomySignature(ex.ref, index, Params(theta, alpha));
      ASSERT_TRUE(sig.valid);
      EXPECT_LT(sig.miss_bound_sum, theta);
    }
  }
}

TEST(DichotomySignatureTest, LargerAlphaNeverIncreasesProbeCost) {
  // Larger α makes completion cheaper, so the dichotomy signature's probe
  // cost should not grow (on this instance).
  auto ex = MakePaperExample();
  InvertedIndex index;
  index.Build(ex.data);
  const size_t cost_a3 =
      DichotomySignature(ex.ref, index, Params(2.1, 0.3)).Cost(index);
  const size_t cost_a7 =
      DichotomySignature(ex.ref, index, Params(2.1, 0.7)).Cost(index);
  EXPECT_GE(cost_a3, cost_a7);
}

TEST(DichotomySignatureTest, GenerateSignatureDispatches) {
  auto ex = MakePaperExample();
  InvertedIndex index;
  index.Build(ex.data);
  SchemeParams p = Params(2.1, 0.7);
  Signature a = GenerateSignature(ex.ref, index, p);
  Signature b = DichotomySignature(ex.ref, index, p);
  EXPECT_EQ(a.FlatTokens(), b.FlatTokens());
}

}  // namespace
}  // namespace silkmoth
