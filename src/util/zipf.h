#ifndef SILKMOTH_UTIL_ZIPF_H_
#define SILKMOTH_UTIL_ZIPF_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/rng.h"

namespace silkmoth {

/// Zipfian sampler over ranks {0, 1, ..., n-1}.
///
/// Rank k is drawn with probability proportional to 1 / (k+1)^skew. The
/// cumulative distribution is precomputed once so each sample is a binary
/// search (O(log n)). Real-world token frequencies (DBLP words, web-table
/// values) are heavily skewed; the paper's candidate-count behaviour depends
/// on that skew, so the synthetic generators all sample through this class —
/// and the bench harness's query mixes do too, where the sample stream must
/// be *byte-identical across platforms and compilers*.
///
/// Platform independence: the CDF is quantized to 32-bit fixed point at
/// construction (cdf32_[k] = round(P(rank <= k) * 2^32)) and sampling
/// compares a 32-bit uniform integer against it — the hot path is pure
/// integer arithmetic driven by the repository's own xoshiro256** Rng, with
/// no <random> distributions and no floating-point comparisons. The only
/// floating point left is the one-time weight computation (std::pow); libm
/// ulp differences are ~2^-52 and collapse in the 2^-32 quantization, so
/// the emitted rank stream is pinned by golden-stream tests
/// (tests/util_zipf_test.cc) rather than merely "likely identical".
class ZipfDistribution {
 public:
  /// Builds a sampler over `n` ranks with exponent `skew` (>= 0).
  /// skew == 0 degenerates to the uniform distribution.
  ZipfDistribution(size_t n, double skew);

  /// Draws one rank in [0, n). Pure integer path: one 32-bit draw from
  /// `rng`, one binary search over the quantized CDF.
  size_t Sample(Rng* rng) const;

  size_t n() const { return cdf32_.size(); }
  double skew() const { return skew_; }

  /// Probability mass of rank `k` — exactly the mass Sample() realizes
  /// (the quantized CDF's increment), so Σ Pmf(k) == 1 identically and
  /// per-rank values match the analytic 1/(k+1)^skew law to within the
  /// 2^-32 quantization step.
  double Pmf(size_t k) const;

 private:
  double skew_;
  /// cdf32_[k] = round(P(rank <= k) * 2^32); cdf32_.back() == 2^32.
  std::vector<uint64_t> cdf32_;
};

}  // namespace silkmoth

#endif  // SILKMOTH_UTIL_ZIPF_H_
