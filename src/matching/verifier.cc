#include "matching/verifier.h"

#include <algorithm>
#include <string>
#include <unordered_map>
#include <vector>

#include "matching/hungarian.h"
#include "matching/local_max.h"

namespace silkmoth {

MaxMatchingVerifier::MaxMatchingVerifier(const ElementSimilarity* sim,
                                         double alpha, bool use_reduction)
    : sim_(sim),
      alpha_(alpha),
      reduction_active_(use_reduction && alpha <= kFloatSlack &&
                        sim->HasMetricDual()) {}

size_t MaxMatchingVerifier::SelectElements(
    const SetRecord& r, const SetRecord& s,
    std::vector<const Element*>* r_elems,
    std::vector<const Element*>* s_elems) const {
  r_elems->clear();
  s_elems->clear();
  r_elems->reserve(r.elements.size());
  s_elems->reserve(s.elements.size());

  if (!reduction_active_) {
    for (const Element& e : r.elements) r_elems->push_back(&e);
    for (const Element& e : s.elements) s_elems->push_back(&e);
    return 0;
  }

  // Pair identical elements greedily: each identical pair (φ = 1) is in
  // some maximum matching when 1-φ obeys the triangle inequality, and the
  // argument applies inductively to the reduced instance.
  size_t reduced = 0;
  std::unordered_map<std::string, int> s_counts;
  s_counts.reserve(s.elements.size() * 2);
  for (const Element& e : s.elements) {
    s_counts[IdentityKey(e, sim_->kind())] += 1;
  }
  std::unordered_map<std::string, int> consumed;  // R-side pairings done.
  for (const Element& e : r.elements) {
    const std::string key = IdentityKey(e, sim_->kind());
    auto it = s_counts.find(key);
    int available = it == s_counts.end() ? 0 : it->second;
    int& used = consumed[key];
    if (used < available) {
      ++used;
      ++reduced;
    } else {
      r_elems->push_back(&e);
    }
  }
  // Remove the same multiset of elements from S.
  std::unordered_map<std::string, int> to_skip = consumed;
  for (const Element& e : s.elements) {
    const std::string key = IdentityKey(e, sim_->kind());
    auto it = to_skip.find(key);
    if (it != to_skip.end() && it->second > 0) {
      --it->second;
    } else {
      s_elems->push_back(&e);
    }
  }
  return reduced;
}

double MaxMatchingVerifier::ScoreDense(
    const std::vector<const Element*>& r_elems,
    const std::vector<const Element*>& s_elems, MatchingStats* stats) const {
  if (r_elems.empty() || s_elems.empty()) return 0.0;
  WeightMatrix w(r_elems.size(), s_elems.size());
  for (size_t i = 0; i < r_elems.size(); ++i) {
    for (size_t j = 0; j < s_elems.size(); ++j) {
      w.At(i, j) = sim_->ScoreThresholded(*r_elems[i], *s_elems[j], alpha_);
    }
  }
  if (stats != nullptr) {
    stats->matrix_rows = r_elems.size();
    stats->matrix_cols = s_elems.size();
    stats->similarity_calls += r_elems.size() * s_elems.size();
  }
  return MaxWeightMatchingScore(w);
}

double MaxMatchingVerifier::ScoreWithAlignment(
    const SetRecord& r, const SetRecord& s,
    std::vector<AlignedPair>* alignment) const {
  alignment->clear();
  if (r.Empty() || s.Empty()) return 0.0;
  WeightMatrix w(r.Size(), s.Size());
  for (size_t i = 0; i < r.Size(); ++i) {
    for (size_t j = 0; j < s.Size(); ++j) {
      w.At(i, j) =
          sim_->ScoreThresholded(r.elements[i], s.elements[j], alpha_);
    }
  }
  std::vector<int> row_to_col;
  const double score = MaxWeightMatching(w, &row_to_col);
  for (size_t i = 0; i < r.Size(); ++i) {
    const int j = row_to_col[i];
    if (j < 0) continue;
    const double pair_score = w.At(i, static_cast<size_t>(j));
    if (pair_score > 0.0) {
      alignment->push_back(AlignedPair{static_cast<uint32_t>(i),
                                       static_cast<uint32_t>(j), pair_score});
    }
  }
  return score;
}

double MaxMatchingVerifier::Score(const SetRecord& r, const SetRecord& s,
                                  MatchingStats* stats) const {
  std::vector<const Element*> r_elems;
  std::vector<const Element*> s_elems;
  const size_t reduced = SelectElements(r, s, &r_elems, &s_elems);
  if (stats != nullptr) stats->reduced_pairs = reduced;
  return static_cast<double>(reduced) + ScoreDense(r_elems, s_elems, stats);
}

VerifyDecision MaxMatchingVerifier::ScoreDecision(const SetRecord& r,
                                                  const SetRecord& s,
                                                  double theta,
                                                  MatchingStats* stats,
                                                  double margin,
                                                  bool need_exact_score,
                                                  double floor_theta) const {
  // A margin below kFloatSlack would let the reject test (`upper < theta -
  // margin`) pass inputs the exact path accepts (`score >= theta -
  // kFloatSlack`): clamping keeps every bound-settled decision consistent
  // with the exact decision regardless of the caller's margin.
  margin = std::max(margin, kFloatSlack);
  std::vector<const Element*> r_elems;
  std::vector<const Element*> s_elems;
  const size_t reduced = SelectElements(r, s, &r_elems, &s_elems);
  if (stats != nullptr) stats->reduced_pairs = reduced;
  const double base = static_cast<double>(reduced);

  VerifyDecision d;
  if (r_elems.empty() || s_elems.empty()) {
    d.lower = d.upper = d.score = base;
    d.exact = true;
    d.related = d.score >= theta - kFloatSlack;
    if (stats != nullptr) {
      if (d.related) ++stats->bound_accepts;
      else ++stats->bound_rejects;
    }
    return d;
  }

  const size_t rows = r_elems.size();
  const size_t cols = s_elems.size();
  WeightMatrix w(rows, cols);
  std::vector<double> row_max(rows, 0.0);
  std::vector<double> col_max(cols, 0.0);
  for (size_t i = 0; i < rows; ++i) {
    for (size_t j = 0; j < cols; ++j) {
      const double v = sim_->ScoreThresholded(*r_elems[i], *s_elems[j], alpha_);
      w.At(i, j) = v;
      row_max[i] = std::max(row_max[i], v);
      col_max[j] = std::max(col_max[j], v);
    }
  }
  if (stats != nullptr) {
    stats->matrix_rows = rows;
    stats->matrix_cols = cols;
    stats->similarity_calls += rows * cols;
  }

  // Upper bound: every matched pair is at most its row maximum and its
  // column maximum, and each row/column hosts at most one pair.
  double row_sum = 0.0;
  for (double v : row_max) row_sum += v;
  double col_sum = 0.0;
  for (double v : col_max) col_sum += v;
  d.upper = base + std::min(row_sum, col_sum);
  // The reduced pairs alone form a feasible matching, so `base` is already
  // a valid lower bound; the greedy bound below can only raise it.
  d.lower = base;

  if (d.upper < theta - margin) {
    // Even a perfect row-wise assignment cannot reach theta. Rejects are
    // the dominant fast-path outcome, so this test runs before any edge
    // materialization or sorting.
    d.related = false;
    d.score = d.upper;
    if (stats != nullptr) ++stats->bound_rejects;
    return d;
  }

  if (floor_theta > theta && d.upper < floor_theta - margin) {
    // θ-related or not, this candidate cannot reach the caller's floating
    // floor (top-k's current k-th-best score), so no bound or solve is
    // worth running on it.
    d.related = false;
    d.score = d.upper;
    if (stats != nullptr) ++stats->floor_rejects;
    return d;
  }

  // Lower bound: a greedy matching — rows visited in descending row-maximum
  // order, each taking its heaviest still-free column — is a feasible
  // matching, hence a lower bound on the optimum (Birn et al. show greedy
  // matchings are near-optimal in practice). Row ordering costs O(n log n)
  // and the scan O(nm), no heavier than the matrix fill above; no per-edge
  // materialization or sort.
  std::vector<uint32_t> order(rows);
  for (size_t i = 0; i < rows; ++i) order[i] = static_cast<uint32_t>(i);
  std::sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
    if (row_max[a] != row_max[b]) return row_max[a] > row_max[b];
    return a < b;
  });
  std::vector<uint8_t> col_used(cols, 0);
  double greedy = 0.0;
  for (uint32_t i : order) {
    if (row_max[i] <= 0.0) break;  // Remaining rows are all-zero.
    double best = 0.0;
    size_t best_j = cols;
    for (size_t j = 0; j < cols; ++j) {
      if (!col_used[j] && w.At(i, j) > best) {
        best = w.At(i, j);
        best_j = j;
      }
    }
    if (best_j < cols) {
      col_used[best_j] = 1;
      greedy += best;
    }
  }
  d.lower = base + greedy;

  if (d.lower >= theta + margin) {
    // The greedy matching alone already certifies relatedness. The greedy
    // sum's summation order differs from the exact solver's, so it is never
    // reported as exact; when the caller needs the reportable score the
    // solver runs on the matrix already in hand (reporting cost only — the
    // decision was settled by the bound).
    d.related = true;
    if (need_exact_score) {
      d.score = base + MaxWeightMatchingScore(w);
      d.exact = true;
      if (stats != nullptr) ++stats->reporting_solves;
    } else {
      d.score = d.lower;
    }
    if (stats != nullptr) ++stats->bound_accepts;
    return d;
  }

  // Tier 2: the local-max matching (Birn et al.) is near-linear on this
  // already-built matrix and incomparable with the row-greedy bound, so the
  // lower bound becomes the max of the two. Its 1/2-of-optimum guarantee
  // also makes bound-only reported scores (`--approx-scores`) at least half
  // the exact score whenever this tier settles the accept.
  d.lower = base + std::max(greedy, LocalMaxMatchingScore(w));
  if (d.lower >= theta + margin) {
    d.related = true;
    if (need_exact_score) {
      d.score = base + MaxWeightMatchingScore(w);
      d.exact = true;
      if (stats != nullptr) ++stats->reporting_solves;
    } else {
      d.score = d.lower;
    }
    if (stats != nullptr) ++stats->tier2_accepts;
    return d;
  }

  // Ambiguous band: only here does the exact solver run.
  d.score = base + MaxWeightMatchingScore(w);
  d.exact = true;
  d.related = d.score >= theta - kFloatSlack;
  if (stats != nullptr) ++stats->exact_solves;
  return d;
}

}  // namespace silkmoth
