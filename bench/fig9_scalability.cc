// Figure 9 reproduction: scalability of SilkMoth with the number of sets,
// for all three applications and δ in {0.7..0.85}, with every optimization
// enabled (Section 8.6).
//
// Expected shape (paper): runtime grows super-linearly but remains tractable
// (e.g. schema matching 500K -> 2.5M sets is 68s -> 1993s); larger δ is
// uniformly cheaper.

#include <iostream>

#include "bench_common.h"

int main() {
  using namespace silkmoth;
  using namespace silkmoth::bench;

  PrintHeader("Figure 9", "scalability with number of sets");

  const double kDeltas[] = {0.7, 0.75, 0.8, 0.85};

  struct App {
    const char* figure;
    std::vector<size_t> sizes;
  };
  const App kApps[] = {
      {"9a String Matching (alpha=0.8)", {250, 500, 1000}},
      {"9b Schema Matching (alpha=0)", {600, 1200, 2400}},
      {"9c Inclusion Dependency (alpha=0.5)", {1250, 2500, 5000}},
  };

  for (const App& app : kApps) {
    std::cout << "--- Figure " << app.figure << " ---\n";
    TablePrinter table({"num_sets", "delta", "time(s)", "results"});
    for (size_t base_size : app.sizes) {
      const size_t n = Scaled(base_size);
      for (double delta : kDeltas) {
        Workload w;
        if (app.figure[0] == '9' && app.figure[1] == 'a') {
          w = StringMatchingWorkload(n, delta);
        } else if (app.figure[1] == 'b') {
          w = SchemaMatchingWorkload(n, delta);
        } else {
          w = InclusionDependencyWorkload(n, std::max<size_t>(10, n / 60),
                                          delta);
        }
        const RunResult r = RunSilkMoth(w);
        table.AddRow({TablePrinter::Int(static_cast<long long>(n)),
                      TablePrinter::Num(delta, 2),
                      TablePrinter::Num(r.seconds, 3),
                      TablePrinter::Int(static_cast<long long>(r.results))});
      }
    }
    table.Print(std::cout);
    std::cout << "\n";
  }
  return 0;
}
