#ifndef SILKMOTH_UTIL_ENV_H_
#define SILKMOTH_UTIL_ENV_H_

#include <string>

namespace silkmoth {

/// Reads an integer environment variable, returning `fallback` when unset or
/// unparsable. Benchmarks use this for SILKMOTH_BENCH_SCALE so the same
/// binaries run laptop-scale by default and paper-scale on demand.
long long GetEnvInt(const std::string& name, long long fallback);

/// Reads a floating-point environment variable with a fallback.
double GetEnvDouble(const std::string& name, double fallback);

/// Global multiplier applied to benchmark dataset sizes
/// (SILKMOTH_BENCH_SCALE, default 1).
double BenchScale();

}  // namespace silkmoth

#endif  // SILKMOTH_UTIL_ENV_H_
