#include <gtest/gtest.h>

#include "matching/verifier.h"
#include "paper_example.h"

namespace silkmoth {
namespace {

using test::MakePaperExample;

TEST(AlignmentTest, PaperExample2Alignment) {
  // Example 2: r1 aligns with s41, r2 with s42, r3 with s43.
  auto ex = MakePaperExample();
  MaxMatchingVerifier verifier(GetSimilarity(SimilarityKind::kJaccard), 0.0,
                               false);
  std::vector<AlignedPair> alignment;
  const double m =
      verifier.ScoreWithAlignment(ex.ref, ex.data.sets[3], &alignment);
  EXPECT_NEAR(m, 0.8 + 1.0 + 3.0 / 7.0, 1e-9);
  ASSERT_EQ(alignment.size(), 3u);
  EXPECT_EQ(alignment[0], (AlignedPair{0, 0, 0.8}));
  EXPECT_EQ(alignment[1], (AlignedPair{1, 1, 1.0}));
  EXPECT_EQ(alignment[2].r_elem, 2u);
  EXPECT_EQ(alignment[2].s_elem, 2u);
  EXPECT_NEAR(alignment[2].score, 3.0 / 7.0, 1e-12);
}

TEST(AlignmentTest, ScoreMatchesPlainScore) {
  auto ex = MakePaperExample();
  MaxMatchingVerifier verifier(GetSimilarity(SimilarityKind::kJaccard), 0.0,
                               false);
  for (const SetRecord& s : ex.data.sets) {
    std::vector<AlignedPair> alignment;
    const double with = verifier.ScoreWithAlignment(ex.ref, s, &alignment);
    const double plain = verifier.Score(ex.ref, s);
    EXPECT_NEAR(with, plain, 1e-9);
    double sum = 0.0;
    for (const AlignedPair& p : alignment) sum += p.score;
    EXPECT_NEAR(sum, with, 1e-9);
  }
}

TEST(AlignmentTest, NoColumnReuse) {
  auto ex = MakePaperExample();
  MaxMatchingVerifier verifier(GetSimilarity(SimilarityKind::kJaccard), 0.0,
                               false);
  std::vector<AlignedPair> alignment;
  verifier.ScoreWithAlignment(ex.ref, ex.data.sets[2], &alignment);
  std::vector<bool> used(ex.data.sets[2].Size(), false);
  for (const AlignedPair& p : alignment) {
    ASSERT_LT(p.s_elem, used.size());
    EXPECT_FALSE(used[p.s_elem]);
    used[p.s_elem] = true;
  }
}

TEST(AlignmentTest, AlphaSuppressesWeakPairs) {
  auto ex = MakePaperExample();
  MaxMatchingVerifier verifier(GetSimilarity(SimilarityKind::kJaccard), 0.9,
                               false);
  std::vector<AlignedPair> alignment;
  verifier.ScoreWithAlignment(ex.ref, ex.data.sets[3], &alignment);
  // Only r2-s42 (score 1.0) survives α = 0.9.
  ASSERT_EQ(alignment.size(), 1u);
  EXPECT_EQ(alignment[0].r_elem, 1u);
  EXPECT_DOUBLE_EQ(alignment[0].score, 1.0);
}

TEST(AlignmentTest, EmptySets) {
  MaxMatchingVerifier verifier(GetSimilarity(SimilarityKind::kJaccard), 0.0,
                               false);
  SetRecord empty;
  std::vector<AlignedPair> alignment = {{9, 9, 9.0}};
  EXPECT_DOUBLE_EQ(verifier.ScoreWithAlignment(empty, empty, &alignment),
                   0.0);
  EXPECT_TRUE(alignment.empty());
}

}  // namespace
}  // namespace silkmoth
