#include <algorithm>

#include <gtest/gtest.h>

#include "paper_example.h"
#include "sig/scheme.h"
#include "sig/simthresh.h"

namespace silkmoth {
namespace {

using test::MakePaperExample;
using test::T;

SchemeParams Params(double theta, double alpha) {
  SchemeParams p;
  p.scheme = SignatureSchemeKind::kSkyline;
  p.phi = SimilarityKind::kJaccard;
  p.theta = theta;
  p.alpha = alpha;
  return p;
}

TEST(SkylineSignatureTest, PaperExample12) {
  // α = δ = 0.7: the weighted signature {t8},{t9,t10},{t11,t12} stays as-is
  // because |k_1| = 1 < b = 2 and |k_2| = |k_3| = 2 = b (cut keeps both).
  auto ex = MakePaperExample();
  InvertedIndex index;
  index.Build(ex.data);
  Signature sig = SkylineSignature(ex.ref, index, Params(2.1, 0.7));
  ASSERT_TRUE(sig.valid);
  EXPECT_EQ(sig.FlatTokens(),
            (std::vector<TokenId>{T(8), T(9), T(10), T(11), T(12)}));
  EXPECT_FALSE(sig.alpha_protected[0]);  // |k_1| < b: kept, unprotected.
  EXPECT_TRUE(sig.alpha_protected[1]);   // |k_2| >= b: protected.
  EXPECT_TRUE(sig.alpha_protected[2]);
  EXPECT_NEAR(sig.miss_bound[0], 0.8, 1e-12);
  EXPECT_DOUBLE_EQ(sig.miss_bound[1], 0.0);
  EXPECT_DOUBLE_EQ(sig.miss_bound[2], 0.0);
}

TEST(SkylineSignatureTest, AlphaZeroReducesToWeighted) {
  auto ex = MakePaperExample();
  InvertedIndex index;
  index.Build(ex.data);
  SchemeParams sp = Params(2.1, 0.0);
  Signature sky = SkylineSignature(ex.ref, index, sp);
  sp.scheme = SignatureSchemeKind::kWeighted;
  Signature weighted = WeightedSignature(ex.ref, index, sp);
  EXPECT_EQ(sky.FlatTokens(), weighted.FlatTokens());
  EXPECT_EQ(sky.miss_bound, weighted.miss_bound);
}

TEST(SkylineSignatureTest, CutKeepsCheapestTokens) {
  // Force a big k_i by using high θ, then check the cut picks min-cost
  // tokens.
  auto ex = MakePaperExample();
  InvertedIndex index;
  index.Build(ex.data);
  Signature sig = SkylineSignature(ex.ref, index, Params(2.95, 0.5));
  ASSERT_TRUE(sig.valid);
  const auto units = MakeElementUnits(ex.ref, SimilarityKind::kJaccard);
  for (size_t i = 0; i < sig.probe.size(); ++i) {
    if (!sig.alpha_protected[i]) continue;
    const size_t b = SimThreshUnits(units[i], 0.5);
    ASSERT_NE(b, kNoSimThresh);
    EXPECT_GE(sig.probe[i].size(), b);
    // Probe tokens of a protected element must be among the element's own
    // tokens.
    for (TokenId t : sig.probe[i]) {
      EXPECT_TRUE(std::binary_search(ex.ref.elements[i].tokens.begin(),
                                     ex.ref.elements[i].tokens.end(), t));
    }
  }
}

TEST(SkylineSignatureTest, ProbeCostNeverAboveWeighted) {
  // The cut can only remove probe tokens, so skyline's probe cost is at most
  // the weighted signature's cost.
  auto ex = MakePaperExample();
  InvertedIndex index;
  index.Build(ex.data);
  for (double alpha : {0.3, 0.5, 0.7}) {
    SchemeParams sp = Params(2.1, alpha);
    const size_t sky = SkylineSignature(ex.ref, index, sp).Cost(index);
    sp.scheme = SignatureSchemeKind::kWeighted;
    const size_t wtd = WeightedSignature(ex.ref, index, sp).Cost(index);
    EXPECT_LE(sky, wtd) << "alpha=" << alpha;
  }
}

TEST(SkylineSignatureTest, ValidityBoundHolds) {
  auto ex = MakePaperExample();
  InvertedIndex index;
  index.Build(ex.data);
  for (double alpha : {0.0, 0.5, 0.7}) {
    for (double theta : {1.2, 2.1, 2.7}) {
      Signature sig = SkylineSignature(ex.ref, index, Params(theta, alpha));
      ASSERT_TRUE(sig.valid);
      EXPECT_LT(sig.miss_bound_sum, theta);
    }
  }
}

}  // namespace
}  // namespace silkmoth
