#include "sig/npc_reduction.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>

#include "text/similarity.h"

namespace silkmoth {
namespace {

bool IsPrime(int64_t x) {
  if (x < 2) return false;
  for (int64_t d = 2; d * d <= x; ++d) {
    if (x % d == 0) return false;
  }
  return true;
}

// Value of an inverse-prime number over the common denominator Π primes:
// Σ_{i in prime_idx} (Π primes) / primes[i].
int64_t NumeratorOverCommonDenominator(const InversePrimeNumber& number,
                                       const std::vector<int64_t>& primes,
                                       int64_t denominator) {
  int64_t v = 0;
  for (int idx : number.prime_idx) v += denominator / primes[idx];
  return v;
}

}  // namespace

std::vector<int64_t> PrimesFromSeven(int count) {
  std::vector<int64_t> primes;
  for (int64_t x = 7; static_cast<int>(primes.size()) < count; ++x) {
    if (IsPrime(x)) primes.push_back(x);
  }
  return primes;
}

InversePrimeInstance ReduceCnfToInversePrimeSubsetSum(
    const CnfFormula& formula) {
  const int n = formula.num_variables;
  const int m = static_cast<int>(formula.clauses.size());
  InversePrimeInstance inst;
  inst.primes = PrimesFromSeven(n + m);

  // Per variable x_i: a "true" number t_i (prime i plus the primes of the
  // clauses containing the positive literal) and a "false" number f_i
  // (prime i plus the clauses containing the negation).
  for (int v = 1; v <= n; ++v) {
    InversePrimeNumber t, f;
    t.prime_idx.push_back(v - 1);
    f.prime_idx.push_back(v - 1);
    for (int c = 0; c < m; ++c) {
      // Membership, not multiplicity: a clause repeating a literal (legal in
      // 3-CNF) contributes its prime once.
      bool pos = false, neg = false;
      for (int lit : formula.clauses[c]) {
        pos |= lit == v;
        neg |= lit == -v;
      }
      if (pos) t.prime_idx.push_back(n + c);
      if (neg) f.prime_idx.push_back(n + c);
    }
    inst.numbers.push_back(std::move(t));
    inst.numbers.push_back(std::move(f));
  }
  // Per clause c_j: two slack numbers u_j = v_j = 1/p_{n+j}.
  for (int c = 0; c < m; ++c) {
    InversePrimeNumber u;
    u.prime_idx.push_back(n + c);
    inst.numbers.push_back(u);
    inst.numbers.push_back(u);
  }
  // Target s = Σ_{i<=n} 1/p_i + 3 Σ_{j<=m} 1/p_{n+j}.
  for (int v = 0; v < n; ++v) inst.target.prime_idx.push_back(v);
  for (int rep = 0; rep < 3; ++rep) {
    for (int c = 0; c < m; ++c) inst.target.prime_idx.push_back(n + c);
  }
  return inst;
}

std::optional<std::vector<size_t>> SolveInversePrimeSubsetSum(
    const InversePrimeInstance& instance) {
  int64_t denominator = 1;
  for (int64_t p : instance.primes) denominator *= p;

  const size_t count = instance.numbers.size();
  std::vector<int64_t> value(count);
  for (size_t i = 0; i < count; ++i) {
    value[i] = NumeratorOverCommonDenominator(instance.numbers[i],
                                              instance.primes, denominator);
  }
  const int64_t target = NumeratorOverCommonDenominator(
      instance.target, instance.primes, denominator);

  for (uint64_t mask = 0; mask < (uint64_t{1} << count); ++mask) {
    int64_t sum = 0;
    for (size_t i = 0; i < count; ++i) {
      if (mask >> i & 1) sum += value[i];
    }
    if (sum == target) {
      std::vector<size_t> chosen;
      for (size_t i = 0; i < count; ++i) {
        if (mask >> i & 1) chosen.push_back(i);
      }
      return chosen;
    }
  }
  return std::nullopt;
}

bool CnfSatisfiableBruteForce(const CnfFormula& formula) {
  const int n = formula.num_variables;
  for (uint64_t assignment = 0; assignment < (uint64_t{1} << n);
       ++assignment) {
    bool ok = true;
    for (const auto& clause : formula.clauses) {
      bool clause_true = false;
      for (int lit : clause) {
        const int v = std::abs(lit) - 1;
        const bool value = assignment >> v & 1;
        clause_true |= lit > 0 ? value : !value;
      }
      if (!clause_true) {
        ok = false;
        break;
      }
    }
    if (ok) return true;
  }
  return n == 0 && formula.clauses.empty();
}

SignatureDecisionInstance ReduceSubsetSumToSignatureDecision(
    const InversePrimeInstance& instance) {
  int64_t denominator = 1;
  for (int64_t p : instance.primes) denominator *= p;

  SignatureDecisionInstance out;
  // Token 0..|A|-1: one per number a_i, with |I[t_i]| = a_i * Π p. Later
  // ids: dummy tokens with arbitrarily large lists (cost k+1 suffices to
  // exclude them from any optimal signature).
  int next_dummy = static_cast<int>(instance.numbers.size());
  size_t total_elements = 0;
  for (size_t i = 0; i < instance.numbers.size(); ++i) {
    out.list_size.push_back(NumeratorOverCommonDenominator(
        instance.numbers[i], instance.primes, denominator));
    // One element r_i^p per prime p in P_i: token t_i plus p-1 dummies.
    for (int idx : instance.numbers[i].prime_idx) {
      std::vector<int> elem;
      elem.push_back(static_cast<int>(i));
      for (int64_t d = 1; d < instance.primes[idx]; ++d) {
        elem.push_back(next_dummy++);
      }
      out.elements.push_back(std::move(elem));
      ++total_elements;
    }
  }
  out.k = NumeratorOverCommonDenominator(instance.target, instance.primes,
                                         denominator);
  // Dummy lists: larger than k so no optimal signature can afford them.
  const int64_t huge = out.k + 1;
  out.list_size.resize(static_cast<size_t>(next_dummy), huge);

  // δ = 1 − (s − ε) / Σ|P_i| with s = Σ_{p∈target} 1/p and ε tiny.
  double s_value = 0.0;
  for (int idx : instance.target.prime_idx) {
    s_value += 1.0 / static_cast<double>(instance.primes[idx]);
  }
  const double epsilon = 1e-7;
  out.delta =
      1.0 - (s_value - epsilon) / static_cast<double>(total_elements);
  return out;
}

bool SignatureDecisionBruteForce(const SignatureDecisionInstance& instance) {
  // Tokens with |I[t]| > k can never belong to a signature of cost <= k, so
  // the dummies drop out before enumeration (that exclusion is exactly what
  // the construction's "arbitrarily large" dummy lists are for).
  std::vector<int> tokens;
  for (const auto& elem : instance.elements) {
    for (int t : elem) {
      if (instance.list_size[static_cast<size_t>(t)] <= instance.k) {
        tokens.push_back(t);
      }
    }
  }
  std::sort(tokens.begin(), tokens.end());
  tokens.erase(std::unique(tokens.begin(), tokens.end()), tokens.end());
  if (tokens.size() >= 24) return false;  // Out of test-oracle range.

  const double theta =
      instance.delta * static_cast<double>(instance.elements.size());

  for (uint64_t mask = 0; mask < (uint64_t{1} << tokens.size()); ++mask) {
    int64_t cost = 0;
    for (size_t i = 0; i < tokens.size(); ++i) {
      if (mask >> i & 1) cost += instance.list_size[tokens[i]];
    }
    if (cost > instance.k) continue;
    // Weighted-scheme validity (Definition 5): Σ (|r|-|k_r|)/|r| < θ.
    double bound_sum = 0.0;
    for (const auto& elem : instance.elements) {
      size_t selected = 0;
      for (int t : elem) {
        for (size_t i = 0; i < tokens.size(); ++i) {
          if ((mask >> i & 1) && tokens[i] == t) {
            ++selected;
            break;
          }
        }
      }
      bound_sum += static_cast<double>(elem.size() - selected) /
                   static_cast<double>(elem.size());
    }
    if (bound_sum < theta - kFloatSlack) return true;
  }
  return false;
}

}  // namespace silkmoth
