#include "bench/workload.h"

#include <algorithm>

#include "datagen/dblp.h"
#include "datagen/webtable.h"
#include "util/rng.h"
#include "util/zipf.h"

namespace silkmoth::bench {

const char* CorpusKindName(CorpusKind kind) {
  switch (kind) {
    case CorpusKind::kDblpTitles: return "dblp";
    case CorpusKind::kSchemaSets: return "schema";
    case CorpusKind::kColumnSets: return "columns";
  }
  return "?";
}

const char* QueryMixName(QueryMix mix) {
  return mix == QueryMix::kZipfian ? "zipfian" : "uniform";
}

const char* RunModeName(RunMode mode) {
  return mode == RunMode::kSustained ? "sustained" : "closed-loop";
}

RawSets GenerateCorpusRaw(CorpusKind kind, size_t num_sets, uint64_t seed) {
  switch (kind) {
    case CorpusKind::kDblpTitles: {
      // The string-matching shape of bench/bench_common.h: mid-size
      // vocabulary, 5-12 words, 20% near-duplicates with 10% typos.
      DblpParams p;
      p.num_titles = num_sets;
      p.vocabulary = std::max<size_t>(200, num_sets * 2);
      p.min_words = 5;
      p.max_words = 12;
      p.duplicate_rate = 0.2;
      p.typo_rate = 0.1;
      p.seed = seed;
      return GenerateDblpSets(p);
    }
    case CorpusKind::kSchemaSets:
      return GenerateSchemaSets(SchemaMatchingDefaults(num_sets, seed));
    case CorpusKind::kColumnSets: {
      // The inclusion-dependency shape: many short elements per column.
      WebTableParams p = InclusionDependencyDefaults(num_sets, seed);
      p.min_elements = 14;
      p.max_elements = 30;
      return GenerateColumnSets(p);
    }
  }
  return {};
}

TokenizerKind SpecTokenizer(const WorkloadSpec& spec) {
  return IsEditSimilarity(spec.options.phi) ? TokenizerKind::kQGram
                                            : TokenizerKind::kWord;
}

namespace {

WorkloadSpec Base(const char* name, const char* scenario) {
  WorkloadSpec s;
  s.name = name;
  s.scenario = scenario;
  return s;
}

std::vector<WorkloadSpec> BuildRegistry() {
  std::vector<WorkloadSpec> all;

  {  // Schema matching served uniformly: the no-skew baseline.
    WorkloadSpec s = Base("schema-sim-uniform",
                          "schema matching (Jaccard similarity), uniform mix");
    s.corpus = CorpusKind::kSchemaSets;
    s.corpus_sets = 600;
    s.corpus_seed = 7;
    s.options.metric = Relatedness::kSimilarity;
    s.options.phi = SimilarityKind::kJaccard;
    s.options.delta = 0.7;
    s.options.alpha = 0.25;
    s.mix = QueryMix::kUniform;
    s.requests = 48;
    s.batch = 4;
    all.push_back(s);
  }
  {  // The same scenario under a hot-key mix — the serving-traffic shape.
    WorkloadSpec s = Base("schema-sim-zipf",
                          "schema matching (Jaccard similarity), zipfian mix");
    s.corpus = CorpusKind::kSchemaSets;
    s.corpus_sets = 600;
    s.corpus_seed = 7;
    s.options.metric = Relatedness::kSimilarity;
    s.options.phi = SimilarityKind::kJaccard;
    s.options.delta = 0.7;
    s.options.alpha = 0.25;
    s.mix = QueryMix::kZipfian;
    s.zipf_skew = 0.99;
    s.requests = 48;
    s.batch = 4;
    s.workers = 2;
    all.push_back(s);
  }
  {  // String matching over q-grams: the edit-similarity cost profile.
    WorkloadSpec s = Base("titles-eds-zipf",
                          "string matching (Eds over q-grams), zipfian mix");
    s.corpus = CorpusKind::kDblpTitles;
    s.corpus_sets = 400;
    s.corpus_seed = 42;
    s.options.metric = Relatedness::kSimilarity;
    s.options.phi = SimilarityKind::kEds;
    s.options.delta = 0.7;
    s.options.alpha = 0.8;
    s.mix = QueryMix::kZipfian;
    s.zipf_skew = 1.0;
    s.requests = 24;
    s.batch = 2;
    s.workers = 2;
    all.push_back(s);
  }
  {  // Inclusion dependency: asymmetric containment, element-heavy sets.
    WorkloadSpec s = Base("columns-cont-uniform",
                          "inclusion dependency (containment), uniform mix");
    s.corpus = CorpusKind::kColumnSets;
    s.corpus_sets = 500;
    s.corpus_seed = 11;
    s.options.metric = Relatedness::kContainment;
    s.options.phi = SimilarityKind::kJaccard;
    s.options.delta = 0.7;
    s.options.alpha = 0.5;
    s.mix = QueryMix::kUniform;
    s.requests = 48;
    s.batch = 4;
    all.push_back(s);
  }
  {  // Containment under skew across 4 shards: the hot-shard stress —
     // zipfian ranks map to low set ids, which contiguous partitioning
     // concentrates in the first shards.
    WorkloadSpec s = Base("columns-cont-zipf-4shard",
                          "inclusion dependency, zipfian mix, 4 shards");
    s.corpus = CorpusKind::kColumnSets;
    s.corpus_sets = 500;
    s.corpus_seed = 11;
    s.options.metric = Relatedness::kContainment;
    s.options.phi = SimilarityKind::kJaccard;
    s.options.delta = 0.7;
    s.options.alpha = 0.5;
    s.options.num_shards = 4;
    s.mix = QueryMix::kZipfian;
    s.zipf_skew = 0.99;
    s.requests = 48;
    s.batch = 4;
    s.workers = 2;
    all.push_back(s);
  }
  {  // Saturation throughput on the schema corpus, 2 shards, 2 workers.
    WorkloadSpec s = Base("schema-sim-sustained",
                          "schema matching, zipfian mix, sustained load");
    s.corpus = CorpusKind::kSchemaSets;
    s.corpus_sets = 400;
    s.corpus_seed = 7;
    s.options.metric = Relatedness::kSimilarity;
    s.options.phi = SimilarityKind::kJaccard;
    s.options.delta = 0.7;
    s.options.alpha = 0.25;
    s.options.num_shards = 2;
    s.mix = QueryMix::kZipfian;
    s.zipf_skew = 0.99;
    s.requests = 32;
    s.batch = 4;
    s.workers = 2;
    s.mode = RunMode::kSustained;
    s.sustained_seconds = 0.4;
    all.push_back(s);
  }
  {  // Top-k serving: the floating k-th-best floor at work. A lower δ
     // admits many θ-related sets per reference; once the k-best heap
     // fills, most of them are rejected against the running floor before
     // any solve — heap_floor_rejects > 0, and exact_solves +
     // reporting_solves measurably below the score-everything oracle's.
    WorkloadSpec s = Base("columns-cont-topk",
                          "inclusion dependency (Jaccard containment), "
                          "top-4 serving");
    s.corpus = CorpusKind::kColumnSets;
    s.corpus_sets = 600;
    s.corpus_seed = 11;
    s.options.metric = Relatedness::kContainment;
    s.options.phi = SimilarityKind::kJaccard;
    s.options.delta = 0.05;
    s.options.alpha = 0.0;
    // Serve on signatures + check filter alone: the verifier tier sees the
    // full candidate stream, which is what the floating floor is for.
    s.options.nn_filter = false;
    s.mix = QueryMix::kZipfian;
    s.zipf_skew = 0.99;
    s.requests = 48;
    s.batch = 4;
    s.workers = 2;
    s.top_k = 4;
    all.push_back(s);
  }
  {  // The titles-eds-zipf scenario served through the resident daemon's
     // frame path: same corpus, same stream, but every request is encoded,
     // admitted, and answered by ServeEngine workers — what one serve
     // daemon costs relative to direct engine calls.
    WorkloadSpec s = Base("serve-titles-eds-zipf",
                          "string matching (Eds over q-grams), zipfian mix, "
                          "through the serve engine");
    s.corpus = CorpusKind::kDblpTitles;
    s.corpus_sets = 400;
    s.corpus_seed = 42;
    s.options.metric = Relatedness::kSimilarity;
    s.options.phi = SimilarityKind::kEds;
    s.options.delta = 0.7;
    s.options.alpha = 0.8;
    s.mix = QueryMix::kZipfian;
    s.zipf_skew = 1.0;
    s.requests = 24;
    s.batch = 2;
    s.workers = 2;
    s.mode = RunMode::kSustained;
    s.sustained_seconds = 0.3;
    s.serve = true;
    all.push_back(s);
  }
  {  // The titles-eds-zipf scenario over a dynamic corpus: the last 40
     // titles are withheld from the base index and arrive as one timed
     // delta-shard ingest mid-run. Round 0 then streams every request
     // through base shards + the delta view — the live-ingest serving
     // shape, directly comparable with its static twin (same corpus,
     // same stream hash).
    WorkloadSpec s = Base("titles-eds-zipf-delta",
                          "string matching (Eds over q-grams), zipfian mix, "
                          "40-set delta ingest");
    s.corpus = CorpusKind::kDblpTitles;
    s.corpus_sets = 400;
    s.corpus_seed = 42;
    s.options.metric = Relatedness::kSimilarity;
    s.options.phi = SimilarityKind::kEds;
    s.options.delta = 0.7;
    s.options.alpha = 0.8;
    s.mix = QueryMix::kZipfian;
    s.zipf_skew = 1.0;
    s.requests = 24;
    s.batch = 2;
    s.workers = 2;
    s.delta_sets = 40;
    all.push_back(s);
  }
  {  // Sustained containment with --approx-scores: how much throughput the
     // bound-only reporting path buys (bound_only_scores > 0 expected).
    WorkloadSpec s = Base("columns-approx-sustained",
                          "inclusion dependency, approx scores, sustained");
    s.corpus = CorpusKind::kColumnSets;
    s.corpus_sets = 400;
    s.corpus_seed = 11;
    s.options.metric = Relatedness::kContainment;
    s.options.phi = SimilarityKind::kJaccard;
    s.options.delta = 0.7;
    s.options.alpha = 0.5;
    s.options.exact_scores = false;
    s.mix = QueryMix::kUniform;
    s.requests = 32;
    s.batch = 4;
    s.workers = 2;
    s.mode = RunMode::kSustained;
    s.sustained_seconds = 0.4;
    all.push_back(s);
  }
  return all;
}

}  // namespace

const std::vector<WorkloadSpec>& AllWorkloads() {
  static const std::vector<WorkloadSpec> kRegistry = BuildRegistry();
  return kRegistry;
}

const WorkloadSpec* FindWorkload(std::string_view name) {
  for (const WorkloadSpec& spec : AllWorkloads()) {
    if (spec.name == name) return &spec;
  }
  return nullptr;
}

std::vector<uint32_t> GenerateRequestStream(const WorkloadSpec& spec,
                                            size_t num_corpus_sets) {
  std::vector<uint32_t> stream;
  const size_t total = spec.requests * spec.batch;
  stream.reserve(total);
  if (num_corpus_sets == 0) return stream;
  Rng rng(spec.request_seed);
  if (spec.mix == QueryMix::kZipfian) {
    const ZipfDistribution zipf(num_corpus_sets, spec.zipf_skew);
    for (size_t i = 0; i < total; ++i) {
      stream.push_back(static_cast<uint32_t>(zipf.Sample(&rng)));
    }
  } else {
    for (size_t i = 0; i < total; ++i) {
      stream.push_back(static_cast<uint32_t>(rng.NextBounded(num_corpus_sets)));
    }
  }
  return stream;
}

std::string SerializeRequestStream(const std::vector<uint32_t>& stream,
                                   size_t batch) {
  std::string out;
  const size_t width = batch == 0 ? 1 : batch;
  for (size_t i = 0; i < stream.size(); ++i) {
    out += std::to_string(stream[i]);
    out += (i + 1) % width == 0 ? '\n' : ',';
  }
  return out;
}

uint64_t HashRequestStream(const std::vector<uint32_t>& stream, size_t batch) {
  const std::string bytes = SerializeRequestStream(stream, batch);
  uint64_t h = 0xcbf29ce484222325ULL;  // FNV-1a offset basis.
  for (unsigned char c : bytes) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace silkmoth::bench
