#ifndef SILKMOTH_UTIL_TABLE_PRINTER_H_
#define SILKMOTH_UTIL_TABLE_PRINTER_H_

#include <ostream>
#include <string>
#include <vector>

namespace silkmoth {

/// Column-aligned text table used by the figure/table benchmark binaries to
/// print the same rows/series the paper reports. Cells are strings; helpers
/// format numbers consistently.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  /// Appends one row; the row is padded/truncated to the header width.
  void AddRow(std::vector<std::string> cells);

  /// Writes the table with aligned columns to `out`.
  void Print(std::ostream& out) const;

  /// Formats a double with `digits` fractional digits.
  static std::string Num(double v, int digits = 2);

  /// Formats an integer with no grouping.
  static std::string Int(long long v);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace silkmoth

#endif  // SILKMOTH_UTIL_TABLE_PRINTER_H_
