// Component micro-benchmarks (google-benchmark): Levenshtein variants,
// Hungarian matching, reduction-based verification, inverted index build,
// signature generation, and NN search. These are ablations for the design
// choices DESIGN.md calls out; they are not paper figures.

#include <benchmark/benchmark.h>

#include "datagen/builders.h"
#include "datagen/dblp.h"
#include "datagen/webtable.h"
#include "filter/nn_filter.h"
#include "index/inverted_index.h"
#include "matching/hungarian.h"
#include "matching/verifier.h"
#include "sig/scheme.h"
#include "text/levenshtein.h"
#include "util/rng.h"

namespace silkmoth {
namespace {

std::string RandomString(Rng* rng, size_t len) {
  std::string s;
  for (size_t i = 0; i < len; ++i) {
    s.push_back(static_cast<char>('a' + rng->NextBounded(26)));
  }
  return s;
}

void BM_LevenshteinFull(benchmark::State& state) {
  Rng rng(1);
  const size_t len = static_cast<size_t>(state.range(0));
  const std::string a = RandomString(&rng, len);
  const std::string b = RandomString(&rng, len);
  for (auto _ : state) {
    benchmark::DoNotOptimize(LevenshteinDistance(a, b));
  }
}
BENCHMARK(BM_LevenshteinFull)->Arg(16)->Arg(64)->Arg(256);

void BM_LevenshteinBounded(benchmark::State& state) {
  Rng rng(2);
  const size_t len = static_cast<size_t>(state.range(0));
  std::string a = RandomString(&rng, len);
  std::string b = a;
  b[len / 2] = '!';  // Distance 1: the band shines.
  for (auto _ : state) {
    benchmark::DoNotOptimize(BoundedLevenshtein(a, b, 4));
  }
}
BENCHMARK(BM_LevenshteinBounded)->Arg(16)->Arg(64)->Arg(256);

void BM_Hungarian(benchmark::State& state) {
  Rng rng(3);
  const size_t n = static_cast<size_t>(state.range(0));
  WeightMatrix w(n, n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) w.At(i, j) = rng.NextDouble();
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(MaxWeightMatchingScore(w));
  }
}
BENCHMARK(BM_Hungarian)->Arg(8)->Arg(32)->Arg(128);

Collection ColumnData(size_t sets, size_t min_elems, size_t max_elems) {
  WebTableParams p = InclusionDependencyDefaults(sets);
  p.min_elements = min_elems;
  p.max_elements = max_elems;
  return BuildCollection(GenerateColumnSets(p), TokenizerKind::kWord);
}

void BM_VerifierPlain(benchmark::State& state) {
  Collection data = ColumnData(12, static_cast<size_t>(state.range(0)),
                               static_cast<size_t>(state.range(0)) + 10);
  MaxMatchingVerifier verifier(GetSimilarity(SimilarityKind::kJaccard), 0.0,
                               false);
  for (auto _ : state) {
    benchmark::DoNotOptimize(verifier.Score(data.sets[0], data.sets[1]));
  }
}
BENCHMARK(BM_VerifierPlain)->Arg(30)->Arg(100);

void BM_VerifierReduction(benchmark::State& state) {
  Collection data = ColumnData(12, static_cast<size_t>(state.range(0)),
                               static_cast<size_t>(state.range(0)) + 10);
  MaxMatchingVerifier verifier(GetSimilarity(SimilarityKind::kJaccard), 0.0,
                               true);
  for (auto _ : state) {
    benchmark::DoNotOptimize(verifier.Score(data.sets[0], data.sets[1]));
  }
}
BENCHMARK(BM_VerifierReduction)->Arg(30)->Arg(100);

void BM_IndexBuild(benchmark::State& state) {
  Collection data = ColumnData(static_cast<size_t>(state.range(0)), 14, 30);
  for (auto _ : state) {
    InvertedIndex index;
    index.Build(data);
    benchmark::DoNotOptimize(index.TotalPostings());
  }
}
BENCHMARK(BM_IndexBuild)->Arg(500)->Arg(2000);

void BM_SignatureGeneration(benchmark::State& state) {
  Collection data = ColumnData(1000, 14, 30);
  InvertedIndex index;
  index.Build(data);
  SchemeParams params;
  params.scheme = static_cast<SignatureSchemeKind>(state.range(0));
  params.phi = SimilarityKind::kJaccard;
  params.alpha = 0.5;
  size_t i = 0;
  for (auto _ : state) {
    const SetRecord& ref = data.sets[i++ % data.sets.size()];
    params.theta = 0.7 * static_cast<double>(ref.Size());
    benchmark::DoNotOptimize(GenerateSignature(ref, index, params));
  }
}
BENCHMARK(BM_SignatureGeneration)
    ->Arg(static_cast<int>(SignatureSchemeKind::kWeighted))
    ->Arg(static_cast<int>(SignatureSchemeKind::kCombUnweighted))
    ->Arg(static_cast<int>(SignatureSchemeKind::kSkyline))
    ->Arg(static_cast<int>(SignatureSchemeKind::kDichotomy));

void BM_NnSearch(benchmark::State& state) {
  Collection data = ColumnData(200, 14, 30);
  InvertedIndex index;
  index.Build(data);
  Options options;
  options.metric = Relatedness::kContainment;
  size_t i = 0;
  for (auto _ : state) {
    const Element& r = data.sets[0].elements[i++ % data.sets[0].Size()];
    benchmark::DoNotOptimize(
        NnSearch(r, static_cast<uint32_t>(1 + i % 100), data, index,
                 options));
  }
}
BENCHMARK(BM_NnSearch);

}  // namespace
}  // namespace silkmoth
