#ifndef SILKMOTH_FILTER_NN_FILTER_H_
#define SILKMOTH_FILTER_NN_FILTER_H_

#include <vector>

#include "core/options.h"
#include "filter/check_filter.h"
#include "index/inverted_index.h"
#include "sig/signature.h"
#include "text/dataset.h"

namespace silkmoth {

struct QueryScratch;
class ElementSimilarity;

/// Counters for the nearest-neighbor filter stage.
struct NnFilterStats {
  size_t nn_searches = 0;        ///< Indexed NN searches performed.
  size_t similarity_calls = 0;   ///< φ evaluations inside NN searches.
  size_t early_terminations = 0; ///< Candidates pruned before all searches.
  size_t nn_filtered = 0;        ///< Candidates pruned by this filter.
};

/// Exact nearest-neighbor similarity of `r_elem` within set `set_id`:
/// max over s in that set of φ_α(r_elem, s), found by probing the inverted
/// index with r_elem's tokens (elements sharing no token have φ = 0, so the
/// index search is exhaustive — Section 5.2).
///
/// `sim` is the resolved similarity for `options.phi` (looked up internally
/// when null); `scratch` provides the epoch-stamped visited marks (a private
/// scratch is allocated for this call when null).
double NnSearch(const Element& r_elem, uint32_t set_id,
                const Collection& data, const InvertedIndex& index,
                const Options& options, NnFilterStats* stats = nullptr,
                const ElementSimilarity* sim = nullptr,
                QueryScratch* scratch = nullptr);

/// Nearest-neighbor filter (Algorithm 2, extended per Section 6.5).
///
/// For each candidate, builds the total estimate
///   Σ_i est_i,  est_i = best probed φ_α  if it reaches miss_bound[i]
///                       (computation reuse: that value IS the exact NN),
///               miss_bound[i] otherwise,
/// then replaces the remaining estimates with exact NN similarities one
/// element at a time, early-terminating as soon as the total drops below θ.
/// Candidates whose final total stays >= θ survive.
std::vector<Candidate> NnFilterCandidates(
    const SetRecord& ref, const Signature& sig,
    std::vector<Candidate> candidates, const Collection& data,
    const InvertedIndex& index, const Options& options,
    NnFilterStats* stats = nullptr, const ElementSimilarity* sim = nullptr,
    QueryScratch* scratch = nullptr);

}  // namespace silkmoth

#endif  // SILKMOTH_FILTER_NN_FILTER_H_
