#ifndef SILKMOTH_TEXT_TOKEN_DICTIONARY_H_
#define SILKMOTH_TEXT_TOKEN_DICTIONARY_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace silkmoth {

/// Identifier of an interned token. Tokens are whitespace-delimited words
/// (Jaccard similarity) or q-grams (edit similarity).
using TokenId = uint32_t;

/// Sentinel for "token not present".
inline constexpr TokenId kInvalidToken = static_cast<TokenId>(-1);

/// Interning table mapping token strings to dense TokenIds.
///
/// A single dictionary is shared between the indexed collection and any
/// reference sets searched against it, so that token identity is global.
/// Ids are assigned in first-seen order and are stable for the lifetime of
/// the dictionary.
class TokenDictionary {
 public:
  TokenDictionary() = default;

  // The dictionary is referenced by collections; moving it would invalidate
  // outstanding ids only if the holder is destroyed, but copying is almost
  // always a bug, so both are disabled.
  TokenDictionary(const TokenDictionary&) = delete;
  TokenDictionary& operator=(const TokenDictionary&) = delete;

  /// Returns the id for `token`, interning it if new.
  TokenId Intern(std::string_view token);

  /// Returns the id for `token`, or kInvalidToken when absent.
  TokenId Lookup(std::string_view token) const;

  /// Returns the string for an id. `id` must be < size().
  const std::string& Token(TokenId id) const { return tokens_[id]; }

  /// Number of distinct tokens interned so far.
  size_t size() const { return tokens_.size(); }

 private:
  std::unordered_map<std::string, TokenId> ids_;
  std::vector<std::string> tokens_;
};

}  // namespace silkmoth

#endif  // SILKMOTH_TEXT_TOKEN_DICTIONARY_H_
