#include <algorithm>
#include <numeric>

#include "sig/greedy_internal.h"
#include "sig/scheme.h"
#include "sig/simthresh.h"
#include "text/similarity.h"

namespace silkmoth {

Signature SkylineSignature(const SetRecord& set, const InvertedIndex& index,
                           const SchemeParams& params) {
  using sig_internal::CollectTokens;
  using sig_internal::RunGreedy;

  const std::vector<ElementUnits> units = MakeElementUnits(set, params.phi);
  const std::vector<sig_internal::TokenOcc> tokens =
      CollectTokens(units, index);

  // Section 6.3's approximation: first build a plain weighted signature,
  // then cut each k_i that is itself a valid sim-thresh set down to the b_i
  // cheapest tokens. The validity sum stays the one over the k_i.
  const std::vector<size_t> no_completion(units.size(), kNoSimThresh);
  sig_internal::GreedyResult greedy =
      RunGreedy(units, tokens, params.theta, no_completion);

  // Rescue pass: when the weighted scheme is empty for this reference
  // (possible for edit similarity, §7.3) but α > 0, a signature protecting
  // every element with a sim-thresh set is still α-valid by the Theorem 3
  // argument (each protected element contributes 0 to the bound). Select
  // every remaining unit so each k_i becomes cuttable below.
  if (!greedy.reached && params.alpha > kFloatSlack) {
    bool all_protectable = true;
    for (const auto& u : units) {
      all_protectable &= SimThreshUnits(u, params.alpha) != kNoSimThresh;
    }
    if (all_protectable) {
      for (size_t i = 0; i < units.size(); ++i) {
        greedy.state[i].chosen = units[i].tokens;
        greedy.state[i].selected_units = units[i].total_units;
      }
      greedy.reached = true;  // Validity now rests on the cuts.
    }
  }

  Signature sig;
  const size_t n = units.size();
  sig.probe.resize(n);
  sig.miss_bound.resize(n);
  sig.alpha_protected.assign(n, 0);
  std::vector<double> li_bound(n);

  for (size_t i = 0; i < n; ++i) {
    const ElementUnits& u = units[i];
    std::vector<TokenId>& chosen = greedy.state[i].chosen;
    const double kb = u.BoundAfter(greedy.state[i].selected_units);
    const size_t b = SimThreshUnits(u, params.alpha);

    size_t li_units = greedy.state[i].selected_units;
    if (b != kNoSimThresh && greedy.state[i].selected_units >= b) {
      // Cut to the cheapest tokens whose units reach b (l_i = k_i ∩ m_i).
      std::vector<size_t> order(chosen.size());
      std::iota(order.begin(), order.end(), size_t{0});
      std::sort(order.begin(), order.end(), [&](size_t a, size_t c) {
        const size_t ca = index.ListSize(chosen[a]);
        const size_t cc = index.ListSize(chosen[c]);
        if (ca != cc) return ca < cc;
        return chosen[a] < chosen[c];
      });
      auto mult_of = [&](TokenId t) -> uint32_t {
        for (size_t j = 0; j < u.tokens.size(); ++j) {
          if (u.tokens[j] == t) return u.mults[j];
        }
        return 1;
      };
      std::vector<TokenId> cut;
      size_t got = 0;
      for (size_t idx : order) {
        if (got >= b) break;
        cut.push_back(chosen[idx]);
        got += mult_of(chosen[idx]);
      }
      std::sort(cut.begin(), cut.end());
      sig.probe[i] = std::move(cut);
      sig.alpha_protected[i] = 1;
      sig.miss_bound[i] = 0.0;
      li_units = got;
    } else {
      sig.probe[i] = std::move(chosen);
      sig.miss_bound[i] = kb;
    }
    li_bound[i] = u.BoundAfter(li_units);
  }
  sig.valid = greedy.reached;
  FinalizeSignature(&sig, params, li_bound);
  return sig;
}

}  // namespace silkmoth
