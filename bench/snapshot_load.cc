// snapshot_load: copy-load vs mmap-load latency and peak RSS, plus the
// shard-local split load — the numbers behind the zero-copy snapshot work.
//
// Each scenario runs in a forked child so its peak RSS (getrusage ru_maxrss)
// is attributable: the child loads the snapshot, runs one shard's discovery
// against the loaded state (proving the views actually serve queries), and
// reports load latency, bytes touched, and peak RSS. Expected shape:
//
//   - mmap-load beats copy-load on latency (no deep materialization) and on
//     peak RSS (file-backed pages only; no second heap copy).
//   - the split shard-local load touches ~1/num_shards of the bytes a
//     monolithic load does.
//
// Usage: snapshot_load [num_sets] [num_shards]   (defaults 4000, 8)

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "core/options.h"
#include "core/sharded_engine.h"
#include "datagen/builders.h"
#include "datagen/dblp.h"
#include "snapshot/shard_runner.h"
#include "snapshot/snapshot.h"
#include "util/timer.h"

#if defined(__unix__) || defined(__APPLE__)
#define SILKMOTH_BENCH_FORK 1
#include <sys/resource.h>
#include <sys/wait.h>
#include <unistd.h>
#else
#define SILKMOTH_BENCH_FORK 0
#endif

namespace {

using namespace silkmoth;

struct Scenario {
  const char* name;
  SnapshotLoadMode mode;
  bool shard_local;  // LoadSnapshotShard(shard 0) instead of a full load.
};

struct Result {
  double load_ms = 0.0;
  uint64_t files = 0;
  uint64_t bytes_touched = 0;
  long peak_rss_kb = -1;  // -1: unavailable on this platform.
  uint64_t pairs = 0;     // Shard 0 discovery result count (sanity).
};

/// Peak RSS so far, in KiB: /proc VmHWM where available (lets the bench
/// sample the peak right after the load, before query noise), else
/// getrusage's lifetime max.
long PeakRssKb() {
  if (std::FILE* f = std::fopen("/proc/self/status", "r")) {
    char line[256];
    long kb = -1;
    while (std::fgets(line, sizeof(line), f) != nullptr) {
      if (std::sscanf(line, "VmHWM: %ld kB", &kb) == 1) break;
    }
    std::fclose(f);
    if (kb >= 0) return kb;
  }
#if SILKMOTH_BENCH_FORK
  struct rusage ru;
  getrusage(RUSAGE_SELF, &ru);
  return ru.ru_maxrss;
#else
  return -1;
#endif
}

/// Loads per `scn`, samples the post-load peak RSS, then runs shard 0's
/// discovery as a views-actually-serve-queries sanity check; fills `out`.
bool RunScenarioBody(const std::string& path, const Scenario& scn,
                     const Options& opt, Result* out) {
  WallTimer timer;
  Snapshot snap;
  SnapshotLoadStats stats;
  const std::string err =
      scn.shard_local
          ? LoadSnapshotShard(path, 0, &snap, scn.mode, &stats)
          : LoadSnapshot(path, &snap, scn.mode, &stats);
  out->load_ms = timer.ElapsedSeconds() * 1e3;
  if (!err.empty()) {
    std::fprintf(stderr, "%s: %s\n", scn.name, err.c_str());
    return false;
  }
  out->peak_rss_kb = PeakRssKb();  // Before the query muddies the peak.
  out->files = stats.files;
  out->bytes_touched = stats.BytesTouched();
  out->pairs = DiscoverShardSelf(snap, 0, opt).size();
  return true;
}

bool RunScenario(const std::string& path, const Scenario* scn,
                 const Options& opt, Result* out) {
#if SILKMOTH_BENCH_FORK
  int fds[2];
  if (pipe(fds) != 0) return false;
  const pid_t pid = fork();
  if (pid == 0) {  // Child: measure in its own address space.
    close(fds[0]);
    Result r;
    // A null scenario is the fork baseline: its peak RSS is the memory
    // inherited from the parent, subtracted from every real scenario so
    // peak RSS measures what the *load* added.
    bool ok = true;
    if (scn == nullptr) {
      r.peak_rss_kb = PeakRssKb();
    } else {
      ok = RunScenarioBody(path, *scn, opt, &r);
    }
    if (ok) {
      [[maybe_unused]] ssize_t n = write(fds[1], &r, sizeof(r));
    }
    close(fds[1]);
    _exit(ok ? 0 : 1);
  }
  close(fds[1]);
  Result r;
  const bool got = read(fds[0], &r, sizeof(r)) == sizeof(r);
  close(fds[0]);
  int status = 0;
  waitpid(pid, &status, 0);
  if (!got || status != 0) return false;
  *out = r;
  return true;
#else
  if (scn == nullptr) {
    *out = Result{};
    return true;
  }
  return RunScenarioBody(path, *scn, opt, out);  // No RSS attribution.
#endif
}

uint64_t FileSize(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return 0;
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fclose(f);
  return size > 0 ? static_cast<uint64_t>(size) : 0;
}

}  // namespace

int main(int argc, char** argv) {
  const size_t num_sets = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 4000;
  const uint32_t num_shards =
      argc > 2 ? static_cast<uint32_t>(std::strtoul(argv[2], nullptr, 10)) : 8;

  Options opt;
  opt.delta = 0.6;
  opt.num_shards = static_cast<int>(num_shards);

  const std::string mono = "/tmp/silkmoth_bench_mono.snap";
  const std::string split = "/tmp/silkmoth_bench_split.snap";
  // Build + save runs in its own process: the measuring parent's address
  // space must stay pristine, or the scenario children would inherit the
  // builder's recycled heap pages and the RSS deltas would flatter
  // whichever load path happens to reuse them.
  auto build_and_save = [&]() -> int {
    DblpParams params;
    params.num_titles = num_sets;
    params.duplicate_rate = 0.3;  // Make discovery actually find pairs.
    params.seed = 42;
    Collection data =
        BuildCollection(GenerateDblpSets(params), TokenizerKind::kWord);
    std::printf("# snapshot_load: %zu sets, %zu elements, %u shards\n",
                data.NumSets(), data.NumElements(), num_shards);
    std::fflush(stdout);
    Snapshot snap = BuildSnapshot(std::move(data), TokenizerKind::kWord, 0,
                                  num_shards, 4);
    std::string err = SaveSnapshot(snap, mono);
    if (err.empty()) err = SaveSnapshotSplit(snap, split);
    if (!err.empty()) {
      std::fprintf(stderr, "%s\n", err.c_str());
      return 1;
    }
    return 0;
  };
#if SILKMOTH_BENCH_FORK
  {
    const pid_t pid = fork();
    if (pid == 0) _exit(build_and_save());
    int status = 0;
    waitpid(pid, &status, 0);
    if (status != 0) return 1;
  }
#else
  if (build_and_save() != 0) return 1;
#endif
  uint64_t split_total = FileSize(split);
  for (uint32_t s = 0; s < num_shards; ++s) {
    split_total += FileSize(SnapshotShardPath(split, s));
  }
  std::printf("# monolithic %llu bytes; split total %llu bytes\n",
              static_cast<unsigned long long>(FileSize(mono)),
              static_cast<unsigned long long>(split_total));

  const Scenario scenarios[] = {
      {"copy-load  monolithic ", SnapshotLoadMode::kCopy, false},
      {"mmap-load  monolithic ", SnapshotLoadMode::kMmap, false},
      {"copy-load  split-all  ", SnapshotLoadMode::kCopy, false},
      {"mmap-load  split-all  ", SnapshotLoadMode::kMmap, false},
      {"copy-load  split-shard", SnapshotLoadMode::kCopy, true},
      {"mmap-load  split-shard", SnapshotLoadMode::kMmap, true},
  };
  // Fork baseline: what a child weighs before loading anything.
  Result baseline;
  if (!RunScenario(mono, nullptr, opt, &baseline)) {
    std::fprintf(stderr, "baseline fork failed\n");
    return 1;
  }

  std::printf("%-24s %10s %6s %14s %13s %8s\n", "scenario", "load_ms",
              "files", "bytes_touched", "rss_delta_kb", "pairs");
  double copy_ms = 0.0, mmap_ms = 0.0;
  long copy_rss = 0, mmap_rss = 0;
  for (size_t i = 0; i < std::size(scenarios); ++i) {
    const Scenario& scn = scenarios[i];
    const std::string& path = i < 2 ? mono : split;
    // Warm-up pass primes the page cache so copy vs mmap compares I/O
    // strategy, not cold-cache disk latency; then the measured pass.
    Result r;
    if (!RunScenario(path, &scn, opt, &r) ||
        !RunScenario(path, &scn, opt, &r)) {
      std::fprintf(stderr, "%s failed\n", scn.name);
      return 1;
    }
    const long rss_delta =
        r.peak_rss_kb < 0 ? -1 : r.peak_rss_kb - baseline.peak_rss_kb;
    std::printf("%-24s %10.2f %6llu %14llu %13ld %8llu\n", scn.name,
                r.load_ms, static_cast<unsigned long long>(r.files),
                static_cast<unsigned long long>(r.bytes_touched),
                rss_delta, static_cast<unsigned long long>(r.pairs));
    if (i == 0) { copy_ms = r.load_ms; copy_rss = rss_delta; }
    if (i == 1) { mmap_ms = r.load_ms; mmap_rss = rss_delta; }
  }
  if (mmap_ms > 0.0 && copy_ms > 0.0) {
    std::printf("# monolithic mmap vs copy: %.2fx latency", copy_ms / mmap_ms);
    if (copy_rss > 0 && mmap_rss > 0) {
      std::printf(", %.2fx peak RSS",
                  static_cast<double>(copy_rss) /
                      static_cast<double>(mmap_rss));
    }
    std::printf("\n");
  }

  std::remove(mono.c_str());
  std::remove(split.c_str());
  for (uint32_t s = 0; s < num_shards; ++s) {
    std::remove(SnapshotShardPath(split, s).c_str());
  }
  return 0;
}
