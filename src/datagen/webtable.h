#ifndef SILKMOTH_DATAGEN_WEBTABLE_H_
#define SILKMOTH_DATAGEN_WEBTABLE_H_

#include <cstdint>
#include <vector>

#include "datagen/builders.h"

namespace silkmoth {

/// Parameters for the synthetic WEBTABLE generator.
///
/// The paper's schema matching and inclusion dependency applications run on
/// 500K web-crawl tables. Offline we synthesize tables with the same shape
/// (Table 3): schema sets with ~3 elements of ~11 tokens each, and column
/// sets with ~22 elements of ~2.2 tokens each. Values are drawn from
/// Zipfian domain pools; a fraction of sets are emitted as perturbed
/// variants of earlier sets (values dropped/replaced/duplicated) so that
/// related pairs and containment relationships genuinely exist.
struct WebTableParams {
  size_t num_sets = 1000;
  size_t num_domains = 24;        ///< Distinct value domains (city, name...).
  size_t domain_values = 400;     ///< Values per domain.
  double zipf_skew = 0.8;         ///< Value reuse skew inside a domain.
  double variant_rate = 0.25;     ///< Fraction emitted as variants.
  double variant_keep = 0.8;      ///< Chance a variant keeps each element.
  double value_edit_rate = 0.15;  ///< Chance a kept element is re-sampled.
  uint64_t seed = 7;

  // Shape of one set (element counts and tokens-per-element are uniform in
  // the given inclusive ranges).
  size_t min_elements = 2;
  size_t max_elements = 4;
  size_t min_tokens = 8;
  size_t max_tokens = 14;
};

/// Schema-matching shaped sets (Table 3 row 2): few elements, many tokens.
RawSets GenerateSchemaSets(const WebTableParams& params);

/// Inclusion-dependency shaped sets (Table 3 row 3): many short elements.
/// Also plants proper containment: some sets are supersets of others.
RawSets GenerateColumnSets(const WebTableParams& params);

/// Defaults matching Table 3's shapes.
WebTableParams SchemaMatchingDefaults(size_t num_sets, uint64_t seed = 7);
WebTableParams InclusionDependencyDefaults(size_t num_sets,
                                           uint64_t seed = 11);

}  // namespace silkmoth

#endif  // SILKMOTH_DATAGEN_WEBTABLE_H_
