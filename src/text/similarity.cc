#include "text/similarity.h"

#include <algorithm>
#include <cmath>

#include "text/levenshtein.h"

namespace silkmoth {

const char* SimilarityKindName(SimilarityKind kind) {
  switch (kind) {
    case SimilarityKind::kJaccard:
      return "Jac";
    case SimilarityKind::kEds:
      return "Eds";
    case SimilarityKind::kNeds:
      return "NEds";
  }
  return "?";
}

double JaccardOfSortedTokens(std::span<const TokenId> a,
                             std::span<const TokenId> b) {
  if (a.empty() || b.empty()) return 0.0;
  size_t i = 0, j = 0, inter = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] == b[j]) {
      ++inter;
      ++i;
      ++j;
    } else if (a[i] < b[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  const size_t uni = a.size() + b.size() - inter;
  return static_cast<double>(inter) / static_cast<double>(uni);
}

double EdsOfStrings(std::string_view a, std::string_view b) {
  if (a.empty() && b.empty()) return 1.0;
  const int ld = LevenshteinDistance(a, b);
  return 1.0 - 2.0 * ld / (static_cast<double>(a.size()) +
                           static_cast<double>(b.size()) + ld);
}

double NedsOfStrings(std::string_view a, std::string_view b) {
  if (a.empty() && b.empty()) return 1.0;
  const int ld = LevenshteinDistance(a, b);
  return 1.0 - static_cast<double>(ld) /
                   static_cast<double>(std::max(a.size(), b.size()));
}

double ElementSimilarity::ScoreThresholded(const Element& a, const Element& b,
                                           double alpha) const {
  const double s = Score(a, b);
  return s >= alpha - kFloatSlack ? s : 0.0;
}

namespace {

class JaccardSimilarity final : public ElementSimilarity {
 public:
  SimilarityKind kind() const override { return SimilarityKind::kJaccard; }
  bool HasMetricDual() const override { return true; }
  double Score(const Element& a, const Element& b) const override {
    return JaccardOfSortedTokens(a.tokens, b.tokens);
  }
};

class EdsSimilarity final : public ElementSimilarity {
 public:
  SimilarityKind kind() const override { return SimilarityKind::kEds; }
  bool HasMetricDual() const override { return true; }
  double Score(const Element& a, const Element& b) const override {
    return EdsOfStrings(a.text, b.text);
  }
  double ScoreThresholded(const Element& a, const Element& b,
                          double alpha) const override {
    if (alpha <= kFloatSlack) return Score(a, b);
    // Eds >= alpha  <=>  LD <= (1 - alpha) * (|a| + |b|) / (1 + alpha).
    const double len = static_cast<double>(a.text.size() + b.text.size());
    const int max_d =
        static_cast<int>(std::floor((1.0 - alpha) * len / (1.0 + alpha) +
                                    kFloatSlack));
    const int ld = BoundedLevenshtein(a.text, b.text, max_d);
    if (ld > max_d) return 0.0;
    const double s = 1.0 - 2.0 * ld / (len + ld);
    return s >= alpha - kFloatSlack ? s : 0.0;
  }
};

class NedsSimilarity final : public ElementSimilarity {
 public:
  SimilarityKind kind() const override { return SimilarityKind::kNeds; }
  bool HasMetricDual() const override { return false; }
  double Score(const Element& a, const Element& b) const override {
    return NedsOfStrings(a.text, b.text);
  }
  double ScoreThresholded(const Element& a, const Element& b,
                          double alpha) const override {
    if (alpha <= kFloatSlack) return Score(a, b);
    // NEds >= alpha  <=>  LD <= (1 - alpha) * max(|a|, |b|).
    const double len =
        static_cast<double>(std::max(a.text.size(), b.text.size()));
    const int max_d =
        static_cast<int>(std::floor((1.0 - alpha) * len + kFloatSlack));
    const int ld = BoundedLevenshtein(a.text, b.text, max_d);
    if (ld > max_d) return 0.0;
    if (a.text.empty() && b.text.empty()) return 1.0;
    const double s = 1.0 - ld / len;
    return s >= alpha - kFloatSlack ? s : 0.0;
  }
};

}  // namespace

const ElementSimilarity* GetSimilarity(SimilarityKind kind) {
  static const JaccardSimilarity jaccard;
  static const EdsSimilarity eds;
  static const NedsSimilarity neds;
  switch (kind) {
    case SimilarityKind::kJaccard:
      return &jaccard;
    case SimilarityKind::kEds:
      return &eds;
    case SimilarityKind::kNeds:
      return &neds;
  }
  return &jaccard;
}

std::string IdentityKey(const Element& e, SimilarityKind kind) {
  if (IsEditSimilarity(kind)) return std::string(e.text);
  std::string key;
  key.reserve(e.tokens.size() * 5);
  for (TokenId t : e.tokens) {
    key.append(reinterpret_cast<const char*>(&t), sizeof(t));
  }
  return key;
}

}  // namespace silkmoth
