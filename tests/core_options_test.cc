#include "core/options.h"

#include <gtest/gtest.h>

namespace silkmoth {
namespace {

TEST(OptionsTest, DefaultsAreValid) {
  Options o;
  EXPECT_EQ(o.Validate(), "");
}

TEST(OptionsTest, DeltaRange) {
  Options o;
  o.delta = 0.0;
  EXPECT_NE(o.Validate(), "");  // Footnote 2: δ = 0 is trivial, rejected.
  o.delta = -0.5;
  EXPECT_NE(o.Validate(), "");
  o.delta = 1.5;
  EXPECT_NE(o.Validate(), "");
  o.delta = 1.0;
  EXPECT_EQ(o.Validate(), "");
}

TEST(OptionsTest, AlphaRange) {
  Options o;
  o.alpha = -0.1;
  EXPECT_NE(o.Validate(), "");
  o.alpha = 1.0;
  EXPECT_NE(o.Validate(), "");
  o.alpha = 0.99;
  EXPECT_EQ(o.Validate(), "");
}

TEST(OptionsTest, ThreadsPositive) {
  Options o;
  o.num_threads = 0;
  EXPECT_NE(o.Validate(), "");
  o.num_threads = 8;
  EXPECT_EQ(o.Validate(), "");
}

TEST(MaxQTest, PaperFootnote11Values) {
  // "if α = 0.85, then q = 5"; α = 0.8 gives q = 3 (Table 3's note).
  EXPECT_EQ(MaxQForAlpha(0.85), 5);
  EXPECT_EQ(MaxQForAlpha(0.8), 3);
  EXPECT_EQ(MaxQForAlpha(0.75), 2);  // Limit 3.0 is integral: q < 3.
  EXPECT_EQ(MaxQForAlpha(0.7), 2);   // Limit 2.33.
}

TEST(MaxQTest, AlphaZeroUsesFallback) {
  EXPECT_EQ(MaxQForAlpha(0.0), 2);
  EXPECT_EQ(MaxQForAlpha(0.0, 4), 4);
}

TEST(MaxQTest, NeverBelowOne) {
  EXPECT_EQ(MaxQForAlpha(0.3), 1);  // Limit 0.43 -> clamped to 1.
  EXPECT_EQ(MaxQForAlpha(0.5), 1);  // Limit 1.0 -> q < 1 -> clamped.
}

TEST(EffectiveQTest, JaccardIgnoresQ) {
  Options o;
  o.phi = SimilarityKind::kJaccard;
  o.q = 7;
  EXPECT_EQ(o.EffectiveQ(), 0);
}

TEST(EffectiveQTest, AutoSelectsFromAlpha) {
  Options o;
  o.phi = SimilarityKind::kEds;
  o.alpha = 0.8;
  EXPECT_EQ(o.EffectiveQ(), 3);
  o.alpha = 0.85;
  EXPECT_EQ(o.EffectiveQ(), 5);
  o.alpha = 0.0;
  EXPECT_EQ(o.EffectiveQ(), 2);
}

TEST(EffectiveQTest, ExplicitQRespected) {
  Options o;
  o.phi = SimilarityKind::kEds;
  o.alpha = 0.0;
  o.q = 4;
  EXPECT_EQ(o.EffectiveQ(), 4);
  EXPECT_EQ(o.Validate(), "");
}

TEST(OptionsTest, QTooLargeForAlphaRejected) {
  Options o;
  o.phi = SimilarityKind::kEds;
  o.alpha = 0.8;  // Requires q < 4.
  o.q = 4;
  EXPECT_NE(o.Validate(), "");
  o.q = 3;
  EXPECT_EQ(o.Validate(), "");
}

TEST(NamesTest, EnumNames) {
  EXPECT_STREQ(RelatednessName(Relatedness::kSimilarity), "SET-SIMILARITY");
  EXPECT_STREQ(RelatednessName(Relatedness::kContainment), "SET-CONTAINMENT");
  EXPECT_STREQ(SignatureSchemeName(SignatureSchemeKind::kWeighted),
               "WEIGHTED");
  EXPECT_STREQ(SignatureSchemeName(SignatureSchemeKind::kCombUnweighted),
               "COMBUNWEIGHTED");
  EXPECT_STREQ(SignatureSchemeName(SignatureSchemeKind::kSkyline), "SKYLINE");
  EXPECT_STREQ(SignatureSchemeName(SignatureSchemeKind::kDichotomy),
               "DICHOTOMY");
}

}  // namespace
}  // namespace silkmoth
