#include "core/search_pass.h"

#include <algorithm>

#include "core/query_scratch.h"
#include "core/relatedness.h"
#include "filter/check_filter.h"
#include "filter/nn_filter.h"
#include "matching/verifier.h"
#include "sig/scheme.h"
#include "util/timer.h"

namespace silkmoth {

namespace {

/// Top-k preference order: higher relatedness first, lower set id on ties —
/// the order SearchTopK returns and the heap evicts by.
bool IsBetterMatch(const SearchMatch& a, const SearchMatch& b) {
  if (a.relatedness != b.relatedness) return a.relatedness > b.relatedness;
  return a.set_id < b.set_id;
}

}  // namespace

std::vector<SearchMatch> RunSearchPass(const SetRecord& ref,
                                       const Collection& data,
                                       const InvertedIndex& index,
                                       const Options& options,
                                       uint32_t exclude_set,
                                       SearchStats* stats,
                                       QueryScratch* scratch,
                                       SetIdRange scan_range,
                                       size_t top_k) {
  std::vector<SearchMatch> results;
  if (ref.Empty()) return results;

  // Resolve the element similarity once for the whole pass; every stage
  // below (filters, NN searches, verification) reuses this pointer.
  const ElementSimilarity* sim = GetSimilarity(options.phi);
  QueryScratch local_scratch;
  if (scratch == nullptr) scratch = &local_scratch;

  WallTimer timer;
  if (stats != nullptr) ++stats->references;

  // --- Signature generation (Sections 4, 6, 7). ---
  SchemeParams params;
  params.scheme = options.scheme;
  params.phi = options.phi;
  params.theta = MatchingThreshold(options.delta, ref.Size());
  params.alpha = options.alpha;
  params.q = options.EffectiveQ();
  const Signature sig = GenerateSignature(ref, index, params);
  if (stats != nullptr) {
    stats->signature_seconds += timer.ElapsedSeconds();
    stats->signature_tokens += sig.NumProbeTokens();
  }

  // --- Candidate selection + check filter (Algorithm 1). ---
  timer.Restart();
  std::vector<Candidate> candidates;
  const bool use_check = options.check_filter || options.nn_filter;
  if (sig.valid) {
    CheckFilterStats cstats;
    candidates = SelectAndCheckCandidates(ref, sig, data, index, options,
                                          use_check, &cstats, sim, scratch);
    if (stats != nullptr) {
      stats->initial_candidates += cstats.initial_candidates;
      stats->after_size += cstats.initial_candidates - cstats.size_filtered;
      stats->similarity_calls += cstats.similarity_calls;
    }
  } else {
    // No valid signature exists for this reference (possible for edit
    // similarity, Section 7.3): scan everything, correctness first.
    candidates = AllCandidates(ref, data, options, scan_range);
    if (stats != nullptr) {
      ++stats->fallback_scans;
      stats->initial_candidates += candidates.size();
      stats->after_size += candidates.size();
    }
  }
  if (stats != nullptr) {
    stats->after_check += candidates.size();
    stats->selection_seconds += timer.ElapsedSeconds();
  }

  // --- Nearest-neighbor filter (Algorithm 2). ---
  if (options.nn_filter && sig.valid) {
    timer.Restart();
    NnFilterStats nstats;
    candidates = NnFilterCandidates(ref, sig, std::move(candidates), data,
                                    index, options, &nstats, sim, scratch);
    if (stats != nullptr) {
      stats->similarity_calls += nstats.similarity_calls;
      stats->nn_seconds += timer.ElapsedSeconds();
    }
  }
  if (stats != nullptr) stats->after_nn += candidates.size();

  // --- Verification (Section 5.3, bound-guided). ---
  // ScoreDecision answers the θ-threshold test from a greedy lower bound and
  // a row/column-maxima upper bound; the exact Hungarian solver runs only
  // when the bounds come within `margin` of the threshold — the margin is
  // sized so a bound-settled decision can never disagree with IsRelated,
  // whose kFloatSlack applies to the relatedness *ratio* and is therefore
  // worth up to kFloatSlack·(|R|+|S|) on the matching score. Whenever an
  // exact score exists (ambiguous-band solve, or the reporting solve on a
  // bound-accept) the original IsRelated test decides, keeping results
  // bit-identical to unconditional exact verification.
  //
  // With exact_scores off, bound-accepted pairs skip the reporting solve:
  // the decision is the bound's, and the pair reports the greedy lower
  // bound as its score (counted in bound_only_scores). The *pair set* is
  // identical either way — only reported scores may understate.
  // In top-k mode `results` doubles as the k-best heap: IsBetterMatch as
  // the heap comparator keeps the *worst* kept match at the front, so the
  // front's relatedness is the running k-th-best score — the floating floor.
  timer.Restart();
  const MaxMatchingVerifier verifier(sim, options.alpha, options.reduction);
  for (const Candidate& cand : candidates) {
    if (cand.set_id == exclude_set) continue;
    const SetRecord& s = data.sets[cand.set_id];
    const double m_threshold =
        RelatedScoreThreshold(ref.Size(), s.Size(), options);
    const double margin =
        kFloatSlack * (static_cast<double>(ref.Size() + s.Size()) + 2.0);
    // Once the heap is full, translate the k-th-best relatedness into this
    // pair shape's matching-score floor. The floor only ever rises, and the
    // verifier rejects against it with the same margin discipline as θ, so
    // a floor-rejected candidate's reported relatedness would have been
    // strictly below the k-th best — it could never enter the final heap.
    const double floor_theta =
        top_k > 0 && results.size() == top_k
            ? ScoreThresholdForRelatedness(results.front().relatedness,
                                           ref.Size(), s.Size(), options)
            : -1.0;
    MatchingStats mstats;
    const VerifyDecision decision =
        verifier.ScoreDecision(ref, s, m_threshold, &mstats, margin,
                               /*need_exact_score=*/options.exact_scores,
                               floor_theta);
    if (stats != nullptr) {
      ++stats->verifications;
      stats->similarity_calls += mstats.similarity_calls;
      stats->reduced_pairs += mstats.reduced_pairs;
      stats->bound_accepts += mstats.bound_accepts;
      stats->bound_rejects += mstats.bound_rejects;
      stats->tier2_accepts += mstats.tier2_accepts;
      stats->heap_floor_rejects += mstats.floor_rejects;
      stats->exact_solves += mstats.exact_solves;
      stats->reporting_solves += mstats.reporting_solves;
    }
    const bool related =
        decision.exact ? IsRelated(decision.score, ref.Size(), s.Size(),
                                   options)
                       : decision.related;
    if (!related) continue;
    // Exact when exact_scores (accepts always solve); otherwise a
    // bound-accept reports its greedy lower bound.
    const double m = decision.exact ? decision.score : decision.lower;
    if (stats != nullptr && !decision.exact) ++stats->bound_only_scores;
    SearchMatch match;
    match.set_id = cand.set_id;
    match.matching_score = m;
    match.relatedness = RelatednessScore(m, ref.Size(), s.Size(), options);
    if (top_k == 0) {
      results.push_back(match);
    } else if (results.size() < top_k) {
      results.push_back(match);
      std::push_heap(results.begin(), results.end(), IsBetterMatch);
    } else if (IsBetterMatch(match, results.front())) {
      std::pop_heap(results.begin(), results.end(), IsBetterMatch);
      results.back() = match;
      std::push_heap(results.begin(), results.end(), IsBetterMatch);
    }
  }
  if (stats != nullptr) {
    stats->verify_seconds += timer.ElapsedSeconds();
    stats->results += results.size();
  }

  if (top_k > 0) {
    std::sort(results.begin(), results.end(), IsBetterMatch);
  } else {
    std::sort(results.begin(), results.end(),
              [](const SearchMatch& a, const SearchMatch& b) {
                return a.set_id < b.set_id;
              });
  }
  return results;
}

}  // namespace silkmoth
