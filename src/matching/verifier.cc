#include "matching/verifier.h"

#include <string>
#include <unordered_map>
#include <vector>

#include "matching/hungarian.h"

namespace silkmoth {

MaxMatchingVerifier::MaxMatchingVerifier(const ElementSimilarity* sim,
                                         double alpha, bool use_reduction)
    : sim_(sim),
      alpha_(alpha),
      reduction_active_(use_reduction && alpha <= kFloatSlack &&
                        sim->HasMetricDual()) {}

double MaxMatchingVerifier::ScoreDense(
    const std::vector<const Element*>& r_elems,
    const std::vector<const Element*>& s_elems, MatchingStats* stats) const {
  if (r_elems.empty() || s_elems.empty()) return 0.0;
  WeightMatrix w(r_elems.size(), s_elems.size());
  for (size_t i = 0; i < r_elems.size(); ++i) {
    for (size_t j = 0; j < s_elems.size(); ++j) {
      w.At(i, j) = sim_->ScoreThresholded(*r_elems[i], *s_elems[j], alpha_);
    }
  }
  if (stats != nullptr) {
    stats->matrix_rows = r_elems.size();
    stats->matrix_cols = s_elems.size();
    stats->similarity_calls += r_elems.size() * s_elems.size();
  }
  return MaxWeightMatchingScore(w);
}

double MaxMatchingVerifier::ScoreWithAlignment(
    const SetRecord& r, const SetRecord& s,
    std::vector<AlignedPair>* alignment) const {
  alignment->clear();
  if (r.Empty() || s.Empty()) return 0.0;
  WeightMatrix w(r.Size(), s.Size());
  for (size_t i = 0; i < r.Size(); ++i) {
    for (size_t j = 0; j < s.Size(); ++j) {
      w.At(i, j) =
          sim_->ScoreThresholded(r.elements[i], s.elements[j], alpha_);
    }
  }
  std::vector<int> row_to_col;
  const double score = MaxWeightMatching(w, &row_to_col);
  for (size_t i = 0; i < r.Size(); ++i) {
    const int j = row_to_col[i];
    if (j < 0) continue;
    const double pair_score = w.At(i, static_cast<size_t>(j));
    if (pair_score > 0.0) {
      alignment->push_back(AlignedPair{static_cast<uint32_t>(i),
                                       static_cast<uint32_t>(j), pair_score});
    }
  }
  return score;
}

double MaxMatchingVerifier::Score(const SetRecord& r, const SetRecord& s,
                                  MatchingStats* stats) const {
  std::vector<const Element*> r_elems;
  std::vector<const Element*> s_elems;
  r_elems.reserve(r.elements.size());
  s_elems.reserve(s.elements.size());

  size_t reduced = 0;
  if (reduction_active_) {
    // Pair identical elements greedily: each identical pair (φ = 1) is in
    // some maximum matching when 1-φ obeys the triangle inequality, and the
    // argument applies inductively to the reduced instance.
    std::unordered_map<std::string, int> s_counts;
    s_counts.reserve(s.elements.size() * 2);
    for (const Element& e : s.elements) {
      s_counts[IdentityKey(e, sim_->kind())] += 1;
    }
    std::unordered_map<std::string, int> consumed;  // R-side pairings done.
    for (const Element& e : r.elements) {
      const std::string key = IdentityKey(e, sim_->kind());
      auto it = s_counts.find(key);
      int available = it == s_counts.end() ? 0 : it->second;
      int& used = consumed[key];
      if (used < available) {
        ++used;
        ++reduced;
      } else {
        r_elems.push_back(&e);
      }
    }
    // Remove the same multiset of elements from S.
    std::unordered_map<std::string, int> to_skip = consumed;
    for (const Element& e : s.elements) {
      const std::string key = IdentityKey(e, sim_->kind());
      auto it = to_skip.find(key);
      if (it != to_skip.end() && it->second > 0) {
        --it->second;
      } else {
        s_elems.push_back(&e);
      }
    }
  } else {
    for (const Element& e : r.elements) r_elems.push_back(&e);
    for (const Element& e : s.elements) s_elems.push_back(&e);
  }

  if (stats != nullptr) stats->reduced_pairs = reduced;
  return static_cast<double>(reduced) + ScoreDense(r_elems, s_elems, stats);
}

}  // namespace silkmoth
