#include "index/inverted_index.h"

#include <algorithm>

namespace silkmoth {

void InvertedIndex::Build(const Collection& collection) {
  Build(collection, 0, static_cast<uint32_t>(collection.sets.size()));
}

void InvertedIndex::Build(const Collection& collection, uint32_t begin_set,
                          uint32_t end_set) {
  postings_store_.clear();
  offsets_store_.clear();
  postings_ = {};
  offsets_ = {};
  begin_set = std::min<uint32_t>(begin_set,
                                 static_cast<uint32_t>(collection.sets.size()));
  end_set = std::min<uint32_t>(end_set,
                               static_cast<uint32_t>(collection.sets.size()));
  if (end_set < begin_set) end_set = begin_set;

  // Counting sort into CSR: one pass to size each list (growing past the
  // dictionary size if a stray token id exceeds it), prefix-sum the
  // offsets, one pass to scatter. Sets and elements are visited in order, so
  // every list comes out sorted by (set, elem) with no comparison sort.
  std::vector<size_t> counts(collection.dict ? collection.dict->size() : 0,
                             0);
  size_t total = 0;
  for (uint32_t s = begin_set; s < end_set; ++s) {
    for (const Element& elem : collection.sets[s].elements) {
      for (TokenId t : elem.tokens) {
        if (static_cast<size_t>(t) >= counts.size()) {
          counts.resize(static_cast<size_t>(t) + 1, 0);
        }
        ++counts[t];
        ++total;
      }
    }
  }
  const size_t num_tokens = counts.size();

  offsets_store_.resize(num_tokens + 1);
  offsets_store_[0] = 0;
  for (size_t t = 0; t < num_tokens; ++t) {
    offsets_store_[t + 1] = offsets_store_[t] + counts[t];
  }

  postings_store_.resize(total);
  std::vector<size_t> cursor(offsets_store_.begin(),
                             offsets_store_.end() - 1);
  for (uint32_t s = begin_set; s < end_set; ++s) {
    const SetRecord& set = collection.sets[s];
    for (uint32_t e = 0; e < set.elements.size(); ++e) {
      for (TokenId t : set.elements[e].tokens) {
        postings_store_[cursor[t]++] = Posting{s, e};
      }
    }
  }

  // Element token lists are already deduplicated, so each list is unique by
  // construction; stay robust against future callers that feed duplicate
  // tokens by compacting in place (a no-op copy in the common case is
  // skipped entirely).
  bool clean = true;
  for (size_t t = 0; t < num_tokens && clean; ++t) {
    for (size_t i = offsets_store_[t] + 1; i < offsets_store_[t + 1]; ++i) {
      if (postings_store_[i - 1] >= postings_store_[i]) {
        clean = false;
        break;
      }
    }
  }
  if (!clean) {
    size_t write = 0;
    for (size_t t = 0; t < num_tokens; ++t) {
      const size_t begin = offsets_store_[t];
      const size_t end = offsets_store_[t + 1];
      std::sort(postings_store_.begin() + begin,
                postings_store_.begin() + end);
      offsets_store_[t] = write;
      for (size_t i = begin; i < end; ++i) {
        if (i > begin && postings_store_[i] == postings_store_[write - 1]) {
          continue;
        }
        postings_store_[write++] = postings_store_[i];
      }
    }
    offsets_store_[num_tokens] = write;
    postings_store_.resize(write);
  }
  postings_store_.shrink_to_fit();
  offsets_ = offsets_store_;
  postings_ = postings_store_;
}

bool InvertedIndex::ValidCsr(std::span<const size_t> offsets,
                             std::span<const Posting> postings) {
  if (offsets.empty()) return postings.empty();
  if (offsets.front() != 0 || offsets.back() != postings.size()) return false;
  for (size_t t = 1; t < offsets.size(); ++t) {
    if (offsets[t] < offsets[t - 1]) return false;
  }
  return true;
}

bool InvertedIndex::AdoptCsr(std::vector<size_t> offsets,
                             std::vector<Posting> postings) {
  postings_store_.clear();
  offsets_store_.clear();
  postings_ = {};
  offsets_ = {};
  if (!ValidCsr(offsets, postings)) return false;
  offsets_store_ = std::move(offsets);
  postings_store_ = std::move(postings);
  offsets_ = offsets_store_;
  postings_ = postings_store_;
  return true;
}

bool InvertedIndex::AdoptCsrView(std::span<const size_t> offsets,
                                 std::span<const Posting> postings) {
  postings_store_.clear();
  offsets_store_.clear();
  postings_ = {};
  offsets_ = {};
  if (!ValidCsr(offsets, postings)) return false;
  offsets_ = offsets;
  postings_ = postings;
  return true;
}

std::span<const Posting> InvertedIndex::ListInSet(TokenId t,
                                                  uint32_t set_id) const {
  auto list = List(t);
  auto lo = std::lower_bound(list.begin(), list.end(), Posting{set_id, 0});
  auto hi = std::lower_bound(lo, list.end(), Posting{set_id + 1, 0});
  return {lo, hi};
}

}  // namespace silkmoth
