#include "datagen/dblp.h"

#include <algorithm>

#include "text/tokenizer.h"
#include "util/rng.h"
#include "util/zipf.h"

namespace silkmoth {
namespace {

// Deterministic pseudo-word for a vocabulary rank: consonant-vowel pattern
// gives pronounceable, distinct words of length >= 6 (so q-gram counts per
// word track the paper's ~5 tokens/element at q = 3).
std::string MakeWord(size_t rank) {
  static const char* kConsonants = "bcdfghklmnprstvz";
  static const char* kVowels = "aeiou";
  std::string w;
  size_t x = rank * 80 + rank + 6407;  // Spread ranks across >= 3 syllables.
  do {
    w.push_back(kConsonants[x % 16]);
    x /= 16;
    w.push_back(kVowels[x % 5]);
    x /= 5;
  } while (x > 0);
  return w;
}

}  // namespace

std::string ApplyTypo(const std::string& word, Rng* rng) {
  if (word.empty()) return word;
  std::string out = word;
  const size_t pos = static_cast<size_t>(rng->NextBounded(out.size()));
  const char letter = static_cast<char>('a' + rng->NextBounded(26));
  switch (rng->NextBounded(3)) {
    case 0:  // substitution
      out[pos] = letter;
      break;
    case 1:  // deletion (keep words non-empty)
      if (out.size() > 1) out.erase(pos, 1);
      break;
    default:  // insertion
      out.insert(out.begin() + static_cast<long>(pos), letter);
      break;
  }
  return out;
}

std::vector<std::string> GenerateDblpTitles(const DblpParams& params) {
  Rng rng(params.seed);
  const ZipfDistribution zipf(params.vocabulary, params.zipf_skew);

  std::vector<std::string> vocab(params.vocabulary);
  for (size_t i = 0; i < params.vocabulary; ++i) vocab[i] = MakeWord(i);

  const size_t num_base = std::max<size_t>(
      1, params.num_titles -
             static_cast<size_t>(params.duplicate_rate *
                                 static_cast<double>(params.num_titles)));

  std::vector<std::string> titles;
  titles.reserve(params.num_titles);
  for (size_t i = 0; i < num_base && titles.size() < params.num_titles; ++i) {
    const size_t words = static_cast<size_t>(
        rng.NextInRange(static_cast<int64_t>(params.min_words),
                        static_cast<int64_t>(params.max_words)));
    std::string title;
    for (size_t w = 0; w < words; ++w) {
      if (w > 0) title.push_back(' ');
      title += vocab[zipf.Sample(&rng)];
    }
    titles.push_back(std::move(title));
  }

  // Perturbed near-duplicates of random base titles: these are the truly
  // related pairs the discovery experiments must find.
  while (titles.size() < params.num_titles) {
    const size_t src = static_cast<size_t>(rng.NextBounded(num_base));
    std::string copy;
    for (std::string_view w : SplitWords(titles[src])) {
      if (!copy.empty()) copy.push_back(' ');
      std::string word(w);
      if (rng.NextBool(params.typo_rate)) word = ApplyTypo(word, &rng);
      copy += word;
    }
    titles.push_back(std::move(copy));
  }
  return titles;
}

RawSets GenerateDblpSets(const DblpParams& params) {
  RawSets sets;
  for (const std::string& title : GenerateDblpTitles(params)) {
    std::vector<std::string> elements;
    for (std::string_view w : SplitWords(title)) elements.emplace_back(w);
    sets.push_back(std::move(elements));
  }
  return sets;
}

}  // namespace silkmoth
