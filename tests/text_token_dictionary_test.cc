#include "text/token_dictionary.h"

#include <gtest/gtest.h>

namespace silkmoth {
namespace {

TEST(TokenDictionaryTest, InternAssignsDenseIds) {
  TokenDictionary dict;
  EXPECT_EQ(dict.Intern("a"), 0u);
  EXPECT_EQ(dict.Intern("b"), 1u);
  EXPECT_EQ(dict.Intern("c"), 2u);
  EXPECT_EQ(dict.size(), 3u);
}

TEST(TokenDictionaryTest, InternIsIdempotent) {
  TokenDictionary dict;
  const TokenId a = dict.Intern("hello");
  EXPECT_EQ(dict.Intern("hello"), a);
  EXPECT_EQ(dict.size(), 1u);
}

TEST(TokenDictionaryTest, LookupFindsInterned) {
  TokenDictionary dict;
  dict.Intern("x");
  dict.Intern("y");
  EXPECT_EQ(dict.Lookup("y"), 1u);
  EXPECT_EQ(dict.Lookup("missing"), kInvalidToken);
}

TEST(TokenDictionaryTest, TokenRoundTrips) {
  TokenDictionary dict;
  const TokenId id = dict.Intern("roundtrip");
  EXPECT_EQ(dict.Token(id), "roundtrip");
}

TEST(TokenDictionaryTest, DistinguishesCaseAndWhitespace) {
  TokenDictionary dict;
  const TokenId a = dict.Intern("Token");
  const TokenId b = dict.Intern("token");
  const TokenId c = dict.Intern("token ");
  EXPECT_NE(a, b);
  EXPECT_NE(b, c);
  EXPECT_EQ(dict.size(), 3u);
}

TEST(TokenDictionaryTest, HandlesEmbeddedNulAndBinary) {
  TokenDictionary dict;
  const std::string binary("q\x01\x00z", 4);
  const TokenId id = dict.Intern(binary);
  EXPECT_EQ(dict.Lookup(binary), id);
  EXPECT_EQ(dict.Token(id).size(), 4u);
}

TEST(TokenDictionaryTest, ManyTokens) {
  TokenDictionary dict;
  for (int i = 0; i < 10000; ++i) {
    EXPECT_EQ(dict.Intern("tok" + std::to_string(i)),
              static_cast<TokenId>(i));
  }
  EXPECT_EQ(dict.size(), 10000u);
  EXPECT_EQ(dict.Lookup("tok9999"), 9999u);
}

}  // namespace
}  // namespace silkmoth
