#ifndef SILKMOTH_FILTER_CHECK_FILTER_H_
#define SILKMOTH_FILTER_CHECK_FILTER_H_

#include <cstdint>
#include <vector>

#include "core/options.h"
#include "index/inverted_index.h"
#include "sig/signature.h"
#include "text/dataset.h"

namespace silkmoth {

struct QueryScratch;
class ElementSimilarity;

/// One candidate set surviving candidate selection.
///
/// `best` holds, for every element index i of R that had at least one probed
/// match in this set, the maximum φ_α(r_i, s) over those matches (the check
/// filter computes these similarities anyway, and the NN filter reuses
/// them). `strong` marks candidates with at least one match at or above the
/// element's check threshold.
struct Candidate {
  uint32_t set_id = 0;
  std::vector<std::pair<uint32_t, double>> best;  ///< (elem idx, max φ_α).
  bool strong = false;

  friend bool operator==(const Candidate&, const Candidate&) = default;
};

/// Counters for the candidate selection + check filter stage.
struct CheckFilterStats {
  size_t postings_scanned = 0;
  size_t similarity_calls = 0;
  size_t initial_candidates = 0;  ///< Distinct sets touched by the probes.
  size_t size_filtered = 0;       ///< Dropped by the size bounds.
  size_t check_filtered = 0;      ///< Dropped by the check filter.
};

/// Candidate selection and check filter (Algorithm 1, extended per §6.5).
///
/// Walks each probe token's inverted list; each (set, element) posting pair
/// gets φ_α(r_i, s) computed and folded into the candidate's `best`. A
/// candidate survives when it has at least one "strong" match — one with
/// φ_α at or above the element's check threshold — or, defensively, when the
/// signature's miss-bound sum fails to certify pruning (only possible for
/// the combined-unweighted scheme, whose validity rests on the count
/// argument instead). Sets infeasible by the size bounds (footnote 6 /
/// Definition 2) are dropped on first touch.
///
/// When `apply_check` is false only the selection and size test run: every
/// touched feasible set becomes a candidate with `best` still populated.
///
/// `sim` is the resolved similarity for `options.phi` (looked up internally
/// when null — callers on the hot path resolve it once per search pass).
/// `scratch` provides the epoch-stamped candidate accumulator; when null a
/// private scratch is allocated for this call.
std::vector<Candidate> SelectAndCheckCandidates(
    const SetRecord& ref, const Signature& sig, const Collection& data,
    const InvertedIndex& index, const Options& options, bool apply_check,
    CheckFilterStats* stats = nullptr, const ElementSimilarity* sim = nullptr,
    QueryScratch* scratch = nullptr);

/// Fallback when no valid signature exists (§7.3): every size-feasible set
/// in `range` (clamped to the collection; defaults to all of it) becomes a
/// candidate with empty `best`. Sharded passes restrict the scan to their
/// shard's set-id range so shards never report overlapping candidates.
std::vector<Candidate> AllCandidates(const SetRecord& ref,
                                     const Collection& data,
                                     const Options& options,
                                     SetIdRange range = {});

}  // namespace silkmoth

#endif  // SILKMOTH_FILTER_CHECK_FILTER_H_
