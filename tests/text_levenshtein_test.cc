#include "text/levenshtein.h"

#include <string>

#include <gtest/gtest.h>

#include "util/rng.h"

namespace silkmoth {
namespace {

TEST(LevenshteinTest, KnownDistances) {
  EXPECT_EQ(LevenshteinDistance("", ""), 0);
  EXPECT_EQ(LevenshteinDistance("a", ""), 1);
  EXPECT_EQ(LevenshteinDistance("", "abc"), 3);
  EXPECT_EQ(LevenshteinDistance("kitten", "sitting"), 3);
  EXPECT_EQ(LevenshteinDistance("flaw", "lawn"), 2);
  EXPECT_EQ(LevenshteinDistance("same", "same"), 0);
}

TEST(LevenshteinTest, PaperExample) {
  // Section 2.1: LD("50 Vassar St MA", "50 Vassar Street MA") = 4.
  EXPECT_EQ(LevenshteinDistance("50 Vassar St MA", "50 Vassar Street MA"), 4);
}

TEST(LevenshteinTest, Symmetric) {
  EXPECT_EQ(LevenshteinDistance("abcdef", "azced"),
            LevenshteinDistance("azced", "abcdef"));
}

TEST(LevenshteinTest, BoundedMatchesFullWithinBudget) {
  const std::string a = "approximate string matching";
  const std::string b = "appromixate strng mtaching";
  const int full = LevenshteinDistance(a, b);
  EXPECT_EQ(BoundedLevenshtein(a, b, full), full);
  EXPECT_EQ(BoundedLevenshtein(a, b, full + 3), full);
}

TEST(LevenshteinTest, BoundedReportsOverBudget) {
  const std::string a = "completely";
  const std::string b = "different!";
  const int full = LevenshteinDistance(a, b);
  ASSERT_GT(full, 2);
  EXPECT_GT(BoundedLevenshtein(a, b, 2), 2);
}

TEST(LevenshteinTest, BoundedLengthGapShortcut) {
  EXPECT_GT(BoundedLevenshtein("ab", "abcdefgh", 3), 3);
}

TEST(LevenshteinTest, BoundedNegativeBudget) {
  EXPECT_EQ(BoundedLevenshtein("", "", -1), 0);
  EXPECT_GT(BoundedLevenshtein("a", "b", -1), -1);
}

TEST(LevenshteinTest, BoundedZeroBudget) {
  EXPECT_EQ(BoundedLevenshtein("same", "same", 0), 0);
  EXPECT_GT(BoundedLevenshtein("same", "sane", 0), 0);
}

TEST(LevenshteinTest, TriangleInequalityOnRandomStrings) {
  Rng rng(99);
  auto random_string = [&](size_t max_len) {
    std::string s;
    const size_t len = rng.NextBounded(max_len + 1);
    for (size_t i = 0; i < len; ++i) {
      s.push_back(static_cast<char>('a' + rng.NextBounded(4)));
    }
    return s;
  };
  for (int trial = 0; trial < 300; ++trial) {
    const std::string x = random_string(12);
    const std::string y = random_string(12);
    const std::string z = random_string(12);
    EXPECT_LE(LevenshteinDistance(x, z),
              LevenshteinDistance(x, y) + LevenshteinDistance(y, z));
  }
}

class BoundedVsFullSweep : public ::testing::TestWithParam<int> {};

TEST_P(BoundedVsFullSweep, AgreesWithFullOnRandomPairs) {
  const int max_d = GetParam();
  Rng rng(static_cast<uint64_t>(1000 + max_d));
  auto random_string = [&](size_t max_len) {
    std::string s;
    const size_t len = rng.NextBounded(max_len + 1);
    for (size_t i = 0; i < len; ++i) {
      s.push_back(static_cast<char>('a' + rng.NextBounded(6)));
    }
    return s;
  };
  for (int trial = 0; trial < 200; ++trial) {
    const std::string a = random_string(20);
    const std::string b = random_string(20);
    const int full = LevenshteinDistance(a, b);
    const int bounded = BoundedLevenshtein(a, b, max_d);
    if (full <= max_d) {
      EXPECT_EQ(bounded, full) << "a=" << a << " b=" << b;
    } else {
      EXPECT_GT(bounded, max_d) << "a=" << a << " b=" << b;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Budgets, BoundedVsFullSweep,
                         ::testing::Values(0, 1, 2, 3, 5, 8, 12));

}  // namespace
}  // namespace silkmoth
