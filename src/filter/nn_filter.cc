#include "filter/nn_filter.h"

#include <algorithm>

#include "core/query_scratch.h"
#include "core/relatedness.h"
#include "text/similarity.h"

namespace silkmoth {

double NnSearch(const Element& r_elem, uint32_t set_id,
                const Collection& data, const InvertedIndex& index,
                const Options& options, NnFilterStats* stats,
                const ElementSimilarity* sim, QueryScratch* scratch) {
  if (sim == nullptr) sim = GetSimilarity(options.phi);
  const SetRecord& target = data.sets[set_id];

  // Elements of `target` sharing no token with r_elem still have bounded
  // similarity: exactly 0 for Jaccard (word overlap is required), and at
  // most |r|/(|r|+g) for the edit similarities, where g is r's q-chunk
  // count (a string missing every q-gram of r misses every chunk, so
  // LD >= g, Section 7.1). The returned value is therefore the exact NN for
  // Jaccard and a tight upper bound for Eds/NEds — which is all the NN
  // filter needs.
  double floor = 0.0;
  if (IsEditSimilarity(options.phi) && !r_elem.chunks.empty()) {
    const double len = static_cast<double>(r_elem.text.size());
    const double unshared =
        len / (len + static_cast<double>(r_elem.chunks.size()));
    if (unshared >= options.alpha - kFloatSlack) floor = unshared;
  }

  // Visit every element of `target` sharing at least one token with r_elem.
  // With a scratch, epoch-stamped marks keep φ computed once per element at
  // O(1) per posting; without one (one-shot callers) a small visited list
  // proportional to the elements actually reached avoids paying an
  // O(|target|) allocation per call.
  std::vector<uint32_t> local_visited;
  if (scratch != nullptr) scratch->BeginNnSearch(target.Size());
  auto first_visit = [&](uint32_t elem_id) {
    if (scratch != nullptr) return scratch->VisitElem(elem_id);
    if (std::find(local_visited.begin(), local_visited.end(), elem_id) !=
        local_visited.end()) {
      return false;
    }
    local_visited.push_back(elem_id);
    return true;
  };
  double best = floor;
  for (TokenId t : r_elem.tokens) {
    for (const Posting& p : index.ListInSet(t, set_id)) {
      if (!first_visit(p.elem_id)) continue;
      const double s = sim->ScoreThresholded(
          r_elem, target.elements[p.elem_id], options.alpha);
      if (stats != nullptr) ++stats->similarity_calls;
      best = std::max(best, s);
      if (best >= 1.0 - kFloatSlack) return best;  // Cannot improve.
    }
  }
  return best;
}

std::vector<Candidate> NnFilterCandidates(
    const SetRecord& ref, const Signature& sig,
    std::vector<Candidate> candidates, const Collection& data,
    const InvertedIndex& index, const Options& options, NnFilterStats* stats,
    const ElementSimilarity* sim, QueryScratch* scratch) {
  if (sim == nullptr) sim = GetSimilarity(options.phi);
  const double theta = MatchingThreshold(options.delta, ref.Size());
  const size_t n = ref.Size();

  std::vector<Candidate> out;
  out.reserve(candidates.size());

  // Scratch: per-element estimate and whether it is already exact.
  std::vector<double> est(n);
  std::vector<uint8_t> exact(n);

  for (Candidate& cand : candidates) {
    // Initialize with miss bounds, then fold in the check filter's probed
    // similarities (computation reuse, Section 5.2): a probed best that
    // reaches the miss bound dominates every unprobed element, so it IS the
    // exact nearest-neighbor similarity. For α-protected elements the miss
    // bound is 0, so any probed best is exact.
    double total = 0.0;
    for (size_t i = 0; i < n; ++i) {
      est[i] = sig.miss_bound[i];
      exact[i] = 0;
    }
    for (const auto& [elem, best] : cand.best) {
      if (best >= sig.miss_bound[elem] - kFloatSlack) {
        est[elem] = best;
        exact[elem] = 1;
      }
      // Otherwise the probed matches are all weaker than the miss bound and
      // elements outside the probe set may still reach it: keep the bound.
    }
    for (size_t i = 0; i < n; ++i) total += est[i];

    bool pruned = total < theta - kFloatSlack;
    if (!pruned) {
      for (size_t i = 0; i < n; ++i) {
        if (exact[i]) continue;
        if (stats != nullptr) ++stats->nn_searches;
        const double nn = NnSearch(ref.elements[i], cand.set_id, data, index,
                                   options, stats, sim, scratch);
        total += nn - est[i];
        est[i] = nn;
        exact[i] = 1;
        if (total < theta - kFloatSlack) {
          pruned = true;
          if (stats != nullptr && i + 1 < n) ++stats->early_terminations;
          break;
        }
      }
    }

    if (pruned) {
      if (stats != nullptr) ++stats->nn_filtered;
      continue;
    }
    out.push_back(std::move(cand));
  }
  return out;
}

}  // namespace silkmoth
