// Figure 4 reproduction: overall performance gains of SilkMoth's
// optimizations — NOOPT (brute-force all-pairs maximum matching) vs OPT
// (full SilkMoth) for the three applications at their default parameters.
//
// Expected shape (paper): OPT is orders of magnitude faster for string and
// schema matching; inclusion dependency OPT time is "too small to be
// distinguished".
//
// NOOPT is O(n^3 m^2); dataset sizes here are deliberately small so the
// baseline finishes. OPT runs on the same data, so the *ratio* is the
// reproduced quantity.

#include <iostream>

#include "bench_common.h"

int main() {
  using namespace silkmoth;
  using namespace silkmoth::bench;

  PrintHeader("Figure 4", "NOOPT vs OPT overall runtime");

  std::vector<Workload> workloads;
  workloads.push_back(StringMatchingWorkload(Scaled(300)));
  workloads.push_back(SchemaMatchingWorkload(Scaled(800)));
  workloads.push_back(InclusionDependencyWorkload(Scaled(1500), Scaled(25)));

  TablePrinter table({"Application", "NOOPT(s)", "OPT(s)", "speedup",
                      "results", "agree"});
  for (const Workload& w : workloads) {
    const RunResult noopt = RunBruteForce(w);
    const RunResult opt = RunSilkMoth(w);
    table.AddRow({w.name, TablePrinter::Num(noopt.seconds, 3),
                  TablePrinter::Num(opt.seconds, 3),
                  TablePrinter::Num(
                      opt.seconds > 0 ? noopt.seconds / opt.seconds : 0, 1),
                  TablePrinter::Int(static_cast<long long>(opt.results)),
                  noopt.results == opt.results ? "yes" : "NO!"});
  }
  table.Print(std::cout);
  return 0;
}
