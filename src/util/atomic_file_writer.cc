#include "util/atomic_file_writer.h"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>

#include "util/fault_injection.h"

#if defined(__unix__) || defined(__APPLE__)
#define SILKMOTH_HAVE_POSIX_IO 1
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>
#else
#define SILKMOTH_HAVE_POSIX_IO 0
#endif

namespace silkmoth {

AtomicFileWriter::AtomicFileWriter(std::string path, const char* fault_site)
    : path_(std::move(path)),
      tmp_path_(path_ + ".tmp"),
      fault_site_(fault_site == nullptr ? "" : fault_site) {}

AtomicFileWriter::~AtomicFileWriter() { Abort(); }

std::string AtomicFileWriter::Open() {
#if SILKMOTH_HAVE_POSIX_IO
  do {
    fd_ = ::open(tmp_path_.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  } while (fd_ < 0 && errno == EINTR);
  if (fd_ < 0) return "cannot open " + tmp_path_ + " for writing";
#else
  file_ = std::fopen(tmp_path_.c_str(), "wb");
  if (file_ == nullptr) return "cannot open " + tmp_path_ + " for writing";
#endif
  staged_ = false;
  committed_ = false;
  return "";
}

std::string AtomicFileWriter::Write(const void* data, size_t len) {
  const char* p = static_cast<const char*>(data);
#if SILKMOTH_HAVE_POSIX_IO
  if (fd_ < 0) return "write to " + tmp_path_ + " before Open()";
  while (len > 0) {
    const ssize_t n = ::write(fd_, p, len);
    if (n < 0) {
      if (errno == EINTR) continue;  // Interrupted: retry the same span.
      Abort();
      return "write to " + tmp_path_ + " failed";
    }
    // Short write: advance past the transferred prefix and keep going.
    p += n;
    len -= static_cast<size_t>(n);
  }
#else
  if (file_ == nullptr) return "write to " + tmp_path_ + " before Open()";
  std::FILE* f = static_cast<std::FILE*>(file_);
  while (len > 0) {
    const size_t n = std::fwrite(p, 1, len, f);
    if (n == 0) {
      Abort();
      return "write to " + tmp_path_ + " failed";
    }
    p += n;
    len -= n;
  }
#endif
  return "";
}

std::string AtomicFileWriter::Write(std::string_view text) {
  return Write(text.data(), text.size());
}

std::string AtomicFileWriter::Stage() {
#if SILKMOTH_HAVE_POSIX_IO
  if (fd_ < 0) return staged_ ? "" : "stage of " + tmp_path_ + " before Open()";
  int rc;
  do {
    rc = ::fsync(fd_);
  } while (rc != 0 && errno == EINTR);
  // fsync failure (e.g. on filesystems that reject it) is not fatal to the
  // atomicity story — rename ordering is what keeps `path` untorn — so only
  // close errors fail the stage.
  do {
    rc = ::close(fd_);
  } while (rc != 0 && errno == EINTR);
  fd_ = -1;
  if (rc != 0) {
    std::remove(tmp_path_.c_str());
    return "write to " + tmp_path_ + " failed";
  }
#else
  if (file_ == nullptr) {
    return staged_ ? "" : "stage of " + tmp_path_ + " before Open()";
  }
  std::FILE* f = static_cast<std::FILE*>(file_);
  const bool ok = std::fflush(f) == 0;
  const bool closed = std::fclose(f) == 0;
  file_ = nullptr;
  if (!ok || !closed) {
    std::remove(tmp_path_.c_str());
    return "write to " + tmp_path_ + " failed";
  }
#endif
  staged_ = true;
  return "";
}

std::string AtomicFileWriter::Commit() {
  if (!staged_) {
    const std::string err = Stage();
    if (!err.empty()) return err;
  }
  if (!fault_site_.empty()) {
    const fault::Outcome o = fault::Hit(fault_site_.c_str());
    if (o.kind == fault::Outcome::kFail) {
      Abort();
      return "write to " + tmp_path_ + " failed (injected)";
    }
    if (o.kind == fault::Outcome::kTorn) {
      // Simulated torn write: only a prefix of the staged bytes survives,
      // and the truncated file still gets published.
#if SILKMOTH_HAVE_POSIX_IO
      if (::truncate(tmp_path_.c_str(),
                     static_cast<off_t>(o.arg < 0 ? 0 : o.arg)) != 0) {
        Abort();
        return "cannot truncate " + tmp_path_ + " (injected torn write)";
      }
#else
      std::string bytes;
      if (ReadFileToString(tmp_path_, &bytes).empty()) {
        bytes.resize(
            std::min(bytes.size(),
                     static_cast<size_t>(o.arg < 0 ? 0 : o.arg)));
        std::FILE* f = std::fopen(tmp_path_.c_str(), "wb");
        if (f != nullptr) {
          std::fwrite(bytes.data(), 1, bytes.size(), f);
          std::fclose(f);
        }
      }
#endif
    }
    if (o.kind == fault::Outcome::kCorrupt) {
      // Simulated bit rot: damage one byte at the given offset.
      std::FILE* f = std::fopen(tmp_path_.c_str(), "r+b");
      if (f != nullptr) {
        if (std::fseek(f, static_cast<long>(o.arg), SEEK_SET) == 0) {
          const int c = std::fgetc(f);
          if (c != EOF) {
            std::fseek(f, static_cast<long>(o.arg), SEEK_SET);
            std::fputc(c ^ 0x5a, f);
          }
        }
        std::fclose(f);
      }
    }
  }
  if (std::rename(tmp_path_.c_str(), path_.c_str()) != 0) {
    // POSIX rename replaces an existing destination atomically; other
    // platforms may refuse, so retry once with the destination removed
    // (losing atomicity only where the OS never offered it).
    std::remove(path_.c_str());
    if (std::rename(tmp_path_.c_str(), path_.c_str()) != 0) {
      Abort();
      return "cannot rename " + tmp_path_ + " to " + path_;
    }
  }
  committed_ = true;
  return "";
}

void AtomicFileWriter::Abort() {
  if (committed_) return;
#if SILKMOTH_HAVE_POSIX_IO
  if (fd_ >= 0) {
    int rc;
    do {
      rc = ::close(fd_);
    } while (rc != 0 && errno == EINTR);
    fd_ = -1;
    std::remove(tmp_path_.c_str());
    return;
  }
#else
  if (file_ != nullptr) {
    std::fclose(static_cast<std::FILE*>(file_));
    file_ = nullptr;
    std::remove(tmp_path_.c_str());
    return;
  }
#endif
  if (staged_) {
    std::remove(tmp_path_.c_str());
    staged_ = false;
  }
}

std::string ReadFileToString(const std::string& path, std::string* out,
                             const char* fault_site) {
  if (fault_site != nullptr) {
    const fault::Outcome o = fault::Hit(fault_site);
    if (o.kind == fault::Outcome::kFail) {
      return "cannot open " + path + " (injected read failure)";
    }
  }
#if SILKMOTH_HAVE_POSIX_IO
  int fd;
  do {
    fd = ::open(path.c_str(), O_RDONLY);
  } while (fd < 0 && errno == EINTR);
  if (fd < 0) return "cannot open " + path;
  std::string bytes;
  char buf[1 << 16];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;  // Interrupted: retry.
      ::close(fd);
      return "read from " + path + " failed";
    }
    if (n == 0) break;  // EOF; short reads just loop again.
    bytes.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  *out = std::move(bytes);
  return "";
#else
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return "cannot open " + path;
  std::string bytes;
  char buf[1 << 16];
  for (;;) {
    const size_t n = std::fread(buf, 1, sizeof(buf), f);
    bytes.append(buf, n);
    if (n < sizeof(buf)) {
      if (std::ferror(f)) {
        std::fclose(f);
        return "read from " + path + " failed";
      }
      break;
    }
  }
  std::fclose(f);
  *out = std::move(bytes);
  return "";
#endif
}

}  // namespace silkmoth
