#!/usr/bin/env bash
# Markdown link checker over README.md + docs/: every relative link must
# point at an existing file, and every fragment (#anchor) must match a
# heading in the target file (GitHub slug rules). External http(s)/mailto
# links are not fetched — this guards the repo's *internal* cross-references
# against rot, cheaply and deterministically.
#
# Usage: docs_link_check.sh [repo-root]   (default: current directory)
set -euo pipefail

ROOT="${1:-.}"

python3 - "$ROOT" <<'EOF'
import glob
import os
import re
import sys

root = sys.argv[1]
files = sorted([os.path.join(root, "README.md")] +
               glob.glob(os.path.join(root, "docs", "*.md")))

LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
HEADING = re.compile(r"^#{1,6}\s+(.*)$")


def slug(heading):
    """GitHub-style anchor slug: lowercase, drop punctuation (underscores
    and hyphens survive), spaces->'-'."""
    text = heading.strip().lower()
    text = text.replace("`", "")
    text = "".join(c for c in text if c.isalnum() or c in " -_")
    return text.replace(" ", "-")


def headings_of(path):
    anchors = set()
    counts = {}
    with open(path, encoding="utf-8") as f:
        in_fence = False
        for line in f:
            if line.startswith("```"):
                in_fence = not in_fence
                continue
            if in_fence:
                continue
            m = HEADING.match(line)
            if m:
                base = slug(m.group(1))
                # GitHub disambiguates repeated headings with -1, -2, ...
                n = counts.get(base, 0)
                counts[base] = n + 1
                anchors.add(base if n == 0 else f"{base}-{n}")
    return anchors


errors = []
checked = 0
for md in files:
    base = os.path.dirname(md)
    with open(md, encoding="utf-8") as f:
        text = f.read()
    # Strip fenced code blocks: shell snippets legitimately contain
    # bracket-paren sequences that are not links.
    text = re.sub(r"```.*?```", "", text, flags=re.S)
    for target in LINK.findall(text):
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        checked += 1
        path_part, _, anchor = target.partition("#")
        resolved = os.path.normpath(os.path.join(base, path_part)) \
            if path_part else md
        if not os.path.exists(resolved):
            errors.append(f"{md}: broken link '{target}' "
                          f"(no such file: {resolved})")
            continue
        if anchor and resolved.endswith(".md"):
            if anchor not in headings_of(resolved):
                errors.append(f"{md}: broken anchor '{target}' "
                              f"(no heading slugs to '{anchor}' in "
                              f"{resolved})")

for e in errors:
    print(f"FAIL: {e}", file=sys.stderr)
if errors:
    sys.exit(1)
print(f"PASS: docs link check ({len(files)} files, "
      f"{checked} internal links)")
EOF
