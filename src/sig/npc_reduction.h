#ifndef SILKMOTH_SIG_NPC_REDUCTION_H_
#define SILKMOTH_SIG_NPC_REDUCTION_H_

#include <array>
#include <cstdint>
#include <optional>
#include <vector>

namespace silkmoth {

/// The paper's appendix: optimal valid signature selection is NP-complete
/// (Theorems 2 and 6). The proof chains two reductions:
///
///   3-CNF-SAT  ->  inverse-prime subset sum  ->  signature decision problem
///
/// This module implements both constructions faithfully so the reductions
/// can be *executed and verified* on small instances. Numbers of the
/// inverse-prime problem have the form Σ_{p in P'} 1/p with P' a subset of
/// the primes {7, 11, 13, ...}; we represent them exactly as sets of prime
/// indices and do subset-sum arithmetic over a common denominator (the
/// product of all primes in play), which fits 64 bits for the small
/// formulas the tests exercise.

/// A 3-CNF formula: each clause has exactly three literals; literal value
/// +v means variable v (1-based), -v means its negation.
struct CnfFormula {
  int num_variables = 0;
  std::vector<std::array<int, 3>> clauses;
};

/// One number of the inverse-prime instance: Σ 1/prime[i] over `prime_idx`
/// (0-based indices into the instance's prime list).
struct InversePrimeNumber {
  std::vector<int> prime_idx;
};

/// The constructed inverse-prime subset sum instance ⟨A, s, l⟩.
struct InversePrimeInstance {
  std::vector<int64_t> primes;            ///< p_1..p_l (7, 11, 13, ...).
  std::vector<InversePrimeNumber> numbers;  ///< A (t_i, f_i, u_j, v_j).
  InversePrimeNumber target;                ///< s = Σ1/p_i + 3Σ1/p_{n+j}.
};

/// First `count` primes starting at 7 (the paper's p_1 = 7 convention).
std::vector<int64_t> PrimesFromSeven(int count);

/// Appendix reduction #1: builds the inverse-prime subset sum instance from
/// a 3-CNF formula (l = n + m primes; numbers t_i/f_i per variable and
/// u_j/v_j per clause; target s).
InversePrimeInstance ReduceCnfToInversePrimeSubsetSum(
    const CnfFormula& formula);

/// Exhaustive subset-sum decision over exact integer arithmetic (common
/// denominator = Π primes). Only for small instances (|A| <= ~24,
/// |primes| <= 9 so the denominator fits in int64). Returns the chosen
/// subset when one sums to the target.
std::optional<std::vector<size_t>> SolveInversePrimeSubsetSum(
    const InversePrimeInstance& instance);

/// Brute-force 3-CNF satisfiability (<= ~20 variables).
bool CnfSatisfiableBruteForce(const CnfFormula& formula);

/// Appendix reduction #2 instance: the decision version of optimal valid
/// signature selection ⟨I, R, δ, k⟩, abstracted — elements are token-id
/// sets and `list_size[t]` plays the role of |I[t]| (the real index never
/// materializes the astronomically long lists the construction calls for).
struct SignatureDecisionInstance {
  std::vector<std::vector<int>> elements;  ///< r_i as token-id lists.
  std::vector<int64_t> list_size;          ///< |I[t]| per token id.
  double delta = 0.0;
  int64_t k = 0;
};

/// Builds ⟨I, R, δ, k⟩ from an inverse-prime instance per the appendix: one
/// token per number a_i with |I[t_i]| = a_i·Πp, |P_i| elements r_i^p (the
/// token plus p-1 dummy tokens of huge cost), k = s·Πp, and
/// δ = 1 − (s−ε)/Σ|P_i|.
SignatureDecisionInstance ReduceSubsetSumToSignatureDecision(
    const InversePrimeInstance& instance);

/// Exhaustive decision: does a valid weighted signature (Definition 5) with
/// Σ|I[t]| <= k exist? Enumerates all token subsets; exponential, test-only.
bool SignatureDecisionBruteForce(const SignatureDecisionInstance& instance);

}  // namespace silkmoth

#endif  // SILKMOTH_SIG_NPC_REDUCTION_H_
