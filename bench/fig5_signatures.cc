// Figure 5 reproduction: runtime of the signature schemes (WEIGHTED,
// COMBUNWEIGHTED, SKYLINE, DICHOTOMY) as θ varies, for the three
// applications. As in Section 8.2, the refinement filters and the
// reduction-based verification are DISABLED so the signatures' candidate
// counts dominate the runtime.
//
// Expected shape (paper): SKYLINE/DICHOTOMY <= WEIGHTED < COMBUNWEIGHTED
// (up to ~7.7x at θ=0.7 for schema matching); all weighted-family schemes
// coincide at α=0; runtimes fall as θ grows.

#include <iostream>

#include "bench_common.h"

int main() {
  using namespace silkmoth;
  using namespace silkmoth::bench;

  PrintHeader("Figure 5",
              "signature schemes vs theta (filters off, no reduction)");

  const SignatureSchemeKind kSchemes[] = {
      SignatureSchemeKind::kWeighted, SignatureSchemeKind::kCombUnweighted,
      SignatureSchemeKind::kSkyline, SignatureSchemeKind::kDichotomy};
  const double kDeltas[] = {0.7, 0.75, 0.8, 0.85};

  struct App {
    const char* figure;
    Workload workload;
  };
  std::vector<App> apps;
  apps.push_back({"5a String Matching (alpha=0.8)",
                  StringMatchingWorkload(Scaled(500))});
  apps.push_back({"5b Schema Matching (alpha=0)",
                  SchemaMatchingWorkload(Scaled(1200))});
  apps.push_back({"5c Inclusion Dependency (alpha=0.5)",
                  InclusionDependencyWorkload(Scaled(2500), Scaled(40))});

  for (App& app : apps) {
    std::cout << "--- Figure " << app.figure << " ---\n";
    TablePrinter table({"theta(delta)", "scheme", "time(s)", "verifications",
                        "results"});
    for (double delta : kDeltas) {
      for (SignatureSchemeKind scheme : kSchemes) {
        Workload w = app.workload;  // Copy shares nothing mutable.
        w.options.delta = delta;
        w.options.scheme = scheme;
        w.options.check_filter = false;
        w.options.nn_filter = false;
        w.options.reduction = false;
        const RunResult r = RunSilkMoth(w);
        table.AddRow({TablePrinter::Num(delta, 2),
                      SignatureSchemeName(scheme),
                      TablePrinter::Num(r.seconds, 3),
                      TablePrinter::Int(
                          static_cast<long long>(r.stats.verifications)),
                      TablePrinter::Int(static_cast<long long>(r.results))});
      }
    }
    table.Print(std::cout);
    std::cout << "\n";
  }
  return 0;
}
