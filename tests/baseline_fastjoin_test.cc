#include "baseline/fastjoin.h"

#include <gtest/gtest.h>

#include "core/brute_force.h"
#include "datagen/dblp.h"

namespace silkmoth {
namespace {

Collection TitleData(size_t n, uint64_t seed, int q) {
  DblpParams p;
  p.num_titles = n;
  p.vocabulary = 50;
  p.min_words = 1;
  p.max_words = 3;
  p.duplicate_rate = 0.4;
  p.typo_rate = 0.25;
  p.seed = seed;
  return BuildCollection(GenerateDblpSets(p), TokenizerKind::kQGram, q);
}

Options StringMatchingOptions(double delta = 0.7, double alpha = 0.8) {
  Options o;
  o.metric = Relatedness::kSimilarity;
  o.phi = SimilarityKind::kEds;
  o.delta = delta;
  o.alpha = alpha;
  return o;
}

TEST(FastJoinTest, RejectsContainment) {
  Options o = StringMatchingOptions();
  o.metric = Relatedness::kContainment;
  Collection data = TitleData(10, 1, o.EffectiveQ());
  FastJoin fj(&data, o);
  EXPECT_FALSE(fj.ok());
  EXPECT_NE(fj.error().find("SET-SIMILARITY"), std::string::npos);
}

TEST(FastJoinTest, RejectsJaccard) {
  Options o = StringMatchingOptions();
  o.phi = SimilarityKind::kJaccard;
  Collection data = TitleData(10, 2, 3);
  FastJoin fj(&data, o);
  EXPECT_FALSE(fj.ok());
  EXPECT_NE(fj.error().find("edit similarity"), std::string::npos);
}

TEST(FastJoinTest, ForcesBaselineConfiguration) {
  Options o = StringMatchingOptions();
  o.scheme = SignatureSchemeKind::kDichotomy;  // Should be overridden.
  o.check_filter = true;
  o.nn_filter = true;
  Collection data = TitleData(10, 3, o.EffectiveQ());
  FastJoin fj(&data, o);
  ASSERT_TRUE(fj.ok());
  EXPECT_EQ(fj.options().scheme, SignatureSchemeKind::kCombUnweighted);
  EXPECT_FALSE(fj.options().check_filter);
  EXPECT_FALSE(fj.options().nn_filter);
  EXPECT_FALSE(fj.options().reduction);
}

TEST(FastJoinTest, ExactlyMatchesBruteForce) {
  // FastJoin is slower but still exact; its discovery output must equal the
  // oracle's on the string matching workload.
  for (double alpha : {0.7, 0.8}) {
    Options o = StringMatchingOptions(0.6, alpha);
    Collection data = TitleData(35, 4, o.EffectiveQ());
    FastJoin fj(&data, o);
    ASSERT_TRUE(fj.ok()) << fj.error();
    BruteForce oracle(&data, [&] {
      Options b = o;
      b.reduction = false;
      return b;
    }());
    EXPECT_EQ(fj.DiscoverSelf(), oracle.DiscoverSelf()) << "alpha " << alpha;
  }
}

TEST(FastJoinTest, SearchMatchesBruteForce) {
  Options o = StringMatchingOptions(0.6, 0.75);
  Collection data = TitleData(30, 5, o.EffectiveQ());
  FastJoin fj(&data, o);
  ASSERT_TRUE(fj.ok());
  Options b = o;
  b.reduction = false;
  BruteForce oracle(&data, b);
  for (size_t r = 0; r < data.sets.size(); r += 6) {
    EXPECT_EQ(fj.Search(data.sets[r]), oracle.Search(data.sets[r]));
  }
}

TEST(FastJoinTest, GeneratesMoreCandidatesThanSilkMoth) {
  // The point of Figure 8: the unweighted signature + no filters verifies
  // far more candidates than the full engine.
  Options o = StringMatchingOptions(0.7, 0.8);
  Collection data = TitleData(60, 6, o.EffectiveQ());
  FastJoin fj(&data, o);
  SilkMoth sm(&data, o);
  ASSERT_TRUE(fj.ok());
  ASSERT_TRUE(sm.ok());
  SearchStats fj_stats, sm_stats;
  auto a = fj.DiscoverSelf(&fj_stats);
  auto b = sm.DiscoverSelf(&sm_stats);
  EXPECT_EQ(a, b);  // Same exact answers...
  EXPECT_GE(fj_stats.verifications, sm_stats.verifications);  // ...more work.
}

}  // namespace
}  // namespace silkmoth
