#include "matching/local_max.h"

#include <cstddef>
#include <cstdint>
#include <vector>

namespace silkmoth {

double LocalMaxMatchingScore(const WeightMatrix& w) {
  const size_t rows = w.rows();
  const size_t cols = w.cols();
  if (rows == 0 || cols == 0) return 0.0;

  std::vector<uint8_t> row_live(rows, 1);
  std::vector<uint8_t> col_live(cols, 1);
  // Per round: each live row's heaviest live column, each live column's
  // heaviest live row (smallest index on ties, both sides).
  std::vector<size_t> row_best(rows);
  std::vector<size_t> col_best(cols);
  std::vector<double> col_best_w(cols);

  double total = 0.0;
  size_t live_rows = rows;
  size_t live_cols = cols;
  while (live_rows > 0 && live_cols > 0) {
    for (size_t j = 0; j < cols; ++j) {
      col_best[j] = rows;
      col_best_w[j] = 0.0;
    }
    bool any_positive = false;
    for (size_t i = 0; i < rows; ++i) {
      if (!row_live[i]) continue;
      double best = 0.0;
      size_t best_j = cols;
      for (size_t j = 0; j < cols; ++j) {
        if (!col_live[j]) continue;
        const double v = w.At(i, j);
        if (v > best) {
          best = v;
          best_j = j;
        }
        if (v > col_best_w[j]) {
          col_best_w[j] = v;
          col_best[j] = i;
        }
      }
      row_best[i] = best_j;
      any_positive = any_positive || best_j < cols;
    }
    if (!any_positive) break;  // Only zero weight survives; matching is done.
    for (size_t i = 0; i < rows; ++i) {
      if (!row_live[i]) continue;
      const size_t j = row_best[i];
      if (j == cols || col_best[j] != i) continue;  // Not mutually maximal.
      total += w.At(i, j);
      row_live[i] = 0;
      col_live[j] = 0;
      --live_rows;
      --live_cols;
    }
  }
  return total;
}

}  // namespace silkmoth
