#include "datagen/builders.h"

namespace silkmoth {

Collection BuildCollection(const RawSets& raw, TokenizerKind kind, int q) {
  return BuildCollectionWithDict(raw, kind, q,
                                 std::make_shared<TokenDictionary>());
}

Collection BuildCollectionWithDict(const RawSets& raw, TokenizerKind kind,
                                   int q,
                                   std::shared_ptr<TokenDictionary> dict) {
  Collection collection;
  collection.dict = std::move(dict);
  const Tokenizer tokenizer(kind, q);
  // One arena backs every set of the collection, shared via each set's
  // arena pointer so slices and copies of the collection stay self-owning.
  auto arena = std::make_shared<ElementArena>();
  collection.sets.reserve(raw.size());
  for (const auto& set_texts : raw) {
    SetRecord set =
        tokenizer.MakeSet(set_texts, collection.dict.get(), arena.get());
    set.arena = arena;
    collection.sets.push_back(std::move(set));
  }
  return collection;
}

SetRecord BuildReference(const std::vector<std::string>& element_texts,
                         TokenizerKind kind, int q, Collection* collection) {
  const Tokenizer tokenizer(kind, q);
  auto arena = std::make_shared<ElementArena>();
  SetRecord set =
      tokenizer.MakeSet(element_texts, collection->dict.get(), arena.get());
  set.arena = std::move(arena);
  return set;
}

uint64_t HashRawSets(const RawSets& raw) {
  // FNV-1a 64-bit. 0x1F (unit separator) closes each element and 0x1E
  // (record separator) closes each set, so moving bytes across element or
  // set boundaries always changes the digest. Neither byte occurs in text
  // inputs (the raw-set file format is line-oriented printable text).
  uint64_t h = 14695981039346656037ull;
  const auto mix = [&h](const char* bytes, size_t n) {
    for (size_t i = 0; i < n; ++i) {
      h ^= static_cast<unsigned char>(bytes[i]);
      h *= 1099511628211ull;
    }
  };
  const char unit_sep = '\x1f';
  const char record_sep = '\x1e';
  for (const auto& set_texts : raw) {
    for (const std::string& text : set_texts) {
      mix(text.data(), text.size());
      mix(&unit_sep, 1);
    }
    mix(&record_sep, 1);
  }
  return h;
}

ReferenceBlock BuildQueryBlock(const RawSets& raw, TokenizerKind kind, int q,
                               const Collection& corpus, Collection* query) {
  const size_t dict_before = corpus.dict->size();
  *query = BuildCollectionWithDict(raw, kind, q, corpus.dict);
  ReferenceBlock block = ReferenceBlock::External(*query);
  block.oov_tokens = corpus.dict->size() - dict_before;
  block.content_hash = HashRawSets(raw);
  return block;
}

}  // namespace silkmoth
