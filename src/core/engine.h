#ifndef SILKMOTH_CORE_ENGINE_H_
#define SILKMOTH_CORE_ENGINE_H_

#include <cstdint>
#include <vector>

#include "core/options.h"
#include "core/reference_block.h"
#include "core/search_pass.h"
#include "core/stats.h"
#include "index/inverted_index.h"
#include "text/dataset.h"

/// The SilkMoth reproduction: engines, search pass, signature schemes,
/// filters, maximum-matching verification, and the supporting text, index,
/// and data-generation utilities.
namespace silkmoth {

/// One related pair found in discovery mode.
struct PairMatch {
  uint32_t ref_id = 0;          ///< Index into the reference collection.
  uint32_t set_id = 0;          ///< Index into the indexed collection.
  double matching_score = 0.0;  ///< |R ∩̃φα S|.
  double relatedness = 0.0;     ///< similar() or contain() value.

  /// Structural equality (ids and exact scores).
  friend bool operator==(const PairMatch&, const PairMatch&) = default;
};

/// Canonical discovery output order: ascending (ref_id, set_id). Both the
/// single-index and the sharded engine sort with this, which is what makes
/// their outputs comparable byte-for-byte.
inline bool PairMatchIdLess(const PairMatch& a, const PairMatch& b) {
  if (a.ref_id != b.ref_id) return a.ref_id < b.ref_id;
  return a.set_id < b.set_id;
}

/// True when a self-join under `metric` reports each unordered pair once
/// (keeping ref_id < set_id): the symmetric SET-SIMILARITY case.
/// SET-CONTAINMENT is asymmetric, so both directions are evaluated. Shared
/// by every discovery implementation so the pair semantics cannot diverge.
inline bool SelfJoinReportsUnorderedPairs(Relatedness metric) {
  return metric == Relatedness::kSimilarity;
}

/// The SilkMoth engine (Section 3's framework).
///
/// Construction builds the inverted index over `data` once; every search
/// pass afterwards reuses it. The engine holds a pointer to `data`, which
/// must outlive it; both the collection and the index are immutable after
/// construction, so all query methods are const and thread-safe.
///
/// Usage:
///   Collection data = ...;                       // via datagen builders
///   Options opt;
///   opt.metric = Relatedness::kContainment;
///   opt.delta = 0.7;
///   SilkMoth engine(&data, opt);
///   auto matches = engine.Search(reference_set); // RELATED SET SEARCH
///   auto pairs = engine.DiscoverSelf();          // RELATED SET DISCOVERY
///
/// ShardedEngine (core/sharded_engine.h) is the drop-in sharded variant:
/// same queries, identical results, Options::num_shards indexes.
class SilkMoth {
 public:
  /// `data` must outlive the engine. Options are validated eagerly: invalid
  /// options are reported through ok()/error() and queries return empty.
  SilkMoth(const Collection* data, Options options);

  /// True when construction validated the options; queries on a not-ok
  /// engine return empty results.
  bool ok() const { return error_.empty(); }
  /// Human-readable validation error ("" when ok()).
  const std::string& error() const { return error_; }
  /// The validated engine configuration.
  const Options& options() const { return options_; }
  /// The inverted index built over data() at construction.
  const InvertedIndex& index() const { return index_; }
  /// The indexed collection (owned by the caller).
  const Collection& data() const { return *data_; }

  /// RELATED SET SEARCH (Problem 2): all sets related to `ref`. The
  /// reference must be tokenized against the data collection's dictionary.
  std::vector<SearchMatch> Search(const SetRecord& ref,
                                  SearchStats* stats = nullptr) const;

  /// Extension: the k most related sets among those with relatedness >=
  /// options().delta, ordered by descending relatedness (ties broken by
  /// ascending set id). Output-identical to selecting the k best from the
  /// full Search result, but runs the pass in top-k mode: a running heap
  /// of the k best feeds its k-th-best score back into verification as a
  /// floating floor, so candidates provably outside the top k are dropped
  /// without a matching solve (`heap_floor_rejects` counts them).
  std::vector<SearchMatch> SearchTopK(const SetRecord& ref, size_t k,
                                      SearchStats* stats = nullptr) const;

  /// RELATED SET DISCOVERY (Problem 1) across two collections: one search
  /// pass per reference set. Results sorted by (ref_id, set_id).
  std::vector<PairMatch> Discover(const Collection& refs,
                                  SearchStats* stats = nullptr) const;

  /// Block-granular discovery: streams exactly the references `block`
  /// selects — a self-join sub-range of the indexed collection or an
  /// external query collection tokenized against its dictionary (see
  /// core/reference_block.h). The full-collection self-join block is
  /// byte-identical to DiscoverSelf; external blocks additionally stamp
  /// the query_sets/oov_tokens counters. Self-join blocks must view this
  /// engine's own data collection.
  std::vector<PairMatch> Discover(const ReferenceBlock& block,
                                  SearchStats* stats = nullptr) const;

  /// Discovery within the indexed collection itself (R = S, the paper's
  /// string/schema matching setup). Self-pairs are skipped; under
  /// SET-SIMILARITY each unordered pair is reported once (ref_id < set_id);
  /// under SET-CONTAINMENT both directions are evaluated because the metric
  /// is asymmetric.
  std::vector<PairMatch> DiscoverSelf(SearchStats* stats = nullptr) const;

 private:

  const Collection* data_;
  Options options_;
  InvertedIndex index_;
  std::string error_;
};

}  // namespace silkmoth

#endif  // SILKMOTH_CORE_ENGINE_H_
