#ifndef SILKMOTH_INDEX_INVERTED_INDEX_H_
#define SILKMOTH_INDEX_INVERTED_INDEX_H_

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "text/dataset.h"

namespace silkmoth {

/// One entry of an inverted list: which element of which set contains the
/// token. Ordered by (set, elem) so per-set ranges can be binary searched.
struct Posting {
  uint32_t set_id;   ///< Index of the containing set in the collection.
  uint32_t elem_id;  ///< Index of the containing element within the set.

  /// Structural equality.
  friend bool operator==(const Posting&, const Posting&) = default;
  /// Lexicographic (set, elem) order — the inverted-list sort order.
  friend auto operator<=>(const Posting&, const Posting&) = default;
};

/// A contiguous [begin, end) range of global set ids — the candidate
/// universe of one shard. The default value covers any collection. Ranges
/// are half-open and may be empty (begin == end).
struct SetIdRange {
  uint32_t begin = 0;                          ///< First set id (inclusive).
  uint32_t end = static_cast<uint32_t>(-1);    ///< Past-the-end set id.

  /// True when `set_id` lies inside the range.
  bool Contains(uint32_t set_id) const {
    return set_id >= begin && set_id < end;
  }
};

/// Inverted index over a Collection (Section 3 of the paper).
///
/// For each token t, List(t) yields the sorted, deduplicated postings of all
/// (set, element) pairs containing t. The index is immutable after Build and
/// safe to share across threads. Tokens interned after Build (e.g. from a
/// search reference not present in the data) simply have empty lists.
///
/// Storage is CSR (compressed sparse row): one contiguous postings array
/// plus a per-token offsets array. Probing k tokens touches k contiguous
/// ranges of one allocation instead of k separately heap-allocated vectors,
/// and ListSize is an O(1) offsets difference — the signature schemes call
/// it once per candidate token when ordering probes by frequency.
/// The index either owns its CSR arrays (Build / AdoptCsr) or borrows them
/// (AdoptCsrView, the zero-copy snapshot load path); all queries go through
/// the same non-owning spans, so the two modes are indistinguishable to
/// callers. A borrowing index must not outlive the memory it views. The
/// index is movable but not copyable (a copy of a view-backed index would
/// silently alias storage it has no stake in).
class InvertedIndex {
 public:
  /// An empty index; call Build before querying.
  InvertedIndex() = default;

  /// Not copyable: a copy of a view-backed index would alias borrowed
  /// storage without a stake in its lifetime.
  InvertedIndex(const InvertedIndex&) = delete;
  /// Not copy-assignable (see the copy constructor).
  InvertedIndex& operator=(const InvertedIndex&) = delete;
  /// Move-constructs from `other`, leaving it empty.
  InvertedIndex(InvertedIndex&& other) noexcept { *this = std::move(other); }
  /// Moving transfers owned storage; spans stay valid because vector moves
  /// keep the heap buffer in place. The moved-from index is left empty.
  InvertedIndex& operator=(InvertedIndex&& other) noexcept {
    if (this != &other) {
      offsets_store_ = std::move(other.offsets_store_);
      postings_store_ = std::move(other.postings_store_);
      offsets_ = other.offsets_;
      postings_ = other.postings_;
      other.offsets_ = {};
      other.postings_ = {};
    }
    return *this;
  }

  /// Builds the index over `collection`. Any previous contents are replaced.
  void Build(const Collection& collection);

  /// Builds the index over the contiguous set-id range [begin_set, end_set)
  /// of `collection` only. Postings keep their *global* set ids, so the
  /// resulting index is a drop-in replacement for a full index whose
  /// candidate universe happens to be the range — this is the shard
  /// primitive behind ShardedEngine. An empty range yields an empty index.
  void Build(const Collection& collection, uint32_t begin_set,
             uint32_t end_set);

  /// Postings of token t (empty span for unknown tokens).
  std::span<const Posting> List(TokenId t) const {
    if (static_cast<size_t>(t) + 1 >= offsets_.size()) return {};
    return {postings_.data() + offsets_[t], offsets_[t + 1] - offsets_[t]};
  }

  /// |I[t]|: inverted list length; the signature schemes' token cost.
  size_t ListSize(TokenId t) const {
    if (static_cast<size_t>(t) + 1 >= offsets_.size()) return 0;
    return offsets_[t + 1] - offsets_[t];
  }

  /// Postings of token t restricted to set `set_id` (binary search).
  std::span<const Posting> ListInSet(TokenId t, uint32_t set_id) const;

  /// Number of token ids covered (>= max token id at Build time + 1).
  size_t NumTokens() const {
    return offsets_.empty() ? 0 : offsets_.size() - 1;
  }

  /// Sum of all list sizes.
  size_t TotalPostings() const { return postings_.size(); }

  /// The raw CSR offsets array (NumTokens() + 1 entries, or empty before
  /// Build). Exposed for bulk serialization — the snapshot subsystem writes
  /// this block verbatim and reloads it without per-posting parsing.
  std::span<const size_t> RawOffsets() const { return offsets_; }

  /// The raw concatenated postings array, in token-major (set, elem) order.
  /// The serialization companion of RawOffsets().
  std::span<const Posting> RawPostings() const { return postings_; }

  /// Adopts pre-built CSR arrays wholesale, taking ownership (the
  /// copy-mode snapshot load path). The arrays must form a valid CSR pair:
  /// either both empty, or offsets starting at 0, non-decreasing, and
  /// ending at postings.size(). Returns false and leaves the index empty
  /// when they do not — a corrupt snapshot must never produce a
  /// partially-initialized index.
  bool AdoptCsr(std::vector<size_t> offsets, std::vector<Posting> postings);

  /// Borrowed-memory variant of AdoptCsr: the index serves queries straight
  /// out of `offsets`/`postings` with zero copies (the mmap snapshot load
  /// path). Same structural validation and failure contract; the caller
  /// guarantees the viewed memory outlives the index's use.
  bool AdoptCsrView(std::span<const size_t> offsets,
                    std::span<const Posting> postings);

 private:
  /// Shared CSR-shape validation for both adoption paths.
  static bool ValidCsr(std::span<const size_t> offsets,
                       std::span<const Posting> postings);

  // Owned storage (empty when the index borrows) and the query-facing
  // views, which point either into the stores or into external memory.
  std::vector<Posting> postings_store_;
  std::vector<size_t> offsets_store_;
  std::span<const size_t> offsets_;    ///< Token t's list: [offsets_[t], offsets_[t+1]).
  std::span<const Posting> postings_;  ///< All lists, concatenated by token.
};

}  // namespace silkmoth

#endif  // SILKMOTH_INDEX_INVERTED_INDEX_H_
