#include "snapshot/snapshot.h"

#include <algorithm>
#include <array>
#include <cstring>
#include <fstream>
#include <type_traits>

#include "core/sharded_engine.h"

namespace silkmoth {
namespace {

// The flat-block read/write below memcpys these types directly between the
// file payload and the in-memory vectors; all three facts are load-bearing.
static_assert(std::is_trivially_copyable_v<Posting> && sizeof(Posting) == 8,
              "Posting must be a flat 8-byte record for bulk snapshot I/O");
static_assert(sizeof(size_t) == sizeof(uint64_t),
              "snapshot offsets are stored as u64 and bulk-read into size_t");
static_assert(sizeof(TokenId) == 4,
              "element token blocks are stored as u32 arrays");

// Section fourcc tags, in the order they must appear in the payload.
constexpr uint32_t kSecMeta = 0x4154454du;  // "META"
constexpr uint32_t kSecDict = 0x54434944u;  // "DICT"
constexpr uint32_t kSecColl = 0x4c4c4f43u;  // "COLL"
constexpr uint32_t kSecShrd = 0x44524853u;  // "SHRD"

// ---------------------------------------------------------------------------
// Writer: append little-endian scalars and raw blocks to a byte buffer.

void AppendBytes(std::string* buf, const void* data, size_t size) {
  buf->append(static_cast<const char*>(data), size);
}

void AppendU32(std::string* buf, uint32_t v) { AppendBytes(buf, &v, 4); }
void AppendU64(std::string* buf, uint64_t v) { AppendBytes(buf, &v, 8); }

// Opens a section: appends the tag and a length placeholder, returns the
// placeholder's position for CloseSection to patch.
size_t OpenSection(std::string* buf, uint32_t tag) {
  AppendU32(buf, tag);
  const size_t len_pos = buf->size();
  AppendU64(buf, 0);
  return len_pos;
}

void CloseSection(std::string* buf, size_t len_pos) {
  const uint64_t body_len = buf->size() - (len_pos + 8);
  std::memcpy(buf->data() + len_pos, &body_len, 8);
}

// ---------------------------------------------------------------------------
// Reader: a bounds-checked cursor over a byte span. Every read checks the
// remaining length first; the first overrun latches an error and every
// subsequent read fails, so parsing code can check ok() once per section.

class Reader {
 public:
  Reader(const char* data, size_t size) : data_(data), size_(size) {}

  bool ok() const { return ok_; }
  size_t remaining() const { return size_ - pos_; }

  const char* ReadBytes(size_t n) {
    if (!ok_ || n > remaining()) {
      ok_ = false;
      return nullptr;
    }
    const char* p = data_ + pos_;
    pos_ += n;
    return p;
  }

  uint32_t ReadU32() {
    const char* p = ReadBytes(4);
    uint32_t v = 0;
    if (p != nullptr) std::memcpy(&v, p, 4);
    return v;
  }

  uint64_t ReadU64() {
    const char* p = ReadBytes(8);
    uint64_t v = 0;
    if (p != nullptr) std::memcpy(&v, p, 8);
    return v;
  }

  std::string ReadString(uint32_t len) {
    const char* p = ReadBytes(len);
    return p != nullptr ? std::string(p, len) : std::string();
  }

  /// Bulk-reads `count` elements of trivially copyable type T into `out`.
  /// The byte length is validated against the remaining payload *before*
  /// the allocation, so a lying count can never trigger an OOM resize.
  template <typename T>
  bool ReadArray(uint64_t count, std::vector<T>* out) {
    if (!ok_ || count > remaining() / sizeof(T)) {
      ok_ = false;
      return false;
    }
    out->resize(static_cast<size_t>(count));
    const char* p = ReadBytes(count * sizeof(T));
    if (p == nullptr) return false;
    std::memcpy(out->data(), p, count * sizeof(T));
    return true;
  }

 private:
  const char* data_;
  size_t size_;
  size_t pos_ = 0;
  bool ok_ = true;
};

// Reads one section header and returns a sub-reader confined to its body.
// The tag must match and the claimed body length must fit in the payload.
bool EnterSection(Reader* payload, uint32_t want_tag, Reader* body) {
  const uint32_t tag = payload->ReadU32();
  const uint64_t len = payload->ReadU64();
  if (!payload->ok() || tag != want_tag) return false;
  const char* p = payload->ReadBytes(len);
  if (p == nullptr) return false;
  *body = Reader(p, len);
  return true;
}

}  // namespace

uint32_t SnapshotCrc32(const void* data, size_t size) {
  static const auto table = [] {
    std::array<uint32_t, 256> t{};
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  uint32_t crc = 0xFFFFFFFFu;
  const auto* p = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < size; ++i) {
    crc = table[(crc ^ p[i]) & 0xFF] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

Snapshot BuildSnapshot(Collection data, TokenizerKind tokenizer, int q,
                       uint32_t num_shards, int num_threads) {
  Snapshot snap;
  snap.tokenizer = tokenizer;
  snap.q = q;
  snap.data = std::move(data);

  // The exact partition + parallel index construction ShardedEngine uses,
  // so snapshot shard k is interchangeable with in-process shard k.
  const uint32_t num_sets = static_cast<uint32_t>(snap.data.sets.size());
  const std::vector<SetIdRange> ranges =
      ComputeShardRanges(num_sets, num_shards);
  std::vector<InvertedIndex> indexes =
      BuildShardIndexes(snap.data, ranges, num_threads);
  snap.shards.resize(num_shards);
  for (uint32_t s = 0; s < num_shards; ++s) {
    snap.shards[s].range = ranges[s];
    snap.shards[s].index = std::move(indexes[s]);
  }
  return snap;
}

std::string SaveSnapshot(const Snapshot& snap, const std::string& path) {
  if (snap.data.dict == nullptr) return "snapshot has no token dictionary";
  if (snap.shards.empty()) return "snapshot has no shards";

  std::string payload;

  {  // META
    const size_t len_pos = OpenSection(&payload, kSecMeta);
    AppendU32(&payload, static_cast<uint32_t>(snap.tokenizer));
    AppendU32(&payload, static_cast<uint32_t>(snap.q));
    AppendU64(&payload, snap.data.sets.size());
    AppendU32(&payload, static_cast<uint32_t>(snap.shards.size()));
    CloseSection(&payload, len_pos);
  }

  {  // DICT: token strings in id order; Intern order reconstructs the map.
    const size_t len_pos = OpenSection(&payload, kSecDict);
    const TokenDictionary& dict = *snap.data.dict;
    AppendU64(&payload, dict.size());
    for (TokenId t = 0; t < dict.size(); ++t) {
      const std::string& tok = dict.Token(t);
      AppendU32(&payload, static_cast<uint32_t>(tok.size()));
      AppendBytes(&payload, tok.data(), tok.size());
    }
    CloseSection(&payload, len_pos);
  }

  {  // COLL: per set, per element: text + token/chunk id blocks.
    const size_t len_pos = OpenSection(&payload, kSecColl);
    for (const SetRecord& set : snap.data.sets) {
      AppendU32(&payload, static_cast<uint32_t>(set.elements.size()));
      for (const Element& e : set.elements) {
        AppendU32(&payload, static_cast<uint32_t>(e.text.size()));
        AppendBytes(&payload, e.text.data(), e.text.size());
        AppendU32(&payload, static_cast<uint32_t>(e.tokens.size()));
        AppendBytes(&payload, e.tokens.data(),
                    e.tokens.size() * sizeof(TokenId));
        AppendU32(&payload, static_cast<uint32_t>(e.chunks.size()));
        AppendBytes(&payload, e.chunks.data(),
                    e.chunks.size() * sizeof(TokenId));
      }
    }
    CloseSection(&payload, len_pos);
  }

  for (size_t s = 0; s < snap.shards.size(); ++s) {  // SHRD × num_shards
    const Snapshot::Shard& shard = snap.shards[s];
    const size_t len_pos = OpenSection(&payload, kSecShrd);
    AppendU32(&payload, static_cast<uint32_t>(s));
    AppendU32(&payload, shard.range.begin);
    AppendU32(&payload, shard.range.end);
    const auto offsets = shard.index.RawOffsets();
    const auto postings = shard.index.RawPostings();
    AppendU64(&payload, offsets.size());
    AppendBytes(&payload, offsets.data(), offsets.size() * sizeof(size_t));
    AppendU64(&payload, postings.size());
    AppendBytes(&payload, postings.data(), postings.size() * sizeof(Posting));
    CloseSection(&payload, len_pos);
  }

  std::string header(kSnapshotHeaderSize, '\0');
  std::memcpy(header.data(), kSnapshotMagic, sizeof(kSnapshotMagic));
  const uint32_t version = kSnapshotVersion;
  std::memcpy(header.data() + kSnapshotVersionOffset, &version, 4);
  const uint32_t endian = kSnapshotEndianMarker;
  std::memcpy(header.data() + kSnapshotEndianOffset, &endian, 4);
  const uint64_t payload_len = payload.size();
  std::memcpy(header.data() + kSnapshotPayloadLenOffset, &payload_len, 8);
  const uint32_t crc = SnapshotCrc32(payload.data(), payload.size());
  std::memcpy(header.data() + kSnapshotCrcOffset, &crc, 4);

  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return "cannot open " + path + " for writing";
  out.write(header.data(), static_cast<std::streamsize>(header.size()));
  out.write(payload.data(), static_cast<std::streamsize>(payload.size()));
  out.flush();
  if (!out) return "write to " + path + " failed";
  return "";
}

std::string LoadSnapshot(const std::string& path, Snapshot* out) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) return "cannot open " + path;
  const std::streamoff file_size = in.tellg();
  if (file_size < static_cast<std::streamoff>(kSnapshotHeaderSize)) {
    return path + ": truncated header (file too small to be a snapshot)";
  }
  in.seekg(0);
  std::string buf(static_cast<size_t>(file_size), '\0');
  in.read(buf.data(), file_size);
  if (!in) return "read from " + path + " failed";

  // Header gate: magic, version, endianness, length, checksum — in that
  // order, so every error names the first thing actually wrong.
  if (std::memcmp(buf.data(), kSnapshotMagic, sizeof(kSnapshotMagic)) != 0) {
    return path + ": bad magic (not a silkmoth snapshot)";
  }
  uint32_t version = 0;
  std::memcpy(&version, buf.data() + kSnapshotVersionOffset, 4);
  if (version != kSnapshotVersion) {
    return path + ": unsupported snapshot version " + std::to_string(version);
  }
  uint32_t endian = 0;
  std::memcpy(&endian, buf.data() + kSnapshotEndianOffset, 4);
  if (endian != kSnapshotEndianMarker) {
    return path + ": endianness mismatch (snapshot written on an " +
           "opposite-endian machine)";
  }
  uint64_t payload_len = 0;
  std::memcpy(&payload_len, buf.data() + kSnapshotPayloadLenOffset, 8);
  if (payload_len != buf.size() - kSnapshotHeaderSize) {
    return path + ": payload length mismatch (truncated or padded file)";
  }
  uint32_t want_crc = 0;
  std::memcpy(&want_crc, buf.data() + kSnapshotCrcOffset, 4);
  const char* payload_bytes = buf.data() + kSnapshotHeaderSize;
  if (SnapshotCrc32(payload_bytes, payload_len) != want_crc) {
    return path + ": checksum mismatch (corrupt payload)";
  }

  // Parse into a local Snapshot; *out is only touched on full success.
  Snapshot snap;
  Reader payload(payload_bytes, payload_len);

  uint64_t num_sets = 0;
  uint32_t num_shards = 0;
  {  // META
    Reader body(nullptr, 0);
    if (!EnterSection(&payload, kSecMeta, &body)) {
      return path + ": malformed META section";
    }
    const uint32_t tokenizer = body.ReadU32();
    const uint32_t q = body.ReadU32();
    num_sets = body.ReadU64();
    num_shards = body.ReadU32();
    if (!body.ok() || body.remaining() != 0 || tokenizer > 1 ||
        q > (1u << 20) || num_shards == 0) {
      return path + ": malformed META section";
    }
    snap.tokenizer = static_cast<TokenizerKind>(tokenizer);
    snap.q = static_cast<int>(q);
  }

  {  // DICT
    Reader body(nullptr, 0);
    if (!EnterSection(&payload, kSecDict, &body)) {
      return path + ": malformed DICT section";
    }
    const uint64_t count = body.ReadU64();
    snap.data.dict = std::make_shared<TokenDictionary>();
    for (uint64_t t = 0; t < count; ++t) {
      const uint32_t len = body.ReadU32();
      const std::string tok = body.ReadString(len);
      if (!body.ok()) return path + ": truncated DICT section";
      if (snap.data.dict->Intern(tok) != t) {
        return path + ": duplicate token in DICT section";
      }
    }
    if (body.remaining() != 0) return path + ": oversized DICT section";
  }

  {  // COLL
    Reader body(nullptr, 0);
    if (!EnterSection(&payload, kSecColl, &body)) {
      return path + ": malformed COLL section";
    }
    // Sets are appended as they parse (each costs at least 4 bytes of
    // body), so a lying num_sets exhausts the section instead of
    // pre-allocating.
    for (uint64_t s = 0; s < num_sets; ++s) {
      SetRecord set;
      const uint32_t num_elems = body.ReadU32();
      if (!body.ok()) return path + ": truncated COLL section";
      for (uint32_t e = 0; e < num_elems; ++e) {
        Element elem;
        elem.text = body.ReadString(body.ReadU32());
        if (!body.ReadArray(body.ReadU32(), &elem.tokens) ||
            !body.ReadArray(body.ReadU32(), &elem.chunks)) {
          return path + ": truncated COLL section";
        }
        set.elements.push_back(std::move(elem));
      }
      snap.data.sets.push_back(std::move(set));
    }
    if (body.remaining() != 0) return path + ": oversized COLL section";
  }

  for (uint32_t s = 0; s < num_shards; ++s) {  // SHRD × num_shards
    Reader body(nullptr, 0);
    if (!EnterSection(&payload, kSecShrd, &body)) {
      return path + ": malformed SHRD section " + std::to_string(s);
    }
    Snapshot::Shard shard;
    const uint32_t shard_id = body.ReadU32();
    shard.range.begin = body.ReadU32();
    shard.range.end = body.ReadU32();
    std::vector<size_t> offsets;
    std::vector<Posting> postings;
    const bool arrays_ok = body.ReadArray(body.ReadU64(), &offsets) &&
                           body.ReadArray(body.ReadU64(), &postings);
    if (!arrays_ok || body.remaining() != 0 || shard_id != s ||
        shard.range.begin > shard.range.end || shard.range.end > num_sets) {
      return path + ": malformed SHRD section " + std::to_string(s);
    }
    if (!shard.index.AdoptCsr(std::move(offsets), std::move(postings))) {
      return path + ": invalid CSR arrays in SHRD section " +
             std::to_string(s);
    }
    // Value gate, after adoption has vetted the offsets shape: query code
    // indexes sets and scratch arrays by posting set/elem ids without
    // further checks, and ListInSet binary-searches each list's (set, elem)
    // order — so even a checksum-valid file must not smuggle out-of-range,
    // unsorted, or duplicate postings past load (one linear scan of the
    // bulk-loaded lists; the postings themselves are never re-parsed).
    for (TokenId t = 0; t < shard.index.NumTokens(); ++t) {
      const std::span<const Posting> list = shard.index.List(t);
      for (size_t i = 0; i < list.size(); ++i) {
        if (!shard.range.Contains(list[i].set_id) ||
            list[i].elem_id >=
                snap.data.sets[list[i].set_id].elements.size()) {
          return path + ": posting out of range in SHRD section " +
                 std::to_string(s);
        }
        if (i > 0 && !(list[i - 1] < list[i])) {
          return path + ": unsorted or duplicate postings in SHRD section " +
                 std::to_string(s);
        }
      }
    }
    snap.shards.push_back(std::move(shard));
  }
  if (payload.remaining() != 0) {
    return path + ": trailing bytes after last section";
  }

  *out = std::move(snap);
  return "";
}

}  // namespace silkmoth
