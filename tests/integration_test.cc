// The exactness contract: SilkMoth returns byte-identical results to the
// brute-force oracle for EVERY configuration (metric x φ x δ x α x scheme x
// filters x reduction). This is the paper's central guarantee ("exactly the
// same related set pairings as the brute-force method") and the test that
// protects every filter and signature optimization in the repository.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/brute_force.h"
#include "core/engine.h"
#include "datagen/builders.h"
#include "datagen/dblp.h"
#include "datagen/webtable.h"

namespace silkmoth {
namespace {

struct Config {
  Relatedness metric;
  SimilarityKind phi;
  double delta;
  double alpha;
  SignatureSchemeKind scheme;
  bool check_filter;
  bool nn_filter;
  bool reduction;

  std::string Name() const {
    std::string n = metric == Relatedness::kSimilarity ? "Sim" : "Contain";
    n += "_";
    n += SimilarityKindName(phi);
    n += "_d" + std::to_string(static_cast<int>(delta * 100));
    n += "_a" + std::to_string(static_cast<int>(alpha * 100));
    n += "_";
    n += SignatureSchemeName(scheme);
    if (!check_filter) n += "_nocheck";
    if (!nn_filter) n += "_nonn";
    if (reduction) n += "_red";
    return n;
  }
};

std::ostream& operator<<(std::ostream& os, const Config& c) {
  return os << c.Name();
}

Options ToOptions(const Config& c) {
  Options o;
  o.metric = c.metric;
  o.phi = c.phi;
  o.delta = c.delta;
  o.alpha = c.alpha;
  o.scheme = c.scheme;
  o.check_filter = c.check_filter;
  o.nn_filter = c.nn_filter;
  o.reduction = c.reduction;
  return o;
}

Collection WordData(size_t n, uint64_t seed) {
  WebTableParams p = SchemaMatchingDefaults(n, seed);
  p.min_elements = 1;
  p.max_elements = 5;
  p.min_tokens = 2;
  p.max_tokens = 6;
  p.num_domains = 6;
  p.domain_values = 40;
  p.variant_rate = 0.4;
  return BuildCollection(GenerateSchemaSets(p), TokenizerKind::kWord);
}

Collection EditData(size_t n, uint64_t seed, int q) {
  DblpParams p;
  p.num_titles = n;
  p.vocabulary = 60;
  p.min_words = 1;
  p.max_words = 4;
  p.duplicate_rate = 0.4;
  p.typo_rate = 0.3;
  p.seed = seed;
  return BuildCollection(GenerateDblpSets(p), TokenizerKind::kQGram, q);
}

class JaccardSweep : public ::testing::TestWithParam<Config> {};

TEST_P(JaccardSweep, EngineEqualsBruteForce) {
  const Options o = ToOptions(GetParam());
  ASSERT_EQ(o.Validate(), "");
  for (uint64_t seed : {11u, 22u}) {
    Collection data = WordData(45, seed);
    SilkMoth engine(&data, o);
    BruteForce oracle(&data, o);
    ASSERT_TRUE(engine.ok()) << engine.error();
    EXPECT_EQ(engine.DiscoverSelf(), oracle.DiscoverSelf())
        << "seed " << seed;
  }
}

std::vector<Config> JaccardConfigs() {
  std::vector<Config> configs;
  for (auto metric : {Relatedness::kSimilarity, Relatedness::kContainment}) {
    for (double delta : {0.5, 0.7, 0.85}) {
      for (double alpha : {0.0, 0.5}) {
        for (auto scheme : {SignatureSchemeKind::kWeighted,
                            SignatureSchemeKind::kCombUnweighted,
                            SignatureSchemeKind::kSkyline,
                            SignatureSchemeKind::kDichotomy}) {
          configs.push_back(Config{metric, SimilarityKind::kJaccard, delta,
                                   alpha, scheme, true, true, true});
        }
      }
    }
  }
  // Filter ablations (dichotomy only, to bound runtime).
  for (bool check : {false, true}) {
    for (bool nn : {false, true}) {
      configs.push_back(Config{Relatedness::kSimilarity,
                               SimilarityKind::kJaccard, 0.7, 0.0,
                               SignatureSchemeKind::kDichotomy, check, nn,
                               false});
    }
  }
  return configs;
}

INSTANTIATE_TEST_SUITE_P(Configs, JaccardSweep,
                         ::testing::ValuesIn(JaccardConfigs()),
                         [](const auto& info) { return info.param.Name(); });

class EditSweep : public ::testing::TestWithParam<Config> {};

TEST_P(EditSweep, EngineEqualsBruteForce) {
  Options o = ToOptions(GetParam());
  ASSERT_EQ(o.Validate(), "");
  Collection data = EditData(35, 77, o.EffectiveQ());
  SilkMoth engine(&data, o);
  BruteForce oracle(&data, o);
  ASSERT_TRUE(engine.ok()) << engine.error();
  EXPECT_EQ(engine.DiscoverSelf(), oracle.DiscoverSelf());
}

std::vector<Config> EditConfigs() {
  std::vector<Config> configs;
  for (auto phi : {SimilarityKind::kEds, SimilarityKind::kNeds}) {
    for (double delta : {0.5, 0.7}) {
      for (double alpha : {0.0, 0.6, 0.8}) {
        for (auto scheme : {SignatureSchemeKind::kWeighted,
                            SignatureSchemeKind::kCombUnweighted,
                            SignatureSchemeKind::kSkyline,
                            SignatureSchemeKind::kDichotomy}) {
          configs.push_back(Config{Relatedness::kSimilarity, phi, delta,
                                   alpha, scheme, true, true, true});
        }
      }
    }
  }
  configs.push_back(Config{Relatedness::kContainment, SimilarityKind::kEds,
                           0.7, 0.0, SignatureSchemeKind::kDichotomy, true,
                           true, true});
  configs.push_back(Config{Relatedness::kContainment, SimilarityKind::kEds,
                           0.7, 0.8, SignatureSchemeKind::kDichotomy, true,
                           true, false});
  return configs;
}

INSTANTIATE_TEST_SUITE_P(Configs, EditSweep,
                         ::testing::ValuesIn(EditConfigs()),
                         [](const auto& info) { return info.param.Name(); });

// Search mode: random references from inside and outside the collection.
TEST(IntegrationSearchTest, SearchAgreesWithBruteForce) {
  Collection data = WordData(60, 33);
  Options o;
  o.metric = Relatedness::kContainment;
  o.delta = 0.6;
  SilkMoth engine(&data, o);
  BruteForce oracle(&data, o);
  for (size_t r = 0; r < data.sets.size(); r += 7) {
    EXPECT_EQ(engine.Search(data.sets[r]), oracle.Search(data.sets[r]))
        << "ref " << r;
  }
  // A reference that is not in the collection (fresh tokens included).
  SetRecord outside = BuildReference(
      {"qa qb qc", "qd qe", "totally fresh tokens"},
      TokenizerKind::kWord, 0, &data);
  EXPECT_EQ(engine.Search(outside), oracle.Search(outside));
}

TEST(IntegrationSearchTest, EdsSearchAgreesWithBruteForce) {
  Options o;
  o.metric = Relatedness::kSimilarity;
  o.phi = SimilarityKind::kEds;
  o.delta = 0.6;
  o.alpha = 0.75;
  Collection data = EditData(40, 55, o.EffectiveQ());
  SilkMoth engine(&data, o);
  BruteForce oracle(&data, o);
  for (size_t r = 0; r < data.sets.size(); r += 5) {
    EXPECT_EQ(engine.Search(data.sets[r]), oracle.Search(data.sets[r]))
        << "ref " << r;
  }
}

}  // namespace
}  // namespace silkmoth
