#ifndef SILKMOTH_BENCH_BENCH_JSON_H_
#define SILKMOTH_BENCH_BENCH_JSON_H_

#include <string>

#include "bench/runner.h"

namespace silkmoth::bench {

/// Schema version stamped into every BENCH_*.json as
/// "bench_schema_version". Bump ONLY when a field is removed, renamed, or
/// changes type/meaning — adding fields is backward compatible and does not
/// bump. tests/bench_schema_check.py validates against this contract.
inline constexpr int kBenchSchemaVersion = 1;

/// Renders `result` as the versioned BENCH_<name>.json document.
///
/// Layout contract (docs/CLI.md, "Bench report schema"):
///   - `bench_schema_version`, `workload` (the resolved spec), `corpus`,
///     `requests`, `results`, and `funnel` are **deterministic**: byte-equal
///     across same-spec runs on any machine at any worker count.
///   - Every run-varying value — wall clocks, throughput, the latency
///     histogram, completed-request counts, phase timers, peak RSS — lives
///     under the single top-level `timing` key. Strip that one key and two
///     same-spec runs diff clean (pinned by tests/bench_json_test.sh).
///
/// The output is pretty-printed (2-space indent), ends with a newline, and
/// is stable field-for-field: emission order never changes within a schema
/// version, so the files diff cleanly in review.
std::string BenchResultToJson(const BenchResult& result);

}  // namespace silkmoth::bench

#endif  // SILKMOTH_BENCH_BENCH_JSON_H_
