#include "index/inverted_index.h"

#include <gtest/gtest.h>

#include "datagen/builders.h"
#include "paper_example.h"

namespace silkmoth {
namespace {

using test::MakePaperExample;
using test::T;

TEST(InvertedIndexTest, PaperExampleListSizes) {
  // Example 7: costs for t1..t12 are 9, 8, 7, 6, 6, 6, 5, 3, 3, 1, 1, 1.
  auto ex = MakePaperExample();
  InvertedIndex index;
  index.Build(ex.data);
  const size_t expected[] = {9, 8, 7, 6, 6, 6, 5, 3, 3, 1, 1, 1};
  for (int t = 1; t <= 12; ++t) {
    EXPECT_EQ(index.ListSize(T(t)), expected[t - 1]) << "t" << t;
  }
}

TEST(InvertedIndexTest, PaperExamplePostings) {
  // t8 = "MA" appears in s21, s31, s41 (Figure 2's narration).
  auto ex = MakePaperExample();
  InvertedIndex index;
  index.Build(ex.data);
  auto list = index.List(T(8));
  ASSERT_EQ(list.size(), 3u);
  // Sets are S1..S4 = ids 0..3; t8 is in s21, s31, s41 -- the first element
  // (elem id 0) of sets 1, 2, 3.
  EXPECT_EQ(list[0].set_id, 1u);
  EXPECT_EQ(list[1].set_id, 2u);
  EXPECT_EQ(list[2].set_id, 3u);
  for (const Posting& p : list) EXPECT_EQ(p.elem_id, 0u);
}

TEST(InvertedIndexTest, ListsAreSortedUnique) {
  auto ex = MakePaperExample();
  InvertedIndex index;
  index.Build(ex.data);
  for (TokenId t = 0; t < index.NumTokens(); ++t) {
    auto list = index.List(t);
    for (size_t i = 1; i < list.size(); ++i) {
      EXPECT_LT(list[i - 1], list[i]);
    }
  }
}

TEST(InvertedIndexTest, ListInSetRestriction) {
  auto ex = MakePaperExample();
  InvertedIndex index;
  index.Build(ex.data);
  // t1 = "77": 9 postings overall; within S2 (id 1) it is in all 3 elements.
  auto in_s2 = index.ListInSet(T(1), 1);
  ASSERT_EQ(in_s2.size(), 3u);
  for (const Posting& p : in_s2) EXPECT_EQ(p.set_id, 1u);
  // Within S1 (id 0): s12, s13 contain t1.
  auto in_s1 = index.ListInSet(T(1), 0);
  EXPECT_EQ(in_s1.size(), 2u);
}

TEST(InvertedIndexTest, UnknownTokenEmpty) {
  auto ex = MakePaperExample();
  InvertedIndex index;
  index.Build(ex.data);
  EXPECT_TRUE(index.List(9999).empty());
  EXPECT_EQ(index.ListSize(9999), 0u);
  EXPECT_TRUE(index.ListInSet(9999, 0).empty());
}

TEST(InvertedIndexTest, ReferenceOnlyTokensHaveEmptyLists) {
  // R's tokens t11/t12 belong to S3 too, but a token interned after Build
  // (never in S) must resolve to an empty list.
  auto ex = MakePaperExample();
  InvertedIndex index;
  index.Build(ex.data);
  const TokenId fresh = ex.data.dict->Intern("never-in-data");
  EXPECT_TRUE(index.List(fresh).empty());
}

TEST(InvertedIndexTest, TotalPostingsMatchesTokenOccurrences) {
  auto ex = MakePaperExample();
  InvertedIndex index;
  index.Build(ex.data);
  EXPECT_EQ(index.TotalPostings(), ex.data.NumTokenOccurrences());
}

TEST(InvertedIndexTest, RebuildReplacesContents) {
  auto ex = MakePaperExample();
  InvertedIndex index;
  index.Build(ex.data);
  const size_t before = index.TotalPostings();
  Collection empty;
  empty.dict = ex.data.dict;
  index.Build(empty);
  EXPECT_EQ(index.TotalPostings(), 0u);
  index.Build(ex.data);
  EXPECT_EQ(index.TotalPostings(), before);
}

TEST(InvertedIndexTest, EmptyCollection) {
  Collection empty;
  InvertedIndex index;
  index.Build(empty);
  EXPECT_EQ(index.NumTokens(), 0u);
  EXPECT_TRUE(index.List(0).empty());
}

TEST(InvertedIndexTest, QGramCollection) {
  RawSets raw = {{"abcd", "bcde"}, {"abcd"}};
  Collection data = BuildCollection(raw, TokenizerKind::kQGram, 2);
  InvertedIndex index;
  index.Build(data);
  const TokenId bc = data.dict->Lookup("bc");
  ASSERT_NE(bc, kInvalidToken);
  // "bc" occurs in set0/elem0, set0/elem1, set1/elem0.
  EXPECT_EQ(index.ListSize(bc), 3u);
}

}  // namespace
}  // namespace silkmoth
