#ifndef SILKMOTH_SNAPSHOT_DELTA_SHARD_H_
#define SILKMOTH_SNAPSHOT_DELTA_SHARD_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/sharded_engine.h"
#include "datagen/builders.h"
#include "index/inverted_index.h"
#include "text/dataset.h"
#include "text/tokenizer.h"

namespace silkmoth {

/// In-memory, append-only delta over a write-once base corpus — the
/// KVell-style in-memory-index-over-persistent-base split applied to
/// SilkMoth. The base stays exactly as loaded (typically a mmapped
/// snapshot); new sets accumulate here, owned outright, and discovery
/// streams both through the one `DiscoverAcrossShards` driver as just
/// another shard.
///
/// Three disciplines make base + delta indistinguishable from a rebuilt
/// corpus:
///
///  - **Global set ids.** Delta sets continue the base's id space: the
///    first ingested set is id base_sets(), and View() reports the range
///    [base_sets(), base_sets() + delta_sets()). The delta's CSR index is
///    built with `InvertedIndex::Build(collection, begin, end)`, which
///    keeps global ids — so to the discovery driver the delta is a shard
///    like any other, merely one that grows between queries.
///
///  - **Shared dictionary, OOV appended post-index.** New sets intern
///    through the *base's* TokenDictionary. Tokens the base never saw get
///    fresh ids past every base index's range — they probe empty inverted
///    lists there, exactly the established external-query OOV discipline —
///    while the delta's own index, rebuilt after each batch, covers them.
///    Interning mutates the shared dictionary, so ingest sits under the
///    same single-writer rule as BuildQueryBlock (the serve daemon runs it
///    under its tokenize mutex).
///
///  - **Owned storage.** Delta element bytes live in a delta-owned
///    ElementArena (chunked, never reallocating in place — views stay
///    valid across appends), and every delta SetRecord holds a share of
///    it. Base set views keep aliasing base storage, so the base
///    Collection/Snapshot must outlive the delta.
///
/// The governing contract (pinned by tests/delta_parity_property_test.cc):
/// discovery over base shards + View() is byte-identical to discovery over
/// the snapshot a `CompactSnapshot` of the same state produces — every
/// metric, exact and approx scores alike.
///
/// The class is not thread-safe for mutation. For the serve daemon's
/// read-mostly pattern, WithIngested() produces a grown *copy* while every
/// view handed out by the original stays valid (shared arena + shared
/// dictionary only ever append), so in-flight requests finish against
/// their generation untouched.
class DeltaShard {
 public:
  /// Starts an empty delta over `base`, which must outlive this shard (and
  /// every clone made from it). `tokenizer`/`q` must match how the base
  /// was tokenized — the snapshot records them.
  DeltaShard(const Collection* base, TokenizerKind tokenizer, int q);

  DeltaShard(const DeltaShard&) = delete;
  DeltaShard& operator=(const DeltaShard&) = delete;

  /// Appends one batch of raw sets: tokenizes against the shared
  /// dictionary (interning OOV tokens), assigns the next global set ids,
  /// and rebuilds the delta index over all delta sets. Empty batches are
  /// no-ops. Returns "" on success, else a one-line error.
  std::string Ingest(const RawSets& raw);

  /// Copy-and-ingest: returns a new DeltaShard equal to this one plus
  /// `raw`, leaving this one untouched (its index, views, and counters are
  /// all still valid — the serve hot-path contract). The clone shares the
  /// arena and dictionary, both append-only, so old views never dangle.
  /// Callers must serialize all ingests (single-writer rule). On failure
  /// returns nullptr and sets *err.
  std::shared_ptr<DeltaShard> WithIngested(const RawSets& raw,
                                           std::string* err) const;

  /// The combined collection — base sets first, delta sets after, one
  /// shared dictionary. This is the `data` argument for
  /// DiscoverAcrossShards over base + delta.
  const Collection& combined() const { return combined_; }

  /// The delta as a shard: range [base_sets(), base_sets()+delta_sets())
  /// and the index over it. Empty-range views are skipped by the driver,
  /// so a fresh delta costs nothing. The view borrows this shard.
  ShardView View() const;

  /// Number of base sets (the delta's first global set id).
  size_t base_sets() const { return base_sets_; }
  /// Number of sets ingested so far.
  size_t delta_sets() const { return combined_.sets.size() - base_sets_; }
  /// Distinct tokens interned by ingest that the dictionary lacked.
  size_t oov_tokens() const { return oov_tokens_; }
  /// Number of non-empty batches ingested.
  size_t batches() const { return batches_; }

 private:
  /// Clone for WithIngested: shares arena + dictionary, copies set views
  /// and counters, leaves the index empty (the caller rebuilds).
  DeltaShard(const DeltaShard& other, int);

  Collection combined_;  ///< Base set views + owned delta sets, shared dict.
  std::shared_ptr<ElementArena> arena_;  ///< Owns delta element bytes.
  Tokenizer tokenizer_;
  size_t base_sets_ = 0;
  size_t oov_tokens_ = 0;
  size_t batches_ = 0;
  InvertedIndex index_;  ///< CSR over delta sets, global ids.
};

}  // namespace silkmoth

#endif  // SILKMOTH_SNAPSHOT_DELTA_SHARD_H_
