#include "datagen/webtable.h"

#include <algorithm>
#include <string>

#include "util/rng.h"
#include "util/zipf.h"

namespace silkmoth {
namespace {

// Deterministic value string for (domain, rank): short alphabetic word with
// a domain prefix so domains rarely collide.
std::string MakeValue(size_t domain, size_t rank) {
  static const char* kAlpha = "abcdefghijklmnopqrstuvwxyz";
  std::string v;
  v.push_back(kAlpha[domain % 26]);
  size_t x = rank * 26 + domain + 3;
  do {
    v.push_back(kAlpha[x % 26]);
    x /= 26;
  } while (x > 0);
  return v;
}

// Builds one element: `tokens` whitespace-joined values from one domain.
std::string MakeElement(size_t domain, size_t tokens,
                        const ZipfDistribution& zipf, Rng* rng) {
  std::string text;
  for (size_t t = 0; t < tokens; ++t) {
    if (t > 0) text.push_back(' ');
    text += MakeValue(domain, zipf.Sample(rng));
  }
  return text;
}

std::vector<std::string> MakeBaseSet(const WebTableParams& p,
                                     const ZipfDistribution& zipf, Rng* rng) {
  const size_t elements = static_cast<size_t>(
      rng->NextInRange(static_cast<int64_t>(p.min_elements),
                       static_cast<int64_t>(p.max_elements)));
  std::vector<std::string> set;
  set.reserve(elements);
  for (size_t e = 0; e < elements; ++e) {
    const size_t domain = rng->NextBounded(p.num_domains);
    const size_t tokens = static_cast<size_t>(
        rng->NextInRange(static_cast<int64_t>(p.min_tokens),
                         static_cast<int64_t>(p.max_tokens)));
    set.push_back(MakeElement(domain, tokens, zipf, rng));
  }
  return set;
}

// Variant of `base`: keep most elements, occasionally re-sample a token.
std::vector<std::string> MakeVariant(const std::vector<std::string>& base,
                                     const WebTableParams& p,
                                     const ZipfDistribution& zipf, Rng* rng) {
  std::vector<std::string> out;
  for (const std::string& elem : base) {
    if (!rng->NextBool(p.variant_keep)) continue;
    if (rng->NextBool(p.value_edit_rate)) {
      // Replace one whitespace-delimited token with a fresh domain value.
      std::vector<std::string> words;
      size_t pos = 0;
      while (pos < elem.size()) {
        size_t next = elem.find(' ', pos);
        if (next == std::string::npos) next = elem.size();
        words.push_back(elem.substr(pos, next - pos));
        pos = next + 1;
      }
      if (!words.empty()) {
        const size_t idx = rng->NextBounded(words.size());
        words[idx] =
            MakeValue(rng->NextBounded(p.num_domains), zipf.Sample(rng));
        std::string rebuilt;
        for (size_t w = 0; w < words.size(); ++w) {
          if (w > 0) rebuilt.push_back(' ');
          rebuilt += words[w];
        }
        out.push_back(std::move(rebuilt));
        continue;
      }
    }
    out.push_back(elem);
  }
  if (out.empty()) out.push_back(base.front());
  return out;
}

RawSets GenerateSets(const WebTableParams& p, bool plant_containment) {
  Rng rng(p.seed);
  const ZipfDistribution zipf(p.domain_values, p.zipf_skew);
  const size_t num_base = std::max<size_t>(
      1, p.num_sets - static_cast<size_t>(p.variant_rate *
                                          static_cast<double>(p.num_sets)));
  RawSets sets;
  sets.reserve(p.num_sets);
  for (size_t i = 0; i < num_base && sets.size() < p.num_sets; ++i) {
    sets.push_back(MakeBaseSet(p, zipf, &rng));
  }
  while (sets.size() < p.num_sets) {
    const size_t src = static_cast<size_t>(rng.NextBounded(num_base));
    if (plant_containment && rng.NextBool(0.5)) {
      // Superset variant: the source set plus extra elements, giving true
      // containment pairs for the inclusion dependency workload.
      std::vector<std::string> sup = sets[src];
      const size_t extra = 1 + rng.NextBounded(
                                   std::max<size_t>(1, sets[src].size() / 2));
      for (size_t e = 0; e < extra; ++e) {
        const size_t domain = rng.NextBounded(p.num_domains);
        const size_t tokens = static_cast<size_t>(
            rng.NextInRange(static_cast<int64_t>(p.min_tokens),
                            static_cast<int64_t>(p.max_tokens)));
        sup.push_back(MakeElement(domain, tokens, zipf, &rng));
      }
      sets.push_back(std::move(sup));
    } else {
      sets.push_back(MakeVariant(sets[src], p, zipf, &rng));
    }
  }
  return sets;
}

}  // namespace

RawSets GenerateSchemaSets(const WebTableParams& params) {
  return GenerateSets(params, /*plant_containment=*/false);
}

RawSets GenerateColumnSets(const WebTableParams& params) {
  return GenerateSets(params, /*plant_containment=*/true);
}

WebTableParams SchemaMatchingDefaults(size_t num_sets, uint64_t seed) {
  WebTableParams p;
  p.num_sets = num_sets;
  p.seed = seed;
  p.min_elements = 2;
  p.max_elements = 4;    // ~3 elements/set (Table 3).
  p.min_tokens = 8;
  p.max_tokens = 14;     // ~11.3 tokens/element.
  return p;
}

WebTableParams InclusionDependencyDefaults(size_t num_sets, uint64_t seed) {
  WebTableParams p;
  p.num_sets = num_sets;
  p.seed = seed;
  p.min_elements = 14;
  p.max_elements = 30;   // ~22 elements/set (Table 3).
  p.min_tokens = 1;
  p.max_tokens = 3;      // ~2.2 tokens/element.
  return p;
}

}  // namespace silkmoth
