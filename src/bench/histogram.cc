#include "bench/histogram.h"

#include <bit>
#include <cmath>

namespace silkmoth::bench {

namespace {
// 16 exact buckets for values < 16, then 16 sub-buckets per power-of-two
// decade for exponents 4..63: 16 + 60*16 = 976.
constexpr size_t kSubBuckets = 16;
constexpr size_t kNumBuckets = kSubBuckets + (64 - 4) * kSubBuckets;
}  // namespace

LatencyHistogram::LatencyHistogram() : buckets_(kNumBuckets, 0) {}

size_t LatencyHistogram::BucketIndex(uint64_t value) {
  if (value < kSubBuckets) return static_cast<size_t>(value);
  const int exp = 63 - std::countl_zero(value);
  const uint64_t sub = (value >> (exp - 4)) & (kSubBuckets - 1);
  return kSubBuckets * static_cast<size_t>(exp - 3) +
         static_cast<size_t>(sub);
}

uint64_t LatencyHistogram::IndexLowerBound(size_t index) {
  if (index < kSubBuckets) return index;
  const size_t decade = index / kSubBuckets;  // exp - 3
  const uint64_t sub = index % kSubBuckets;
  return (kSubBuckets + sub) << (decade - 1);
}

uint64_t LatencyHistogram::BucketLowerBound(uint64_t value) {
  return IndexLowerBound(BucketIndex(value));
}

void LatencyHistogram::Record(uint64_t value) {
  buckets_[BucketIndex(value)]++;
  if (count_ == 0 || value < min_) min_ = value;
  if (value > max_) max_ = value;
  sum_ += value;
  count_++;
}

void LatencyHistogram::RecordSeconds(double seconds) {
  if (seconds <= 0.0) {
    Record(0);
    return;
  }
  const double ns = seconds * 1e9;
  // Saturate instead of overflowing for absurd durations (> ~292 years).
  // std::llround is UB above LLONG_MAX, so the gate must sit at the largest
  // double below 2^63 (2^63 - 1024), not at some larger round number —
  // every ns below it rounds to a value llround can represent.
  constexpr double kMaxNs = 9223372036854774784.0;
  if (ns >= kMaxNs) {
    Record(~uint64_t{0});
    return;
  }
  Record(static_cast<uint64_t>(std::llround(ns)));
}

void LatencyHistogram::Merge(const LatencyHistogram& other) {
  if (other.count_ == 0) return;
  for (size_t i = 0; i < buckets_.size(); ++i) buckets_[i] += other.buckets_[i];
  if (count_ == 0 || other.min_ < min_) min_ = other.min_;
  if (other.max_ > max_) max_ = other.max_;
  sum_ += other.sum_;
  count_ += other.count_;
}

double LatencyHistogram::Mean() const {
  if (count_ == 0) return 0.0;
  return static_cast<double>(sum_) / static_cast<double>(count_);
}

uint64_t LatencyHistogram::Percentile(double p) const {
  if (count_ == 0) return 0;
  if (p <= 0.0) return Min();
  // The top sample is tracked exactly, so p100 reports it instead of its
  // bucket's lower bound — mirroring p <= 0 returning Min().
  if (p >= 100.0) return Max();
  // Rank of the target sample, 1-based in ascending order.
  const double exact = p / 100.0 * static_cast<double>(count_);
  uint64_t rank = static_cast<uint64_t>(std::ceil(exact));
  if (rank < 1) rank = 1;
  if (rank > count_) rank = count_;
  uint64_t seen = 0;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    seen += buckets_[i];
    if (seen >= rank) return IndexLowerBound(i);
  }
  return Max();  // Unreachable: counts sum to count_.
}

uint64_t LatencyHistogram::CountAt(uint64_t value) const {
  return buckets_[BucketIndex(value)];
}

}  // namespace silkmoth::bench
