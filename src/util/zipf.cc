#include "util/zipf.h"

#include <algorithm>
#include <cmath>

namespace silkmoth {

namespace {
constexpr uint64_t kOne32 = uint64_t{1} << 32;  // Fixed-point 1.0.
}  // namespace

ZipfDistribution::ZipfDistribution(size_t n, double skew) : skew_(skew) {
  const size_t ranks = n == 0 ? 1 : n;
  // One-time weight pass in floating point; everything after construction is
  // integer. Quantizing the *cumulative* values (not the per-rank weights)
  // keeps the CDF monotone by construction: round() of a nondecreasing
  // sequence is nondecreasing.
  std::vector<double> cum(ranks);
  double acc = 0.0;
  for (size_t k = 0; k < ranks; ++k) {
    acc += 1.0 / std::pow(static_cast<double>(k + 1), skew_);
    cum[k] = acc;
  }
  const double total = cum.back();
  cdf32_.resize(ranks);
  for (size_t k = 0; k < ranks; ++k) {
    cdf32_[k] = static_cast<uint64_t>(std::llround(cum[k] / total *
                                                   static_cast<double>(kOne32)));
  }
  cdf32_.back() = kOne32;  // Exact 1.0, no rounding drift.
}

size_t ZipfDistribution::Sample(Rng* rng) const {
  // 32-bit uniform draw (top bits of the 64-bit state, per xoshiro advice).
  const uint64_t u = rng->Next() >> 32;
  // Rank k is selected iff cdf32_[k-1] <= u < cdf32_[k].
  auto it = std::upper_bound(cdf32_.begin(), cdf32_.end(), u);
  if (it == cdf32_.end()) --it;  // Unreachable (back() == 2^32 > u); safety.
  return static_cast<size_t>(it - cdf32_.begin());
}

double ZipfDistribution::Pmf(size_t k) const {
  if (k >= cdf32_.size()) return 0.0;
  const uint64_t prev = k == 0 ? 0 : cdf32_[k - 1];
  return static_cast<double>(cdf32_[k] - prev) /
         static_cast<double>(kOne32);
}

}  // namespace silkmoth
