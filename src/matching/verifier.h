#ifndef SILKMOTH_MATCHING_VERIFIER_H_
#define SILKMOTH_MATCHING_VERIFIER_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "text/dataset.h"
#include "text/similarity.h"

namespace silkmoth {

/// Counters describing one maximum-matching evaluation.
struct MatchingStats {
  size_t matrix_rows = 0;       ///< Rows fed to the Hungarian solver.
  size_t matrix_cols = 0;       ///< Columns fed to the Hungarian solver.
  size_t reduced_pairs = 0;     ///< Identical pairs removed by reduction.
  size_t similarity_calls = 0;  ///< φ evaluations performed.
};

/// One aligned element pair in a maximum matching, for explainability.
struct AlignedPair {
  uint32_t r_elem = 0;  ///< Element index in R.
  uint32_t s_elem = 0;  ///< Element index in S.
  double score = 0.0;   ///< φ_α of the pair (> 0; zero pairs are omitted).

  friend bool operator==(const AlignedPair&, const AlignedPair&) = default;
};

/// Computes the maximum matching score |R ∩̃φα S| (Section 2.1).
///
/// When `use_reduction` is true, `alpha` is 0, and 1-φ is a metric (Jaccard
/// distance, Eds dual), identical elements of R and S are paired greedily
/// before the O(n^3) matching runs on the reduced sets (Section 5.3). The
/// result is exactly the same score; reduction is a pure optimization, and it
/// is silently skipped whenever its preconditions do not hold.
class MaxMatchingVerifier {
 public:
  MaxMatchingVerifier(const ElementSimilarity* sim, double alpha,
                      bool use_reduction);

  /// Maximum matching score between r and s. `stats` is optional.
  double Score(const SetRecord& r, const SetRecord& s,
               MatchingStats* stats = nullptr) const;

  /// As Score, but also reports the alignment achieving it (pairs with
  /// positive φ_α only, sorted by r_elem). Used for explaining why two sets
  /// are related; always computed without the reduction so element indices
  /// refer to the original sets.
  double ScoreWithAlignment(const SetRecord& r, const SetRecord& s,
                            std::vector<AlignedPair>* alignment) const;

  /// True when the reduction optimization will actually run.
  bool ReductionActive() const { return reduction_active_; }

 private:
  double ScoreDense(const std::vector<const Element*>& r_elems,
                    const std::vector<const Element*>& s_elems,
                    MatchingStats* stats) const;

  const ElementSimilarity* sim_;
  double alpha_;
  bool reduction_active_;
};

}  // namespace silkmoth

#endif  // SILKMOTH_MATCHING_VERIFIER_H_
