// Differential properties of the dynamic-corpus subsystem (delta shard +
// compaction), on randomized corpora split into (base, ingest batches) ×
// {similarity, containment, edit} × shard counts × {exact, approx} scores:
//
//  1. Discovery over (base shards + delta view) is byte-identical — ids and
//     bitwise scores — to discovery over the snapshot CompactSnapshot
//     produces from the same state, loaded back through the mmap path. This
//     is the governing contract of docs/ARCHITECTURE.md, "Dynamic corpora".
//  2. The delta shard behaves exactly like a real shard of the same range:
//     against a control built with BuildShardIndexes over the combined
//     collection using (base ranges + delta range), every per-shard funnel
//     counter matches slot for slot.
//  3. OOV accounting: the delta's oov_tokens() is exactly the dictionary
//     growth past the base, and the compacted snapshot's dictionary is the
//     live combined dictionary token for token (base-then-delta interning
//     order equals a from-scratch build's first-seen order).
//  4. Query mode sees base + delta transparently: an external query block
//     discovers the same pairs over (base + delta) as over the compacted
//     snapshot, with identical query_sets/oov_tokens stamps.
//  5. WithIngested (the serve daemon's copy-on-ingest path) produces the
//     same state as in-place Ingest, and leaves the original untouched.

#include <cstdio>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/reference_block.h"
#include "core/sharded_engine.h"
#include "datagen/builders.h"
#include "datagen/dblp.h"
#include "snapshot/compactor.h"
#include "snapshot/delta_shard.h"
#include "snapshot/snapshot.h"
#include "text/similarity.h"

namespace silkmoth {
namespace {

struct WorkloadConfig {
  const char* name;
  Relatedness metric;
  SimilarityKind phi;
  double delta;
  double alpha;
};

const WorkloadConfig kWorkloads[] = {
    {"similarity-jaccard", Relatedness::kSimilarity, SimilarityKind::kJaccard,
     0.6, 0.0},
    {"containment-jaccard", Relatedness::kContainment,
     SimilarityKind::kJaccard, 0.7, 0.0},
    {"similarity-eds", Relatedness::kSimilarity, SimilarityKind::kEds, 0.5,
     0.6},
};

Options MakeOptions(const WorkloadConfig& cfg, int num_shards,
                    bool exact_scores) {
  Options opt;
  opt.metric = cfg.metric;
  opt.phi = cfg.phi;
  opt.delta = cfg.delta;
  opt.alpha = cfg.alpha;
  opt.num_shards = num_shards;
  opt.num_threads = 2;
  opt.exact_scores = exact_scores;
  if (IsEditSimilarity(cfg.phi)) opt.q = MaxQForAlpha(cfg.alpha);
  return opt;
}

RawSets MakeRaw(size_t sets, uint64_t seed) {
  DblpParams p;
  p.num_titles = sets;
  p.vocabulary = 60;
  p.min_words = 2;
  p.max_words = 6;
  p.duplicate_rate = 0.35;
  p.typo_rate = 0.3;
  p.seed = seed;
  return GenerateDblpSets(p);
}

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/silkmoth_delta_parity_" + name;
}

void ExpectSameCounters(const SearchStats& a, const SearchStats& b,
                        const std::string& what) {
  EXPECT_EQ(a.references, b.references) << what;
  EXPECT_EQ(a.fallback_scans, b.fallback_scans) << what;
  EXPECT_EQ(a.signature_tokens, b.signature_tokens) << what;
  EXPECT_EQ(a.initial_candidates, b.initial_candidates) << what;
  EXPECT_EQ(a.after_size, b.after_size) << what;
  EXPECT_EQ(a.after_check, b.after_check) << what;
  EXPECT_EQ(a.after_nn, b.after_nn) << what;
  EXPECT_EQ(a.verifications, b.verifications) << what;
  EXPECT_EQ(a.results, b.results) << what;
  EXPECT_EQ(a.similarity_calls, b.similarity_calls) << what;
  EXPECT_EQ(a.reduced_pairs, b.reduced_pairs) << what;
  EXPECT_EQ(a.bound_accepts, b.bound_accepts) << what;
  EXPECT_EQ(a.bound_rejects, b.bound_rejects) << what;
  EXPECT_EQ(a.exact_solves, b.exact_solves) << what;
  EXPECT_EQ(a.bound_only_scores, b.bound_only_scores) << what;
  EXPECT_EQ(a.query_sets, b.query_sets) << what;
  EXPECT_EQ(a.oov_tokens, b.oov_tokens) << what;
}

// One live (base + delta) state, assembled the way every consumer does it:
// a built base snapshot, a DeltaShard over its collection fed in batches.
struct LiveState {
  Snapshot base;
  std::unique_ptr<DeltaShard> delta;
  std::vector<ShardView> views;  // Base shards + delta view.
  TokenizerKind tk = TokenizerKind::kWord;
  int q = 0;
  size_t base_dict_size = 0;  // Dictionary size before any ingest.
};

LiveState MakeLive(const WorkloadConfig& cfg, const Options& opt,
                   const RawSets& base_raw,
                   const std::vector<RawSets>& batches, int shards) {
  LiveState st;
  st.tk = IsEditSimilarity(cfg.phi) ? TokenizerKind::kQGram
                                    : TokenizerKind::kWord;
  st.q = st.tk == TokenizerKind::kQGram ? opt.EffectiveQ() : 0;
  Collection base_data = BuildCollection(base_raw, st.tk, st.q);
  st.base = BuildSnapshot(base_data, st.tk, st.q,
                          static_cast<uint32_t>(shards), opt.num_threads);
  st.base_dict_size = st.base.data.dict->size();
  st.delta =
      std::make_unique<DeltaShard>(&st.base.data, st.base.tokenizer, st.q);
  for (const RawSets& batch : batches) {
    EXPECT_EQ(st.delta->Ingest(batch), "");
  }
  for (size_t s = 0; s < st.base.num_shards(); ++s) {
    st.views.push_back(
        ShardView{st.base.shards[s].range, &st.base.shards[s].index});
  }
  if (st.delta->delta_sets() > 0) st.views.push_back(st.delta->View());
  return st;
}

// The full differential sweep behind properties 1-3.
TEST(DeltaParity, LiveEqualsCompactedAcrossTheSweep) {
  const size_t kSets = 36;
  const size_t kBaseSets = 24;
  const int kShardCounts[] = {1, 2, 5};
  for (const WorkloadConfig& cfg : kWorkloads) {
    for (uint64_t seed : {7u, 2026u}) {
      const RawSets all = MakeRaw(kSets, seed);
      const RawSets base_raw(all.begin(), all.begin() + kBaseSets);
      // Two uneven batches so multi-batch ingest (index rebuilt each time)
      // is what the sweep actually exercises.
      const std::vector<RawSets> batches = {
          RawSets(all.begin() + kBaseSets, all.begin() + kBaseSets + 5),
          RawSets(all.begin() + kBaseSets + 5, all.end())};
      for (int shards : kShardCounts) {
        for (bool exact : {true, false}) {
          SCOPED_TRACE(std::string(cfg.name) + " seed=" +
                       std::to_string(seed) + " shards=" +
                       std::to_string(shards) +
                       (exact ? " exact" : " approx"));
          const Options opt = MakeOptions(cfg, shards, exact);
          LiveState live = MakeLive(cfg, opt, base_raw, batches, shards);
          const Collection& combined = live.delta->combined();
          ASSERT_EQ(combined.sets.size(), kSets);

          // Property 3 (OOV accounting): dict growth is exactly what the
          // delta reports, and it only ever appends past the base.
          ASSERT_EQ(combined.dict.get(), live.base.data.dict.get());
          EXPECT_EQ(live.delta->oov_tokens(),
                    combined.dict->size() - live.base_dict_size);

          const ReferenceBlock block = ReferenceBlock::SelfJoin(combined);
          ShardedSearchStats live_stats;
          live_stats.Reset(live.views.size());
          const std::vector<PairMatch> live_pairs = DiscoverAcrossShards(
              block, combined, live.views, opt, &live_stats);

          // Property 2 (the delta is just a shard): a control with real
          // BuildShardIndexes over the combined collection, using the same
          // ranges, must match every funnel counter slot for slot.
          std::vector<SetIdRange> ranges;
          for (const ShardView& v : live.views) ranges.push_back(v.range);
          const std::vector<InvertedIndex> control_indexes =
              BuildShardIndexes(combined, ranges, opt.num_threads);
          std::vector<ShardView> control_views;
          for (size_t s = 0; s < ranges.size(); ++s) {
            control_views.push_back(
                ShardView{ranges[s], &control_indexes[s]});
          }
          ShardedSearchStats control_stats;
          control_stats.Reset(control_views.size());
          const std::vector<PairMatch> control_pairs = DiscoverAcrossShards(
              block, combined, control_views, opt, &control_stats);
          EXPECT_EQ(live_pairs, control_pairs);
          ASSERT_EQ(live_stats.per_shard.size(),
                    control_stats.per_shard.size());
          for (size_t s = 0; s < live_stats.per_shard.size(); ++s) {
            ExpectSameCounters(live_stats.per_shard[s],
                               control_stats.per_shard[s],
                               "shard " + std::to_string(s));
          }

          // Property 1 (the governing contract): compact, reload through
          // the mmap path, rediscover — byte-identical pair stream.
          const std::string path =
              TempPath(std::string(cfg.name) + "_" + std::to_string(seed) +
                       "_" + std::to_string(shards) +
                       (exact ? "_exact" : "_approx") + ".snap");
          CompactResult cres;
          CompactOptions copt;
          copt.num_shards = static_cast<uint32_t>(shards);
          copt.num_threads = opt.num_threads;
          ASSERT_EQ(CompactSnapshot(live.base, *live.delta, path, copt,
                                    &cres),
                    "");
          EXPECT_EQ(cres.generation, 2u);
          EXPECT_EQ(cres.total_sets, kSets);
          EXPECT_EQ(cres.delta_sets, kSets - kBaseSets);
          Snapshot compacted;
          ASSERT_EQ(LoadSnapshot(path, &compacted), "");
          std::remove(path.c_str());
          EXPECT_EQ(compacted.generation, 2u);

          // Property 3 again, on the persisted side: the compacted
          // dictionary is the live combined dictionary token for token.
          ASSERT_NE(compacted.data.dict, nullptr);
          ASSERT_EQ(compacted.data.dict->size(), combined.dict->size());
          for (TokenId t = 0; t < combined.dict->size(); ++t) {
            ASSERT_EQ(compacted.data.dict->Token(t),
                      combined.dict->Token(t));
          }

          std::vector<ShardView> compacted_views;
          for (size_t s = 0; s < compacted.num_shards(); ++s) {
            compacted_views.push_back(ShardView{
                compacted.shards[s].range, &compacted.shards[s].index});
          }
          const ReferenceBlock cblock =
              ReferenceBlock::SelfJoin(compacted.data);
          ShardedSearchStats cstats;
          cstats.Reset(compacted_views.size());
          const std::vector<PairMatch> compacted_pairs =
              DiscoverAcrossShards(cblock, compacted.data, compacted_views,
                                   opt, &cstats);
          EXPECT_EQ(live_pairs, compacted_pairs);
        }
      }
    }
  }
}

// Property 4: an external query block discovers identically over
// (base + delta) and over the compacted snapshot, OOV stamps included.
TEST(DeltaParity, QueryModeSeesBasePlusDelta) {
  const WorkloadConfig cfg = kWorkloads[1];  // containment-jaccard
  const RawSets all = MakeRaw(30, 11u);
  const RawSets base_raw(all.begin(), all.begin() + 20);
  const std::vector<RawSets> batches = {RawSets(all.begin() + 20, all.end())};
  // Queries overlap the corpus and add never-seen text for a nonzero OOV
  // stamp.
  RawSets query_raw(all.begin() + 18, all.begin() + 23);
  query_raw.push_back({"zzz unseen probe tokens", "qqq more unseen"});

  for (int shards : {1, 3}) {
    SCOPED_TRACE("shards=" + std::to_string(shards));
    const Options opt = MakeOptions(cfg, shards, true);
    LiveState live = MakeLive(cfg, opt, base_raw, batches, shards);

    // Compact *before* tokenizing the live query: BuildQueryBlock interns
    // the query's OOV tokens into the shared dictionary, and a compaction
    // taken afterwards would carry them — exactly the ordering the CLI
    // enforces (delta replay, then query tokenization; compaction is a
    // separate process that never sees query interning).
    const std::string path = TempPath("query_" + std::to_string(shards) +
                                      ".snap");
    CompactOptions copt;
    copt.num_shards = static_cast<uint32_t>(shards);
    ASSERT_EQ(CompactSnapshot(live.base, *live.delta, path, copt), "");
    Snapshot compacted;
    ASSERT_EQ(LoadSnapshot(path, &compacted), "");
    std::remove(path.c_str());

    Collection live_query;
    ReferenceBlock live_block =
        BuildQueryBlock(query_raw, live.tk, live.q, live.delta->combined(),
                        &live_query);
    ShardedSearchStats live_stats;
    live_stats.Reset(live.views.size());
    const std::vector<PairMatch> live_pairs =
        DiscoverAcrossShards(live_block, live.delta->combined(), live.views,
                             opt, &live_stats);

    Collection cquery;
    ReferenceBlock cblock = BuildQueryBlock(query_raw, live.tk, live.q,
                                            compacted.data, &cquery);
    EXPECT_EQ(live_block.oov_tokens, cblock.oov_tokens);
    EXPECT_GT(cblock.oov_tokens, 0u);
    EXPECT_EQ(live_block.content_hash, cblock.content_hash);
    std::vector<ShardView> cviews;
    for (size_t s = 0; s < compacted.num_shards(); ++s) {
      cviews.push_back(ShardView{compacted.shards[s].range,
                                 &compacted.shards[s].index});
    }
    ShardedSearchStats cstats;
    cstats.Reset(cviews.size());
    const std::vector<PairMatch> compacted_pairs =
        DiscoverAcrossShards(cblock, compacted.data, cviews, opt, &cstats);
    EXPECT_EQ(live_pairs, compacted_pairs);
    EXPECT_EQ(live_stats.Total().results, cstats.Total().results);
  }
}

// Property 5: WithIngested == Ingest, and the original shard is untouched
// (the serve daemon's epoch contract).
TEST(DeltaParity, WithIngestedMatchesInPlaceIngest) {
  const WorkloadConfig cfg = kWorkloads[0];
  const RawSets all = MakeRaw(24, 3u);
  const RawSets base_raw(all.begin(), all.begin() + 16);
  const RawSets batch1(all.begin() + 16, all.begin() + 20);
  const RawSets batch2(all.begin() + 20, all.end());
  const Options opt = MakeOptions(cfg, 2, true);

  // Two independently built bases: DeltaShards share their base's
  // dictionary, so comparing two deltas' OOV accounting needs each to own
  // a dictionary instance (build determinism makes them token-identical).
  Collection base_data_a = BuildCollection(base_raw, TokenizerKind::kWord);
  Snapshot base = BuildSnapshot(base_data_a, TokenizerKind::kWord, 0, 2, 1);
  Collection base_data_b = BuildCollection(base_raw, TokenizerKind::kWord);
  Snapshot base_b =
      BuildSnapshot(base_data_b, TokenizerKind::kWord, 0, 2, 1);

  DeltaShard inplace(&base.data, base.tokenizer, 0);
  ASSERT_EQ(inplace.Ingest(batch1), "");
  ASSERT_EQ(inplace.Ingest(batch2), "");

  DeltaShard seed(&base_b.data, base_b.tokenizer, 0);
  ASSERT_EQ(seed.Ingest(batch1), "");
  const size_t seed_sets = seed.delta_sets();
  const size_t seed_oov = seed.oov_tokens();
  std::string err;
  std::shared_ptr<DeltaShard> grown = seed.WithIngested(batch2, &err);
  ASSERT_NE(grown, nullptr) << err;

  // Original untouched: same sets, same counters, view still valid.
  EXPECT_EQ(seed.delta_sets(), seed_sets);
  EXPECT_EQ(seed.oov_tokens(), seed_oov);
  EXPECT_EQ(seed.View().range.end - seed.View().range.begin, seed_sets);

  // Grown clone == in-place double ingest, by full discovery output.
  EXPECT_EQ(grown->delta_sets(), inplace.delta_sets());
  EXPECT_EQ(grown->oov_tokens(), inplace.oov_tokens());
  std::vector<ShardView> a_views, b_views;
  for (size_t s = 0; s < base.num_shards(); ++s) {
    a_views.push_back(ShardView{base.shards[s].range,
                                &base.shards[s].index});
    b_views.push_back(ShardView{base_b.shards[s].range,
                                &base_b.shards[s].index});
  }
  a_views.push_back(inplace.View());
  b_views.push_back(grown->View());
  const ReferenceBlock a_block = ReferenceBlock::SelfJoin(inplace.combined());
  const ReferenceBlock b_block = ReferenceBlock::SelfJoin(grown->combined());
  ShardedSearchStats sa, sb;
  sa.Reset(a_views.size());
  sb.Reset(b_views.size());
  EXPECT_EQ(DiscoverAcrossShards(a_block, inplace.combined(), a_views, opt,
                                 &sa),
            DiscoverAcrossShards(b_block, grown->combined(), b_views, opt,
                                 &sb));
}

// Compacting an *empty* delta is legal and yields a re-partitioned
// generation 2 of the same sets.
TEST(DeltaParity, EmptyDeltaCompactsToSameSets) {
  const RawSets base_raw = MakeRaw(12, 5u);
  Collection base_data = BuildCollection(base_raw, TokenizerKind::kWord);
  Snapshot base = BuildSnapshot(base_data, TokenizerKind::kWord, 0, 3, 1);
  DeltaShard delta(&base.data, base.tokenizer, 0);

  const std::string path = TempPath("empty_delta.snap");
  CompactResult cres;
  CompactOptions copt;
  copt.num_shards = 2;
  ASSERT_EQ(CompactSnapshot(base, delta, path, copt, &cres), "");
  EXPECT_EQ(cres.delta_sets, 0u);
  Snapshot next;
  ASSERT_EQ(LoadSnapshot(path, &next), "");
  std::remove(path.c_str());
  EXPECT_EQ(next.generation, 2u);
  EXPECT_EQ(next.num_shards(), 2u);
  ASSERT_EQ(next.data.sets.size(), base.data.sets.size());
  for (size_t i = 0; i < base.data.sets.size(); ++i) {
    ASSERT_EQ(next.data.sets[i].elements, base.data.sets[i].elements);
  }
}

}  // namespace
}  // namespace silkmoth
