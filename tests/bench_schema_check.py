#!/usr/bin/env python3
"""Validates BENCH_*.json files against the documented schema contract.

Schema version 1 (docs/CLI.md, "Bench report schema"): required keys with
required types, `bench_schema_version == 1`, non-negative latencies, and the
percentile ordering p50 <= p95 <= p99 <= max. Run by tests/bench_json_test.sh
and by the CI bench smoke after it regenerates the committed reports.

Usage: bench_schema_check.py BENCH.json [BENCH.json ...]
Exits non-zero with one diagnostic line per violation.
"""

import json
import sys

INT = int
NUM = (int, float)

# key path -> required type(s). Extra keys are allowed (additions don't bump
# the schema version); missing or mistyped keys fail.
REQUIRED = {
    ("bench_schema_version",): INT,
    ("workload", "name"): str,
    ("workload", "scenario"): str,
    ("workload", "corpus"): str,
    ("workload", "corpus_sets"): INT,
    ("workload", "corpus_seed"): INT,
    ("workload", "metric"): str,
    ("workload", "phi"): str,
    ("workload", "delta"): NUM,
    ("workload", "alpha"): NUM,
    ("workload", "q"): INT,
    ("workload", "scheme"): str,
    ("workload", "exact_scores"): bool,
    ("workload", "num_shards"): INT,
    ("workload", "mix"): str,
    ("workload", "zipf_skew"): NUM,
    ("workload", "requests"): INT,
    ("workload", "batch"): INT,
    ("workload", "request_seed"): INT,
    ("workload", "workers"): INT,
    ("workload", "mode"): str,
    ("workload", "sustained_seconds"): NUM,
    ("workload", "top_k"): INT,
    ("workload", "delta_sets"): INT,
    ("corpus", "sets"): INT,
    ("corpus", "elements"): INT,
    ("corpus", "tokens"): INT,
    ("requests", "total"): INT,
    ("requests", "reference_sets"): INT,
    ("requests", "stream_hash"): str,
    ("requests", "oov_tokens"): INT,
    ("results", "pairs_per_round"): INT,
    ("delta", "sets"): INT,
    ("delta", "oov_tokens"): INT,
    ("delta", "pairs_pre_ingest"): INT,
    ("funnel", "references"): INT,
    ("funnel", "initial_candidates"): INT,
    ("funnel", "after_size"): INT,
    ("funnel", "after_check"): INT,
    ("funnel", "after_nn"): INT,
    ("funnel", "verifications"): INT,
    ("funnel", "tier2_accepts"): INT,
    ("funnel", "heap_floor_rejects"): INT,
    ("funnel", "reporting_solves"): INT,
    ("funnel", "results"): INT,
    ("funnel", "query_sets"): INT,
    ("funnel", "oov_tokens"): INT,
    ("per_shard_results",): list,
    ("timing", "build_seconds"): NUM,
    ("timing", "ingest_seconds"): NUM,
    ("timing", "pre_ingest_seconds"): NUM,
    ("timing", "run_seconds"): NUM,
    ("timing", "completed_requests"): INT,
    ("timing", "requests_per_second"): NUM,
    ("timing", "latency_ns", "count"): INT,
    ("timing", "latency_ns", "min"): INT,
    ("timing", "latency_ns", "mean"): NUM,
    ("timing", "latency_ns", "p50"): INT,
    ("timing", "latency_ns", "p90"): INT,
    ("timing", "latency_ns", "p95"): INT,
    ("timing", "latency_ns", "p99"): INT,
    ("timing", "latency_ns", "max"): INT,
    ("timing", "phase_seconds", "signature"): NUM,
    ("timing", "phase_seconds", "selection"): NUM,
    ("timing", "phase_seconds", "nn"): NUM,
    ("timing", "phase_seconds", "verify"): NUM,
    ("timing", "peak_rss_bytes"): INT,
}


def lookup(doc, path):
    node = doc
    for key in path:
        if not isinstance(node, dict) or key not in node:
            return None, False
        node = node[key]
    return node, True


def check(path):
    errors = []
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        return [f"{path}: unreadable or invalid JSON: {e}"]

    for key_path, want in REQUIRED.items():
        value, found = lookup(doc, key_path)
        dotted = ".".join(key_path)
        if not found:
            errors.append(f"{path}: missing required key {dotted}")
            continue
        # bool is an int subclass in Python; keep them distinct.
        if want is INT and isinstance(value, bool):
            errors.append(f"{path}: {dotted} must be an integer, got bool")
        elif not isinstance(value, want):
            errors.append(
                f"{path}: {dotted} has type {type(value).__name__}, "
                f"expected {want}")
    if errors:
        return errors

    if doc["bench_schema_version"] != 1:
        errors.append(
            f"{path}: bench_schema_version is "
            f"{doc['bench_schema_version']}, expected 1")

    lat = doc["timing"]["latency_ns"]
    for field in ("count", "min", "mean", "p50", "p90", "p95", "p99", "max"):
        if lat[field] < 0:
            errors.append(f"{path}: timing.latency_ns.{field} is negative")
    for lo, hi in (("p50", "p95"), ("p95", "p99"), ("p99", "max")):
        if lat[lo] > lat[hi]:
            errors.append(
                f"{path}: latency {lo}={lat[lo]} > {hi}={lat[hi]}")
    if lat["min"] > lat["max"]:
        errors.append(f"{path}: latency min > max")

    for field in ("build_seconds", "ingest_seconds", "pre_ingest_seconds",
                  "run_seconds", "requests_per_second"):
        if doc["timing"][field] < 0:
            errors.append(f"{path}: timing.{field} is negative")
    if doc["timing"]["completed_requests"] < doc["requests"]["total"]:
        errors.append(f"{path}: completed_requests < requests.total")

    if not doc["requests"]["stream_hash"].startswith("0x"):
        errors.append(f"{path}: requests.stream_hash is not 0x-prefixed")
    if doc["requests"]["reference_sets"] != (
            doc["workload"]["requests"] * doc["workload"]["batch"]):
        errors.append(f"{path}: reference_sets != requests * batch")

    funnel = doc["funnel"]
    if sum(doc["per_shard_results"]) != funnel["results"]:
        errors.append(f"{path}: per_shard_results do not sum to "
                      f"funnel.results")
    if funnel["results"] != doc["results"]["pairs_per_round"]:
        errors.append(f"{path}: funnel.results != results.pairs_per_round")
    if doc["delta"]["sets"] != doc["workload"]["delta_sets"]:
        errors.append(f"{path}: delta.sets != workload.delta_sets")
    return errors


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    failures = []
    for path in argv[1:]:
        failures.extend(check(path))
    for line in failures:
        print(line, file=sys.stderr)
    if not failures:
        print(f"ok: {len(argv) - 1} bench report(s) schema-valid")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
