#ifndef SILKMOTH_BASELINE_FASTJOIN_H_
#define SILKMOTH_BASELINE_FASTJOIN_H_

#include <vector>

#include "core/engine.h"
#include "core/options.h"
#include "text/dataset.h"

namespace silkmoth {

/// FastJoin-style baseline (Wang et al. [25], the comparator of §8.5).
///
/// Reimplemented as the paper characterizes it: the combined *unweighted*
/// signature scheme for candidate generation, no check filter, no
/// nearest-neighbor filter, and no reduction-based verification. The paper's
/// COMBUNWEIGHTED configuration "simulates the signature scheme of FASTJOIN
/// but with different token types"; the original system used partition
/// tokens, which §8.5 credits for its remaining edge at very high α — that
/// difference is noted in EXPERIMENTS.md rather than reproduced.
///
/// FastJoin targets the approximate string matching problem only: it
/// supports SET-SIMILARITY with an edit similarity; other configurations are
/// rejected through ok()/error().
class FastJoin {
 public:
  FastJoin(const Collection* data, Options options);

  bool ok() const { return error_.empty(); }
  const std::string& error() const { return error_; }
  const Options& options() const { return options_; }

  std::vector<SearchMatch> Search(const SetRecord& ref,
                                  SearchStats* stats = nullptr) const;
  std::vector<PairMatch> DiscoverSelf(SearchStats* stats = nullptr) const;

 private:
  SilkMoth engine_;
  Options options_;
  std::string error_;
};

}  // namespace silkmoth

#endif  // SILKMOTH_BASELINE_FASTJOIN_H_
