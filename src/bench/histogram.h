#ifndef SILKMOTH_BENCH_HISTOGRAM_H_
#define SILKMOTH_BENCH_HISTOGRAM_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace silkmoth::bench {

/// Log-linear latency histogram (HdrHistogram-style, fixed memory).
///
/// Values are non-negative 64-bit integers — nanoseconds by convention in
/// this repository. Buckets: values below 16 are exact (one bucket per
/// value); above that, each power-of-two decade splits into 16 linear
/// sub-buckets, so any recorded value lands in a bucket whose lower bound is
/// within 1/16 (6.25%) of it. 976 buckets cover the whole uint64 range;
/// recording is O(1) (a count-leading-zeros and two shifts), percentile
/// queries walk the cumulative counts once.
///
/// Percentile convention: `Percentile(p)` returns the *lower bound* of the
/// bucket holding the sample at ceil(p/100 · count) in sorted order. Values
/// that are exact bucket lower bounds (all integers < 16, and (16+s)·2^e
/// generally) therefore report exactly; everything else reports within the
/// 6.25% bucket width, always under-reporting, never over. `Min()`/`Max()`
/// are tracked exactly, and the endpoints use them: p ≤ 0 returns Min(),
/// p ≥ 100 returns Max(), so p50 ≤ p95 ≤ p99 ≤ p100 = Max() always holds.
/// `Mean()` is exact (a running sum, not bucket-derived).
///
/// Merging is a plain per-bucket sum plus min/max/sum/count folds, so it is
/// associative and commutative — per-worker histograms merge in any order
/// to the same result (pinned by tests/bench_histogram_test.cc). No
/// atomics: like SearchStats, each worker owns a private instance and the
/// runner merges at the end.
class LatencyHistogram {
 public:
  LatencyHistogram();

  /// Records one value (nanoseconds by convention).
  void Record(uint64_t value);

  /// Convenience: records a duration in seconds, rounded to the nearest
  /// nanosecond (negative values clamp to 0).
  void RecordSeconds(double seconds);

  /// Adds every sample of `other` into this histogram.
  void Merge(const LatencyHistogram& other);

  /// Number of recorded samples.
  uint64_t Count() const { return count_; }

  /// Exact smallest recorded value (0 when empty).
  uint64_t Min() const { return count_ == 0 ? 0 : min_; }

  /// Exact largest recorded value (0 when empty).
  uint64_t Max() const { return max_; }

  /// Exact arithmetic mean (0.0 when empty).
  double Mean() const;

  /// Lower bound of the bucket holding the sample at rank
  /// ceil(p/100 · count) (1-based, sorted ascending). p is clamped to
  /// [0, 100]; p ≤ 0 returns Min(), p ≥ 100 returns the exact Max(); an
  /// empty histogram returns 0.
  uint64_t Percentile(double p) const;

  /// Number of samples recorded into the bucket that `value` maps to.
  uint64_t CountAt(uint64_t value) const;

  /// Lower bound of the bucket `value` maps to — the value Percentile()
  /// would report for a sample of exactly `value`.
  static uint64_t BucketLowerBound(uint64_t value);

 private:
  static size_t BucketIndex(uint64_t value);
  static uint64_t IndexLowerBound(size_t index);

  std::vector<uint64_t> buckets_;
  uint64_t count_ = 0;
  uint64_t min_ = 0;
  uint64_t max_ = 0;
  /// Running sum in 128-bit so Mean() cannot overflow at any sample count.
  unsigned __int128 sum_ = 0;
};

}  // namespace silkmoth::bench

#endif  // SILKMOTH_BENCH_HISTOGRAM_H_
