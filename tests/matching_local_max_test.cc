// LocalMaxMatchingScore (src/matching/local_max.h): the tier-2 lower bound
// of the bound-guided verifier. Properties pinned here, on hand-built
// matrices and randomized sweeps:
//
//  1. Feasibility: local-max never exceeds the exact maximum-matching score.
//  2. Approximation: 2·local-max >= exact (the 1/2-of-optimum guarantee of
//     mutually-maximal edge selection, Birn et al.).
//  3. Incomparability with the row-greedy bound: each side wins on some
//     matrix, which is why ScoreDecision takes the max of the two.

#include "matching/local_max.h"

#include <algorithm>
#include <initializer_list>
#include <vector>

#include <gtest/gtest.h>

#include "matching/hungarian.h"
#include "util/rng.h"

namespace silkmoth {
namespace {

WeightMatrix Make(std::initializer_list<std::initializer_list<double>> rows) {
  const size_t r = rows.size();
  const size_t c = r == 0 ? 0 : rows.begin()->size();
  WeightMatrix w(r, c);
  size_t i = 0;
  for (const auto& row : rows) {
    size_t j = 0;
    for (double v : row) w.At(i, j++) = v;
    ++i;
  }
  return w;
}

// The row-greedy lower bound exactly as ScoreDecision computes it: rows in
// descending row-maximum order (ties by index), each taking its heaviest
// still-free column.
double RowGreedyScore(const WeightMatrix& w) {
  const size_t rows = w.rows();
  const size_t cols = w.cols();
  std::vector<double> row_max(rows, 0.0);
  for (size_t i = 0; i < rows; ++i) {
    for (size_t j = 0; j < cols; ++j) {
      row_max[i] = std::max(row_max[i], w.At(i, j));
    }
  }
  std::vector<uint32_t> order(rows);
  for (size_t i = 0; i < rows; ++i) order[i] = static_cast<uint32_t>(i);
  std::sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
    if (row_max[a] != row_max[b]) return row_max[a] > row_max[b];
    return a < b;
  });
  std::vector<uint8_t> used(cols, 0);
  double total = 0.0;
  for (uint32_t i : order) {
    double best = 0.0;
    size_t best_j = cols;
    for (size_t j = 0; j < cols; ++j) {
      if (!used[j] && w.At(i, j) > best) {
        best = w.At(i, j);
        best_j = j;
      }
    }
    if (best_j < cols) {
      used[best_j] = 1;
      total += best;
    }
  }
  return total;
}

TEST(LocalMaxMatchingTest, EmptyAndDegenerateMatrices) {
  EXPECT_DOUBLE_EQ(LocalMaxMatchingScore(WeightMatrix(0, 0)), 0.0);
  EXPECT_DOUBLE_EQ(LocalMaxMatchingScore(WeightMatrix(3, 0)), 0.0);
  EXPECT_DOUBLE_EQ(LocalMaxMatchingScore(WeightMatrix(0, 4)), 0.0);
  EXPECT_DOUBLE_EQ(LocalMaxMatchingScore(WeightMatrix(2, 5)), 0.0);  // Zeros.
}

TEST(LocalMaxMatchingTest, SingleEntryAndDiagonal) {
  EXPECT_DOUBLE_EQ(LocalMaxMatchingScore(Make({{0.7}})), 0.7);
  // A diagonal matrix is its own optimum: every diagonal edge is mutually
  // maximal in round one.
  const WeightMatrix diag =
      Make({{0.9, 0.0, 0.0}, {0.0, 0.5, 0.0}, {0.0, 0.0, 0.3}});
  EXPECT_DOUBLE_EQ(LocalMaxMatchingScore(diag), 1.7);
  EXPECT_DOUBLE_EQ(MaxWeightMatchingScore(diag), 1.7);
}

TEST(LocalMaxMatchingTest, BeatsRowGreedyOnStaircase) {
  // Row-greedy (rows by descending maximum) takes (0,0)=10 then (1,1)=5 and
  // leaves row 2 with nothing: 15. Local-max pairs (0,0)=10 in round one,
  // then (1,1)... no: after (0,0) retires, round two's mutual maxima are
  // (1,1)=5? Column 1's best is row 2 (8 > 5), row 1's best is column 1 —
  // not mutual; (2,1)=8 is mutual (row 2 max, column 1 max), so round two
  // takes 8 and row 1 is left with nothing: 18 = the exact optimum.
  const WeightMatrix w =
      Make({{10.0, 0.0, 0.0}, {9.0, 5.0, 0.0}, {0.0, 8.0, 0.0}});
  EXPECT_DOUBLE_EQ(RowGreedyScore(w), 15.0);
  EXPECT_DOUBLE_EQ(LocalMaxMatchingScore(w), 18.0);
  EXPECT_DOUBLE_EQ(MaxWeightMatchingScore(w), 18.0);
}

TEST(LocalMaxMatchingTest, LosesToRowGreedyOnShiftedStaircase) {
  // Same staircase with a (2,2) escape hatch: row-greedy takes (0,0)=10,
  // (1,1)=5, (2,2)=7.9 → 22.9; local-max retires column 1 via the mutual
  // edge (2,1)=8 → 10 + 8 + nothing for row 1 ... no: after (0,0) and
  // (2,1), row 1's best live column is 2 (0.0)? Row 1 = {9, 2, 0}: columns
  // 0 and 1 are retired, so row 1 gets nothing → 18. The two bounds are
  // incomparable, hence ScoreDecision's max() of the two.
  const WeightMatrix w =
      Make({{10.0, 0.0, 0.0}, {9.0, 2.0, 0.0}, {0.0, 8.0, 7.9}});
  EXPECT_DOUBLE_EQ(RowGreedyScore(w), 10.0 + 2.0 + 7.9);
  EXPECT_DOUBLE_EQ(LocalMaxMatchingScore(w), 18.0);
  EXPECT_DOUBLE_EQ(MaxWeightMatchingScore(w), 10.0 + 2.0 + 7.9);
}

TEST(LocalMaxMatchingTest, HalfApproximationIsTightOnAdversarialInput) {
  // Two disjoint near-ties: local-max grabs the single heaviest edge of
  // each 2-cycle, forfeiting the pair that the optimum keeps. The classic
  // 1/2 lower bound is approached as eps -> 0 but never violated.
  const double eps = 1e-6;
  const WeightMatrix w = Make({{1.0, 1.0 - eps}, {1.0 - eps, 0.0}});
  const double lm = LocalMaxMatchingScore(w);
  const double exact = MaxWeightMatchingScore(w);
  EXPECT_DOUBLE_EQ(exact, 2.0 - 2.0 * eps);
  EXPECT_DOUBLE_EQ(lm, 1.0);  // Takes (0,0), starving both neighbors.
  EXPECT_GE(2.0 * lm, exact);
}

TEST(LocalMaxMatchingTest, RandomSweepSandwichAndHalfGuarantee) {
  Rng rng(20260808);
  size_t greedy_wins = 0;
  size_t local_wins = 0;
  for (int iter = 0; iter < 400; ++iter) {
    const size_t rows = 1 + rng.NextBounded(8);
    const size_t cols = 1 + rng.NextBounded(8);
    WeightMatrix w(rows, cols);
    for (size_t i = 0; i < rows; ++i) {
      for (size_t j = 0; j < cols; ++j) {
        // Sparse non-negative weights, like thresholded similarity scores.
        w.At(i, j) = rng.NextBool(0.4) ? rng.NextDouble() : 0.0;
      }
    }
    const double exact = MaxWeightMatchingScore(w);
    const double lm = LocalMaxMatchingScore(w);
    const double greedy = RowGreedyScore(w);
    // Feasibility: both bounds are real matchings.
    EXPECT_LE(lm, exact + 1e-12) << "iter " << iter;
    EXPECT_LE(greedy, exact + 1e-12) << "iter " << iter;
    // The 1/2-of-optimum guarantee.
    EXPECT_GE(2.0 * lm, exact - 1e-12) << "iter " << iter;
    // The combined tier-2 bound dominates each component by construction.
    EXPECT_GE(std::max(lm, greedy), greedy);
    EXPECT_GE(std::max(lm, greedy), lm);
    if (greedy > lm + 1e-12) ++greedy_wins;
    if (lm > greedy + 1e-12) ++local_wins;
  }
  // The sweep must witness the incomparability, not just the hand-built
  // cases above.
  EXPECT_GT(greedy_wins, 0u);
  EXPECT_GT(local_wins, 0u);
}

}  // namespace
}  // namespace silkmoth
