#include "core/engine.h"

#include <gtest/gtest.h>

#include "core/brute_force.h"
#include "datagen/dblp.h"
#include "datagen/webtable.h"
#include "paper_example.h"

namespace silkmoth {
namespace {

using test::MakePaperExample;

Collection SmallSchemaData(size_t n, uint64_t seed) {
  WebTableParams p = SchemaMatchingDefaults(n, seed);
  p.min_tokens = 3;
  p.max_tokens = 6;
  return BuildCollection(GenerateSchemaSets(p), TokenizerKind::kWord);
}

TEST(EngineDiscoveryTest, SelfDiscoveryMatchesBruteForce) {
  Collection data = SmallSchemaData(40, 3);
  Options o;
  o.metric = Relatedness::kSimilarity;
  o.phi = SimilarityKind::kJaccard;
  o.delta = 0.7;
  SilkMoth engine(&data, o);
  BruteForce oracle(&data, o);
  EXPECT_EQ(engine.DiscoverSelf(), oracle.DiscoverSelf());
}

TEST(EngineDiscoveryTest, SelfDiscoveryDeduplicatesSimilarityPairs) {
  Collection data = SmallSchemaData(40, 4);
  Options o;
  o.metric = Relatedness::kSimilarity;
  o.delta = 0.6;
  SilkMoth engine(&data, o);
  auto pairs = engine.DiscoverSelf();
  for (const PairMatch& p : pairs) {
    EXPECT_LT(p.ref_id, p.set_id);  // Each unordered pair once; no self.
  }
}

TEST(EngineDiscoveryTest, ContainmentSelfDiscoveryKeepsBothDirections) {
  // Build data with a planted superset pair: A ⊂ B means contain(A,B) high
  // but contain(B,A) possibly low; directions are distinct.
  RawSets raw = {
      {"x1 y1", "x2 y2"},
      {"x1 y1", "x2 y2", "x3 y3", "x4 y4"},
      {"p q r"},
  };
  Collection data = BuildCollection(raw, TokenizerKind::kWord);
  Options o;
  o.metric = Relatedness::kContainment;
  o.delta = 0.9;
  SilkMoth engine(&data, o);
  BruteForce oracle(&data, o);
  auto pairs = engine.DiscoverSelf();
  EXPECT_EQ(pairs, oracle.DiscoverSelf());
  // contain(set0, set1) = 1 must be found as (0, 1).
  bool found_0_1 = false;
  for (const PairMatch& p : pairs) {
    found_0_1 |= p.ref_id == 0 && p.set_id == 1;
    EXPECT_NE(p.ref_id, p.set_id);
  }
  EXPECT_TRUE(found_0_1);
}

TEST(EngineDiscoveryTest, CrossCollectionDiscovery) {
  Collection data = SmallSchemaData(30, 5);
  Collection refs = SmallSchemaData(10, 6);
  // Reference collection must share the dictionary.
  refs = BuildCollectionWithDict(GenerateSchemaSets(
                                     SchemaMatchingDefaults(10, 6)),
                                 TokenizerKind::kWord, 0, data.dict);
  Options o;
  o.metric = Relatedness::kSimilarity;
  o.delta = 0.5;
  SilkMoth engine(&data, o);
  BruteForce oracle(&data, o);
  EXPECT_EQ(engine.Discover(refs), oracle.Discover(refs));
}

TEST(EngineDiscoveryTest, MultiThreadedEqualsSingleThreaded) {
  Collection data = SmallSchemaData(60, 7);
  Options o;
  o.metric = Relatedness::kSimilarity;
  o.delta = 0.6;
  o.num_threads = 1;
  SilkMoth single(&data, o);
  o.num_threads = 4;
  SilkMoth multi(&data, o);
  SearchStats s1, s4;
  auto r1 = single.DiscoverSelf(&s1);
  auto r4 = multi.DiscoverSelf(&s4);
  EXPECT_EQ(r1, r4);
  EXPECT_EQ(s1.references, s4.references);
  EXPECT_EQ(s1.results, s4.results);
}

TEST(EngineDiscoveryTest, MoreThreadsThanReferences) {
  Collection data = SmallSchemaData(3, 8);
  Options o;
  o.metric = Relatedness::kSimilarity;
  o.delta = 0.6;
  o.num_threads = 16;
  SilkMoth engine(&data, o);
  BruteForce oracle(&data, o);
  EXPECT_EQ(engine.DiscoverSelf(), oracle.DiscoverSelf());
}

TEST(EngineDiscoveryTest, ResultsAreSorted) {
  Collection data = SmallSchemaData(50, 9);
  Options o;
  o.metric = Relatedness::kSimilarity;
  o.delta = 0.5;
  o.num_threads = 3;
  SilkMoth engine(&data, o);
  auto pairs = engine.DiscoverSelf();
  for (size_t i = 1; i < pairs.size(); ++i) {
    const bool ordered =
        pairs[i - 1].ref_id < pairs[i].ref_id ||
        (pairs[i - 1].ref_id == pairs[i].ref_id &&
         pairs[i - 1].set_id < pairs[i].set_id);
    EXPECT_TRUE(ordered) << "at " << i;
  }
}

TEST(EngineDiscoveryTest, PaperDataDiscovery) {
  auto ex = MakePaperExample();
  Options o;
  o.metric = Relatedness::kSimilarity;
  o.delta = 0.5;
  SilkMoth engine(&ex.data, o);
  BruteForce oracle(&ex.data, o);
  EXPECT_EQ(engine.DiscoverSelf(), oracle.DiscoverSelf());
}

TEST(EngineDiscoveryTest, DiscoveryStatsCountReferences) {
  Collection data = SmallSchemaData(25, 10);
  Options o;
  o.metric = Relatedness::kSimilarity;
  o.delta = 0.7;
  SilkMoth engine(&data, o);
  SearchStats stats;
  engine.DiscoverSelf(&stats);
  EXPECT_EQ(stats.references, 25u);
}

}  // namespace
}  // namespace silkmoth
