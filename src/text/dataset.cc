#include "text/dataset.h"

namespace silkmoth {

std::string_view ElementArena::AddText(std::string_view text) {
  if (text.empty()) return {};
  if (text_blocks_.empty() ||
      text_blocks_.back().capacity() - text_blocks_.back().size() <
          text.size()) {
    text_blocks_.emplace_back();
    text_blocks_.back().reserve(std::max(kTextBlockBytes, text.size()));
  }
  std::string& block = text_blocks_.back();
  const size_t pos = block.size();
  block.append(text);
  return std::string_view(block.data() + pos, text.size());
}

std::span<const TokenId> ElementArena::AddTokens(
    std::span<const TokenId> tokens) {
  if (tokens.empty()) return {};
  if (token_blocks_.empty() ||
      token_blocks_.back().capacity() - token_blocks_.back().size() <
          tokens.size()) {
    token_blocks_.emplace_back();
    token_blocks_.back().reserve(std::max(kTokenBlockCount, tokens.size()));
  }
  std::vector<TokenId>& block = token_blocks_.back();
  const size_t pos = block.size();
  block.insert(block.end(), tokens.begin(), tokens.end());
  return std::span<const TokenId>(block.data() + pos, tokens.size());
}

Element MakeArenaElement(ElementArena* arena, std::string_view text,
                         std::span<const TokenId> tokens,
                         std::span<const TokenId> chunks) {
  Element elem;
  elem.text = arena->AddText(text);
  elem.tokens = arena->AddTokens(tokens);
  elem.chunks = arena->AddTokens(chunks);
  return elem;
}

Element& SetRecord::AddElement(std::string_view text,
                               std::initializer_list<TokenId> tokens,
                               std::initializer_list<TokenId> chunks) {
  if (arena == nullptr) arena = std::make_shared<ElementArena>();
  elements.push_back(MakeArenaElement(
      arena.get(), text, std::span<const TokenId>(tokens.begin(), tokens.size()),
      std::span<const TokenId>(chunks.begin(), chunks.size())));
  return elements.back();
}

size_t Collection::NumElements() const {
  size_t n = 0;
  for (const auto& s : sets) n += s.elements.size();
  return n;
}

size_t Collection::NumTokenOccurrences() const {
  size_t n = 0;
  for (const auto& s : sets) {
    for (const auto& e : s.elements) n += e.tokens.size();
  }
  return n;
}

}  // namespace silkmoth
