#ifndef SILKMOTH_SNAPSHOT_COMPACTOR_H_
#define SILKMOTH_SNAPSHOT_COMPACTOR_H_

#include <cstdint>
#include <string>

#include "snapshot/delta_shard.h"
#include "snapshot/snapshot.h"

namespace silkmoth {

/// Knobs for one compaction.
struct CompactOptions {
  /// Shard count of the next generation (>= 1). The merged corpus is
  /// re-partitioned from scratch with the canonical ComputeShardRanges —
  /// compaction is the moment partition skew accumulated by ingest gets
  /// rebalanced away.
  uint32_t num_shards = 1;
  /// Write the next generation split (common + per-shard files) instead of
  /// monolithic.
  bool split = false;
  /// Parallel index builders for the merged corpus.
  int num_threads = 1;
};

/// What a compaction produced, for reporting.
struct CompactResult {
  uint64_t generation = 0;   ///< The next generation's lineage counter.
  uint64_t total_sets = 0;   ///< Sets in the merged corpus.
  uint64_t delta_sets = 0;   ///< Of those, sets that came from the delta.
  uint32_t num_shards = 0;   ///< Shards written.
};

/// Merges `base` + `delta` into a next-generation snapshot at `out_path`.
///
/// The merged corpus is exactly `delta.combined()` — base sets first,
/// delta sets after, one shared dictionary whose base-then-delta interning
/// order equals the first-seen order of a from-scratch build over the same
/// sets. BuildSnapshot then re-runs the canonical partition + index
/// construction, and the result is stamped `base.generation + 1` and saved
/// through `util::AtomicFileWriter` under the `compact-write` fault site:
/// bytes go to ".tmp" siblings, shard files rename first, the common file
/// last, so a crash at any point leaves either the complete next
/// generation or no readable next generation at all — never a partial one
/// (tests/compact_fault_test.sh drives the matrix).
///
/// Byte-identity contract: discovery over the written snapshot equals
/// discovery over (base shards + delta view), bit for bit, every metric,
/// exact and approx. This holds because pair streams are
/// partition-invariant (verification only ever sees the (R, S) records)
/// and the merged corpus, dictionary included, is content-identical to
/// the live base + delta.
///
/// `delta` must have been built over `base.data`. An empty delta is legal
/// and produces a re-partitioned next generation of the same sets. On
/// success returns "" and fills `*result` (when non-null); on failure
/// returns a one-line error and publishes nothing.
std::string CompactSnapshot(const Snapshot& base, const DeltaShard& delta,
                            const std::string& out_path,
                            const CompactOptions& options,
                            CompactResult* result = nullptr);

}  // namespace silkmoth

#endif  // SILKMOTH_SNAPSHOT_COMPACTOR_H_
