#include "util/mmap_region.h"

#include <cerrno>
#include <cstdio>
#include <utility>

#if defined(__unix__) || defined(__APPLE__)
#define SILKMOTH_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#else
#define SILKMOTH_HAVE_MMAP 0
#endif

namespace silkmoth {

MmapRegion::~MmapRegion() { Reset(); }

MmapRegion::MmapRegion(MmapRegion&& other) noexcept
    : data_(other.data_),
      size_(other.size_),
      map_base_(other.map_base_),
      map_size_(other.map_size_),
      buffer_(std::move(other.buffer_)) {
  other.data_ = nullptr;
  other.size_ = 0;
  other.map_base_ = nullptr;
  other.map_size_ = 0;
}

MmapRegion& MmapRegion::operator=(MmapRegion&& other) noexcept {
  if (this != &other) {
    Reset();
    data_ = std::exchange(other.data_, nullptr);
    size_ = std::exchange(other.size_, 0);
    map_base_ = std::exchange(other.map_base_, nullptr);
    map_size_ = std::exchange(other.map_size_, 0);
    buffer_ = std::move(other.buffer_);
  }
  return *this;
}

void MmapRegion::Reset() {
#if SILKMOTH_HAVE_MMAP
  if (map_base_ != nullptr) munmap(map_base_, map_size_);
#endif
  map_base_ = nullptr;
  map_size_ = 0;
  buffer_.reset();
  data_ = nullptr;
  size_ = 0;
}

std::string MmapRegion::Map(const std::string& path) {
  Reset();
#if SILKMOTH_HAVE_MMAP
  const int fd = open(path.c_str(), O_RDONLY);
  if (fd < 0) return "cannot open " + path;
  struct stat st;
  if (fstat(fd, &st) != 0) {
    close(fd);
    return "cannot stat " + path;
  }
  const size_t size = static_cast<size_t>(st.st_size);
  if (size == 0) {  // mmap rejects zero-length maps; an empty region is fine.
    close(fd);
    return "";
  }
  void* base = mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
  close(fd);  // The mapping keeps the file alive.
  if (base == MAP_FAILED) return Read(path);  // Fall back to a buffered read.
  map_base_ = base;
  map_size_ = size;
  data_ = static_cast<const char*>(base);
  size_ = size;
  return "";
#else
  return Read(path);
#endif
}

std::string MmapRegion::Read(const std::string& path) {
  Reset();
#if SILKMOTH_HAVE_MMAP
  // POSIX read loop: retry EINTR and continue after short reads instead of
  // assuming one-shot transfers — a signal mid-read (the orchestrator
  // supervises workers with signals) must not turn into a spurious error.
  int fd;
  do {
    fd = open(path.c_str(), O_RDONLY);
  } while (fd < 0 && errno == EINTR);
  if (fd < 0) return "cannot open " + path;
  struct stat st;
  if (fstat(fd, &st) != 0) {
    close(fd);
    return "cannot stat " + path;
  }
  const size_t size = static_cast<size_t>(st.st_size);
  if (size > 0) {
    buffer_ = std::make_unique<char[]>(size);
    size_t got = 0;
    while (got < size) {
      const ssize_t n = read(fd, buffer_.get() + got, size - got);
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) {  // Error, or EOF before the stat'd size arrived.
        close(fd);
        Reset();
        return "read from " + path + " failed";
      }
      got += static_cast<size_t>(n);
    }
    data_ = buffer_.get();
    size_ = size;
  }
  close(fd);
  return "";
#else
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return "cannot open " + path;
  std::fseek(f, 0, SEEK_END);
  const long end = std::ftell(f);
  if (end < 0) {
    std::fclose(f);
    return "cannot stat " + path;
  }
  std::fseek(f, 0, SEEK_SET);
  const size_t size = static_cast<size_t>(end);
  if (size > 0) {
    buffer_ = std::make_unique<char[]>(size);
    size_t got = 0;
    // Loop on partial transfers: stdio may legitimately return short.
    while (got < size) {
      const size_t n = std::fread(buffer_.get() + got, 1, size - got, f);
      if (n == 0) {
        std::fclose(f);
        Reset();
        return "read from " + path + " failed";
      }
      got += n;
    }
    data_ = buffer_.get();
    size_ = size;
  }
  std::fclose(f);
  return "";
#endif
}

}  // namespace silkmoth
