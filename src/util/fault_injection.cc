#include "util/fault_injection.h"

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <thread>

namespace silkmoth {
namespace fault {
namespace {

// Armed specs plus a per-spec atomic call counter for its site. The list is
// written only under `mu` (env arm happens once, ArmForTest swaps it
// between test cases); Hit() reads it under the same lock — fault paths are
// cold by definition, so a mutex is fine, and `armed_flag` keeps the
// common disarmed case lock-free.
struct ArmedSpec {
  FaultSpec spec;
  long calls = 0;  // Calls seen at spec.site since arming (per spec).
};

std::mutex mu;
std::vector<ArmedSpec>* specs = nullptr;  // Leaked singleton, never shrunk.
std::atomic<bool> armed_flag{false};
std::once_flag env_once;

void ArmLocked(const std::vector<FaultSpec>& parsed) {
  if (specs == nullptr) specs = new std::vector<ArmedSpec>();
  specs->clear();
  for (const FaultSpec& s : parsed) specs->push_back(ArmedSpec{s, 0});
  armed_flag.store(!specs->empty(), std::memory_order_release);
}

void ArmFromEnvOnce() {
  std::call_once(env_once, [] {
    const char* text = std::getenv("SILKMOTH_FAULT");
    if (text == nullptr || text[0] == '\0') return;
    std::vector<FaultSpec> parsed;
    const std::string err = ParseFaultSpecs(text, &parsed);
    if (!err.empty()) {
      // A misspelled fault spec that silently disarms would make a fault
      // test pass vacuously; fail loudly instead.
      std::fprintf(stderr, "SILKMOTH_FAULT: %s\n", err.c_str());
      std::_Exit(70);
    }
    std::lock_guard<std::mutex> lock(mu);
    ArmLocked(parsed);
  });
}

bool ParseLong(const std::string& s, long* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  const long v = std::strtol(s.c_str(), &end, 10);
  if (end != s.c_str() + s.size()) return false;
  *out = v;
  return true;
}

// Executes an in-place action. Returns only for the outcome-reporting ones.
Outcome Execute(const FaultSpec& s) {
  switch (s.action) {
    case FaultSpec::Action::kFail:
      return Outcome{Outcome::kFail, s.arg};
    case FaultSpec::Action::kTorn:
      return Outcome{Outcome::kTorn, s.arg};
    case FaultSpec::Action::kCorrupt:
      return Outcome{Outcome::kCorrupt, s.arg};
    case FaultSpec::Action::kSleep:
      std::this_thread::sleep_for(std::chrono::milliseconds(s.arg));
      return Outcome{};
    case FaultSpec::Action::kAbort:
      std::abort();
    case FaultSpec::Action::kKill:
#ifdef SIGKILL
      std::raise(SIGKILL);
#endif
      std::abort();  // No SIGKILL on this platform: crash hard anyway.
    case FaultSpec::Action::kExit:
      std::_Exit(static_cast<int>(s.arg));
  }
  return Outcome{};
}

}  // namespace

std::string ParseFaultSpecs(const std::string& text,
                            std::vector<FaultSpec>* out) {
  std::vector<FaultSpec> parsed;
  size_t pos = 0;
  while (pos <= text.size()) {
    const size_t comma = text.find(',', pos);
    const std::string item = text.substr(
        pos, comma == std::string::npos ? std::string::npos : comma - pos);
    pos = comma == std::string::npos ? text.size() + 1 : comma + 1;
    if (item.empty()) continue;

    // Split on ':' into site, action, and up to two numeric fields.
    std::vector<std::string> fields;
    size_t fpos = 0;
    while (fpos <= item.size()) {
      const size_t colon = item.find(':', fpos);
      fields.push_back(item.substr(
          fpos,
          colon == std::string::npos ? std::string::npos : colon - fpos));
      if (colon == std::string::npos) break;
      fpos = colon + 1;
    }
    if (fields.size() < 2 || fields.size() > 4 || fields[0].empty()) {
      return "malformed fault spec '" + item +
             "' (want site:action[:arg[:nth]])";
    }
    FaultSpec spec;
    spec.site = fields[0];
    const std::string& action = fields[1];
    if (action == "fail") {
      spec.action = FaultSpec::Action::kFail;
    } else if (action == "torn") {
      spec.action = FaultSpec::Action::kTorn;
    } else if (action == "corrupt") {
      spec.action = FaultSpec::Action::kCorrupt;
    } else if (action == "sleep") {
      spec.action = FaultSpec::Action::kSleep;
    } else if (action == "abort") {
      spec.action = FaultSpec::Action::kAbort;
    } else if (action == "kill") {
      spec.action = FaultSpec::Action::kKill;
    } else if (action == "exit") {
      spec.action = FaultSpec::Action::kExit;
    } else {
      return "unknown fault action '" + action + "' in '" + item + "'";
    }
    if (fields.size() >= 3 && !fields[2].empty() &&
        !ParseLong(fields[2], &spec.arg)) {
      return "non-numeric fault arg '" + fields[2] + "' in '" + item + "'";
    }
    if (fields.size() == 4 && !fields[3].empty() &&
        !ParseLong(fields[3], &spec.nth)) {
      return "non-numeric fault nth '" + fields[3] + "' in '" + item + "'";
    }
    if (spec.nth < 1) {
      return "fault nth must be >= 1 in '" + item + "'";
    }
    parsed.push_back(std::move(spec));
  }
  *out = std::move(parsed);
  return "";
}

bool Armed() {
  ArmFromEnvOnce();
  return armed_flag.load(std::memory_order_acquire);
}

Outcome Hit(const char* site) {
  ArmFromEnvOnce();
  if (!armed_flag.load(std::memory_order_acquire)) return Outcome{};
  FaultSpec fired;
  bool have = false;
  {
    std::lock_guard<std::mutex> lock(mu);
    if (specs == nullptr) return Outcome{};
    for (ArmedSpec& a : *specs) {
      if (a.spec.site != site) continue;
      ++a.calls;
      if (!have && a.calls == a.spec.nth) {
        fired = a.spec;
        have = true;
      }
    }
  }
  // Execute outside the lock: sleep/abort must not hold it.
  return have ? Execute(fired) : Outcome{};
}

void ArmForTest(const std::string& text) {
  std::vector<FaultSpec> parsed;
  if (!text.empty()) {
    const std::string err = ParseFaultSpecs(text, &parsed);
    if (!err.empty()) {
      std::fprintf(stderr, "ArmForTest: %s\n", err.c_str());
      std::abort();
    }
  }
  // Make sure the env one-shot has run, so a later Hit() cannot overwrite
  // the test arming with stale env state.
  ArmFromEnvOnce();
  std::lock_guard<std::mutex> lock(mu);
  ArmLocked(parsed);
}

}  // namespace fault
}  // namespace silkmoth
