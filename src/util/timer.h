#ifndef SILKMOTH_UTIL_TIMER_H_
#define SILKMOTH_UTIL_TIMER_H_

#include <chrono>

namespace silkmoth {

/// Monotonic wall-clock stopwatch used by the benchmark harness and the
/// engine's per-phase statistics.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  /// Resets the start point to "now".
  void Restart() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed since construction or the last Restart().
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace silkmoth

#endif  // SILKMOTH_UTIL_TIMER_H_
