#ifndef SILKMOTH_CORE_ENGINE_H_
#define SILKMOTH_CORE_ENGINE_H_

#include <cstdint>
#include <vector>

#include "core/options.h"
#include "core/search_pass.h"
#include "core/stats.h"
#include "index/inverted_index.h"
#include "text/dataset.h"

namespace silkmoth {

/// One related pair found in discovery mode.
struct PairMatch {
  uint32_t ref_id = 0;          ///< Index into the reference collection.
  uint32_t set_id = 0;          ///< Index into the indexed collection.
  double matching_score = 0.0;  ///< |R ∩̃φα S|.
  double relatedness = 0.0;

  friend bool operator==(const PairMatch&, const PairMatch&) = default;
};

/// The SilkMoth engine (Section 3's framework).
///
/// Construction builds the inverted index over `data` once; every search
/// pass afterwards reuses it. The engine holds a pointer to `data`, which
/// must outlive it; both the collection and the index are immutable after
/// construction, so all query methods are const and thread-safe.
///
/// Usage:
///   Collection data = ...;                       // via datagen builders
///   Options opt;
///   opt.metric = Relatedness::kContainment;
///   opt.delta = 0.7;
///   SilkMoth engine(&data, opt);
///   auto matches = engine.Search(reference_set); // RELATED SET SEARCH
///   auto pairs = engine.DiscoverSelf();          // RELATED SET DISCOVERY
class SilkMoth {
 public:
  /// `data` must outlive the engine. Options are validated eagerly: invalid
  /// options are reported through ok()/error() and queries return empty.
  SilkMoth(const Collection* data, Options options);

  bool ok() const { return error_.empty(); }
  const std::string& error() const { return error_; }
  const Options& options() const { return options_; }
  const InvertedIndex& index() const { return index_; }
  const Collection& data() const { return *data_; }

  /// RELATED SET SEARCH (Problem 2): all sets related to `ref`. The
  /// reference must be tokenized against the data collection's dictionary.
  std::vector<SearchMatch> Search(const SetRecord& ref,
                                  SearchStats* stats = nullptr) const;

  /// Extension: the k most related sets among those with relatedness >=
  /// options().delta, ordered by descending relatedness (ties broken by
  /// ascending set id). Exact — it filters the full Search result.
  std::vector<SearchMatch> SearchTopK(const SetRecord& ref, size_t k,
                                      SearchStats* stats = nullptr) const;

  /// RELATED SET DISCOVERY (Problem 1) across two collections: one search
  /// pass per reference set. Results sorted by (ref_id, set_id).
  std::vector<PairMatch> Discover(const Collection& refs,
                                  SearchStats* stats = nullptr) const;

  /// Discovery within the indexed collection itself (R = S, the paper's
  /// string/schema matching setup). Self-pairs are skipped; under
  /// SET-SIMILARITY each unordered pair is reported once (ref_id < set_id);
  /// under SET-CONTAINMENT both directions are evaluated because the metric
  /// is asymmetric.
  std::vector<PairMatch> DiscoverSelf(SearchStats* stats = nullptr) const;

 private:
  std::vector<PairMatch> DiscoverImpl(const Collection& refs, bool self_join,
                                      SearchStats* stats) const;

  const Collection* data_;
  Options options_;
  InvertedIndex index_;
  std::string error_;
};

}  // namespace silkmoth

#endif  // SILKMOTH_CORE_ENGINE_H_
