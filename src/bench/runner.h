#ifndef SILKMOTH_BENCH_RUNNER_H_
#define SILKMOTH_BENCH_RUNNER_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "bench/histogram.h"
#include "bench/workload.h"
#include "core/stats.h"

namespace silkmoth::bench {

/// Everything one workload run produces. Fields split into two groups, and
/// the BENCH_<name>.json emitter (bench/bench_json.h) keeps them apart:
///
///  - **deterministic** fields depend only on (spec, seeds): corpus shape,
///    the request-stream hash, pairs per round, and the funnel counters of
///    exactly one full pass over the request stream. Two same-spec runs —
///    any worker count, any machine — produce identical values; the
///    contract test diffs them.
///  - **timing** fields (wall clock, throughput, the latency histogram,
///    peak RSS, completed request counts) vary run to run; the JSON nests
///    them all under one "timing" object so they strip mechanically.
struct BenchResult {
  WorkloadSpec spec;  ///< The spec actually run (after CLI overrides).

  // Deterministic.
  size_t corpus_sets = 0;      ///< Sets in the synthesized corpus.
  size_t corpus_elements = 0;  ///< Elements across all sets.
  size_t corpus_tokens = 0;    ///< Distinct tokens in the dictionary
                               ///< (before the request pool interned).
  uint64_t request_stream_hash = 0;  ///< HashRequestStream of the stream.
  size_t pool_oov_tokens = 0;  ///< OOV tokens of the request pool (0: the
                               ///< pool is drawn from the corpus itself).
  size_t pairs_per_round = 0;  ///< Related pairs one full pass reports.
  ShardedSearchStats funnel;   ///< Funnel counters of one full pass (round
                               ///< 0); later sustained rounds repeat the
                               ///< identical work uncounted. Dynamic-corpus
                               ///< specs carry one extra trailing slot: the
                               ///< delta shard.

  // Deterministic, dynamic-corpus lane only (spec.delta_sets > 0; all zero
  // otherwise). The ingested-set count, the distinct tokens the ingest
  // interned that the base dictionary lacked, and the pairs one full
  // uncounted pass over the base shards alone reports — what the stream
  // answered before the delta arrived.
  size_t delta_sets = 0;         ///< Sets the timed ingest appended.
  size_t delta_oov_tokens = 0;   ///< Tokens the ingest interned as new.
  size_t pairs_pre_ingest = 0;   ///< Pairs of the base-only pass.

  // Timing.
  double build_seconds = 0.0;      ///< Corpus synth + tokenize + index.
  double ingest_seconds = 0.0;     ///< The timed delta ingest (delta lane).
  double pre_ingest_seconds = 0.0; ///< The base-only pass (delta lane).
  double run_seconds = 0.0;        ///< Request-serving wall clock.
  size_t completed_requests = 0;   ///< All rounds, all workers.
  double requests_per_second = 0;  ///< completed_requests / run_seconds.
  LatencyHistogram latency;        ///< Per-request latency, nanoseconds.
  uint64_t peak_rss_bytes = 0;     ///< ru_maxrss at the end of the run.

  // Serve-lane counters (specs with serve == true; all zero otherwise).
  // Admitted/served scale with the nondeterministic sustained round count,
  // so they live in the timing group. A bench run sizes admission so
  // nothing sheds and no deadline fires — nonzero shed/deadline/fault
  // counters in a report mean the run itself misbehaved.
  uint64_t serve_requests_admitted = 0;  ///< Queries past admission.
  uint64_t serve_requests_shed = 0;      ///< OVERLOADED responses.
  uint64_t serve_requests_served = 0;    ///< Worker-produced responses.
  uint64_t serve_deadline_exceeded = 0;  ///< Partial-coverage responses.
  uint64_t serve_worker_faults = 0;      ///< Injected worker failures.
};

/// Runs `spec` end to end: synthesize the corpus, build the sharded engine,
/// generate the request stream, drive it closed-loop or sustained with
/// spec.workers client threads, and fill `*out`. Returns "" on success or a
/// human-readable error (invalid options, empty corpus).
///
/// Execution contract: requests are external ReferenceBlocks served through
/// ShardedEngine::Discover — the same DiscoverAcrossShards driver every
/// other discovery mode uses — each request single-threaded
/// (options.num_threads is forced to 1), concurrency supplied by `workers`
/// closed-loop clients over disjoint slices of the pre-generated stream.
/// Specs with `top_k > 0` serve each reference through the single-index
/// SilkMoth::SearchTopK instead (the floating-floor pass; requires
/// num_shards == 1) with the same slicing and round-0 counting rules.
/// Specs with `serve == true` drive an in-process serve::ServeEngine over
/// its frame protocol instead: the corpus is packed into a Snapshot, each
/// request is a WriteRawSets payload submitted as a kQuery frame, and the
/// closed-loop clients block on the response — so the measured path is
/// admission + worker lanes + per-request tokenization, exactly what the
/// `serve` subcommand runs. Round 0 is a barriered full pass (funnel
/// snapshot taken before any sustained re-issue), keeping the same
/// deterministic-field contract as the direct lanes.
/// Specs with `delta_sets > 0` run the dynamic-corpus lane: the base
/// engine indexes all but the last delta_sets corpus sets, a single
/// uncounted pass over the base shards records pairs_pre_ingest, the
/// withheld tail is then ingested through one timed DeltaShard batch, and
/// the counted round 0 (plus any sustained rounds) streams through base
/// shards + the delta view — so the funnel gains one trailing delta slot
/// and the deterministic fields match a from-scratch build of the full
/// corpus by the delta parity contract (tests/delta_parity_property_test).
std::string RunWorkload(const WorkloadSpec& spec, BenchResult* out);

/// Current process peak RSS in bytes (getrusage), 0 where unsupported.
uint64_t PeakRssBytes();

}  // namespace silkmoth::bench

#endif  // SILKMOTH_BENCH_RUNNER_H_
