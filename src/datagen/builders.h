#ifndef SILKMOTH_DATAGEN_BUILDERS_H_
#define SILKMOTH_DATAGEN_BUILDERS_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/reference_block.h"
#include "text/dataset.h"
#include "text/tokenizer.h"

namespace silkmoth {

/// Raw textual sets: each set is a list of element strings.
using RawSets = std::vector<std::vector<std::string>>;

/// Tokenizes raw sets into a Collection with a fresh dictionary.
/// `kind`/`q` select word tokens (Jaccard) or q-grams+q-chunks (edit
/// similarity). Empty elements are dropped; empty sets are kept (they can
/// never be related to anything, and keeping them preserves set ids).
Collection BuildCollection(const RawSets& raw, TokenizerKind kind, int q = 0);

/// Tokenizes raw sets against an existing dictionary (for reference
/// collections searched against an already-built Collection).
Collection BuildCollectionWithDict(const RawSets& raw, TokenizerKind kind,
                                   int q,
                                   std::shared_ptr<TokenDictionary> dict);

/// Tokenizes a single reference set against `collection`'s dictionary.
SetRecord BuildReference(const std::vector<std::string>& element_texts,
                         TokenizerKind kind, int q, Collection* collection);

/// Deterministic FNV-1a fingerprint of a raw query payload: every element
/// byte, with unit/record separators between elements and sets so
/// reshuffling content across boundaries changes the hash. The shard-result
/// protocol records it to refuse merging shard streams produced against
/// different query payloads; identical only for byte-identical payloads.
uint64_t HashRawSets(const RawSets& raw);

/// Tokenizes `raw` against `corpus`'s dictionary into `*query` and returns
/// the external ReferenceBlock over it, with `content_hash = HashRawSets(raw)`
/// and `oov_tokens` = distinct tokens interned that the corpus dictionary
/// did not already contain (they get fresh ids past the corpus indexes'
/// range, so they probe empty inverted lists — present in |R|, absent from
/// every candidate). The returned block borrows `*query`, which the caller
/// owns and must keep alive for every discovery run using the block.
///
/// Interning mutates the shared dictionary, so build query blocks *before*
/// starting concurrent queries against the corpus — the same single-writer
/// rule BuildReference already lives under.
ReferenceBlock BuildQueryBlock(const RawSets& raw, TokenizerKind kind, int q,
                               const Collection& corpus, Collection* query);

}  // namespace silkmoth

#endif  // SILKMOTH_DATAGEN_BUILDERS_H_
