// ShardedEngine properties, on randomized corpora:
//
//  1. Parity: sharded discovery (self-join and cross-collection) and search
//     return *identical* PairMatch/SearchMatch sets — ids and scores — to
//     the single-index engine, across metrics (similarity/containment),
//     similarity functions (Jaccard/Eds), shard counts, and thread counts.
//     Identity is exact (operator==), not within-tolerance: verification
//     only ever sees the (reference, set) records, so scores cannot depend
//     on how the index was partitioned.
//  2. Shard layout: the shard ranges are contiguous, disjoint, ascending,
//     and cover exactly [0, num_sets) — including the shards > sets edge
//     case, where trailing shards are empty.
//  3. Stats: per-shard SearchStats record the passes against that shard
//     only; empty shards record nothing; Total() equals the slot-wise sum;
//     per-shard `results` sum to the unsharded pass results.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/engine.h"
#include "core/sharded_engine.h"
#include "datagen/builders.h"
#include "datagen/dblp.h"

namespace silkmoth {
namespace {

struct ShardedCase {
  const char* name;
  Relatedness metric;
  SimilarityKind phi;
  double delta;
  double alpha;
};

Options MakeOptions(const ShardedCase& cfg) {
  Options opt;
  opt.metric = cfg.metric;
  opt.phi = cfg.phi;
  opt.delta = cfg.delta;
  opt.alpha = cfg.alpha;
  if (IsEditSimilarity(cfg.phi)) opt.q = MaxQForAlpha(cfg.alpha);
  return opt;
}

Collection MakeData(const ShardedCase& cfg, size_t sets, uint64_t seed) {
  DblpParams p;
  p.num_titles = sets;
  p.vocabulary = 60;
  p.min_words = 2;
  p.max_words = 6;
  p.duplicate_rate = 0.35;
  p.typo_rate = 0.3;
  p.seed = seed;
  const Options opt = MakeOptions(cfg);
  if (IsEditSimilarity(cfg.phi)) {
    return BuildCollection(GenerateDblpSets(p), TokenizerKind::kQGram,
                           opt.EffectiveQ());
  }
  return BuildCollection(GenerateDblpSets(p), TokenizerKind::kWord);
}

class ShardedEngineSweep : public ::testing::TestWithParam<ShardedCase> {};

TEST_P(ShardedEngineSweep, DiscoverSelfMatchesUnshardedExactly) {
  const ShardedCase cfg = GetParam();
  const Options base = MakeOptions(cfg);
  Collection data = MakeData(cfg, 40, /*seed=*/11);

  SilkMoth single(&data, base);
  ASSERT_TRUE(single.ok()) << single.error();
  const std::vector<PairMatch> expected = single.DiscoverSelf();
  ASSERT_FALSE(expected.empty()) << cfg.name
      << ": corpus produced no related pairs to compare";

  for (int shards : {1, 2, 3, 7, 16}) {
    for (int threads : {1, 3}) {
      Options opt = base;
      opt.num_shards = shards;
      opt.num_threads = threads;
      ShardedEngine engine(&data, opt);
      ASSERT_TRUE(engine.ok()) << engine.error();
      EXPECT_EQ(engine.DiscoverSelf(), expected)
          << cfg.name << ": shards=" << shards << " threads=" << threads;
    }
  }
}

TEST_P(ShardedEngineSweep, CrossCollectionDiscoverMatchesUnshardedExactly) {
  const ShardedCase cfg = GetParam();
  const Options base = MakeOptions(cfg);
  Collection data = MakeData(cfg, 32, /*seed=*/21);

  DblpParams p;
  p.num_titles = 12;
  p.vocabulary = 60;
  p.min_words = 2;
  p.max_words = 6;
  p.duplicate_rate = 0.35;
  p.typo_rate = 0.3;
  p.seed = 22;  // Overlapping vocabulary, fresh draws.
  const Collection refs =
      IsEditSimilarity(cfg.phi)
          ? BuildCollectionWithDict(GenerateDblpSets(p), TokenizerKind::kQGram,
                                    base.EffectiveQ(), data.dict)
          : BuildCollectionWithDict(GenerateDblpSets(p), TokenizerKind::kWord,
                                    0, data.dict);

  SilkMoth single(&data, base);
  ASSERT_TRUE(single.ok()) << single.error();
  const std::vector<PairMatch> expected = single.Discover(refs);

  for (int shards : {2, 5}) {
    Options opt = base;
    opt.num_shards = shards;
    opt.num_threads = 2;
    ShardedEngine engine(&data, opt);
    ASSERT_TRUE(engine.ok()) << engine.error();
    EXPECT_EQ(engine.Discover(refs), expected)
        << cfg.name << ": shards=" << shards;
  }
}

TEST_P(ShardedEngineSweep, SearchMatchesUnshardedExactly) {
  const ShardedCase cfg = GetParam();
  const Options base = MakeOptions(cfg);
  Collection data = MakeData(cfg, 30, /*seed=*/31);

  SilkMoth single(&data, base);
  ASSERT_TRUE(single.ok()) << single.error();

  Options opt = base;
  opt.num_shards = 4;
  ShardedEngine engine(&data, opt);
  ASSERT_TRUE(engine.ok()) << engine.error();

  size_t matched = 0;
  for (const SetRecord& ref : data.sets) {
    const std::vector<SearchMatch> expected = single.Search(ref);
    EXPECT_EQ(engine.Search(ref), expected) << cfg.name;
    matched += expected.size();
  }
  EXPECT_GT(matched, 0u) << cfg.name;
}

INSTANTIATE_TEST_SUITE_P(
    Workloads, ShardedEngineSweep,
    ::testing::Values(
        ShardedCase{"similarity_jaccard", Relatedness::kSimilarity,
                    SimilarityKind::kJaccard, 0.6, 0.4},
        ShardedCase{"containment_jaccard", Relatedness::kContainment,
                    SimilarityKind::kJaccard, 0.7, 0.0},
        ShardedCase{"similarity_eds", Relatedness::kSimilarity,
                    SimilarityKind::kEds, 0.5, 0.6}),
    [](const ::testing::TestParamInfo<ShardedCase>& info) {
      return info.param.name;
    });

// --- Shard layout edge cases -----------------------------------------------

TEST(ShardedEngineLayout, RangesPartitionTheCollection) {
  const ShardedCase cfg{"similarity_jaccard", Relatedness::kSimilarity,
                        SimilarityKind::kJaccard, 0.6, 0.0};
  Collection data = MakeData(cfg, 23, /*seed=*/41);
  for (int shards : {1, 2, 5, 23, 64}) {
    Options opt = MakeOptions(cfg);
    opt.num_shards = shards;
    ShardedEngine engine(&data, opt);
    ASSERT_TRUE(engine.ok()) << engine.error();
    ASSERT_EQ(engine.num_shards(), static_cast<size_t>(shards));

    uint32_t cursor = 0;
    size_t postings = 0;
    for (size_t s = 0; s < engine.num_shards(); ++s) {
      const SetIdRange range = engine.shard_range(s);
      EXPECT_EQ(range.begin, cursor) << "shards=" << shards << " s=" << s;
      EXPECT_LE(range.begin, range.end);
      cursor = range.end;
      postings += engine.shard_index(s).TotalPostings();
      // An empty shard must carry an empty index.
      if (range.begin == range.end) {
        EXPECT_EQ(engine.shard_index(s).TotalPostings(), 0u);
      }
    }
    EXPECT_EQ(cursor, data.sets.size()) << "shards=" << shards;

    // The shard indexes together hold exactly the full index's postings.
    InvertedIndex full;
    full.Build(data);
    EXPECT_EQ(postings, full.TotalPostings()) << "shards=" << shards;
  }
}

TEST(ShardedEngineLayout, MoreShardsThanSetsStillExact) {
  const ShardedCase cfg{"similarity_jaccard", Relatedness::kSimilarity,
                        SimilarityKind::kJaccard, 0.6, 0.0};
  Collection data = MakeData(cfg, 10, /*seed=*/43);

  SilkMoth single(&data, MakeOptions(cfg));
  ASSERT_TRUE(single.ok());

  Options opt = MakeOptions(cfg);
  opt.num_shards = 64;
  opt.num_threads = 2;
  ShardedEngine engine(&data, opt);
  ASSERT_TRUE(engine.ok()) << engine.error();
  EXPECT_EQ(engine.DiscoverSelf(), single.DiscoverSelf());
}

TEST(ShardedEngineLayout, EmptyCollection) {
  Collection data;
  Options opt;
  opt.num_shards = 4;
  ShardedEngine engine(&data, opt);
  ASSERT_TRUE(engine.ok()) << engine.error();
  EXPECT_TRUE(engine.DiscoverSelf().empty());
  for (size_t s = 0; s < engine.num_shards(); ++s) {
    const SetIdRange range = engine.shard_range(s);
    EXPECT_EQ(range.begin, range.end);
  }
}

TEST(ShardedEngineLayout, InvalidShardCountRejected) {
  Collection data;
  Options opt;
  opt.num_shards = 0;
  ShardedEngine engine(&data, opt);
  EXPECT_FALSE(engine.ok());
  EXPECT_NE(engine.error().find("num_shards"), std::string::npos);
  EXPECT_TRUE(engine.DiscoverSelf().empty());
}

// --- Per-shard stats aggregation -------------------------------------------

TEST(ShardedEngineStats, PerShardCountersAggregateToGlobal) {
  const ShardedCase cfg{"similarity_jaccard", Relatedness::kSimilarity,
                        SimilarityKind::kJaccard, 0.6, 0.4};
  Collection data = MakeData(cfg, 30, /*seed=*/51);

  Options opt = MakeOptions(cfg);
  opt.num_shards = 4;
  opt.num_threads = 3;
  ShardedEngine engine(&data, opt);
  ASSERT_TRUE(engine.ok()) << engine.error();

  ShardedSearchStats stats;
  engine.DiscoverSelf(&stats);
  ASSERT_EQ(stats.per_shard.size(), 4u);

  // Every non-empty shard sees every (non-empty) reference exactly once.
  size_t non_empty_refs = 0;
  for (const SetRecord& ref : data.sets) {
    if (!ref.Empty()) ++non_empty_refs;
  }
  for (size_t s = 0; s < stats.per_shard.size(); ++s) {
    const SetIdRange range = engine.shard_range(s);
    if (range.begin == range.end) {
      EXPECT_EQ(stats.per_shard[s].references, 0u) << "empty shard " << s;
    } else {
      EXPECT_EQ(stats.per_shard[s].references, non_empty_refs)
          << "shard " << s;
    }
  }

  // Total() is the slot-wise sum.
  SearchStats manual;
  for (const SearchStats& s : stats.per_shard) manual.Merge(s);
  const SearchStats total = stats.Total();
  EXPECT_EQ(total.references, manual.references);
  EXPECT_EQ(total.verifications, manual.verifications);
  EXPECT_EQ(total.results, manual.results);
  EXPECT_EQ(total.initial_candidates, manual.initial_candidates);

  // Shards never overlap, so result counts (pre-dedup search-pass results)
  // sum to exactly what the single-index engine's passes report.
  SilkMoth single(&data, MakeOptions(cfg));
  ASSERT_TRUE(single.ok());
  SearchStats single_stats;
  single.DiscoverSelf(&single_stats);
  EXPECT_EQ(total.results, single_stats.results);

  // The human-readable dump mentions each shard.
  const std::string dump = stats.ToString();
  EXPECT_NE(dump.find("per shard"), std::string::npos);
}

TEST(ShardedEngineStats, MergeIsSlotWise) {
  ShardedSearchStats a, b;
  a.Reset(2);
  b.Reset(2);
  a.per_shard[0].references = 3;
  a.per_shard[1].verifications = 5;
  b.per_shard[0].references = 4;
  b.per_shard[1].verifications = 7;
  a.Merge(b);
  EXPECT_EQ(a.per_shard[0].references, 7u);
  EXPECT_EQ(a.per_shard[1].verifications, 12u);
  EXPECT_EQ(a.Total().references, 7u);
  EXPECT_EQ(a.Total().verifications, 12u);

  // Merging into an empty instance adopts the other's shape.
  ShardedSearchStats c;
  c.Merge(a);
  ASSERT_EQ(c.per_shard.size(), 2u);
  EXPECT_EQ(c.per_shard[0].references, 7u);
}

}  // namespace
}  // namespace silkmoth
