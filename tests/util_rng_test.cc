#include "util/rng.h"

#include <algorithm>
#include <set>
#include <vector>

#include <gtest/gtest.h>

namespace silkmoth {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.Next() == b.Next();
  EXPECT_LT(same, 4);
}

TEST(RngTest, NextBoundedStaysInRange) {
  Rng rng(7);
  for (uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.NextBounded(bound), bound);
  }
}

TEST(RngTest, NextBoundedOneIsAlwaysZero) {
  Rng rng(9);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(rng.NextBounded(1), 0u);
}

TEST(RngTest, NextInRangeInclusive) {
  Rng rng(11);
  std::set<int64_t> seen;
  for (int i = 0; i < 500; ++i) {
    int64_t v = rng.NextInRange(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // All five values hit.
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(13);
  double lo = 1.0, hi = 0.0;
  for (int i = 0; i < 2000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
    lo = std::min(lo, d);
    hi = std::max(hi, d);
  }
  EXPECT_LT(lo, 0.05);
  EXPECT_GT(hi, 0.95);
}

TEST(RngTest, NextBoolExtremes) {
  Rng rng(17);
  for (int i = 0; i < 20; ++i) {
    EXPECT_FALSE(rng.NextBool(0.0));
    EXPECT_TRUE(rng.NextBool(1.0));
  }
}

TEST(RngTest, NextBoolRoughProbability) {
  Rng rng(19);
  int hits = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) hits += rng.NextBool(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.03);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(23);
  std::vector<int> v(50);
  for (int i = 0; i < 50; ++i) v[static_cast<size_t>(i)] = i;
  std::vector<int> shuffled = v;
  rng.Shuffle(&shuffled);
  EXPECT_NE(shuffled, v);  // Overwhelmingly likely.
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(RngTest, ShuffleEmptyAndSingle) {
  Rng rng(29);
  std::vector<int> empty;
  rng.Shuffle(&empty);
  EXPECT_TRUE(empty.empty());
  std::vector<int> one = {42};
  rng.Shuffle(&one);
  EXPECT_EQ(one, std::vector<int>{42});
}

TEST(RngTest, SplitProducesIndependentStream) {
  Rng parent(31);
  Rng child = parent.Split();
  // Child differs from a fresh parent-seeded generator.
  Rng fresh(31);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += child.Next() == fresh.Next();
  EXPECT_LT(same, 4);
}

}  // namespace
}  // namespace silkmoth
