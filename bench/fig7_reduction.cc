// Figure 7 reproduction: reduction-based verification on the inclusion
// dependency application (Section 8.4). α = 0 (the reduction's legality
// condition), reference sets restricted to columns with >= 100 elements so
// the O(n^3) matching dominates, DICHOTOMY + NEARESTNEIGHBOR otherwise.
//
// Expected shape (paper): REDUCTION is ~30-50% faster than NOREDUCTION at
// every θ.

#include <iostream>

#include "bench_common.h"

int main() {
  using namespace silkmoth;
  using namespace silkmoth::bench;

  PrintHeader("Figure 7", "reduction-based verification (alpha=0)");

  const double kDeltas[] = {0.7, 0.75, 0.8, 0.85};

  // Large columns: >= 100 elements per set, as in the paper's setup.
  Workload base = InclusionDependencyWorkload(
      Scaled(600), Scaled(15), /*delta=*/0.7, /*alpha=*/0.0,
      /*min_elements=*/100, /*max_elements=*/140);

  TablePrinter table({"theta(delta)", "mode", "time(s)", "reduced_pairs",
                      "results"});
  for (double delta : kDeltas) {
    for (bool reduction : {false, true}) {
      Workload w = base;
      w.options.delta = delta;
      w.options.reduction = reduction;
      const RunResult r = RunSilkMoth(w);
      table.AddRow({TablePrinter::Num(delta, 2),
                    reduction ? "REDUCTION" : "NOREDUCTION",
                    TablePrinter::Num(r.seconds, 3),
                    TablePrinter::Int(
                        static_cast<long long>(r.stats.reduced_pairs)),
                    TablePrinter::Int(static_cast<long long>(r.results))});
    }
  }
  table.Print(std::cout);
  return 0;
}
