#ifndef SILKMOTH_UTIL_ATOMIC_FILE_WRITER_H_
#define SILKMOTH_UTIL_ATOMIC_FILE_WRITER_H_

#include <cstddef>
#include <string>
#include <string_view>

namespace silkmoth {

/// Crash-safe file publication, in one audited place: bytes are staged to a
/// "<path>.tmp" sibling and renamed into place on Commit(), so a crash at
/// any point leaves either the previous file or nothing at `path` — never a
/// torn write. Snapshot saves (monolithic and split), split shard files,
/// and shard-result files all publish through this class.
///
/// Lifecycle: Open() → Write()* → either Commit() (stage + rename in one
/// step) or Stage() now + Commit() later (multi-file saves stage every
/// file before renaming any, shrinking the mixed-generation crash window
/// to the renames). Destruction or Abort() before Commit() removes the
/// staged file. All writes loop on partial transfers and retry EINTR —
/// a short write is continued, never silently dropped.
///
/// `fault_site`, when non-null, names a fault-injection site consulted at
/// Commit() (see util/fault_injection.h): `fail` turns the commit into an
/// error, `torn:<keep>` truncates the staged bytes to `keep` before
/// publishing, `corrupt:<offset>` flips a byte at `offset` — the
/// deterministic stand-ins for crashed, torn, and bit-rotted writes that
/// the orchestrator tests exercise.
class AtomicFileWriter {
 public:
  /// Prepares a writer that will publish to `path`. No I/O yet.
  explicit AtomicFileWriter(std::string path,
                            const char* fault_site = nullptr);
  /// Removes the staged file if Commit() never happened.
  ~AtomicFileWriter();

  AtomicFileWriter(const AtomicFileWriter&) = delete;
  AtomicFileWriter& operator=(const AtomicFileWriter&) = delete;

  /// Opens (truncating) the ".tmp" staging sibling. Returns "" on success,
  /// else a one-line error.
  std::string Open();

  /// Appends `len` bytes, looping on short writes and EINTR. Returns "" on
  /// success, else a one-line error (the staged file is removed).
  std::string Write(const void* data, size_t len);

  /// Appends a string view; same contract as the raw overload.
  std::string Write(std::string_view text);

  /// Flushes and closes the staged file without publishing it, so a
  /// multi-file save can stage everything first. Returns "" on success.
  std::string Stage();

  /// Publishes: stages (if not already staged), applies any armed
  /// `fault_site` outcome, and renames the staged file onto `path`.
  /// Returns "" on success, else a one-line error.
  std::string Commit();

  /// Drops the staged file (no-op after Commit() or before Open()).
  void Abort();

  /// The ".tmp" staging path this writer uses.
  const std::string& staging_path() const { return tmp_path_; }

 private:
  std::string path_;
  std::string tmp_path_;
  std::string fault_site_;
  int fd_ = -1;          // POSIX descriptor, or -1.
  void* file_ = nullptr; // stdio fallback handle (std::FILE*).
  bool staged_ = false;
  bool committed_ = false;
};

/// Reads the whole file at `path` into `*out`, looping on short reads and
/// EINTR. Returns "" on success, else a one-line error beginning with
/// "cannot open" when the file is missing; on failure `*out` is untouched.
/// `fault_site`, when non-null, is consulted once per call — `fail` turns
/// the read into an injected error.
std::string ReadFileToString(const std::string& path, std::string* out,
                             const char* fault_site = nullptr);

}  // namespace silkmoth

#endif  // SILKMOTH_UTIL_ATOMIC_FILE_WRITER_H_
