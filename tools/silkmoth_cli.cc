// silkmoth_cli: run RELATED SET SEARCH / DISCOVERY over plain-text files,
// in one process or split across processes via binary snapshots.
//
// Input format (see src/datagen/io.h): one element per line, blank line
// between sets, leading '#' comment lines allowed.
//
// Single-process:
//   silkmoth_cli discover --data sets.txt [options]
//   silkmoth_cli search   --data sets.txt --query query.txt [options]
//
// Query-vs-corpus over a prebuilt snapshot (cross-collection discovery:
// every query set against every corpus set, zero re-tokenization of the
// corpus):
//   silkmoth_cli query --snapshot corpus.snap --input queries.txt [options]
//
// Out-of-process sharding (see docs/ARCHITECTURE.md, "Snapshot format &
// process protocol"): build once, run each shard anywhere, merge streams —
// byte-identical output to the in-process run (`discover --shards N`, or
// `query` when shard-run gets --query). With --split the build writes a
// common file plus one file per shard, and each shard-run maps only common
// + its own shard (startup cost scales with the shard, not the corpus):
//   silkmoth_cli build     --data sets.txt --out corpus.snap --shards N
//                          [--split]
//   silkmoth_cli shard-run --snapshot corpus.snap --shard K --out rK.txt
//                          [--query queries.txt]
//   silkmoth_cli merge     r0.txt r1.txt ... [--stats] [--allow-partial]
//
// Dynamic corpora (see docs/ARCHITECTURE.md, "Dynamic corpora"): a snapshot
// stays write-once, but new sets accumulate in a plain-text *delta file*
// that ingest appends to and every read mode replays as an in-memory delta
// shard (global set ids continuing past the base range). compact merges
// base + delta into a next-generation snapshot (atomic publish, generation
// counter bumped); discovery over base + delta is byte-identical to
// discovery over the compacted snapshot:
//   silkmoth_cli ingest   --snapshot corpus.snap --input new.txt
//                         --delta-out delta.txt
//   silkmoth_cli discover --snapshot corpus.snap [--delta-file delta.txt]
//   silkmoth_cli query    --snapshot corpus.snap --input q.txt
//                         [--delta-file delta.txt]
//   silkmoth_cli compact  --snapshot corpus.snap --delta-file delta.txt
//                         --out next.snap [--shards N] [--split]
//
// Supervised end-to-end pipeline (build + one supervised shard-run process
// per shard + merge, with per-shard deadlines, retries with capped
// exponential backoff, and an optional degraded partial merge — see
// docs/ARCHITECTURE.md, "Supervised orchestration & failure model"):
//   silkmoth_cli run --data sets.txt --shards N [--jobs J] [--retries R]
//                    [--shard-deadline S] [--allow-partial]
//                    [--report run.json] [--query queries.txt]
//
// Resident serving (see docs/ARCHITECTURE.md, "Serving data path" and
// docs/CLI.md, "serve"): a long-lived daemon mmaps a snapshot once and
// answers query payloads over a length-prefixed frame protocol — bounded
// admission queues with explicit OVERLOADED shedding, per-request
// deadlines with stamped partial coverage, and SIGHUP snapshot hot-swap.
// Non-shed, non-deadline responses are byte-identical to
// `query --snapshot` output:
//   silkmoth_cli serve --snapshot corpus.snap --listen SOCK | --stdio
//                      [--workers N] [--max-queue N] [--max-inflight B]
//                      [--max-frame B] [--request-deadline S]
//   silkmoth_cli serve-client --connect SOCK
//                      (--ping | --shutdown | --input queries.txt)
//
// Named-workload benchmarks (see docs/WORKLOADS.md for the registry and
// docs/CLI.md for the BENCH_*.json schema): every scenario is declarative
// and seeded, so everything outside the report's "timing" key is
// reproducible bit for bit:
//   silkmoth_cli bench --list
//   silkmoth_cli bench --workload schema-sim-zipf [--json BENCH.json]
//                      [--requests N] [--batch N] [--workers N]
//                      [--duration S] [--seed N] [--shards N] [--stats]
//
// See docs/CLI.md for the complete reference (every flag, exit codes, file
// formats) and a copy-pasteable build→query walkthrough.
//
// Options:
//   --metric similarity|containment   (default similarity)
//   --phi jaccard|eds|neds            (default jaccard)
//   --delta <0..1]                    (default 0.7)
//   --alpha [0..1)                    (default 0)
//   --q <int>                         (edit similarity; default from alpha)
//   --scheme weighted|unweighted|skyline|dichotomy   (default dichotomy)
//   --threads <n>                     (default 1)
//   --shards <n>                      (default 1; >= 2 uses ShardedEngine)
//   --stats                           (print phase statistics; per-shard
//                                      breakdown when sharded)
//   --split                           (build: per-shard snapshot files)
//   --copy-load                       (query/shard-run: deep-copy load
//                                      instead of the default zero-copy
//                                      mmap)
//   --approx-scores                   (report greedy lower bounds for
//                                      bound-accepted pairs; skips their
//                                      reporting solve)
//   --generate dblp|schema|columns N  (write a synthetic dataset instead)

#include <atomic>
#include <cinttypes>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>
#define SILKMOTH_CLI_HAVE_UNISTD 1
#endif

#include "bench/bench_json.h"
#include "bench/runner.h"
#include "bench/workload.h"
#include "core/brute_force.h"
#include "core/engine.h"
#include "core/sharded_engine.h"
#include "datagen/dblp.h"
#include "datagen/io.h"
#include "datagen/webtable.h"
#include "serve/protocol.h"
#include "serve/server.h"
#include "snapshot/compactor.h"
#include "snapshot/delta_shard.h"
#include "snapshot/orchestrator.h"
#include "snapshot/shard_runner.h"
#include "snapshot/snapshot.h"
#include "util/atomic_file_writer.h"
#include "util/exit_codes.h"
#include "util/fault_injection.h"
#include "util/timer.h"

namespace {

using namespace silkmoth;

int Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s discover --data FILE | --snapshot SNAPSHOT "
      "[--delta-file FILE] [options]\n"
      "       %s search --data FILE --query FILE [options]\n"
      "       %s query --snapshot SNAPSHOT --input FILE "
      "[--delta-file FILE] [options]\n"
      "       %s build --data FILE --out SNAPSHOT [--shards N] [options]\n"
      "       %s ingest --snapshot SNAPSHOT --input FILE --delta-out FILE\n"
      "       %s compact --snapshot SNAPSHOT --out SNAPSHOT "
      "[--delta-file FILE] [--shards N] [--split]\n"
      "       %s shard-run --snapshot SNAPSHOT --shard K --out RESULT "
      "[--query FILE] [options]\n"
      "       %s merge RESULT... [--stats] [--allow-partial]\n"
      "       %s run --data FILE [--query FILE] [options]\n"
      "       %s serve --snapshot SNAPSHOT --listen SOCK|--stdio [options]\n"
      "       %s serve-client --connect SOCK --ping|--shutdown|--input "
      "FILE|--ingest FILE\n"
      "       %s bench --list | --workload NAME [--json FILE] [options]\n"
      "       %s generate dblp|schema|columns N OUT\n"
      "options: --metric similarity|containment --phi jaccard|eds|neds\n"
      "         --delta D --alpha A --q Q --scheme "
      "weighted|unweighted|skyline|dichotomy\n"
      "         --threads N --shards N --stats --oracle-check\n"
      "         --split --copy-load --approx-scores\n"
      "search:  --top-k K (K best matches per query, best-first; "
      "single-index)\n"
      "run:     --jobs N --retries N --shard-deadline S --allow-partial\n"
      "         --report FILE --workdir DIR --keep-workdir\n"
      "         --backoff-base S --backoff-cap S --backoff-seed N\n"
      "serve:   --workers N --max-queue N --max-inflight BYTES\n"
      "         --max-frame BYTES --request-deadline S\n"
      "bench:   --requests N --batch N --workers N --duration S --seed N\n"
      "see docs/CLI.md for the full reference (incl. the exit-code table)\n",
      argv0, argv0, argv0, argv0, argv0, argv0, argv0, argv0, argv0, argv0,
      argv0, argv0, argv0);
  return ExitCode(CliExit::kUsage);
}

/// Everything the subcommands parse from the command line. Positional
/// arguments (merge's result files) land in `inputs`.
struct CliArgs {
  Options opt;
  std::string data_path;
  std::string query_path;
  std::string out_path;
  std::string snapshot_path;
  long shard = -1;
  bool stats = false;
  bool oracle_check = false;
  bool split = false;
  bool copy_load = false;
  // `run` supervision policy (defaults mirror OrchestratorOptions).
  long jobs = 0;
  long retries = 2;
  double shard_deadline = 0.0;
  double backoff_base = 0.05;
  double backoff_cap = 2.0;
  unsigned long long backoff_seed = 0;
  bool allow_partial = false;
  bool keep_workdir = false;
  std::string report_path;
  std::string workdir;
  std::vector<FaultPlan> injections;
  std::vector<std::string> inputs;
  // `bench` subcommand: workload selection plus spec overrides (-1 means
  // "keep the registry value"). shards_set distinguishes an explicit
  // --shards from the option default, which must not clobber a workload's
  // own shard count.
  std::string workload;
  std::string json_path;
  bool list_workloads = false;
  bool shards_set = false;
  long bench_requests = -1;
  long bench_batch = -1;
  long bench_workers = -1;
  double bench_duration = -1.0;
  long bench_seed = -1;
  // `search` subcommand: 0 means "all matches"; > 0 serves the K best per
  // query through the single-index SearchTopK pass.
  long top_k = 0;
  // `serve` subcommand: transport selection + admission/deadline policy
  // (docs/CLI.md, "serve"). --workers reuses bench_workers above.
  std::string listen_path;
  bool stdio = false;
  long max_queue = 64;
  long max_inflight = 64 << 20;
  long max_frame = static_cast<long>(serve::kDefaultMaxFrameBytes);
  double request_deadline = 0.0;
  // `serve-client` subcommand: where to connect and which single frame to
  // send (--input reuses query_path for the query payload).
  std::string connect_path;
  bool ping = false;
  bool shutdown_frame = false;
  // Dynamic corpora: the delta file ingest appends to (--delta-out) and
  // the delta file read modes replay (--delta-file). serve-client's
  // --ingest sends FILE as a kIngest frame.
  std::string delta_out_path;
  std::string delta_file_path;
  std::string ingest_path;
};

/// strtol with full-string validation; false (and a stderr line) on junk.
bool ParseLong(const char* flag, const char* v, long* out) {
  char* end = nullptr;
  *out = std::strtol(v, &end, 10);
  if (end == v || *end != '\0') {
    std::fprintf(stderr, "invalid %s value: %s\n", flag, v);
    return false;
  }
  return true;
}

/// strtod with full-string validation; false (and a stderr line) on junk.
bool ParseDouble(const char* flag, const char* v, double* out) {
  char* end = nullptr;
  *out = std::strtod(v, &end);
  if (end == v || *end != '\0') {
    std::fprintf(stderr, "invalid %s value: %s\n", flag, v);
    return false;
  }
  return true;
}

bool ParseArgs(int argc, char** argv, int start, CliArgs* args) {
  for (int i = start; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--data") {
      const char* v = next();
      if (v == nullptr) return false;
      args->data_path = v;
    } else if (arg == "--query" || arg == "--input") {
      // --query FILE (search, shard-run) and --input FILE (query) are the
      // same thing: the reference payload streamed against the corpus.
      const char* v = next();
      if (v == nullptr) return false;
      args->query_path = v;
    } else if (arg == "--out") {
      const char* v = next();
      if (v == nullptr) return false;
      args->out_path = v;
    } else if (arg == "--snapshot") {
      const char* v = next();
      if (v == nullptr) return false;
      args->snapshot_path = v;
    } else if (arg == "--shard") {
      const char* v = next();
      if (v == nullptr || !ParseLong("--shard", v, &args->shard)) return false;
    } else if (arg == "--jobs") {
      const char* v = next();
      if (v == nullptr || !ParseLong("--jobs", v, &args->jobs)) return false;
    } else if (arg == "--retries") {
      const char* v = next();
      if (v == nullptr || !ParseLong("--retries", v, &args->retries)) {
        return false;
      }
    } else if (arg == "--shard-deadline") {
      const char* v = next();
      if (v == nullptr ||
          !ParseDouble("--shard-deadline", v, &args->shard_deadline)) {
        return false;
      }
    } else if (arg == "--backoff-base") {
      const char* v = next();
      if (v == nullptr ||
          !ParseDouble("--backoff-base", v, &args->backoff_base)) {
        return false;
      }
    } else if (arg == "--backoff-cap") {
      const char* v = next();
      if (v == nullptr ||
          !ParseDouble("--backoff-cap", v, &args->backoff_cap)) {
        return false;
      }
    } else if (arg == "--backoff-seed") {
      const char* v = next();
      if (v == nullptr) return false;
      long seed = 0;
      if (!ParseLong("--backoff-seed", v, &seed)) return false;
      args->backoff_seed = static_cast<unsigned long long>(seed);
    } else if (arg == "--allow-partial") {
      args->allow_partial = true;
    } else if (arg == "--report") {
      const char* v = next();
      if (v == nullptr) return false;
      args->report_path = v;
    } else if (arg == "--workdir") {
      const char* v = next();
      if (v == nullptr) return false;
      args->workdir = v;
    } else if (arg == "--keep-workdir") {
      args->keep_workdir = true;
    } else if (arg == "--inject") {
      // Hidden, test-only: arm a SILKMOTH_FAULT spec in one worker attempt
      // (see src/snapshot/orchestrator.h, FaultPlan). Repeatable.
      const char* v = next();
      if (v == nullptr) return false;
      FaultPlan plan;
      const std::string perr = ParseFaultPlan(v, &plan);
      if (!perr.empty()) {
        std::fprintf(stderr, "invalid --inject value: %s\n", perr.c_str());
        return false;
      }
      args->injections.push_back(plan);
    } else if (arg == "--metric") {
      const char* v = next();
      if (v == nullptr) return false;
      if (std::strcmp(v, "similarity") == 0) {
        args->opt.metric = Relatedness::kSimilarity;
      } else if (std::strcmp(v, "containment") == 0) {
        args->opt.metric = Relatedness::kContainment;
      } else {
        return false;
      }
    } else if (arg == "--phi") {
      const char* v = next();
      if (v == nullptr) return false;
      if (std::strcmp(v, "jaccard") == 0) {
        args->opt.phi = SimilarityKind::kJaccard;
      } else if (std::strcmp(v, "eds") == 0) {
        args->opt.phi = SimilarityKind::kEds;
      } else if (std::strcmp(v, "neds") == 0) {
        args->opt.phi = SimilarityKind::kNeds;
      } else {
        return false;
      }
    } else if (arg == "--delta") {
      const char* v = next();
      if (v == nullptr) return false;
      args->opt.delta = std::atof(v);
    } else if (arg == "--alpha") {
      const char* v = next();
      if (v == nullptr) return false;
      args->opt.alpha = std::atof(v);
    } else if (arg == "--q") {
      const char* v = next();
      if (v == nullptr) return false;
      args->opt.q = std::atoi(v);
    } else if (arg == "--scheme") {
      const char* v = next();
      if (v == nullptr) return false;
      if (std::strcmp(v, "weighted") == 0) {
        args->opt.scheme = SignatureSchemeKind::kWeighted;
      } else if (std::strcmp(v, "unweighted") == 0) {
        args->opt.scheme = SignatureSchemeKind::kCombUnweighted;
      } else if (std::strcmp(v, "skyline") == 0) {
        args->opt.scheme = SignatureSchemeKind::kSkyline;
      } else if (std::strcmp(v, "dichotomy") == 0) {
        args->opt.scheme = SignatureSchemeKind::kDichotomy;
      } else {
        return false;
      }
    } else if (arg == "--threads") {
      const char* v = next();
      if (v == nullptr) return false;
      args->opt.num_threads = std::atoi(v);
    } else if (arg == "--shards") {
      const char* v = next();
      if (v == nullptr) return false;
      args->opt.num_shards = std::atoi(v);
      args->shards_set = true;
    } else if (arg == "--workload") {
      const char* v = next();
      if (v == nullptr) return false;
      args->workload = v;
    } else if (arg == "--json") {
      const char* v = next();
      if (v == nullptr) return false;
      args->json_path = v;
    } else if (arg == "--list") {
      args->list_workloads = true;
    } else if (arg == "--requests") {
      const char* v = next();
      if (v == nullptr || !ParseLong("--requests", v, &args->bench_requests)) {
        return false;
      }
    } else if (arg == "--batch") {
      const char* v = next();
      if (v == nullptr || !ParseLong("--batch", v, &args->bench_batch)) {
        return false;
      }
    } else if (arg == "--workers") {
      const char* v = next();
      if (v == nullptr || !ParseLong("--workers", v, &args->bench_workers)) {
        return false;
      }
    } else if (arg == "--duration") {
      const char* v = next();
      if (v == nullptr ||
          !ParseDouble("--duration", v, &args->bench_duration)) {
        return false;
      }
    } else if (arg == "--seed") {
      const char* v = next();
      if (v == nullptr || !ParseLong("--seed", v, &args->bench_seed)) {
        return false;
      }
    } else if (arg == "--top-k") {
      const char* v = next();
      if (v == nullptr || !ParseLong("--top-k", v, &args->top_k)) {
        return false;
      }
      if (args->top_k <= 0) {
        std::fprintf(stderr, "invalid --top-k value: %s (must be > 0)\n", v);
        return false;
      }
    } else if (arg == "--listen") {
      const char* v = next();
      if (v == nullptr) return false;
      args->listen_path = v;
    } else if (arg == "--stdio") {
      args->stdio = true;
    } else if (arg == "--max-queue") {
      const char* v = next();
      if (v == nullptr || !ParseLong("--max-queue", v, &args->max_queue)) {
        return false;
      }
    } else if (arg == "--max-inflight") {
      const char* v = next();
      if (v == nullptr ||
          !ParseLong("--max-inflight", v, &args->max_inflight)) {
        return false;
      }
    } else if (arg == "--max-frame") {
      const char* v = next();
      if (v == nullptr || !ParseLong("--max-frame", v, &args->max_frame)) {
        return false;
      }
    } else if (arg == "--request-deadline") {
      const char* v = next();
      if (v == nullptr ||
          !ParseDouble("--request-deadline", v, &args->request_deadline)) {
        return false;
      }
    } else if (arg == "--connect") {
      const char* v = next();
      if (v == nullptr) return false;
      args->connect_path = v;
    } else if (arg == "--delta-out") {
      const char* v = next();
      if (v == nullptr) return false;
      args->delta_out_path = v;
    } else if (arg == "--delta-file") {
      const char* v = next();
      if (v == nullptr) return false;
      args->delta_file_path = v;
    } else if (arg == "--ingest") {
      const char* v = next();
      if (v == nullptr) return false;
      args->ingest_path = v;
    } else if (arg == "--ping") {
      args->ping = true;
    } else if (arg == "--shutdown") {
      args->shutdown_frame = true;
    } else if (arg == "--stats") {
      args->stats = true;
    } else if (arg == "--oracle-check") {
      args->oracle_check = true;
    } else if (arg == "--split") {
      args->split = true;
    } else if (arg == "--copy-load") {
      args->copy_load = true;
    } else if (arg == "--approx-scores") {
      args->opt.exact_scores = false;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
      return false;
    } else {
      args->inputs.push_back(arg);
    }
  }
  return true;
}

int Generate(int argc, char** argv) {
  if (argc < 5) return Usage(argv[0]);
  const std::string kind = argv[2];
  const size_t n = static_cast<size_t>(std::atoll(argv[3]));
  const std::string out = argv[4];
  RawSets sets;
  if (kind == "dblp") {
    DblpParams p;
    p.num_titles = n;
    sets = GenerateDblpSets(p);
  } else if (kind == "schema") {
    sets = GenerateSchemaSets(SchemaMatchingDefaults(n));
  } else if (kind == "columns") {
    sets = GenerateColumnSets(InclusionDependencyDefaults(n));
  } else {
    return Usage(argv[0]);
  }
  if (!SaveRawSets(sets, out)) {
    std::fprintf(stderr, "cannot write %s\n", out.c_str());
    return ExitCode(CliExit::kIo);
  }
  std::printf("wrote %zu sets to %s\n", sets.size(), out.c_str());
  return ExitCode(CliExit::kOk);
}

/// Loads + tokenizes the --data file per the parsed options.
bool LoadData(const CliArgs& args, Collection* data, TokenizerKind* tk) {
  RawSets raw;
  if (!LoadRawSets(args.data_path, &raw)) {
    std::fprintf(stderr, "cannot read %s\n", args.data_path.c_str());
    return false;
  }
  *tk = IsEditSimilarity(args.opt.phi) ? TokenizerKind::kQGram
                                       : TokenizerKind::kWord;
  *data = BuildCollection(raw, *tk, args.opt.EffectiveQ());
  std::printf("# loaded %zu sets (%zu elements) from %s\n", data->NumSets(),
              data->NumElements(), args.data_path.c_str());
  return true;
}

/// Maps a snapshot/shard-result loader error onto the documented exit
/// contract: open/stat/read failures mean the bytes never arrived (I/O);
/// anything else a loader reports means the bytes arrived but failed an
/// integrity gate (bad magic/version/CRC, truncation, malformed lines).
CliExit LoadErrorExit(const std::string& err) {
  if (err.find("out of range") != std::string::npos) {
    return CliExit::kUsage;  // asked for a shard the snapshot doesn't have
  }
  const bool io = err.find("cannot open") != std::string::npos ||
                  err.find("cannot stat") != std::string::npos ||
                  err.find("cannot read") != std::string::npos ||
                  err.find("read from") != std::string::npos;
  return io ? CliExit::kIo : CliExit::kCorruptInput;
}

/// Prints the explicit partial-coverage stamp — comment lines ahead of the
/// pair stream, so a degraded merge is never mistaken for a complete one.
/// Ranges are the half-open global set-id ranges the covered shards owned.
void PrintCoverage(const MergeCoverage& cov) {
  // FormatCoverage is the one stamp formatter — the serve daemon's
  // DEADLINE_EXCEEDED bodies use it too, so the grammar cannot drift.
  std::fputs(FormatCoverage(cov).c_str(), stdout);
}

/// Path of the running binary, for `run` to exec its own shard-run
/// workers: /proc/self/exe when the kernel offers it, else argv[0].
std::string SelfBinaryPath(const char* argv0) {
#if defined(__linux__)
  char buf[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  if (n > 0) {
    buf[n] = '\0';
    return buf;
  }
#endif
  return argv0;
}

/// Creates a fresh run work directory under the system temp dir. Collision
/// handling rides on create_directory's atomicity (true only for the
/// creator), so concurrent runs never share a directory.
std::string MakeWorkDir(std::string* err) {
  namespace fs = std::filesystem;
  std::error_code ec;
  const fs::path base = fs::temp_directory_path(ec);
  if (ec) {
    *err = "cannot resolve the system temp directory: " + ec.message();
    return "";
  }
  for (int i = 0; i < 100000; ++i) {
    const fs::path cand = base / ("silkmoth-run-" + std::to_string(i));
    if (fs::create_directory(cand, ec)) return cand.string();
  }
  *err = "cannot create a work directory under " + base.string();
  return "";
}

/// The worker command line `run` forwards to every shard-run process —
/// exactly the options that shape discovery output, so the supervised
/// pipeline stays byte-identical to `discover --shards N`.
std::vector<std::string> WorkerFlags(const Options& opt, bool copy_load) {
  std::vector<std::string> flags;
  auto add = [&](const char* k, std::string v) {
    flags.emplace_back(k);
    flags.push_back(std::move(v));
  };
  char buf[64];
  add("--metric", opt.metric == Relatedness::kContainment ? "containment"
                                                          : "similarity");
  add("--phi", opt.phi == SimilarityKind::kEds    ? "eds"
               : opt.phi == SimilarityKind::kNeds ? "neds"
                                                  : "jaccard");
  // %.17g round-trips a double exactly through the worker's strtod.
  std::snprintf(buf, sizeof(buf), "%.17g", opt.delta);
  add("--delta", buf);
  std::snprintf(buf, sizeof(buf), "%.17g", opt.alpha);
  add("--alpha", buf);
  if (opt.q > 0) add("--q", std::to_string(opt.q));
  add("--scheme",
      opt.scheme == SignatureSchemeKind::kWeighted         ? "weighted"
      : opt.scheme == SignatureSchemeKind::kCombUnweighted ? "unweighted"
      : opt.scheme == SignatureSchemeKind::kSkyline        ? "skyline"
                                                           : "dichotomy");
  add("--threads", std::to_string(opt.num_threads));
  if (!opt.exact_scores) flags.emplace_back("--approx-scores");
  if (copy_load) flags.emplace_back("--copy-load");
  return flags;
}

/// The run-report file: the orchestrator's RunReport JSON extended with the
/// merge verdict (`partial`, `pairs`) and, when a merge happened, the
/// global funnel counters. Schema in docs/CLI.md, "Run report".
std::string BuildRunReportJson(const RunReport& report,
                               const ShardedSearchStats* stats,
                               size_t num_pairs, bool partial) {
  std::string json = report.ToJson();
  json.pop_back();  // reopen the trailing '}'
  json += ",\"partial\":";
  json += partial ? "true" : "false";
  json += ",\"pairs\":" + std::to_string(num_pairs);
  if (stats != nullptr) json += ",\"funnel\":" + stats->Total().ToJson();
  json += "}";
  return json;
}

/// Stages + commits the report JSON atomically; "" on success.
std::string WriteRunReport(const std::string& path, const std::string& json) {
  AtomicFileWriter writer(path);
  std::string err = writer.Open();
  if (err.empty()) err = writer.Write(json + "\n");
  if (err.empty()) err = writer.Commit();
  return err;
}

// build: tokenize + index + write snapshot. One process does the expensive
// preparation; any number of shard-run processes reuse it with zero
// re-tokenization.
int RunBuild(const CliArgs& args) {
  if (args.data_path.empty() || args.out_path.empty()) {
    std::fprintf(stderr, "build needs --data and --out\n");
    return ExitCode(CliExit::kUsage);
  }
  const std::string err = args.opt.Validate();
  if (!err.empty()) {
    std::fprintf(stderr, "invalid options: %s\n", err.c_str());
    return ExitCode(CliExit::kUsage);
  }
  Collection data;
  TokenizerKind tk;
  if (!LoadData(args, &data, &tk)) return ExitCode(CliExit::kIo);
  const int q = tk == TokenizerKind::kQGram ? args.opt.EffectiveQ() : 0;
  WallTimer timer;
  Snapshot snap =
      BuildSnapshot(std::move(data), tk, q,
                    static_cast<uint32_t>(args.opt.num_shards),
                    args.opt.num_threads);
  const std::string save_err =
      args.split ? SaveSnapshotSplit(snap, args.out_path)
                 : SaveSnapshot(snap, args.out_path);
  if (!save_err.empty()) {
    std::fprintf(stderr, "%s\n", save_err.c_str());
    return ExitCode(CliExit::kIo);
  }
  std::printf("# wrote %s snapshot %s: %zu sets, %zu tokens, %zu shards "
              "in %.3fs\n",
              args.split ? "split" : "monolithic", args.out_path.c_str(),
              snap.data.NumSets(), snap.data.dict->size(), snap.num_shards(),
              timer.ElapsedSeconds());
  if (args.split) {
    for (uint32_t s = 0; s < snap.num_shards(); ++s) {
      std::printf("# shard file %s\n",
                  SnapshotShardPath(args.out_path, s).c_str());
    }
  }
  return ExitCode(CliExit::kOk);
}

/// Reads + tokenizes a query payload against `corpus`'s dictionary into
/// `*query`, returning the external reference block over it (oov counted,
/// payload fingerprinted). `corpus` is the snapshot's collection — or the
/// combined base+delta collection when a delta file is in play, so payload
/// tokens the delta introduced resolve to their interned ids. Prints the
/// one-line query summary. Returns false (with a stderr diagnostic) when
/// the file cannot be read.
bool LoadQueryBlock(const std::string& path, TokenizerKind tokenizer, int q,
                    const Collection& corpus, Collection* query,
                    ReferenceBlock* block) {
  RawSets raw;
  if (!LoadRawSets(path, &raw)) {
    std::fprintf(stderr, "cannot read %s\n", path.c_str());
    return false;
  }
  *block = BuildQueryBlock(raw, tokenizer, q, corpus, query);
  std::printf("# query payload: %zu sets (%zu elements), %zu oov tokens, "
              "hash %016llx\n",
              query->NumSets(), query->NumElements(), block->oov_tokens,
              static_cast<unsigned long long>(block->content_hash));
  return true;
}

/// Prints the oracle-agreement line shared by discover/query: exact mode
/// compares pairs bit-for-bit; --approx-scores compares the pair ids only
/// (bound-reported scores legitimately differ from the oracle's solves).
void PrintOracleAgreement(const std::vector<PairMatch>& pairs,
                          const std::vector<PairMatch>& truth,
                          bool exact_scores) {
  if (exact_scores) {
    std::printf("# oracle agreement: %s\n", pairs == truth ? "yes" : "NO");
    return;
  }
  bool ids_match = pairs.size() == truth.size();
  for (size_t i = 0; ids_match && i < pairs.size(); ++i) {
    ids_match = pairs[i].ref_id == truth[i].ref_id &&
                pairs[i].set_id == truth[i].set_id;
  }
  std::printf("# oracle agreement (pair ids; --approx-scores): %s\n",
              ids_match ? "yes" : "NO");
}

// shard-run: load a snapshot, execute discovery for one shard id — the
// snapshot's own self-join, or with --query an external payload streamed
// against the shard — and persist the sorted PairMatch stream + stats.
int RunShard(const CliArgs& args) {
  if (args.snapshot_path.empty()) {
    std::fprintf(stderr, "shard-run needs --snapshot\n");
    return ExitCode(CliExit::kUsage);
  }
  if (args.shard < 0) {
    std::fprintf(stderr, "shard-run needs --shard K (0-based)\n");
    return ExitCode(CliExit::kUsage);
  }
  if (args.out_path.empty()) {
    std::fprintf(stderr, "shard-run needs --out\n");
    return ExitCode(CliExit::kUsage);
  }
  const std::string opt_err = args.opt.Validate();
  if (!opt_err.empty()) {
    std::fprintf(stderr, "invalid options: %s\n", opt_err.c_str());
    return ExitCode(CliExit::kUsage);
  }
  // Worker-side fault hook (a no-op unless SILKMOTH_FAULT arms it):
  // kill/abort/sleep execute inside Hit(); a `fail` outcome exits cleanly
  // non-zero so the orchestrator sees a plain worker failure.
  if (fault::Hit("worker-start").kind == fault::Outcome::kFail) {
    std::fprintf(stderr, "injected worker-start failure\n");
    return ExitCode(CliExit::kIo);
  }
  // Shard-local load: on a split snapshot this maps exactly two files —
  // common + this shard — so worker startup scales with the shard size.
  WallTimer load_timer;
  Snapshot snap;
  SnapshotLoadStats load_stats;
  const SnapshotLoadMode mode =
      args.copy_load ? SnapshotLoadMode::kCopy : SnapshotLoadMode::kMmap;
  const std::string load_err =
      LoadSnapshotShard(args.snapshot_path, static_cast<uint32_t>(args.shard),
                        &snap, mode, &load_stats);
  if (!load_err.empty()) {
    std::fprintf(stderr, "%s\n", load_err.c_str());
    return ExitCode(LoadErrorExit(load_err));
  }
  std::printf("# load: %" PRIu64 " files, %" PRIu64 " bytes mapped, %" PRIu64
              " bytes copied in %.3fs\n",
              load_stats.files, load_stats.bytes_mapped,
              load_stats.bytes_copied, load_timer.ElapsedSeconds());
  const std::string compat_err = CheckSnapshotCompatible(snap, args.opt);
  if (!compat_err.empty()) {
    std::fprintf(stderr, "%s\n", compat_err.c_str());
    return ExitCode(CliExit::kIncompatible);
  }
  WallTimer timer;
  ShardResult result;
  result.shard = static_cast<uint32_t>(args.shard);
  result.num_shards = static_cast<uint32_t>(snap.num_shards());
  result.options = args.opt;
  // The shard's global set-id range rides along in the result file (format
  // v4) — it is what a degraded partial merge stamps as covered.
  result.range = snap.shards[result.shard].range;
  if (!args.query_path.empty()) {
    // Query mode: stream an external payload against this shard. The result
    // file records the payload hash, so merge refuses to combine shards run
    // against different queries (or against a self-join).
    Collection query;
    ReferenceBlock block;
    const int q = snap.tokenizer == TokenizerKind::kQGram ? snap.q : 0;
    if (!LoadQueryBlock(args.query_path, snap.tokenizer, q, snap.data,
                        &query, &block)) {
      return ExitCode(CliExit::kIo);
    }
    result.query_mode = true;
    result.query_hash = block.content_hash;
    result.pairs = DiscoverShardAgainst(snap, result.shard, block, args.opt,
                                        &result.stats);
  } else {
    result.pairs = DiscoverShardSelf(snap, result.shard, args.opt,
                                     &result.stats);
  }
  const std::string save_err = SaveShardResult(result, args.out_path);
  if (!save_err.empty()) {
    std::fprintf(stderr, "%s\n", save_err.c_str());
    return ExitCode(CliExit::kIo);
  }
  std::printf("# shard %u/%u: %zu pairs in %.3fs -> %s\n", result.shard,
              result.num_shards, result.pairs.size(), timer.ElapsedSeconds(),
              args.out_path.c_str());
  if (args.stats) std::fputs(result.stats.ToString().c_str(), stdout);
  return ExitCode(CliExit::kOk);
}

/// Replays a delta file (the --delta-file flag) into `*delta`, printing
/// the one-line delta summary. An empty path is a no-op; a missing or
/// unreadable file is an error (stderr diagnostic, false returned) — a
/// delta file named explicitly must exist, silence would serve stale data.
bool ReplayDeltaFile(const std::string& path, DeltaShard* delta) {
  if (path.empty()) return true;
  RawSets raw;
  if (!LoadRawSets(path, &raw)) {
    std::fprintf(stderr, "cannot read %s\n", path.c_str());
    return false;
  }
  const std::string err = delta->Ingest(raw);
  if (!err.empty()) {
    std::fprintf(stderr, "%s\n", err.c_str());
    return false;
  }
  std::printf("# delta %s: %zu sets, %zu oov tokens\n", path.c_str(),
              delta->delta_sets(), delta->oov_tokens());
  return true;
}

// query: cross-collection discovery over a prebuilt snapshot, in one
// process — load every shard (zero-copy mmap by default), tokenize the
// query payload against the snapshot's dictionary, and stream it through
// all shard indexes. Output format matches discover/merge, and the
// build → shard-run --query → merge pipeline produces the byte-identical
// stream.
int RunQuery(const CliArgs& args) {
  if (args.snapshot_path.empty() || args.query_path.empty()) {
    std::fprintf(stderr, "query needs --snapshot and --input\n");
    return ExitCode(CliExit::kUsage);
  }
  const std::string opt_err = args.opt.Validate();
  if (!opt_err.empty()) {
    std::fprintf(stderr, "invalid options: %s\n", opt_err.c_str());
    return ExitCode(CliExit::kUsage);
  }
  WallTimer load_timer;
  Snapshot snap;
  SnapshotLoadStats load_stats;
  const SnapshotLoadMode mode =
      args.copy_load ? SnapshotLoadMode::kCopy : SnapshotLoadMode::kMmap;
  const std::string load_err =
      LoadSnapshot(args.snapshot_path, &snap, mode, &load_stats);
  if (!load_err.empty()) {
    std::fprintf(stderr, "%s\n", load_err.c_str());
    return ExitCode(LoadErrorExit(load_err));
  }
  std::printf("# load: %" PRIu64 " files, %" PRIu64 " bytes mapped, %" PRIu64
              " bytes copied in %.3fs\n",
              load_stats.files, load_stats.bytes_mapped,
              load_stats.bytes_copied, load_timer.ElapsedSeconds());
  const std::string compat_err = CheckSnapshotCompatible(snap, args.opt);
  if (!compat_err.empty()) {
    std::fprintf(stderr, "%s\n", compat_err.c_str());
    return ExitCode(CliExit::kIncompatible);
  }
  // Delta replay happens *before* query tokenization, so the payload sees
  // delta-interned token ids — the same dictionary state a compacted
  // snapshot would present.
  const int q = snap.tokenizer == TokenizerKind::kQGram ? snap.q : 0;
  DeltaShard delta(&snap.data, snap.tokenizer, q);
  if (!ReplayDeltaFile(args.delta_file_path, &delta)) {
    return ExitCode(CliExit::kIo);
  }
  const Collection& corpus =
      delta.delta_sets() > 0 ? delta.combined() : snap.data;
  Collection query;
  ReferenceBlock block;
  if (!LoadQueryBlock(args.query_path, snap.tokenizer, q, corpus, &query,
                      &block)) {
    return ExitCode(CliExit::kIo);
  }

  std::vector<ShardView> views(snap.num_shards());
  for (size_t s = 0; s < snap.num_shards(); ++s) {
    views[s] = ShardView{snap.shards[s].range, &snap.shards[s].index};
  }
  if (delta.delta_sets() > 0) views.push_back(delta.View());
  ShardedSearchStats stats;
  stats.Reset(views.size());
  WallTimer timer;
  std::vector<PairMatch> pairs =
      DiscoverAcrossShards(block, corpus, views, args.opt, &stats);
  std::printf("# %zu related pairs in %.3fs\n", pairs.size(),
              timer.ElapsedSeconds());
  for (const auto& p : pairs) {
    std::printf("%u\t%u\t%.6f\t%.6f\n", p.ref_id, p.set_id, p.matching_score,
                p.relatedness);
  }
  if (args.oracle_check) {
    BruteForce oracle(&corpus, args.opt);
    PrintOracleAgreement(pairs, oracle.Discover(query),
                         args.opt.exact_scores);
  }
  if (args.stats) std::fputs(stats.ToString().c_str(), stdout);
  return ExitCode(CliExit::kOk);
}

// discover --snapshot: self-join discovery over a prebuilt snapshot —
// the sharding comes from the snapshot, and an optional --delta-file
// replays ingested sets as one extra in-memory shard. This is the read
// side of the dynamic-corpus byte-identity contract: the pair stream over
// (base + delta) equals the stream `discover --snapshot` prints over the
// compacted snapshot of the same state.
int RunDiscoverSnapshot(const CliArgs& args) {
  if (args.shards_set) {
    std::fprintf(stderr, "discover --snapshot takes its partition from the "
                         "snapshot; drop --shards\n");
    return ExitCode(CliExit::kUsage);
  }
  const std::string opt_err = args.opt.Validate();
  if (!opt_err.empty()) {
    std::fprintf(stderr, "invalid options: %s\n", opt_err.c_str());
    return ExitCode(CliExit::kUsage);
  }
  Snapshot snap;
  const SnapshotLoadMode mode =
      args.copy_load ? SnapshotLoadMode::kCopy : SnapshotLoadMode::kMmap;
  const std::string load_err = LoadSnapshot(args.snapshot_path, &snap, mode);
  if (!load_err.empty()) {
    std::fprintf(stderr, "%s\n", load_err.c_str());
    return ExitCode(LoadErrorExit(load_err));
  }
  const std::string compat_err = CheckSnapshotCompatible(snap, args.opt);
  if (!compat_err.empty()) {
    std::fprintf(stderr, "%s\n", compat_err.c_str());
    return ExitCode(CliExit::kIncompatible);
  }
  const int q = snap.tokenizer == TokenizerKind::kQGram ? snap.q : 0;
  DeltaShard delta(&snap.data, snap.tokenizer, q);
  if (!ReplayDeltaFile(args.delta_file_path, &delta)) {
    return ExitCode(CliExit::kIo);
  }
  const Collection& corpus =
      delta.delta_sets() > 0 ? delta.combined() : snap.data;
  std::printf("# snapshot %s: generation %llu, %zu base sets + %zu delta "
              "sets\n",
              args.snapshot_path.c_str(),
              static_cast<unsigned long long>(snap.generation),
              snap.data.NumSets(), delta.delta_sets());

  std::vector<ShardView> views(snap.num_shards());
  for (size_t s = 0; s < snap.num_shards(); ++s) {
    views[s] = ShardView{snap.shards[s].range, &snap.shards[s].index};
  }
  if (delta.delta_sets() > 0) views.push_back(delta.View());
  ShardedSearchStats stats;
  stats.Reset(views.size());
  WallTimer timer;
  const ReferenceBlock block = ReferenceBlock::SelfJoin(corpus);
  std::vector<PairMatch> pairs =
      DiscoverAcrossShards(block, corpus, views, args.opt, &stats);
  std::printf("# %zu related pairs in %.3fs\n", pairs.size(),
              timer.ElapsedSeconds());
  for (const auto& p : pairs) {
    std::printf("%u\t%u\t%.6f\t%.6f\n", p.ref_id, p.set_id, p.matching_score,
                p.relatedness);
  }
  if (args.oracle_check) {
    BruteForce oracle(&corpus, args.opt);
    PrintOracleAgreement(pairs, oracle.DiscoverSelf(), args.opt.exact_scores);
  }
  if (args.stats) std::fputs(stats.ToString().c_str(), stdout);
  return ExitCode(CliExit::kOk);
}

// ingest: append a batch of raw sets to a snapshot's delta file. The
// snapshot file itself never changes; the delta file is the durable
// representation of everything ingested since the last compaction, and is
// rewritten atomically (replay-then-rewrite keeps it one canonical text
// file rather than an append log with partial-write hazards). The replay
// also validates the batch against the snapshot and reports OOV counts.
int RunIngest(const CliArgs& args) {
  if (args.snapshot_path.empty() || args.query_path.empty() ||
      args.delta_out_path.empty()) {
    std::fprintf(stderr, "ingest needs --snapshot, --input, and "
                         "--delta-out\n");
    return ExitCode(CliExit::kUsage);
  }
  Snapshot snap;
  const SnapshotLoadMode mode =
      args.copy_load ? SnapshotLoadMode::kCopy : SnapshotLoadMode::kMmap;
  const std::string load_err = LoadSnapshot(args.snapshot_path, &snap, mode);
  if (!load_err.empty()) {
    std::fprintf(stderr, "%s\n", load_err.c_str());
    return ExitCode(LoadErrorExit(load_err));
  }
  RawSets existing;
  if (std::filesystem::exists(args.delta_out_path) &&
      !LoadRawSets(args.delta_out_path, &existing)) {
    std::fprintf(stderr, "cannot read %s\n", args.delta_out_path.c_str());
    return ExitCode(CliExit::kIo);
  }
  RawSets batch;
  if (!LoadRawSets(args.query_path, &batch)) {
    std::fprintf(stderr, "cannot read %s\n", args.query_path.c_str());
    return ExitCode(CliExit::kIo);
  }

  const int q = snap.tokenizer == TokenizerKind::kQGram ? snap.q : 0;
  DeltaShard delta(&snap.data, snap.tokenizer, q);
  std::string err = delta.Ingest(existing);
  if (err.empty()) {
    const size_t oov_before = delta.oov_tokens();
    err = delta.Ingest(batch);
    if (err.empty()) {
      std::printf("# ingested %zu sets (%zu new tokens)\n", batch.size(),
                  delta.oov_tokens() - oov_before);
    }
  }
  if (!err.empty()) {
    std::fprintf(stderr, "%s\n", err.c_str());
    return ExitCode(CliExit::kUsage);
  }

  RawSets all = std::move(existing);
  all.insert(all.end(), batch.begin(), batch.end());
  std::ostringstream body;
  WriteRawSets(all, body);
  AtomicFileWriter writer(args.delta_out_path);
  std::string werr = writer.Open();
  if (werr.empty()) werr = writer.Write(body.str());
  if (werr.empty()) werr = writer.Commit();
  if (!werr.empty()) {
    std::fprintf(stderr, "%s\n", werr.c_str());
    return ExitCode(CliExit::kIo);
  }
  std::printf("# delta %s: %zu sets, %zu oov tokens over %s "
              "(generation %llu)\n",
              args.delta_out_path.c_str(), delta.delta_sets(),
              delta.oov_tokens(), args.snapshot_path.c_str(),
              static_cast<unsigned long long>(snap.generation));
  return ExitCode(CliExit::kOk);
}

// compact: merge a snapshot and its delta file into a next-generation
// snapshot — canonical re-partition, generation counter bumped, published
// atomically under the compact-write fault site (shard files first, common
// last, so no readable partial generation can ever exist). Without
// --delta-file this re-partitions the base alone.
int RunCompact(const CliArgs& args) {
  if (args.snapshot_path.empty() || args.out_path.empty()) {
    std::fprintf(stderr, "compact needs --snapshot and --out\n");
    return ExitCode(CliExit::kUsage);
  }
  if (args.shards_set && args.opt.num_shards < 1) {
    std::fprintf(stderr, "compact: --shards must be >= 1\n");
    return ExitCode(CliExit::kUsage);
  }
  Snapshot snap;
  const SnapshotLoadMode mode =
      args.copy_load ? SnapshotLoadMode::kCopy : SnapshotLoadMode::kMmap;
  const std::string load_err = LoadSnapshot(args.snapshot_path, &snap, mode);
  if (!load_err.empty()) {
    std::fprintf(stderr, "%s\n", load_err.c_str());
    return ExitCode(LoadErrorExit(load_err));
  }
  const int q = snap.tokenizer == TokenizerKind::kQGram ? snap.q : 0;
  DeltaShard delta(&snap.data, snap.tokenizer, q);
  if (!ReplayDeltaFile(args.delta_file_path, &delta)) {
    return ExitCode(CliExit::kIo);
  }

  CompactOptions co;
  co.num_shards = args.shards_set
                      ? static_cast<uint32_t>(args.opt.num_shards)
                      : static_cast<uint32_t>(snap.num_shards());
  co.split = args.split;
  co.num_threads = args.opt.num_threads;
  WallTimer timer;
  CompactResult res;
  const std::string err =
      CompactSnapshot(snap, delta, args.out_path, co, &res);
  if (!err.empty()) {
    std::fprintf(stderr, "%s\n", err.c_str());
    return ExitCode(CliExit::kIo);
  }
  std::printf("# compacted %s -> %s %s: generation %llu, %llu sets "
              "(%llu from delta), %u shards in %.3fs\n",
              args.snapshot_path.c_str(),
              args.split ? "split" : "monolithic", args.out_path.c_str(),
              static_cast<unsigned long long>(res.generation),
              static_cast<unsigned long long>(res.total_sets),
              static_cast<unsigned long long>(res.delta_sets),
              res.num_shards, timer.ElapsedSeconds());
  if (args.split) {
    for (uint32_t s = 0; s < res.num_shards; ++s) {
      std::printf("# shard file %s\n",
                  SnapshotShardPath(args.out_path, s).c_str());
    }
  }
  return ExitCode(CliExit::kOk);
}

// merge: k-way merge shard result streams into the exact discover output.
// With --allow-partial an incomplete set of results merges anyway, with the
// coverage stamped ahead of the pairs and exit code kPartialResult.
int RunMerge(const CliArgs& args) {
  if (args.inputs.empty()) {
    std::fprintf(stderr, "merge needs at least one shard result file\n");
    return ExitCode(CliExit::kUsage);
  }
  std::vector<ShardResult> results(args.inputs.size());
  for (size_t i = 0; i < args.inputs.size(); ++i) {
    const std::string err = LoadShardResult(args.inputs[i], &results[i]);
    if (!err.empty()) {
      std::fprintf(stderr, "%s\n", err.c_str());
      return ExitCode(LoadErrorExit(err));
    }
  }
  std::vector<PairMatch> pairs;
  ShardedSearchStats stats;
  MergeCoverage cov;
  const std::string err =
      MergeShardResults(results, &pairs, &stats,
                        MergeOptions{args.allow_partial}, &cov);
  if (!err.empty()) {
    std::fprintf(stderr, "%s\n", err.c_str());
    return ExitCode(CliExit::kIncompatible);
  }
  std::printf("# merged %zu shard results: %zu pairs\n", results.size(),
              pairs.size());
  if (!cov.complete) PrintCoverage(cov);
  // Exactly the discover output format, so merged out-of-process runs diff
  // clean against `discover --shards N` (comment lines aside).
  for (const auto& p : pairs) {
    std::printf("%u\t%u\t%.6f\t%.6f\n", p.ref_id, p.set_id, p.matching_score,
                p.relatedness);
  }
  if (args.stats) std::fputs(stats.ToString().c_str(), stdout);
  return ExitCode(cov.complete ? CliExit::kOk : CliExit::kPartialResult);
}

// serve: the resident daemon — load a snapshot once, then answer query
// payloads over the frame protocol until SIGTERM/SIGINT, a shutdown frame,
// or (stdio transport) EOF. See src/serve/server.h for the threading model
// and docs/CLI.md, "serve" for the frame grammar.
int RunServe(const CliArgs& args) {
  if (args.snapshot_path.empty()) {
    std::fprintf(stderr, "serve needs --snapshot\n");
    return ExitCode(CliExit::kUsage);
  }
  if (args.listen_path.empty() == !args.stdio) {
    std::fprintf(stderr, "serve needs exactly one of --listen SOCK or "
                         "--stdio\n");
    return ExitCode(CliExit::kUsage);
  }
  const std::string opt_err = args.opt.Validate();
  if (!opt_err.empty()) {
    std::fprintf(stderr, "invalid options: %s\n", opt_err.c_str());
    return ExitCode(CliExit::kUsage);
  }
  if (args.max_queue <= 0 || args.max_inflight <= 0 || args.max_frame <= 0 ||
      args.request_deadline < 0.0 ||
      (args.bench_workers != -1 && args.bench_workers <= 0)) {
    std::fprintf(stderr, "serve: --workers/--max-queue/--max-inflight/"
                         "--max-frame must be positive and "
                         "--request-deadline non-negative\n");
    return ExitCode(CliExit::kUsage);
  }

  serve::ServeOptions so;
  so.snapshot_path = args.snapshot_path;
  so.query = args.opt;
  so.load_mode =
      args.copy_load ? SnapshotLoadMode::kCopy : SnapshotLoadMode::kMmap;
  so.workers = args.bench_workers > 0 ? static_cast<int>(args.bench_workers)
                                      : 2;
  so.max_queue = static_cast<size_t>(args.max_queue);
  so.max_inflight_bytes = static_cast<size_t>(args.max_inflight);
  so.max_frame_bytes = static_cast<size_t>(args.max_frame);
  so.request_deadline_seconds = args.request_deadline;

  serve::ServeEngine engine(so);
  const std::string err = engine.Start();
  if (!err.empty()) {
    std::fprintf(stderr, "%s\n", err.c_str());
    return ExitCode(LoadErrorExit(err));
  }
  serve::InstallServeSignalHandlers();
  if (args.stdio) {
    // Frames own stdout; every human-readable line goes to stderr.
    std::fprintf(stderr, "# serving generation %llu on stdio (%d workers)\n",
                 static_cast<unsigned long long>(engine.generation_id()),
                 so.workers);
    return serve::RunStdioServer(engine);
  }
  return serve::RunSocketServer(engine, args.listen_path);
}

// serve-client: connect to a serve daemon's unix socket, send exactly one
// frame — a ping, a shutdown, the --input file as a query payload, or the
// --ingest file as an ingest payload — and print the response body. The
// response frame type maps onto the exit-code contract: result/ingested 0,
// error 3, overloaded 5, deadline-exceeded 6.
int RunServeClient(const CliArgs& args) {
#if SILKMOTH_CLI_HAVE_UNISTD
  if (args.connect_path.empty()) {
    std::fprintf(stderr, "serve-client needs --connect SOCK\n");
    return ExitCode(CliExit::kUsage);
  }
  const int want = (args.ping ? 1 : 0) + (args.shutdown_frame ? 1 : 0) +
                   (args.query_path.empty() ? 0 : 1) +
                   (args.ingest_path.empty() ? 0 : 1);
  if (want != 1) {
    std::fprintf(stderr, "serve-client needs exactly one of --ping, "
                         "--shutdown, --input FILE, or --ingest FILE\n");
    return ExitCode(CliExit::kUsage);
  }

  serve::Frame req;
  req.request_id = 1;
  if (args.ping) {
    req.type = serve::FrameType::kPing;
  } else if (args.shutdown_frame) {
    req.type = serve::FrameType::kShutdown;
  } else {
    const bool ingest = !args.ingest_path.empty();
    const std::string& path = ingest ? args.ingest_path : args.query_path;
    req.type = ingest ? serve::FrameType::kIngest : serve::FrameType::kQuery;
    RawSets raw;
    if (!LoadRawSets(path, &raw)) {
      std::fprintf(stderr, "cannot read %s\n", path.c_str());
      return ExitCode(CliExit::kIo);
    }
    std::ostringstream body;
    WriteRawSets(raw, body);
    req.body = body.str();
  }

  sockaddr_un addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sun_family = AF_UNIX;
  if (args.connect_path.size() >= sizeof(addr.sun_path)) {
    std::fprintf(stderr, "serve-client: socket path too long: %s\n",
                 args.connect_path.c_str());
    return ExitCode(CliExit::kUsage);
  }
  std::memcpy(addr.sun_path, args.connect_path.c_str(),
              args.connect_path.size() + 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0 ||
      ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    std::fprintf(stderr, "serve-client: cannot connect to %s: %s\n",
                 args.connect_path.c_str(), std::strerror(errno));
    if (fd >= 0) ::close(fd);
    return ExitCode(CliExit::kIo);
  }

  const std::string bytes = serve::EncodeFrame(req);
  size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n = ::write(fd, bytes.data() + off, bytes.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      std::fprintf(stderr, "serve-client: write failed: %s\n",
                   std::strerror(errno));
      ::close(fd);
      return ExitCode(CliExit::kIo);
    }
    off += static_cast<size_t>(n);
  }

  serve::FrameDecoder decoder(serve::kDefaultMaxFrameBytes);
  serve::Frame resp;
  char buf[1 << 16];
  for (;;) {
    serve::FrameDecoder::Status st = decoder.Next(&resp);
    if (st == serve::FrameDecoder::Status::kFrame) break;
    if (st != serve::FrameDecoder::Status::kNeedMore) {
      std::fprintf(stderr, "serve-client: malformed response frame (%s)\n",
                   serve::FrameDecoder::StatusName(st));
      ::close(fd);
      return ExitCode(CliExit::kCorruptInput);
    }
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) {
      std::fprintf(stderr, "serve-client: connection closed before a "
                           "response frame arrived\n");
      ::close(fd);
      return ExitCode(CliExit::kIo);
    }
    decoder.Feed(buf, static_cast<size_t>(n));
  }
  ::close(fd);

  std::fwrite(resp.body.data(), 1, resp.body.size(), stdout);
  switch (resp.type) {
    case serve::FrameType::kResult:
    case serve::FrameType::kPong:
    case serve::FrameType::kIngested:
      return ExitCode(CliExit::kOk);
    case serve::FrameType::kOverloaded:
      std::fprintf(stderr, "serve-client: request shed (overloaded)\n");
      return ExitCode(CliExit::kWorkerFailure);
    case serve::FrameType::kDeadlineExceeded:
      std::fprintf(stderr, "serve-client: deadline exceeded (partial "
                           "coverage stamped above)\n");
      return ExitCode(CliExit::kPartialResult);
    default:
      std::fprintf(stderr, "serve-client: server error frame (%s)\n",
                   serve::FrameTypeName(resp.type));
      return ExitCode(CliExit::kCorruptInput);
  }
#else
  (void)args;
  std::fprintf(stderr, "serve-client needs POSIX sockets\n");
  return ExitCode(CliExit::kIo);
#endif
}

// SIGTERM cancellation for `run`: the handler only sets the flag; the
// orchestrator's supervision loop notices it, SIGKILLs and reaps every
// active worker, and RunRun then removes staged .tmp files and re-raises so
// the process dies with the conventional 128+SIGTERM status.
std::atomic<bool> g_run_cancel{false};

#if SILKMOTH_CLI_HAVE_UNISTD
void RunCancelHandler(int) { g_run_cancel.store(true); }
#endif

// run: the supervised end-to-end pipeline — build the snapshot, drive one
// shard-run worker process per shard under deadlines/retries/backoff (see
// src/snapshot/orchestrator.h), then merge. Strict mode (the default)
// fails with kWorkerFailure naming every shard that exhausted its retries;
// --allow-partial degrades to a stamped partial merge instead.
int RunRun(const CliArgs& args, const char* argv0) {
  if (args.data_path.empty()) {
    std::fprintf(stderr, "run needs --data\n");
    return ExitCode(CliExit::kUsage);
  }
  const std::string opt_err = args.opt.Validate();
  if (!opt_err.empty()) {
    std::fprintf(stderr, "invalid options: %s\n", opt_err.c_str());
    return ExitCode(CliExit::kUsage);
  }
  if (args.jobs < 0 || args.retries < 0 || args.shard_deadline < 0 ||
      args.backoff_base < 0 || args.backoff_cap < 0) {
    std::fprintf(stderr, "run: --jobs/--retries/--shard-deadline/"
                         "--backoff-* must be non-negative\n");
    return ExitCode(CliExit::kUsage);
  }

  // Work directory: the snapshot, shard results, and per-attempt worker
  // logs live here. An auto-created one is removed after a fully clean run
  // (unless --keep-workdir); a user-supplied --workdir is always kept, and
  // any failure keeps the directory so the logs can be inspected.
  std::string workdir = args.workdir;
  const bool auto_workdir = workdir.empty();
  if (auto_workdir) {
    std::string dir_err;
    workdir = MakeWorkDir(&dir_err);
    if (workdir.empty()) {
      std::fprintf(stderr, "%s\n", dir_err.c_str());
      return ExitCode(CliExit::kIo);
    }
  } else {
    std::error_code ec;
    std::filesystem::create_directories(workdir, ec);
    if (ec) {
      std::fprintf(stderr, "cannot create workdir %s: %s\n", workdir.c_str(),
                   ec.message().c_str());
      return ExitCode(CliExit::kIo);
    }
  }
  std::printf("# workdir %s\n", workdir.c_str());

  // Build phase, in-process — the same preparation `build` does.
  Collection data;
  TokenizerKind tk;
  if (!LoadData(args, &data, &tk)) return ExitCode(CliExit::kIo);
  const int q = tk == TokenizerKind::kQGram ? args.opt.EffectiveQ() : 0;
  const uint32_t shards =
      args.opt.num_shards < 1 ? 1 : static_cast<uint32_t>(args.opt.num_shards);
  WallTimer build_timer;
  Snapshot snap = BuildSnapshot(std::move(data), tk, q, shards,
                                args.opt.num_threads);
  const std::string snap_path = workdir + "/corpus.snap";
  const std::string save_err = args.split
                                   ? SaveSnapshotSplit(snap, snap_path)
                                   : SaveSnapshot(snap, snap_path);
  if (!save_err.empty()) {
    std::fprintf(stderr, "%s\n", save_err.c_str());
    return ExitCode(CliExit::kIo);
  }
  std::printf("# built snapshot: %zu sets, %zu shards in %.3fs\n",
              snap.data.NumSets(), snap.num_shards(),
              build_timer.ElapsedSeconds());

  OrchestratorOptions oo;
  oo.worker_binary = SelfBinaryPath(argv0);
  oo.snapshot_path = snap_path;
  oo.result_dir = workdir;
  oo.query_path = args.query_path;
  oo.worker_flags = WorkerFlags(args.opt, args.copy_load);
  oo.num_shards = static_cast<uint32_t>(snap.num_shards());
  oo.max_parallel = static_cast<int>(args.jobs);
  oo.max_attempts = static_cast<int>(args.retries) + 1;
  oo.shard_deadline_seconds = args.shard_deadline;
  oo.backoff_base_seconds = args.backoff_base;
  oo.backoff_cap_seconds = args.backoff_cap;
  oo.backoff_seed = args.backoff_seed;
  oo.injections = args.injections;
  oo.cancel = &g_run_cancel;

#if SILKMOTH_CLI_HAVE_UNISTD
  // SIGTERM during supervision cancels cooperatively: workers are killed
  // and reaped by the orchestrator, then the cleanup below runs. No
  // SA_RESTART — supervision polls, nothing here needs restarting.
  struct sigaction sa;
  std::memset(&sa, 0, sizeof(sa));
  sigemptyset(&sa.sa_mask);
  sa.sa_handler = RunCancelHandler;
  sigaction(SIGTERM, &sa, nullptr);
#endif

  RunReport report;
  std::vector<ShardResult> results;
  const std::string sup_err = RunSupervised(oo, &report, &results);
  if (!sup_err.empty()) {
    std::fprintf(stderr, "%s\n", sup_err.c_str());
    return ExitCode(CliExit::kIo);
  }

#if SILKMOTH_CLI_HAVE_UNISTD
  if (g_run_cancel.load()) {
    // Cancelled: every worker is already killed and reaped. Remove the
    // .tmp files their interrupted AtomicFileWriter commits left staged —
    // nothing may keep accumulating under the workdir — then die with the
    // conventional 128+SIGTERM status so supervisors see a signal death.
    std::error_code ec;
    for (const auto& entry :
         std::filesystem::directory_iterator(workdir, ec)) {
      if (entry.path().extension() == ".tmp") {
        std::filesystem::remove(entry.path(), ec);
      }
    }
    std::fprintf(stderr,
                 "run: cancelled by SIGTERM; workers killed, staged .tmp "
                 "files removed (workdir kept: %s)\n",
                 workdir.c_str());
    std::signal(SIGTERM, SIG_DFL);
    raise(SIGTERM);
    return 128 + SIGTERM;  // unreachable unless SIGTERM is blocked
  }
#endif

  // The report file is written on every path from here down — a failed run
  // needs its diagnostics the most.
  auto emit_report = [&](const ShardedSearchStats* stats, size_t num_pairs,
                         bool partial) -> bool {
    if (args.report_path.empty()) return true;
    const std::string werr = WriteRunReport(
        args.report_path,
        BuildRunReportJson(report, stats, num_pairs, partial));
    if (!werr.empty()) {
      std::fprintf(stderr, "%s\n", werr.c_str());
      return false;
    }
    std::printf("# run report -> %s\n", args.report_path.c_str());
    return true;
  };

  if (!report.ok && (!args.allow_partial || results.empty())) {
    // Strict failure — or a degraded run with nothing at all to merge.
    std::fprintf(stderr, "run: %zu of %u shards failed after retries:\n",
                 report.failed_shards.size(), report.num_shards);
    for (const ShardRunRecord& sr : report.shards) {
      if (sr.ok || sr.attempts.empty()) continue;
      const AttemptRecord& last = sr.attempts.back();
      std::fprintf(stderr, "  shard %u: %zu attempts, last %s: %s\n",
                   sr.shard, sr.attempts.size(),
                   ShardOutcomeName(last.outcome), last.detail.c_str());
    }
    std::fprintf(stderr, "run: worker logs kept in %s\n", workdir.c_str());
    emit_report(nullptr, 0, false);
    return ExitCode(CliExit::kWorkerFailure);
  }

  std::vector<PairMatch> pairs;
  ShardedSearchStats stats;
  MergeCoverage cov;
  const std::string merge_err =
      MergeShardResults(results, &pairs, &stats,
                        MergeOptions{args.allow_partial}, &cov);
  if (!merge_err.empty()) {
    std::fprintf(stderr, "%s\n", merge_err.c_str());
    emit_report(nullptr, 0, false);
    return ExitCode(CliExit::kIncompatible);
  }
  if (!emit_report(&stats, pairs.size(), !cov.complete)) {
    return ExitCode(CliExit::kIo);
  }

  std::printf("# run: %u shards, %zu attempts, %zu retries, %zu timeouts "
              "in %.3fs\n",
              report.num_shards, report.attempts_total, report.retries,
              report.timeouts, report.wall_seconds);
  std::printf("# merged %zu shard results: %zu pairs\n", results.size(),
              pairs.size());
  if (!cov.complete) PrintCoverage(cov);
  // The discover output format, byte-identical to `discover --shards N`
  // when every shard arrived (the cross-process parity contract).
  for (const auto& p : pairs) {
    std::printf("%u\t%u\t%.6f\t%.6f\n", p.ref_id, p.set_id, p.matching_score,
                p.relatedness);
  }
  if (args.stats) std::fputs(stats.ToString().c_str(), stdout);

  if (auto_workdir && !args.keep_workdir && report.ok) {
    std::error_code ec;
    std::filesystem::remove_all(workdir, ec);  // best effort
  } else if (!report.ok) {
    std::fprintf(stderr, "run: worker logs kept in %s\n", workdir.c_str());
  }
  return ExitCode(cov.complete ? CliExit::kOk : CliExit::kPartialResult);
}

// bench: run one named workload from the registry (src/bench/workload.h)
// and optionally emit the versioned BENCH_*.json report. Overrides
// (--requests/--batch/--workers/--duration/--seed/--shards) rewrite the
// spec before the run, and the report records the rewritten spec — a
// BENCH file always describes exactly what ran.
int RunBench(const CliArgs& args) {
  using bench::WorkloadSpec;
  if (args.list_workloads) {
    std::printf("%-26s %s\n", "name", "scenario");
    for (const WorkloadSpec& spec : bench::AllWorkloads()) {
      std::printf("%-26s %s\n", spec.name.c_str(), spec.scenario.c_str());
    }
    return ExitCode(CliExit::kOk);
  }
  if (args.workload.empty()) {
    std::fprintf(stderr, "bench needs --workload NAME (or --list)\n");
    return ExitCode(CliExit::kUsage);
  }
  const WorkloadSpec* found = bench::FindWorkload(args.workload);
  if (found == nullptr) {
    std::fprintf(stderr, "unknown workload: %s (try `bench --list`)\n",
                 args.workload.c_str());
    return ExitCode(CliExit::kUsage);
  }

  WorkloadSpec spec = *found;
  // -1 is the "not passed" sentinel; anything else must be positive.
  const bool bad_override =
      (args.bench_requests != -1 && args.bench_requests <= 0) ||
      (args.bench_batch != -1 && args.bench_batch <= 0) ||
      (args.bench_workers != -1 && args.bench_workers <= 0) ||
      (args.bench_seed != -1 && args.bench_seed <= 0) ||
      (args.bench_duration != -1.0 && args.bench_duration <= 0.0);
  if (bad_override) {
    std::fprintf(stderr,
                 "bench: --requests/--batch/--workers/--duration/--seed "
                 "must be positive\n");
    return ExitCode(CliExit::kUsage);
  }
  if (args.bench_requests > 0) {
    spec.requests = static_cast<size_t>(args.bench_requests);
  }
  if (args.bench_batch > 0) spec.batch = static_cast<size_t>(args.bench_batch);
  if (args.bench_workers > 0) {
    spec.workers = static_cast<int>(args.bench_workers);
  }
  if (args.bench_duration > 0.0) spec.sustained_seconds = args.bench_duration;
  if (args.bench_seed > 0) {
    spec.request_seed = static_cast<uint64_t>(args.bench_seed);
  }
  if (args.shards_set) spec.options.num_shards = args.opt.num_shards;

  bench::BenchResult result;
  const std::string err = bench::RunWorkload(spec, &result);
  if (!err.empty()) {
    std::fprintf(stderr, "%s\n", err.c_str());
    return ExitCode(CliExit::kUsage);
  }

  std::printf("# workload %s: %s\n", spec.name.c_str(),
              spec.scenario.c_str());
  std::printf("# corpus: %zu sets, %zu elements, %zu tokens (build %.3fs)\n",
              result.corpus_sets, result.corpus_elements,
              result.corpus_tokens, result.build_seconds);
  std::printf("# %zu requests in %.3fs (%.1f req/s), %zu pairs/round\n",
              result.completed_requests, result.run_seconds,
              result.requests_per_second, result.pairs_per_round);
  const bench::LatencyHistogram& lat = result.latency;
  std::printf("# latency us: p50 %.1f  p95 %.1f  p99 %.1f  max %.1f\n",
              lat.Percentile(50) / 1e3, lat.Percentile(95) / 1e3,
              lat.Percentile(99) / 1e3, lat.Max() / 1e3);
  if (args.stats) std::fputs(result.funnel.ToString().c_str(), stdout);

  if (!args.json_path.empty()) {
    AtomicFileWriter writer(args.json_path);
    std::string werr = writer.Open();
    if (werr.empty()) werr = writer.Write(bench::BenchResultToJson(result));
    if (werr.empty()) werr = writer.Commit();
    if (!werr.empty()) {
      std::fprintf(stderr, "%s\n", werr.c_str());
      return ExitCode(CliExit::kIo);
    }
    std::printf("# bench report -> %s\n", args.json_path.c_str());
  }
  return ExitCode(CliExit::kOk);
}

/// The real main, wrapped so FinishStdout can audit stdout afterwards.
int RunMain(int argc, char** argv) {
  if (argc < 2) return Usage(argv[0]);
  const std::string mode = argv[1];
  if (mode == "generate") return Generate(argc, argv);
  const bool known = mode == "discover" || mode == "search" ||
                     mode == "query" || mode == "build" ||
                     mode == "ingest" || mode == "compact" ||
                     mode == "shard-run" || mode == "merge" ||
                     mode == "run" || mode == "serve" ||
                     mode == "serve-client" || mode == "bench";
  if (!known) {
    std::fprintf(stderr, "unknown subcommand: %s\n", mode.c_str());
    return ExitCode(CliExit::kUsage);
  }

  CliArgs args;
  if (!ParseArgs(argc, argv, 2, &args)) return Usage(argv[0]);
  // Only merge takes positional arguments (its result files); anywhere else
  // a stray word is a mistake (a forgotten flag, a second data file) that
  // must not be silently ignored.
  if (mode != "merge" && !args.inputs.empty()) {
    std::fprintf(stderr, "unexpected argument: %s\n",
                 args.inputs.front().c_str());
    return ExitCode(CliExit::kUsage);
  }

  if (mode == "build") return RunBuild(args);
  if (mode == "ingest") return RunIngest(args);
  if (mode == "compact") return RunCompact(args);
  if (mode == "shard-run") return RunShard(args);
  if (mode == "query") return RunQuery(args);
  if (mode == "merge") return RunMerge(args);
  if (mode == "discover" && !args.snapshot_path.empty()) {
    return RunDiscoverSnapshot(args);
  }
  if (mode == "run") return RunRun(args, argv[0]);
  if (mode == "serve") return RunServe(args);
  if (mode == "serve-client") return RunServeClient(args);
  if (mode == "bench") return RunBench(args);

  if (args.data_path.empty() ||
      (mode == "search" && args.query_path.empty())) {
    return Usage(argv[0]);
  }
  const std::string err = args.opt.Validate();
  if (!err.empty()) {
    std::fprintf(stderr, "invalid options: %s\n", err.c_str());
    return ExitCode(CliExit::kUsage);
  }
  if (args.top_k > 0 && mode != "search") {
    std::fprintf(stderr, "--top-k only applies to search\n");
    return ExitCode(CliExit::kUsage);
  }
  if (args.top_k > 0 && args.opt.num_shards >= 2) {
    std::fprintf(stderr, "--top-k serving is single-index; drop --shards\n");
    return ExitCode(CliExit::kUsage);
  }

  Collection data;
  TokenizerKind tk;
  if (!LoadData(args, &data, &tk)) return ExitCode(CliExit::kIo);

  // --shards >= 2 routes everything through the sharded engine; otherwise
  // the classic single-index engine runs. Only the chosen engine builds its
  // index.
  const bool use_shards = args.opt.num_shards >= 2;
  std::unique_ptr<SilkMoth> single;
  std::unique_ptr<ShardedEngine> sharded;
  if (use_shards) {
    sharded = std::make_unique<ShardedEngine>(&data, args.opt);
  } else {
    single = std::make_unique<SilkMoth>(&data, args.opt);
  }
  const std::string engine_err =
      use_shards ? sharded->error() : single->error();
  if (!engine_err.empty()) {
    std::fprintf(stderr, "invalid options: %s\n", engine_err.c_str());
    return ExitCode(CliExit::kUsage);
  }
  if (use_shards) {
    std::printf("# sharded engine: %zu shards\n", sharded->num_shards());
  }

  WallTimer timer;
  SearchStats stats;
  ShardedSearchStats sharded_stats;
  if (mode == "discover") {
    auto pairs = use_shards ? sharded->DiscoverSelf(&sharded_stats)
                            : single->DiscoverSelf(&stats);
    std::printf("# %zu related pairs in %.3fs\n", pairs.size(),
                timer.ElapsedSeconds());
    for (const auto& p : pairs) {
      std::printf("%u\t%u\t%.6f\t%.6f\n", p.ref_id, p.set_id,
                  p.matching_score, p.relatedness);
    }
    if (args.oracle_check) {
      BruteForce oracle(&data, args.opt);
      PrintOracleAgreement(pairs, oracle.DiscoverSelf(),
                           args.opt.exact_scores);
    }
  } else {
    RawSets query_raw;
    if (!LoadRawSets(args.query_path, &query_raw) || query_raw.empty()) {
      std::fprintf(stderr, "cannot read %s\n", args.query_path.c_str());
      return ExitCode(CliExit::kIo);
    }
    for (size_t qi = 0; qi < query_raw.size(); ++qi) {
      SetRecord ref =
          BuildReference(query_raw[qi], tk, args.opt.EffectiveQ(), &data);
      auto matches =
          args.top_k > 0
              ? single->SearchTopK(ref, static_cast<size_t>(args.top_k),
                                   &stats)
              : use_shards ? sharded->Search(ref, &sharded_stats)
                           : single->Search(ref, &stats);
      for (const auto& m : matches) {
        std::printf("%zu\t%u\t%.6f\t%.6f\n", qi, m.set_id, m.matching_score,
                    m.relatedness);
      }
    }
    std::printf("# %zu queries in %.3fs\n", query_raw.size(),
                timer.ElapsedSeconds());
  }
  if (args.stats) {
    std::fputs(use_shards ? sharded_stats.ToString().c_str()
                          : stats.ToString().c_str(),
               stdout);
  }
  return ExitCode(CliExit::kOk);
}

/// Settles stdout after RunMain: flush, and turn a write failure — EPIPE
/// from a closed pipe (SIGPIPE is ignored below), ENOSPC, anything that
/// marked the stream — into the I/O exit code, so `silkmoth_cli ... | head`
/// never reports success for output nobody received. A subcommand's own
/// failure code wins over the stdout audit.
int FinishStdout(int code) {
  const bool flush_failed = std::fflush(stdout) != 0;
  if (code == ExitCode(CliExit::kOk) &&
      (flush_failed || std::ferror(stdout) != 0)) {
    std::fprintf(stderr, "stdout write failed (broken pipe or disk full)\n");
    return ExitCode(CliExit::kIo);
  }
  return code;
}

}  // namespace

int main(int argc, char** argv) {
#if SILKMOTH_CLI_HAVE_UNISTD
  // A reader hanging up (| head, a dying daemon peer) must surface as an
  // EPIPE write error handled by FinishStdout / the serve transports — not
  // kill the process with an unhandled SIGPIPE.
  std::signal(SIGPIPE, SIG_IGN);
#endif
  return FinishStdout(RunMain(argc, argv));
}
