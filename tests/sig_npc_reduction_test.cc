// Executable verification of the appendix's NP-completeness reductions on
// small instances: a 3-CNF formula is satisfiable iff the constructed
// inverse-prime subset sum instance has a solution, iff the constructed
// signature decision instance admits a cheap valid signature.

#include "sig/npc_reduction.h"

#include <gtest/gtest.h>

namespace silkmoth {
namespace {

// The appendix's worked example:
// φ = (x1∨x2∨¬x3) ∧ (¬x1∨¬x2∨¬x3) ∧ (¬x1∨¬x2∨x3) ∧ (x1∨¬x2∨x3)
// (satisfiable; the appendix uses x1=x2=x3=true for its walk-through).
CnfFormula PaperFormula() {
  CnfFormula f;
  f.num_variables = 3;
  f.clauses = {{1, 2, -3}, {-1, -2, -3}, {-1, -2, 3}, {1, -2, 3}};
  return f;
}

// Unsatisfiable formula over two variables: all four clauses on (x1, x2).
// Clauses padded to width 3 by repeating a literal (allowed in 3-CNF).
CnfFormula UnsatFormula() {
  CnfFormula f;
  f.num_variables = 2;
  f.clauses = {{1, 2, 2}, {1, -2, -2}, {-1, 2, 2}, {-1, -2, -2}};
  return f;
}

TEST(NpcPrimesTest, PrimesStartAtSeven) {
  const auto primes = PrimesFromSeven(5);
  EXPECT_EQ(primes, (std::vector<int64_t>{7, 11, 13, 17, 19}));
}

TEST(NpcSatTest, BruteForceOracle) {
  EXPECT_TRUE(CnfSatisfiableBruteForce(PaperFormula()));
  EXPECT_FALSE(CnfSatisfiableBruteForce(UnsatFormula()));
}

TEST(NpcReduction1Test, PaperExampleStructure) {
  // n = 3, m = 4: l = 7 primes (7..29), 2n + 2m = 14 numbers.
  const auto inst = ReduceCnfToInversePrimeSubsetSum(PaperFormula());
  ASSERT_EQ(inst.primes.size(), 7u);
  EXPECT_EQ(inst.primes.back(), 29);
  EXPECT_EQ(inst.numbers.size(), 14u);
  // t1 = 1/7 + 1/17 + 1/29: x1 appears positively in clauses 1 and 4.
  EXPECT_EQ(inst.numbers[0].prime_idx, (std::vector<int>{0, 3, 6}));
  // f1 = 1/7 + 1/19 + 1/23: ¬x1 in clauses 2 and 3.
  EXPECT_EQ(inst.numbers[1].prime_idx, (std::vector<int>{0, 4, 5}));
  // Target: each variable prime once, each clause prime three times.
  EXPECT_EQ(inst.target.prime_idx.size(), 3u + 3u * 4u);
}

TEST(NpcReduction1Test, SatInstanceHasSubset) {
  const auto inst = ReduceCnfToInversePrimeSubsetSum(PaperFormula());
  const auto subset = SolveInversePrimeSubsetSum(inst);
  ASSERT_TRUE(subset.has_value());
  // The subset must pick exactly one of t_i/f_i per variable (indices 2i
  // and 2i+1): verify by counting.
  int variable_picks = 0;
  for (size_t idx : *subset) {
    if (idx < 6) ++variable_picks;  // 2n = 6 variable numbers.
  }
  EXPECT_EQ(variable_picks, 3);
}

TEST(NpcReduction1Test, UnsatInstanceHasNoSubset) {
  const auto inst = ReduceCnfToInversePrimeSubsetSum(UnsatFormula());
  EXPECT_FALSE(SolveInversePrimeSubsetSum(inst).has_value());
}

TEST(NpcReduction1Test, EquivalenceOnSmallFormulas) {
  // Sweep several formulas; SAT iff subset exists.
  std::vector<CnfFormula> formulas;
  formulas.push_back(PaperFormula());
  formulas.push_back(UnsatFormula());
  {
    CnfFormula f;  // Single clause, trivially satisfiable.
    f.num_variables = 3;
    f.clauses = {{1, 2, 3}};
    formulas.push_back(f);
  }
  {
    CnfFormula f;  // Forced assignment x1=true, x2=false, satisfiable.
    f.num_variables = 2;
    f.clauses = {{1, 1, 1}, {-2, -2, -2}, {1, -2, -2}};
    formulas.push_back(f);
  }
  for (size_t i = 0; i < formulas.size(); ++i) {
    const bool sat = CnfSatisfiableBruteForce(formulas[i]);
    const auto inst = ReduceCnfToInversePrimeSubsetSum(formulas[i]);
    EXPECT_EQ(SolveInversePrimeSubsetSum(inst).has_value(), sat)
        << "formula " << i;
  }
}

TEST(NpcReduction2Test, StructureFollowsAppendix) {
  const auto subset_sum = ReduceCnfToInversePrimeSubsetSum(PaperFormula());
  const auto decision = ReduceSubsetSumToSignatureDecision(subset_sum);
  // One element per (number, prime) incidence: Σ|P_i|.
  size_t expected_elements = 0;
  for (const auto& a : subset_sum.numbers) {
    expected_elements += a.prime_idx.size();
  }
  EXPECT_EQ(decision.elements.size(), expected_elements);
  // Element r_i^p has p tokens (t_i plus p-1 dummies).
  EXPECT_EQ(decision.elements[0].size(), 7u);  // t1's first prime is 7.
  EXPECT_GT(decision.delta, 0.0);
  EXPECT_LT(decision.delta, 1.0);
}

TEST(NpcReduction2Test, EndToEndEquivalence) {
  // SAT formula -> affordable valid signature exists; UNSAT -> none.
  // Use compact formulas so the token-subset enumeration stays tiny.
  {
    CnfFormula f;
    f.num_variables = 2;
    f.clauses = {{1, 2, 2}};  // Satisfiable.
    const auto ss = ReduceCnfToInversePrimeSubsetSum(f);
    const auto decision = ReduceSubsetSumToSignatureDecision(ss);
    EXPECT_TRUE(SolveInversePrimeSubsetSum(ss).has_value());
    EXPECT_TRUE(SignatureDecisionBruteForce(decision));
  }
  {
    const auto ss = ReduceCnfToInversePrimeSubsetSum(UnsatFormula());
    const auto decision = ReduceSubsetSumToSignatureDecision(ss);
    EXPECT_FALSE(SolveInversePrimeSubsetSum(ss).has_value());
    EXPECT_FALSE(SignatureDecisionBruteForce(decision));
  }
}

TEST(NpcReduction2Test, DummyTokensNeverAffordable) {
  const auto ss = ReduceCnfToInversePrimeSubsetSum(UnsatFormula());
  const auto decision = ReduceSubsetSumToSignatureDecision(ss);
  for (size_t t = ss.numbers.size(); t < decision.list_size.size(); ++t) {
    EXPECT_GT(decision.list_size[t], decision.k);
  }
}

}  // namespace
}  // namespace silkmoth
