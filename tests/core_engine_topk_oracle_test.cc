// SearchTopK oracle parity: the floating-floor top-k pass must be
// output-identical to scoring everything with Search and keeping the k best
// (relatedness descending, set id ascending) — across metrics, k values
// spanning 1 to beyond the corpus, tie-heavy corpora, and both the exact
// and --approx-scores reporting modes. On top of parity, the whole point of
// the floor: the top-k pass must do strictly less Hungarian work
// (exact_solves + reporting_solves) than the oracle when the floor engages.

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "core/engine.h"
#include "core/options.h"
#include "datagen/builders.h"
#include "datagen/dblp.h"
#include "text/similarity.h"

namespace silkmoth {
namespace {

struct OracleConfig {
  const char* name;
  Relatedness metric;
  SimilarityKind phi;
  double delta;
  double alpha;
  bool exact_scores;
};

Options MakeOptions(const OracleConfig& cfg) {
  Options opt;
  opt.metric = cfg.metric;
  opt.phi = cfg.phi;
  opt.delta = cfg.delta;
  opt.alpha = cfg.alpha;
  opt.exact_scores = cfg.exact_scores;
  if (IsEditSimilarity(cfg.phi)) opt.q = MaxQForAlpha(cfg.alpha);
  return opt;
}

Collection MakeData(const OracleConfig& cfg, size_t sets) {
  DblpParams p;
  p.num_titles = sets;
  p.vocabulary = 40;
  p.min_words = 2;
  p.max_words = 5;
  p.duplicate_rate = 0.5;  // Tie-heavy: exact duplicates force tie-breaks.
  p.typo_rate = 0.2;
  p.seed = 20260808;
  const Options opt = MakeOptions(cfg);
  if (IsEditSimilarity(cfg.phi)) {
    return BuildCollection(GenerateDblpSets(p), TokenizerKind::kQGram,
                           opt.EffectiveQ());
  }
  return BuildCollection(GenerateDblpSets(p), TokenizerKind::kWord);
}

// The score-everything oracle: full Search, sorted the way SearchTopK
// promises to sort (relatedness descending, ties by ascending set id),
// truncated to k.
std::vector<SearchMatch> Oracle(const SilkMoth& engine, const SetRecord& ref,
                                size_t k, SearchStats* stats) {
  std::vector<SearchMatch> all = engine.Search(ref, stats);
  std::sort(all.begin(), all.end(),
            [](const SearchMatch& a, const SearchMatch& b) {
              if (a.relatedness != b.relatedness) {
                return a.relatedness > b.relatedness;
              }
              return a.set_id < b.set_id;
            });
  if (all.size() > k) all.resize(k);
  return all;
}

class TopKOracleSweep : public ::testing::TestWithParam<OracleConfig> {};

TEST_P(TopKOracleSweep, TopKIsOutputIdenticalToScoreEverything) {
  const OracleConfig cfg = GetParam();
  const Options opt = MakeOptions(cfg);
  Collection data = MakeData(cfg, 40);
  SilkMoth engine(&data, opt);
  ASSERT_TRUE(engine.ok()) << engine.error();

  const std::vector<size_t> ks = {1, 5, data.sets.size(),
                                  data.sets.size() + 10};
  for (size_t k : ks) {
    SearchStats oracle_stats;
    SearchStats topk_stats;
    size_t nonempty = 0;
    for (const SetRecord& ref : data.sets) {
      if (ref.Empty()) continue;
      const std::vector<SearchMatch> expected =
          Oracle(engine, ref, k, &oracle_stats);
      const std::vector<SearchMatch> got =
          engine.SearchTopK(ref, k, &topk_stats);
      ASSERT_EQ(got.size(), expected.size())
          << cfg.name << ": size mismatch at k " << k;
      for (size_t i = 0; i < got.size(); ++i) {
        EXPECT_EQ(got[i].set_id, expected[i].set_id)
            << cfg.name << ": rank " << i << " at k " << k;
        // Same candidate, same decision path (the floor only removes
        // candidates that cannot rank), so the reported scores are
        // bit-identical in both reporting modes.
        EXPECT_DOUBLE_EQ(got[i].matching_score, expected[i].matching_score)
            << cfg.name << ": rank " << i << " at k " << k;
        EXPECT_DOUBLE_EQ(got[i].relatedness, expected[i].relatedness)
            << cfg.name << ": rank " << i << " at k " << k;
      }
      if (!expected.empty()) ++nonempty;
    }
    EXPECT_GT(nonempty, 0u) << cfg.name << " at k " << k;

    // The floor never adds Hungarian work, and the oracle never floor-
    // rejects.
    EXPECT_LE(topk_stats.exact_solves + topk_stats.reporting_solves,
              oracle_stats.exact_solves + oracle_stats.reporting_solves)
        << cfg.name << " at k " << k;
    EXPECT_EQ(oracle_stats.heap_floor_rejects, 0u);

    if (k == 1) {
      // k far below the match count on a duplicate-heavy corpus: the floor
      // must actually engage and pay for itself.
      EXPECT_GT(topk_stats.heap_floor_rejects, 0u) << cfg.name;
      if (cfg.exact_scores) {
        EXPECT_LT(topk_stats.exact_solves + topk_stats.reporting_solves,
                  oracle_stats.exact_solves + oracle_stats.reporting_solves)
            << cfg.name;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Workloads, TopKOracleSweep,
    ::testing::Values(
        OracleConfig{"similarity_jaccard_exact", Relatedness::kSimilarity,
                     SimilarityKind::kJaccard, 0.4, 0.4, true},
        OracleConfig{"similarity_jaccard_approx", Relatedness::kSimilarity,
                     SimilarityKind::kJaccard, 0.4, 0.4, false},
        OracleConfig{"containment_jaccard_exact", Relatedness::kContainment,
                     SimilarityKind::kJaccard, 0.5, 0.0, true},
        OracleConfig{"containment_jaccard_approx", Relatedness::kContainment,
                     SimilarityKind::kJaccard, 0.5, 0.0, false},
        OracleConfig{"similarity_eds_exact", Relatedness::kSimilarity,
                     SimilarityKind::kEds, 0.4, 0.6, true}),
    [](const ::testing::TestParamInfo<OracleConfig>& info) {
      return info.param.name;
    });

}  // namespace
}  // namespace silkmoth
