// Figure 6 reproduction: runtime of the refinement filters (NOFILTER,
// CHECK, NEARESTNEIGHBOR) as θ varies, for the three applications, using
// the DICHOTOMY signature scheme and no reduction (Section 8.3).
//
// Expected shape (paper): NEARESTNEIGHBOR < CHECK < NOFILTER for all θ and
// α, with up to two orders of magnitude on inclusion dependency.

#include <iostream>

#include "bench_common.h"

int main() {
  using namespace silkmoth;
  using namespace silkmoth::bench;

  PrintHeader("Figure 6", "filters vs theta (DICHOTOMY, no reduction)");

  struct FilterMode {
    const char* name;
    bool check;
    bool nn;
  };
  const FilterMode kModes[] = {{"NOFILTER", false, false},
                               {"CHECK", true, false},
                               {"NEARESTNEIGHBOR", true, true}};
  const double kDeltas[] = {0.7, 0.75, 0.8, 0.85};

  struct App {
    const char* figure;
    Workload workload;
  };
  std::vector<App> apps;
  apps.push_back({"6a String Matching (alpha=0.8)",
                  StringMatchingWorkload(Scaled(500))});
  apps.push_back({"6b Schema Matching (alpha=0)",
                  SchemaMatchingWorkload(Scaled(1200))});
  apps.push_back({"6c Inclusion Dependency (alpha=0.5)",
                  InclusionDependencyWorkload(Scaled(2500), Scaled(40))});

  for (App& app : apps) {
    std::cout << "--- Figure " << app.figure << " ---\n";
    TablePrinter table({"theta(delta)", "filter", "time(s)", "verifications",
                        "results"});
    for (double delta : kDeltas) {
      for (const FilterMode& mode : kModes) {
        Workload w = app.workload;
        w.options.delta = delta;
        w.options.scheme = SignatureSchemeKind::kDichotomy;
        w.options.check_filter = mode.check;
        w.options.nn_filter = mode.nn;
        w.options.reduction = false;
        const RunResult r = RunSilkMoth(w);
        table.AddRow({TablePrinter::Num(delta, 2), mode.name,
                      TablePrinter::Num(r.seconds, 3),
                      TablePrinter::Int(
                          static_cast<long long>(r.stats.verifications)),
                      TablePrinter::Int(static_cast<long long>(r.results))});
      }
    }
    table.Print(std::cout);
    std::cout << "\n";
  }
  return 0;
}
