#include "serve/server.h"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <sstream>

#include "datagen/builders.h"
#include "datagen/io.h"
#include "snapshot/shard_runner.h"
#include "util/exit_codes.h"
#include "util/fault_injection.h"

#if defined(__unix__) || defined(__APPLE__)
#define SILKMOTH_SERVE_HAVE_POSIX 1
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>
#else
#define SILKMOTH_SERVE_HAVE_POSIX 0
#endif

namespace silkmoth {
namespace serve {

namespace {

/// Formats one pair line exactly the way `query --snapshot` prints it — the
/// byte-parity contract of kResult bodies.
void AppendPairLine(std::string* out, const PairMatch& p) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "%u\t%u\t%.6f\t%.6f\n", p.ref_id, p.set_id,
                p.matching_score, p.relatedness);
  *out += buf;
}

Frame ErrorFrame(uint64_t request_id, const char* code,
                 const std::string& detail) {
  Frame f;
  f.type = FrameType::kError;
  f.request_id = request_id;
  f.body = std::string(code) + ": " + detail + "\n";
  return f;
}

}  // namespace

ServeEngine::ServeEngine(ServeOptions options) : options_(std::move(options)) {
  if (options_.workers < 1) options_.workers = 1;
  // A request is served single-threaded on its worker lane — the
  // share-nothing discipline; concurrency comes from the worker count.
  options_.query.num_threads = 1;
}

ServeEngine::~ServeEngine() { Stop(); }

std::shared_ptr<ServeEngine::Generation> ServeEngine::MakeGeneration(
    std::shared_ptr<const Snapshot> snap,
    std::shared_ptr<const DeltaShard> delta) {
  auto gen = std::make_shared<Generation>();
  gen->snap = std::move(snap);
  gen->delta = std::move(delta);
  gen->views.reserve(gen->snap->num_shards() + 1);
  for (size_t s = 0; s < gen->snap->num_shards(); ++s) {
    gen->views.push_back(
        ShardView{gen->snap->shards[s].range, &gen->snap->shards[s].index});
  }
  // The delta streams as one more shard; its view borrows the DeltaShard
  // the generation holds, so the epoch reference covers it too.
  if (gen->delta != nullptr && gen->delta->delta_sets() > 0) {
    gen->views.push_back(gen->delta->View());
  }
  return gen;
}

std::shared_ptr<const ServeEngine::Generation> ServeEngine::Publish(
    std::shared_ptr<Generation> gen) {
  std::lock_guard<std::mutex> lk(gen_mu_);
  gen->id = next_generation_id_++;
  current_ = gen;
  // In-flight requests keep their reference to the old generation; its
  // mapping (and delta, if any) goes away when the last of them finishes —
  // never under a live view.
  return current_;
}

std::shared_ptr<const ServeEngine::Generation> ServeEngine::Current() const {
  std::lock_guard<std::mutex> lk(gen_mu_);
  return current_;
}

std::string ServeEngine::Start() {
  Snapshot snap;
  const std::string err =
      LoadSnapshot(options_.snapshot_path, &snap, options_.load_mode);
  if (!err.empty()) return err;
  return StartWith(std::move(snap));
}

std::string ServeEngine::StartWith(Snapshot snap) {
  if (started_) return "serve engine already started";
  const std::string compat = CheckSnapshotCompatible(snap, options_.query);
  if (!compat.empty()) return compat;
  auto gen = Publish(
      MakeGeneration(std::make_shared<Snapshot>(std::move(snap)), nullptr));
  {
    std::lock_guard<std::mutex> lk(stats_mu_);
    stats_.Reset(gen->views.size());
  }
  queues_ = std::make_unique<AdmissionQueues>(
      static_cast<size_t>(options_.workers), options_.max_queue,
      options_.max_inflight_bytes);
  workers_.reserve(static_cast<size_t>(options_.workers));
  for (int w = 0; w < options_.workers; ++w) {
    workers_.emplace_back([this, w] { WorkerLoop(static_cast<size_t>(w)); });
  }
  started_ = true;
  return "";
}

void ServeEngine::Stop() {
  if (!started_ || stopped_) return;
  stopped_ = true;
  queues_->Shutdown();
  for (std::thread& t : workers_) t.join();
  workers_.clear();
}

void ServeEngine::Submit(Frame frame, RespondFn respond) {
  switch (frame.type) {
    case FrameType::kPing: {
      Frame pong;
      pong.type = FrameType::kPong;
      pong.request_id = frame.request_id;
      pong.body = StatusJson() + "\n";
      respond(std::move(pong));
      return;
    }
    case FrameType::kQuery: {
      ServeRequest req;
      req.charged_bytes = frame.body.size();
      if (options_.request_deadline_seconds > 0.0) {
        // The deadline starts at admission, so queue wait counts against it
        // — a request that waited out its budget in the queue is answered
        // DEADLINE_EXCEEDED, not served stale.
        req.deadline = std::chrono::steady_clock::now() +
                       std::chrono::duration_cast<
                           std::chrono::steady_clock::duration>(
                           std::chrono::duration<double>(
                               options_.request_deadline_seconds));
      }
      const uint64_t id = frame.request_id;
      req.frame = std::move(frame);
      req.respond = std::move(respond);
      if (queues_->TryPush(req)) {
        counters_.requests_admitted.fetch_add(1, std::memory_order_relaxed);
        return;
      }
      // Shed, explicitly — never a silent hang. TryPush left req intact.
      counters_.requests_shed.fetch_add(1, std::memory_order_relaxed);
      Frame shed;
      shed.type = FrameType::kOverloaded;
      shed.request_id = id;
      shed.body = "overloaded: queue depth or in-flight byte limit reached\n";
      req.respond(std::move(shed));
      return;
    }
    case FrameType::kIngest:
      // Applied inline on the injector thread: ingest mutates the shared
      // dictionary, so it has to serialize under tokenize_mu_ anyway —
      // queueing it would only add reordering against the queries already
      // admitted.
      respond(HandleIngest(frame));
      return;
    default:
      // A response-typed (or shutdown) frame is not servable here; answer
      // with a typed error instead of dropping it on the floor.
      counters_.malformed_frames.fetch_add(1, std::memory_order_relaxed);
      respond(ErrorFrame(frame.request_id, "bad-type",
                         std::string("frame type '") +
                             FrameTypeName(frame.type) +
                             "' is not servable"));
      return;
  }
}

std::string ServeEngine::Swap() {
  const fault::Outcome outcome = fault::Hit("swap-open");
  if (outcome.kind == fault::Outcome::kFail) {
    return "injected swap-open failure";
  }
  if (options_.snapshot_path.empty()) {
    return "serve: no snapshot path to reload";
  }
  Snapshot snap;
  const std::string err =
      LoadSnapshot(options_.snapshot_path, &snap, options_.load_mode);
  if (!err.empty()) return err;
  const std::string compat = CheckSnapshotCompatible(snap, options_.query);
  if (!compat.empty()) return compat;
  {
    // tokenize_mu_ serializes the swap against a concurrent ingest, which
    // also reads-then-republishes the current generation — without it an
    // ingest racing this swap could resurrect the replaced base.
    std::lock_guard<std::mutex> tk(tokenize_mu_);
    const std::shared_ptr<const Generation> old = Current();
    // A higher generation counter means the incoming snapshot is a
    // compacted descendant — the ingested sets now live in the base, so
    // starting the new epoch with no delta *drains* rather than drops them.
    if (old != nullptr && old->snap != nullptr &&
        snap.generation > old->snap->generation) {
      counters_.compactions.fetch_add(1, std::memory_order_relaxed);
    }
    Publish(
        MakeGeneration(std::make_shared<Snapshot>(std::move(snap)), nullptr));
    counters_.delta_sets.store(0, std::memory_order_relaxed);
    counters_.delta_oov_tokens.store(0, std::memory_order_relaxed);
  }
  counters_.swap_generations.fetch_add(1, std::memory_order_relaxed);
  return "";
}

Frame ServeEngine::HandleIngest(const Frame& frame) {
  RawSets raw;
  {
    std::istringstream in(frame.body);
    ReadRawSets(in, &raw);
  }
  if (raw.empty()) {
    return ErrorFrame(frame.request_id, "bad-request",
                      "ingest body holds no sets");
  }
  std::shared_ptr<const Generation> published;
  std::shared_ptr<const DeltaShard> next_delta;
  std::string err;
  {
    // One critical section from read-current to publish: ingest interns
    // OOV tokens into the generation's shared dictionary (the
    // BuildQueryBlock single-writer rule), and concurrent ingests cloning
    // the same generation would silently lose each other's sets.
    std::lock_guard<std::mutex> lk(tokenize_mu_);
    const std::shared_ptr<const Generation> cur = Current();
    if (cur->delta != nullptr) {
      next_delta = cur->delta->WithIngested(raw, &err);
    } else {
      const Snapshot& snap = *cur->snap;
      const int q = snap.tokenizer == TokenizerKind::kQGram ? snap.q : 0;
      auto fresh =
          std::make_shared<DeltaShard>(&snap.data, snap.tokenizer, q);
      err = fresh->Ingest(raw);
      if (err.empty()) next_delta = std::move(fresh);
    }
    if (next_delta == nullptr) {
      return ErrorFrame(frame.request_id, "ingest-failed",
                        err.empty() ? "unknown ingest failure" : err);
    }
    published = Publish(MakeGeneration(cur->snap, next_delta));
    counters_.delta_sets.store(next_delta->delta_sets(),
                               std::memory_order_relaxed);
    counters_.delta_oov_tokens.store(next_delta->oov_tokens(),
                                     std::memory_order_relaxed);
  }
  Frame resp;
  resp.type = FrameType::kIngested;
  resp.request_id = frame.request_id;
  resp.body =
      "{\"generation\":" + std::to_string(published->id) +
      ",\"delta_sets\":" + std::to_string(next_delta->delta_sets()) +
      ",\"delta_oov_tokens\":" + std::to_string(next_delta->oov_tokens()) +
      "}\n";
  return resp;
}

uint64_t ServeEngine::generation_id() const {
  std::lock_guard<std::mutex> lk(gen_mu_);
  return current_ ? current_->id : 0;
}

std::string ServeEngine::StatusJson() const {
  std::string j = "{\"generation\":" + std::to_string(generation_id());
  j += ",\"workers\":" + std::to_string(options_.workers);
  j += ",\"queue_depth\":" +
       std::to_string(queues_ ? queues_->Depth() : 0);
  j += ",\"counters\":" + counters_.ToJson();
  j += "}";
  return j;
}

ShardedSearchStats ServeEngine::StatsSnapshot() const {
  std::lock_guard<std::mutex> lk(stats_mu_);
  return stats_;
}

void ServeEngine::WorkerLoop(size_t worker) {
  ServeRequest req;
  while (queues_->Pop(worker, &req)) {
    const fault::Outcome outcome = fault::Hit("worker-dequeue");
    Frame resp;
    if (outcome.kind == fault::Outcome::kFail) {
      // An injected worker fault answers this one request with an internal
      // error and the worker keeps draining — one poisoned request must
      // never take the lane down.
      counters_.worker_faults.fetch_add(1, std::memory_order_relaxed);
      resp = ErrorFrame(req.frame.request_id, "internal",
                        "injected worker fault");
    } else {
      resp = Execute(req);
    }
    counters_.requests_served.fetch_add(1, std::memory_order_relaxed);
    if (req.respond) req.respond(std::move(resp));
    queues_->Release(req.charged_bytes);
    req = ServeRequest{};  // Drop the respond closure before blocking again.
  }
}

Frame ServeEngine::Execute(const ServeRequest& req) {
  // The epoch reference: this request serves against exactly one
  // generation, held alive for the whole execution even if a Swap() lands
  // mid-request.
  const std::shared_ptr<const Generation> gen = Current();
  const Snapshot& snap = *gen->snap;
  // With a delta, the corpus is the combined collection (base set views +
  // delta sets, one shared dictionary) — global set ids, so pair lines come
  // out exactly as a compacted snapshot of the same state would emit them.
  const Collection& corpus =
      gen->delta != nullptr ? gen->delta->combined() : snap.data;

  RawSets raw;
  {
    std::istringstream in(req.frame.body);
    ReadRawSets(in, &raw);
  }
  Collection query;
  ReferenceBlock block;
  {
    // Interning OOV tokens mutates the generation's shared dictionary —
    // the BuildQueryBlock single-writer rule — so tokenization serializes.
    // Discovery below never reads the dictionary and runs fully parallel.
    std::lock_guard<std::mutex> lk(tokenize_mu_);
    const int q = snap.tokenizer == TokenizerKind::kQGram ? snap.q : 0;
    block = BuildQueryBlock(raw, snap.tokenizer, q, corpus, &query);
  }

  // Shard-at-a-time execution with deadline checks between shards: each
  // shard runs through the same DiscoverAcrossShards driver as a one-shard
  // span, which is exactly how out-of-process shard-run slices the work —
  // the concatenation, re-sorted to the canonical (ref_id, set_id) order,
  // is byte-identical to the whole-span run (the merge parity contract).
  const size_t num_shards = gen->views.size();
  ShardedSearchStats request_stats;
  request_stats.Reset(num_shards);
  std::vector<PairMatch> pairs;
  MergeCoverage cov;
  cov.num_shards = static_cast<uint32_t>(num_shards);
  bool expired = false;
  for (size_t s = 0; s < num_shards; ++s) {
    if (req.deadline != std::chrono::steady_clock::time_point::max() &&
        std::chrono::steady_clock::now() >= req.deadline) {
      expired = true;
      for (size_t m = s; m < num_shards; ++m) {
        cov.missing.push_back(static_cast<uint32_t>(m));
      }
      break;
    }
    ShardedSearchStats one;
    one.Reset(1);
    std::vector<PairMatch> shard_pairs = DiscoverAcrossShards(
        block, corpus, std::span<const ShardView>(&gen->views[s], 1),
        options_.query, &one);
    request_stats.per_shard[s].Merge(one.per_shard[0]);
    pairs.insert(pairs.end(), shard_pairs.begin(), shard_pairs.end());
    cov.covered.push_back(static_cast<uint32_t>(s));
    cov.covered_ranges.push_back(gen->views[s].range);
    // Per-shard fault site: `serve-shard:sleep:MS` makes every shard slow —
    // how the deadline tests force a mid-request expiry deterministically.
    fault::Hit("serve-shard");
  }
  cov.complete = !expired;
  std::sort(pairs.begin(), pairs.end(), [](const PairMatch& a,
                                           const PairMatch& b) {
    return a.ref_id != b.ref_id ? a.ref_id < b.ref_id : a.set_id < b.set_id;
  });

  {
    std::lock_guard<std::mutex> lk(stats_mu_);
    stats_.Merge(request_stats);
  }

  Frame resp;
  resp.request_id = req.frame.request_id;
  if (expired) {
    counters_.deadline_exceeded.fetch_add(1, std::memory_order_relaxed);
    resp.type = FrameType::kDeadlineExceeded;
    // The shard-result v5 coverage stamp, verbatim — partial output is
    // explicitly stamped, never passed off as complete.
    resp.body = FormatCoverage(cov);
  } else {
    resp.type = FrameType::kResult;
  }
  for (const PairMatch& p : pairs) AppendPairLine(&resp.body, p);
  return resp;
}

// ---------------------------------------------------------------------------
// Signal flags + transports.

namespace {

std::atomic<bool> g_serve_term{false};
std::atomic<bool> g_serve_hup{false};

#if SILKMOTH_SERVE_HAVE_POSIX
void ServeTermHandler(int) { g_serve_term.store(true); }
void ServeHupHandler(int) { g_serve_hup.store(true); }
#endif

}  // namespace

bool ServeTermRequested() { return g_serve_term.load(); }

bool ConsumeServeHup() { return g_serve_hup.exchange(false); }

void InstallServeSignalHandlers() {
#if SILKMOTH_SERVE_HAVE_POSIX
  // No SA_RESTART: a signal must interrupt the blocking read/poll with
  // EINTR so the transport loop notices the flag promptly.
  struct sigaction sa;
  std::memset(&sa, 0, sizeof(sa));
  sigemptyset(&sa.sa_mask);
  sa.sa_handler = ServeHupHandler;
  sigaction(SIGHUP, &sa, nullptr);
  sa.sa_handler = ServeTermHandler;
  sigaction(SIGTERM, &sa, nullptr);
  sigaction(SIGINT, &sa, nullptr);
#endif
}

#if SILKMOTH_SERVE_HAVE_POSIX

namespace {

/// Full-write of one encoded frame to `fd` under `mu` (responses from
/// concurrent workers must never interleave mid-frame). False on failure,
/// counted in write_errors; the `frame-write` fault site injects one.
bool WriteFrameToFd(int fd, const Frame& frame, std::mutex& mu,
                    ServeCounters& counters) {
  const fault::Outcome outcome = fault::Hit("frame-write");
  if (outcome.kind == fault::Outcome::kFail) {
    counters.write_errors.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  const std::string bytes = EncodeFrame(frame);
  std::lock_guard<std::mutex> lk(mu);
  size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n = ::write(fd, bytes.data() + off, bytes.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      counters.write_errors.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    off += static_cast<size_t>(n);
  }
  return true;
}

/// Counts submitted-but-unanswered frames so a transport can drain before
/// closing its fd — a response must never race the close.
struct PendingGate {
  std::mutex mu;
  std::condition_variable cv;
  size_t n = 0;

  void Add() {
    std::lock_guard<std::mutex> lk(mu);
    ++n;
  }
  void Done() {
    std::lock_guard<std::mutex> lk(mu);
    if (--n == 0) cv.notify_all();
  }
  void Wait() {
    std::unique_lock<std::mutex> lk(mu);
    cv.wait(lk, [&] { return n == 0; });
  }
};

void SwapOnHup(ServeEngine& engine) {
  if (!ConsumeServeHup()) return;
  const std::string err = engine.Swap();
  if (err.empty()) {
    std::fprintf(stderr, "# hot-swap: generation %llu now serving\n",
                 static_cast<unsigned long long>(engine.generation_id()));
  } else {
    // A failed swap keeps the old generation serving — degraded but alive.
    std::fprintf(stderr, "# hot-swap failed (still serving generation "
                         "%llu): %s\n",
                 static_cast<unsigned long long>(engine.generation_id()),
                 err.c_str());
  }
}

}  // namespace

int RunStdioServer(ServeEngine& engine) {
  FrameDecoder decoder(engine.options().max_frame_bytes);
  std::mutex write_mu;
  PendingGate pending;
  auto respond = [&](Frame f) {
    WriteFrameToFd(STDOUT_FILENO, f, write_mu, engine.counters());
    pending.Done();
  };

  int code = ExitCode(CliExit::kOk);
  bool stop = false;
  char buf[1 << 16];
  while (!stop && !ServeTermRequested()) {
    SwapOnHup(engine);
    const ssize_t n = ::read(STDIN_FILENO, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;  // Signal; loop re-checks the flags.
      std::fprintf(stderr, "serve: stdin read failed: %s\n",
                   std::strerror(errno));
      code = ExitCode(CliExit::kIo);
      break;
    }
    if (n == 0) {
      if (decoder.MidFrame()) {
        // EOF inside a frame: the peer died mid-send. Count it and exit
        // with the corrupt-input code — the stream was torn.
        engine.counters().malformed_frames.fetch_add(
            1, std::memory_order_relaxed);
        std::fprintf(stderr, "serve: stdin closed mid-frame\n");
        code = ExitCode(CliExit::kCorruptInput);
      }
      break;
    }
    const fault::Outcome fo = fault::Hit("frame-read");
    if (fo.kind == fault::Outcome::kFail) {
      std::fprintf(stderr, "serve: injected frame-read failure\n");
      code = ExitCode(CliExit::kIo);
      break;
    }
    decoder.Feed(buf, static_cast<size_t>(n));
    Frame frame;
    FrameDecoder::Status st;
    while ((st = decoder.Next(&frame)) == FrameDecoder::Status::kFrame) {
      if (frame.type == FrameType::kShutdown) {
        Frame bye;
        bye.type = FrameType::kPong;
        bye.request_id = frame.request_id;
        bye.body = "goodbye\n";
        WriteFrameToFd(STDOUT_FILENO, bye, write_mu, engine.counters());
        stop = true;
        break;
      }
      pending.Add();
      engine.Submit(std::move(frame), respond);
    }
    if (stop) break;
    if (st != FrameDecoder::Status::kNeedMore) {
      // Framing violation: answer with one typed error frame and stop —
      // with a single peer on a byte pipe there is no safe way to find the
      // next frame boundary. The daemon exits cleanly, it never crashes.
      engine.counters().malformed_frames.fetch_add(1,
                                                   std::memory_order_relaxed);
      WriteFrameToFd(
          STDOUT_FILENO,
          ErrorFrame(0, FrameDecoder::StatusName(st),
                     "malformed frame; closing"),
          write_mu, engine.counters());
      std::fprintf(stderr, "serve: malformed frame (%s); exiting\n",
                   FrameDecoder::StatusName(st));
      code = ExitCode(CliExit::kCorruptInput);
      break;
    }
  }

  pending.Wait();  // Every submitted request answers before fd 1 is done.
  engine.Stop();
  return code;
}

namespace {

/// One socket connection: the fd (owned by the injector thread after
/// accept), a write lock so worker responses never interleave, and a
/// pending gate so the fd outlives every in-flight response.
struct Conn {
  int fd = -1;
  std::mutex fd_mu;     // Guards fd against shutdown-after-close.
  std::mutex write_mu;
  PendingGate pending;

  /// Wakes a blocked read (server exit path); never closes.
  void ShutdownBothEnds() {
    std::lock_guard<std::mutex> lk(fd_mu);
    if (fd >= 0) ::shutdown(fd, SHUT_RDWR);
  }
  void Close() {
    std::lock_guard<std::mutex> lk(fd_mu);
    if (fd >= 0) {
      ::close(fd);
      fd = -1;
    }
  }
};

/// Serves one accepted connection: decode, submit, respond; a framing
/// violation answers with a typed error frame and closes only this
/// connection — the daemon keeps serving everyone else.
void HandleConnection(ServeEngine& engine, std::shared_ptr<Conn> conn,
                      std::atomic<bool>* shutdown_requested) {
  FrameDecoder decoder(engine.options().max_frame_bytes);
  auto respond = [&engine, conn](Frame f) {
    WriteFrameToFd(conn->fd, f, conn->write_mu, engine.counters());
    conn->pending.Done();
  };
  const int fd = conn->fd;
  char buf[1 << 16];
  bool stop = false;
  while (!stop) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (n == 0) {
      if (decoder.MidFrame()) {
        // Mid-frame disconnect: counted, connection dropped, daemon fine.
        engine.counters().malformed_frames.fetch_add(
            1, std::memory_order_relaxed);
      }
      break;
    }
    const fault::Outcome fo = fault::Hit("frame-read");
    if (fo.kind == fault::Outcome::kFail) break;  // Treat as peer loss.
    decoder.Feed(buf, static_cast<size_t>(n));
    Frame frame;
    FrameDecoder::Status st;
    while ((st = decoder.Next(&frame)) == FrameDecoder::Status::kFrame) {
      if (frame.type == FrameType::kShutdown) {
        Frame bye;
        bye.type = FrameType::kPong;
        bye.request_id = frame.request_id;
        bye.body = "goodbye\n";
        WriteFrameToFd(fd, bye, conn->write_mu, engine.counters());
        if (shutdown_requested != nullptr) shutdown_requested->store(true);
        stop = true;
        break;
      }
      conn->pending.Add();
      engine.Submit(std::move(frame), respond);
    }
    if (stop) break;
    if (st != FrameDecoder::Status::kNeedMore) {
      engine.counters().malformed_frames.fetch_add(1,
                                                   std::memory_order_relaxed);
      WriteFrameToFd(fd,
                     ErrorFrame(0, FrameDecoder::StatusName(st),
                                "malformed frame; closing connection"),
                     conn->write_mu, engine.counters());
      break;
    }
  }
  conn->pending.Wait();  // Drain in-flight responses before the close.
  conn->Close();
}

}  // namespace

int RunSocketServer(ServeEngine& engine, const std::string& socket_path) {
  sockaddr_un addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sun_family = AF_UNIX;
  if (socket_path.size() >= sizeof(addr.sun_path)) {
    std::fprintf(stderr, "serve: socket path too long: %s\n",
                 socket_path.c_str());
    return ExitCode(CliExit::kUsage);
  }
  std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);

  const int lfd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (lfd < 0) {
    std::fprintf(stderr, "serve: socket(): %s\n", std::strerror(errno));
    return ExitCode(CliExit::kIo);
  }
  // Replace a stale socket file unconditionally: after a kill -9 the old
  // file survives, and restart must need no recovery step.
  ::unlink(socket_path.c_str());
  if (::bind(lfd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(lfd, 64) != 0) {
    std::fprintf(stderr, "serve: cannot listen on %s: %s\n",
                 socket_path.c_str(), std::strerror(errno));
    ::close(lfd);
    return ExitCode(CliExit::kIo);
  }
  std::fprintf(stderr, "# serving generation %llu on %s (%d workers)\n",
               static_cast<unsigned long long>(engine.generation_id()),
               socket_path.c_str(), engine.options().workers);

  std::atomic<bool> shutdown_requested{false};
  std::vector<std::shared_ptr<Conn>> conns;
  std::vector<std::thread> threads;
  while (!ServeTermRequested() && !shutdown_requested.load()) {
    SwapOnHup(engine);
    pollfd pfd;
    pfd.fd = lfd;
    pfd.events = POLLIN;
    pfd.revents = 0;
    const int pr = ::poll(&pfd, 1, 100);
    if (pr < 0) {
      if (errno == EINTR) continue;
      std::fprintf(stderr, "serve: poll(): %s\n", std::strerror(errno));
      break;
    }
    if (pr == 0 || (pfd.revents & POLLIN) == 0) continue;
    const int cfd = ::accept(lfd, nullptr, nullptr);
    if (cfd < 0) continue;
    auto conn = std::make_shared<Conn>();
    conn->fd = cfd;
    conns.push_back(conn);
    threads.emplace_back([&engine, conn, &shutdown_requested] {
      HandleConnection(engine, conn, &shutdown_requested);
    });
  }

  ::close(lfd);
  ::unlink(socket_path.c_str());
  // Wake every injector still blocked in read(); each drains its in-flight
  // responses and closes its own fd.
  for (const auto& conn : conns) conn->ShutdownBothEnds();
  for (std::thread& t : threads) t.join();
  engine.Stop();
  return ExitCode(CliExit::kOk);
}

#else  // !SILKMOTH_SERVE_HAVE_POSIX

int RunStdioServer(ServeEngine&) {
  std::fprintf(stderr, "serve: transports need POSIX I/O\n");
  return ExitCode(CliExit::kIo);
}

int RunSocketServer(ServeEngine&, const std::string&) {
  std::fprintf(stderr, "serve: transports need POSIX I/O\n");
  return ExitCode(CliExit::kIo);
}

#endif  // SILKMOTH_SERVE_HAVE_POSIX

}  // namespace serve
}  // namespace silkmoth
