#ifndef SILKMOTH_UTIL_MMAP_REGION_H_
#define SILKMOTH_UTIL_MMAP_REGION_H_

#include <cstddef>
#include <memory>
#include <string>

namespace silkmoth {

/// RAII read-only view of a whole file, preferring mmap.
///
/// `Map` maps the file read-only when the platform supports it and falls
/// back to reading the bytes into an owned buffer otherwise (or when the
/// map itself fails), so callers get one uniform `data()/size()` span
/// either way. The region is movable but not copyable; moving transfers
/// the mapping, and the bytes stay at the same address — any view handed
/// out against `data()` survives a move of the region (but never its
/// destruction: a view must not outlive its region).
class MmapRegion {
 public:
  MmapRegion() = default;
  ~MmapRegion();

  MmapRegion(const MmapRegion&) = delete;
  MmapRegion& operator=(const MmapRegion&) = delete;
  MmapRegion(MmapRegion&& other) noexcept;
  MmapRegion& operator=(MmapRegion&& other) noexcept;

  /// Maps (or, on fallback, reads) `path`. Any previous contents are
  /// released first. Returns "" on success, else a one-line error; on
  /// failure the region is empty.
  std::string Map(const std::string& path);

  /// Reads `path` into an owned buffer, never mapping — the copy-load
  /// baseline and the non-mmap-platform path. Same contract as Map.
  std::string Read(const std::string& path);

  /// First byte of the file (nullptr when empty or unloaded). The pointer
  /// is aligned at least to max_align_t (page-aligned when mapped), so
  /// 8-aligned file offsets are 8-aligned in memory.
  const char* data() const { return data_; }

  /// Number of bytes visible through data().
  size_t size() const { return size_; }

  /// True when the bytes come from a live mmap (false: owned buffer).
  bool is_mapped() const { return map_base_ != nullptr; }

  /// Releases the mapping or buffer; the region becomes empty.
  void Reset();

 private:
  const char* data_ = nullptr;
  size_t size_ = 0;
  void* map_base_ = nullptr;  ///< Non-null only for a real mmap.
  size_t map_size_ = 0;
  std::unique_ptr<char[]> buffer_;  ///< Fallback ownership.
};

}  // namespace silkmoth

#endif  // SILKMOTH_UTIL_MMAP_REGION_H_
