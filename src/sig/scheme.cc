#include "sig/scheme.h"

namespace silkmoth {

Signature GenerateSignature(const SetRecord& set, const InvertedIndex& index,
                            const SchemeParams& params) {
  switch (params.scheme) {
    case SignatureSchemeKind::kWeighted:
      return WeightedSignature(set, index, params);
    case SignatureSchemeKind::kCombUnweighted:
      return CombUnweightedSignature(set, index, params);
    case SignatureSchemeKind::kSkyline:
      return SkylineSignature(set, index, params);
    case SignatureSchemeKind::kDichotomy:
      return DichotomySignature(set, index, params);
  }
  return WeightedSignature(set, index, params);
}

}  // namespace silkmoth
