#include <algorithm>
#include <cmath>
#include <numeric>

#include "sig/greedy_internal.h"
#include "sig/scheme.h"
#include "sig/simthresh.h"
#include "text/similarity.h"

namespace silkmoth {
namespace {

/// One removable token occurrence (unweighted scheme counts per-occurrence).
struct Occurrence {
  uint32_t elem;
  uint32_t token_slot;  // Index into the element's units.
  size_t cost;
  TokenId token;
};

}  // namespace

Signature CombUnweightedSignature(const SetRecord& set,
                                  const InvertedIndex& index,
                                  const SchemeParams& params) {
  const std::vector<ElementUnits> units = MakeElementUnits(set, params.phi);
  const size_t n = units.size();

  Signature sig;
  sig.probe.resize(n);
  sig.miss_bound.resize(n);
  sig.alpha_protected.assign(n, 0);
  std::vector<double> li_bound(n, 1.0);

  // c = ⌈θ⌉: a related set must share tokens with at least c element pairs
  // (the state-of-the-art count argument of Section 4.2), so removing up to
  // c-1 occurrences keeps the signature valid.
  const long long budget =
      static_cast<long long>(std::ceil(params.theta - kFloatSlack)) - 1;

  // Expand every (element, token) occurrence (chunk multiplicity expands).
  std::vector<Occurrence> occs;
  for (uint32_t i = 0; i < n; ++i) {
    for (uint32_t j = 0; j < units[i].tokens.size(); ++j) {
      for (uint32_t m = 0; m < units[i].mults[j]; ++m) {
        occs.push_back(Occurrence{i, j, index.ListSize(units[i].tokens[j]),
                                  units[i].tokens[j]});
      }
    }
  }

  if (budget >= static_cast<long long>(occs.size())) {
    // Everything would be removed: no valid unweighted signature exists; the
    // engine must scan all sets for this reference.
    for (size_t i = 0; i < n; ++i) sig.miss_bound[i] = 1.0;
    sig.valid = false;
    FinalizeSignature(&sig, params, li_bound);
    return sig;
  }

  // Remove the `budget` most expensive occurrences.
  std::sort(occs.begin(), occs.end(), [](const Occurrence& a,
                                         const Occurrence& b) {
    if (a.cost != b.cost) return a.cost > b.cost;
    if (a.token != b.token) return a.token < b.token;
    return a.elem < b.elem;
  });
  std::vector<std::vector<uint32_t>> removed(n);  // Removal count per slot.
  for (uint32_t i = 0; i < n; ++i) removed[i].resize(units[i].tokens.size());
  for (long long r = 0; r < budget; ++r) {
    removed[occs[r].elem][occs[r].token_slot] += 1;
  }

  for (uint32_t i = 0; i < n; ++i) {
    const ElementUnits& u = units[i];
    std::vector<TokenId> kept;
    size_t kept_units = 0;
    size_t kept_cost = 0;
    for (uint32_t j = 0; j < u.tokens.size(); ++j) {
      const uint32_t left = u.mults[j] - std::min(u.mults[j], removed[i][j]);
      if (left > 0) {
        kept.push_back(u.tokens[j]);
        kept_units += left;
        kept_cost += index.ListSize(u.tokens[j]);
      }
    }
    const size_t removed_units = u.total_units - kept_units;
    sig.miss_bound[i] = u.BoundAfter(kept_units == 0 ? 0 : kept_units);
    // Weighted-formula miss bound over the kept tokens is always a sound
    // per-element bound, whatever scheme validity rests on.
    (void)removed_units;

    // Sim-thresh alternative (Section 6.2's combination): protect the
    // element with its b_i cheapest units when that probes less.
    const size_t b = SimThreshUnits(u, params.alpha);
    bool use_simthresh = false;
    std::vector<TokenId> mi;
    size_t mi_units = 0;
    if (b != kNoSimThresh) {
      std::vector<size_t> order(u.tokens.size());
      std::iota(order.begin(), order.end(), size_t{0});
      std::sort(order.begin(), order.end(), [&](size_t a, size_t c) {
        const size_t ca = index.ListSize(u.tokens[a]);
        const size_t cc = index.ListSize(u.tokens[c]);
        if (ca != cc) return ca < cc;
        return u.tokens[a] < u.tokens[c];
      });
      size_t mi_cost = 0;
      for (size_t idx : order) {
        if (mi_units >= b) break;
        mi.push_back(u.tokens[idx]);
        mi_units += u.mults[idx];
        mi_cost += index.ListSize(u.tokens[idx]);
      }
      use_simthresh = mi_cost < kept_cost;
    }

    if (use_simthresh) {
      std::sort(mi.begin(), mi.end());
      sig.probe[i] = std::move(mi);
      sig.alpha_protected[i] = 1;
      sig.miss_bound[i] = 0.0;
      li_bound[i] = u.BoundAfter(mi_units);
    } else {
      sig.probe[i] = std::move(kept);
      li_bound[i] = u.BoundAfter(kept_units);
    }
  }

  FinalizeSignature(&sig, params, li_bound);

  // Validity. The c = ⌈θ⌉ count argument needs "φ_α > 0 ⇒ the pair shares a
  // token": true for Jaccard (word overlap is required for Jac > 0), and
  // true for edit similarity only when α > 0 and every element can host a
  // sim-thresh set (q < α/(1-α), footnote 11) — then φ ≥ α forces at least
  // g_i - D_i >= 1 shared chunks. Otherwise fall back to the weighted-sum
  // criterion; when that also fails the engine must scan all sets (§7.3).
  bool count_sound = !IsEditSimilarity(params.phi);
  if (!count_sound && params.alpha > kFloatSlack) {
    count_sound = true;
    for (const auto& u : units) {
      count_sound &= SimThreshUnits(u, params.alpha) != kNoSimThresh;
    }
  }
  sig.valid =
      count_sound || sig.miss_bound_sum < params.theta - kFloatSlack;
  return sig;
}

}  // namespace silkmoth
