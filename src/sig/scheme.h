#ifndef SILKMOTH_SIG_SCHEME_H_
#define SILKMOTH_SIG_SCHEME_H_

#include "sig/signature.h"

namespace silkmoth {

/// Generates a signature for reference set `set` under `params`, using the
/// inverted list lengths of `index` as token costs (Problem 3/4's greedy
/// heuristics; exact selection is NP-complete, Theorems 2 and 4).
///
/// Dispatches on params.scheme:
///  - WEIGHTED       Section 4.3's cost/value greedy (α ignored at build).
///  - COMBUNWEIGHTED remove-⌈θ⌉-1 occurrences scheme + sim-thresh cut
///                   (the FastJoin-style signature of Section 6.2 / 8.2).
///  - SKYLINE        weighted greedy then per-element sim-thresh cut (§6.3).
///  - DICHOTOMY      cost/value greedy with element completion (§6.4).
Signature GenerateSignature(const SetRecord& set, const InvertedIndex& index,
                            const SchemeParams& params);

/// The WEIGHTED scheme (Section 4.3): cost/value greedy token selection.
/// Ignores α at build time; exposed directly for tests and benchmarks.
Signature WeightedSignature(const SetRecord& set, const InvertedIndex& index,
                            const SchemeParams& params);
/// The combined unweighted scheme (Section 6.2): remove-⌈θ⌉-1 occurrences
/// plus the sim-thresh cut — the FastJoin-style signature of §8.2.
Signature CombUnweightedSignature(const SetRecord& set,
                                  const InvertedIndex& index,
                                  const SchemeParams& params);
/// The SKYLINE scheme (Section 6.3): weighted greedy followed by a
/// per-element sim-thresh cut.
Signature SkylineSignature(const SetRecord& set, const InvertedIndex& index,
                           const SchemeParams& params);
/// The DICHOTOMY scheme (Section 6.4, the paper's strongest): cost/value
/// greedy with element completion.
Signature DichotomySignature(const SetRecord& set, const InvertedIndex& index,
                             const SchemeParams& params);

}  // namespace silkmoth

#endif  // SILKMOTH_SIG_SCHEME_H_
