#ifndef SILKMOTH_DATAGEN_IO_H_
#define SILKMOTH_DATAGEN_IO_H_

#include <iosfwd>
#include <string>

#include "datagen/builders.h"

namespace silkmoth {

/// Plain-text raw-set format:
///   - one element per line,
///   - sets separated by a single blank line,
///   - '#'-prefixed lines at the top are comments.
/// This is the on-disk interchange format for the examples and for users
/// bringing their own data.

/// Writes `sets` in the text format. Returns false on I/O failure.
bool SaveRawSets(const RawSets& sets, const std::string& path);
void WriteRawSets(const RawSets& sets, std::ostream& out);

/// Reads sets from the text format. Returns false on I/O failure.
bool LoadRawSets(const std::string& path, RawSets* sets);
void ReadRawSets(std::istream& in, RawSets* sets);

}  // namespace silkmoth

#endif  // SILKMOTH_DATAGEN_IO_H_
