// Approximate string matching (the paper's DBLP application, Section 8.1).
//
// Generates a corpus of publication-style titles containing planted
// near-duplicates, then runs RELATED SET DISCOVERY under SET-SIMILARITY
// with edit similarity (Eds): each title is a set, each word an element,
// each q-gram a token. Prints the discovered near-duplicate title pairs.
//
// Usage: string_matching [num_titles] [delta] [alpha]

#include <cstdio>
#include <cstdlib>

#include "core/engine.h"
#include "datagen/dblp.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  using namespace silkmoth;

  const size_t num_titles =
      argc > 1 ? static_cast<size_t>(std::atoll(argv[1])) : 400;
  Options options;
  options.metric = Relatedness::kSimilarity;
  options.phi = SimilarityKind::kEds;
  options.delta = argc > 2 ? std::atof(argv[2]) : 0.7;
  options.alpha = argc > 3 ? std::atof(argv[3]) : 0.8;

  DblpParams params;
  params.num_titles = num_titles;
  params.duplicate_rate = 0.15;
  params.typo_rate = 0.15;
  const std::vector<std::string> titles = GenerateDblpTitles(params);
  Collection data = BuildCollection(GenerateDblpSets(params),
                                    TokenizerKind::kQGram,
                                    options.EffectiveQ());

  SilkMoth engine(&data, options);
  if (!engine.ok()) {
    std::fprintf(stderr, "bad options: %s\n", engine.error().c_str());
    return 1;
  }

  std::printf("string matching: %zu titles, delta=%.2f alpha=%.2f q=%d\n",
              num_titles, options.delta, options.alpha,
              options.EffectiveQ());
  WallTimer timer;
  SearchStats stats;
  auto pairs = engine.DiscoverSelf(&stats);
  std::printf("found %zu related title pairs in %.3fs "
              "(%zu candidates, %zu verified)\n\n",
              pairs.size(), timer.ElapsedSeconds(), stats.initial_candidates,
              stats.verifications);

  const size_t show = pairs.size() < 10 ? pairs.size() : 10;
  for (size_t i = 0; i < show; ++i) {
    std::printf("%.3f  \"%s\"\n       \"%s\"\n", pairs[i].relatedness,
                titles[pairs[i].ref_id].c_str(),
                titles[pairs[i].set_id].c_str());
  }
  if (pairs.size() > show) {
    std::printf("... and %zu more\n", pairs.size() - show);
  }
  return 0;
}
