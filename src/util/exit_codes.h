#ifndef SILKMOTH_UTIL_EXIT_CODES_H_
#define SILKMOTH_UTIL_EXIT_CODES_H_

namespace silkmoth {

/// The single documented exit-code contract of `silkmoth_cli` (see
/// docs/CLI.md, "Exit codes"; pinned by tests/cli_errors_test.sh and
/// tests/orchestrator_fault_matrix_test.sh). Every subcommand maps its
/// failure onto exactly one of these, so scripts and the orchestrator can
/// branch on *why* a process failed, not just that it did.
enum class CliExit : int {
  kOk = 0,            ///< Success.
  kIo = 1,            ///< I/O failure: missing/unreadable input file,
                      ///< write/rename failure.
  kUsage = 2,         ///< Usage or validation error: unknown subcommand or
                      ///< flag, missing required flag, invalid option
                      ///< values.
  kCorruptInput = 3,  ///< A file opened but failed its integrity gate: bad
                      ///< magic/version/CRC, truncated or malformed
                      ///< snapshot or shard-result content.
  kIncompatible = 4,  ///< Structurally valid inputs that must not combine:
                      ///< snapshot/option mismatch (φ / q), shard results
                      ///< that disagree on options, payload, shard count,
                      ///< or coverage.
  kWorkerFailure = 5, ///< `run` strict mode: at least one shard exhausted
                      ///< its retries.
  kPartialResult = 6, ///< `run`/`merge` with --allow-partial produced
                      ///< output that covers only a subset of shards —
                      ///< explicitly stamped, never silent.
};

/// The integer a main() returns for `code`.
inline int ExitCode(CliExit code) { return static_cast<int>(code); }

}  // namespace silkmoth

#endif  // SILKMOTH_UTIL_EXIT_CODES_H_
