#include "core/engine.h"

#include <gtest/gtest.h>

#include "core/brute_force.h"
#include "paper_example.h"

namespace silkmoth {
namespace {

using test::MakePaperExample;

Options PaperOptions(Relatedness metric, SignatureSchemeKind scheme =
                                             SignatureSchemeKind::kDichotomy) {
  Options o;
  o.metric = metric;
  o.phi = SimilarityKind::kJaccard;
  o.delta = 0.7;
  o.scheme = scheme;
  return o;
}

TEST(EngineSearchTest, PaperExample2OnlyS4IsContained) {
  auto ex = MakePaperExample();
  SilkMoth engine(&ex.data, PaperOptions(Relatedness::kContainment));
  ASSERT_TRUE(engine.ok());
  auto matches = engine.Search(ex.ref);
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0].set_id, 3u);  // S4.
  EXPECT_NEAR(matches[0].matching_score, 0.8 + 1.0 + 3.0 / 7.0, 1e-9);
  EXPECT_NEAR(matches[0].relatedness, 0.743, 0.001);
}

TEST(EngineSearchTest, SimilarityAtSameThresholdFindsNothing) {
  // similar(R, S4) = 2.229/(3+3-2.229) ≈ 0.591 < 0.7 (Example 3's claimed
  // 0.743 is the containment value; Definition 1 gives 0.591).
  auto ex = MakePaperExample();
  SilkMoth engine(&ex.data, PaperOptions(Relatedness::kSimilarity));
  ASSERT_TRUE(engine.ok());
  EXPECT_TRUE(engine.Search(ex.ref).empty());
}

TEST(EngineSearchTest, LowerSimilarityThresholdFindsS4) {
  auto ex = MakePaperExample();
  Options o = PaperOptions(Relatedness::kSimilarity);
  o.delta = 0.55;
  SilkMoth engine(&ex.data, o);
  auto matches = engine.Search(ex.ref);
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0].set_id, 3u);
  EXPECT_NEAR(matches[0].relatedness, 2.2285714 / (6 - 2.2285714), 1e-6);
}

TEST(EngineSearchTest, AgreesWithBruteForceAcrossSchemes) {
  auto ex = MakePaperExample();
  for (auto scheme :
       {SignatureSchemeKind::kWeighted, SignatureSchemeKind::kCombUnweighted,
        SignatureSchemeKind::kSkyline, SignatureSchemeKind::kDichotomy}) {
    for (auto metric :
         {Relatedness::kSimilarity, Relatedness::kContainment}) {
      for (double delta : {0.3, 0.5, 0.7, 0.9}) {
        Options o = PaperOptions(metric, scheme);
        o.delta = delta;
        SilkMoth engine(&ex.data, o);
        BruteForce oracle(&ex.data, o);
        EXPECT_EQ(engine.Search(ex.ref), oracle.Search(ex.ref))
            << SignatureSchemeName(scheme) << " " << RelatednessName(metric)
            << " delta=" << delta;
      }
    }
  }
}

TEST(EngineSearchTest, AlphaVariantsAgreeWithBruteForce) {
  auto ex = MakePaperExample();
  for (double alpha : {0.0, 0.25, 0.5, 0.75}) {
    for (auto scheme :
         {SignatureSchemeKind::kSkyline, SignatureSchemeKind::kDichotomy}) {
      Options o = PaperOptions(Relatedness::kContainment, scheme);
      o.alpha = alpha;
      SilkMoth engine(&ex.data, o);
      BruteForce oracle(&ex.data, o);
      EXPECT_EQ(engine.Search(ex.ref), oracle.Search(ex.ref))
          << "alpha=" << alpha << " " << SignatureSchemeName(scheme);
    }
  }
}

TEST(EngineSearchTest, EmptyReferenceReturnsNothing) {
  auto ex = MakePaperExample();
  SilkMoth engine(&ex.data, PaperOptions(Relatedness::kContainment));
  SetRecord empty;
  EXPECT_TRUE(engine.Search(empty).empty());
}

TEST(EngineSearchTest, InvalidOptionsReported) {
  auto ex = MakePaperExample();
  Options o = PaperOptions(Relatedness::kContainment);
  o.delta = 0.0;
  SilkMoth engine(&ex.data, o);
  EXPECT_FALSE(engine.ok());
  EXPECT_NE(engine.error(), "");
  EXPECT_TRUE(engine.Search(ex.ref).empty());
}

TEST(EngineSearchTest, StatsAreAccumulated) {
  auto ex = MakePaperExample();
  SilkMoth engine(&ex.data, PaperOptions(Relatedness::kContainment));
  SearchStats stats;
  engine.Search(ex.ref, &stats);
  EXPECT_EQ(stats.references, 1u);
  EXPECT_GT(stats.initial_candidates, 0u);
  EXPECT_GT(stats.verifications, 0u);
  EXPECT_EQ(stats.results, 1u);
}

TEST(EngineSearchTest, FiltersOffStillExact) {
  auto ex = MakePaperExample();
  Options o = PaperOptions(Relatedness::kContainment);
  o.check_filter = false;
  o.nn_filter = false;
  SilkMoth engine(&ex.data, o);
  BruteForce oracle(&ex.data, o);
  EXPECT_EQ(engine.Search(ex.ref), oracle.Search(ex.ref));
}

TEST(EngineSearchTest, FilterPipelineShrinksCandidates) {
  auto ex = MakePaperExample();
  Options all = PaperOptions(Relatedness::kContainment,
                             SignatureSchemeKind::kWeighted);
  SilkMoth engine(&ex.data, all);
  SearchStats stats;
  engine.Search(ex.ref, &stats);
  // Paper walk-through: 3 initial candidates, 2 after check, 1 after NN.
  EXPECT_EQ(stats.initial_candidates, 3u);
  EXPECT_EQ(stats.after_check, 2u);
  EXPECT_EQ(stats.after_nn, 1u);
  EXPECT_EQ(stats.verifications, 1u);
}

}  // namespace
}  // namespace silkmoth
