// Edge cases a downstream user will hit: duplicate sets, degenerate
// thresholds, references larger than anything indexed, identical
// collections, and near-1 α.

#include <gtest/gtest.h>

#include "core/brute_force.h"
#include "core/engine.h"
#include "datagen/builders.h"

namespace silkmoth {
namespace {

Options Opt(Relatedness metric, double delta, double alpha = 0.0) {
  Options o;
  o.metric = metric;
  o.phi = SimilarityKind::kJaccard;
  o.delta = delta;
  o.alpha = alpha;
  return o;
}

TEST(EdgeCaseTest, DuplicateSetsAllFound) {
  RawSets raw = {{"a b", "c d"}, {"a b", "c d"}, {"a b", "c d"}, {"x y"}};
  Collection data = BuildCollection(raw, TokenizerKind::kWord);
  SilkMoth engine(&data, Opt(Relatedness::kSimilarity, 1.0));
  auto pairs = engine.DiscoverSelf();
  // Three identical sets: pairs (0,1), (0,2), (1,2), all with score 1.
  ASSERT_EQ(pairs.size(), 3u);
  for (const auto& p : pairs) EXPECT_DOUBLE_EQ(p.relatedness, 1.0);
}

TEST(EdgeCaseTest, DeltaOneMeansExactEquivalence) {
  RawSets raw = {{"a b", "c d"}, {"a b", "c e"}, {"a b", "c d"}};
  Collection data = BuildCollection(raw, TokenizerKind::kWord);
  SilkMoth engine(&data, Opt(Relatedness::kSimilarity, 1.0));
  BruteForce oracle(&data, Opt(Relatedness::kSimilarity, 1.0));
  auto pairs = engine.DiscoverSelf();
  EXPECT_EQ(pairs, oracle.DiscoverSelf());
  ASSERT_EQ(pairs.size(), 1u);  // Only the exact duplicate pair (0, 2).
  EXPECT_EQ(pairs[0].ref_id, 0u);
  EXPECT_EQ(pairs[0].set_id, 2u);
}

TEST(EdgeCaseTest, ReferenceLargerThanEverySetUnderContainment) {
  RawSets raw = {{"a b"}, {"c d"}};
  Collection data = BuildCollection(raw, TokenizerKind::kWord);
  SetRecord big = BuildReference({"a b", "c d", "e f"}, TokenizerKind::kWord,
                                 0, &data);
  Options o = Opt(Relatedness::kContainment, 0.5);
  SilkMoth engine(&data, o);
  EXPECT_TRUE(engine.Search(big).empty());  // Definition 2: |R| <= |S|.
  o.enforce_containment_size = false;
  SilkMoth relaxed(&data, o);
  BruteForce oracle(&data, o);
  EXPECT_EQ(relaxed.Search(big), oracle.Search(big));
}

TEST(EdgeCaseTest, AlphaNearOneKeepsOnlyExactElements) {
  RawSets raw = {{"a b c", "d e f"}, {"a b c", "d e x"}};
  Collection data = BuildCollection(raw, TokenizerKind::kWord);
  Options o = Opt(Relatedness::kContainment, 0.5, /*alpha=*/0.99);
  SilkMoth engine(&data, o);
  BruteForce oracle(&data, o);
  SetRecord ref = BuildReference({"a b c", "d e f"}, TokenizerKind::kWord, 0,
                                 &data);
  auto matches = engine.Search(ref);
  EXPECT_EQ(matches, oracle.Search(ref));
  // Set 0 matches (both elements exact: m = 2, contain = 1); set 1 has only
  // one exact element (m = 1, contain = 0.5 >= 0.5).
  ASSERT_EQ(matches.size(), 2u);
  EXPECT_DOUBLE_EQ(matches[0].relatedness, 1.0);
  EXPECT_DOUBLE_EQ(matches[1].relatedness, 0.5);
}

TEST(EdgeCaseTest, SingleElementSets) {
  RawSets raw = {{"alpha beta gamma"}, {"alpha beta delta"}, {"zz"}};
  Collection data = BuildCollection(raw, TokenizerKind::kWord);
  for (double delta : {0.3, 0.6, 0.9}) {
    Options o = Opt(Relatedness::kSimilarity, delta);
    SilkMoth engine(&data, o);
    BruteForce oracle(&data, o);
    EXPECT_EQ(engine.DiscoverSelf(), oracle.DiscoverSelf()) << delta;
  }
}

TEST(EdgeCaseTest, CollectionWithEmptySet) {
  RawSets raw = {{"a b"}, {}, {"a c"}};
  Collection data = BuildCollection(raw, TokenizerKind::kWord);
  ASSERT_EQ(data.NumSets(), 3u);  // Set ids preserved.
  Options o = Opt(Relatedness::kSimilarity, 0.3);
  SilkMoth engine(&data, o);
  BruteForce oracle(&data, o);
  auto pairs = engine.DiscoverSelf();
  EXPECT_EQ(pairs, oracle.DiscoverSelf());
  for (const auto& p : pairs) {
    EXPECT_NE(p.ref_id, 1u);  // The empty set relates to nothing.
    EXPECT_NE(p.set_id, 1u);
  }
}

TEST(EdgeCaseTest, AllSetsIdenticalQuadraticOutput) {
  RawSets raw;
  for (int i = 0; i < 12; ++i) raw.push_back({"same old", "set here"});
  Collection data = BuildCollection(raw, TokenizerKind::kWord);
  SilkMoth engine(&data, Opt(Relatedness::kSimilarity, 0.9));
  auto pairs = engine.DiscoverSelf();
  EXPECT_EQ(pairs.size(), 12u * 11u / 2u);
}

TEST(EdgeCaseTest, DisjointVocabulariesFindNothing) {
  RawSets raw = {{"a b", "c d"}, {"e f", "g h"}, {"i j", "k l"}};
  Collection data = BuildCollection(raw, TokenizerKind::kWord);
  SilkMoth engine(&data, Opt(Relatedness::kSimilarity, 0.1));
  SearchStats stats;
  EXPECT_TRUE(engine.DiscoverSelf(&stats).empty());
  // The signatures should prevent any candidate from forming at all.
  EXPECT_EQ(stats.initial_candidates, stats.references);  // Only self-hits.
}

TEST(EdgeCaseTest, WhitespaceOnlyElementsVanish) {
  RawSets raw = {{"  ", "\t", "real token"}};
  Collection data = BuildCollection(raw, TokenizerKind::kWord);
  ASSERT_EQ(data.sets[0].Size(), 1u);
  EXPECT_EQ(data.sets[0].elements[0].text, "real token");
}

}  // namespace
}  // namespace silkmoth
