#include "baseline/fastjoin.h"

namespace silkmoth {
namespace {

Options FastJoinOptions(Options options) {
  options.scheme = SignatureSchemeKind::kCombUnweighted;
  options.check_filter = false;
  options.nn_filter = false;
  options.reduction = false;
  return options;
}

}  // namespace

FastJoin::FastJoin(const Collection* data, Options options)
    : engine_(data, FastJoinOptions(options)),
      options_(FastJoinOptions(options)) {
  error_ = engine_.error();
  if (error_.empty() && options_.metric != Relatedness::kSimilarity) {
    error_ = "FastJoin supports SET-SIMILARITY only";
  }
  if (error_.empty() && !IsEditSimilarity(options_.phi)) {
    error_ = "FastJoin supports edit similarity only";
  }
}

std::vector<SearchMatch> FastJoin::Search(const SetRecord& ref,
                                          SearchStats* stats) const {
  if (!ok()) return {};
  return engine_.Search(ref, stats);
}

std::vector<PairMatch> FastJoin::DiscoverSelf(SearchStats* stats) const {
  if (!ok()) return {};
  return engine_.DiscoverSelf(stats);
}

}  // namespace silkmoth
