#ifndef SILKMOTH_UTIL_ZIPF_H_
#define SILKMOTH_UTIL_ZIPF_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/rng.h"

namespace silkmoth {

/// Zipfian sampler over ranks {0, 1, ..., n-1}.
///
/// Rank k is drawn with probability proportional to 1 / (k+1)^skew. The
/// cumulative distribution is precomputed once so each sample is a binary
/// search (O(log n)). Real-world token frequencies (DBLP words, web-table
/// values) are heavily skewed; the paper's candidate-count behaviour depends
/// on that skew, so the synthetic generators all sample through this class.
class ZipfDistribution {
 public:
  /// Builds a sampler over `n` ranks with exponent `skew` (>= 0).
  /// skew == 0 degenerates to the uniform distribution.
  ZipfDistribution(size_t n, double skew);

  /// Draws one rank in [0, n).
  size_t Sample(Rng* rng) const;

  size_t n() const { return cdf_.size(); }
  double skew() const { return skew_; }

  /// Probability mass of rank `k` (for tests).
  double Pmf(size_t k) const;

 private:
  double skew_;
  std::vector<double> cdf_;
};

}  // namespace silkmoth

#endif  // SILKMOTH_UTIL_ZIPF_H_
