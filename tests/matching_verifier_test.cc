#include "matching/verifier.h"

#include <gtest/gtest.h>

#include "datagen/builders.h"
#include "paper_example.h"
#include "util/rng.h"

namespace silkmoth {
namespace {

using test::MakePaperExample;

TEST(VerifierTest, PaperExampleMatchingScore) {
  // Example 2: |R ∩̃ S4| = 0.8 + 1 + 3/7 ≈ 2.229.
  auto ex = MakePaperExample();
  MaxMatchingVerifier verifier(GetSimilarity(SimilarityKind::kJaccard), 0.0,
                               /*use_reduction=*/false);
  const double m = verifier.Score(ex.ref, ex.data.sets[3]);
  EXPECT_NEAR(m, 0.8 + 1.0 + 3.0 / 7.0, 1e-9);
}

TEST(VerifierTest, PaperExampleOtherSetsBelowThreshold) {
  auto ex = MakePaperExample();
  MaxMatchingVerifier verifier(GetSimilarity(SimilarityKind::kJaccard), 0.0,
                               false);
  const double theta = 0.7 * 3;
  for (int s = 0; s < 3; ++s) {
    EXPECT_LT(verifier.Score(ex.ref, ex.data.sets[s]), theta) << "S" << s + 1;
  }
}

TEST(VerifierTest, ReductionPreservesScoreOnPaperData) {
  auto ex = MakePaperExample();
  MaxMatchingVerifier plain(GetSimilarity(SimilarityKind::kJaccard), 0.0,
                            false);
  MaxMatchingVerifier reduced(GetSimilarity(SimilarityKind::kJaccard), 0.0,
                              true);
  for (const SetRecord& s : ex.data.sets) {
    EXPECT_NEAR(plain.Score(ex.ref, s), reduced.Score(ex.ref, s), 1e-9);
  }
}

TEST(VerifierTest, ReductionRemovesIdenticalPairs) {
  RawSets raw = {{"a b", "c d", "e f"}};
  Collection data = BuildCollection(raw, TokenizerKind::kWord);
  SetRecord r = BuildReference({"a b", "c d", "x y"}, TokenizerKind::kWord, 0,
                               &data);
  MaxMatchingVerifier verifier(GetSimilarity(SimilarityKind::kJaccard), 0.0,
                               true);
  ASSERT_TRUE(verifier.ReductionActive());
  MatchingStats stats;
  const double m = verifier.Score(r, data.sets[0], &stats);
  EXPECT_EQ(stats.reduced_pairs, 2u);  // "a b" and "c d".
  EXPECT_NEAR(m, 2.0, 1e-12);          // "x y" matches nothing.
  EXPECT_EQ(stats.matrix_rows, 1u);
  EXPECT_EQ(stats.matrix_cols, 1u);
}

TEST(VerifierTest, ReductionHandlesDuplicateElements) {
  // R has "a" twice, S has "a" once: only one identical pair may be reduced.
  RawSets raw = {{"a", "z z2 z3"}};
  Collection data = BuildCollection(raw, TokenizerKind::kWord);
  SetRecord r = BuildReference({"a", "a"}, TokenizerKind::kWord, 0, &data);
  MaxMatchingVerifier plain(GetSimilarity(SimilarityKind::kJaccard), 0.0,
                            false);
  MaxMatchingVerifier reduced(GetSimilarity(SimilarityKind::kJaccard), 0.0,
                              true);
  MatchingStats stats;
  const double a = plain.Score(r, data.sets[0]);
  const double b = reduced.Score(r, data.sets[0], &stats);
  EXPECT_EQ(stats.reduced_pairs, 1u);
  EXPECT_NEAR(a, b, 1e-12);
}

TEST(VerifierTest, ReductionInactiveWithAlpha) {
  MaxMatchingVerifier v(GetSimilarity(SimilarityKind::kJaccard), 0.5, true);
  EXPECT_FALSE(v.ReductionActive());
}

TEST(VerifierTest, ReductionInactiveForNeds) {
  MaxMatchingVerifier v(GetSimilarity(SimilarityKind::kNeds), 0.0, true);
  EXPECT_FALSE(v.ReductionActive());
}

TEST(VerifierTest, ReductionActiveForEds) {
  MaxMatchingVerifier v(GetSimilarity(SimilarityKind::kEds), 0.0, true);
  EXPECT_TRUE(v.ReductionActive());
}

TEST(VerifierTest, EmptySets) {
  MaxMatchingVerifier v(GetSimilarity(SimilarityKind::kJaccard), 0.0, true);
  SetRecord empty;
  SetRecord other;
  other.AddElement("x", {0});
  EXPECT_DOUBLE_EQ(v.Score(empty, other), 0.0);
  EXPECT_DOUBLE_EQ(v.Score(other, empty), 0.0);
  EXPECT_DOUBLE_EQ(v.Score(empty, empty), 0.0);
}

TEST(VerifierTest, AlphaZeroesWeakEdges) {
  RawSets raw = {{"a b c d"}};
  Collection data = BuildCollection(raw, TokenizerKind::kWord);
  SetRecord r =
      BuildReference({"a b x y"}, TokenizerKind::kWord, 0, &data);  // Jac=1/3.
  MaxMatchingVerifier lo(GetSimilarity(SimilarityKind::kJaccard), 0.0, false);
  MaxMatchingVerifier hi(GetSimilarity(SimilarityKind::kJaccard), 0.5, false);
  EXPECT_NEAR(lo.Score(r, data.sets[0]), 1.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(hi.Score(r, data.sets[0]), 0.0);
}

// Property: reduction never changes the score, across random Jaccard and Eds
// instances with planted duplicates.
class ReductionEquivalenceSweep
    : public ::testing::TestWithParam<SimilarityKind> {};

TEST_P(ReductionEquivalenceSweep, ScoreUnchanged) {
  const SimilarityKind kind = GetParam();
  const bool edit = IsEditSimilarity(kind);
  Rng rng(kind == SimilarityKind::kJaccard ? 101 : 102);
  for (int trial = 0; trial < 60; ++trial) {
    auto random_text = [&]() {
      std::string t;
      const size_t words = 1 + rng.NextBounded(3);
      for (size_t w = 0; w < words; ++w) {
        if (!t.empty()) t.push_back(' ');
        t += "w" + std::to_string(rng.NextBounded(6));
      }
      return t;
    };
    std::vector<std::string> r_texts, s_texts;
    const size_t nr = 1 + rng.NextBounded(5);
    const size_t ns = 1 + rng.NextBounded(5);
    for (size_t i = 0; i < nr; ++i) r_texts.push_back(random_text());
    for (size_t i = 0; i < ns; ++i) {
      // Half the time copy an element from R to create identical pairs.
      if (!r_texts.empty() && rng.NextBool(0.5)) {
        s_texts.push_back(r_texts[rng.NextBounded(r_texts.size())]);
      } else {
        s_texts.push_back(random_text());
      }
    }
    RawSets raw = {s_texts};
    Collection data = BuildCollection(
        raw, edit ? TokenizerKind::kQGram : TokenizerKind::kWord, 2);
    SetRecord r = BuildReference(
        r_texts, edit ? TokenizerKind::kQGram : TokenizerKind::kWord, 2,
        &data);
    MaxMatchingVerifier plain(GetSimilarity(kind), 0.0, false);
    MaxMatchingVerifier reduced(GetSimilarity(kind), 0.0, true);
    EXPECT_NEAR(plain.Score(r, data.sets[0]), reduced.Score(r, data.sets[0]),
                1e-9)
        << "trial " << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(Kinds, ReductionEquivalenceSweep,
                         ::testing::Values(SimilarityKind::kJaccard,
                                           SimilarityKind::kEds));

}  // namespace
}  // namespace silkmoth
