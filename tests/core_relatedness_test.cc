#include "core/relatedness.h"

#include <gtest/gtest.h>

namespace silkmoth {
namespace {

Options Opt(Relatedness metric, double delta = 0.7) {
  Options o;
  o.metric = metric;
  o.delta = delta;
  return o;
}

TEST(ThresholdTest, ThetaIsDeltaTimesRefSize) {
  EXPECT_DOUBLE_EQ(MatchingThreshold(0.7, 3), 2.1);
  EXPECT_DOUBLE_EQ(MatchingThreshold(0.85, 10), 8.5);
  EXPECT_DOUBLE_EQ(MatchingThreshold(1.0, 5), 5.0);
}

TEST(ScoreTest, PaperExample1) {
  // contain = 0.42..., similar = 0.22... for m = 1/3+1/3+3/5, |R|=3, |S|=4.
  const double m = 1.0 / 3 + 1.0 / 3 + 3.0 / 5;
  EXPECT_NEAR(RelatednessScore(m, 3, 4, Opt(Relatedness::kContainment)),
              m / 3.0, 1e-12);
  EXPECT_NEAR(RelatednessScore(m, 3, 4, Opt(Relatedness::kSimilarity)),
              m / (3 + 4 - m), 1e-12);
  EXPECT_NEAR(m / 3.0, 0.42, 0.01);
  EXPECT_NEAR(m / (7 - m), 0.22, 0.01);
}

TEST(ScoreTest, PaperExample2) {
  const double m = 0.8 + 1.0 + 3.0 / 7.0;
  EXPECT_NEAR(RelatednessScore(m, 3, 3, Opt(Relatedness::kContainment)),
              0.743, 0.001);
}

TEST(ScoreTest, EmptySetsScoreZero) {
  EXPECT_DOUBLE_EQ(RelatednessScore(1.0, 0, 3, Opt(Relatedness::kSimilarity)),
                   0.0);
  EXPECT_DOUBLE_EQ(RelatednessScore(1.0, 3, 0, Opt(Relatedness::kSimilarity)),
                   0.0);
}

TEST(ScoreTest, ContainmentSizeEnforcement) {
  Options o = Opt(Relatedness::kContainment);
  EXPECT_DOUBLE_EQ(RelatednessScore(2.0, 3, 2, o), 0.0);  // |S| < |R|.
  o.enforce_containment_size = false;
  EXPECT_NEAR(RelatednessScore(2.0, 3, 2, o), 2.0 / 3.0, 1e-12);
}

TEST(ScoreTest, PerfectSimilarity) {
  // m = |R| = |S| gives similarity 1.
  EXPECT_DOUBLE_EQ(RelatednessScore(4.0, 4, 4, Opt(Relatedness::kSimilarity)),
                   1.0);
}

TEST(IsRelatedTest, ThresholdBoundary) {
  Options o = Opt(Relatedness::kContainment, 0.7);
  // m = 2.1 on |R| = 3 is exactly δ.
  EXPECT_TRUE(IsRelated(2.1, 3, 3, o));
  EXPECT_FALSE(IsRelated(2.0999, 3, 3, o));
  EXPECT_TRUE(IsRelated(2.2, 3, 3, o));
}

TEST(SizeFeasibleTest, SimilarityWindow) {
  // δ = 0.7, |R| = 10: |S| in [7, 14.28] -> 7..14.
  Options o = Opt(Relatedness::kSimilarity);
  EXPECT_FALSE(SizeFeasible(10, 6, o));
  EXPECT_TRUE(SizeFeasible(10, 7, o));
  EXPECT_TRUE(SizeFeasible(10, 10, o));
  EXPECT_TRUE(SizeFeasible(10, 14, o));
  EXPECT_FALSE(SizeFeasible(10, 15, o));
}

TEST(SizeFeasibleTest, ContainmentRule) {
  Options o = Opt(Relatedness::kContainment);
  EXPECT_FALSE(SizeFeasible(5, 4, o));
  EXPECT_TRUE(SizeFeasible(5, 5, o));
  EXPECT_TRUE(SizeFeasible(5, 500, o));
  o.enforce_containment_size = false;
  EXPECT_TRUE(SizeFeasible(5, 4, o));
}

TEST(SizeFeasibleTest, EmptySetsInfeasible) {
  Options o = Opt(Relatedness::kSimilarity);
  EXPECT_FALSE(SizeFeasible(0, 5, o));
  EXPECT_FALSE(SizeFeasible(5, 0, o));
}

}  // namespace
}  // namespace silkmoth
