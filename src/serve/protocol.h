#ifndef SILKMOTH_SERVE_PROTOCOL_H_
#define SILKMOTH_SERVE_PROTOCOL_H_

#include <cstddef>
#include <cstdint>
#include <string>

namespace silkmoth {
namespace serve {

/// Length-prefixed frame protocol of the resident serve daemon
/// (`silkmoth_cli serve`). One frame = a fixed 24-byte little-endian header
/// followed by `body_len` opaque body bytes:
///
///   [0..4)    magic  u32  kFrameMagic ("SMRQ")
///   [4..8)    type   u32  FrameType
///   [8..16)   request_id  u64  echoed verbatim in the response
///   [16..24)  body_len    u64  body bytes that follow
///
/// Request bodies are the plain-text raw-set format (datagen/io.h) for
/// kQuery and kIngest, and empty for kPing/kShutdown. Response bodies are
/// the pair lines of `query --snapshot` output (kResult), a JSON status
/// object (kPong), a one-line diagnostic (kError/kOverloaded), the
/// partial-coverage stamp plus the covered shards' pair lines
/// (kDeadlineExceeded), or a one-line JSON ingest receipt (kIngested).
///
/// The decoder is a strict state machine: bad magic, an unknown type, or a
/// body length over the limit *poisons* the stream — the daemon answers
/// with one typed kError frame and stops parsing that peer, because after a
/// framing violation byte boundaries can no longer be trusted. Truncation
/// (EOF mid-frame) is detectable via MidFrame().

/// Frame magic: the little-endian u32 whose bytes read "SMRQ".
inline constexpr uint32_t kFrameMagic = 0x51524d53u;

/// Serialized header size in bytes.
inline constexpr size_t kFrameHeaderSize = 24;

/// Default cap on body_len — a lying length header must never drive an
/// allocation; `serve --max-frame` overrides it per daemon.
inline constexpr size_t kDefaultMaxFrameBytes = 16u << 20;

/// Frame types. Requests are < 16, responses >= 16, so either side can
/// cheaply tell the two apart; every value not listed here is rejected as
/// kBadType by the decoder.
enum class FrameType : uint32_t {
  kQuery = 1,     ///< Request: body = raw-set payload to discover.
  kPing = 2,      ///< Request: health check; answered inline with kPong.
  kShutdown = 3,  ///< Request: ask the daemon to drain and exit.
  kIngest = 4,    ///< Request: body = raw-set payload to append to the
                  ///< serving corpus's in-memory delta shard.

  kResult = 16,   ///< Response: pair lines, byte-identical to `query`.
  kPong = 17,     ///< Response: JSON status (generation + serve counters).
  kError = 18,    ///< Response: "code: detail" one-liner (protocol or
                  ///< internal failure; the request was not served).
  kOverloaded = 19,        ///< Response: admission shed the request.
  kDeadlineExceeded = 20,  ///< Response: coverage stamp + partial pairs.
  kIngested = 21,          ///< Response: one-line JSON receipt
                           ///< {"generation":G,"delta_sets":N,
                           ///< "delta_oov_tokens":M}.
};

/// True for the type values the protocol defines (request or response).
bool KnownFrameType(uint32_t type);

/// Stable lower-case name of a frame type ("query", "result", ...).
const char* FrameTypeName(FrameType type);

/// One decoded (or to-be-encoded) frame. The body is owned.
struct Frame {
  FrameType type = FrameType::kQuery;  ///< What the frame means.
  uint64_t request_id = 0;             ///< Correlates response to request.
  std::string body;                    ///< Opaque payload bytes.
};

/// Serializes `frame` (header + body) into a byte string.
std::string EncodeFrame(const Frame& frame);

/// Incremental frame parser over an untrusted byte stream. Feed() appends
/// bytes; Next() yields complete frames until the buffer runs dry
/// (kNeedMore) or a framing violation poisons the decoder — after which
/// every Next() repeats the same error and Feed() discards input.
class FrameDecoder {
 public:
  /// Per-frame body-size limit; kDefaultMaxFrameBytes when 0.
  explicit FrameDecoder(size_t max_frame_bytes = kDefaultMaxFrameBytes);

  /// What one Next() call produced.
  enum class Status {
    kFrame,     ///< *out holds the next complete frame.
    kNeedMore,  ///< No complete frame buffered; feed more bytes.
    kBadMagic,  ///< Header magic mismatch — the stream is not frames.
    kBadType,   ///< Header type is not a FrameType value.
    kOversized, ///< Header body_len exceeds the frame-size limit.
  };

  /// Stable lower-case name of an error status ("bad-magic", ...);
  /// "ok" for the two non-error statuses.
  static const char* StatusName(Status status);

  /// Appends `len` raw bytes. No-op once poisoned.
  void Feed(const void* data, size_t len);

  /// Extracts the next complete frame into `*out` (kFrame), or reports why
  /// it cannot: kNeedMore on a clean partial buffer, or the sticky
  /// poisoning error.
  Status Next(Frame* out);

  /// True when the buffer holds a partial frame (header or body cut off) —
  /// what EOF-at-this-point means: the peer disconnected mid-frame.
  bool MidFrame() const { return !poisoned_ && !buffer_.empty(); }

  /// True once a framing violation was seen; the decoder stays dead.
  bool Poisoned() const { return poisoned_; }

 private:
  size_t max_frame_bytes_;
  std::string buffer_;
  bool poisoned_ = false;
  Status error_ = Status::kNeedMore;
};

}  // namespace serve
}  // namespace silkmoth

#endif  // SILKMOTH_SERVE_PROTOCOL_H_
