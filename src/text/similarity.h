#ifndef SILKMOTH_TEXT_SIMILARITY_H_
#define SILKMOTH_TEXT_SIMILARITY_H_

#include <memory>
#include <span>
#include <string>
#include <string_view>

#include "text/dataset.h"

namespace silkmoth {

/// One-sided floating-point slack. Pruning comparisons subtract it so that
/// rounding noise can only weaken a filter (keep a candidate), never drop a
/// true result; acceptance comparisons subtract it so a score equal to the
/// threshold up to rounding is accepted.
inline constexpr double kFloatSlack = 1e-9;

/// Element similarity functions supported by the engine (Section 2.1).
enum class SimilarityKind {
  kJaccard,  ///< |x ∩ y| / |x ∪ y| over word tokens.
  kEds,      ///< 1 - 2*LD / (|x| + |y| + LD), metric dual (preferred).
  kNeds,     ///< 1 - LD / max(|x|, |y|), no metric-dual guarantee.
};

/// Human-readable name ("Jac", "Eds", "NEds").
const char* SimilarityKindName(SimilarityKind kind);

/// True for character-based (edit) similarities, which tokenize to q-grams.
inline bool IsEditSimilarity(SimilarityKind kind) {
  return kind != SimilarityKind::kJaccard;
}

/// Element-to-element similarity φ in [0, 1].
///
/// Implementations are stateless and thread-safe. `ScoreThresholded` applies
/// the α cutoff φ_α of Section 2.1: scores below α collapse to 0. Jaccard
/// compares the sorted-unique `tokens`; the edit similarities compare `text`
/// and exploit α to run a banded Levenshtein.
class ElementSimilarity {
 public:
  virtual ~ElementSimilarity() = default;

  virtual SimilarityKind kind() const = 0;

  /// True when 1 - φ satisfies the triangle inequality, which legalizes
  /// reduction-based verification (Section 5.3): Jaccard and Eds, not NEds.
  virtual bool HasMetricDual() const = 0;

  /// Plain φ(a, b) with no threshold.
  virtual double Score(const Element& a, const Element& b) const = 0;

  /// φ_α(a, b): Score if >= alpha (within slack), else 0. alpha == 0 is the
  /// unthresholded case. Implementations may shortcut via alpha.
  virtual double ScoreThresholded(const Element& a, const Element& b,
                                  double alpha) const;
};

/// Factory for the similarity singleton of a given kind. The returned
/// pointer refers to a process-lifetime object; do not delete it.
const ElementSimilarity* GetSimilarity(SimilarityKind kind);

/// Jaccard similarity of two sorted-unique token id sequences.
double JaccardOfSortedTokens(std::span<const TokenId> a,
                             std::span<const TokenId> b);

/// Eds(a, b) = 1 - 2*LD / (|a| + |b| + LD) from the raw strings.
double EdsOfStrings(std::string_view a, std::string_view b);

/// NEds(a, b) = 1 - LD / max(|a|, |b|) from the raw strings.
double NedsOfStrings(std::string_view a, std::string_view b);

/// Key identifying elements that are "identical" for the reduction-based
/// verification: text for edit similarities, token set for Jaccard.
std::string IdentityKey(const Element& e, SimilarityKind kind);

}  // namespace silkmoth

#endif  // SILKMOTH_TEXT_SIMILARITY_H_
