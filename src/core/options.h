#ifndef SILKMOTH_CORE_OPTIONS_H_
#define SILKMOTH_CORE_OPTIONS_H_

#include <string>

#include "text/similarity.h"

namespace silkmoth {

/// Relatedness metric (Definitions 1 and 2 of the paper).
enum class Relatedness {
  kSimilarity,   ///< |R ∩̃ S| / (|R| + |S| - |R ∩̃ S|) >= δ.
  kContainment,  ///< |R ∩̃ S| / |R| >= δ, defined for |R| <= |S|.
};

const char* RelatednessName(Relatedness metric);

/// Signature schemes evaluated in Section 8.2.
enum class SignatureSchemeKind {
  kWeighted,        ///< Section 4.2; ignores α.
  kCombUnweighted,  ///< Combined unweighted (FastJoin-style, Section 6.2).
  kSkyline,         ///< Section 6.3.
  kDichotomy,       ///< Section 6.4.
};

const char* SignatureSchemeName(SignatureSchemeKind kind);

/// Engine configuration. Defaults reproduce the paper's strongest setting:
/// dichotomy signatures, both refinement filters, reduction-based
/// verification (auto-disabled when illegal).
struct Options {
  /// Relatedness semantics between sets.
  Relatedness metric = Relatedness::kSimilarity;

  /// Element similarity function φ.
  SimilarityKind phi = SimilarityKind::kJaccard;

  /// Relatedness threshold δ in (0, 1]; δ = 0 makes every pair related and
  /// is rejected by Validate() as the paper's footnote 2 notes.
  double delta = 0.7;

  /// Element similarity threshold α in [0, 1). Scores below α count as 0.
  double alpha = 0.0;

  /// q-gram length for edit similarities. 0 selects the largest legal value
  /// q < α/(1-α) (footnote 11), or 2 when α = 0. Ignored for Jaccard.
  int q = 0;

  /// Candidate-generation signature scheme.
  SignatureSchemeKind scheme = SignatureSchemeKind::kDichotomy;

  /// Enables the check filter (Algorithm 1). Implied by nn_filter.
  bool check_filter = true;

  /// Enables the nearest-neighbor filter (Algorithm 2).
  bool nn_filter = true;

  /// Enables reduction-based verification (Section 5.3). Only takes effect
  /// when α = 0 and 1-φ is a metric; otherwise it silently stays off.
  bool reduction = true;

  /// Enforce |R| <= |S| for SET-CONTAINMENT per Definition 2. Pairs with
  /// |S| < |R| are treated as unrelated by both the engine and the
  /// brute-force oracle.
  bool enforce_containment_size = true;

  /// When true (the default), every reported pair carries its exact maximum
  /// matching score: bound-accepted verifications run one extra solve on
  /// the matrix already in hand purely to report it. When false, those
  /// pairs report the greedy-matching *lower bound* instead — the related/
  /// unrelated decision is unchanged (it is the bound's either way), but
  /// the reported matching_score/relatedness may understate the optimum.
  /// Counted in SearchStats::bound_only_scores; an output-affecting option,
  /// so the shard-result protocol fingerprints it.
  bool exact_scores = true;

  /// Number of worker threads for discovery mode (extension; output is
  /// independent of this value).
  int num_threads = 1;

  /// Number of contiguous index shards for ShardedEngine (extension; output
  /// is independent of this value). 1 means one full index — the classic
  /// single-index engine. Values above the set count leave trailing shards
  /// empty, which is legal. SilkMoth itself ignores this field.
  int num_shards = 1;

  /// Resolves q (if 0) given phi and alpha. Returns the effective q.
  int EffectiveQ() const;

  /// Validates ranges and combination constraints. Returns an empty string
  /// when valid, else a human-readable error.
  std::string Validate() const;
};

/// Largest legal q-gram length for a similarity threshold α: the largest
/// integer q with q < α/(1-α) (footnote 11). Returns fallback when α = 0.
int MaxQForAlpha(double alpha, int fallback = 2);

/// Largest q-gram length keeping the weighted signature scheme non-empty
/// for a relatedness threshold δ: the largest integer q with q < δ/(1-δ)
/// (Section 7.3). Larger q makes the engine fall back to full scans for
/// references whose bound Σ|r_i|/(|r_i|+⌈|r_i|/q⌉) cannot drop below θ.
/// Returns 0 when even q = 1 is too large (δ <= 0.5).
int MaxQForDelta(double delta);

}  // namespace silkmoth

#endif  // SILKMOTH_CORE_OPTIONS_H_
