// Corrupt-snapshot robustness: every way a snapshot file can go bad —
// truncation, bad magic/version/endianness, flipped checksum or payload
// bytes, and checksum-valid section-length/count lies — must yield a clean
// error from the loader: never UB, never an OOM-sized allocation, never a
// partially-initialized Snapshot (the output is untouched on failure).
//
// The whole matrix runs through BOTH load paths — the zero-copy mmap path
// and the deep-copy path — because the mmap loader hands out views into the
// file bytes and a missed bounds check there is a wild pointer, not just a
// bad value. Split-container failure modes (missing/corrupt/mismatched
// shard files) are covered at the end, along with the view-lifetime
// contract (queries survive a move of the owning Snapshot).

#include <cstring>
#include <fstream>
#include <string>
#include <utility>

#include <gtest/gtest.h>

#include "core/sharded_engine.h"
#include "datagen/builders.h"
#include "snapshot/shard_runner.h"
#include "snapshot/snapshot.h"

namespace silkmoth {
namespace {

RawSets CorpusRaw() {
  return {
      {"alpha beta gamma", "delta epsilon"},
      {"alpha beta", "zeta eta theta iota"},
      {"gamma delta epsilon zeta"},
      {"kappa lambda mu"},
  };
}

/// Next 8-aligned payload position — mirrors the writer's AlignTo8, so the
/// tests can compute where an aligned array block starts.
size_t Align8(size_t payload_pos) { return (payload_pos + 7) / 8 * 8; }

class SnapshotCorruptionTest
    : public testing::TestWithParam<SnapshotLoadMode> {
 protected:
  void SetUp() override {
    Collection data = BuildCollection(CorpusRaw(), TokenizerKind::kWord);
    Snapshot snap = BuildSnapshot(std::move(data), TokenizerKind::kWord, 0,
                                  /*num_shards=*/2);
    path_ = testing::TempDir() + "/silkmoth_corruption_test.snap";
    ASSERT_EQ(SaveSnapshot(snap, path_), "");
    std::ifstream in(path_, std::ios::binary);
    pristine_.assign(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
    ASSERT_GT(pristine_.size(), kSnapshotHeaderSize);

    // The pristine file must load, or every "rejects corruption" assertion
    // below would be vacuous.
    Snapshot check;
    ASSERT_EQ(LoadSnapshot(path_, &check, GetParam()), "");
    ASSERT_EQ(check.num_shards(), 2u);
    ASSERT_EQ(check.data.sets.size(), 4u);
  }

  void TearDown() override { std::remove(path_.c_str()); }

  /// Recomputes the header checksum over the (possibly doctored) payload, so
  /// mutations get past the CRC gate and must be caught by the structural
  /// bounds checks alone.
  static void FixCrc(std::string* bytes) {
    const uint32_t crc =
        SnapshotCrc32(bytes->data() + kSnapshotHeaderSize,
                      bytes->size() - kSnapshotHeaderSize);
    std::memcpy(bytes->data() + kSnapshotCrcOffset, &crc, 4);
  }

  static void FixPayloadLen(std::string* bytes) {
    const uint64_t len = bytes->size() - kSnapshotHeaderSize;
    std::memcpy(bytes->data() + kSnapshotPayloadLenOffset, &len, 8);
  }

  /// Writes `bytes` to disk and asserts the loader rejects them with an
  /// error mentioning `expect_substr`, leaving the output untouched.
  void ExpectRejected(const std::string& bytes,
                      const std::string& expect_substr) {
    {
      std::ofstream out(path_, std::ios::binary | std::ios::trunc);
      out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    }
    // Sentinel state: a failed load must not disturb any of it.
    Snapshot out;
    out.q = -42;
    out.tokenizer = TokenizerKind::kQGram;
    const std::string err = LoadSnapshot(path_, &out, GetParam());
    ASSERT_FALSE(err.empty()) << "corrupt snapshot loaded cleanly ("
                              << expect_substr << ")";
    EXPECT_NE(err.find(expect_substr), std::string::npos)
        << "unexpected error: " << err;
    EXPECT_EQ(out.q, -42) << "output modified by failed load";
    EXPECT_EQ(out.tokenizer, TokenizerKind::kQGram);
    EXPECT_TRUE(out.data.sets.empty());
    EXPECT_TRUE(out.shards.empty());
    EXPECT_TRUE(out.regions.empty());
    EXPECT_EQ(out.data.dict, nullptr);
  }

  /// Offset of a section's fourcc tag within the file (the binary tags
  /// cannot collide with the lowercase-ASCII corpus text).
  size_t FindSection(const char* fourcc) const {
    const size_t pos = pristine_.find(fourcc);
    EXPECT_NE(pos, std::string::npos);
    return pos;
  }

  /// Layout of the first SHRD section: file offsets of the offsets-count
  /// field, the offsets array, and the postings array (which follow the
  /// writer's 8-alignment discipline).
  struct ShrdLayout {
    size_t count_at;     ///< num_offsets u64.
    uint64_t count;      ///< Its pristine value.
    size_t offsets_at;   ///< First offsets entry.
    size_t postings_at;  ///< First posting.
  };
  ShrdLayout FirstShrd() const {
    ShrdLayout l;
    const size_t body = FindSection("SHRD") + 12;  // tag u32 + len u64.
    l.count_at = body + 12;  // shard/begin/end u32 each.
    std::memcpy(&l.count, pristine_.data() + l.count_at, 8);
    const size_t body_pay = body - kSnapshotHeaderSize;
    l.offsets_at = kSnapshotHeaderSize + Align8(body_pay + 20);
    // num_postings u64 sits right after the (8-aligned, 8-byte-entry)
    // offsets block; postings follow already aligned.
    l.postings_at =
        l.offsets_at + 8 * static_cast<size_t>(l.count) + 8;
    return l;
  }

  std::string path_;
  std::string pristine_;
};

TEST_P(SnapshotCorruptionTest, MissingFile) {
  Snapshot out;
  out.q = -42;
  const std::string err = LoadSnapshot(
      testing::TempDir() + "/no_such_snapshot.snap", &out, GetParam());
  EXPECT_NE(err.find("cannot open"), std::string::npos) << err;
  EXPECT_EQ(out.q, -42);
}

TEST_P(SnapshotCorruptionTest, EmptyAndHeaderTruncatedFiles) {
  ExpectRejected("", "truncated header");
  ExpectRejected(pristine_.substr(0, 4), "truncated header");
  ExpectRejected(pristine_.substr(0, kSnapshotHeaderSize - 1),
                 "truncated header");
}

TEST_P(SnapshotCorruptionTest, BadMagic) {
  std::string bytes = pristine_;
  bytes[0] = 'X';
  ExpectRejected(bytes, "bad magic");
}

TEST_P(SnapshotCorruptionTest, UnsupportedVersion) {
  for (uint32_t version : {kSnapshotVersion + 1, 1u}) {  // v1 retired too.
    std::string bytes = pristine_;
    std::memcpy(bytes.data() + kSnapshotVersionOffset, &version, 4);
    ExpectRejected(bytes, "unsupported snapshot version");
  }
}

TEST_P(SnapshotCorruptionTest, EndiannessMismatch) {
  std::string bytes = pristine_;
  std::swap(bytes[kSnapshotEndianOffset], bytes[kSnapshotEndianOffset + 3]);
  ExpectRejected(bytes, "endianness mismatch");
}

TEST_P(SnapshotCorruptionTest, PayloadTruncationAndPadding) {
  // Cut at many points in the payload; every prefix must be rejected by the
  // length gate long before any parsing happens.
  for (size_t keep :
       {kSnapshotHeaderSize, kSnapshotHeaderSize + 1, pristine_.size() / 2,
        pristine_.size() - 8, pristine_.size() - 1}) {
    ExpectRejected(pristine_.substr(0, keep), "payload length mismatch");
  }
  ExpectRejected(pristine_ + "JUNK", "payload length mismatch");
}

TEST_P(SnapshotCorruptionTest, FlippedChecksumByte) {
  std::string bytes = pristine_;
  bytes[kSnapshotCrcOffset] ^= 0x5A;
  ExpectRejected(bytes, "checksum mismatch");
}

TEST_P(SnapshotCorruptionTest, FlippedPayloadBytes) {
  for (size_t at : {size_t{0}, pristine_.size() / 3, pristine_.size() - 2}) {
    std::string bytes = pristine_;
    bytes[kSnapshotHeaderSize + at % (bytes.size() - kSnapshotHeaderSize)] ^=
        0x01;
    ExpectRejected(bytes, "checksum mismatch");
  }
}

// From here on every mutation re-checksums, proving the structural bounds
// checks reject lies on their own (a forged CRC must not enable UB or OOM).

TEST_P(SnapshotCorruptionTest, SectionLengthLieHuge) {
  std::string bytes = pristine_;
  // META is the first section: its u64 body length sits right after the
  // 4-byte tag at the start of the payload.
  const uint64_t huge = uint64_t{1} << 60;
  std::memcpy(bytes.data() + kSnapshotHeaderSize + 4, &huge, 8);
  FixCrc(&bytes);
  ExpectRejected(bytes, "malformed META section");
}

TEST_P(SnapshotCorruptionTest, MetaNumSetsLie) {
  std::string bytes = pristine_;
  // META body layout: kind u32, tokenizer u32, q u32, num_sets u64, ...
  const uint64_t lie = uint64_t{1} << 40;
  std::memcpy(bytes.data() + kSnapshotHeaderSize + 12 + 12, &lie, 8);
  FixCrc(&bytes);
  // COLL records its own num_sets; the disagreement is the tell.
  ExpectRejected(bytes, "malformed COLL section");
}

TEST_P(SnapshotCorruptionTest, ZeroShardsRejected) {
  std::string bytes = pristine_;
  // META body: ..., num_shards u32 at offset 20 of the body.
  const uint32_t zero = 0;
  std::memcpy(bytes.data() + kSnapshotHeaderSize + 12 + 20, &zero, 4);
  FixCrc(&bytes);
  ExpectRejected(bytes, "malformed META section");
}

TEST_P(SnapshotCorruptionTest, DictCountLieDoesNotAllocate) {
  std::string bytes = pristine_;
  // DICT's body starts with the u64 token count; a huge checksum-valid lie
  // (would imply a multi-PiB offsets array) must be caught by the
  // remaining-bytes gate before any view or allocation is produced.
  const size_t count_at = FindSection("DICT") + 12;
  const uint64_t lie = uint64_t{1} << 50;
  std::memcpy(bytes.data() + count_at, &lie, 8);
  FixCrc(&bytes);
  ExpectRejected(bytes, "truncated DICT section");
}

TEST_P(SnapshotCorruptionTest, ShardTableNotAPartition) {
  std::string bytes = pristine_;
  // STAB body: num_shards u32, then (begin, end) u32 pairs. Shard 0's end
  // must equal shard 1's begin; nudging it tears the partition.
  const size_t stab_body = FindSection("STAB") + 12;
  uint32_t end0 = 0;
  std::memcpy(&end0, bytes.data() + stab_body + 8, 4);
  const uint32_t bogus = end0 + 1;
  std::memcpy(bytes.data() + stab_body + 8, &bogus, 4);
  FixCrc(&bytes);
  ExpectRejected(bytes, "malformed STAB section");
}

TEST_P(SnapshotCorruptionTest, OffsetsCountLieDoesNotAllocate) {
  std::string bytes = pristine_;
  const ShrdLayout l = FirstShrd();
  const uint64_t lie = uint64_t{1} << 55;  // Would be a 256 PiB allocation.
  std::memcpy(bytes.data() + l.count_at, &lie, 8);
  FixCrc(&bytes);
  ExpectRejected(bytes, "malformed SHRD section 0");
}

TEST_P(SnapshotCorruptionTest, InvalidCsrOffsets) {
  std::string bytes = pristine_;
  // First offsets entry must be 0; a checksum-valid nonzero value has to be
  // caught by CSR adoption's structural validation.
  const ShrdLayout l = FirstShrd();
  const uint64_t bogus = 12345;
  std::memcpy(bytes.data() + l.offsets_at, &bogus, 8);
  FixCrc(&bytes);
  ExpectRejected(bytes, "invalid CSR arrays in SHRD section 0");
}

TEST_P(SnapshotCorruptionTest, PostingValueLie) {
  std::string bytes = pristine_;
  // A checksum-valid posting pointing outside the shard's set range (or at
  // a nonexistent element) would be indexed unchecked by query code; the
  // loader's value gate must reject it.
  const ShrdLayout l = FirstShrd();
  const uint32_t bogus_set = 0xFFFFFF00u;
  std::memcpy(bytes.data() + l.postings_at, &bogus_set, 4);
  FixCrc(&bytes);
  ExpectRejected(bytes, "posting out of range in SHRD section 0");

  // Same gate for a plausible set id with an impossible element id.
  bytes = pristine_;
  const uint32_t bogus_elem = 0xFFFFFF00u;
  std::memcpy(bytes.data() + l.postings_at + 4, &bogus_elem, 4);
  FixCrc(&bytes);
  ExpectRejected(bytes, "posting out of range in SHRD section 0");
}

TEST_P(SnapshotCorruptionTest, UnsortedPostingsInList) {
  std::string bytes = pristine_;
  // Token 0 ("alpha") occurs in sets 0 and 1. With cost-balanced ranges the
  // corpus still puts both in shard 0 (verified by the pristine load in
  // SetUp), so the snapshot's first list is [{0,0},{1,0}]. Swapping the two
  // (checksum fixed) breaks the (set, elem) order ListInSet binary-searches;
  // writing the first over the second makes a duplicate. Both must be
  // rejected.
  const ShrdLayout l = FirstShrd();
  const uint32_t swapped[4] = {1, 0, 0, 0};  // {1,0} then {0,0}.
  std::memcpy(bytes.data() + l.postings_at, swapped, 16);
  FixCrc(&bytes);
  ExpectRejected(bytes, "unsorted or duplicate postings in SHRD section 0");

  bytes = pristine_;
  const uint32_t duplicated[4] = {0, 0, 0, 0};  // {0,0} twice.
  std::memcpy(bytes.data() + l.postings_at, duplicated, 16);
  FixCrc(&bytes);
  ExpectRejected(bytes, "unsorted or duplicate postings in SHRD section 0");
}

TEST_P(SnapshotCorruptionTest, TrailingGarbageAfterSections) {
  std::string bytes = pristine_ + std::string(16, '\0');
  FixPayloadLen(&bytes);
  FixCrc(&bytes);
  ExpectRejected(bytes, "trailing bytes after last section");
}

INSTANTIATE_TEST_SUITE_P(
    LoadModes, SnapshotCorruptionTest,
    testing::Values(SnapshotLoadMode::kMmap, SnapshotLoadMode::kCopy),
    [](const testing::TestParamInfo<SnapshotLoadMode>& info) {
      return info.param == SnapshotLoadMode::kMmap ? "mmap" : "copy";
    });

// --- Split-container failure modes -----------------------------------------

class SplitCorruptionTest : public testing::TestWithParam<SnapshotLoadMode> {
 protected:
  void SetUp() override {
    Collection data = BuildCollection(CorpusRaw(), TokenizerKind::kWord);
    Snapshot snap = BuildSnapshot(std::move(data), TokenizerKind::kWord, 0,
                                  /*num_shards=*/2);
    path_ = testing::TempDir() + "/silkmoth_split_corruption.snap";
    ASSERT_EQ(SaveSnapshotSplit(snap, path_), "");
    Snapshot check;
    ASSERT_EQ(LoadSnapshot(path_, &check, GetParam()), "");
    ASSERT_EQ(check.num_shards(), 2u);
  }

  void TearDown() override {
    std::remove(path_.c_str());
    for (uint32_t s = 0; s < 2; ++s) {
      std::remove(SnapshotShardPath(path_, s).c_str());
    }
  }

  void ExpectRejected(const std::string& expect_substr) {
    Snapshot out;
    out.q = -42;
    const std::string err = LoadSnapshot(path_, &out, GetParam());
    ASSERT_FALSE(err.empty()) << "corrupt split snapshot loaded cleanly";
    EXPECT_NE(err.find(expect_substr), std::string::npos)
        << "unexpected error: " << err;
    EXPECT_EQ(out.q, -42) << "output modified by failed load";
  }

  std::string path_;
};

TEST_P(SplitCorruptionTest, MissingShardFileRejected) {
  ASSERT_EQ(std::remove(SnapshotShardPath(path_, 1).c_str()), 0);
  ExpectRejected("cannot open");
}

TEST_P(SplitCorruptionTest, CorruptShardFileRejected) {
  const std::string shard_path = SnapshotShardPath(path_, 0);
  std::ifstream in(shard_path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  in.close();
  bytes[bytes.size() - 1] ^= 0x01;
  std::ofstream out(shard_path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  out.close();
  ExpectRejected("checksum mismatch");
}

TEST_P(SplitCorruptionTest, ForeignShardFileRejected) {
  // A shard file from a *different build* (here: a different corpus) is
  // checksum-valid on its own; the binding CRC must refuse the mix.
  RawSets other_raw = {{"one two"}, {"three four"}, {"five six"}, {"seven"}};
  Collection other = BuildCollection(other_raw, TokenizerKind::kWord);
  Snapshot other_snap = BuildSnapshot(std::move(other), TokenizerKind::kWord,
                                      0, /*num_shards=*/2);
  const std::string other_path =
      testing::TempDir() + "/silkmoth_split_other.snap";
  ASSERT_EQ(SaveSnapshotSplit(other_snap, other_path), "");
  // Swap shard 0 in.
  {
    std::ifstream in(SnapshotShardPath(other_path, 0), std::ios::binary);
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    std::ofstream out(SnapshotShardPath(path_, 0),
                      std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  ExpectRejected("binding mismatch");
  std::remove(other_path.c_str());
  for (uint32_t s = 0; s < 2; ++s) {
    std::remove(SnapshotShardPath(other_path, s).c_str());
  }
}

TEST_P(SplitCorruptionTest, ShardFileLoadedDirectlyRejected) {
  Snapshot out;
  const std::string err =
      LoadSnapshot(SnapshotShardPath(path_, 0), &out, GetParam());
  EXPECT_NE(err.find("shard file"), std::string::npos) << err;
}

TEST_P(SplitCorruptionTest, NoTmpFilesLeftBehind) {
  // Atomic writes: the .tmp staging siblings must all be renamed away.
  for (const std::string p :
       {path_ + ".tmp", SnapshotShardPath(path_, 0) + ".tmp",
        SnapshotShardPath(path_, 1) + ".tmp"}) {
    std::ifstream in(p);
    EXPECT_FALSE(in.good()) << "leftover staging file " << p;
  }
}

INSTANTIATE_TEST_SUITE_P(
    LoadModes, SplitCorruptionTest,
    testing::Values(SnapshotLoadMode::kMmap, SnapshotLoadMode::kCopy),
    [](const testing::TestParamInfo<SnapshotLoadMode>& info) {
      return info.param == SnapshotLoadMode::kMmap ? "mmap" : "copy";
    });

// --- View lifetime ----------------------------------------------------------

// The mmap loader's contract: views never dangle while their region lives,
// and moving the Snapshot moves the region without relocating the bytes —
// queries against the moved-to snapshot must keep working (ASan/UBSan turn
// any violation into a hard failure in CI).
TEST(SnapshotViewLifetime, QueriesSurviveSnapshotMove) {
  Collection data = BuildCollection(CorpusRaw(), TokenizerKind::kWord);
  Options opt;
  opt.delta = 0.3;
  opt.num_shards = 2;
  ShardedEngine engine(&data, opt);
  ASSERT_TRUE(engine.ok());
  const std::vector<PairMatch> expected = engine.DiscoverSelf();

  Snapshot built = BuildSnapshot(data, TokenizerKind::kWord, 0, 2);
  const std::string path =
      testing::TempDir() + "/silkmoth_view_lifetime.snap";
  ASSERT_EQ(SaveSnapshot(built, path), "");

  Snapshot loaded;
  ASSERT_EQ(LoadSnapshot(path, &loaded, SnapshotLoadMode::kMmap), "");
  std::remove(path.c_str());

  // Move the owning snapshot twice; the regions (and therefore every view)
  // must follow without invalidation.
  Snapshot moved = std::move(loaded);
  std::vector<Snapshot> home;
  home.push_back(std::move(moved));
  const Snapshot& snap = home.back();

  std::vector<ShardResult> results(2);
  for (int s = 0; s < 2; ++s) {
    results[s].shard = static_cast<uint32_t>(s);
    results[s].num_shards = 2;
    results[s].options = opt;
    results[s].pairs = DiscoverShardSelf(snap, s, opt, &results[s].stats);
  }
  std::vector<PairMatch> merged;
  ASSERT_EQ(MergeShardResults(results, &merged, nullptr), "");
  EXPECT_EQ(merged, expected);
}

}  // namespace
}  // namespace silkmoth
