#include "text/dataset.h"

namespace silkmoth {

size_t Collection::NumElements() const {
  size_t n = 0;
  for (const auto& s : sets) n += s.elements.size();
  return n;
}

size_t Collection::NumTokenOccurrences() const {
  size_t n = 0;
  for (const auto& s : sets) {
    for (const auto& e : s.elements) n += e.tokens.size();
  }
  return n;
}

}  // namespace silkmoth
