#include "core/options.h"

#include <climits>
#include <cmath>

namespace silkmoth {

const char* RelatednessName(Relatedness metric) {
  switch (metric) {
    case Relatedness::kSimilarity:
      return "SET-SIMILARITY";
    case Relatedness::kContainment:
      return "SET-CONTAINMENT";
  }
  return "?";
}

const char* SignatureSchemeName(SignatureSchemeKind kind) {
  switch (kind) {
    case SignatureSchemeKind::kWeighted:
      return "WEIGHTED";
    case SignatureSchemeKind::kCombUnweighted:
      return "COMBUNWEIGHTED";
    case SignatureSchemeKind::kSkyline:
      return "SKYLINE";
    case SignatureSchemeKind::kDichotomy:
      return "DICHOTOMY";
  }
  return "?";
}

int MaxQForAlpha(double alpha, int fallback) {
  if (alpha <= kFloatSlack) return fallback;
  const double limit = alpha / (1.0 - alpha);
  int q = static_cast<int>(std::ceil(limit - kFloatSlack)) - 1;
  if (std::abs(limit - std::round(limit)) < 1e-9) {
    // Integral limit: q must be strictly below it.
    q = static_cast<int>(std::round(limit)) - 1;
  }
  return q < 1 ? 1 : q;
}

int MaxQForDelta(double delta) {
  if (delta <= 0.0 || delta >= 1.0) return delta >= 1.0 ? INT_MAX : 0;
  const double limit = delta / (1.0 - delta);
  int q = static_cast<int>(std::ceil(limit - kFloatSlack)) - 1;
  if (std::abs(limit - std::round(limit)) < 1e-9) {
    q = static_cast<int>(std::round(limit)) - 1;
  }
  return q < 0 ? 0 : q;
}

int Options::EffectiveQ() const {
  if (!IsEditSimilarity(phi)) return 0;
  if (q > 0) return q;
  return MaxQForAlpha(alpha, /*fallback=*/2);
}

std::string Options::Validate() const {
  if (delta <= 0.0 || delta > 1.0) {
    return "delta must be in (0, 1]; got " + std::to_string(delta);
  }
  if (alpha < 0.0 || alpha >= 1.0) {
    return "alpha must be in [0, 1); got " + std::to_string(alpha);
  }
  if (IsEditSimilarity(phi)) {
    const int eff_q = EffectiveQ();
    if (eff_q < 1) return "q must be >= 1 for edit similarity";
    if (alpha > kFloatSlack) {
      const double limit = alpha / (1.0 - alpha);
      if (static_cast<double>(eff_q) >= limit - kFloatSlack &&
          std::abs(static_cast<double>(eff_q) - limit) > kFloatSlack) {
        // q > α/(1-α): sim-thresh protection would be unsound.
        return "q must satisfy q < alpha/(1-alpha) (footnote 11)";
      }
      if (std::abs(static_cast<double>(eff_q) - limit) <= kFloatSlack) {
        return "q must be strictly below alpha/(1-alpha)";
      }
    }
  }
  if (num_threads < 1) return "num_threads must be >= 1";
  if (num_shards < 1) return "num_shards must be >= 1";
  return "";
}

}  // namespace silkmoth
