#ifndef SILKMOTH_UTIL_FAULT_INJECTION_H_
#define SILKMOTH_UTIL_FAULT_INJECTION_H_

#include <string>
#include <vector>

namespace silkmoth {
namespace fault {

/// Deterministic fault injection for the supervised snapshot pipeline.
///
/// Production code is sprinkled with named *sites* — `fault::Hit("site")`
/// calls at the I/O boundaries worth breaking (snapshot open, shard-result
/// write/read, worker startup, per-result emission). A site call is free
/// when nothing is armed; when `SILKMOTH_FAULT` is set (or a test arms
/// specs directly), the matching spec fires on its n-th call and either
/// executes its action in place (sleep, abort, kill, exit) or reports an
/// outcome (fail, torn, corrupt) that the call site translates into the
/// exact failure shape — an error return, a truncated file, a flipped
/// byte. This is how every supervision path of the orchestrator (crash,
/// timeout, torn write, corrupt result) is exercised deterministically in
/// tests, without ever relying on real races or real disk failures.
///
/// Spec grammar (comma-separated list):
///
///   SILKMOTH_FAULT=site:action[:arg[:nth]][,site:action...]
///
/// Actions (arg meaning in brackets; `nth` is the 1-based call count at
/// that site that triggers, default 1):
///
///   fail             return Outcome::kFail — the site reports an I/O error
///   torn   [keep]    return Outcome::kTorn — keep only `keep` bytes
///   corrupt[offset]  return Outcome::kCorrupt — damage bytes at `offset`
///   sleep  [millis]  sleep `millis` ms inside Hit() (wedged-worker shape)
///   abort            raise SIGABRT inside Hit() (crash shape)
///   kill             raise SIGKILL inside Hit() (hard-kill shape)
///   exit   [code]    _Exit(code) inside Hit() (clean non-zero exit shape)
///
/// Known sites (the injection points wired into the pipeline):
///
///   worker-start   shard-run, after argument parsing, before the load
///   snapshot-open  every snapshot container open (load paths)
///   result-write   shard-result commit (AtomicFileWriter publish step)
///   result-read    shard-result read-into-memory
///   result-pair    once per pair serialized by SaveShardResult
///                  (`result-pair:abort:0:K` = abort after K-1 results)
///   snapshot-write every snapshot container commit from `build`
///                  (AtomicFileWriter publish step)
///   compact-write  every next-generation container commit from `compact`
///                  — same publish step, its own site so the compaction
///                  fault matrix never disturbs build paths
///                  (`compact-write:kill:0:K` = die at the K-th rename)
///
/// Serve-daemon sites (the `serve` subcommand's transport and worker
/// loops; see src/serve/server.cc):
///
///   frame-read     after every successful transport read, before decoding
///   frame-write    every response-frame write (fail = dropped response,
///                  counted in write_errors)
///   worker-dequeue after a worker dequeues a request (fail = that one
///                  request answers with an internal error frame; sleep =
///                  wedged worker, the shed tests' backpressure shape)
///   serve-shard    after each shard of a request's execution
///                  (`serve-shard:sleep:MS` paces shards so deadline tests
///                  expire mid-request deterministically)
///   swap-open      at the head of a SIGHUP hot-swap, before the reload
///                  (fail = swap refused, old generation keeps serving)
struct FaultSpec {
  /// Action kinds, one per grammar verb above.
  enum class Action {
    kFail,     ///< Report an injected I/O failure (Outcome::kFail).
    kTorn,     ///< Truncate the written file (Outcome::kTorn).
    kCorrupt,  ///< Damage the written bytes (Outcome::kCorrupt).
    kSleep,    ///< Sleep `arg` ms inside Hit().
    kAbort,    ///< Raise SIGABRT inside Hit().
    kKill,     ///< Raise SIGKILL inside Hit().
    kExit,     ///< _Exit(arg) inside Hit().
  };

  std::string site;                  ///< Site name the spec is armed on.
  Action action = Action::kFail;     ///< What to do when it triggers.
  long arg = 0;                      ///< Action argument (see grammar).
  long nth = 1;                      ///< 1-based triggering call count.
};

/// What a call site must do when its Hit() returns. In-place actions
/// (sleep/abort/kill/exit) never produce an outcome other than kNone.
struct Outcome {
  /// Outcome kinds a call site has to handle itself.
  enum Kind {
    kNone,     ///< No armed spec fired; proceed normally.
    kFail,     ///< Report an injected I/O failure.
    kTorn,     ///< Truncate the written file to `arg` bytes, then succeed.
    kCorrupt,  ///< Damage the written bytes at offset `arg`, then succeed.
  };
  Kind kind = kNone;  ///< What fired.
  long arg = 0;       ///< The firing spec's argument.
};

/// Parses a spec list (the SILKMOTH_FAULT grammar above) into `*out`.
/// Returns "" on success, else a one-line error naming the bad spec.
/// `*out` is only written on success.
std::string ParseFaultSpecs(const std::string& text,
                            std::vector<FaultSpec>* out);

/// True when any fault spec is armed in this process (env or ArmForTest).
bool Armed();

/// Reports site `site` was reached. Bumps the site's call count, fires the
/// first matching armed spec whose `nth` equals the new count, executes
/// in-place actions, and returns the outcome the caller must honor.
/// Thread-safe; O(1) when nothing is armed.
Outcome Hit(const char* site);

/// Test hook: replaces the armed specs (parsed from `text`, "" disarms)
/// and resets every site's call count. Tests use this instead of the env
/// var so arming is visible and scoped.
void ArmForTest(const std::string& text);

}  // namespace fault
}  // namespace silkmoth

#endif  // SILKMOTH_UTIL_FAULT_INJECTION_H_
