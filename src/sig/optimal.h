#ifndef SILKMOTH_SIG_OPTIMAL_H_
#define SILKMOTH_SIG_OPTIMAL_H_

#include <optional>
#include <vector>

#include "sig/signature.h"

namespace silkmoth {

/// Result of exhaustive optimal signature selection.
struct OptimalSignatureResult {
  std::vector<TokenId> tokens;  ///< Flattened optimal K^T_R.
  size_t cost = 0;              ///< Σ |I[t]| over the chosen tokens.
};

/// Exhaustively solves Problem 3 (optimal valid signature under the weighted
/// scheme) by enumerating all subsets of R's distinct tokens. Exponential —
/// Theorem 2 shows the problem is NP-complete — so this is only usable for
/// tiny sets; it exists as a test oracle for the greedy heuristics.
///
/// Returns nullopt when R has more than `max_tokens` distinct tokens or no
/// valid signature exists.
std::optional<OptimalSignatureResult> OptimalWeightedSignature(
    const SetRecord& set, const InvertedIndex& index,
    const SchemeParams& params, size_t max_tokens = 20);

}  // namespace silkmoth

#endif  // SILKMOTH_SIG_OPTIMAL_H_
