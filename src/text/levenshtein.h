#ifndef SILKMOTH_TEXT_LEVENSHTEIN_H_
#define SILKMOTH_TEXT_LEVENSHTEIN_H_

#include <string_view>

namespace silkmoth {

/// Exact Levenshtein (edit) distance: minimum number of single-character
/// insertions, deletions, and substitutions transforming `a` into `b`.
/// O(|a| * |b|) time, O(min(|a|, |b|)) space.
int LevenshteinDistance(std::string_view a, std::string_view b);

/// Banded Levenshtein distance with an upper bound.
///
/// Returns the exact distance if it is <= max_d, and any value > max_d
/// otherwise (callers must only compare against max_d). Runs the Ukkonen
/// band of width 2*max_d+1, so the cost is O(max_d * min(|a|, |b|)).
/// A negative max_d returns max_d + 1 immediately (always "over budget")
/// unless both strings are empty in which case it returns 0.
int BoundedLevenshtein(std::string_view a, std::string_view b, int max_d);

}  // namespace silkmoth

#endif  // SILKMOTH_TEXT_LEVENSHTEIN_H_
