#!/usr/bin/env bash
# CLI error-path coverage: every misuse of the snapshot protocol must exit
# non-zero with a one-line diagnostic on stderr — never a crash, never a
# zero exit, never silence.
#
# Usage: cli_errors_test.sh /path/to/silkmoth_cli
set -euo pipefail

CLI="${1:?usage: cli_errors_test.sh /path/to/silkmoth_cli}"
TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

fail() { echo "FAIL: $*" >&2; exit 1; }

# expect_error NAME PATTERN -- ARGS...: the CLI must exit non-zero and print
# a diagnostic matching PATTERN on stderr.
expect_error() {
  local name="$1" pattern="$2"
  shift 3  # name, pattern, "--"
  local rc=0
  "$CLI" "$@" > "$TMP/out.log" 2> "$TMP/err.log" || rc=$?
  [ "$rc" -ne 0 ] || fail "$name: expected non-zero exit, got 0"
  grep -q "$pattern" "$TMP/err.log" \
    || fail "$name: stderr missing '$pattern': $(cat "$TMP/err.log")"
  echo "ok: $name (exit $rc)"
}

"$CLI" generate schema 20 "$TMP/corpus.txt" > /dev/null
"$CLI" build --data "$TMP/corpus.txt" --out "$TMP/corpus.snap" --shards 2 \
  > /dev/null
"$CLI" shard-run --snapshot "$TMP/corpus.snap" --shard 0 \
  --out "$TMP/r0.txt" > /dev/null

expect_error "unknown subcommand" "unknown subcommand: frobnicate" -- \
  frobnicate --data "$TMP/corpus.txt"
expect_error "build without --out" "build needs --data and --out" -- \
  build --data "$TMP/corpus.txt"
expect_error "shard-run without snapshot" "shard-run needs --snapshot" -- \
  shard-run --shard 0 --out "$TMP/r.txt"
expect_error "shard-run missing snapshot file" "cannot open" -- \
  shard-run --snapshot "$TMP/nonexistent.snap" --shard 0 --out "$TMP/r.txt"
expect_error "shard-run shard out of range" "out of range" -- \
  shard-run --snapshot "$TMP/corpus.snap" --shard 7 --out "$TMP/r.txt"
expect_error "shard-run negative shard" "shard-run needs --shard" -- \
  shard-run --snapshot "$TMP/corpus.snap" --shard -3 --out "$TMP/r.txt"
expect_error "shard-run non-numeric shard" "invalid --shard value: tow" -- \
  shard-run --snapshot "$TMP/corpus.snap" --shard tow --out "$TMP/r.txt"
expect_error "shard-run phi mismatch" "rebuild the snapshot" -- \
  shard-run --snapshot "$TMP/corpus.snap" --shard 0 --out "$TMP/r.txt" \
  --phi eds --alpha 0.6
expect_error "merge with zero inputs" \
  "merge needs at least one shard result file" -- merge
expect_error "merge missing file" "cannot open" -- \
  merge "$TMP/nonexistent-result.txt"
expect_error "merge incomplete shard cover" "missing result for shard" -- \
  merge "$TMP/r0.txt"
expect_error "merge duplicate shard" "duplicate result for shard" -- \
  merge "$TMP/r0.txt" "$TMP/r0.txt"
expect_error "merge non-result file" "not a silkmoth shard result" -- \
  merge "$TMP/corpus.txt"
expect_error "shard-run on text file" "bad magic" -- \
  shard-run --snapshot "$TMP/corpus.txt" --shard 0 --out "$TMP/r.txt"
expect_error "stray positional argument" "unexpected argument: extra.txt" -- \
  discover --data "$TMP/corpus.txt" extra.txt

# Shards run under different query options must not merge: the combined
# stream would match no single-process run.
"$CLI" shard-run --snapshot "$TMP/corpus.snap" --shard 1 \
  --out "$TMP/r1_other_delta.txt" --delta 0.9 > /dev/null
expect_error "merge options mismatch" "disagree on query options" -- \
  merge "$TMP/r0.txt" "$TMP/r1_other_delta.txt"

# --- query mode -------------------------------------------------------------

expect_error "query without snapshot" "query needs --snapshot and --input" \
  -- query --input "$TMP/corpus.txt"
expect_error "query without input" "query needs --snapshot and --input" -- \
  query --snapshot "$TMP/corpus.snap"
expect_error "query missing input file" "cannot read" -- \
  query --snapshot "$TMP/corpus.snap" --input "$TMP/nonexistent.txt"
expect_error "query missing snapshot file" "cannot open" -- \
  query --snapshot "$TMP/nonexistent.snap" --input "$TMP/corpus.txt"
expect_error "query phi mismatch" "rebuild the snapshot" -- \
  query --snapshot "$TMP/corpus.snap" --input "$TMP/corpus.txt" \
  --phi eds --alpha 0.6
expect_error "shard-run missing query file" "cannot read" -- \
  shard-run --snapshot "$TMP/corpus.snap" --shard 0 --out "$TMP/r.txt" \
  --query "$TMP/nonexistent.txt"

# Reference payloads are fingerprinted: shards run against different query
# files — or a query shard against a self-join shard — must not merge.
head -n 3 "$TMP/corpus.txt" > "$TMP/queries_a.txt"
head -n 5 "$TMP/corpus.txt" > "$TMP/queries_b.txt"
"$CLI" shard-run --snapshot "$TMP/corpus.snap" --shard 0 \
  --query "$TMP/queries_a.txt" --out "$TMP/qa0.txt" > /dev/null
"$CLI" shard-run --snapshot "$TMP/corpus.snap" --shard 1 \
  --query "$TMP/queries_b.txt" --out "$TMP/qb1.txt" > /dev/null
"$CLI" shard-run --snapshot "$TMP/corpus.snap" --shard 1 \
  --out "$TMP/rself1.txt" > /dev/null
expect_error "merge mixed query payloads" "different query payloads" -- \
  merge "$TMP/qa0.txt" "$TMP/qb1.txt"
expect_error "merge query with self-join" \
  "a query run against a self-join run" -- \
  merge "$TMP/qa0.txt" "$TMP/rself1.txt"

echo "PASS: CLI error paths"
