#include "core/relatedness.h"

namespace silkmoth {

double MatchingThreshold(double delta, size_t ref_size) {
  return delta * static_cast<double>(ref_size);
}

double RelatednessScore(double matching_score, size_t ref_size,
                        size_t set_size, const Options& options) {
  if (ref_size == 0 || set_size == 0) return 0.0;
  if (options.metric == Relatedness::kContainment) {
    if (options.enforce_containment_size && set_size < ref_size) return 0.0;
    return matching_score / static_cast<double>(ref_size);
  }
  const double denom = static_cast<double>(ref_size) +
                       static_cast<double>(set_size) - matching_score;
  return denom <= 0.0 ? 1.0 : matching_score / denom;
}

bool IsRelated(double matching_score, size_t ref_size, size_t set_size,
               const Options& options) {
  return RelatednessScore(matching_score, ref_size, set_size, options) >=
         options.delta - kFloatSlack;
}

double RelatedScoreThreshold(size_t ref_size, size_t set_size,
                             const Options& options) {
  return ScoreThresholdForRelatedness(options.delta, ref_size, set_size,
                                      options);
}

double ScoreThresholdForRelatedness(double relatedness, size_t ref_size,
                                    size_t set_size, const Options& options) {
  if (options.metric == Relatedness::kContainment) {
    return relatedness * static_cast<double>(ref_size);
  }
  return relatedness *
         (static_cast<double>(ref_size) + static_cast<double>(set_size)) /
         (1.0 + relatedness);
}

bool SizeFeasible(size_t ref_size, size_t set_size, const Options& options) {
  if (ref_size == 0 || set_size == 0) return false;
  const double r = static_cast<double>(ref_size);
  const double s = static_cast<double>(set_size);
  if (options.metric == Relatedness::kContainment) {
    if (options.enforce_containment_size && set_size < ref_size) return false;
    return true;
  }
  // similar(R,S) >= δ forces δ|R| <= |S| <= |R|/δ.
  return s >= options.delta * r - kFloatSlack &&
         s <= r / options.delta + kFloatSlack;
}

}  // namespace silkmoth
