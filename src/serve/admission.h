#ifndef SILKMOTH_SERVE_ADMISSION_H_
#define SILKMOTH_SERVE_ADMISSION_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "serve/protocol.h"

namespace silkmoth {
namespace serve {

/// Admission control for the serve daemon: bounded per-worker queues with
/// explicit shedding. The KVell-style split — injector threads parse frames
/// and TryPush them, share-nothing worker threads each drain their own lane
/// — meets its robustness contract here: once queued depth or in-flight
/// payload bytes would exceed the configured limits, TryPush refuses and
/// the caller sends an OVERLOADED frame instead of letting the peer hang on
/// an unbounded queue.

/// Monotonic serve counters, updated by injector and worker threads alike
/// (hence atomics; plain relaxed increments — they are telemetry, not
/// synchronization). docs/COUNTERS.md, "Serve counters" is the reading
/// guide.
struct ServeCounters {
  std::atomic<uint64_t> requests_admitted{0};  ///< Queries queued.
  std::atomic<uint64_t> requests_shed{0};      ///< Queries refused by
                                               ///< admission (OVERLOADED).
  std::atomic<uint64_t> requests_served{0};    ///< Responses produced by
                                               ///< workers (incl. deadline
                                               ///< and fault responses).
  std::atomic<uint64_t> deadline_exceeded{0};  ///< Requests answered with a
                                               ///< partial-coverage stamp.
  std::atomic<uint64_t> malformed_frames{0};   ///< Framing violations +
                                               ///< unservable frame types +
                                               ///< mid-frame disconnects.
  std::atomic<uint64_t> worker_faults{0};      ///< Injected worker-dequeue
                                               ///< failures answered with an
                                               ///< internal error frame.
  std::atomic<uint64_t> write_errors{0};       ///< Response frames that
                                               ///< could not be written.
  std::atomic<uint64_t> swap_generations{0};   ///< Completed snapshot
                                               ///< hot-swaps.
  std::atomic<uint64_t> delta_sets{0};         ///< Sets in the current
                                               ///< generation's delta shard
                                               ///< (a gauge: grows per
                                               ///< ingest, zeroes when a
                                               ///< hot-swap drains the
                                               ///< delta).
  std::atomic<uint64_t> delta_oov_tokens{0};   ///< Tokens the delta interned
                                               ///< that the base dictionary
                                               ///< lacked (gauge, same
                                               ///< lifecycle as delta_sets).
  std::atomic<uint64_t> compactions{0};        ///< Hot-swaps whose incoming
                                               ///< snapshot carried a higher
                                               ///< generation counter than
                                               ///< the base it replaced —
                                               ///< i.e. swaps to a compacted
                                               ///< next generation.

  /// One flat JSON object with every counter (embedded in kPong bodies).
  std::string ToJson() const;
};

/// One admitted request in flight: the frame, where to send the response,
/// the absolute deadline (time_point::max() = none — set at admission so
/// queue wait counts against it), and the payload bytes charged against the
/// in-flight budget until Release().
struct ServeRequest {
  Frame frame;                               ///< The query frame.
  std::function<void(Frame)> respond;        ///< Response sink (thread-safe).
  std::chrono::steady_clock::time_point deadline =
      std::chrono::steady_clock::time_point::max();  ///< Absolute deadline.
  size_t charged_bytes = 0;                  ///< Bytes held until Release().
};

/// Bounded multi-lane queue set: one FIFO lane per worker, requests spread
/// round-robin, admission gated globally on queued depth and in-flight
/// bytes. All methods are thread-safe.
class AdmissionQueues {
 public:
  /// `workers` lanes; `max_queue` bounds requests queued-but-not-dequeued
  /// across all lanes; `max_inflight_bytes` bounds the summed
  /// `charged_bytes` of every admitted request not yet Release()d.
  AdmissionQueues(size_t workers, size_t max_queue,
                  size_t max_inflight_bytes);

  /// Admits `req` onto the next lane (round-robin) and returns true, or
  /// refuses — queue full, in-flight bytes exhausted, or shutdown — and
  /// returns false *without consuming req* (the caller still owns it and
  /// sends the shed response). The depth/bytes check and the reservation
  /// are one critical section, so concurrent injectors can never admit past
  /// a limit.
  bool TryPush(ServeRequest& req);

  /// Blocks until lane `worker` has a request (true) or Shutdown() was
  /// called and the lane drained empty (false). Dequeuing frees queue
  /// depth; the byte charge stays until Release().
  bool Pop(size_t worker, ServeRequest* out);

  /// Returns `bytes` to the in-flight budget — called once per admitted
  /// request, after its response was produced.
  void Release(size_t bytes);

  /// Stops admission (TryPush refuses) and wakes every worker; queued
  /// requests still drain — Pop returns them until its lane is empty.
  void Shutdown();

  /// Requests queued and not yet dequeued, across all lanes.
  size_t Depth() const { return depth_.load(std::memory_order_relaxed); }

  /// Summed charged_bytes of admitted, not-yet-released requests.
  size_t InflightBytes() const {
    return inflight_bytes_.load(std::memory_order_relaxed);
  }

 private:
  /// One worker's private FIFO.
  struct Lane {
    std::mutex mu;
    std::condition_variable cv;
    std::deque<ServeRequest> q;
  };

  const size_t max_queue_;
  const size_t max_inflight_bytes_;
  std::vector<std::unique_ptr<Lane>> lanes_;
  std::mutex admit_mu_;             // Makes check+reserve atomic.
  std::atomic<size_t> depth_{0};
  std::atomic<size_t> inflight_bytes_{0};
  std::atomic<size_t> rr_{0};       // Round-robin lane cursor.
  std::atomic<bool> shutdown_{false};
};

}  // namespace serve
}  // namespace silkmoth

#endif  // SILKMOTH_SERVE_ADMISSION_H_
