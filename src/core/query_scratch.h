#ifndef SILKMOTH_CORE_QUERY_SCRATCH_H_
#define SILKMOTH_CORE_QUERY_SCRATCH_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "filter/check_filter.h"

namespace silkmoth {

/// Reusable per-thread scratch space for one search pass.
///
/// The filter hot loops need two transient maps per query: set id → candidate
/// accumulator (candidate selection, Algorithm 1) and element id → visited
/// flag (NN search, Section 5.2). Hash maps pay a hash + probe per posting
/// and a fresh allocation per query; this scratch replaces both with dense
/// arrays stamped by a monotonically increasing epoch, so "clearing" between
/// queries is one counter increment and a slot is live only when its stamp
/// equals the current epoch. Arrays grow to the collection's set count (and
/// the largest probed set's element count) once and are reused for every
/// subsequent reference — discovery keeps one scratch per worker thread.
///
/// Not thread-safe; use one instance per thread.
struct QueryScratch {
  // --- Candidate accumulation (check filter) -------------------------------
  std::vector<uint64_t> set_epoch;     ///< Stamp per set id.
  std::vector<Candidate> set_cand;     ///< Accumulator slot per set id.
  std::vector<uint8_t> set_size_ok;    ///< Size-bound verdict per set id.
  std::vector<uint32_t> touched_sets;  ///< Set ids touched this query.
  uint64_t query_epoch = 0;

  // --- NN-search visited marks ---------------------------------------------
  std::vector<uint64_t> elem_epoch;  ///< Stamp per element id of probed set.
  uint64_t nn_epoch = 0;

  /// Starts a new query.
  void BeginQuery() {
    ++query_epoch;
    touched_sets.clear();
  }

  /// Marks `set_id` live for this query. Returns true on the first touch,
  /// when the caller must initialize the slot. Slot arrays grow lazily and
  /// geometrically up to the largest touched set id, so a one-shot scratch
  /// on a selective query never pays for the whole collection, and a
  /// persistent scratch reaches its steady-state size after a few queries.
  bool TouchSet(uint32_t set_id) {
    if (set_id >= set_epoch.size()) {
      const size_t n =
          std::max(set_epoch.size() * 2, static_cast<size_t>(set_id) + 1);
      set_epoch.resize(n, 0);
      set_cand.resize(n);
      set_size_ok.resize(n, 0);
    }
    if (set_epoch[set_id] == query_epoch) return false;
    set_epoch[set_id] = query_epoch;
    touched_sets.push_back(set_id);
    return true;
  }

  /// Starts a new NN search against a set of `num_elems` elements.
  void BeginNnSearch(size_t num_elems) {
    ++nn_epoch;
    if (elem_epoch.size() < num_elems) elem_epoch.resize(num_elems, 0);
  }

  /// Marks `elem_id` visited. Returns true on the first visit.
  bool VisitElem(uint32_t elem_id) {
    if (elem_epoch[elem_id] == nn_epoch) return false;
    elem_epoch[elem_id] = nn_epoch;
    return true;
  }

  /// Releases grossly oversized buffers. A long-lived scratch (e.g. the
  /// per-thread one behind SilkMoth::Search) grows to the largest collection
  /// it has ever served; when the collections being queried are much
  /// smaller, this re-allocates the arrays down so one huge query does not
  /// pin its memory for the thread's lifetime. Shrinking only happens after
  /// `kShrinkPatience` consecutive undersized queries (any query near the
  /// current size resets the vote), so a thread alternating between a large
  /// and a small collection does not thrash realloc+regrow on every call.
  /// Epochs keep counting — fresh zero stamps are always stale.
  void ShrinkTo(size_t num_sets) {
    constexpr size_t kFloorSlots = size_t{1} << 16;
    constexpr int kShrinkPatience = 16;
    const size_t cap = std::max(kFloorSlots, 4 * num_sets);
    if (set_epoch.size() <= cap) {
      shrink_votes_ = 0;
      return;
    }
    if (++shrink_votes_ < kShrinkPatience) return;
    shrink_votes_ = 0;
    std::vector<uint64_t>(num_sets, 0).swap(set_epoch);
    std::vector<Candidate>(num_sets).swap(set_cand);
    std::vector<uint8_t>(num_sets, 0).swap(set_size_ok);
    touched_sets.clear();
    touched_sets.shrink_to_fit();
    // elem_epoch is deliberately left alone: it is sized by the largest
    // probed set's element count (not the set universe), so it is small,
    // and judging it by a num_sets-derived cap would thrash workloads
    // whose collections legitimately contain one big set.
  }

 private:
  int shrink_votes_ = 0;  ///< Consecutive ShrinkTo calls wanting a shrink.
};

}  // namespace silkmoth

#endif  // SILKMOTH_CORE_QUERY_SCRATCH_H_
