#include "sig/simthresh.h"

#include <gtest/gtest.h>

#include "core/options.h"
#include "paper_example.h"

namespace silkmoth {
namespace {

using test::MakePaperExample;

ElementUnits JaccardUnits(size_t tokens) {
  ElementUnits u;
  u.edit = false;
  u.size = static_cast<double>(tokens);
  for (size_t i = 0; i < tokens; ++i) {
    u.tokens.push_back(static_cast<TokenId>(i));
    u.mults.push_back(1);
  }
  u.total_units = tokens;
  return u;
}

ElementUnits EditUnits(size_t len, int q) {
  ElementUnits u;
  u.edit = true;
  u.size = static_cast<double>(len);
  const size_t chunks = (len + static_cast<size_t>(q) - 1) /
                        static_cast<size_t>(q);
  for (size_t i = 0; i < chunks; ++i) {
    u.tokens.push_back(static_cast<TokenId>(i));
    u.mults.push_back(1);
  }
  u.total_units = chunks;
  return u;
}

TEST(SimThreshTest, PaperExample10) {
  // α = 0.7, |r_i| = 5: b = ⌊0.3*5⌋+1 = 2 for every element of R.
  auto ex = MakePaperExample();
  const auto units = MakeElementUnits(ex.ref, SimilarityKind::kJaccard);
  for (const auto& u : units) {
    EXPECT_EQ(SimThreshUnits(u, 0.7), 2u);
  }
}

TEST(SimThreshTest, JaccardFormula) {
  EXPECT_EQ(SimThreshUnits(JaccardUnits(5), 0.5), 3u);   // ⌊2.5⌋+1
  EXPECT_EQ(SimThreshUnits(JaccardUnits(4), 0.25), 4u);  // ⌊3⌋+1 = 4 = |r|.
  EXPECT_EQ(SimThreshUnits(JaccardUnits(10), 0.9), 2u);  // ⌊1⌋+1.
}

TEST(SimThreshTest, AlphaZeroMeansNoProtection) {
  EXPECT_EQ(SimThreshUnits(JaccardUnits(5), 0.0), kNoSimThresh);
}

TEST(SimThreshTest, ImpossibleWhenTooFewUnits) {
  // b = ⌊(1-0.2)*5⌋+1 = 5 units needed; only 5 available -> possible.
  EXPECT_EQ(SimThreshUnits(JaccardUnits(5), 0.2), 5u);
  // b = ⌊(1-0.1)*5⌋+1 = 5? ⌊4.5⌋+1 = 5 -> possible.
  EXPECT_EQ(SimThreshUnits(JaccardUnits(5), 0.1), 5u);
}

TEST(SimThreshTest, EditFormula) {
  // Section 7.2: ⌊(1-α)/α * |r|⌋ + 1 chunks.
  // len=12, q=3 (4 chunks), α=0.8: ⌊0.25*12⌋+1 = 4 -> possible (4 chunks).
  EXPECT_EQ(SimThreshUnits(EditUnits(12, 3), 0.8), 4u);
  // α=0.7: ⌊(0.3/0.7)*12⌋+1 = ⌊5.14⌋+1 = 6 > 4 chunks -> impossible.
  EXPECT_EQ(SimThreshUnits(EditUnits(12, 3), 0.7), kNoSimThresh);
}

TEST(SimThreshTest, EditQConstraintMakesProtectionPossible) {
  // With q < α/(1-α) the chunk count ⌈len/q⌉ always reaches b (footnote 11).
  for (double alpha : {0.6, 0.75, 0.8, 0.85}) {
    const int q = MaxQForAlpha(alpha);
    ASSERT_GE(q, 1);
    for (size_t len : {3u, 7u, 12u, 25u, 60u}) {
      EXPECT_NE(SimThreshUnits(EditUnits(len, q), alpha), kNoSimThresh)
          << "alpha=" << alpha << " q=" << q << " len=" << len;
    }
  }
}

}  // namespace
}  // namespace silkmoth
