// Schema matching (the paper's WEBTABLE application, Section 8.1).
//
// Each web table's schema is a set; each attribute (column) is an element
// whose tokens are the column's values. Two schemas are related when their
// attributes align under the maximum matching — robust to renamed columns
// and partially overlapping value pools. Demonstrates the effect of the
// element-similarity threshold α on both result quality and speed.
//
// Usage: schema_matching [num_tables] [delta]

#include <cstdio>
#include <cstdlib>

#include "core/engine.h"
#include "datagen/webtable.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  using namespace silkmoth;

  const size_t num_tables =
      argc > 1 ? static_cast<size_t>(std::atoll(argv[1])) : 1500;
  const double delta = argc > 2 ? std::atof(argv[2]) : 0.7;

  WebTableParams params = SchemaMatchingDefaults(num_tables);
  Collection data = BuildCollection(GenerateSchemaSets(params),
                                    TokenizerKind::kWord);

  std::printf("schema matching: %zu tables, delta=%.2f\n", num_tables,
              delta);
  std::printf("%-6s %-10s %-10s %-12s %-8s\n", "alpha", "time(s)",
              "pairs", "candidates", "verified");

  // The α sweep of Table 3's schema matching row: higher α prunes weak
  // attribute alignments and speeds everything up.
  for (double alpha : {0.0, 0.25, 0.5, 0.75}) {
    Options options;
    options.metric = Relatedness::kSimilarity;
    options.phi = SimilarityKind::kJaccard;
    options.delta = delta;
    options.alpha = alpha;
    SilkMoth engine(&data, options);
    if (!engine.ok()) {
      std::fprintf(stderr, "bad options: %s\n", engine.error().c_str());
      return 1;
    }
    WallTimer timer;
    SearchStats stats;
    auto pairs = engine.DiscoverSelf(&stats);
    std::printf("%-6.2f %-10.3f %-10zu %-12zu %-8zu\n", alpha,
                timer.ElapsedSeconds(), pairs.size(),
                stats.initial_candidates, stats.verifications);
  }
  return 0;
}
