#include <cstdlib>
#include <sstream>

#include <gtest/gtest.h>

#include "util/env.h"
#include "util/table_printer.h"
#include "util/timer.h"

namespace silkmoth {
namespace {

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter table({"name", "value"});
  table.AddRow({"a", "1"});
  table.AddRow({"longer-name", "22"});
  std::ostringstream out;
  table.Print(out);
  const std::string s = out.str();
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("longer-name"), std::string::npos);
  // Header row and separator and two data rows.
  int newlines = 0;
  for (char c : s) newlines += c == '\n';
  EXPECT_EQ(newlines, 4);
}

TEST(TablePrinterTest, ShortRowsArePadded) {
  TablePrinter table({"a", "b", "c"});
  table.AddRow({"x"});
  std::ostringstream out;
  table.Print(out);
  SUCCEED();  // No crash; row padded to 3 cells.
}

TEST(TablePrinterTest, NumberFormatting) {
  EXPECT_EQ(TablePrinter::Num(1.23456, 2), "1.23");
  EXPECT_EQ(TablePrinter::Num(2.0, 0), "2");
  EXPECT_EQ(TablePrinter::Int(-42), "-42");
}

TEST(EnvTest, FallbackWhenUnset) {
  unsetenv("SILKMOTH_TEST_UNSET");
  EXPECT_EQ(GetEnvInt("SILKMOTH_TEST_UNSET", 17), 17);
  EXPECT_DOUBLE_EQ(GetEnvDouble("SILKMOTH_TEST_UNSET", 2.5), 2.5);
}

TEST(EnvTest, ParsesValues) {
  setenv("SILKMOTH_TEST_INT", "123", 1);
  EXPECT_EQ(GetEnvInt("SILKMOTH_TEST_INT", 0), 123);
  setenv("SILKMOTH_TEST_DBL", "0.75", 1);
  EXPECT_DOUBLE_EQ(GetEnvDouble("SILKMOTH_TEST_DBL", 0.0), 0.75);
  unsetenv("SILKMOTH_TEST_INT");
  unsetenv("SILKMOTH_TEST_DBL");
}

TEST(EnvTest, GarbageFallsBack) {
  setenv("SILKMOTH_TEST_BAD", "not-a-number", 1);
  EXPECT_EQ(GetEnvInt("SILKMOTH_TEST_BAD", 9), 9);
  unsetenv("SILKMOTH_TEST_BAD");
}

TEST(TimerTest, ElapsedIsMonotone) {
  WallTimer timer;
  const double a = timer.ElapsedSeconds();
  const double b = timer.ElapsedSeconds();
  EXPECT_GE(a, 0.0);
  EXPECT_GE(b, a);
  EXPECT_GE(timer.ElapsedMillis(), b * 1e3);
}

TEST(TimerTest, RestartResets) {
  WallTimer timer;
  volatile int sink = 0;
  for (int i = 0; i < 100000; ++i) sink = sink + 1;
  const double before = timer.ElapsedSeconds();
  timer.Restart();
  EXPECT_LE(timer.ElapsedSeconds(), before + 1.0);
}

}  // namespace
}  // namespace silkmoth
