#include "core/sharded_engine.h"

#include <algorithm>
#include <thread>

#include "core/query_scratch.h"

namespace silkmoth {

std::vector<SetIdRange> ComputeShardRanges(const Collection& data,
                                           uint32_t num_shards) {
  const uint32_t num_sets = static_cast<uint32_t>(data.sets.size());

  // Per-set cost proxy: Σ over the set's element tokens of that token's
  // global occurrence count — the number of candidate postings a signature
  // probe of this set touches, which tracks the verification fan-out far
  // better than the set count does on skewed corpora.
  std::vector<uint64_t> freq;
  for (const SetRecord& set : data.sets) {
    for (const Element& e : set.elements) {
      for (TokenId t : e.tokens) {
        if (static_cast<size_t>(t) >= freq.size()) {
          freq.resize(static_cast<size_t>(t) + 1, 0);
        }
        ++freq[t];
      }
    }
  }
  std::vector<uint64_t> cost(num_sets, 0);
  uint64_t total = 0;
  for (uint32_t s = 0; s < num_sets; ++s) {
    for (const Element& e : data.sets[s].elements) {
      for (TokenId t : e.tokens) cost[s] += freq[t];
    }
    total += cost[s];
  }
  if (total == 0) {  // Token-free corpus: fall back to element counts.
    for (uint32_t s = 0; s < num_sets; ++s) {
      cost[s] = data.sets[s].elements.size();
      total += cost[s];
    }
  }
  if (total == 0) {  // Still degenerate: one unit per set (uniform split).
    cost.assign(num_sets, 1);
    total = num_sets;
  }

  // Greedy prefix balancing: each shard aims at an equal share of the
  // remaining cost. The boundary set joins the current shard only when
  // taking it overshoots the target by less than stopping undershoots;
  // a non-empty shard always takes at least one set while sets remain, so
  // only trailing shards can be empty (shards > sets stays legal).
  std::vector<SetIdRange> ranges(num_shards);
  uint64_t remaining = total;
  uint32_t cursor = 0;
  for (uint32_t s = 0; s < num_shards; ++s) {
    ranges[s].begin = cursor;
    if (s + 1 == num_shards) {
      cursor = num_sets;  // Last shard sweeps up the remainder.
    } else {
      const uint64_t target = remaining / (num_shards - s);
      uint64_t acc = 0;
      while (cursor < num_sets) {
        const uint64_t c = cost[cursor];
        // A shard that reached its target stops before the next set; a
        // shard still short of it takes the crossing set only when the
        // overshoot is no worse than the undershoot of stopping. The
        // acc >= target test must come first: it keeps the undershoot
        // subtraction from wrapping after a boundary set was taken.
        if (acc > 0 &&
            (acc >= target || (acc + c > target &&
                               acc + c - target > target - acc))) {
          break;
        }
        acc += c;
        ++cursor;
      }
      remaining -= acc;
    }
    ranges[s].end = cursor;
  }
  return ranges;
}

std::vector<InvertedIndex> BuildShardIndexes(
    const Collection& collection, const std::vector<SetIdRange>& ranges,
    int num_threads) {
  const uint32_t num_shards = static_cast<uint32_t>(ranges.size());
  std::vector<InvertedIndex> indexes(num_shards);
  // Strided parallel build, capped by num_threads so index construction
  // honors the same budget as queries.
  const uint32_t builders =
      std::min(num_shards, static_cast<uint32_t>(std::max(1, num_threads)));
  auto build_strided = [&](uint32_t first) {
    for (uint32_t s = first; s < num_shards; s += builders) {
      indexes[s].Build(collection, ranges[s].begin, ranges[s].end);
    }
  };
  if (builders <= 1) {
    build_strided(0);
  } else {
    std::vector<std::thread> workers;
    workers.reserve(builders);
    for (uint32_t b = 0; b < builders; ++b) {
      workers.emplace_back(build_strided, b);
    }
    for (auto& w : workers) w.join();
  }
  return indexes;
}

ShardedEngine::ShardedEngine(const Collection* data, Options options)
    : data_(data), options_(options) {
  error_ = options_.Validate();
  if (!error_.empty()) return;

  // Validate() has already rejected num_shards < 1.
  const uint32_t num_shards = static_cast<uint32_t>(options_.num_shards);
  const std::vector<SetIdRange> ranges =
      ComputeShardRanges(*data_, num_shards);
  std::vector<InvertedIndex> indexes =
      BuildShardIndexes(*data_, ranges, options_.num_threads);
  shards_.resize(num_shards);
  for (uint32_t s = 0; s < num_shards; ++s) {
    shards_[s].range = ranges[s];
    shards_[s].index = std::move(indexes[s]);
  }
}

std::vector<SearchMatch> ShardedEngine::Search(
    const SetRecord& ref, ShardedSearchStats* stats) const {
  if (!ok()) return {};
  if (stats != nullptr && stats->per_shard.size() != shards_.size()) {
    stats->Reset(shards_.size());
  }
  // A single per-thread scratch serves every shard: BeginQuery's epoch bump
  // makes cross-shard reuse exactly as safe as cross-reference reuse.
  static thread_local QueryScratch scratch;
  scratch.ShrinkTo(data_->sets.size());

  std::vector<SearchMatch> results;
  for (size_t s = 0; s < shards_.size(); ++s) {
    const Shard& shard = shards_[s];
    if (shard.range.begin == shard.range.end) continue;  // Empty shard.
    std::vector<SearchMatch> matches = RunSearchPass(
        ref, *data_, shard.index, options_, kNoExclude,
        stats != nullptr ? &stats->per_shard[s] : nullptr, &scratch,
        shard.range);
    // Shard ranges are disjoint and ascending and each shard's matches are
    // sorted by set id, so appending keeps the global set-id order.
    results.insert(results.end(), matches.begin(), matches.end());
  }
  return results;
}

std::vector<PairMatch> ShardedEngine::Discover(
    const Collection& refs, ShardedSearchStats* stats) const {
  return Discover(ReferenceBlock::External(refs), stats);
}

std::vector<PairMatch> ShardedEngine::DiscoverSelf(
    ShardedSearchStats* stats) const {
  return Discover(ReferenceBlock::SelfJoin(*data_), stats);
}

std::vector<PairMatch> ShardedEngine::Discover(
    const ReferenceBlock& block, ShardedSearchStats* stats) const {
  if (!ok()) return {};
  std::vector<ShardView> views(shards_.size());
  for (size_t s = 0; s < shards_.size(); ++s) {
    views[s] = ShardView{shards_[s].range, &shards_[s].index};
  }
  if (stats != nullptr && stats->per_shard.size() != shards_.size()) {
    stats->Reset(shards_.size());
  }
  return DiscoverAcrossShards(block, *data_, views, options_, stats);
}

std::vector<PairMatch> DiscoverAcrossShards(const ReferenceBlock& block,
                                            const Collection& data,
                                            std::span<const ShardView> shards,
                                            const Options& options,
                                            ShardedSearchStats* stats) {
  const Collection& refs = *block.refs;
  const bool self_join = block.self_join;
  const uint32_t ref_begin = block.begin_id();
  const uint32_t ref_end = block.end_id();
  const uint32_t num_refs = block.NumRefs();
  const size_t num_shards = shards.size();
  const int threads =
      std::max(1, std::min<int>(options.num_threads,
                                static_cast<int>(num_refs == 0 ? 1
                                                               : num_refs)));

  const bool dedup_pairs =
      self_join && SelfJoinReportsUnorderedPairs(options.metric);

  // Each worker streams its block of references through every shard in
  // shard order, with one QueryScratch per (worker, shard): shard passes
  // share no transient state, which is the layout the multi-process split
  // (snapshot/shard_runner.h) inherits — each shard worker becomes a
  // process running this very function over a single-shard span. Passing
  // the self-join exclude id to every shard is harmless — only the shard
  // owning the reference can ever see it as a candidate.
  auto run_range = [&](uint32_t begin, uint32_t end,
                       std::vector<PairMatch>* out, ShardedSearchStats* st,
                       std::vector<QueryScratch>* scratches) {
    for (uint32_t r = begin; r < end; ++r) {
      const uint32_t exclude = self_join ? r : kNoExclude;
      for (size_t s = 0; s < num_shards; ++s) {
        const ShardView& shard = shards[s];
        if (shard.range.begin == shard.range.end) continue;  // Empty shard.
        std::vector<SearchMatch> matches = RunSearchPass(
            refs.sets[r], data, *shard.index, options, exclude,
            st != nullptr ? &st->per_shard[s] : nullptr, &(*scratches)[s],
            shard.range);
        for (const SearchMatch& m : matches) {
          if (dedup_pairs && m.set_id < r) continue;
          out->push_back(PairMatch{r, m.set_id, m.matching_score,
                                   m.relatedness});
        }
      }
    }
  };

  std::vector<PairMatch> results;
  if (threads == 1) {
    std::vector<QueryScratch> scratches(num_shards);
    run_range(ref_begin, ref_end, &results, stats, &scratches);
  } else {
    std::vector<std::vector<PairMatch>> partial(threads);
    std::vector<ShardedSearchStats> partial_stats(threads);
    std::vector<std::vector<QueryScratch>> scratches(threads);
    for (int t = 0; t < threads; ++t) {
      partial_stats[t].Reset(num_shards);
      scratches[t].resize(num_shards);
    }
    std::vector<std::thread> workers;
    workers.reserve(threads);
    const uint32_t chunk = (num_refs + threads - 1) / threads;
    for (int t = 0; t < threads; ++t) {
      const uint32_t begin = ref_begin + std::min(num_refs, t * chunk);
      const uint32_t end = ref_begin + std::min(num_refs, (t + 1) * chunk);
      workers.emplace_back(run_range, begin, end, &partial[t],
                           &partial_stats[t], &scratches[t]);
    }
    for (auto& w : workers) w.join();
    for (int t = 0; t < threads; ++t) {
      results.insert(results.end(), partial[t].begin(), partial[t].end());
      if (stats != nullptr) stats->Merge(partial_stats[t]);
    }
  }

  // External blocks record the query-side accounting on every shard slot
  // the block actually streamed through (empty shards stay untouched, like
  // every other counter). Done once here, after the worker merge, so the
  // values are block-sized, not per-worker fragments.
  if (stats != nullptr && !self_join) {
    for (size_t s = 0; s < num_shards; ++s) {
      if (shards[s].range.begin == shards[s].range.end) continue;
      stats->per_shard[s].query_sets += num_refs;
      stats->per_shard[s].oov_tokens += block.oov_tokens;
    }
  }

  // Deterministic merge: worker blocks and shard ranges are both processed
  // in order, so the canonical sort makes the output independent of thread
  // and shard counts.
  std::sort(results.begin(), results.end(), PairMatchIdLess);
  return results;
}

}  // namespace silkmoth
