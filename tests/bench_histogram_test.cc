// LatencyHistogram (src/bench/histogram.h): exact percentiles on
// hand-built samples, bucket-boundary values, empty/single-sample edges,
// and merge associativity/commutativity.

#include "bench/histogram.h"

#include <gtest/gtest.h>

#include <vector>

#include "util/rng.h"

namespace silkmoth::bench {
namespace {

TEST(LatencyHistogramTest, EmptyHistogramReportsZeros) {
  LatencyHistogram h;
  EXPECT_EQ(h.Count(), 0u);
  EXPECT_EQ(h.Min(), 0u);
  EXPECT_EQ(h.Max(), 0u);
  EXPECT_DOUBLE_EQ(h.Mean(), 0.0);
  EXPECT_EQ(h.Percentile(50), 0u);
  EXPECT_EQ(h.Percentile(100), 0u);
}

TEST(LatencyHistogramTest, SingleSampleIsEveryPercentile) {
  LatencyHistogram h;
  h.Record(12345);
  EXPECT_EQ(h.Count(), 1u);
  EXPECT_EQ(h.Min(), 12345u);
  EXPECT_EQ(h.Max(), 12345u);
  EXPECT_DOUBLE_EQ(h.Mean(), 12345.0);
  const uint64_t lb = LatencyHistogram::BucketLowerBound(12345);
  EXPECT_LE(lb, 12345u);
  EXPECT_EQ(h.Percentile(0), 12345u);    // p0 is exact Min().
  EXPECT_EQ(h.Percentile(1), lb);
  EXPECT_EQ(h.Percentile(50), lb);
  EXPECT_EQ(h.Percentile(100), 12345u);  // p100 is exact Max().
}

TEST(LatencyHistogramTest, Percentile100ReturnsExactMax) {
  // Max() is tracked exactly, so p100 must report it rather than the lower
  // bound of its bucket — otherwise p100 under-reports the worst sample by
  // up to 6.25% and can sort below a p99 from a merged histogram.
  LatencyHistogram h;
  h.Record(1000);
  h.Record(999999);  // Not a bucket lower bound.
  ASSERT_LT(LatencyHistogram::BucketLowerBound(999999), 999999u);
  EXPECT_EQ(h.Percentile(100), 999999u);
  EXPECT_EQ(h.Percentile(200), 999999u);  // Out-of-range p clamps the same.
  EXPECT_GE(h.Percentile(100), h.Percentile(99));
}

TEST(LatencyHistogramTest, ExactPercentilesOnSmallValues) {
  // Values below 16 land in exact one-value buckets, so every percentile
  // of this hand-built sample is the true order statistic:
  // sorted samples: 1,1,2,3,5,5,5,8,13,15  (count 10).
  LatencyHistogram h;
  for (uint64_t v : {5, 1, 13, 5, 2, 8, 1, 15, 3, 5}) h.Record(v);
  ASSERT_EQ(h.Count(), 10u);
  // Percentile(p) = sample at rank ceil(p/100 * 10).
  EXPECT_EQ(h.Percentile(10), 1u);   // rank 1
  EXPECT_EQ(h.Percentile(20), 1u);   // rank 2
  EXPECT_EQ(h.Percentile(30), 2u);   // rank 3
  EXPECT_EQ(h.Percentile(50), 5u);   // rank 5
  EXPECT_EQ(h.Percentile(70), 5u);   // rank 7
  EXPECT_EQ(h.Percentile(75), 8u);   // rank 8
  EXPECT_EQ(h.Percentile(90), 13u);  // rank 9
  EXPECT_EQ(h.Percentile(99), 15u);  // rank 10
  EXPECT_EQ(h.Percentile(100), 15u);
  EXPECT_EQ(h.Min(), 1u);
  EXPECT_EQ(h.Max(), 15u);
  EXPECT_DOUBLE_EQ(h.Mean(), 5.8);
}

TEST(LatencyHistogramTest, BucketBoundariesAreExactLowerBounds) {
  // (16+s)·2^e values are bucket lower bounds at every scale: a sample of
  // exactly that value reports exactly.
  for (uint64_t base : {16u, 17u, 24u, 31u}) {
    for (int shift : {0, 1, 4, 20, 40}) {
      const uint64_t v = base << shift;
      EXPECT_EQ(LatencyHistogram::BucketLowerBound(v), v)
          << "base " << base << " shift " << shift;
      LatencyHistogram h;
      h.Record(v);
      EXPECT_EQ(h.Percentile(50), v);
    }
  }
  // One past a boundary stays in the same bucket (under-reported to the
  // bound); one below the next boundary too.
  EXPECT_EQ(LatencyHistogram::BucketLowerBound(33), 32u);
  EXPECT_EQ(LatencyHistogram::BucketLowerBound(35), 34u);
  // Buckets never over-report and are within 1/16 of the value.
  Rng rng(99);
  for (int i = 0; i < 1000; ++i) {
    const uint64_t v = rng.Next() >> (rng.Next() & 63);
    const uint64_t lb = LatencyHistogram::BucketLowerBound(v);
    EXPECT_LE(lb, v);
    EXPECT_LE(v - lb, v / 16 + 1);
  }
}

TEST(LatencyHistogramTest, PercentilesAreMonotoneAndBoundedByMax) {
  LatencyHistogram h;
  Rng rng(7);
  for (int i = 0; i < 5000; ++i) h.Record(rng.Next() >> (rng.Next() & 47));
  uint64_t prev = 0;
  for (double p : {1.0, 10.0, 25.0, 50.0, 75.0, 90.0, 95.0, 99.0, 100.0}) {
    const uint64_t v = h.Percentile(p);
    EXPECT_GE(v, prev) << "p" << p;
    prev = v;
  }
  EXPECT_LE(h.Percentile(50), h.Percentile(95));
  EXPECT_LE(h.Percentile(95), h.Percentile(99));
  EXPECT_LE(h.Percentile(99), h.Max());
  EXPECT_GE(h.Percentile(1), LatencyHistogram::BucketLowerBound(h.Min()));
}

TEST(LatencyHistogramTest, RecordSecondsRoundsAndClamps) {
  LatencyHistogram h;
  h.RecordSeconds(1e-9);     // 1 ns
  h.RecordSeconds(2.4e-9);   // rounds to 2 ns
  h.RecordSeconds(-5.0);     // clamps to 0
  EXPECT_EQ(h.CountAt(1), 1u);
  EXPECT_EQ(h.CountAt(2), 1u);
  EXPECT_EQ(h.CountAt(0), 1u);
  EXPECT_EQ(h.Count(), 3u);
}

TEST(LatencyHistogramTest, RecordSecondsSaturatesAboveLlroundRange) {
  // std::llround is UB for doubles at or above 2^63. Durations whose
  // nanosecond count lands in [2^63 - 1024, ~1.8e19) used to hit that UB
  // window; they must saturate to the top instead of overflowing.
  LatencyHistogram h;
  h.RecordSeconds(9.3e9);    // 9.3e18 ns — inside the former UB window.
  h.RecordSeconds(1e20);     // Far above uint64 range entirely.
  EXPECT_EQ(h.Count(), 2u);
  EXPECT_EQ(h.Max(), ~uint64_t{0});
  EXPECT_EQ(h.Min(), ~uint64_t{0});
  EXPECT_EQ(h.CountAt(~uint64_t{0}), 2u);
  EXPECT_EQ(h.Percentile(100), ~uint64_t{0});
  // Just below the saturation gate still records a real rounded value.
  LatencyHistogram low;
  low.RecordSeconds(9.0e9);  // 9.0e18 ns < 2^63 - 1024.
  EXPECT_EQ(low.Count(), 1u);
  EXPECT_LT(low.Max(), ~uint64_t{0});
  EXPECT_GT(low.Max(), uint64_t{8'000'000'000'000'000'000u});
}

// Merge must be associative and commutative: any merge tree over the same
// per-worker histograms produces identical counts and identical
// percentiles — what makes the runner's end-of-run merge order-independent.
TEST(LatencyHistogramTest, MergeIsAssociativeAndCommutative) {
  std::vector<LatencyHistogram> parts(3);
  Rng rng(21);
  for (size_t i = 0; i < parts.size(); ++i) {
    for (int k = 0; k < 500; ++k) {
      parts[i].Record(rng.Next() >> (rng.Next() & 39));
    }
  }

  // (a + b) + c
  LatencyHistogram left;
  left.Merge(parts[0]);
  left.Merge(parts[1]);
  left.Merge(parts[2]);
  // c + (b + a)
  LatencyHistogram right;
  right.Merge(parts[2]);
  LatencyHistogram ba;
  ba.Merge(parts[1]);
  ba.Merge(parts[0]);
  right.Merge(ba);

  EXPECT_EQ(left.Count(), right.Count());
  EXPECT_EQ(left.Min(), right.Min());
  EXPECT_EQ(left.Max(), right.Max());
  EXPECT_DOUBLE_EQ(left.Mean(), right.Mean());
  for (double p = 0.0; p <= 100.0; p += 2.5) {
    EXPECT_EQ(left.Percentile(p), right.Percentile(p)) << "p" << p;
  }
}

TEST(LatencyHistogramTest, MergeWithEmptyIsIdentity) {
  LatencyHistogram h;
  for (uint64_t v : {3u, 70u, 9000u}) h.Record(v);
  LatencyHistogram empty;
  h.Merge(empty);
  EXPECT_EQ(h.Count(), 3u);
  EXPECT_EQ(h.Min(), 3u);
  EXPECT_EQ(h.Max(), 9000u);

  LatencyHistogram other;
  other.Merge(h);
  EXPECT_EQ(other.Count(), 3u);
  EXPECT_EQ(other.Min(), 3u);
  EXPECT_EQ(other.Max(), 9000u);
}

}  // namespace
}  // namespace silkmoth::bench
