#include <set>

#include <gtest/gtest.h>

#include "datagen/dblp.h"
#include "datagen/webtable.h"
#include "text/tokenizer.h"

namespace silkmoth {
namespace {

TEST(DblpGeneratorTest, DeterministicForSeed) {
  DblpParams p;
  p.num_titles = 50;
  EXPECT_EQ(GenerateDblpTitles(p), GenerateDblpTitles(p));
  p.seed = 43;
  DblpParams p2 = p;
  p2.seed = 44;
  EXPECT_NE(GenerateDblpTitles(p), GenerateDblpTitles(p2));
}

TEST(DblpGeneratorTest, CountAndLengths) {
  DblpParams p;
  p.num_titles = 200;
  p.min_words = 5;
  p.max_words = 12;
  auto titles = GenerateDblpTitles(p);
  ASSERT_EQ(titles.size(), 200u);
  for (const auto& t : titles) {
    const size_t words = SplitWords(t).size();
    EXPECT_GE(words, 1u);
    EXPECT_LE(words, 12u);
  }
}

TEST(DblpGeneratorTest, ContainsNearDuplicates) {
  DblpParams p;
  p.num_titles = 100;
  p.duplicate_rate = 0.3;
  p.typo_rate = 0.0;  // Perturbed copies become exact duplicates.
  auto titles = GenerateDblpTitles(p);
  std::set<std::string> unique(titles.begin(), titles.end());
  EXPECT_LT(unique.size(), titles.size());
}

TEST(DblpGeneratorTest, ZipfSkewsWordFrequencies) {
  DblpParams p;
  p.num_titles = 400;
  p.vocabulary = 200;
  p.zipf_skew = 1.2;
  auto sets = GenerateDblpSets(p);
  std::map<std::string, int> freq;
  for (const auto& set : sets) {
    for (const auto& w : set) freq[w] += 1;
  }
  int max_freq = 0;
  long long total = 0;
  for (const auto& [w, f] : freq) {
    max_freq = std::max(max_freq, f);
    total += f;
  }
  // Head word should be far above the mean.
  EXPECT_GT(max_freq, 5 * total / static_cast<long long>(freq.size()));
}

TEST(ApplyTypoTest, EditDistanceAtMostOne) {
  Rng rng(1);
  for (int i = 0; i < 200; ++i) {
    const std::string w = "algorithm";
    const std::string t = ApplyTypo(w, &rng);
    EXPECT_FALSE(t.empty());
    const int diff = static_cast<int>(w.size()) - static_cast<int>(t.size());
    EXPECT_LE(std::abs(diff), 1);
  }
}

TEST(WebTableGeneratorTest, Deterministic) {
  WebTableParams p = SchemaMatchingDefaults(30);
  EXPECT_EQ(GenerateSchemaSets(p), GenerateSchemaSets(p));
}

TEST(WebTableGeneratorTest, SchemaShapeMatchesTable3) {
  WebTableParams p = SchemaMatchingDefaults(300);
  auto sets = GenerateSchemaSets(p);
  ASSERT_EQ(sets.size(), 300u);
  double elem_sum = 0.0, token_sum = 0.0;
  size_t elem_count = 0;
  for (const auto& set : sets) {
    elem_sum += static_cast<double>(set.size());
    for (const auto& e : set) {
      token_sum += static_cast<double>(SplitWords(e).size());
      ++elem_count;
    }
  }
  EXPECT_NEAR(elem_sum / 300.0, 3.0, 1.0);             // ~3 elems/set.
  EXPECT_NEAR(token_sum / elem_count, 11.3, 3.0);      // ~11.3 tokens/elem.
}

TEST(WebTableGeneratorTest, ColumnShapeMatchesTable3) {
  WebTableParams p = InclusionDependencyDefaults(200);
  auto sets = GenerateColumnSets(p);
  double elem_sum = 0.0, token_sum = 0.0;
  size_t elem_count = 0;
  for (const auto& set : sets) {
    elem_sum += static_cast<double>(set.size());
    for (const auto& e : set) {
      token_sum += static_cast<double>(SplitWords(e).size());
      ++elem_count;
    }
  }
  EXPECT_NEAR(elem_sum / 200.0, 22.0, 8.0);        // ~22 elems/set.
  EXPECT_NEAR(token_sum / elem_count, 2.2, 1.0);   // ~2.2 tokens/elem.
}

TEST(WebTableGeneratorTest, ColumnsContainPlantedSupersets) {
  WebTableParams p = InclusionDependencyDefaults(80);
  auto sets = GenerateColumnSets(p);
  // At least one later set must fully contain an earlier one.
  bool found = false;
  for (size_t i = 0; i < sets.size() && !found; ++i) {
    std::set<std::string> small(sets[i].begin(), sets[i].end());
    for (size_t j = 0; j < sets.size() && !found; ++j) {
      if (i == j || sets[j].size() <= sets[i].size()) continue;
      std::set<std::string> big(sets[j].begin(), sets[j].end());
      bool contains = true;
      for (const auto& e : small) contains &= big.count(e) > 0;
      found = contains;
    }
  }
  EXPECT_TRUE(found);
}

TEST(WebTableGeneratorTest, VariantsShareElements) {
  WebTableParams p = SchemaMatchingDefaults(60);
  p.variant_rate = 0.5;
  auto sets = GenerateSchemaSets(p);
  // Some pair of sets must share at least one identical element string.
  bool found = false;
  for (size_t i = 0; i < sets.size() && !found; ++i) {
    std::set<std::string> a(sets[i].begin(), sets[i].end());
    for (size_t j = i + 1; j < sets.size() && !found; ++j) {
      for (const auto& e : sets[j]) found |= a.count(e) > 0;
    }
  }
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace silkmoth
