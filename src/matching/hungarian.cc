#include "matching/hungarian.h"

#include <algorithm>
#include <limits>

namespace silkmoth {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// Classic potentials-based Hungarian algorithm on an n x m cost matrix with
// n <= m, minimizing total cost over perfect assignments of the rows.
// `cost` is a callback (i, j) -> double. Returns assignment row -> col.
std::vector<int> SolveMinCost(size_t n, size_t m,
                              const std::vector<double>& cost) {
  // 1-based arrays per the standard formulation.
  std::vector<double> u(n + 1, 0.0), v(m + 1, 0.0);
  std::vector<int> p(m + 1, 0);    // p[j]: row matched to column j.
  std::vector<int> way(m + 1, 0);  // Back-pointers along the alternating path.

  for (size_t i = 1; i <= n; ++i) {
    p[0] = static_cast<int>(i);
    size_t j0 = 0;
    std::vector<double> minv(m + 1, kInf);
    std::vector<char> used(m + 1, 0);
    do {
      used[j0] = 1;
      const size_t i0 = static_cast<size_t>(p[j0]);
      double delta = kInf;
      size_t j1 = 0;
      for (size_t j = 1; j <= m; ++j) {
        if (used[j]) continue;
        const double cur = cost[(i0 - 1) * m + (j - 1)] - u[i0] - v[j];
        if (cur < minv[j]) {
          minv[j] = cur;
          way[j] = static_cast<int>(j0);
        }
        if (minv[j] < delta) {
          delta = minv[j];
          j1 = j;
        }
      }
      for (size_t j = 0; j <= m; ++j) {
        if (used[j]) {
          u[static_cast<size_t>(p[j])] += delta;
          v[j] -= delta;
        } else {
          minv[j] -= delta;
        }
      }
      j0 = j1;
    } while (p[j0] != 0);
    // Augment along the path.
    do {
      const size_t j1 = static_cast<size_t>(way[j0]);
      p[j0] = p[j1];
      j0 = j1;
    } while (j0 != 0);
  }

  std::vector<int> row_to_col(n, -1);
  for (size_t j = 1; j <= m; ++j) {
    if (p[j] > 0) row_to_col[static_cast<size_t>(p[j]) - 1] =
        static_cast<int>(j) - 1;
  }
  return row_to_col;
}

}  // namespace

double MaxWeightMatching(const WeightMatrix& weights,
                         std::vector<int>* row_to_col) {
  const size_t r = weights.rows();
  const size_t c = weights.cols();
  if (r == 0 || c == 0) {
    if (row_to_col != nullptr) row_to_col->assign(r, -1);
    return 0.0;
  }

  // Orient so rows <= cols; maximization becomes minimization of
  // (max_w - w). Columns beyond the original count are zero padding and
  // never needed because c >= r after orientation.
  const bool transposed = r > c;
  const size_t n = transposed ? c : r;
  const size_t m = transposed ? r : c;

  double max_w = 0.0;
  for (size_t i = 0; i < r; ++i) {
    for (size_t j = 0; j < c; ++j) max_w = std::max(max_w, weights.At(i, j));
  }

  std::vector<double> cost(n * m);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < m; ++j) {
      const double w = transposed ? weights.At(j, i) : weights.At(i, j);
      cost[i * m + j] = max_w - w;
    }
  }

  const std::vector<int> assign = SolveMinCost(n, m, cost);

  double score = 0.0;
  std::vector<int> out(r, -1);
  for (size_t i = 0; i < n; ++i) {
    const int j = assign[i];
    if (j < 0) continue;
    const double w = transposed ? weights.At(static_cast<size_t>(j), i)
                                : weights.At(i, static_cast<size_t>(j));
    score += w;
    if (transposed) {
      out[static_cast<size_t>(j)] = static_cast<int>(i);
    } else {
      out[i] = j;
    }
  }
  if (row_to_col != nullptr) *row_to_col = std::move(out);
  return score;
}

double MaxWeightMatchingScore(const WeightMatrix& weights) {
  return MaxWeightMatching(weights, nullptr);
}

}  // namespace silkmoth
