#include "datagen/io.h"

#include <fstream>
#include <sstream>

namespace silkmoth {

void WriteRawSets(const RawSets& sets, std::ostream& out) {
  for (size_t i = 0; i < sets.size(); ++i) {
    if (i > 0) out << "\n";
    for (const std::string& elem : sets[i]) out << elem << "\n";
  }
}

bool SaveRawSets(const RawSets& sets, const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  WriteRawSets(sets, out);
  return static_cast<bool>(out);
}

void ReadRawSets(std::istream& in, RawSets* sets) {
  sets->clear();
  std::vector<std::string> current;
  std::string line;
  bool seen_content = false;
  while (std::getline(in, line)) {
    if (!line.empty() && line[0] == '#' && !seen_content) continue;
    if (line.empty()) {
      if (!current.empty()) {
        sets->push_back(std::move(current));
        current.clear();
      }
      continue;
    }
    seen_content = true;
    current.push_back(line);
  }
  if (!current.empty()) sets->push_back(std::move(current));
}

bool LoadRawSets(const std::string& path, RawSets* sets) {
  std::ifstream in(path);
  if (!in) return false;
  ReadRawSets(in, sets);
  return true;
}

}  // namespace silkmoth
