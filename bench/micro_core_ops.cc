// Component micro-benchmarks (google-benchmark): Levenshtein variants,
// Hungarian matching, reduction-based verification, bound-guided
// verification decisions, inverted index build, signature generation,
// candidate selection on the reusable query scratch, and NN search. These
// are ablations for the design choices DESIGN.md calls out; they are not
// paper figures.

#include <benchmark/benchmark.h>

#include "bench/histogram.h"
#include "core/query_scratch.h"
#include "core/relatedness.h"
#include "datagen/builders.h"
#include "datagen/dblp.h"
#include "datagen/webtable.h"
#include "filter/check_filter.h"
#include "filter/nn_filter.h"
#include "index/inverted_index.h"
#include "matching/hungarian.h"
#include "matching/verifier.h"
#include "sig/scheme.h"
#include "text/levenshtein.h"
#include "util/rng.h"

namespace silkmoth {
namespace {

std::string RandomString(Rng* rng, size_t len) {
  std::string s;
  for (size_t i = 0; i < len; ++i) {
    s.push_back(static_cast<char>('a' + rng->NextBounded(26)));
  }
  return s;
}

void BM_LevenshteinFull(benchmark::State& state) {
  Rng rng(1);
  const size_t len = static_cast<size_t>(state.range(0));
  const std::string a = RandomString(&rng, len);
  const std::string b = RandomString(&rng, len);
  for (auto _ : state) {
    benchmark::DoNotOptimize(LevenshteinDistance(a, b));
  }
}
BENCHMARK(BM_LevenshteinFull)->Arg(16)->Arg(64)->Arg(256);

void BM_LevenshteinBounded(benchmark::State& state) {
  Rng rng(2);
  const size_t len = static_cast<size_t>(state.range(0));
  std::string a = RandomString(&rng, len);
  std::string b = a;
  b[len / 2] = '!';  // Distance 1: the band shines.
  for (auto _ : state) {
    benchmark::DoNotOptimize(BoundedLevenshtein(a, b, 4));
  }
}
BENCHMARK(BM_LevenshteinBounded)->Arg(16)->Arg(64)->Arg(256);

void BM_Hungarian(benchmark::State& state) {
  Rng rng(3);
  const size_t n = static_cast<size_t>(state.range(0));
  WeightMatrix w(n, n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) w.At(i, j) = rng.NextDouble();
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(MaxWeightMatchingScore(w));
  }
}
BENCHMARK(BM_Hungarian)->Arg(8)->Arg(32)->Arg(128);

Collection ColumnData(size_t sets, size_t min_elems, size_t max_elems) {
  WebTableParams p = InclusionDependencyDefaults(sets);
  p.min_elements = min_elems;
  p.max_elements = max_elems;
  return BuildCollection(GenerateColumnSets(p), TokenizerKind::kWord);
}

void BM_VerifierPlain(benchmark::State& state) {
  Collection data = ColumnData(12, static_cast<size_t>(state.range(0)),
                               static_cast<size_t>(state.range(0)) + 10);
  MaxMatchingVerifier verifier(GetSimilarity(SimilarityKind::kJaccard), 0.0,
                               false);
  for (auto _ : state) {
    benchmark::DoNotOptimize(verifier.Score(data.sets[0], data.sets[1]));
  }
}
BENCHMARK(BM_VerifierPlain)->Arg(30)->Arg(100);

void BM_VerifierReduction(benchmark::State& state) {
  Collection data = ColumnData(12, static_cast<size_t>(state.range(0)),
                               static_cast<size_t>(state.range(0)) + 10);
  MaxMatchingVerifier verifier(GetSimilarity(SimilarityKind::kJaccard), 0.0,
                               true);
  for (auto _ : state) {
    benchmark::DoNotOptimize(verifier.Score(data.sets[0], data.sets[1]));
  }
}
BENCHMARK(BM_VerifierReduction)->Arg(30)->Arg(100);

// --- Bound-guided verification decisions -----------------------------------
// The θ-threshold test over every candidate pair of a column corpus: the
// pre-refactor path runs the exact O(n³) Hungarian solver per pair; the
// bound-guided path answers from the greedy lower bound / maxima upper bound
// sandwich and solves exactly only in the ambiguous band. The ≥2× acceptance
// target of the hot-path overhaul is measured here.

Options DecisionOptions() {
  Options opt;
  opt.metric = Relatedness::kContainment;
  opt.phi = SimilarityKind::kJaccard;
  opt.delta = 0.7;
  return opt;
}

void BM_VerifyDecisionExact(benchmark::State& state) {
  Collection data = ColumnData(12, static_cast<size_t>(state.range(0)),
                               static_cast<size_t>(state.range(0)) + 10);
  const Options opt = DecisionOptions();
  MaxMatchingVerifier verifier(GetSimilarity(opt.phi), 0.0, true);
  for (auto _ : state) {
    for (uint32_t r = 0; r + 1 < data.sets.size(); ++r) {
      const SetRecord& a = data.sets[r];
      const SetRecord& b = data.sets[r + 1];
      const double theta = RelatedScoreThreshold(a.Size(), b.Size(), opt);
      const double m = verifier.Score(a, b);
      benchmark::DoNotOptimize(m >= theta - kFloatSlack);
    }
  }
}
BENCHMARK(BM_VerifyDecisionExact)->Arg(30)->Arg(100);

void BM_VerifyDecisionBounded(benchmark::State& state) {
  Collection data = ColumnData(12, static_cast<size_t>(state.range(0)),
                               static_cast<size_t>(state.range(0)) + 10);
  const Options opt = DecisionOptions();
  // need_exact_score mirrors RunSearchPass, which also solves on the
  // already-built matrix to report accepted pairs' exact scores.
  const bool need_exact_score = state.range(1) != 0;
  MaxMatchingVerifier verifier(GetSimilarity(opt.phi), 0.0, true);
  MatchingStats stats;
  for (auto _ : state) {
    for (uint32_t r = 0; r + 1 < data.sets.size(); ++r) {
      const SetRecord& a = data.sets[r];
      const SetRecord& b = data.sets[r + 1];
      const double theta = RelatedScoreThreshold(a.Size(), b.Size(), opt);
      const double margin =
          kFloatSlack * (static_cast<double>(a.Size() + b.Size()) + 2.0);
      benchmark::DoNotOptimize(verifier.ScoreDecision(
          a, b, theta, &stats, margin, need_exact_score));
    }
  }
  // How often the bounds settled the decision, visible in CI logs.
  state.counters["bound_accepts"] = static_cast<double>(stats.bound_accepts);
  state.counters["bound_rejects"] = static_cast<double>(stats.bound_rejects);
  state.counters["exact_solves"] = static_cast<double>(stats.exact_solves);
}
BENCHMARK(BM_VerifyDecisionBounded)
    ->Args({30, 0})
    ->Args({100, 0})
    ->Args({30, 1})   // Decision + exact score on accepts (search-pass mode).
    ->Args({100, 1});

// --- Candidate selection on the reusable query scratch ---------------------

void BM_SelectAndCheck(benchmark::State& state) {
  Collection data = ColumnData(500, 14, 30);
  InvertedIndex index;
  index.Build(data);
  Options opt;
  opt.metric = Relatedness::kSimilarity;
  opt.phi = SimilarityKind::kJaccard;
  opt.delta = 0.6;
  const ElementSimilarity* sim = GetSimilarity(opt.phi);
  const bool reuse = state.range(0) != 0;
  QueryScratch persistent;
  size_t i = 0;
  for (auto _ : state) {
    QueryScratch fresh;
    QueryScratch* scratch = reuse ? &persistent : &fresh;
    const SetRecord& ref = data.sets[i++ % data.sets.size()];
    SchemeParams params;
    params.scheme = opt.scheme;
    params.phi = opt.phi;
    params.theta = MatchingThreshold(opt.delta, ref.Size());
    const Signature sig = GenerateSignature(ref, index, params);
    if (!sig.valid) continue;
    benchmark::DoNotOptimize(SelectAndCheckCandidates(
        ref, sig, data, index, opt, true, nullptr, sim, scratch));
  }
}
BENCHMARK(BM_SelectAndCheck)
    ->Arg(0)   // Fresh scratch per query (allocation cost included).
    ->Arg(1);  // Reused per-thread scratch (the engine's hot path).

void BM_IndexBuild(benchmark::State& state) {
  Collection data = ColumnData(static_cast<size_t>(state.range(0)), 14, 30);
  for (auto _ : state) {
    InvertedIndex index;
    index.Build(data);
    benchmark::DoNotOptimize(index.TotalPostings());
  }
}
BENCHMARK(BM_IndexBuild)->Arg(500)->Arg(2000);

void BM_SignatureGeneration(benchmark::State& state) {
  Collection data = ColumnData(1000, 14, 30);
  InvertedIndex index;
  index.Build(data);
  SchemeParams params;
  params.scheme = static_cast<SignatureSchemeKind>(state.range(0));
  params.phi = SimilarityKind::kJaccard;
  params.alpha = 0.5;
  size_t i = 0;
  for (auto _ : state) {
    const SetRecord& ref = data.sets[i++ % data.sets.size()];
    params.theta = 0.7 * static_cast<double>(ref.Size());
    benchmark::DoNotOptimize(GenerateSignature(ref, index, params));
  }
}
BENCHMARK(BM_SignatureGeneration)
    ->Arg(static_cast<int>(SignatureSchemeKind::kWeighted))
    ->Arg(static_cast<int>(SignatureSchemeKind::kCombUnweighted))
    ->Arg(static_cast<int>(SignatureSchemeKind::kSkyline))
    ->Arg(static_cast<int>(SignatureSchemeKind::kDichotomy));

void BM_NnSearch(benchmark::State& state) {
  Collection data = ColumnData(200, 14, 30);
  InvertedIndex index;
  index.Build(data);
  Options options;
  options.metric = Relatedness::kContainment;
  const ElementSimilarity* sim = GetSimilarity(options.phi);
  const bool reuse = state.range(0) != 0;
  QueryScratch scratch;
  size_t i = 0;
  for (auto _ : state) {
    const Element& r = data.sets[0].elements[i++ % data.sets[0].Size()];
    benchmark::DoNotOptimize(
        NnSearch(r, static_cast<uint32_t>(1 + i % 100), data, index, options,
                 nullptr, sim, reuse ? &scratch : nullptr));
  }
}
BENCHMARK(BM_NnSearch)
    ->Arg(0)   // Private visited marks per call.
    ->Arg(1);  // Reused epoch-stamped marks.

void BM_HistogramRecord(benchmark::State& state) {
  // The per-request hot path of the bench runner: one Record per served
  // request, values spread across the log-linear decades.
  Rng rng(9);
  bench::LatencyHistogram hist;
  for (auto _ : state) {
    hist.Record(rng.Next() >> (rng.Next() & 31));
  }
  benchmark::DoNotOptimize(hist.Count());
}
BENCHMARK(BM_HistogramRecord);

void BM_HistogramPercentile(benchmark::State& state) {
  Rng rng(10);
  bench::LatencyHistogram hist;
  for (int i = 0; i < state.range(0); ++i) {
    hist.Record(rng.Next() >> (rng.Next() & 31));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(hist.Percentile(99));
  }
}
BENCHMARK(BM_HistogramPercentile)->Arg(1000)->Arg(100000);

}  // namespace
}  // namespace silkmoth
