#include "snapshot/shard_runner.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstring>

#include "core/sharded_engine.h"
#include "text/similarity.h"
#include "util/atomic_file_writer.h"
#include "util/fault_injection.h"

namespace silkmoth {
namespace {

// Named counter fields of SearchStats, in file order. Save writes them all;
// Load requires them all — a missing or unknown counter is a format error,
// so the two lists cannot drift apart silently.
struct CounterField {
  const char* name;
  size_t SearchStats::* member;
};
constexpr CounterField kCounters[] = {
    {"references", &SearchStats::references},
    {"fallback_scans", &SearchStats::fallback_scans},
    {"signature_tokens", &SearchStats::signature_tokens},
    {"initial_candidates", &SearchStats::initial_candidates},
    {"after_size", &SearchStats::after_size},
    {"after_check", &SearchStats::after_check},
    {"after_nn", &SearchStats::after_nn},
    {"verifications", &SearchStats::verifications},
    {"results", &SearchStats::results},
    {"similarity_calls", &SearchStats::similarity_calls},
    {"reduced_pairs", &SearchStats::reduced_pairs},
    {"bound_accepts", &SearchStats::bound_accepts},
    {"bound_rejects", &SearchStats::bound_rejects},
    {"tier2_accepts", &SearchStats::tier2_accepts},
    {"heap_floor_rejects", &SearchStats::heap_floor_rejects},
    {"exact_solves", &SearchStats::exact_solves},
    {"reporting_solves", &SearchStats::reporting_solves},
    {"bound_only_scores", &SearchStats::bound_only_scores},
    {"query_sets", &SearchStats::query_sets},
    {"oov_tokens", &SearchStats::oov_tokens},
};

struct SecondsField {
  const char* name;
  double SearchStats::* member;
};
constexpr SecondsField kSeconds[] = {
    {"signature_seconds", &SearchStats::signature_seconds},
    {"selection_seconds", &SearchStats::selection_seconds},
    {"nn_seconds", &SearchStats::nn_seconds},
    {"verify_seconds", &SearchStats::verify_seconds},
};

// Version 5: adds the tier2_accepts/heap_floor_rejects/reporting_solves
// verification counters (the stats block requires every counter in fixed
// order, so new counters are a format change). Version 4 added the `range`
// line — the shard's global set-id range, so a partial (degraded-mode)
// merge can stamp exactly which set-id ranges its output covers. Version 3
// added the reference-payload line (self-join vs external query, with the
// query payload hash) and the query_sets/oov_tokens counters. Version 2
// added the exact_scores flag to the options fingerprint and the
// bound_only_scores counter (both output-affecting).
constexpr char kResultHeader[] = "silkmoth-shard-result 5";

bool ParseRelatedness(const char* name, Relatedness* out) {
  for (Relatedness m :
       {Relatedness::kSimilarity, Relatedness::kContainment}) {
    if (std::strcmp(name, RelatednessName(m)) == 0) {
      *out = m;
      return true;
    }
  }
  return false;
}

bool ParseSimilarityKind(const char* name, SimilarityKind* out) {
  for (SimilarityKind k : {SimilarityKind::kJaccard, SimilarityKind::kEds,
                           SimilarityKind::kNeds}) {
    if (std::strcmp(name, SimilarityKindName(k)) == 0) {
      *out = k;
      return true;
    }
  }
  return false;
}

}  // namespace

std::string CheckSnapshotCompatible(const Snapshot& snap,
                                    const Options& options) {
  const bool need_qgrams = IsEditSimilarity(options.phi);
  const bool has_qgrams = snap.tokenizer == TokenizerKind::kQGram;
  if (need_qgrams != has_qgrams) {
    return std::string("snapshot was built with ") +
           (has_qgrams ? "q-gram" : "word") + " tokens but --phi " +
           SimilarityKindName(options.phi) + " needs " +
           (need_qgrams ? "q-gram" : "word") + " tokens; rebuild the "
           "snapshot with a matching --phi";
  }
  if (need_qgrams && options.EffectiveQ() != snap.q) {
    return "snapshot was built with q=" + std::to_string(snap.q) +
           " but the requested options resolve to q=" +
           std::to_string(options.EffectiveQ()) +
           "; pass a matching --q (or rebuild the snapshot)";
  }
  return "";
}

namespace {

// Shared single-shard driver behind DiscoverShardSelf/DiscoverShardAgainst:
// runs the in-process DiscoverAcrossShards over a one-shard span, so the
// parity-critical loop (exclusion, dedup, chunking, sort) is literally the
// same code ShardedEngine runs and the two execution modes cannot drift.
std::vector<PairMatch> DiscoverShardBlock(const Snapshot& snap, size_t shard,
                                          const ReferenceBlock& block,
                                          const Options& options,
                                          SearchStats* stats) {
  if (shard >= snap.shards.size()) return {};
  const Snapshot::Shard& sh = snap.shards[shard];
  // A shard whose index was not loaded (LoadSnapshotShard loads exactly
  // one) must not run against an empty index and silently return nothing
  // real; callers select the loaded shard.
  if (!sh.loaded) return {};
  // Empty shards run zero passes and touch no stats, exactly like the
  // in-process engine skipping them.
  if (sh.range.begin == sh.range.end) return {};

  const ShardView view{sh.range, &sh.index};
  ShardedSearchStats local;
  local.Reset(1);
  std::vector<PairMatch> pairs = DiscoverAcrossShards(
      block, snap.data, std::span<const ShardView>(&view, 1), options,
      stats != nullptr ? &local : nullptr);
  if (stats != nullptr) stats->Merge(local.per_shard[0]);
  return pairs;
}

}  // namespace

std::vector<PairMatch> DiscoverShardSelf(const Snapshot& snap, size_t shard,
                                         const Options& options,
                                         SearchStats* stats) {
  return DiscoverShardBlock(snap, shard, ReferenceBlock::SelfJoin(snap.data),
                            options, stats);
}

std::vector<PairMatch> DiscoverShardAgainst(const Snapshot& snap,
                                            size_t shard,
                                            const ReferenceBlock& block,
                                            const Options& options,
                                            SearchStats* stats) {
  // A self-join block routed through the query entry point would silently
  // apply exclusion/dedup semantics the caller did not ask for.
  if (block.self_join) return {};
  return DiscoverShardBlock(snap, shard, block, options, stats);
}

std::string SaveShardResult(const ShardResult& result,
                            const std::string& path) {
  // The whole result is serialized in memory first and published through
  // AtomicFileWriter: a crashed or failed save can never leave a torn file
  // at `path` — which is exactly what makes orchestrator retries safe to
  // run over a previous attempt's output.
  std::string body;
  body.reserve(256 + result.pairs.size() * 48);
  char buf[192];
  body += kResultHeader;
  body += '\n';
  std::snprintf(buf, sizeof(buf), "shard %" PRIu32 " of %" PRIu32 "\n",
                result.shard, result.num_shards);
  body += buf;
  std::snprintf(buf, sizeof(buf), "range %" PRIu32 " %" PRIu32 "\n",
                result.range.begin, result.range.end);
  body += buf;
  std::snprintf(buf, sizeof(buf), "options %s %s %.17g %.17g %d %d\n",
                RelatednessName(result.options.metric),
                SimilarityKindName(result.options.phi), result.options.delta,
                result.options.alpha, result.options.EffectiveQ(),
                result.options.exact_scores ? 1 : 0);
  body += buf;
  // The reference payload the shard streamed: the snapshot's own collection
  // (self-join) or an external query payload, pinned by its content hash so
  // merge can refuse streams produced against different queries.
  if (result.query_mode) {
    std::snprintf(buf, sizeof(buf), "reference query %016" PRIx64 "\n",
                  result.query_hash);
    body += buf;
  } else {
    body += "reference self\n";
  }
  for (const CounterField& f : kCounters) {
    std::snprintf(buf, sizeof(buf), "stat %s %zu\n", f.name,
                  result.stats.*(f.member));
    body += buf;
  }
  for (const SecondsField& f : kSeconds) {
    std::snprintf(buf, sizeof(buf), "statf %s %.17g\n", f.name,
                  result.stats.*(f.member));
    body += buf;
  }
  std::snprintf(buf, sizeof(buf), "pairs %zu\n", result.pairs.size());
  body += buf;
  for (const PairMatch& p : result.pairs) {
    // Fault-injection site: `result-pair:abort:0:K` crashes the worker
    // after serializing K-1 results — the abort-after-k-results shape.
    fault::Hit("result-pair");
    // %.17g round-trips doubles exactly, so merge re-emits the very same
    // values the shard process computed.
    std::snprintf(buf, sizeof(buf), "%" PRIu32 "\t%" PRIu32 "\t%.17g\t%.17g\n",
                  p.ref_id, p.set_id, p.matching_score, p.relatedness);
    body += buf;
  }
  body += "end\n";

  AtomicFileWriter writer(path, "result-write");
  std::string err = writer.Open();
  if (err.empty()) err = writer.Write(body);
  if (err.empty()) err = writer.Commit();
  return err;
}

std::string LoadShardResult(const std::string& path, ShardResult* out) {
  // Read-into-memory through the hardened loop (EINTR/short-read safe),
  // then parse lines from the buffer — one I/O path, one injection point.
  std::string text;
  const std::string read_err = ReadFileToString(path, &text, "result-read");
  if (!read_err.empty()) return read_err;
  std::string line;
  size_t cursor = 0;
  auto next_line = [&]() -> bool {
    if (cursor >= text.size()) return false;
    const size_t nl = text.find('\n', cursor);
    if (nl == std::string::npos) {
      line.assign(text, cursor, text.size() - cursor);
      cursor = text.size();
    } else {
      line.assign(text, cursor, nl - cursor);
      cursor = nl + 1;
    }
    return true;
  };

  if (!next_line() || line != kResultHeader) {
    return path + ": not a silkmoth shard result (or unsupported version)";
  }
  ShardResult result;
  if (!next_line() ||
      std::sscanf(line.c_str(), "shard %" SCNu32 " of %" SCNu32,
                  &result.shard, &result.num_shards) != 2) {
    return path + ": malformed shard line";
  }
  if (!next_line() ||
      std::sscanf(line.c_str(), "range %" SCNu32 " %" SCNu32,
                  &result.range.begin, &result.range.end) != 2 ||
      result.range.end < result.range.begin) {
    return path + ": malformed range line";
  }
  {
    char metric[64], phi[64];
    int q = 0, exact = 1;
    if (!next_line() ||
        std::sscanf(line.c_str(), "options %63s %63s %lg %lg %d %d", metric,
                    phi, &result.options.delta, &result.options.alpha, &q,
                    &exact) != 6 ||
        !ParseRelatedness(metric, &result.options.metric) ||
        !ParseSimilarityKind(phi, &result.options.phi) ||
        (exact != 0 && exact != 1)) {
      return path + ": malformed options line";
    }
    result.options.q = q;
    result.options.exact_scores = exact != 0;
  }
  {
    if (!next_line()) return path + ": missing reference line";
    if (line == "reference self") {
      result.query_mode = false;
      result.query_hash = 0;
    } else if (std::sscanf(line.c_str(), "reference query %" SCNx64,
                           &result.query_hash) == 1) {
      result.query_mode = true;
    } else {
      return path + ": malformed reference line";
    }
  }
  for (const CounterField& f : kCounters) {
    unsigned long long v = 0;
    char name[64];
    if (!next_line() ||
        std::sscanf(line.c_str(), "stat %63s %llu", name, &v) != 2 ||
        std::strcmp(name, f.name) != 0) {
      return path + ": malformed or out-of-order stat line (want " +
             f.name + ")";
    }
    result.stats.*(f.member) = static_cast<size_t>(v);
  }
  for (const SecondsField& f : kSeconds) {
    double v = 0;
    char name[64];
    if (!next_line() ||
        std::sscanf(line.c_str(), "statf %63s %lg", name, &v) != 2 ||
        std::strcmp(name, f.name) != 0) {
      return path + ": malformed or out-of-order statf line (want " +
             f.name + ")";
    }
    result.stats.*(f.member) = v;
  }
  unsigned long long num_pairs = 0;
  if (!next_line() ||
      std::sscanf(line.c_str(), "pairs %llu", &num_pairs) != 1) {
    return path + ": malformed pairs line";
  }
  result.pairs.reserve(std::min<unsigned long long>(num_pairs, 1 << 20));
  for (unsigned long long i = 0; i < num_pairs; ++i) {
    PairMatch p;
    if (!next_line() ||
        std::sscanf(line.c_str(), "%" SCNu32 " %" SCNu32 " %lg %lg",
                    &p.ref_id, &p.set_id, &p.matching_score,
                    &p.relatedness) != 4) {
      return path + ": truncated or malformed pair line";
    }
    if (!result.pairs.empty() && !PairMatchIdLess(result.pairs.back(), p)) {
      return path + ": pair stream is not sorted by (ref_id, set_id)";
    }
    result.pairs.push_back(p);
  }
  if (!next_line() || line != "end") {
    return path + ": missing end marker (truncated result file)";
  }
  *out = std::move(result);
  return "";
}

std::string MergeShardResults(const std::vector<ShardResult>& results,
                              std::vector<PairMatch>* pairs,
                              ShardedSearchStats* stats,
                              const MergeOptions& merge_options,
                              MergeCoverage* coverage) {
  if (results.empty()) return "no shard results to merge";
  const uint32_t num_shards = results[0].num_shards;
  std::vector<bool> seen(num_shards, false);
  size_t total = 0;
  for (const ShardResult& r : results) {
    if (r.num_shards != num_shards) {
      return "shard results disagree on the shard count (" +
             std::to_string(r.num_shards) + " vs " +
             std::to_string(num_shards) + ")";
    }
    if (r.shard >= num_shards) {
      return "shard id " + std::to_string(r.shard) +
             " out of range for " + std::to_string(num_shards) + " shards";
    }
    if (seen[r.shard]) {
      return "duplicate result for shard " + std::to_string(r.shard);
    }
    // Shards run under different query options merge into a stream that
    // matches no single-process run; refuse instead of silently combining.
    const Options& a = results[0].options;
    const Options& b = r.options;
    if (a.metric != b.metric || a.phi != b.phi || a.delta != b.delta ||
        a.alpha != b.alpha || a.q != b.q ||
        a.exact_scores != b.exact_scores) {
      return "shard results disagree on query options (shard " +
             std::to_string(r.shard) + " ran a different "
             "metric/phi/delta/alpha/q/exact-scores than shard " +
             std::to_string(results[0].shard) + ")";
    }
    // Same rule for the reference payload: a self-join stream and a query
    // stream (or streams over two different query payloads) belong to two
    // different answers.
    if (r.query_mode != results[0].query_mode ||
        r.query_hash != results[0].query_hash) {
      return "shard results disagree on the reference payload (shard " +
             std::to_string(r.shard) + " and shard " +
             std::to_string(results[0].shard) + " ran " +
             (r.query_mode != results[0].query_mode
                  ? "a query run against a self-join run"
                  : "different query payloads") +
             "; merge only shards of one run)";
    }
    seen[r.shard] = true;
    total += r.pairs.size();
  }
  if (!merge_options.allow_partial && results.size() != num_shards) {
    for (uint32_t s = 0; s < num_shards; ++s) {
      if (!seen[s]) {
        return "missing result for shard " + std::to_string(s) + " (have " +
               std::to_string(results.size()) + " of " +
               std::to_string(num_shards) + ")";
      }
    }
  }
  if (coverage != nullptr) {
    // The explicit record of what this merge covers: partial output is
    // stamped with its present shard ids and their set-id ranges, so a
    // degraded-mode merge can never masquerade as a complete run.
    MergeCoverage cov;
    cov.num_shards = num_shards;
    cov.complete = true;
    std::vector<SetIdRange> range_of(num_shards);
    for (const ShardResult& r : results) range_of[r.shard] = r.range;
    for (uint32_t s = 0; s < num_shards; ++s) {
      if (seen[s]) {
        cov.covered.push_back(s);
        cov.covered_ranges.push_back(range_of[s]);
      } else {
        cov.missing.push_back(s);
        cov.complete = false;
      }
    }
    *coverage = std::move(cov);
  }

  if (stats != nullptr) {
    stats->Reset(num_shards);
    for (const ShardResult& r : results) {
      stats->per_shard[r.shard] = r.stats;
    }
  }

  // K-way merge of the sorted streams. (ref_id, set_id) keys are unique
  // across shards — set-id ranges are disjoint — so the merged order equals
  // the in-process engine's canonical sort, bit for bit.
  pairs->clear();
  pairs->reserve(total);
  std::vector<size_t> cursor(results.size(), 0);
  for (size_t done = 0; done < total;) {
    size_t best = results.size();
    for (size_t i = 0; i < results.size(); ++i) {
      if (cursor[i] >= results[i].pairs.size()) continue;
      if (best == results.size() ||
          PairMatchIdLess(results[i].pairs[cursor[i]],
                          results[best].pairs[cursor[best]])) {
        best = i;
      }
    }
    pairs->push_back(results[best].pairs[cursor[best]++]);
    ++done;
  }
  return "";
}

std::string FormatCoverage(const MergeCoverage& cov) {
  std::string out = "# partial coverage: " +
                    std::to_string(cov.covered.size()) + " of " +
                    std::to_string(cov.num_shards) + " shards\n";
  std::string covered, ranges, missing;
  for (size_t i = 0; i < cov.covered.size(); ++i) {
    if (i) covered += ",";
    covered += std::to_string(cov.covered[i]);
    if (i) ranges += " ";
    ranges += "[" + std::to_string(cov.covered_ranges[i].begin) + "," +
              std::to_string(cov.covered_ranges[i].end) + ")";
  }
  for (size_t i = 0; i < cov.missing.size(); ++i) {
    if (i) missing += ",";
    missing += std::to_string(cov.missing[i]);
  }
  out += "# covered shards: " + covered + "\n";
  out += "# covered set-id ranges: " + ranges + "\n";
  out += "# missing shards: " + missing + "\n";
  return out;
}

}  // namespace silkmoth
