#include "core/search_pass.h"

#include <gtest/gtest.h>

#include "core/brute_force.h"
#include "core/engine.h"
#include "datagen/builders.h"
#include "paper_example.h"

namespace silkmoth {
namespace {

using test::MakePaperExample;

Options ContainOptions(double delta = 0.7) {
  Options o;
  o.metric = Relatedness::kContainment;
  o.phi = SimilarityKind::kJaccard;
  o.delta = delta;
  return o;
}

TEST(SearchPassTest, ExcludeSetSkipsOneResult) {
  auto ex = MakePaperExample();
  InvertedIndex index;
  index.Build(ex.data);
  const Options opt = ContainOptions();
  auto all = RunSearchPass(ex.ref, ex.data, index, opt);
  ASSERT_EQ(all.size(), 1u);
  ASSERT_EQ(all[0].set_id, 3u);
  auto excluded = RunSearchPass(ex.ref, ex.data, index, opt, /*exclude=*/3);
  EXPECT_TRUE(excluded.empty());
  // Excluding a non-matching set changes nothing.
  auto other = RunSearchPass(ex.ref, ex.data, index, opt, /*exclude=*/0);
  EXPECT_EQ(other, all);
}

TEST(SearchPassTest, EmptyReference) {
  auto ex = MakePaperExample();
  InvertedIndex index;
  index.Build(ex.data);
  SetRecord empty;
  SearchStats stats;
  auto matches =
      RunSearchPass(empty, ex.data, index, ContainOptions(), kNoExclude,
                    &stats);
  EXPECT_TRUE(matches.empty());
  EXPECT_EQ(stats.references, 0u);  // Nothing counted for empty refs.
}

TEST(SearchPassTest, FallbackScanOnInvalidSignature) {
  // Short strings + q=2 + δ=0.5 make the weighted scheme empty for edit
  // similarity (q >= δ/(1-δ), Section 7.3): the engine must full-scan and
  // still return the exact answer.
  RawSets raw = {{"abcd", "efgh"}, {"abcd", "efgx"}, {"zzzz", "yyyy"}};
  Options o;
  o.metric = Relatedness::kSimilarity;
  o.phi = SimilarityKind::kEds;
  o.delta = 0.5;
  o.alpha = 0.0;
  o.q = 2;
  Collection data = BuildCollection(raw, TokenizerKind::kQGram, 2);
  InvertedIndex index;
  index.Build(data);
  SearchStats stats;
  auto matches = RunSearchPass(data.sets[0], data, index, o, kNoExclude,
                               &stats);
  EXPECT_GE(stats.fallback_scans, 1u);
  BruteForce oracle(&data, o);
  EXPECT_EQ(matches, oracle.Search(data.sets[0]));
}

TEST(SearchPassTest, NoFallbackWhenQObeysSection73) {
  // With q <= MaxQForDelta the weighted scheme is non-empty for every
  // reference, so no fallback scans happen.
  RawSets raw = {{"abcdefgh", "ijklmnop"}, {"abcdefgh", "qrstuvwx"}};
  Options o;
  o.metric = Relatedness::kSimilarity;
  o.phi = SimilarityKind::kEds;
  o.delta = 0.8;  // MaxQForDelta(0.8) = 3.
  o.q = MaxQForDelta(0.8);
  ASSERT_EQ(o.q, 3);
  Collection data = BuildCollection(raw, TokenizerKind::kQGram, o.q);
  InvertedIndex index;
  index.Build(data);
  SearchStats stats;
  RunSearchPass(data.sets[0], data, index, o, kNoExclude, &stats);
  EXPECT_EQ(stats.fallback_scans, 0u);
}

TEST(SearchPassTest, TimingsAreNonNegativeAndCounted) {
  auto ex = MakePaperExample();
  InvertedIndex index;
  index.Build(ex.data);
  SearchStats stats;
  RunSearchPass(ex.ref, ex.data, index, ContainOptions(), kNoExclude,
                &stats);
  EXPECT_GE(stats.signature_seconds, 0.0);
  EXPECT_GE(stats.selection_seconds, 0.0);
  EXPECT_GE(stats.nn_seconds, 0.0);
  EXPECT_GE(stats.verify_seconds, 0.0);
  EXPECT_GT(stats.signature_tokens, 0u);
}

TEST(SearchPassTest, ResultsSortedBySetId) {
  auto ex = MakePaperExample();
  InvertedIndex index;
  index.Build(ex.data);
  Options o = ContainOptions(0.2);  // Low threshold: several results.
  auto matches = RunSearchPass(ex.ref, ex.data, index, o);
  ASSERT_GT(matches.size(), 1u);
  for (size_t i = 1; i < matches.size(); ++i) {
    EXPECT_LT(matches[i - 1].set_id, matches[i].set_id);
  }
}

TEST(MaxQForDeltaTest, Values) {
  EXPECT_EQ(MaxQForDelta(0.7), 2);   // 2.33 -> 2.
  EXPECT_EQ(MaxQForDelta(0.75), 2);  // 3.0 integral -> 2.
  EXPECT_EQ(MaxQForDelta(0.8), 3);   // 4.0 integral -> 3.
  EXPECT_EQ(MaxQForDelta(0.85), 5);  // 5.67 -> 5.
  EXPECT_EQ(MaxQForDelta(0.5), 0);   // 1.0 integral -> 0: no legal q.
  EXPECT_EQ(MaxQForDelta(0.3), 0);
}

}  // namespace
}  // namespace silkmoth
