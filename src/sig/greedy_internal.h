#ifndef SILKMOTH_SIG_GREEDY_INTERNAL_H_
#define SILKMOTH_SIG_GREEDY_INTERNAL_H_

// Internal machinery shared by the weighted-family signature schemes.
// Not part of the public API.

#include <cstdint>
#include <vector>

#include "index/inverted_index.h"
#include "sig/signature.h"

namespace silkmoth {
namespace sig_internal {

/// One candidate token with its occurrences across R's elements.
struct TokenOcc {
  TokenId token = 0;
  size_t cost = 0;                                   ///< |I[t]|.
  std::vector<std::pair<uint32_t, uint32_t>> occs;   ///< (elem idx, mult).
};

/// Collects the distinct candidate tokens of R with costs and occurrences.
std::vector<TokenOcc> CollectTokens(const std::vector<ElementUnits>& units,
                                    const InvertedIndex& index);

/// Mutable per-element selection state during the greedy.
struct SelectState {
  size_t selected_units = 0;
  bool complete = false;                 ///< Dichotomy completion (§6.4).
  std::vector<TokenId> chosen;           ///< Tokens picked for this element.
};

/// Result of the shared lazy greedy.
struct GreedyResult {
  std::vector<SelectState> state;  ///< One per element.
  double bound_sum = 0.0;          ///< Σ_i current bound (0 for complete).
  bool reached = false;            ///< bound_sum dropped below θ.
};

/// Runs the cost/value greedy of Section 4.3 (lazy marginal-gain variant so
/// the nonlinear edit-similarity bound of Definition 11 is handled too).
///
/// Tokens enter in ascending cost/value order (ties: cost, then higher token
/// id first, matching the paper's running example). When `completion[i]` is
/// not kNoSimThresh, an element reaching that many selected units is
/// *completed*: its bound contribution drops to 0 and it accepts no further
/// tokens (dichotomy, Section 6.4). Stops as soon as the total bound is
/// below `theta`.
GreedyResult RunGreedy(const std::vector<ElementUnits>& units,
                       const std::vector<TokenOcc>& tokens, double theta,
                       const std::vector<size_t>& completion);

}  // namespace sig_internal
}  // namespace silkmoth

#endif  // SILKMOTH_SIG_GREEDY_INTERNAL_H_
