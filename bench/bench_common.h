#ifndef SILKMOTH_BENCH_BENCH_COMMON_H_
#define SILKMOTH_BENCH_BENCH_COMMON_H_

// Shared workload builders for the figure/table reproduction binaries.
//
// The three applications mirror Table 3 of the paper. Dataset sizes are
// laptop-scale by default; set SILKMOTH_BENCH_SCALE (e.g. =10) to scale the
// set counts up toward the paper's sizes. Absolute times will differ from
// the paper (different hardware, synthetic data); the *shapes* — who wins,
// by roughly what factor, where the curves bend — are what these binaries
// reproduce. See EXPERIMENTS.md.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/workload.h"
#include "core/brute_force.h"
#include "core/engine.h"
#include "core/options.h"
#include "datagen/builders.h"
#include "datagen/dblp.h"
#include "datagen/webtable.h"
#include "util/env.h"
#include "util/table_printer.h"
#include "util/timer.h"

namespace silkmoth::bench {

inline size_t Scaled(size_t base) {
  const double scale = BenchScale();
  const double v = static_cast<double>(base) * (scale <= 0 ? 1.0 : scale);
  return static_cast<size_t>(v);
}

/// One benchmark workload: the indexed collection, optional reference sets
/// (search mode), and the base Options.
struct Workload {
  std::string name;
  Collection data;
  std::vector<SetRecord> references;  ///< Empty => discovery mode (R = S).
  Options options;
};

/// Approximate String Matching (Table 3 row 1): DBLP-style titles, Eds,
/// RELATED SET DISCOVERY under SET-SIMILARITY.
inline Workload StringMatchingWorkload(size_t num_sets, double delta = 0.7,
                                       double alpha = 0.8) {
  Workload w;
  w.name = "String Matching";
  w.options.metric = Relatedness::kSimilarity;
  w.options.phi = SimilarityKind::kEds;
  w.options.delta = delta;
  w.options.alpha = alpha;
  // The corpus shape is owned by the workload registry (src/bench) so the
  // figure benches and the named `bench` workloads measure identical data.
  w.data =
      BuildCollection(GenerateCorpusRaw(CorpusKind::kDblpTitles, num_sets,
                                        /*seed=*/42),
                      TokenizerKind::kQGram, w.options.EffectiveQ());
  return w;
}

/// Schema Matching (Table 3 row 2): web-table schema sets, Jaccard,
/// RELATED SET DISCOVERY under SET-SIMILARITY.
inline Workload SchemaMatchingWorkload(size_t num_sets, double delta = 0.7,
                                       double alpha = 0.0) {
  Workload w;
  w.name = "Schema Matching";
  w.options.metric = Relatedness::kSimilarity;
  w.options.phi = SimilarityKind::kJaccard;
  w.options.delta = delta;
  w.options.alpha = alpha;
  w.data = BuildCollection(GenerateCorpusRaw(CorpusKind::kSchemaSets,
                                             num_sets, /*seed=*/7),
                           TokenizerKind::kWord);
  return w;
}

/// Approximate Inclusion Dependency (Table 3 row 3): web-table column sets,
/// Jaccard, RELATED SET SEARCH under SET-CONTAINMENT.
inline Workload InclusionDependencyWorkload(size_t num_sets, size_t num_refs,
                                            double delta = 0.7,
                                            double alpha = 0.5,
                                            size_t min_elements = 14,
                                            size_t max_elements = 30) {
  Workload w;
  w.name = "Inclusion Dependency";
  w.options.metric = Relatedness::kContainment;
  w.options.phi = SimilarityKind::kJaccard;
  w.options.delta = delta;
  w.options.alpha = alpha;
  RawSets raw;
  if (min_elements == 14 && max_elements == 30) {
    // The registry's canonical column shape (src/bench/workload.cc).
    raw = GenerateCorpusRaw(CorpusKind::kColumnSets, num_sets, /*seed=*/11);
  } else {
    // Custom element sizes (fig7's large-column setup) stay local.
    WebTableParams p = InclusionDependencyDefaults(num_sets, /*seed=*/11);
    p.min_elements = min_elements;
    p.max_elements = max_elements;
    raw = GenerateColumnSets(p);
  }
  w.data = BuildCollection(raw, TokenizerKind::kWord);
  // References: every k-th column with more than 4 distinct elements (the
  // paper's anti-categorical rule), up to num_refs.
  const size_t stride = std::max<size_t>(1, w.data.sets.size() / num_refs);
  for (size_t s = 0; s < w.data.sets.size() && w.references.size() < num_refs;
       s += stride) {
    if (w.data.sets[s].Size() > 4) w.references.push_back(w.data.sets[s]);
  }
  return w;
}

/// Result of one timed engine run.
struct RunResult {
  double seconds = 0.0;
  size_t results = 0;
  SearchStats stats;
};

/// Runs SilkMoth on the workload (discovery or search per `references`).
inline RunResult RunSilkMoth(const Workload& w) {
  RunResult r;
  SilkMoth engine(&w.data, w.options);
  if (!engine.ok()) {
    std::fprintf(stderr, "bad options: %s\n", engine.error().c_str());
    return r;
  }
  WallTimer timer;
  if (w.references.empty()) {
    r.results = engine.DiscoverSelf(&r.stats).size();
  } else {
    for (const SetRecord& ref : w.references) {
      r.results += engine.Search(ref, &r.stats).size();
    }
  }
  r.seconds = timer.ElapsedSeconds();
  return r;
}

/// Runs the brute-force baseline (Figure 4's NOOPT).
inline RunResult RunBruteForce(const Workload& w) {
  RunResult r;
  BruteForce oracle(&w.data, w.options);
  WallTimer timer;
  if (w.references.empty()) {
    r.results = oracle.DiscoverSelf().size();
  } else {
    for (const SetRecord& ref : w.references) {
      r.results += oracle.Search(ref).size();
    }
  }
  r.seconds = timer.ElapsedSeconds();
  return r;
}

inline void PrintHeader(const char* figure, const char* what) {
  std::printf("=== %s: %s ===\n", figure, what);
  std::printf("(scale=%.1f; set SILKMOTH_BENCH_SCALE to grow datasets; "
              "shapes, not absolute times, are the reproduction target)\n\n",
              BenchScale());
}

}  // namespace silkmoth::bench

#endif  // SILKMOTH_BENCH_BENCH_COMMON_H_
