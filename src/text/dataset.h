#ifndef SILKMOTH_TEXT_DATASET_H_
#define SILKMOTH_TEXT_DATASET_H_

#include <memory>
#include <string>
#include <vector>

#include "text/token_dictionary.h"

namespace silkmoth {

/// One element of a set (a string in the paper's terminology).
///
/// Elements carry three views of the same text:
///  - `text`:   the raw string; edit similarity computes Levenshtein on it.
///  - `tokens`: sorted, deduplicated token ids. Words for Jaccard, q-grams
///              for edit similarity. These feed the inverted index and the
///              nearest-neighbor search.
///  - `chunks`: q-chunk token ids (edit similarity only), sorted and kept
///              with multiplicity: a chunk string occurring twice appears
///              twice. Signature generation for edit similarity selects
///              chunks (Section 7 of the paper); for Jaccard this is empty.
struct Element {
  std::string text;
  std::vector<TokenId> tokens;
  std::vector<TokenId> chunks;

  /// Signature-relevant size: distinct token count for Jaccard, string
  /// length for edit similarity. Chosen by callers via the helpers below.
  size_t TokenCount() const { return tokens.size(); }
  size_t TextLength() const { return text.size(); }

  bool operator==(const Element& other) const {
    return text == other.text && tokens == other.tokens &&
           chunks == other.chunks;
  }
};

/// A set: an ordered list of elements. Order is preserved from input data
/// (row order) but has no algorithmic meaning.
struct SetRecord {
  std::vector<Element> elements;

  size_t Size() const { return elements.size(); }
  bool Empty() const { return elements.empty(); }
};

/// A collection of sets sharing one token dictionary.
///
/// The dictionary is shared (shared_ptr) so a reference set tokenized later
/// against the same dictionary sees consistent ids; tokens that only occur in
/// the reference simply have empty inverted lists.
struct Collection {
  std::vector<SetRecord> sets;
  std::shared_ptr<TokenDictionary> dict;

  size_t NumSets() const { return sets.size(); }

  /// Total number of elements across all sets.
  size_t NumElements() const;

  /// Total number of token occurrences (sum of per-element distinct tokens).
  size_t NumTokenOccurrences() const;
};

}  // namespace silkmoth

#endif  // SILKMOTH_TEXT_DATASET_H_
