#include "filter/check_filter.h"

#include <algorithm>

#include "core/query_scratch.h"
#include "core/relatedness.h"
#include "text/similarity.h"

namespace silkmoth {

std::vector<Candidate> SelectAndCheckCandidates(
    const SetRecord& ref, const Signature& sig, const Collection& data,
    const InvertedIndex& index, const Options& options, bool apply_check,
    CheckFilterStats* stats, const ElementSimilarity* sim,
    QueryScratch* scratch) {
  if (sim == nullptr) sim = GetSimilarity(options.phi);
  QueryScratch local;
  QueryScratch& sc = scratch != nullptr ? *scratch : local;
  sc.BeginQuery();

  for (uint32_t i = 0; i < sig.probe.size(); ++i) {
    const Element& r_elem = ref.elements[i];
    for (TokenId t : sig.probe[i]) {
      for (const Posting& p : index.List(t)) {
        if (stats != nullptr) ++stats->postings_scanned;
        if (sc.TouchSet(p.set_id)) {
          Candidate& c = sc.set_cand[p.set_id];
          c.set_id = p.set_id;
          c.best.clear();
          c.strong = false;
          sc.set_size_ok[p.set_id] =
              SizeFeasible(ref.Size(), data.sets[p.set_id].Size(), options);
          if (stats != nullptr) {
            ++stats->initial_candidates;
            if (!sc.set_size_ok[p.set_id]) ++stats->size_filtered;
          }
        }
        if (!sc.set_size_ok[p.set_id]) continue;
        const Element& s_elem = data.sets[p.set_id].elements[p.elem_id];
        const double score =
            sim->ScoreThresholded(r_elem, s_elem, options.alpha);
        if (stats != nullptr) ++stats->similarity_calls;
        Candidate& c = sc.set_cand[p.set_id];
        auto& best = c.best;
        if (!best.empty() && best.back().first == i) {
          best.back().second = std::max(best.back().second, score);
        } else {
          best.emplace_back(i, score);
        }
        if (score >= sig.check_threshold[i] - kFloatSlack) {
          c.strong = true;
        }
      }
    }
  }

  // The check filter may prune a candidate with no strong match only when
  // the signature's miss-bound sum certifies Σ_i bound_i < θ; that always
  // holds for valid weighted-family signatures.
  const double theta = MatchingThreshold(options.delta, ref.Size());
  const bool bound_certifies = sig.miss_bound_sum < theta - kFloatSlack;

  std::sort(sc.touched_sets.begin(), sc.touched_sets.end());
  std::vector<Candidate> out;
  out.reserve(sc.touched_sets.size());
  for (uint32_t set_id : sc.touched_sets) {
    if (!sc.set_size_ok[set_id]) continue;
    Candidate& c = sc.set_cand[set_id];
    if (apply_check && bound_certifies && !c.strong) {
      if (stats != nullptr) ++stats->check_filtered;
      continue;
    }
    out.push_back(std::move(c));
  }
  return out;
}

std::vector<Candidate> AllCandidates(const SetRecord& ref,
                                     const Collection& data,
                                     const Options& options,
                                     SetIdRange range) {
  const uint32_t begin =
      std::min<uint32_t>(range.begin,
                         static_cast<uint32_t>(data.sets.size()));
  const uint32_t end = std::min<uint32_t>(
      std::max(range.end, begin), static_cast<uint32_t>(data.sets.size()));
  std::vector<Candidate> out;
  for (uint32_t s = begin; s < end; ++s) {
    if (!SizeFeasible(ref.Size(), data.sets[s].Size(), options)) continue;
    Candidate c;
    c.set_id = s;
    c.strong = true;
    out.push_back(std::move(c));
  }
  return out;
}

}  // namespace silkmoth
