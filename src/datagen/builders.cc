#include "datagen/builders.h"

namespace silkmoth {

Collection BuildCollection(const RawSets& raw, TokenizerKind kind, int q) {
  return BuildCollectionWithDict(raw, kind, q,
                                 std::make_shared<TokenDictionary>());
}

Collection BuildCollectionWithDict(const RawSets& raw, TokenizerKind kind,
                                   int q,
                                   std::shared_ptr<TokenDictionary> dict) {
  Collection collection;
  collection.dict = std::move(dict);
  const Tokenizer tokenizer(kind, q);
  // One arena backs every set of the collection, shared via each set's
  // arena pointer so slices and copies of the collection stay self-owning.
  auto arena = std::make_shared<ElementArena>();
  collection.sets.reserve(raw.size());
  for (const auto& set_texts : raw) {
    SetRecord set =
        tokenizer.MakeSet(set_texts, collection.dict.get(), arena.get());
    set.arena = arena;
    collection.sets.push_back(std::move(set));
  }
  return collection;
}

SetRecord BuildReference(const std::vector<std::string>& element_texts,
                         TokenizerKind kind, int q, Collection* collection) {
  const Tokenizer tokenizer(kind, q);
  auto arena = std::make_shared<ElementArena>();
  SetRecord set =
      tokenizer.MakeSet(element_texts, collection->dict.get(), arena.get());
  set.arena = std::move(arena);
  return set;
}

}  // namespace silkmoth
