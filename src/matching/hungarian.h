#ifndef SILKMOTH_MATCHING_HUNGARIAN_H_
#define SILKMOTH_MATCHING_HUNGARIAN_H_

#include <cstddef>
#include <vector>

namespace silkmoth {

/// Dense row-major weight matrix for bipartite matching.
class WeightMatrix {
 public:
  WeightMatrix(size_t rows, size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

  double& At(size_t r, size_t c) { return data_[r * cols_ + c]; }
  double At(size_t r, size_t c) const { return data_[r * cols_ + c]; }

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }

 private:
  size_t rows_;
  size_t cols_;
  std::vector<double> data_;
};

/// Maximum-weight bipartite matching score of a non-negative weight matrix.
///
/// Implements the O(n^3) Hungarian algorithm (Jonker-Volgenant style with
/// potentials). The matrix may be rectangular; unmatched vertices contribute
/// zero, which is the correct semantics for the paper's |R ∩̃φ S| score
/// because all φ values are non-negative.
double MaxWeightMatchingScore(const WeightMatrix& weights);

/// As above, but also returns for each row the matched column (or -1 when the
/// row is effectively unmatched, i.e. matched to a zero-padding column).
double MaxWeightMatching(const WeightMatrix& weights,
                         std::vector<int>* row_to_col);

}  // namespace silkmoth

#endif  // SILKMOTH_MATCHING_HUNGARIAN_H_
