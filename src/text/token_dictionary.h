#ifndef SILKMOTH_TEXT_TOKEN_DICTIONARY_H_
#define SILKMOTH_TEXT_TOKEN_DICTIONARY_H_

#include <cstdint>
#include <deque>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace silkmoth {

/// Identifier of an interned token. Tokens are whitespace-delimited words
/// (Jaccard similarity) or q-grams (edit similarity).
using TokenId = uint32_t;

/// Sentinel for "token not present".
inline constexpr TokenId kInvalidToken = static_cast<TokenId>(-1);

/// Interning table mapping token strings to dense TokenIds.
///
/// A single dictionary is shared between the indexed collection and any
/// reference sets searched against it, so that token identity is global.
/// Ids are assigned in first-seen order and are stable for the lifetime of
/// the dictionary.
///
/// The table stores string *views*. Tokens interned through Intern() are
/// copied into an internal arena (owned mode); AdoptTokens() instead points
/// the table at externally-owned bytes — the zero-copy snapshot load path,
/// where the views alias the loaded region, which must then outlive the
/// dictionary's users. The two modes mix freely: a query can intern new
/// tokens into a snapshot-backed dictionary (they land in the arena).
class TokenDictionary {
 public:
  TokenDictionary() = default;

  // The dictionary is referenced by collections; moving it would invalidate
  // outstanding ids only if the holder is destroyed, but copying is almost
  // always a bug, so both are disabled.
  TokenDictionary(const TokenDictionary&) = delete;
  TokenDictionary& operator=(const TokenDictionary&) = delete;

  /// Returns the id for `token`, interning (and copying) it if new.
  TokenId Intern(std::string_view token);

  /// Returns the id for `token`, or kInvalidToken when absent.
  TokenId Lookup(std::string_view token) const;

  /// Returns the string for an id. `id` must be < size(). The view is
  /// stable for the dictionary's lifetime (owned mode) or the backing
  /// region's lifetime (adopted mode).
  std::string_view Token(TokenId id) const { return tokens_[id]; }

  /// Number of distinct tokens interned so far.
  size_t size() const { return tokens_.size(); }

  /// Borrowed-memory mode: adopts `tokens` as ids 0..n-1 without copying a
  /// byte — the views must stay valid for as long as the dictionary is
  /// used (snapshot loading points them into the mapped region). Only legal
  /// on an empty dictionary. Returns "" on success, or an error naming the
  /// first duplicate token (the table is left empty then).
  std::string AdoptTokens(std::vector<std::string_view> tokens);

 private:
  std::unordered_map<std::string_view, TokenId> ids_;
  std::vector<std::string_view> tokens_;
  /// Owned bytes for Intern()ed tokens; deque entries never move, so the
  /// views in `tokens_`/`ids_` stay valid as the arena grows.
  std::deque<std::string> arena_;
};

}  // namespace silkmoth

#endif  // SILKMOTH_TEXT_TOKEN_DICTIONARY_H_
