#include "util/zipf.h"

#include <algorithm>
#include <cmath>

namespace silkmoth {

ZipfDistribution::ZipfDistribution(size_t n, double skew) : skew_(skew) {
  cdf_.resize(n == 0 ? 1 : n);
  double acc = 0.0;
  for (size_t k = 0; k < cdf_.size(); ++k) {
    acc += 1.0 / std::pow(static_cast<double>(k + 1), skew_);
    cdf_[k] = acc;
  }
  const double total = cdf_.back();
  for (double& v : cdf_) v /= total;
  cdf_.back() = 1.0;  // Guard against rounding drift.
}

size_t ZipfDistribution::Sample(Rng* rng) const {
  const double u = rng->NextDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) --it;
  return static_cast<size_t>(it - cdf_.begin());
}

double ZipfDistribution::Pmf(size_t k) const {
  if (k >= cdf_.size()) return 0.0;
  return cdf_[k] - (k == 0 ? 0.0 : cdf_[k - 1]);
}

}  // namespace silkmoth
