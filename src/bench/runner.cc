#include "bench/runner.h"

#include <algorithm>
#include <optional>
#include <thread>
#include <vector>

#include "core/engine.h"
#include "core/sharded_engine.h"
#include "datagen/builders.h"
#include "util/timer.h"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

namespace silkmoth::bench {

uint64_t PeakRssBytes() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage usage;
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
#if defined(__APPLE__)
  return static_cast<uint64_t>(usage.ru_maxrss);  // Already bytes.
#else
  return static_cast<uint64_t>(usage.ru_maxrss) * 1024;  // Kilobytes.
#endif
#else
  return 0;
#endif
}

namespace {

/// Per-worker private state; merged by the runner after join, never shared.
struct WorkerState {
  ShardedSearchStats funnel;   ///< Round-0 funnel counters of this slice.
  size_t pairs = 0;            ///< Round-0 related pairs of this slice.
  LatencyHistogram latency;    ///< Every request, every round.
  size_t completed = 0;        ///< Requests finished, every round.
  size_t rounds = 0;           ///< Full passes over this worker's slice.
};

/// Serves requests [begin, end) of `blocks` once, recording per-request
/// latency. Funnel counters and pair counts go to `state` only when
/// `count_results` (round 0) — later sustained rounds repeat byte-identical
/// work, so counting them would just scale the deterministic fields by a
/// nondeterministic round count.
void ServeSlice(const ShardedEngine& engine,
                const std::vector<ReferenceBlock>& blocks, size_t begin,
                size_t end, bool count_results, WorkerState* state) {
  for (size_t k = begin; k < end; ++k) {
    ShardedSearchStats* stats = count_results ? &state->funnel : nullptr;
    WallTimer timer;
    const std::vector<PairMatch> matches = engine.Discover(blocks[k], stats);
    state->latency.RecordSeconds(timer.ElapsedSeconds());
    state->completed++;
    if (count_results) state->pairs += matches.size();
  }
}

/// Top-k variant of ServeSlice: each reference set of a request runs
/// SearchTopK against the single-index engine. Query-side accounting
/// (query_sets, oov_tokens) is stamped the way Discover stamps it for
/// external blocks, so the funnel reads the same across serving shapes.
void ServeTopKSlice(const SilkMoth& engine, const Collection& pool,
                    const std::vector<ReferenceBlock>& blocks, size_t begin,
                    size_t end, size_t top_k, bool count_results,
                    WorkerState* state) {
  for (size_t k = begin; k < end; ++k) {
    SearchStats* stats = count_results ? &state->funnel.per_shard[0] : nullptr;
    WallTimer timer;
    size_t pairs = 0;
    for (uint32_t r = blocks[k].range.begin; r < blocks[k].range.end; ++r) {
      pairs += engine.SearchTopK(pool.sets[r], top_k, stats).size();
    }
    state->latency.RecordSeconds(timer.ElapsedSeconds());
    state->completed++;
    if (count_results) {
      state->pairs += pairs;
      stats->query_sets += blocks[k].range.end - blocks[k].range.begin;
      stats->oov_tokens += blocks[k].oov_tokens;
    }
  }
}

}  // namespace

std::string RunWorkload(const WorkloadSpec& spec, BenchResult* out) {
  *out = BenchResult{};
  out->spec = spec;
  if (spec.requests == 0 || spec.batch == 0) {
    return "workload '" + spec.name + "': requests and batch must be > 0";
  }
  if (spec.workers < 1) {
    return "workload '" + spec.name + "': workers must be >= 1";
  }

  // Build phase: corpus synthesis, tokenization, shard indexes, and the
  // request pool. All single-threaded except the index build — notably
  // BuildQueryBlock interns into the shared dictionary, so it must finish
  // before any worker reads the collection.
  WallTimer build_timer;
  const RawSets corpus_raw =
      GenerateCorpusRaw(spec.corpus, spec.corpus_sets, spec.corpus_seed);
  if (corpus_raw.empty()) {
    return "workload '" + spec.name + "': corpus came out empty";
  }

  Options options = spec.options;
  options.num_threads = 1;  // Concurrency comes from the client workers.
  const TokenizerKind tok = SpecTokenizer(spec);
  const Collection corpus =
      BuildCollection(corpus_raw, tok, options.EffectiveQ());
  out->corpus_sets = corpus.NumSets();
  out->corpus_elements = corpus.NumElements();
  out->corpus_tokens = corpus.dict->size();

  // Standard serving goes through ShardedEngine::Discover; top-k serving
  // goes through the single-index SilkMoth::SearchTopK (the floating-floor
  // pass has no sharded counterpart), so top-k specs must be single-shard.
  const bool topk = spec.top_k > 0;
  if (topk && options.num_shards > 1) {
    return "workload '" + spec.name +
           "': top_k serving is single-index; num_shards must be 1";
  }
  std::optional<ShardedEngine> engine;
  std::optional<SilkMoth> single;
  if (topk) {
    single.emplace(&corpus, options);
    if (!single->ok()) {
      return "workload '" + spec.name + "': " + single->error();
    }
  } else {
    engine.emplace(&corpus, options);
    if (!engine->ok()) {
      return "workload '" + spec.name + "': " + engine->error();
    }
  }
  const size_t num_shards = topk ? 1 : engine->num_shards();

  const std::vector<uint32_t> stream =
      GenerateRequestStream(spec, corpus_raw.size());
  out->request_stream_hash = HashRequestStream(stream, spec.batch);

  // The request pool: the sampled sets duplicated into one raw payload,
  // tokenized against the corpus dictionary exactly once. Each request is
  // then a range view over the pool block — the same external-block range
  // contract every other discovery path uses.
  RawSets pool_raw;
  pool_raw.reserve(stream.size());
  for (uint32_t id : stream) pool_raw.push_back(corpus_raw[id]);
  Collection query_pool;
  const ReferenceBlock pool_block = BuildQueryBlock(
      pool_raw, tok, options.EffectiveQ(), corpus, &query_pool);
  out->pool_oov_tokens = pool_block.oov_tokens;

  std::vector<ReferenceBlock> blocks;
  blocks.reserve(spec.requests);
  for (size_t k = 0; k < spec.requests; ++k) {
    ReferenceBlock block = pool_block;
    block.range.begin = static_cast<uint32_t>(k * spec.batch);
    block.range.end = static_cast<uint32_t>(
        std::min((k + 1) * spec.batch, stream.size()));
    blocks.push_back(block);
  }
  out->build_seconds = build_timer.ElapsedSeconds();

  // Serve phase. Workers own contiguous request slices; slice boundaries
  // depend only on (requests, workers), so the round-0 union is exactly one
  // full pass over the stream at every worker count.
  const size_t workers = static_cast<size_t>(spec.workers);
  const size_t per_worker = (blocks.size() + workers - 1) / workers;
  std::vector<WorkerState> states(workers);
  for (WorkerState& s : states) s.funnel.Reset(num_shards);

  WallTimer run_timer;
  {
    std::vector<std::thread> threads;
    threads.reserve(workers);
    for (size_t w = 0; w < workers; ++w) {
      const size_t begin = std::min(w * per_worker, blocks.size());
      const size_t end = std::min(begin + per_worker, blocks.size());
      threads.emplace_back([&, w, begin, end] {
        WorkerState* state = &states[w];
        const auto serve = [&](bool count_results) {
          if (topk) {
            ServeTopKSlice(*single, query_pool, blocks, begin, end,
                           spec.top_k, count_results, state);
          } else {
            ServeSlice(*engine, blocks, begin, end, count_results, state);
          }
        };
        if (spec.mode == RunMode::kClosedLoop) {
          serve(/*count_results=*/true);
          state->rounds = 1;
          return;
        }
        // Sustained: whole rounds until the deadline, so partial rounds
        // never skew the latency mix toward the slice's cheap prefix.
        WallTimer deadline;
        do {
          serve(/*count_results=*/state->rounds == 0);
          state->rounds++;
        } while (begin < end &&
                 deadline.ElapsedSeconds() < spec.sustained_seconds);
      });
    }
    for (std::thread& t : threads) t.join();
  }
  out->run_seconds = run_timer.ElapsedSeconds();

  // Merge. Funnel counters are commutative sums (the SearchStats::Merge
  // contract), so the merge order cannot leak into deterministic fields.
  out->funnel.Reset(num_shards);
  for (const WorkerState& s : states) {
    out->funnel.Merge(s.funnel);
    out->pairs_per_round += s.pairs;
    out->latency.Merge(s.latency);
    out->completed_requests += s.completed;
  }
  out->requests_per_second =
      out->run_seconds > 0.0
          ? static_cast<double>(out->completed_requests) / out->run_seconds
          : 0.0;
  out->peak_rss_bytes = PeakRssBytes();
  return "";
}

}  // namespace silkmoth::bench
