// Extension (not a paper figure): parallel + sharded discovery scaling.
// The paper leaves distribution as future work; this repository adds
// (a) shared-memory parallelism over reference sets within one index,
// (b) a sharded engine that partitions the indexed collection into
// contiguous shards, each with its own CSR index (the primitive behind a
// multi-process split), and (c) query-vs-corpus mode: an external reference
// block streamed against the prebuilt indexes (the serve-traffic shape).
// Output must be identical at every thread count and every shard count —
// verified per row.

#include <iostream>

#include "bench/histogram.h"
#include "bench_common.h"
#include "core/sharded_engine.h"
#include "datagen/webtable.h"

namespace {

using namespace silkmoth;
using namespace silkmoth::bench;

/// One timed sharded-engine discovery run (index build included in
/// build(s), excluded from time(s)).
struct ShardedRun {
  double build_seconds = 0.0;
  double seconds = 0.0;
  size_t results = 0;
};

ShardedRun RunSharded(const Workload& w) {
  ShardedRun r;
  WallTimer build_timer;
  ShardedEngine engine(&w.data, w.options);
  r.build_seconds = build_timer.ElapsedSeconds();
  if (!engine.ok()) {
    std::fprintf(stderr, "bad options: %s\n", engine.error().c_str());
    return r;
  }
  WallTimer timer;
  r.results = engine.DiscoverSelf().size();
  r.seconds = timer.ElapsedSeconds();
  return r;
}

}  // namespace

int main() {
  PrintHeader("Extension figure", "parallel + sharded discovery scaling");

  Workload base = SchemaMatchingWorkload(Scaled(2400));
  Workload serial = base;
  serial.options.num_threads = 1;
  const RunResult reference = RunSilkMoth(serial);

  std::printf("-- threads (one shared index) --\n");
  TablePrinter threads_table({"threads", "time(s)", "speedup", "results",
                              "identical"});
  for (int threads : {1, 2, 4, 8}) {
    Workload w = base;
    w.options.num_threads = threads;
    const RunResult r = RunSilkMoth(w);
    threads_table.AddRow(
        {TablePrinter::Int(threads), TablePrinter::Num(r.seconds, 3),
         TablePrinter::Num(r.seconds > 0 ? reference.seconds / r.seconds : 0,
                           2),
         TablePrinter::Int(static_cast<long long>(r.results)),
         r.results == reference.results ? "yes" : "NO!"});
  }
  threads_table.Print(std::cout);

  // Shard sweep: every reference streams through every shard, so per-query
  // work grows with the shard count (signature generation repeats per
  // shard) while each shard's index shrinks — the throughput curve shows
  // where the partitioning overhead sits before the work is actually
  // distributed across processes. Threads are fixed at 4 to keep the two
  // sweeps comparable.
  std::printf("\n-- shards (ShardedEngine, threads=4) --\n");
  TablePrinter shards_table({"shards", "build(s)", "time(s)", "refs/s",
                             "results", "identical"});
  for (int shards : {1, 2, 4, 8, 16}) {
    Workload w = base;
    w.options.num_threads = 4;
    w.options.num_shards = shards;
    const ShardedRun r = RunSharded(w);
    const double refs_per_sec =
        r.seconds > 0 ? static_cast<double>(w.data.NumSets()) / r.seconds : 0;
    shards_table.AddRow(
        {TablePrinter::Int(shards), TablePrinter::Num(r.build_seconds, 3),
         TablePrinter::Num(r.seconds, 3), TablePrinter::Num(refs_per_sec, 0),
         TablePrinter::Int(static_cast<long long>(r.results)),
         r.results == reference.results ? "yes" : "NO!"});
  }
  shards_table.Print(std::cout);

  // Query-mode sweep: an external reference block (fresh schema draws over
  // the same vocabulary, tokenized against the corpus dictionary) streamed
  // through the prebuilt shard indexes — the query-vs-corpus workload the
  // snapshot protocol serves out of process. The corpus indexes are built
  // once per shard count; queries reuse them, so time(s) is pure serving
  // cost. Identity: every shard count must reproduce the single-index
  // SilkMoth::Discover result on the same block.
  std::printf("\n-- query mode (external reference block, threads=4) --\n");
  // The payload re-derives a quarter of the corpus's raw sets (same
  // generator, same seed as SchemaMatchingWorkload), so every query has at
  // least its own twin to find — serving cost is measured on a workload
  // that actually matches.
  RawSets query_raw =
      GenerateSchemaSets(SchemaMatchingDefaults(Scaled(2400), /*seed=*/7));
  query_raw.resize(query_raw.size() / 4);
  Collection query_sets;
  const ReferenceBlock query_block = BuildQueryBlock(
      query_raw, TokenizerKind::kWord, 0, base.data, &query_sets);

  Workload qserial = base;
  qserial.options.num_threads = 1;
  SilkMoth qreference_engine(&qserial.data, qserial.options);
  const size_t qreference = qreference_engine.Discover(query_block).size();

  TablePrinter query_table({"shards", "build(s)", "time(s)", "queries/s",
                            "p50(us)", "p95(us)", "p99(us)", "results",
                            "identical"});
  for (int shards : {1, 2, 4, 8}) {
    Workload w = base;
    w.options.num_threads = 4;
    w.options.num_shards = shards;
    WallTimer build_timer;
    ShardedEngine engine(&w.data, w.options);
    const double build_seconds = build_timer.ElapsedSeconds();
    if (!engine.ok()) {
      std::fprintf(stderr, "bad options: %s\n", engine.error().c_str());
      continue;
    }
    // Queries are served one at a time through per-query sub-range blocks
    // (the `bench` subcommand's serving shape), so the row carries real
    // per-query tail latencies, not just an aggregate wall clock. Disjoint
    // external sub-blocks union to the whole-block result, which keeps the
    // identity column meaningful.
    LatencyHistogram latency;
    size_t results = 0;
    WallTimer timer;
    for (uint32_t qid = query_block.begin_id(); qid < query_block.end_id();
         ++qid) {
      ReferenceBlock one = query_block;
      one.range = {qid, qid + 1};
      WallTimer per_query;
      results += engine.Discover(one).size();
      latency.RecordSeconds(per_query.ElapsedSeconds());
    }
    const double seconds = timer.ElapsedSeconds();
    const double queries_per_sec =
        seconds > 0 ? static_cast<double>(query_block.NumRefs()) / seconds
                    : 0;
    query_table.AddRow(
        {TablePrinter::Int(shards), TablePrinter::Num(build_seconds, 3),
         TablePrinter::Num(seconds, 3), TablePrinter::Num(queries_per_sec, 0),
         TablePrinter::Num(latency.Percentile(50) / 1e3, 1),
         TablePrinter::Num(latency.Percentile(95) / 1e3, 1),
         TablePrinter::Num(latency.Percentile(99) / 1e3, 1),
         TablePrinter::Int(static_cast<long long>(results)),
         results == qreference ? "yes" : "NO!"});
  }
  query_table.Print(std::cout);
  return 0;
}
