#!/usr/bin/env bash
# Cross-process parity: build + N x shard-run + merge through the actual CLI
# binary must produce byte-identical PairMatch output to the in-process
# ShardedEngine run (`discover --shards N`) on the same corpus, for the
# similarity and containment metrics over word tokens and for edit
# similarity over q-grams, at 2 and 4 shards — through BOTH snapshot
# containers: monolithic and --split (per-shard files, where each shard-run
# must map only common + its own shard, asserted via the load accounting
# line).
#
# Usage: cli_parity_test.sh /path/to/silkmoth_cli
set -euo pipefail

CLI="${1:?usage: cli_parity_test.sh /path/to/silkmoth_cli}"
TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

fail() { echo "FAIL: $*" >&2; exit 1; }

# Pair lines only: the '#' comment lines carry timings and are not part of
# the byte-identical contract.
pairs_only() { grep -v '^#' "$1" > "$2" || true; }

run_case() {
  local name="$1"; shift
  local corpus="$1"; shift
  local shards="$1"; shift
  # Remaining args: engine options (--metric/--phi/...).
  local dir="$TMP/$name"
  mkdir -p "$dir"

  "$CLI" discover --data "$corpus" --shards "$shards" --threads 2 "$@" \
    > "$dir/inprocess.raw"
  pairs_only "$dir/inprocess.raw" "$dir/expected.tsv"

  "$CLI" build --data "$corpus" --out "$dir/corpus.snap" \
    --shards "$shards" --threads 2 "$@" > /dev/null
  "$CLI" build --data "$corpus" --out "$dir/split.snap" --split \
    --shards "$shards" --threads 2 "$@" > /dev/null

  local total_split_bytes=0
  local f
  for f in "$dir/split.snap" "$dir/split.snap.shard"*; do
    total_split_bytes=$((total_split_bytes + $(wc -c < "$f")))
  done

  local results=() split_results=()
  for ((k = 0; k < shards; ++k)); do
    "$CLI" shard-run --snapshot "$dir/corpus.snap" --shard "$k" \
      --out "$dir/shard$k.txt" --threads 2 "$@" > /dev/null
    results+=("$dir/shard$k.txt")

    "$CLI" shard-run --snapshot "$dir/split.snap" --shard "$k" \
      --out "$dir/split_shard$k.txt" --threads 2 "$@" \
      > "$dir/split_run$k.log"
    split_results+=("$dir/split_shard$k.txt")

    # Byte accounting: a split shard-run opens exactly 2 files (common +
    # its shard) and touches fewer bytes than the whole split snapshot.
    local line
    line="$(grep '^# load:' "$dir/split_run$k.log")" \
      || fail "$name: shard $k missing load accounting line"
    local files mapped copied
    files="$(echo "$line" | sed 's/# load: \([0-9]*\) files.*/\1/')"
    mapped="$(echo "$line" | sed 's/.* \([0-9]*\) bytes mapped.*/\1/')"
    copied="$(echo "$line" | sed 's/.* \([0-9]*\) bytes copied.*/\1/')"
    [ "$files" -eq 2 ] \
      || fail "$name: split shard-run $k opened $files files, want 2"
    [ $((mapped + copied)) -lt "$total_split_bytes" ] \
      || fail "$name: split shard-run $k touched $((mapped + copied)) of \
$total_split_bytes bytes (not shard-local)"
  done

  "$CLI" merge "${results[@]}" > "$dir/merged.raw"
  pairs_only "$dir/merged.raw" "$dir/actual.tsv"
  "$CLI" merge "${split_results[@]}" > "$dir/split_merged.raw"
  pairs_only "$dir/split_merged.raw" "$dir/split_actual.tsv"

  diff -u "$dir/expected.tsv" "$dir/actual.tsv" \
    || fail "$name: merged output differs from in-process run"
  diff -u "$dir/expected.tsv" "$dir/split_actual.tsv" \
    || fail "$name: split-snapshot merged output differs from in-process run"

  # The guarantee is only interesting when the corpus actually has related
  # pairs; every generated corpus below does.
  [ -s "$dir/expected.tsv" ] || fail "$name: empty expected output"
  echo "ok: $name ($(wc -l < "$dir/expected.tsv") pairs, mono+split)"
}

"$CLI" generate schema 80 "$TMP/schema.txt" > /dev/null
"$CLI" generate dblp 40 "$TMP/dblp.txt" > /dev/null

for shards in 2 4; do
  run_case "similarity-s$shards" "$TMP/schema.txt" "$shards" \
    --metric similarity --delta 0.6
  run_case "containment-s$shards" "$TMP/schema.txt" "$shards" \
    --metric containment --delta 0.7
  run_case "edit-s$shards" "$TMP/dblp.txt" "$shards" \
    --metric similarity --phi eds --delta 0.5 --alpha 0.6
done

# Merge must also be order-insensitive: feeding the result files reversed
# cannot change a byte of the merged stream.
dir="$TMP/similarity-s4"
"$CLI" merge "$dir"/shard3.txt "$dir"/shard2.txt "$dir"/shard1.txt \
  "$dir"/shard0.txt | grep -v '^#' > "$dir/actual_reversed.tsv" || true
diff -u "$dir/expected.tsv" "$dir/actual_reversed.tsv" \
  || fail "merge is sensitive to input file order"

# Query mode (query-vs-corpus over a snapshot): the in-process `query`
# subcommand and the out-of-process build → shard-run --query → merge
# pipeline must produce byte-identical pair streams, on both snapshot
# containers, and agree with the brute-force oracle.
run_query_case() {
  local name="$1"; shift
  local corpus="$1"; shift
  local queries="$1"; shift
  local shards="$1"; shift
  local dir="$TMP/$name"
  mkdir -p "$dir"

  "$CLI" build --data "$corpus" --out "$dir/corpus.snap" \
    --shards "$shards" --threads 2 "$@" > /dev/null
  "$CLI" build --data "$corpus" --out "$dir/split.snap" --split \
    --shards "$shards" --threads 2 "$@" > /dev/null

  "$CLI" query --snapshot "$dir/corpus.snap" --input "$queries" \
    --threads 2 --oracle-check "$@" > "$dir/query.raw"
  grep -q '^# oracle agreement: yes' "$dir/query.raw" \
    || fail "$name: query output disagrees with the brute-force oracle"
  pairs_only "$dir/query.raw" "$dir/expected.tsv"

  local results=() split_results=()
  for ((k = 0; k < shards; ++k)); do
    "$CLI" shard-run --snapshot "$dir/corpus.snap" --shard "$k" \
      --query "$queries" --out "$dir/q$k.txt" --threads 2 "$@" > /dev/null
    results+=("$dir/q$k.txt")
    "$CLI" shard-run --snapshot "$dir/split.snap" --shard "$k" \
      --query "$queries" --out "$dir/sq$k.txt" --threads 2 "$@" > /dev/null
    split_results+=("$dir/sq$k.txt")
  done
  "$CLI" merge "${results[@]}" > "$dir/merged.raw"
  pairs_only "$dir/merged.raw" "$dir/actual.tsv"
  "$CLI" merge "${split_results[@]}" > "$dir/split_merged.raw"
  pairs_only "$dir/split_merged.raw" "$dir/split_actual.tsv"

  diff -u "$dir/expected.tsv" "$dir/actual.tsv" \
    || fail "$name: merged query output differs from in-process query"
  diff -u "$dir/expected.tsv" "$dir/split_actual.tsv" \
    || fail "$name: split-snapshot query output differs from in-process"
  [ -s "$dir/expected.tsv" ] || fail "$name: empty expected query output"
  echo "ok: $name ($(wc -l < "$dir/expected.tsv") pairs, query mode)"
}

# Query payloads that overlap the corpora: a slice of each corpus (its sets
# are their own best matches) keeps the result stream non-empty.
head -n 40 "$TMP/schema.txt" > "$TMP/schema_queries.txt"
head -n 30 "$TMP/dblp.txt" > "$TMP/dblp_queries.txt"

run_query_case "query-similarity-s3" "$TMP/schema.txt" \
  "$TMP/schema_queries.txt" 3 --metric similarity --delta 0.6
run_query_case "query-containment-s2" "$TMP/schema.txt" \
  "$TMP/schema_queries.txt" 2 --metric containment --delta 0.7
run_query_case "query-edit-s3" "$TMP/dblp.txt" "$TMP/dblp_queries.txt" 3 \
  --metric similarity --phi eds --delta 0.5 --alpha 0.6

echo "PASS: cross-process parity"
