#ifndef SILKMOTH_DATAGEN_DBLP_H_
#define SILKMOTH_DATAGEN_DBLP_H_

#include <string>
#include <vector>

#include "datagen/builders.h"
#include "util/rng.h"

namespace silkmoth {

/// Parameters for the synthetic DBLP-style title generator.
///
/// The paper's string matching application uses 100K publication titles
/// (~9 words each, q-grams as tokens). The real dump is not available
/// offline, so this generator reproduces the statistics the algorithms are
/// sensitive to: title length distribution, Zipfian word frequencies, and
/// the presence of near-duplicate titles (typo-perturbed copies) so the
/// discovery output is non-trivial. See DESIGN.md, "Substitutions".
struct DblpParams {
  size_t num_titles = 1000;
  size_t vocabulary = 4000;     ///< Distinct words.
  double zipf_skew = 1.0;       ///< Word frequency skew.
  size_t min_words = 5;         ///< Title length range (inclusive).
  size_t max_words = 12;
  double duplicate_rate = 0.2;  ///< Fraction emitted as perturbed copies.
  double typo_rate = 0.1;       ///< Per-word chance of a character typo.
  uint64_t seed = 42;
};

/// Generates the raw titles. Each title is one set whose elements are its
/// whitespace-delimited words (the paper tokenizes each word into q-grams).
std::vector<std::string> GenerateDblpTitles(const DblpParams& params);

/// Convenience: generated titles as RawSets (one set per title, one element
/// per word).
RawSets GenerateDblpSets(const DblpParams& params);

/// Applies a random character-level typo (substitution, deletion, or
/// insertion of a lowercase letter) to `word`. Exposed for tests.
std::string ApplyTypo(const std::string& word, Rng* rng);

}  // namespace silkmoth

#endif  // SILKMOTH_DATAGEN_DBLP_H_
