#ifndef SILKMOTH_SNAPSHOT_SNAPSHOT_H_
#define SILKMOTH_SNAPSHOT_SNAPSHOT_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "index/inverted_index.h"
#include "text/dataset.h"
#include "text/tokenizer.h"
#include "util/mmap_region.h"

namespace silkmoth {

/// Binary snapshot of a fully prepared corpus: everything an out-of-process
/// shard worker needs to run one shard's discovery with zero re-tokenization.
///
/// A snapshot holds the token dictionary, the tokenized collection, and one
/// CSR inverted index per shard (ComputeShardRanges partition, global set
/// ids). The on-disk container is versioned, checksummed, and flat: every
/// array — dictionary bytes, element text/token/chunk arenas, CSR offsets
/// and postings — is written as a contiguous 8-aligned block, so a loaded
/// file can serve queries *in place*: the mmap load path hands out
/// dictionary, element, and index views pointing straight into the mapped
/// region, with zero per-token, per-element, or per-posting copies (the
/// KVell-style "disk layout == memory layout" discipline taken to its
/// conclusion).
///
/// Ownership contract of a view-mode load: `regions` owns the mapped (or
/// fallback-read) bytes and every view in `data`/`shards` aliases them — a
/// view never outlives its region, so the Snapshot must stay alive (moves
/// are fine; the bytes do not relocate) for as long as any query runs
/// against it. Copy-mode loads materialize owned storage instead and keep
/// `regions` empty.
///
/// Container layout (all integers little-endian; docs/ARCHITECTURE.md has
/// the full table):
///
///   [0..8)    magic "SMSNAP01"
///   [8..12)   format version (u32, currently 3)
///   [12..16)  endianness marker (u32 0x01020304, raw bytes)
///   [16..24)  payload length in bytes (u64)
///   [24..28)  CRC-32 of the payload (u32)
///   [28..32)  reserved (zero) — pads the payload to an 8-aligned offset
///   [32..)    payload: sections tagged `u32 fourcc + u64 body length`.
///
/// A *monolithic* file carries META, DICT, COLL, STAB (shard table), then
/// one SHRD section per shard. `--split` production instead writes a
/// *common* file (META, DICT, COLL, STAB) plus one single-SHRD file per
/// shard, so a shard worker maps only common + its own shard; shard files
/// carry the common payload's CRC so mismatched generations refuse to load.
///
/// Integrity model: the CRC is the corruption gate — truncation, bit flips,
/// and length lies are all rejected with a clean error (every read is
/// bounds-checked and every count is validated against the remaining bytes
/// *before* any allocation, so even a forged checksum cannot cause
/// out-of-buffer reads or OOM at load time). Posting values are bounds-
/// checked against the shard range and per-set element counts too, because
/// query code indexes by them without further checks; element token ids are
/// only ever used as bounds-checked probe keys or opaque comparison values,
/// so they need no such gate. All checks run against the raw bytes before
/// any view is handed out, on both load paths.
struct Snapshot {
  /// One shard: its contiguous global set-id range and the CSR index over
  /// it. `loaded` is false for shards whose index was deliberately not
  /// loaded (LoadSnapshotShard loads exactly one) — their `range` is still
  /// valid, from the shard table.
  struct Shard {
    SetIdRange range;     ///< Global set ids this shard owns.
    InvertedIndex index;  ///< Postings restricted to `range`, global ids.
    bool loaded = false;  ///< True when `index` is actually present.
  };

  /// Tokenization the collection was built with. A shard worker must query
  /// with a compatible φ: word tokens serve Jaccard, q-grams serve the edit
  /// similarities — shard-run refuses mismatches instead of silently
  /// producing different results.
  TokenizerKind tokenizer = TokenizerKind::kWord;
  /// Effective q-gram length used at build time (0 for word tokens).
  int q = 0;
  /// Compaction lineage counter, recorded in META since format v3. A fresh
  /// `build` writes generation 1; each `compact` writes base.generation + 1.
  /// The serve daemon compares generations across hot-swaps to count
  /// compactions; discovery semantics never depend on it.
  uint64_t generation = 1;
  /// The tokenized collection, dictionary included.
  Collection data;
  /// Per-shard ranges and indexes; ranges partition [0, data.NumSets()).
  std::vector<Shard> shards;
  /// Backing bytes for view-mode loads (empty after BuildSnapshot or a
  /// copy-mode load). Every view in `data`/`shards` aliases these regions.
  std::vector<MmapRegion> regions;

  /// Shorthand for shards.size().
  size_t num_shards() const { return shards.size(); }
};

/// Snapshot container magic (first 8 bytes of every snapshot file).
inline constexpr char kSnapshotMagic[8] = {'S', 'M', 'S', 'N',
                                           'A', 'P', '0', '1'};
/// Current container format version. The version bumps whenever the payload
/// layout changes incompatibly; loaders reject any version they do not
/// know.
///
/// Version history:
///   1  (PR 3)  monolithic container; length-prefixed per-element records,
///              parsed into owned storage. No longer written or read.
///   2  (PR 4)  flat 8-aligned arenas servable in place (mmap load path),
///              STAB shard table, split common + per-shard containers,
///              32-byte header.
///   3  (PR 10) META carries a u64 generation counter recording compaction
///              lineage (build writes 1, compact writes base + 1).
inline constexpr uint32_t kSnapshotVersion = 3;
/// Little-endian detector: written as a native u32, so a snapshot moved to
/// an opposite-endian machine fails the marker check instead of loading
/// garbage.
inline constexpr uint32_t kSnapshotEndianMarker = 0x01020304u;
/// Header offset (bytes) of the format-version u32 — the header-field
/// offsets are exposed so tests can surgically corrupt specific fields.
inline constexpr size_t kSnapshotVersionOffset = 8;
/// Header offset (bytes) of the endianness marker u32.
inline constexpr size_t kSnapshotEndianOffset = 12;
/// Header offset (bytes) of the payload-length u64.
inline constexpr size_t kSnapshotPayloadLenOffset = 16;
/// Header offset (bytes) of the payload CRC-32 u32.
inline constexpr size_t kSnapshotCrcOffset = 24;
/// Total header size in bytes; the payload starts here, 8-aligned.
inline constexpr size_t kSnapshotHeaderSize = 32;

/// CRC-32 (reflected, polynomial 0xEDB88320) over `size` bytes. Exposed so
/// tests can craft checksum-valid-but-structurally-lying files and verify
/// the loader's bounds checks stand on their own.
uint32_t SnapshotCrc32(const void* data, size_t size);

/// How a loader makes the file's bytes available.
enum class SnapshotLoadMode {
  /// Map the file and serve queries out of the mapping, zero-copy (falls
  /// back to a read-into-buffer region on platforms without mmap — still
  /// zero-copy views, just buffer-backed). The Snapshot keeps the region.
  kMmap,
  /// Read and deep-copy into owned storage; the file can be deleted
  /// afterwards. The legacy (v1) load semantics and the bench baseline.
  kCopy,
};

/// Byte accounting for one load call — the observable proof that a
/// shard-local load of a split snapshot touches only common + its shard.
struct SnapshotLoadStats {
  uint64_t files = 0;         ///< Files opened (common + shard files).
  uint64_t bytes_mapped = 0;  ///< Bytes made visible via mmap.
  uint64_t bytes_copied = 0;  ///< Bytes read into owned buffers.

  /// Total bytes brought in from disk, whichever way.
  uint64_t BytesTouched() const { return bytes_mapped + bytes_copied; }
};

/// Builds a snapshot in memory: partitions [0, data.NumSets()) with the
/// canonical cost-balanced ComputeShardRanges(data, num_shards) and builds
/// each shard's CSR index (up to `num_threads` parallel builders).
/// `tokenizer`/`q` must describe how `data` was tokenized; they are
/// recorded for shard-run compatibility checks. num_shards must be >= 1.
Snapshot BuildSnapshot(Collection data, TokenizerKind tokenizer, int q,
                       uint32_t num_shards, int num_threads = 1);

/// Writes `snap` to `path` as one monolithic container. The write is
/// atomic: bytes go to a ".tmp" sibling first and rename into place, so a
/// crash mid-build can never leave a torn file at `path`. Every shard must
/// be loaded. `fault_site` names the SILKMOTH_FAULT site armed at commit
/// time ("snapshot-write" for build, "compact-write" for compaction), so
/// fault tests can target one publication path without disturbing the
/// other. Returns "" on success, else a one-line error.
std::string SaveSnapshot(const Snapshot& snap, const std::string& path,
                         const char* fault_site = "snapshot-write");

/// Writes `snap` split: one common container at `path` (dictionary +
/// collection + shard table) plus one container per shard at
/// SnapshotShardPath(path, k). Shard files are written (atomically) first
/// and the common file last, so a readable common file implies its shard
/// files are complete. Same `fault_site` contract as SaveSnapshot. Returns
/// "" on success, else a one-line error.
std::string SaveSnapshotSplit(const Snapshot& snap, const std::string& path,
                              const char* fault_site = "snapshot-write");

/// The on-disk name of shard `shard` of a split snapshot at `path`:
/// "<path>.shard<K>".
std::string SnapshotShardPath(const std::string& path, uint32_t shard);

/// Loads a snapshot from `path` into `*out` — the whole thing: a split
/// common file pulls in every shard file. Returns "" on success, else a
/// one-line error describing the failure (missing file, bad magic or
/// version, checksum mismatch, truncation, malformed section, ...); on
/// failure `*out` is left untouched. `stats`, when non-null, is filled on
/// success.
std::string LoadSnapshot(const std::string& path, Snapshot* out,
                         SnapshotLoadMode mode = SnapshotLoadMode::kMmap,
                         SnapshotLoadStats* stats = nullptr);

/// Shard-local load: only shard `shard`'s index is made queryable (other
/// shards keep their range with loaded == false). On a split snapshot this
/// opens exactly two files — common + that shard — so the bytes touched
/// scale with the shard, not the corpus; on a monolithic file the whole
/// container is read but only the one shard's index is built. Same error
/// contract as LoadSnapshot.
std::string LoadSnapshotShard(const std::string& path, uint32_t shard,
                              Snapshot* out,
                              SnapshotLoadMode mode = SnapshotLoadMode::kMmap,
                              SnapshotLoadStats* stats = nullptr);

}  // namespace silkmoth

#endif  // SILKMOTH_SNAPSHOT_SNAPSHOT_H_
