// Equivalence properties for the hot-path overhaul, on randomized corpora:
//
//  1. The epoch-stamped scratch candidate accumulator produces byte-identical
//     candidate lists (ids, probed best-match vectors, strong flags, order)
//     to the pre-refactor reference accumulator — an unordered_map rebuilt
//     here exactly as check_filter.cc had it before the refactor — and its
//     output is invariant under scratch reuse across queries.
//  2. The bound-guided verifier (ScoreDecision) never changes an
//     accept/reject decision relative to exact verification, its bounds
//     always sandwich the exact matching score, and the exact Hungarian
//     solver runs only in the ambiguous band lower < θ <= upper.
//  3. The full search pass (scratch accumulator + bound-guided verification)
//     reports the same accepted pairs with the same scores (within
//     kFloatSlack) as the pre-refactor pipeline.
//
// All three properties are swept across the three workload shapes: the
// SET-SIMILARITY and SET-CONTAINMENT metrics over word tokens (Jaccard), and
// edit similarity (Eds over q-grams).

#include <algorithm>
#include <unordered_map>
#include <vector>

#include <gtest/gtest.h>

#include "core/query_scratch.h"
#include "core/relatedness.h"
#include "core/search_pass.h"
#include "datagen/builders.h"
#include "datagen/dblp.h"
#include "filter/check_filter.h"
#include "filter/nn_filter.h"
#include "matching/verifier.h"
#include "sig/scheme.h"
#include "text/similarity.h"

namespace silkmoth {
namespace {

struct WorkloadConfig {
  const char* name;
  Relatedness metric;
  SimilarityKind phi;
  double delta;
  double alpha;
};

Options MakeOptions(const WorkloadConfig& cfg) {
  Options opt;
  opt.metric = cfg.metric;
  opt.phi = cfg.phi;
  opt.delta = cfg.delta;
  opt.alpha = cfg.alpha;
  if (IsEditSimilarity(cfg.phi)) opt.q = MaxQForAlpha(cfg.alpha);
  return opt;
}

Collection MakeData(const WorkloadConfig& cfg, size_t sets, uint64_t seed) {
  DblpParams p;
  p.num_titles = sets;
  p.vocabulary = 60;
  p.min_words = 2;
  p.max_words = 6;
  p.duplicate_rate = 0.35;  // Near-duplicates exercise reduction + accepts.
  p.typo_rate = 0.3;
  p.seed = seed;
  const Options opt = MakeOptions(cfg);
  if (IsEditSimilarity(cfg.phi)) {
    return BuildCollection(GenerateDblpSets(p), TokenizerKind::kQGram,
                           opt.EffectiveQ());
  }
  return BuildCollection(GenerateDblpSets(p), TokenizerKind::kWord);
}

Signature MakeSignature(const SetRecord& ref, const InvertedIndex& index,
                        const Options& options) {
  SchemeParams params;
  params.scheme = options.scheme;
  params.phi = options.phi;
  params.theta = MatchingThreshold(options.delta, ref.Size());
  params.alpha = options.alpha;
  params.q = options.EffectiveQ();
  return GenerateSignature(ref, index, params);
}

// The candidate selection + check filter exactly as it was before the
// scratch refactor: an unordered_map<set_id, Accum> accumulator, drained
// into a vector sorted by set id.
std::vector<Candidate> ReferenceSelectAndCheck(
    const SetRecord& ref, const Signature& sig, const Collection& data,
    const InvertedIndex& index, const Options& options, bool apply_check) {
  const ElementSimilarity* sim = GetSimilarity(options.phi);
  struct Accum {
    Candidate cand;
    bool size_ok = true;
  };
  std::unordered_map<uint32_t, Accum> accum;

  for (uint32_t i = 0; i < sig.probe.size(); ++i) {
    const Element& r_elem = ref.elements[i];
    for (TokenId t : sig.probe[i]) {
      for (const Posting& p : index.List(t)) {
        auto [it, inserted] = accum.try_emplace(p.set_id);
        Accum& a = it->second;
        if (inserted) {
          a.cand.set_id = p.set_id;
          a.size_ok =
              SizeFeasible(ref.Size(), data.sets[p.set_id].Size(), options);
        }
        if (!a.size_ok) continue;
        const Element& s_elem = data.sets[p.set_id].elements[p.elem_id];
        const double score =
            sim->ScoreThresholded(r_elem, s_elem, options.alpha);
        auto& best = a.cand.best;
        if (!best.empty() && best.back().first == i) {
          best.back().second = std::max(best.back().second, score);
        } else {
          best.emplace_back(i, score);
        }
        if (score >= sig.check_threshold[i] - kFloatSlack) {
          a.cand.strong = true;
        }
      }
    }
  }

  const double theta = MatchingThreshold(options.delta, ref.Size());
  const bool bound_certifies = sig.miss_bound_sum < theta - kFloatSlack;

  std::vector<Candidate> out;
  out.reserve(accum.size());
  for (auto& [set_id, a] : accum) {
    if (!a.size_ok) continue;
    if (apply_check && bound_certifies && !a.cand.strong) continue;
    out.push_back(std::move(a.cand));
  }
  std::sort(out.begin(), out.end(),
            [](const Candidate& a, const Candidate& b) {
              return a.set_id < b.set_id;
            });
  return out;
}

// The verification loop exactly as it was before the bound fast path: an
// unconditional exact maximum matching followed by the IsRelated test.
std::vector<SearchMatch> ReferenceVerify(const SetRecord& ref,
                                         const std::vector<Candidate>& cands,
                                         const Collection& data,
                                         const Options& options,
                                         uint32_t exclude_set) {
  const MaxMatchingVerifier verifier(GetSimilarity(options.phi),
                                     options.alpha, options.reduction);
  std::vector<SearchMatch> results;
  for (const Candidate& cand : cands) {
    if (cand.set_id == exclude_set) continue;
    const SetRecord& s = data.sets[cand.set_id];
    const double m = verifier.Score(ref, s);
    if (IsRelated(m, ref.Size(), s.Size(), options)) {
      SearchMatch match;
      match.set_id = cand.set_id;
      match.matching_score = m;
      match.relatedness = RelatednessScore(m, ref.Size(), s.Size(), options);
      results.push_back(match);
    }
  }
  return results;
}

// The full pre-refactor search pass: reference accumulator, shared NN
// filter, exact verification.
std::vector<SearchMatch> ReferenceSearchPass(const SetRecord& ref,
                                             const Collection& data,
                                             const InvertedIndex& index,
                                             const Options& options,
                                             uint32_t exclude_set) {
  if (ref.Empty()) return {};
  const Signature sig = MakeSignature(ref, index, options);
  std::vector<Candidate> cands;
  if (sig.valid) {
    cands = ReferenceSelectAndCheck(ref, sig, data, index, options,
                                    options.check_filter || options.nn_filter);
    if (options.nn_filter) {
      cands = NnFilterCandidates(ref, sig, std::move(cands), data, index,
                                 options);
    }
  } else {
    cands = AllCandidates(ref, data, options);
  }
  return ReferenceVerify(ref, cands, data, options, exclude_set);
}

class PerfEquivalenceSweep : public ::testing::TestWithParam<WorkloadConfig> {
};

TEST_P(PerfEquivalenceSweep, ScratchAccumulatorMatchesReferenceByteForByte) {
  const WorkloadConfig cfg = GetParam();
  const Options opt = MakeOptions(cfg);
  Collection data = MakeData(cfg, 40, /*seed=*/cfg.delta * 1000);
  InvertedIndex index;
  index.Build(data);
  const ElementSimilarity* sim = GetSimilarity(opt.phi);

  // One scratch reused across every reference and both filter modes: epoch
  // stamping must make each query independent of all previous ones.
  QueryScratch scratch;
  size_t nonempty = 0;
  for (const SetRecord& ref : data.sets) {
    if (ref.Empty()) continue;
    const Signature sig = MakeSignature(ref, index, opt);
    if (!sig.valid) continue;
    for (bool apply_check : {true, false}) {
      const std::vector<Candidate> expected =
          ReferenceSelectAndCheck(ref, sig, data, index, opt, apply_check);
      const std::vector<Candidate> got = SelectAndCheckCandidates(
          ref, sig, data, index, opt, apply_check, nullptr, sim, &scratch);
      ASSERT_EQ(got, expected)
          << cfg.name << ": candidate mismatch, ref size " << ref.Size()
          << ", apply_check " << apply_check;
      if (!expected.empty()) ++nonempty;
    }
  }
  // The sweep must actually exercise non-trivial selections.
  EXPECT_GT(nonempty, 0u) << cfg.name;
}

TEST_P(PerfEquivalenceSweep, BoundDecisionsMatchExactVerification) {
  const WorkloadConfig cfg = GetParam();
  const Options opt = MakeOptions(cfg);
  Collection data = MakeData(cfg, 30, /*seed=*/7 + cfg.delta * 100);
  const MaxMatchingVerifier verifier(GetSimilarity(opt.phi), opt.alpha,
                                     opt.reduction);

  size_t bound_settled = 0;
  size_t exact_solved = 0;
  for (uint32_t r = 0; r < data.sets.size(); ++r) {
    for (uint32_t s = 0; s < data.sets.size(); ++s) {
      const SetRecord& rs = data.sets[r];
      const SetRecord& ss = data.sets[s];
      if (rs.Empty() || ss.Empty()) continue;
      if (!SizeFeasible(rs.Size(), ss.Size(), opt)) continue;

      // The margin RunSearchPass uses: wide enough to absorb IsRelated's
      // ratio-level slack (worth up to kFloatSlack·(|R|+|S|) on the
      // matching score) plus bound-side summation drift.
      const double theta = RelatedScoreThreshold(rs.Size(), ss.Size(), opt);
      const double margin =
          kFloatSlack * (static_cast<double>(rs.Size() + ss.Size()) + 2.0);
      const double exact = verifier.Score(rs, ss);
      MatchingStats stats;
      const VerifyDecision d =
          verifier.ScoreDecision(rs, ss, theta, &stats, margin);

      // The bounds must sandwich the exact optimum.
      EXPECT_LE(d.lower, exact + kFloatSlack) << cfg.name;
      EXPECT_GE(d.upper, exact - kFloatSlack) << cfg.name;

      // Exactly one counter fires per decision (floor_rejects stays 0
      // without a floating floor); the exact solver runs only in the
      // ambiguous band lower < θ+margin, upper >= θ-margin; and a decision
      // settled by the bounds alone never disagrees with exact verification
      // under the IsRelated test.
      ASSERT_EQ(stats.bound_accepts + stats.bound_rejects +
                    stats.tier2_accepts + stats.exact_solves,
                1u);
      EXPECT_EQ(stats.floor_rejects, 0u);
      if (stats.exact_solves == 1) {
        EXPECT_LT(d.lower, theta + margin) << cfg.name;
        EXPECT_GE(d.upper, theta - margin) << cfg.name;
        EXPECT_DOUBLE_EQ(d.score, exact) << cfg.name;
        EXPECT_TRUE(d.exact);
        ++exact_solved;
      } else {
        ASSERT_EQ(d.related, IsRelated(exact, rs.Size(), ss.Size(), opt))
            << cfg.name << ": decision flip for pair (" << r << ", " << s
            << "), exact " << exact << ", theta " << theta << ", bounds ["
            << d.lower << ", " << d.upper << "]";
        ++bound_settled;
      }

      // The reporting mode must hand back the solver's exact score on
      // accepts without perturbing the decision or the exact_solves count —
      // the reporting-only solve lands in reporting_solves instead.
      if (stats.bound_accepts == 1 || stats.tier2_accepts == 1) {
        MatchingStats rstats;
        const VerifyDecision dr = verifier.ScoreDecision(
            rs, ss, theta, &rstats, margin, /*need_exact_score=*/true);
        EXPECT_TRUE(dr.related);
        EXPECT_TRUE(dr.exact);
        EXPECT_DOUBLE_EQ(dr.score, exact) << cfg.name;
        EXPECT_EQ(rstats.exact_solves, 0u);
        // The trivial path (both sides consumed by reduction) is exact with
        // no solve at all; every other bound-settled accept pays exactly one
        // reporting solve.
        EXPECT_EQ(rstats.reporting_solves, d.exact ? 0u : 1u) << cfg.name;
        EXPECT_EQ(rstats.bound_accepts, stats.bound_accepts);
        EXPECT_EQ(rstats.tier2_accepts, stats.tier2_accepts);
      }
    }
  }
  // The corpus (near-duplicates + unrelated pairs) must exercise the fast
  // path; the ambiguous band may legitimately be empty.
  EXPECT_GT(bound_settled, 0u) << cfg.name;
  EXPECT_GT(bound_settled + exact_solved, 100u) << cfg.name;
}

// A caller-supplied margin below kFloatSlack used to let the bound reject
// (`upper < θ - margin`) contradict the exact accept test (`score >= θ -
// kFloatSlack`) for θ just above the bound sandwich — e.g. margin 0 and
// θ = exact + kFloatSlack/2 on a pair whose upper bound is tight. The
// clamp in ScoreDecision pins every decision to the exact-solver decision
// for ANY margin; sweep θ through a ±2·kFloatSlack band around the exact
// score. Offsets stay at least a half-slack away from the oracle's own
// equality point (off = +1) so the oracle comparison is not ulp-sensitive.
TEST_P(PerfEquivalenceSweep, SubSlackMarginsNeverFlipBoundaryDecisions) {
  const WorkloadConfig cfg = GetParam();
  const Options opt = MakeOptions(cfg);
  Collection data = MakeData(cfg, 20, /*seed=*/41);
  const MaxMatchingVerifier verifier(GetSimilarity(opt.phi), opt.alpha,
                                     opt.reduction);
  size_t checked = 0;
  for (uint32_t r = 0; r < data.sets.size(); ++r) {
    for (uint32_t s = r; s < data.sets.size(); ++s) {
      const SetRecord& rs = data.sets[r];
      const SetRecord& ss = data.sets[s];
      if (rs.Empty() || ss.Empty()) continue;
      const double exact = verifier.Score(rs, ss);
      for (const double off : {-2.0, -1.0, -0.5, 0.0, 0.5, 1.5, 2.0}) {
        const double theta = exact + off * kFloatSlack;
        const bool oracle = exact >= theta - kFloatSlack;
        for (const double margin : {0.0, kFloatSlack / 8, kFloatSlack}) {
          MatchingStats st;
          const VerifyDecision d =
              verifier.ScoreDecision(rs, ss, theta, &st, margin);
          ASSERT_EQ(d.related, oracle)
              << cfg.name << ": boundary flip for pair (" << r << ", " << s
              << "), exact " << exact << ", off " << off << "·slack, margin "
              << margin;
        }
        ++checked;
      }
    }
  }
  EXPECT_GT(checked, 100u) << cfg.name;
}

TEST_P(PerfEquivalenceSweep, FullSearchPassMatchesReferencePipeline) {
  const WorkloadConfig cfg = GetParam();
  const Options opt = MakeOptions(cfg);
  Collection data = MakeData(cfg, 35, /*seed=*/123);
  InvertedIndex index;
  index.Build(data);

  QueryScratch scratch;
  size_t accepted = 0;
  for (uint32_t r = 0; r < data.sets.size(); ++r) {
    const SetRecord& ref = data.sets[r];
    const std::vector<SearchMatch> expected =
        ReferenceSearchPass(ref, data, index, opt, r);
    const std::vector<SearchMatch> got =
        RunSearchPass(ref, data, index, opt, r, nullptr, &scratch);
    ASSERT_EQ(got.size(), expected.size())
        << cfg.name << ": accepted-set mismatch for reference " << r;
    for (size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].set_id, expected[i].set_id) << cfg.name;
      EXPECT_NEAR(got[i].matching_score, expected[i].matching_score,
                  kFloatSlack)
          << cfg.name;
      EXPECT_NEAR(got[i].relatedness, expected[i].relatedness, kFloatSlack)
          << cfg.name;
    }
    accepted += got.size();
  }
  // The duplicate-heavy corpus must produce real matches to compare.
  EXPECT_GT(accepted, 0u) << cfg.name;
}

INSTANTIATE_TEST_SUITE_P(
    Workloads, PerfEquivalenceSweep,
    ::testing::Values(
        WorkloadConfig{"similarity_jaccard", Relatedness::kSimilarity,
                       SimilarityKind::kJaccard, 0.6, 0.4},
        WorkloadConfig{"containment_jaccard", Relatedness::kContainment,
                       SimilarityKind::kJaccard, 0.7, 0.0},
        WorkloadConfig{"similarity_eds", Relatedness::kSimilarity,
                       SimilarityKind::kEds, 0.5, 0.6}),
    [](const ::testing::TestParamInfo<WorkloadConfig>& info) {
      return info.param.name;
    });

}  // namespace
}  // namespace silkmoth
