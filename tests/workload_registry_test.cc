// Workload registry (src/bench/workload.h) determinism contracts:
// every registered workload yields a byte-identical request stream across
// repeated generations, and RunWorkload's deterministic result fields are
// identical across worker counts {1, 4}.

#include "bench/workload.h"

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "bench/bench_json.h"
#include "bench/runner.h"

namespace silkmoth::bench {
namespace {

TEST(WorkloadRegistryTest, RegistryShape) {
  const auto& all = AllWorkloads();
  EXPECT_GE(all.size(), 6u) << "the CLI contract promises >= 6 workloads";
  std::set<std::string> names;
  for (const WorkloadSpec& spec : all) {
    EXPECT_FALSE(spec.name.empty());
    EXPECT_FALSE(spec.scenario.empty());
    EXPECT_TRUE(names.insert(spec.name).second)
        << "duplicate workload name: " << spec.name;
    EXPECT_GT(spec.requests, 0u) << spec.name;
    EXPECT_GT(spec.batch, 0u) << spec.name;
    EXPECT_GE(spec.workers, 1) << spec.name;
    EXPECT_EQ(spec.options.num_threads, 1)
        << spec.name << ": per-request serving must stay single-threaded; "
        << "concurrency belongs to `workers`";
    const WorkloadSpec* found = FindWorkload(spec.name);
    ASSERT_NE(found, nullptr);
    EXPECT_EQ(found->scenario, spec.scenario);
  }
  EXPECT_EQ(FindWorkload("no-such-workload"), nullptr);
}

TEST(WorkloadRegistryTest, EveryWorkloadStreamIsReproducible) {
  for (const WorkloadSpec& spec : AllWorkloads()) {
    const auto a = GenerateRequestStream(spec, spec.corpus_sets);
    const auto b = GenerateRequestStream(spec, spec.corpus_sets);
    EXPECT_EQ(a.size(), spec.requests * spec.batch) << spec.name;
    EXPECT_EQ(SerializeRequestStream(a, spec.batch),
              SerializeRequestStream(b, spec.batch))
        << spec.name;
    EXPECT_EQ(HashRequestStream(a, spec.batch),
              HashRequestStream(b, spec.batch))
        << spec.name;
    for (uint32_t id : a) EXPECT_LT(id, spec.corpus_sets) << spec.name;
  }
}

TEST(WorkloadRegistryTest, ZipfianStreamsSkewTowardLowIds) {
  // The zipfian mix maps ranks directly onto set ids, so the head of the
  // stream's id distribution must sit in the low ids (the documented
  // hot-shard shape).
  const WorkloadSpec* spec = FindWorkload("schema-sim-zipf");
  ASSERT_NE(spec, nullptr);
  const auto stream = GenerateRequestStream(*spec, spec->corpus_sets);
  size_t low = 0;
  for (uint32_t id : stream) low += id < spec->corpus_sets / 10 ? 1 : 0;
  EXPECT_GT(low * 2, stream.size())
      << "zipf(0.99) should put most draws in the lowest decile";
}

/// Shrinks a registry spec to test scale, preserving its scenario shape.
WorkloadSpec Shrunken(const WorkloadSpec& spec) {
  WorkloadSpec s = spec;
  s.corpus_sets = 150;
  s.requests = 12;
  s.batch = 2;
  s.sustained_seconds = 0.05;
  return s;
}

/// The deterministic projection of a BenchResult: everything the JSON
/// contract keeps outside "timing".
std::string DeterministicFields(const BenchResult& r) {
  std::string out;
  out += "sets=" + std::to_string(r.corpus_sets);
  out += " elems=" + std::to_string(r.corpus_elements);
  out += " tokens=" + std::to_string(r.corpus_tokens);
  out += " hash=" + std::to_string(r.request_stream_hash);
  out += " oov=" + std::to_string(r.pool_oov_tokens);
  out += " pairs=" + std::to_string(r.pairs_per_round);
  out += " funnel=" + r.funnel.Total().CountersJson();
  for (const SearchStats& s : r.funnel.per_shard) {
    out += " shard=" + std::to_string(s.results);
  }
  return out;
}

TEST(WorkloadRegistryTest, RunWorkloadDeterministicAcrossWorkerCounts) {
  // Every registered scenario, shrunk to test scale, run at workers 1 and
  // 4: the deterministic projection must match exactly. This is the
  // closed-loop/sustained round-0 contract end to end — stream slicing,
  // per-worker stats, and the commutative merge.
  for (const WorkloadSpec& spec : AllWorkloads()) {
    WorkloadSpec one = Shrunken(spec);
    one.workers = 1;
    WorkloadSpec four = Shrunken(spec);
    four.workers = 4;

    BenchResult r1, r4;
    ASSERT_EQ(RunWorkload(one, &r1), "") << spec.name;
    ASSERT_EQ(RunWorkload(four, &r4), "") << spec.name;
    EXPECT_EQ(DeterministicFields(r1), DeterministicFields(r4)) << spec.name;
    EXPECT_GE(r1.completed_requests, one.requests) << spec.name;
    EXPECT_EQ(r1.latency.Count(), r1.completed_requests) << spec.name;
  }
}

TEST(WorkloadRegistryTest, BenchJsonStripTimingIsReproducible) {
  // Two same-spec runs: the emitted JSON must be byte-identical outside the
  // "timing" object. Compared structurally by splicing the timing section
  // out of the raw text (it is a single top-level key, last in the object).
  const WorkloadSpec* registered = FindWorkload("columns-cont-uniform");
  ASSERT_NE(registered, nullptr);
  const WorkloadSpec spec = Shrunken(*registered);
  BenchResult a, b;
  ASSERT_EQ(RunWorkload(spec, &a), "");
  ASSERT_EQ(RunWorkload(spec, &b), "");
  std::string ja = BenchResultToJson(a);
  std::string jb = BenchResultToJson(b);
  const auto strip = [](std::string* s) {
    const size_t pos = s->find("\"timing\"");
    ASSERT_NE(pos, std::string::npos);
    s->erase(pos);
  };
  strip(&ja);
  strip(&jb);
  EXPECT_EQ(ja, jb);
  EXPECT_NE(ja.find("\"bench_schema_version\": 1"), std::string::npos);
}

}  // namespace
}  // namespace silkmoth::bench
