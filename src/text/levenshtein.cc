#include "text/levenshtein.h"

#include <algorithm>
#include <cstdlib>
#include <vector>

namespace silkmoth {

int LevenshteinDistance(std::string_view a, std::string_view b) {
  if (a.size() > b.size()) std::swap(a, b);  // a is the shorter string.
  const int n = static_cast<int>(a.size());
  const int m = static_cast<int>(b.size());
  if (n == 0) return m;

  std::vector<int> row(n + 1);
  for (int j = 0; j <= n; ++j) row[j] = j;
  for (int i = 1; i <= m; ++i) {
    int prev_diag = row[0];  // row[i-1][0]
    row[0] = i;
    for (int j = 1; j <= n; ++j) {
      const int cur = row[j];
      const int sub = prev_diag + (b[i - 1] == a[j - 1] ? 0 : 1);
      row[j] = std::min({row[j] + 1, row[j - 1] + 1, sub});
      prev_diag = cur;
    }
  }
  return row[n];
}

int BoundedLevenshtein(std::string_view a, std::string_view b, int max_d) {
  const int n = static_cast<int>(a.size());
  const int m = static_cast<int>(b.size());
  if (std::abs(n - m) > max_d) return max_d + 1;
  if (max_d < 0) return (n == 0 && m == 0) ? 0 : max_d + 1;
  if (n == 0) return m;  // <= max_d by the length check above.
  if (m == 0) return n;

  // Band of half-width max_d around the diagonal. kBig keeps additions from
  // overflowing while dominating any real distance.
  const int kBig = max_d + 1;
  std::vector<int> row(n + 1, kBig);
  std::vector<int> next(n + 1, kBig);
  for (int j = 0; j <= std::min(n, max_d); ++j) row[j] = j;
  for (int i = 1; i <= m; ++i) {
    const int lo = std::max(1, i - max_d);
    const int hi = std::min(n, i + max_d);
    std::fill(next.begin(), next.end(), kBig);
    if (lo == 1) next[0] = i <= max_d ? i : kBig;
    int best = kBig;
    for (int j = lo; j <= hi; ++j) {
      const int sub = row[j - 1] + (a[j - 1] == b[i - 1] ? 0 : 1);
      const int del = row[j] + 1;      // delete from b
      const int ins = next[j - 1] + 1;  // insert into b
      next[j] = std::min({sub, del, ins, kBig});
      best = std::min(best, next[j]);
    }
    if (best > max_d) return max_d + 1;  // Whole band over budget.
    row.swap(next);
  }
  return row[n] <= max_d ? row[n] : max_d + 1;
}

}  // namespace silkmoth
