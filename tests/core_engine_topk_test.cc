#include <gtest/gtest.h>

#include "core/engine.h"
#include "datagen/builders.h"
#include "paper_example.h"

namespace silkmoth {
namespace {

using test::MakePaperExample;

Options LowThreshold(double delta = 0.2) {
  Options o;
  o.metric = Relatedness::kContainment;
  o.phi = SimilarityKind::kJaccard;
  o.delta = delta;
  return o;
}

TEST(SearchTopKTest, ReturnsBestFirst) {
  auto ex = MakePaperExample();
  SilkMoth engine(&ex.data, LowThreshold());
  auto top = engine.SearchTopK(ex.ref, 2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_GE(top[0].relatedness, top[1].relatedness);
  // S4 is the best match on the paper data.
  EXPECT_EQ(top[0].set_id, 3u);
}

TEST(SearchTopKTest, KLargerThanMatches) {
  auto ex = MakePaperExample();
  SilkMoth engine(&ex.data, LowThreshold());
  auto all = engine.Search(ex.ref);
  auto top = engine.SearchTopK(ex.ref, 100);
  EXPECT_EQ(top.size(), all.size());
}

TEST(SearchTopKTest, KZero) {
  auto ex = MakePaperExample();
  SilkMoth engine(&ex.data, LowThreshold());
  EXPECT_TRUE(engine.SearchTopK(ex.ref, 0).empty());
}

TEST(SearchTopKTest, SameSetAsSearch) {
  auto ex = MakePaperExample();
  SilkMoth engine(&ex.data, LowThreshold());
  auto all = engine.Search(ex.ref);
  auto top = engine.SearchTopK(ex.ref, all.size());
  ASSERT_EQ(top.size(), all.size());
  // Same matches, different order: compare as sorted-by-id sets.
  std::sort(top.begin(), top.end(),
            [](const SearchMatch& a, const SearchMatch& b) {
              return a.set_id < b.set_id;
            });
  EXPECT_EQ(top, all);
}

TEST(SearchTopKTest, TiesBrokenByAscendingSetId) {
  // Two identical sets tie exactly; the lower id must come first.
  RawSets raw = {{"a b", "c d"}, {"a b", "c d"}, {"x y", "z w"}};
  Collection data = BuildCollection(raw, TokenizerKind::kWord);
  SetRecord ref = BuildReference({"a b", "c d"}, TokenizerKind::kWord, 0,
                                 &data);
  SilkMoth engine(&data, LowThreshold(0.5));
  auto top = engine.SearchTopK(ref, 2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].set_id, 0u);
  EXPECT_EQ(top[1].set_id, 1u);
  EXPECT_DOUBLE_EQ(top[0].relatedness, top[1].relatedness);
}

}  // namespace
}  // namespace silkmoth
