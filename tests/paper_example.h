#ifndef SILKMOTH_TESTS_PAPER_EXAMPLE_H_
#define SILKMOTH_TESTS_PAPER_EXAMPLE_H_

// The paper's running example (Table 2): reference set R = Location and the
// collection S = {S1, S2, S3, S4}, with tokens t1..t12 subscripted in
// decreasing order of frequency. Token ids are interned in subscript order
// so tests can reason about the paper's tie-breaking.

#include <memory>
#include <string>
#include <vector>

#include "datagen/builders.h"
#include "text/dataset.h"

namespace silkmoth::test {

/// Token strings for t1..t12 (t1="77" appears 9 times ... t12="IL" once).
inline const std::vector<std::string>& PaperTokens() {
  static const std::vector<std::string> tokens = {
      "77",      "Mass", "Ave",     "5th", "St", "Boston",
      "02115",   "MA",   "Seattle", "WA",  "Chicago", "IL"};
  return tokens;
}

/// Paper token id (1-based subscript) -> dictionary TokenId (0-based).
inline TokenId T(int subscript) { return static_cast<TokenId>(subscript - 1); }

struct PaperExample {
  Collection data;    // S1..S4.
  SetRecord ref;      // R (Location).
};

/// Builds Table 2. Ids follow subscripts because the dictionary pre-interns
/// t1..t12 in order.
inline PaperExample MakePaperExample() {
  auto dict = std::make_shared<TokenDictionary>();
  for (const std::string& t : PaperTokens()) dict->Intern(t);

  auto text = [](std::initializer_list<int> subs) {
    std::string s;
    for (int sub : subs) {
      if (!s.empty()) s.push_back(' ');
      s += PaperTokens()[static_cast<size_t>(sub - 1)];
    }
    return s;
  };

  RawSets raw = {
      // S1
      {text({2, 3, 5, 6, 7}), text({1, 2, 4, 5, 6}), text({1, 2, 3, 4, 7})},
      // S2
      {text({1, 6, 8}), text({1, 4, 5, 6, 7}), text({1, 2, 3, 7, 9})},
      // S3
      {text({1, 2, 3, 4, 6, 8}), text({2, 3, 11, 12}), text({1, 2, 3, 5})},
      // S4
      {text({1, 2, 3, 8}), text({4, 5, 7, 9, 10}), text({1, 4, 5, 6, 9})},
  };

  PaperExample ex;
  ex.data = BuildCollectionWithDict(raw, TokenizerKind::kWord, 0, dict);
  ex.ref = BuildReference(
      {text({1, 2, 3, 6, 8}), text({4, 5, 7, 9, 10}), text({1, 4, 5, 11, 12})},
      TokenizerKind::kWord, 0, &ex.data);
  return ex;
}

}  // namespace silkmoth::test

#endif  // SILKMOTH_TESTS_PAPER_EXAMPLE_H_
