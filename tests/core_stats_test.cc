#include "core/stats.h"

#include <gtest/gtest.h>

namespace silkmoth {
namespace {

TEST(SearchStatsTest, MergeAddsEveryCounter) {
  SearchStats a;
  a.references = 1;
  a.fallback_scans = 2;
  a.signature_tokens = 3;
  a.initial_candidates = 4;
  a.after_size = 5;
  a.after_check = 6;
  a.after_nn = 7;
  a.verifications = 8;
  a.results = 9;
  a.similarity_calls = 10;
  a.reduced_pairs = 11;
  a.signature_seconds = 0.5;
  a.selection_seconds = 0.25;
  a.nn_seconds = 0.125;
  a.verify_seconds = 1.0;

  SearchStats b = a;
  b.Merge(a);
  EXPECT_EQ(b.references, 2u);
  EXPECT_EQ(b.fallback_scans, 4u);
  EXPECT_EQ(b.signature_tokens, 6u);
  EXPECT_EQ(b.initial_candidates, 8u);
  EXPECT_EQ(b.after_size, 10u);
  EXPECT_EQ(b.after_check, 12u);
  EXPECT_EQ(b.after_nn, 14u);
  EXPECT_EQ(b.verifications, 16u);
  EXPECT_EQ(b.results, 18u);
  EXPECT_EQ(b.similarity_calls, 20u);
  EXPECT_EQ(b.reduced_pairs, 22u);
  EXPECT_DOUBLE_EQ(b.signature_seconds, 1.0);
  EXPECT_DOUBLE_EQ(b.selection_seconds, 0.5);
  EXPECT_DOUBLE_EQ(b.nn_seconds, 0.25);
  EXPECT_DOUBLE_EQ(b.verify_seconds, 2.0);
}

TEST(SearchStatsTest, MergeWithDefaultIsIdentity) {
  SearchStats a;
  a.references = 7;
  a.results = 3;
  SearchStats copy = a;
  a.Merge(SearchStats{});
  EXPECT_EQ(a.references, copy.references);
  EXPECT_EQ(a.results, copy.results);
}

TEST(SearchStatsTest, ToStringMentionsEveryCounter) {
  SearchStats s;
  s.references = 42;
  const std::string text = s.ToString();
  for (const char* key :
       {"references", "fallback_scans", "signature_tokens",
        "initial_candidates", "after_size", "after_check", "after_nn",
        "verifications", "results", "similarity_calls", "reduced_pairs",
        "signature_seconds", "selection_seconds", "nn_seconds",
        "verify_seconds"}) {
    EXPECT_NE(text.find(key), std::string::npos) << key;
  }
  EXPECT_NE(text.find("42"), std::string::npos);
}

}  // namespace
}  // namespace silkmoth
