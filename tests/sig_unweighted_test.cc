#include <algorithm>

#include <gtest/gtest.h>

#include "paper_example.h"
#include "sig/scheme.h"

namespace silkmoth {
namespace {

using test::MakePaperExample;
using test::T;

SchemeParams Params(double theta, double alpha = 0.0,
                    SimilarityKind phi = SimilarityKind::kJaccard) {
  SchemeParams p;
  p.scheme = SignatureSchemeKind::kCombUnweighted;
  p.phi = phi;
  p.theta = theta;
  p.alpha = alpha;
  p.q = 2;
  return p;
}

TEST(CombUnweightedTest, RemovesCMinusOneMostExpensiveOccurrences) {
  // θ = 2.1 ⇒ c = 3 ⇒ 2 removals. The most expensive occurrences are t1
  // (cost 9, twice: in r1 and r3). Everything else must remain.
  auto ex = MakePaperExample();
  InvertedIndex index;
  index.Build(ex.data);
  Signature sig = CombUnweightedSignature(ex.ref, index, Params(2.1));
  ASSERT_TRUE(sig.valid);
  const std::vector<TokenId> flat = sig.FlatTokens();
  // t1 is gone entirely (both its occurrences removed)...
  EXPECT_FALSE(std::binary_search(flat.begin(), flat.end(), T(1)));
  // ...and all other reference tokens survive.
  for (int t = 2; t <= 12; ++t) {
    EXPECT_TRUE(std::binary_search(flat.begin(), flat.end(), T(t)))
        << "t" << t;
  }
}

TEST(CombUnweightedTest, SignatureIsLargerThanWeighted) {
  // Section 4.2: the unweighted scheme overestimates token contributions and
  // so must keep far more tokens (the source of the 7.7x gap in Fig. 5).
  auto ex = MakePaperExample();
  InvertedIndex index;
  index.Build(ex.data);
  SchemeParams up = Params(2.1);
  const size_t unweighted_cost =
      CombUnweightedSignature(ex.ref, index, up).Cost(index);
  up.scheme = SignatureSchemeKind::kWeighted;
  const size_t weighted_cost =
      WeightedSignature(ex.ref, index, up).Cost(index);
  EXPECT_GT(unweighted_cost, weighted_cost);
}

TEST(CombUnweightedTest, ThetaBelowOneRemovesNothing) {
  // θ <= 1 ⇒ c = 1 ⇒ 0 removals: signature is all of R^T.
  auto ex = MakePaperExample();
  InvertedIndex index;
  index.Build(ex.data);
  Signature sig = CombUnweightedSignature(ex.ref, index, Params(0.9));
  ASSERT_TRUE(sig.valid);
  EXPECT_EQ(sig.FlatTokens().size(), 12u);
}

TEST(CombUnweightedTest, IntegralThetaBoundary) {
  // θ = 2.0 exactly: c = 2, one removal.
  auto ex = MakePaperExample();
  InvertedIndex index;
  index.Build(ex.data);
  Signature sig = CombUnweightedSignature(ex.ref, index, Params(2.0));
  ASSERT_TRUE(sig.valid);
  size_t total_probe = sig.NumProbeTokens();
  // 12 token occurrences... R^T has multiset size 15 (5+5+5); one removed
  // leaves 14 probe entries.
  EXPECT_EQ(total_probe, 14u);
}

TEST(CombUnweightedTest, AlphaEnablesSimThreshCut) {
  // With a high α, elements can be covered by b_i cheap tokens instead of
  // their kept-token lists; protected elements must get miss_bound 0.
  auto ex = MakePaperExample();
  InvertedIndex index;
  index.Build(ex.data);
  Signature sig = CombUnweightedSignature(ex.ref, index, Params(2.1, 0.7));
  ASSERT_TRUE(sig.valid);
  bool any_protected = false;
  for (size_t i = 0; i < sig.probe.size(); ++i) {
    if (sig.alpha_protected[i]) {
      any_protected = true;
      EXPECT_DOUBLE_EQ(sig.miss_bound[i], 0.0);
      EXPECT_GE(sig.probe[i].size(), 2u);  // b_i = 2 at α=0.7, |r_i|=5.
    }
  }
  EXPECT_TRUE(any_protected);
}

TEST(CombUnweightedTest, AlwaysValidForJaccard) {
  // c-1 = ⌈θ⌉-1 < θ <= n <= Σ|r_i|: the removal budget can never consume
  // every occurrence, so the scheme always yields a valid signature.
  auto ex = MakePaperExample();
  InvertedIndex index;
  index.Build(ex.data);
  for (double delta : {0.1, 0.5, 0.7, 0.99, 1.0}) {
    Signature sig =
        CombUnweightedSignature(ex.ref, index, Params(delta * 3.0));
    EXPECT_TRUE(sig.valid) << "delta " << delta;
    EXPECT_GT(sig.NumProbeTokens(), 0u) << "delta " << delta;
  }
}

TEST(CombUnweightedTest, EditSimilarityUsesChunkOccurrences) {
  // α = 0.75 with q = 2 obeys q < α/(1-α); the count argument is sound and
  // the signature valid (FastJoin's operating envelope, footnote 12).
  RawSets raw = {{"abcdef", "ghijkl"}, {"abcdxx"}, {"zzzzzz"}};
  Collection data = BuildCollection(raw, TokenizerKind::kQGram, 2);
  InvertedIndex index;
  index.Build(data);
  const SetRecord& ref = data.sets[0];
  SchemeParams p = Params(0.7 * 2, 0.75, SimilarityKind::kEds);
  Signature sig = CombUnweightedSignature(ref, index, p);
  ASSERT_TRUE(sig.valid);
  for (size_t i = 0; i < ref.Size(); ++i) {
    for (TokenId t : sig.probe[i]) {
      EXPECT_TRUE(std::binary_search(ref.elements[i].chunks.begin(),
                                     ref.elements[i].chunks.end(), t));
    }
  }
}

TEST(CombUnweightedTest, EditSimilarityAlphaZeroMayBeInvalid) {
  // At α = 0, Eds > 0 does not require a shared q-gram, so the count
  // argument is unsound; validity falls back to the weighted-sum criterion,
  // which fails here after the removal — the engine must full-scan (§7.3).
  RawSets raw = {{"abcdef", "ghijkl"}, {"abcdxx"}, {"zzzzzz"}};
  Collection data = BuildCollection(raw, TokenizerKind::kQGram, 2);
  InvertedIndex index;
  index.Build(data);
  Signature sig = CombUnweightedSignature(
      data.sets[0], index, Params(0.7 * 2, 0.0, SimilarityKind::kEds));
  EXPECT_FALSE(sig.valid);
}

}  // namespace
}  // namespace silkmoth
