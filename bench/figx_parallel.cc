// Extension (not a paper figure): parallel discovery scaling. The paper
// leaves distribution as future work; this repository adds shared-memory
// parallelism over reference sets (the index is immutable after build).
// Output must be identical at every thread count — verified per row.

#include <iostream>

#include "bench_common.h"

int main() {
  using namespace silkmoth;
  using namespace silkmoth::bench;

  PrintHeader("Extension figure", "parallel discovery scaling");

  Workload base = SchemaMatchingWorkload(Scaled(2400));
  Workload serial = base;
  serial.options.num_threads = 1;
  const RunResult reference = RunSilkMoth(serial);

  TablePrinter table({"threads", "time(s)", "speedup", "results",
                      "identical"});
  for (int threads : {1, 2, 4, 8}) {
    Workload w = base;
    w.options.num_threads = threads;
    const RunResult r = RunSilkMoth(w);
    table.AddRow({TablePrinter::Int(threads), TablePrinter::Num(r.seconds, 3),
                  TablePrinter::Num(
                      r.seconds > 0 ? reference.seconds / r.seconds : 0, 2),
                  TablePrinter::Int(static_cast<long long>(r.results)),
                  r.results == reference.results ? "yes" : "NO!"});
  }
  table.Print(std::cout);
  return 0;
}
