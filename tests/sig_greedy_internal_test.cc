#include "sig/greedy_internal.h"

#include <gtest/gtest.h>

#include "paper_example.h"
#include "sig/simthresh.h"

namespace silkmoth {
namespace {

using sig_internal::CollectTokens;
using sig_internal::RunGreedy;
using sig_internal::TokenOcc;
using test::MakePaperExample;
using test::T;

TEST(CollectTokensTest, PaperExampleCostsAndOccurrences) {
  auto ex = MakePaperExample();
  InvertedIndex index;
  index.Build(ex.data);
  const auto units = MakeElementUnits(ex.ref, SimilarityKind::kJaccard);
  const auto tokens = CollectTokens(units, index);
  ASSERT_EQ(tokens.size(), 12u);  // R^T has 12 distinct tokens.
  for (const TokenOcc& t : tokens) {
    EXPECT_EQ(t.cost, index.ListSize(t.token));
    // t1, t4, t5 occur in two elements of R; everything else in one.
    const bool doubled =
        t.token == T(1) || t.token == T(4) || t.token == T(5);
    EXPECT_EQ(t.occs.size(), doubled ? 2u : 1u)
        << "token id " << t.token;
  }
}

TEST(RunGreedyTest, StopsExactlyWhenBoundDropsBelowTheta) {
  auto ex = MakePaperExample();
  InvertedIndex index;
  index.Build(ex.data);
  const auto units = MakeElementUnits(ex.ref, SimilarityKind::kJaccard);
  const auto tokens = CollectTokens(units, index);
  const std::vector<size_t> none(units.size(), kNoSimThresh);
  auto result = RunGreedy(units, tokens, /*theta=*/2.1, none);
  ASSERT_TRUE(result.reached);
  EXPECT_NEAR(result.bound_sum, 2.0, 1e-12);
  // Exactly 5 tokens selected (t8..t12), one in r1, two in r2, two in r3.
  EXPECT_EQ(result.state[0].chosen.size(), 1u);
  EXPECT_EQ(result.state[1].chosen.size(), 2u);
  EXPECT_EQ(result.state[2].chosen.size(), 2u);
}

TEST(RunGreedyTest, ThetaAboveInitialSumSelectsNothing) {
  auto ex = MakePaperExample();
  InvertedIndex index;
  index.Build(ex.data);
  const auto units = MakeElementUnits(ex.ref, SimilarityKind::kJaccard);
  const auto tokens = CollectTokens(units, index);
  const std::vector<size_t> none(units.size(), kNoSimThresh);
  // θ = 3.5 > n = 3: already satisfied before any selection.
  auto result = RunGreedy(units, tokens, 3.5, none);
  EXPECT_TRUE(result.reached);
  for (const auto& st : result.state) EXPECT_TRUE(st.chosen.empty());
}

TEST(RunGreedyTest, CompletionFreezesElement) {
  auto ex = MakePaperExample();
  InvertedIndex index;
  index.Build(ex.data);
  const auto units = MakeElementUnits(ex.ref, SimilarityKind::kJaccard);
  const auto tokens = CollectTokens(units, index);
  // Complete after 1 unit; drive θ low enough to need several tokens.
  const std::vector<size_t> one(units.size(), 1);
  auto result = RunGreedy(units, tokens, 0.5, one);
  ASSERT_TRUE(result.reached);
  for (const auto& st : result.state) {
    if (st.complete) {
      EXPECT_EQ(st.chosen.size(), 1u);
    }
  }
}

TEST(RunGreedyTest, ExhaustionReportsNotReached) {
  // Edit-similarity bound cannot reach a θ close to n when q is too large
  // (Section 7.3): greedy exhausts all chunks and reports !reached.
  RawSets raw = {{"abcd", "efgh"}, {"abcd"}};
  Collection data = BuildCollection(raw, TokenizerKind::kQGram, 4);
  InvertedIndex index;
  index.Build(data);
  const auto units = MakeElementUnits(data.sets[0], SimilarityKind::kEds);
  const auto tokens = CollectTokens(units, index);
  const std::vector<size_t> none(units.size(), kNoSimThresh);
  // Each element: len 4, one 4-chunk; best achievable bound 4/(4+1) = 0.8
  // each, so the sum can never drop below 1.6 >= θ = 1.5.
  auto result = RunGreedy(units, tokens, /*theta=*/1.5, none);
  EXPECT_FALSE(result.reached);
  EXPECT_NEAR(result.bound_sum, 1.6, 1e-12);
}

TEST(RunGreedyTest, EditGainsShrinkAcrossSelections) {
  // For the edit bound |r|/(|r|+u), marginal gains must decrease; the lazy
  // heap relies on it. Verify directly on the unit model.
  ElementUnits u;
  u.edit = true;
  u.size = 12.0;
  u.total_units = 4;
  u.tokens = {0, 1, 2, 3};
  u.mults = {1, 1, 1, 1};
  double prev = 1.0;
  for (size_t sel = 0; sel < 4; ++sel) {
    const double gain = u.Gain(sel, 1);
    EXPECT_GT(gain, 0.0);
    EXPECT_LE(gain, prev + 1e-12);
    prev = gain;
  }
}

TEST(ElementUnitsTest, JaccardBoundShape) {
  ElementUnits u;
  u.edit = false;
  u.size = 5.0;
  u.total_units = 5;
  EXPECT_DOUBLE_EQ(u.BoundAfter(0), 1.0);
  EXPECT_DOUBLE_EQ(u.BoundAfter(2), 0.6);
  EXPECT_DOUBLE_EQ(u.BoundAfter(5), 0.0);
}

TEST(ElementUnitsTest, EditBoundShape) {
  ElementUnits u;
  u.edit = true;
  u.size = 10.0;
  u.total_units = 5;
  EXPECT_DOUBLE_EQ(u.BoundAfter(0), 1.0);
  EXPECT_DOUBLE_EQ(u.BoundAfter(5), 10.0 / 15.0);
}

TEST(ElementUnitsTest, ChunkMultiplicityCollapses) {
  // "abab" with q=2: chunk token "ab" has multiplicity 2.
  RawSets raw = {{"abab"}};
  Collection data = BuildCollection(raw, TokenizerKind::kQGram, 2);
  const auto units = MakeElementUnits(data.sets[0], SimilarityKind::kEds);
  ASSERT_EQ(units.size(), 1u);
  ASSERT_EQ(units[0].tokens.size(), 1u);
  EXPECT_EQ(units[0].mults[0], 2u);
  EXPECT_EQ(units[0].total_units, 2u);
}

}  // namespace
}  // namespace silkmoth
