// Unit tests for the serve daemon's frame protocol and admission control:
// encode/decode round-trips under adversarial chunking, the malformed-frame
// matrix (bad magic, bad type, oversized, truncation) with sticky
// poisoning, and the bounded-queue admission semantics — non-consuming
// refusal, byte budgeting, shutdown drain.
//
// The end-to-end transport paths (real fds, real daemon process) are
// exercised by tests/serve_cli_test.sh against the silkmoth_cli binary.

#include "serve/protocol.h"

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "serve/admission.h"
#include "util/rng.h"

namespace silkmoth {
namespace serve {
namespace {

Frame MakeFrame(FrameType type, uint64_t id, std::string body) {
  Frame f;
  f.type = type;
  f.request_id = id;
  f.body = std::move(body);
  return f;
}

// --- Encode / decode round-trips ------------------------------------------

TEST(FrameProtocolTest, EncodeProducesHeaderPlusBody) {
  const Frame f = MakeFrame(FrameType::kQuery, 42, "hello");
  const std::string bytes = EncodeFrame(f);
  ASSERT_EQ(bytes.size(), kFrameHeaderSize + 5);
  uint32_t magic = 0;
  std::memcpy(&magic, bytes.data(), 4);
  EXPECT_EQ(magic, kFrameMagic);
  EXPECT_EQ(bytes.substr(kFrameHeaderSize), "hello");
}

TEST(FrameProtocolTest, RoundTripSingleFrame) {
  const Frame in = MakeFrame(FrameType::kResult, 7, "1\t2\t0.5\t0.5\n");
  FrameDecoder dec;
  const std::string bytes = EncodeFrame(in);
  dec.Feed(bytes.data(), bytes.size());
  Frame out;
  ASSERT_EQ(dec.Next(&out), FrameDecoder::Status::kFrame);
  EXPECT_EQ(out.type, in.type);
  EXPECT_EQ(out.request_id, in.request_id);
  EXPECT_EQ(out.body, in.body);
  EXPECT_EQ(dec.Next(&out), FrameDecoder::Status::kNeedMore);
  EXPECT_FALSE(dec.MidFrame());
}

TEST(FrameProtocolTest, RoundTripSurvivesRandomChunking) {
  // Property: however the byte stream is fragmented, the decoder yields
  // exactly the encoded frame sequence. 50 deterministic fragmentations.
  std::vector<Frame> frames;
  frames.push_back(MakeFrame(FrameType::kQuery, 1, "alpha beta\n"));
  frames.push_back(MakeFrame(FrameType::kPing, 2, ""));
  frames.push_back(MakeFrame(FrameType::kQuery, 3, std::string(4096, 'x')));
  frames.push_back(MakeFrame(FrameType::kShutdown, 4, ""));
  std::string stream;
  for (const Frame& f : frames) stream += EncodeFrame(f);

  Rng rng(0x5EEDu);
  for (int trial = 0; trial < 50; ++trial) {
    FrameDecoder dec;
    std::vector<Frame> got;
    size_t pos = 0;
    while (pos < stream.size()) {
      const size_t chunk = static_cast<size_t>(
          rng.NextBounded(stream.size() - pos) + 1);
      dec.Feed(stream.data() + pos, chunk);
      pos += chunk;
      Frame f;
      while (dec.Next(&f) == FrameDecoder::Status::kFrame) {
        got.push_back(f);
      }
    }
    ASSERT_EQ(got.size(), frames.size()) << "trial " << trial;
    for (size_t i = 0; i < frames.size(); ++i) {
      EXPECT_EQ(got[i].type, frames[i].type);
      EXPECT_EQ(got[i].request_id, frames[i].request_id);
      EXPECT_EQ(got[i].body, frames[i].body);
    }
    EXPECT_FALSE(dec.MidFrame());
    EXPECT_FALSE(dec.Poisoned());
  }
}

// --- Malformed-frame matrix ------------------------------------------------

TEST(FrameProtocolTest, BadMagicPoisons) {
  std::string bytes = EncodeFrame(MakeFrame(FrameType::kPing, 1, ""));
  bytes[0] = 'X';
  FrameDecoder dec;
  dec.Feed(bytes.data(), bytes.size());
  Frame out;
  EXPECT_EQ(dec.Next(&out), FrameDecoder::Status::kBadMagic);
  EXPECT_TRUE(dec.Poisoned());
  // Sticky: the same error repeats, and further input is discarded.
  const std::string good = EncodeFrame(MakeFrame(FrameType::kPing, 2, ""));
  dec.Feed(good.data(), good.size());
  EXPECT_EQ(dec.Next(&out), FrameDecoder::Status::kBadMagic);
  EXPECT_FALSE(dec.MidFrame());
}

TEST(FrameProtocolTest, UnknownTypePoisons) {
  Frame f = MakeFrame(FrameType::kPing, 1, "");
  std::string bytes = EncodeFrame(f);
  const uint32_t bogus = 999;
  std::memcpy(&bytes[4], &bogus, 4);  // Type field lives at [4..8).
  FrameDecoder dec;
  dec.Feed(bytes.data(), bytes.size());
  Frame out;
  EXPECT_EQ(dec.Next(&out), FrameDecoder::Status::kBadType);
  EXPECT_TRUE(dec.Poisoned());
}

TEST(FrameProtocolTest, OversizedBodyPoisonsWithoutAllocating) {
  // A lying body_len over the limit must be rejected from the header alone.
  Frame f = MakeFrame(FrameType::kQuery, 1, "tiny");
  std::string bytes = EncodeFrame(f);
  const uint64_t lie = 1ull << 40;
  std::memcpy(&bytes[16], &lie, 8);  // body_len lives at [16..24).
  FrameDecoder dec(/*max_frame_bytes=*/1024);
  dec.Feed(bytes.data(), kFrameHeaderSize);  // Header only, no body.
  Frame out;
  EXPECT_EQ(dec.Next(&out), FrameDecoder::Status::kOversized);
  EXPECT_TRUE(dec.Poisoned());
}

TEST(FrameProtocolTest, PerDecoderFrameLimitIsRespected) {
  // A body over this decoder's limit but under the default is rejected.
  const Frame f = MakeFrame(FrameType::kQuery, 1, std::string(2048, 'q'));
  const std::string bytes = EncodeFrame(f);
  FrameDecoder small(/*max_frame_bytes=*/1024);
  small.Feed(bytes.data(), bytes.size());
  Frame out;
  EXPECT_EQ(small.Next(&out), FrameDecoder::Status::kOversized);
  FrameDecoder big(/*max_frame_bytes=*/4096);
  big.Feed(bytes.data(), bytes.size());
  EXPECT_EQ(big.Next(&out), FrameDecoder::Status::kFrame);
}

TEST(FrameProtocolTest, BadMagicWinsOverLaterLies) {
  // Front-to-back validation: when a header lies about everything, the
  // first lie (magic) is the one reported.
  Frame f = MakeFrame(FrameType::kPing, 1, "");
  std::string bytes = EncodeFrame(f);
  bytes[0] = 'X';
  const uint32_t bogus = 999;
  std::memcpy(&bytes[4], &bogus, 4);
  const uint64_t lie = 1ull << 40;
  std::memcpy(&bytes[16], &lie, 8);
  FrameDecoder dec(1024);
  dec.Feed(bytes.data(), bytes.size());
  Frame out;
  EXPECT_EQ(dec.Next(&out), FrameDecoder::Status::kBadMagic);
}

TEST(FrameProtocolTest, TruncationIsVisibleAsMidFrame) {
  const std::string bytes =
      EncodeFrame(MakeFrame(FrameType::kQuery, 1, "payload"));
  // Cut inside the header, then inside the body: both are MidFrame, not
  // errors — EOF at that point means the peer disconnected mid-frame.
  for (const size_t cut : {size_t{5}, kFrameHeaderSize + 3}) {
    FrameDecoder dec;
    dec.Feed(bytes.data(), cut);
    Frame out;
    EXPECT_EQ(dec.Next(&out), FrameDecoder::Status::kNeedMore);
    EXPECT_TRUE(dec.MidFrame());
    EXPECT_FALSE(dec.Poisoned());
  }
}

TEST(FrameProtocolTest, NamesAreStable) {
  EXPECT_STREQ(FrameTypeName(FrameType::kQuery), "query");
  EXPECT_STREQ(FrameTypeName(FrameType::kDeadlineExceeded),
               "deadline-exceeded");
  EXPECT_STREQ(FrameDecoder::StatusName(FrameDecoder::Status::kBadMagic),
               "bad-magic");
  EXPECT_STREQ(FrameDecoder::StatusName(FrameDecoder::Status::kOversized),
               "oversized");
  EXPECT_TRUE(KnownFrameType(1));
  EXPECT_FALSE(KnownFrameType(15));
  EXPECT_FALSE(KnownFrameType(999));
}

// --- AdmissionQueues --------------------------------------------------------

ServeRequest MakeRequest(size_t charged) {
  ServeRequest req;
  req.frame = MakeFrame(FrameType::kQuery, 1, std::string(charged, 'b'));
  req.respond = [](Frame) {};
  req.charged_bytes = charged;
  return req;
}

TEST(AdmissionQueuesTest, RefusesBeyondQueueDepthWithoutConsuming) {
  AdmissionQueues q(/*workers=*/1, /*max_queue=*/2,
                    /*max_inflight_bytes=*/1 << 20);
  ServeRequest a = MakeRequest(10);
  ServeRequest b = MakeRequest(10);
  ServeRequest c = MakeRequest(10);
  EXPECT_TRUE(q.TryPush(a));
  EXPECT_TRUE(q.TryPush(b));
  EXPECT_FALSE(q.TryPush(c));
  // Refusal must not consume: the caller still owns the frame and sends
  // the OVERLOADED response from it.
  EXPECT_EQ(c.frame.body.size(), 10u);
  EXPECT_TRUE(c.respond != nullptr);
  EXPECT_EQ(q.Depth(), 2u);
}

TEST(AdmissionQueuesTest, ByteBudgetGatesAdmission) {
  AdmissionQueues q(/*workers=*/2, /*max_queue=*/100,
                    /*max_inflight_bytes=*/100);
  ServeRequest a = MakeRequest(60);
  ServeRequest b = MakeRequest(60);
  EXPECT_TRUE(q.TryPush(a));
  EXPECT_FALSE(q.TryPush(b));  // 120 > 100.
  EXPECT_EQ(q.InflightBytes(), 60u);
  // Dequeue frees depth but NOT bytes — the charge is held until the
  // response is produced.
  ServeRequest out;
  ASSERT_TRUE(q.Pop(0, &out));
  EXPECT_FALSE(q.TryPush(b));
  q.Release(60);
  EXPECT_TRUE(q.TryPush(b));
  EXPECT_EQ(q.InflightBytes(), 60u);
}

TEST(AdmissionQueuesTest, ShutdownDrainsQueuedRequestsThenReleasesWorkers) {
  AdmissionQueues q(/*workers=*/1, /*max_queue=*/4, /*max_inflight=*/1 << 20);
  ServeRequest a = MakeRequest(1);
  ServeRequest b = MakeRequest(2);
  EXPECT_TRUE(q.TryPush(a));
  EXPECT_TRUE(q.TryPush(b));
  q.Shutdown();
  ServeRequest refused = MakeRequest(3);
  EXPECT_FALSE(q.TryPush(refused));
  // Every admitted request still drains, in FIFO order, before Pop gives up.
  ServeRequest out;
  ASSERT_TRUE(q.Pop(0, &out));
  EXPECT_EQ(out.charged_bytes, 1u);
  ASSERT_TRUE(q.Pop(0, &out));
  EXPECT_EQ(out.charged_bytes, 2u);
  EXPECT_FALSE(q.Pop(0, &out));
}

TEST(AdmissionQueuesTest, RoundRobinSpreadsAcrossLanes) {
  AdmissionQueues q(/*workers=*/2, /*max_queue=*/4, /*max_inflight=*/1 << 20);
  ServeRequest a = MakeRequest(1);
  ServeRequest b = MakeRequest(2);
  EXPECT_TRUE(q.TryPush(a));
  EXPECT_TRUE(q.TryPush(b));
  q.Shutdown();
  // One request per lane: both workers find exactly one.
  ServeRequest out;
  EXPECT_TRUE(q.Pop(0, &out));
  EXPECT_FALSE(q.Pop(0, &out));
  EXPECT_TRUE(q.Pop(1, &out));
  EXPECT_FALSE(q.Pop(1, &out));
}

TEST(ServeCountersTest, ToJsonCarriesEveryCounter) {
  ServeCounters c;
  c.requests_admitted = 3;
  c.requests_shed = 1;
  c.deadline_exceeded = 2;
  const std::string json = c.ToJson();
  EXPECT_NE(json.find("\"requests_admitted\":3"), std::string::npos) << json;
  EXPECT_NE(json.find("\"requests_shed\":1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"deadline_exceeded\":2"), std::string::npos) << json;
  EXPECT_NE(json.find("\"swap_generations\":0"), std::string::npos) << json;
}

}  // namespace
}  // namespace serve
}  // namespace silkmoth
