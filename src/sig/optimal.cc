#include "sig/optimal.h"

#include <algorithm>

#include "sig/greedy_internal.h"
#include "text/similarity.h"

namespace silkmoth {

std::optional<OptimalSignatureResult> OptimalWeightedSignature(
    const SetRecord& set, const InvertedIndex& index,
    const SchemeParams& params, size_t max_tokens) {
  const std::vector<ElementUnits> units = MakeElementUnits(set, params.phi);
  const std::vector<sig_internal::TokenOcc> tokens =
      sig_internal::CollectTokens(units, index);
  if (tokens.size() > max_tokens || tokens.size() >= 63) return std::nullopt;

  const size_t t = tokens.size();
  std::optional<OptimalSignatureResult> best;

  for (uint64_t mask = 0; mask < (uint64_t{1} << t); ++mask) {
    // Units selected per element under this subset.
    std::vector<size_t> selected(units.size(), 0);
    size_t cost = 0;
    for (size_t i = 0; i < t; ++i) {
      if (!(mask >> i & 1)) continue;
      cost += tokens[i].cost;
      for (const auto& [elem, mult] : tokens[i].occs) selected[elem] += mult;
    }
    if (best && cost >= best->cost) continue;
    double bound_sum = 0.0;
    for (size_t e = 0; e < units.size(); ++e) {
      bound_sum += units[e].BoundAfter(selected[e]);
    }
    if (bound_sum < params.theta - kFloatSlack) {
      OptimalSignatureResult r;
      r.cost = cost;
      for (size_t i = 0; i < t; ++i) {
        if (mask >> i & 1) r.tokens.push_back(tokens[i].token);
      }
      std::sort(r.tokens.begin(), r.tokens.end());
      best = std::move(r);
    }
  }
  return best;
}

}  // namespace silkmoth
