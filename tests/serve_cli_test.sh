#!/usr/bin/env bash
# End-to-end serve daemon protocol test against the real silkmoth_cli
# binary: socket serving parity with `query --snapshot`, ping/status,
# malformed-frame handling (the daemon answers a typed error and keeps
# serving — the never-crash contract), SIGHUP snapshot hot-swap, restart
# after kill -9 (stale socket replacement), live ingest (delta parity with
# the compacted equivalent + SIGHUP drain to a compacted generation),
# per-request deadlines (exit 6 with a partial-coverage stamp), overload
# shedding (exit 5), the shutdown frame, and the stdio transport's exit
# codes.
#
# Usage: serve_cli_test.sh /path/to/silkmoth_cli
set -euo pipefail

CLI="${1:?usage: serve_cli_test.sh /path/to/silkmoth_cli}"
TMP="$(mktemp -d)"
SERVE_PID=""

cleanup() {
  [ -n "$SERVE_PID" ] && kill -9 "$SERVE_PID" 2> /dev/null || true
  rm -rf "$TMP"
}
trap cleanup EXIT

fail() { echo "FAIL: $*" >&2; exit 1; }

# Waits until a ping through $1 answers, or fails after ~5s.
wait_ready() {
  local sock="$1"
  for _ in $(seq 1 100); do
    if "$CLI" serve-client --connect "$sock" --ping > /dev/null 2>&1; then
      return 0
    fi
    sleep 0.05
  done
  fail "daemon on $sock never became ready"
}

# Stops the daemon in $SERVE_PID, tolerating an already-dead process.
stop_daemon() {
  [ -n "$SERVE_PID" ] || return 0
  kill -TERM "$SERVE_PID" 2> /dev/null || true
  wait "$SERVE_PID" 2> /dev/null || true
  SERVE_PID=""
}

# --- setup ------------------------------------------------------------------

"$CLI" generate schema 30 "$TMP/corpus.txt" > /dev/null
"$CLI" build --data "$TMP/corpus.txt" --out "$TMP/corpus.snap" --shards 2 \
  > /dev/null
head -n 4 "$TMP/corpus.txt" > "$TMP/queries.txt"
SOCK="$TMP/serve.sock"

"$CLI" serve --snapshot "$TMP/corpus.snap" --listen "$SOCK" --workers 2 \
  2> "$TMP/serve.log" &
SERVE_PID=$!
wait_ready "$SOCK"

# --- ping / status ----------------------------------------------------------

"$CLI" serve-client --connect "$SOCK" --ping > "$TMP/ping.json"
grep -q '"generation":1' "$TMP/ping.json" \
  || fail "ping: missing generation 1: $(cat "$TMP/ping.json")"
echo "ok: ping answers with generation 1"

# --- serving parity ---------------------------------------------------------
# A served response must be byte-identical to `query --snapshot` output for
# the same payload (comment lines stripped — frames carry pairs only).

"$CLI" serve-client --connect "$SOCK" --input "$TMP/queries.txt" \
  > "$TMP/served.txt"
"$CLI" query --snapshot "$TMP/corpus.snap" --input "$TMP/queries.txt" \
  | grep -v '^#' > "$TMP/direct.txt"
cmp "$TMP/served.txt" "$TMP/direct.txt" \
  || fail "served response differs from query --snapshot output"
[ -s "$TMP/served.txt" ] || fail "parity payload produced no pairs"
echo "ok: served response byte-identical to query --snapshot"

# --- malformed frames (python3 speaks raw bytes; skipped without it) --------

if command -v python3 > /dev/null 2>&1; then
  # Each case opens a fresh connection, misbehaves, and reports what came
  # back; after every one the daemon must still answer a ping.
  malformed() {
    python3 - "$SOCK" "$1" <<'EOF'
import socket, struct, sys
sock_path, case = sys.argv[1], sys.argv[2]
s = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
s.connect(sock_path)
MAGIC = 0x51524D53
if case == "garbage":
    s.sendall(b"this is not a frame, not even close....")
elif case == "bad-type":
    s.sendall(struct.pack("<IIQQ", MAGIC, 999, 1, 0))
elif case == "oversized":
    s.sendall(struct.pack("<IIQQ", MAGIC, 1, 1, 1 << 40))
elif case == "mid-frame":
    s.sendall(struct.pack("<IIQQ", MAGIC, 1, 1, 64)[:20])
    s.close()
    sys.exit(0)
s.settimeout(5)
hdr = b""
while len(hdr) < 24:
    chunk = s.recv(24 - len(hdr))
    if not chunk:
        sys.exit("connection closed before an error frame arrived")
    hdr += chunk
magic, ftype, rid, blen = struct.unpack("<IIQQ", hdr)
assert magic == MAGIC, hex(magic)
assert ftype == 18, f"expected kError(18), got {ftype}"  # typed error
body = b""
while len(body) < blen:
    chunk = s.recv(blen - len(body))
    if not chunk:
        break
    body += chunk
print(body.decode(errors="replace").strip())
EOF
  }

  out="$(malformed garbage)"
  echo "$out" | grep -q "bad-magic" || fail "garbage: expected bad-magic, got: $out"
  out="$(malformed bad-type)"
  echo "$out" | grep -q "bad-type" || fail "bad-type: got: $out"
  out="$(malformed oversized)"
  echo "$out" | grep -q "oversized" || fail "oversized: got: $out"
  malformed mid-frame
  # The never-crash contract: every violation above hit its own connection
  # only — the daemon still serves.
  "$CLI" serve-client --connect "$SOCK" --ping > /dev/null \
    || fail "daemon died after malformed frames"
  echo "ok: malformed frames answered with typed errors; daemon survives"
else
  echo "skip: python3 not found; malformed-frame matrix not run"
fi

# --- SIGHUP hot-swap --------------------------------------------------------

kill -HUP "$SERVE_PID"
swapped=""
for _ in $(seq 1 100); do
  if "$CLI" serve-client --connect "$SOCK" --ping 2> /dev/null \
      | grep -q '"generation":2'; then
    swapped=1
    break
  fi
  sleep 0.05
done
[ -n "$swapped" ] || fail "SIGHUP: generation never reached 2"
grep -q "hot-swap: generation 2" "$TMP/serve.log" \
  || fail "SIGHUP: missing hot-swap log line"
# Serving continues byte-identically across the swap (same snapshot file).
"$CLI" serve-client --connect "$SOCK" --input "$TMP/queries.txt" \
  > "$TMP/served2.txt"
cmp "$TMP/served.txt" "$TMP/served2.txt" \
  || fail "responses changed across a same-file hot-swap"
echo "ok: SIGHUP hot-swap to generation 2, serving uninterrupted"

# --- kill -9, restart on the same socket path -------------------------------
# A stale socket file must be silently replaced: restart needs no recovery.

kill -9 "$SERVE_PID"
wait "$SERVE_PID" 2> /dev/null || true
SERVE_PID=""
[ -S "$SOCK" ] || fail "kill -9 should leave the stale socket file behind"
"$CLI" serve --snapshot "$TMP/corpus.snap" --listen "$SOCK" --workers 2 \
  2> "$TMP/serve_restart.log" &
SERVE_PID=$!
wait_ready "$SOCK"
"$CLI" serve-client --connect "$SOCK" --input "$TMP/queries.txt" \
  > "$TMP/served3.txt"
cmp "$TMP/served.txt" "$TMP/served3.txt" \
  || fail "restarted daemon serves different responses"
echo "ok: restart over a stale socket after kill -9"

# --- shutdown frame ---------------------------------------------------------

"$CLI" serve-client --connect "$SOCK" --shutdown > /dev/null \
  || fail "shutdown frame: client expected exit 0"
wait "$SERVE_PID" 2> /dev/null && rc=0 || rc=$?
[ "$rc" -eq 0 ] || fail "shutdown frame: daemon expected exit 0, got $rc"
SERVE_PID=""
echo "ok: shutdown frame drains and exits 0"

# --- live ingest: delta parity + SIGHUP drain to a compacted generation -----
# A kIngest frame appends to the daemon's in-memory delta shard; queries
# against the live (base + delta) state must be byte-identical to
# `query --snapshot` over the compacted equivalent, and a SIGHUP swap to
# that compacted snapshot must drain the delta cleanly (delta counters
# zero, compactions bumped, responses unchanged).

"$CLI" generate schema 36 "$TMP/bigger.txt" > /dev/null
awk 'BEGIN{RS=""; ORS="\n\n"} NR>30' "$TMP/bigger.txt" > "$TMP/batch.txt"
cp "$TMP/corpus.snap" "$TMP/dyn.snap"
"$CLI" serve --snapshot "$TMP/dyn.snap" --listen "$SOCK" --workers 2 \
  2> "$TMP/serve_dyn.log" &
SERVE_PID=$!
wait_ready "$SOCK"

"$CLI" serve-client --connect "$SOCK" --ingest "$TMP/batch.txt" \
  > "$TMP/ingested.json" || fail "ingest frame: client expected exit 0"
grep -q '"generation":2' "$TMP/ingested.json" \
  || fail "ingest: receipt missing generation 2: $(cat "$TMP/ingested.json")"
grep -q '"delta_sets":6' "$TMP/ingested.json" \
  || fail "ingest: receipt missing delta_sets 6: $(cat "$TMP/ingested.json")"
"$CLI" serve-client --connect "$SOCK" --input "$TMP/queries.txt" \
  > "$TMP/dyn_live.txt"

# The compacted equivalent, built batch-side from the same base + batch.
"$CLI" ingest --snapshot "$TMP/dyn.snap" --input "$TMP/batch.txt" \
  --delta-out "$TMP/dyn_delta.txt" > /dev/null
"$CLI" compact --snapshot "$TMP/dyn.snap" --out "$TMP/dyn_next.snap" \
  --delta-file "$TMP/dyn_delta.txt" > /dev/null
"$CLI" query --snapshot "$TMP/dyn_next.snap" --input "$TMP/queries.txt" \
  | grep -v '^#' > "$TMP/dyn_direct.txt"
cmp "$TMP/dyn_live.txt" "$TMP/dyn_direct.txt" \
  || fail "ingest-then-query differs from the compacted equivalent"
"$CLI" serve-client --connect "$SOCK" --ping > "$TMP/dyn_ping.json"
grep -q '"delta_sets":6' "$TMP/dyn_ping.json" \
  || fail "ingest: delta_sets counter not reported: $(cat "$TMP/dyn_ping.json")"
echo "ok: ingest-then-query byte-identical to the compacted equivalent"

# SIGHUP to the compacted snapshot: the delta drains (it now lives in the
# base), compactions bumps, and responses stay byte-identical.
cp "$TMP/dyn_next.snap" "$TMP/dyn.snap"
kill -HUP "$SERVE_PID"
drained=""
for _ in $(seq 1 100); do
  if "$CLI" serve-client --connect "$SOCK" --ping 2> /dev/null \
      | grep -q '"generation":3'; then
    drained=1
    break
  fi
  sleep 0.05
done
[ -n "$drained" ] || fail "ingest swap: generation never reached 3"
"$CLI" serve-client --connect "$SOCK" --ping > "$TMP/dyn_ping2.json"
grep -q '"delta_sets":0' "$TMP/dyn_ping2.json" \
  || fail "ingest swap: delta did not drain: $(cat "$TMP/dyn_ping2.json")"
grep -q '"compactions":1' "$TMP/dyn_ping2.json" \
  || fail "ingest swap: compactions not counted: $(cat "$TMP/dyn_ping2.json")"
"$CLI" serve-client --connect "$SOCK" --input "$TMP/queries.txt" \
  > "$TMP/dyn_live2.txt"
cmp "$TMP/dyn_live2.txt" "$TMP/dyn_direct.txt" \
  || fail "responses changed across the drain swap"
"$CLI" serve-client --connect "$SOCK" --shutdown > /dev/null
wait "$SERVE_PID" 2> /dev/null || true
SERVE_PID=""
echo "ok: SIGHUP to compacted snapshot drains the delta cleanly"

# --- per-request deadline: exit 6 + partial-coverage stamp ------------------
# serve-shard:sleep paces the request past its 50ms budget after shard 0,
# so the response deterministically covers 1 of 2 shards.

SILKMOTH_FAULT="serve-shard:sleep:400" \
  "$CLI" serve --snapshot "$TMP/corpus.snap" --listen "$SOCK" --workers 1 \
  --request-deadline 0.05 2> "$TMP/serve_deadline.log" &
SERVE_PID=$!
wait_ready "$SOCK"
rc=0
"$CLI" serve-client --connect "$SOCK" --input "$TMP/queries.txt" \
  > "$TMP/deadline.txt" 2> "$TMP/deadline.err" || rc=$?
[ "$rc" -eq 6 ] || fail "deadline: expected exit 6, got $rc"
grep -q "# partial coverage: 1 of 2 shards" "$TMP/deadline.txt" \
  || fail "deadline: missing coverage stamp: $(cat "$TMP/deadline.txt")"
grep -q "# missing shards: 1" "$TMP/deadline.txt" \
  || fail "deadline: missing missing-shards line"
stop_daemon
echo "ok: deadline exceeded answers exit 6 with partial coverage"

# --- overload shedding: exit 5 ----------------------------------------------
# The in-flight byte budget admits exactly one queries.txt payload, and a
# wedged worker (worker-dequeue:sleep) holds that charge — the second
# client must shed deterministically.

PAYLOAD_BYTES=$(wc -c < "$TMP/queries.txt")
SILKMOTH_FAULT="worker-dequeue:sleep:3000" \
  "$CLI" serve --snapshot "$TMP/corpus.snap" --listen "$SOCK" --workers 1 \
  --max-inflight "$PAYLOAD_BYTES" 2> "$TMP/serve_shed.log" &
SERVE_PID=$!
wait_ready "$SOCK"
"$CLI" serve-client --connect "$SOCK" --input "$TMP/queries.txt" \
  > /dev/null 2>&1 &
CLIENT1=$!
sleep 0.4  # Let the first request be admitted and charged.
rc=0
"$CLI" serve-client --connect "$SOCK" --input "$TMP/queries.txt" \
  > /dev/null 2> "$TMP/shed.err" || rc=$?
[ "$rc" -eq 5 ] || fail "shed: expected exit 5, got $rc"
grep -q "overloaded" "$TMP/shed.err" \
  || fail "shed: missing overloaded diagnostic: $(cat "$TMP/shed.err")"
wait "$CLIENT1" 2> /dev/null || fail "shed: the admitted request must still serve"
stop_daemon
echo "ok: overload shed answers exit 5; admitted work still completes"

# --- stdio transport --------------------------------------------------------

# Clean EOF on an empty stream: exit 0.
rc=0
"$CLI" serve --snapshot "$TMP/corpus.snap" --stdio < /dev/null \
  > /dev/null 2>> "$TMP/stdio.log" || rc=$?
[ "$rc" -eq 0 ] || fail "stdio clean EOF: expected exit 0, got $rc"

# A non-frame byte stream: one typed error frame out, exit 3.
rc=0
printf 'garbage bytes, not frames' \
  | "$CLI" serve --snapshot "$TMP/corpus.snap" --stdio \
  > "$TMP/stdio_err.bin" 2>> "$TMP/stdio.log" || rc=$?
[ "$rc" -eq 3 ] || fail "stdio garbage: expected exit 3, got $rc"
[ -s "$TMP/stdio_err.bin" ] || fail "stdio garbage: no error frame written"

if command -v python3 > /dev/null 2>&1; then
  # Ping + shutdown over stdio: pong then goodbye, exit 0.
  python3 - <<'EOF' > "$TMP/stdio_in.bin"
import struct, sys
MAGIC = 0x51524D53
sys.stdout.buffer.write(struct.pack("<IIQQ", MAGIC, 2, 1, 0))  # kPing
sys.stdout.buffer.write(struct.pack("<IIQQ", MAGIC, 3, 2, 0))  # kShutdown
EOF
  rc=0
  "$CLI" serve --snapshot "$TMP/corpus.snap" --stdio \
    < "$TMP/stdio_in.bin" > "$TMP/stdio_out.bin" 2>> "$TMP/stdio.log" || rc=$?
  [ "$rc" -eq 0 ] || fail "stdio shutdown: expected exit 0, got $rc"
  python3 - "$TMP/stdio_out.bin" <<'EOF'
import struct, sys
data = open(sys.argv[1], "rb").read()
types = []
while data:
    magic, ftype, rid, blen = struct.unpack("<IIQQ", data[:24])
    assert magic == 0x51524D53
    types.append(ftype)
    data = data[24 + blen:]
assert types == [17, 17], f"expected [pong, pong(goodbye)], got {types}"
EOF
  echo "ok: stdio transport (EOF 0, garbage 3, ping/shutdown 0)"
else
  echo "ok: stdio transport (EOF 0, garbage 3); python3 absent for frame check"
fi

echo "PASS: serve daemon protocol"
