#include "filter/check_filter.h"

#include <gtest/gtest.h>

#include "paper_example.h"
#include "sig/scheme.h"
#include "text/tokenizer.h"

namespace silkmoth {
namespace {

using test::MakePaperExample;
using test::T;

Options ContainOptions(double delta = 0.7, double alpha = 0.0) {
  Options o;
  o.metric = Relatedness::kContainment;
  o.phi = SimilarityKind::kJaccard;
  o.delta = delta;
  o.alpha = alpha;
  return o;
}

Signature PaperSignature(const test::PaperExample& ex,
                         const InvertedIndex& index) {
  SchemeParams p;
  p.scheme = SignatureSchemeKind::kWeighted;
  p.phi = SimilarityKind::kJaccard;
  p.theta = 2.1;
  p.alpha = 0.0;
  return WeightedSignature(ex.ref, index, p);
}

const Candidate* Find(const std::vector<Candidate>& cands, uint32_t set_id) {
  for (const Candidate& c : cands) {
    if (c.set_id == set_id) return &c;
  }
  return nullptr;
}

TEST(CheckFilterTest, PaperExample8) {
  // Candidates from the signature are S2, S3, S4; the check filter prunes S2
  // (all matches weak) and keeps S3 and S4.
  auto ex = MakePaperExample();
  InvertedIndex index;
  index.Build(ex.data);
  Signature sig = PaperSignature(ex, index);

  CheckFilterStats stats;
  auto cands = SelectAndCheckCandidates(ex.ref, sig, ex.data, index,
                                        ContainOptions(), true, &stats);
  EXPECT_EQ(stats.initial_candidates, 3u);  // S2, S3, S4 (S1 never touched).
  EXPECT_EQ(stats.check_filtered, 1u);
  ASSERT_EQ(cands.size(), 2u);
  EXPECT_EQ(cands[0].set_id, 2u);  // S3
  EXPECT_EQ(cands[1].set_id, 3u);  // S4
}

TEST(CheckFilterTest, PaperExample8Similarities) {
  // Jac(r1, s31) = 5/6 >= 0.8 (strong); Jac(r3, s32) = 2/7 < 0.6 (weak).
  auto ex = MakePaperExample();
  InvertedIndex index;
  index.Build(ex.data);
  Signature sig = PaperSignature(ex, index);
  auto cands = SelectAndCheckCandidates(ex.ref, sig, ex.data, index,
                                        ContainOptions(), true);
  const Candidate* s3 = Find(cands, 2);
  ASSERT_NE(s3, nullptr);
  ASSERT_EQ(s3->best.size(), 2u);  // Elements r1 and r3 probed S3.
  EXPECT_EQ(s3->best[0].first, 0u);
  EXPECT_NEAR(s3->best[0].second, 5.0 / 6.0, 1e-12);
  EXPECT_EQ(s3->best[1].first, 2u);
  EXPECT_NEAR(s3->best[1].second, 2.0 / 7.0, 1e-12);
  EXPECT_TRUE(s3->strong);

  const Candidate* s4 = Find(cands, 3);
  ASSERT_NE(s4, nullptr);
  // r1 vs s41 = 0.8; r2 vs s42 = 1.0 and vs s43 = 3/7 (max is 1.0). r3's
  // signature tokens t11/t12 have no postings in S4, so only two entries.
  ASSERT_EQ(s4->best.size(), 2u);
  EXPECT_EQ(s4->best[0].first, 0u);
  EXPECT_NEAR(s4->best[0].second, 0.8, 1e-12);
  EXPECT_EQ(s4->best[1].first, 1u);
  EXPECT_NEAR(s4->best[1].second, 1.0, 1e-12);
}

TEST(CheckFilterTest, DisabledCheckKeepsWeakCandidates) {
  auto ex = MakePaperExample();
  InvertedIndex index;
  index.Build(ex.data);
  Signature sig = PaperSignature(ex, index);
  auto cands = SelectAndCheckCandidates(ex.ref, sig, ex.data, index,
                                        ContainOptions(), false);
  EXPECT_EQ(cands.size(), 3u);  // S2 kept too.
  EXPECT_NE(Find(cands, 1), nullptr);
}

TEST(CheckFilterTest, SizeFilterForSimilarity) {
  // Under SET-SIMILARITY with δ=0.7 and |R|=3, candidate sizes must lie in
  // [2.1, 4.28] -> {3, 4} elements. Add a 1-element set containing the rare
  // signature tokens t11/t12, which the greedy always selects.
  auto ex = MakePaperExample();
  SetRecord tiny;
  tiny.arena = std::make_shared<ElementArena>();
  tiny.elements.push_back(
      Tokenizer(TokenizerKind::kWord)
          .MakeElement("Chicago IL", ex.data.dict.get(), tiny.arena.get()));
  ex.data.sets.push_back(tiny);
  InvertedIndex index;
  index.Build(ex.data);
  Signature sig = PaperSignature(ex, index);

  Options sim;
  sim.metric = Relatedness::kSimilarity;
  sim.phi = SimilarityKind::kJaccard;
  sim.delta = 0.7;
  CheckFilterStats stats;
  auto cands = SelectAndCheckCandidates(ex.ref, sig, ex.data, index, sim,
                                        false, &stats);
  EXPECT_EQ(stats.size_filtered, 1u);
  EXPECT_EQ(Find(cands, 4), nullptr);  // The tiny set is gone.
}

TEST(CheckFilterTest, ContainmentSizeRule) {
  // Under SET-CONTAINMENT, candidates smaller than |R| are dropped when
  // enforcement is on (Definition 2).
  auto ex = MakePaperExample();
  SetRecord small;
  small.elements.push_back(ex.data.sets[1].elements[0]);  // Has t8.
  small.elements.push_back(ex.data.sets[1].elements[1]);
  ex.data.sets.push_back(small);  // 2 elements < |R| = 3.
  InvertedIndex index;
  index.Build(ex.data);
  Signature sig = PaperSignature(ex, index);

  Options opt = ContainOptions();
  auto with_rule =
      SelectAndCheckCandidates(ex.ref, sig, ex.data, index, opt, false);
  EXPECT_EQ(Find(with_rule, 4), nullptr);

  opt.enforce_containment_size = false;
  auto without_rule =
      SelectAndCheckCandidates(ex.ref, sig, ex.data, index, opt, false);
  EXPECT_NE(Find(without_rule, 4), nullptr);
}

TEST(CheckFilterTest, CandidatesSortedBySetId) {
  auto ex = MakePaperExample();
  InvertedIndex index;
  index.Build(ex.data);
  Signature sig = PaperSignature(ex, index);
  auto cands = SelectAndCheckCandidates(ex.ref, sig, ex.data, index,
                                        ContainOptions(), false);
  for (size_t i = 1; i < cands.size(); ++i) {
    EXPECT_LT(cands[i - 1].set_id, cands[i].set_id);
  }
}

TEST(CheckFilterTest, AllCandidatesFallback) {
  auto ex = MakePaperExample();
  auto cands = AllCandidates(ex.ref, ex.data, ContainOptions());
  EXPECT_EQ(cands.size(), 4u);
  for (const Candidate& c : cands) {
    EXPECT_TRUE(c.strong);
    EXPECT_TRUE(c.best.empty());
  }
}

TEST(CheckFilterTest, BestEntriesSortedUniquePerElement) {
  auto ex = MakePaperExample();
  InvertedIndex index;
  index.Build(ex.data);
  Signature sig = PaperSignature(ex, index);
  auto cands = SelectAndCheckCandidates(ex.ref, sig, ex.data, index,
                                        ContainOptions(), false);
  for (const Candidate& c : cands) {
    for (size_t i = 1; i < c.best.size(); ++i) {
      EXPECT_LT(c.best[i - 1].first, c.best[i].first);
    }
  }
}

}  // namespace
}  // namespace silkmoth
