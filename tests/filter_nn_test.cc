#include "filter/nn_filter.h"

#include <gtest/gtest.h>

#include "matching/verifier.h"
#include "paper_example.h"
#include "sig/scheme.h"

namespace silkmoth {
namespace {

using test::MakePaperExample;

Options ContainOptions(double delta = 0.7, double alpha = 0.0) {
  Options o;
  o.metric = Relatedness::kContainment;
  o.phi = SimilarityKind::kJaccard;
  o.delta = delta;
  o.alpha = alpha;
  return o;
}

Signature PaperSignature(const test::PaperExample& ex,
                         const InvertedIndex& index) {
  SchemeParams p;
  p.scheme = SignatureSchemeKind::kWeighted;
  p.phi = SimilarityKind::kJaccard;
  p.theta = 2.1;
  p.alpha = 0.0;
  return WeightedSignature(ex.ref, index, p);
}

TEST(NnSearchTest, FindsExactNearestNeighbor) {
  // Example 9: the nearest neighbor of r2 in S3 is s33 with Jac = 0.125.
  auto ex = MakePaperExample();
  InvertedIndex index;
  index.Build(ex.data);
  const double nn = NnSearch(ex.ref.elements[1], /*set_id=*/2, ex.data, index,
                             ContainOptions());
  EXPECT_NEAR(nn, 0.125, 1e-12);
}

TEST(NnSearchTest, MatchesBruteForceMaximum) {
  auto ex = MakePaperExample();
  InvertedIndex index;
  index.Build(ex.data);
  const Options opt = ContainOptions();
  const ElementSimilarity* sim = GetSimilarity(opt.phi);
  for (const Element& r : ex.ref.elements) {
    for (uint32_t s = 0; s < ex.data.sets.size(); ++s) {
      double expected = 0.0;
      for (const Element& e : ex.data.sets[s].elements) {
        expected = std::max(expected, sim->Score(r, e));
      }
      EXPECT_NEAR(NnSearch(r, s, ex.data, index, opt), expected, 1e-12)
          << "set " << s;
    }
  }
}

TEST(NnSearchTest, AlphaCollapsesWeakNeighbors) {
  auto ex = MakePaperExample();
  InvertedIndex index;
  index.Build(ex.data);
  Options opt = ContainOptions(0.7, /*alpha=*/0.9);
  // r2's best neighbor in S3 is 0.125 < 0.9 -> 0 under φ_α.
  EXPECT_DOUBLE_EQ(NnSearch(ex.ref.elements[1], 2, ex.data, index, opt), 0.0);
}

TEST(NnFilterTest, PaperExample9PrunesS3KeepsS4) {
  auto ex = MakePaperExample();
  InvertedIndex index;
  index.Build(ex.data);
  Signature sig = PaperSignature(ex, index);
  const Options opt = ContainOptions();
  auto cands = SelectAndCheckCandidates(ex.ref, sig, ex.data, index, opt,
                                        true);
  ASSERT_EQ(cands.size(), 2u);  // S3, S4 from the check filter.

  NnFilterStats stats;
  auto refined = NnFilterCandidates(ex.ref, sig, std::move(cands), ex.data,
                                    index, opt, &stats);
  ASSERT_EQ(refined.size(), 1u);
  EXPECT_EQ(refined[0].set_id, 3u);  // Only S4 survives.
  EXPECT_EQ(stats.nn_filtered, 1u);
}

TEST(NnFilterTest, InitialBoundPrunesWithoutAnySearch) {
  // For S3 the reused check-filter similarities already push the total
  // estimate (5/6 + 0.6 + 0.6 ≈ 2.03) below θ = 2.1, so S3 is pruned before
  // any NN search; S4 needs exactly one search (r3). This is the
  // "computation reuse" of Section 5.2 doing its job.
  auto ex = MakePaperExample();
  InvertedIndex index;
  index.Build(ex.data);
  Signature sig = PaperSignature(ex, index);
  const Options opt = ContainOptions();
  auto cands = SelectAndCheckCandidates(ex.ref, sig, ex.data, index, opt,
                                        true);
  NnFilterStats stats;
  auto refined = NnFilterCandidates(ex.ref, sig, std::move(cands), ex.data,
                                    index, opt, &stats);
  ASSERT_EQ(refined.size(), 1u);
  EXPECT_EQ(stats.nn_searches, 1u);
}

TEST(NnFilterTest, EarlyTerminationMidScan) {
  // Reference with four elements; the candidate set matches only r1. After
  // the NN searches for r2 and r3 both return 0, the estimate falls below
  // θ = 2.8 with r4 still unexplored: the filter must early-terminate.
  RawSets raw = {
      {"a1 a2 a3 a4", "q1 q2", "q3 q4", "q5 q6"},
  };
  // Fillers make the b/c/d tokens expensive so the greedy signature keeps
  // probing tokens a1..a4 (cost 1) plus one b token.
  for (int f = 0; f < 5; ++f) {
    raw.push_back({"b1 b2 b3 b4", "c1 c2 c3 c4", "d1 d2 d3 d4", "p1 p2"});
  }
  Collection data = BuildCollection(raw, TokenizerKind::kWord);
  SetRecord ref = BuildReference(
      {"a1 a2 a3 a4", "b1 b2 b3 b4", "c1 c2 c3 c4", "d1 d2 d3 d4"},
      TokenizerKind::kWord, 0, &data);
  InvertedIndex index;
  index.Build(data);

  Options opt = ContainOptions(0.7);  // θ = 2.8.
  SchemeParams p;
  p.scheme = SignatureSchemeKind::kWeighted;
  p.phi = SimilarityKind::kJaccard;
  p.theta = 2.8;
  Signature sig = WeightedSignature(ref, index, p);
  ASSERT_TRUE(sig.valid);

  auto cands = SelectAndCheckCandidates(ref, sig, data, index, opt, true);
  NnFilterStats stats;
  auto refined = NnFilterCandidates(ref, sig, std::move(cands), data, index,
                                    opt, &stats);
  EXPECT_GE(stats.early_terminations, 1u);
  // Set 0 (the a-set) must be pruned: only r1 matches it.
  for (const Candidate& c : refined) EXPECT_NE(c.set_id, 0u);
}

TEST(NnFilterTest, NeverPrunesTrulyRelatedSets) {
  // Cross-check on the paper data across thresholds: any set whose true
  // matching score reaches θ must survive the NN filter.
  auto ex = MakePaperExample();
  InvertedIndex index;
  index.Build(ex.data);
  for (double delta : {0.3, 0.5, 0.7, 0.9}) {
    Options opt = ContainOptions(delta);
    SchemeParams p;
    p.scheme = SignatureSchemeKind::kWeighted;
    p.phi = SimilarityKind::kJaccard;
    p.theta = delta * 3;
    Signature sig = WeightedSignature(ex.ref, index, p);
    auto cands = SelectAndCheckCandidates(ex.ref, sig, ex.data, index, opt,
                                          true);
    auto refined = NnFilterCandidates(ex.ref, sig, std::move(cands), ex.data,
                                      index, opt);
    // Ground truth via exhaustive matching.
    MaxMatchingVerifier verifier(GetSimilarity(opt.phi), 0.0, false);
    for (uint32_t s = 0; s < ex.data.sets.size(); ++s) {
      const double m = verifier.Score(ex.ref, ex.data.sets[s]);
      if (m >= p.theta) {
        bool survived = false;
        for (const Candidate& c : refined) survived |= c.set_id == s;
        EXPECT_TRUE(survived) << "delta=" << delta << " set=" << s;
      }
    }
  }
}

TEST(NnFilterTest, EmptyCandidateListIsFine) {
  auto ex = MakePaperExample();
  InvertedIndex index;
  index.Build(ex.data);
  Signature sig = PaperSignature(ex, index);
  auto refined = NnFilterCandidates(ex.ref, sig, {}, ex.data, index,
                                    ContainOptions());
  EXPECT_TRUE(refined.empty());
}

}  // namespace
}  // namespace silkmoth
