#!/usr/bin/env python3
"""Diffs the deterministic fields of two BENCH_*.json reports.

Everything outside the top-level "timing" key is deterministic by contract
(same spec, same seeds => identical values), so any difference between a
committed baseline and a freshly regenerated report is a real behavior
change, not noise. Differences under "funnel", "results", or
"per_shard_results" are flagged as REGRESSION lines — those mean the
filter/verification pipeline did different work or returned different pairs;
everything else (workload/corpus/requests fields) is flagged as DRIFT, which
usually means the spec or registry changed without the baseline being
regenerated.

Usage: bench_report_diff.py BASELINE.json CURRENT.json
Exits 0 when the deterministic fields match, 1 with one line per difference
otherwise, 2 on unreadable input.
"""

import json
import sys

# Subtrees whose differences indicate a pipeline-behavior regression rather
# than spec drift.
REGRESSION_ROOTS = ("funnel", "results", "per_shard_results")


def flatten(node, prefix=()):
    """Yields (path_tuple, leaf_value) pairs for every leaf of a JSON tree."""
    if isinstance(node, dict):
        for key in sorted(node):
            yield from flatten(node[key], prefix + (key,))
    elif isinstance(node, list):
        yield prefix + ("#len",), len(node)
        for i, item in enumerate(node):
            yield from flatten(item, prefix + (str(i),))
    else:
        yield prefix, node


def load_deterministic(path):
    with open(path, encoding="utf-8") as f:
        doc = json.load(f)
    doc.pop("timing", None)  # The one nondeterministic subtree, by contract.
    return dict(flatten(doc))


def main(argv):
    if len(argv) != 3:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    baseline_path, current_path = argv[1], argv[2]
    try:
        baseline = load_deterministic(baseline_path)
        current = load_deterministic(current_path)
    except (OSError, json.JSONDecodeError) as e:
        print(f"unreadable report: {e}", file=sys.stderr)
        return 2

    diffs = []
    for path in sorted(set(baseline) | set(current), key=".".join):
        b = baseline.get(path, "<missing>")
        c = current.get(path, "<missing>")
        if b == c and type(b) is type(c):
            continue
        kind = "REGRESSION" if path[0] in REGRESSION_ROOTS else "DRIFT"
        diffs.append(f"{kind}: {'.'.join(path)}: "
                     f"baseline={b!r} current={c!r}")

    for line in diffs:
        print(line, file=sys.stderr)
    if diffs:
        print(
            f"{len(diffs)} deterministic field(s) differ between "
            f"{baseline_path} and {current_path}", file=sys.stderr)
        return 1
    print(f"ok: deterministic fields of {baseline_path} and "
          f"{current_path} match")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
