// Round-trip differential properties for the snapshot subsystem, on
// randomized corpora × {similarity, containment, edit} × shard counts:
//
//  1. Save→Load reproduces the token dictionary, the tokenized collection,
//     and every shard's CSR arrays (offsets_ / postings_) exactly — and the
//     snapshot builder's shards are identical to ShardedEngine's shards for
//     the same shard count (same ComputeShardRanges partition, same CSR).
//  2. Discovery driven from a snapshot-loaded state (DiscoverShardSelf per
//     shard + MergeShardResults) is byte-identical — ids and exact scores —
//     to a fresh in-memory ShardedEngine::DiscoverSelf, with matching
//     per-shard funnel counters.
//  3. The shard-result file format round-trips pairs (exact doubles) and
//     funnel counters.

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/engine.h"
#include "core/sharded_engine.h"
#include "datagen/builders.h"
#include "datagen/dblp.h"
#include "snapshot/shard_runner.h"
#include "snapshot/snapshot.h"
#include "text/similarity.h"

namespace silkmoth {
namespace {

struct WorkloadConfig {
  const char* name;
  Relatedness metric;
  SimilarityKind phi;
  double delta;
  double alpha;
};

const WorkloadConfig kWorkloads[] = {
    {"similarity-jaccard", Relatedness::kSimilarity, SimilarityKind::kJaccard,
     0.6, 0.0},
    {"containment-jaccard", Relatedness::kContainment,
     SimilarityKind::kJaccard, 0.7, 0.0},
    {"similarity-eds", Relatedness::kSimilarity, SimilarityKind::kEds, 0.5,
     0.6},
};

Options MakeOptions(const WorkloadConfig& cfg, int num_shards) {
  Options opt;
  opt.metric = cfg.metric;
  opt.phi = cfg.phi;
  opt.delta = cfg.delta;
  opt.alpha = cfg.alpha;
  opt.num_shards = num_shards;
  opt.num_threads = 2;
  if (IsEditSimilarity(cfg.phi)) opt.q = MaxQForAlpha(cfg.alpha);
  return opt;
}

Collection MakeData(const WorkloadConfig& cfg, size_t sets, uint64_t seed) {
  DblpParams p;
  p.num_titles = sets;
  p.vocabulary = 50;
  p.min_words = 2;
  p.max_words = 6;
  p.duplicate_rate = 0.35;
  p.typo_rate = 0.3;
  p.seed = seed;
  const Options opt = MakeOptions(cfg, 1);
  if (IsEditSimilarity(cfg.phi)) {
    return BuildCollection(GenerateDblpSets(p), TokenizerKind::kQGram,
                           opt.EffectiveQ());
  }
  return BuildCollection(GenerateDblpSets(p), TokenizerKind::kWord);
}

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/silkmoth_roundtrip_" + name;
}

void ExpectSameIndex(const InvertedIndex& a, const InvertedIndex& b,
                     const std::string& what) {
  ASSERT_EQ(a.RawOffsets().size(), b.RawOffsets().size()) << what;
  ASSERT_EQ(a.RawPostings().size(), b.RawPostings().size()) << what;
  EXPECT_TRUE(std::equal(a.RawOffsets().begin(), a.RawOffsets().end(),
                         b.RawOffsets().begin()))
      << what << ": offsets differ";
  EXPECT_TRUE(std::equal(a.RawPostings().begin(), a.RawPostings().end(),
                         b.RawPostings().begin()))
      << what << ": postings differ";
}

void ExpectSameCounters(const SearchStats& a, const SearchStats& b,
                        const std::string& what) {
  EXPECT_EQ(a.references, b.references) << what;
  EXPECT_EQ(a.fallback_scans, b.fallback_scans) << what;
  EXPECT_EQ(a.signature_tokens, b.signature_tokens) << what;
  EXPECT_EQ(a.initial_candidates, b.initial_candidates) << what;
  EXPECT_EQ(a.after_size, b.after_size) << what;
  EXPECT_EQ(a.after_check, b.after_check) << what;
  EXPECT_EQ(a.after_nn, b.after_nn) << what;
  EXPECT_EQ(a.verifications, b.verifications) << what;
  EXPECT_EQ(a.results, b.results) << what;
  EXPECT_EQ(a.similarity_calls, b.similarity_calls) << what;
  EXPECT_EQ(a.reduced_pairs, b.reduced_pairs) << what;
  EXPECT_EQ(a.bound_accepts, b.bound_accepts) << what;
  EXPECT_EQ(a.bound_rejects, b.bound_rejects) << what;
  EXPECT_EQ(a.exact_solves, b.exact_solves) << what;
  EXPECT_EQ(a.bound_only_scores, b.bound_only_scores) << what;
  EXPECT_EQ(a.query_sets, b.query_sets) << what;
  EXPECT_EQ(a.oov_tokens, b.oov_tokens) << what;
}

// Core sweep: every workload × corpus seed × shard count, covering
// shards == 1, several mid splits, and shards > sets.
TEST(SnapshotRoundtrip, SaveLoadAndDiscoveryParity) {
  const size_t kSets = 36;
  const int kShardCounts[] = {1, 2, 3, 5, 64};
  for (const WorkloadConfig& cfg : kWorkloads) {
    for (uint64_t seed : {7u, 2026u}) {
      Collection data = MakeData(cfg, kSets, seed);
      for (int shards : kShardCounts) {
        SCOPED_TRACE(std::string(cfg.name) + " seed=" +
                     std::to_string(seed) + " shards=" +
                     std::to_string(shards));
        const Options opt = MakeOptions(cfg, shards);
        const TokenizerKind tk = IsEditSimilarity(cfg.phi)
                                     ? TokenizerKind::kQGram
                                     : TokenizerKind::kWord;
        const int q = tk == TokenizerKind::kQGram ? opt.EffectiveQ() : 0;

        // Reference: the fresh in-memory sharded engine.
        ShardedEngine engine(&data, opt);
        ASSERT_TRUE(engine.ok()) << engine.error();
        ShardedSearchStats mem_stats;
        const std::vector<PairMatch> expected =
            engine.DiscoverSelf(&mem_stats);

        // Snapshot build → save → load.
        Snapshot built = BuildSnapshot(data, tk, q,
                                       static_cast<uint32_t>(shards),
                                       opt.num_threads);
        ASSERT_EQ(built.num_shards(), static_cast<size_t>(shards));
        for (int s = 0; s < shards; ++s) {
          EXPECT_EQ(built.shards[s].range.begin,
                    engine.shard_range(s).begin);
          EXPECT_EQ(built.shards[s].range.end, engine.shard_range(s).end);
          ExpectSameIndex(built.shards[s].index, engine.shard_index(s),
                          "built shard " + std::to_string(s));
        }

        const std::string path = TempPath(std::string(cfg.name) + "_" +
                                          std::to_string(seed) + "_" +
                                          std::to_string(shards) + ".snap");
        ASSERT_EQ(SaveSnapshot(built, path), "");
        Snapshot loaded;
        ASSERT_EQ(LoadSnapshot(path, &loaded), "");
        std::remove(path.c_str());

        // Property 1: exact structural round-trip.
        EXPECT_EQ(loaded.tokenizer, tk);
        EXPECT_EQ(loaded.q, q);
        ASSERT_NE(loaded.data.dict, nullptr);
        ASSERT_EQ(loaded.data.dict->size(), data.dict->size());
        for (TokenId t = 0; t < data.dict->size(); ++t) {
          ASSERT_EQ(loaded.data.dict->Token(t), data.dict->Token(t));
        }
        ASSERT_EQ(loaded.data.sets.size(), data.sets.size());
        for (size_t i = 0; i < data.sets.size(); ++i) {
          ASSERT_EQ(loaded.data.sets[i].elements, data.sets[i].elements)
              << "set " << i;
        }
        ASSERT_EQ(loaded.num_shards(), static_cast<size_t>(shards));
        for (int s = 0; s < shards; ++s) {
          EXPECT_EQ(loaded.shards[s].range.begin,
                    engine.shard_range(s).begin);
          EXPECT_EQ(loaded.shards[s].range.end, engine.shard_range(s).end);
          ExpectSameIndex(loaded.shards[s].index, engine.shard_index(s),
                          "loaded shard " + std::to_string(s));
        }

        // Property 2: discovery from the loaded snapshot is byte-identical.
        std::vector<ShardResult> results(shards);
        for (int s = 0; s < shards; ++s) {
          results[s].shard = static_cast<uint32_t>(s);
          results[s].num_shards = static_cast<uint32_t>(shards);
          results[s].options = opt;
          results[s].pairs =
              DiscoverShardSelf(loaded, s, opt, &results[s].stats);
        }
        std::vector<PairMatch> merged;
        ShardedSearchStats merged_stats;
        ASSERT_EQ(MergeShardResults(results, &merged, &merged_stats), "");
        EXPECT_EQ(merged, expected);
        ASSERT_EQ(merged_stats.per_shard.size(),
                  mem_stats.per_shard.size());
        for (int s = 0; s < shards; ++s) {
          ExpectSameCounters(merged_stats.per_shard[s],
                             mem_stats.per_shard[s],
                             "shard " + std::to_string(s) + " counters");
        }
      }
    }
  }
}

// Property 3: the shard-result file format round-trips exactly.
TEST(SnapshotRoundtrip, ShardResultFileRoundtrip) {
  const WorkloadConfig& cfg = kWorkloads[0];
  Collection data = MakeData(cfg, 30, 11);
  const Options opt = MakeOptions(cfg, 3);
  Snapshot snap = BuildSnapshot(data, TokenizerKind::kWord, 0, 3, 2);
  for (int s = 0; s < 3; ++s) {
    ShardResult result;
    result.shard = static_cast<uint32_t>(s);
    result.num_shards = 3;
    result.options = opt;
    result.pairs = DiscoverShardSelf(snap, s, opt, &result.stats);
    result.stats.signature_seconds = 0.25;  // Exercise the double fields.
    result.stats.verify_seconds = 1.0 / 3.0;

    const std::string path =
        TempPath("result_" + std::to_string(s) + ".txt");
    ASSERT_EQ(SaveShardResult(result, path), "");
    ShardResult reloaded;
    ASSERT_EQ(LoadShardResult(path, &reloaded), "");
    std::remove(path.c_str());

    EXPECT_EQ(reloaded.shard, result.shard);
    EXPECT_EQ(reloaded.num_shards, result.num_shards);
    EXPECT_EQ(reloaded.options.metric, result.options.metric);
    EXPECT_EQ(reloaded.options.phi, result.options.phi);
    EXPECT_EQ(reloaded.options.delta, result.options.delta);
    EXPECT_EQ(reloaded.options.alpha, result.options.alpha);
    EXPECT_EQ(reloaded.options.q, result.options.EffectiveQ());
    EXPECT_EQ(reloaded.options.exact_scores, result.options.exact_scores);
    EXPECT_EQ(reloaded.pairs, result.pairs);  // Exact doubles via %.17g.
    ExpectSameCounters(reloaded.stats, result.stats, "reloaded counters");
    EXPECT_EQ(reloaded.stats.signature_seconds,
              result.stats.signature_seconds);
    EXPECT_EQ(reloaded.stats.verify_seconds, result.stats.verify_seconds);
  }
}

// Split containers: the split save → per-shard load path produces the very
// same discovery stream as monolithic and in-memory, and a shard-local load
// provably touches only common + its own shard (byte accounting).
TEST(SnapshotRoundtrip, SplitFilesParityAndByteAccounting) {
  const WorkloadConfig& cfg = kWorkloads[0];
  Collection data = MakeData(cfg, 40, 13);
  const int kShards = 4;
  const Options opt = MakeOptions(cfg, kShards);

  ShardedEngine engine(&data, opt);
  ASSERT_TRUE(engine.ok()) << engine.error();
  const std::vector<PairMatch> expected = engine.DiscoverSelf();

  Snapshot built = BuildSnapshot(data, TokenizerKind::kWord, 0, kShards, 2);
  const std::string mono_path = TempPath("split_mono.snap");
  const std::string split_path = TempPath("split_common.snap");
  ASSERT_EQ(SaveSnapshot(built, mono_path), "");
  ASSERT_EQ(SaveSnapshotSplit(built, split_path), "");

  auto file_size = [](const std::string& p) -> uint64_t {
    std::ifstream in(p, std::ios::binary | std::ios::ate);
    EXPECT_TRUE(in.good()) << p;
    return static_cast<uint64_t>(in.tellg());
  };
  const uint64_t common_bytes = file_size(split_path);
  uint64_t all_bytes = common_bytes;
  for (int s = 0; s < kShards; ++s) {
    all_bytes += file_size(SnapshotShardPath(split_path, s));
  }

  // Full load of the split container: structural parity with monolithic.
  Snapshot mono, split;
  SnapshotLoadStats full_stats;
  ASSERT_EQ(LoadSnapshot(mono_path, &mono), "");
  ASSERT_EQ(LoadSnapshot(split_path, &split, SnapshotLoadMode::kMmap,
                         &full_stats), "");
  EXPECT_EQ(full_stats.files, static_cast<uint64_t>(kShards) + 1);
  EXPECT_EQ(full_stats.BytesTouched(), all_bytes);
  ASSERT_EQ(split.num_shards(), mono.num_shards());
  for (int s = 0; s < kShards; ++s) {
    EXPECT_EQ(split.shards[s].range.begin, mono.shards[s].range.begin);
    EXPECT_EQ(split.shards[s].range.end, mono.shards[s].range.end);
    ExpectSameIndex(split.shards[s].index, mono.shards[s].index,
                    "split shard " + std::to_string(s));
  }

  // Shard-local loads: each worker maps exactly common + its shard, and the
  // merged discovery output is byte-identical to the in-memory engine.
  std::vector<ShardResult> results(kShards);
  for (int s = 0; s < kShards; ++s) {
    Snapshot local;
    SnapshotLoadStats stats;
    ASSERT_EQ(LoadSnapshotShard(split_path, static_cast<uint32_t>(s), &local,
                                SnapshotLoadMode::kMmap, &stats), "");
    EXPECT_EQ(stats.files, 2u) << "shard " << s;
    EXPECT_EQ(stats.BytesTouched(),
              common_bytes +
                  file_size(SnapshotShardPath(split_path,
                                              static_cast<uint32_t>(s))))
        << "shard " << s;
    EXPECT_LT(stats.BytesTouched(), all_bytes) << "shard " << s;
    for (int other = 0; other < kShards; ++other) {
      EXPECT_EQ(local.shards[other].loaded, other == s);
    }
    results[s].shard = static_cast<uint32_t>(s);
    results[s].num_shards = kShards;
    results[s].options = opt;
    results[s].pairs = DiscoverShardSelf(local, s, opt, &results[s].stats);
  }
  std::vector<PairMatch> merged;
  ASSERT_EQ(MergeShardResults(results, &merged, nullptr), "");
  EXPECT_EQ(merged, expected);

  std::remove(mono_path.c_str());
  std::remove(split_path.c_str());
  for (int s = 0; s < kShards; ++s) {
    std::remove(SnapshotShardPath(split_path, s).c_str());
  }
}

// The two load modes are semantically interchangeable: same structures,
// same discovery output — kCopy just owns its bytes.
TEST(SnapshotRoundtrip, MmapAndCopyLoadsAgree) {
  const WorkloadConfig& cfg = kWorkloads[0];
  Collection data = MakeData(cfg, 30, 17);
  const Options opt = MakeOptions(cfg, 3);
  Snapshot built = BuildSnapshot(data, TokenizerKind::kWord, 0, 3, 2);
  const std::string path = TempPath("modes.snap");
  ASSERT_EQ(SaveSnapshot(built, path), "");

  Snapshot via_mmap, via_copy;
  SnapshotLoadStats mmap_stats, copy_stats;
  ASSERT_EQ(LoadSnapshot(path, &via_mmap, SnapshotLoadMode::kMmap,
                         &mmap_stats), "");
  ASSERT_EQ(LoadSnapshot(path, &via_copy, SnapshotLoadMode::kCopy,
                         &copy_stats), "");
  std::remove(path.c_str());

  // The mmap path keeps the region and copies nothing; the copy path owns
  // everything and keeps no region.
  EXPECT_GT(mmap_stats.bytes_mapped, 0u);
  EXPECT_FALSE(via_mmap.regions.empty());
  EXPECT_EQ(copy_stats.bytes_mapped, 0u);
  EXPECT_TRUE(via_copy.regions.empty());

  ASSERT_EQ(via_mmap.data.sets.size(), via_copy.data.sets.size());
  for (size_t i = 0; i < via_mmap.data.sets.size(); ++i) {
    EXPECT_EQ(via_mmap.data.sets[i].elements, via_copy.data.sets[i].elements);
  }
  ASSERT_EQ(via_mmap.num_shards(), via_copy.num_shards());
  for (size_t s = 0; s < via_mmap.num_shards(); ++s) {
    ExpectSameIndex(via_mmap.shards[s].index, via_copy.shards[s].index,
                    "mode shard " + std::to_string(s));
    const std::vector<PairMatch> a = DiscoverShardSelf(via_mmap, s, opt);
    const std::vector<PairMatch> b = DiscoverShardSelf(via_copy, s, opt);
    EXPECT_EQ(a, b) << "shard " << s;
  }
}

// Degenerate corpora: empty collection and single-set collection survive the
// full save → load → discover cycle at any shard count.
TEST(SnapshotRoundtrip, DegenerateCorpora) {
  for (size_t sets : {size_t{0}, size_t{1}}) {
    RawSets raw(sets, std::vector<std::string>{"alpha beta gamma"});
    Collection data = BuildCollection(raw, TokenizerKind::kWord);
    for (int shards : {1, 4}) {
      SCOPED_TRACE("sets=" + std::to_string(sets) + " shards=" +
                   std::to_string(shards));
      Snapshot snap = BuildSnapshot(data, TokenizerKind::kWord, 0,
                                    static_cast<uint32_t>(shards), 1);
      const std::string path = TempPath(
          "degenerate_" + std::to_string(sets) + std::to_string(shards));
      ASSERT_EQ(SaveSnapshot(snap, path), "");
      Snapshot loaded;
      ASSERT_EQ(LoadSnapshot(path, &loaded), "");
      std::remove(path.c_str());
      EXPECT_EQ(loaded.data.sets.size(), sets);
      EXPECT_EQ(loaded.num_shards(), static_cast<size_t>(shards));

      const Options opt = MakeOptions(kWorkloads[0], shards);
      std::vector<ShardResult> results(shards);
      for (int s = 0; s < shards; ++s) {
        results[s].shard = static_cast<uint32_t>(s);
        results[s].num_shards = static_cast<uint32_t>(shards);
        results[s].pairs = DiscoverShardSelf(loaded, s, opt, nullptr);
        EXPECT_TRUE(results[s].pairs.empty());
      }
      std::vector<PairMatch> merged;
      ASSERT_EQ(MergeShardResults(results, &merged, nullptr), "");
      EXPECT_TRUE(merged.empty());
    }
  }
}

}  // namespace
}  // namespace silkmoth
