#include "snapshot/orchestrator.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <thread>

#include "util/timer.h"

#if defined(__unix__) || defined(__APPLE__)
#define SILKMOTH_HAVE_FORK 1
#include <fcntl.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>
#else
#define SILKMOTH_HAVE_FORK 0
#endif

namespace silkmoth {
namespace {

// splitmix64: the jitter hash. Deterministic, well-mixed, and cheap — the
// retry schedule must be reproducible from (seed, shard, attempt) alone so
// the scheduling unit test can pin it.
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

void AppendJsonString(std::string* out, const std::string& s) {
  out->push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\n': *out += "\\n"; break;
      case '\t': *out += "\\t"; break;
      case '\r': *out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void AppendJsonDouble(std::string* out, double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.6f", v);
  *out += buf;
}

}  // namespace

const char* ShardOutcomeName(ShardOutcome outcome) {
  switch (outcome) {
    case ShardOutcome::kSuccess: return "success";
    case ShardOutcome::kExitNonZero: return "exit-nonzero";
    case ShardOutcome::kSignal: return "signal";
    case ShardOutcome::kTimeout: return "timeout";
    case ShardOutcome::kCorruptResult: return "corrupt-result";
    case ShardOutcome::kSpawnFailure: return "spawn-failure";
  }
  return "unknown";
}

std::string ParseFaultPlan(const std::string& text, FaultPlan* out) {
  FaultPlan plan;
  bool have_fault = false;
  size_t pos = 0;
  while (pos < text.size()) {
    // `fault=` consumes the rest of the string verbatim: fault specs are
    // themselves comma-separated lists, so it must come last.
    if (text.compare(pos, 6, "fault=") == 0) {
      plan.fault = text.substr(pos + 6);
      have_fault = !plan.fault.empty();
      break;
    }
    const size_t comma = text.find(',', pos);
    const std::string item = text.substr(
        pos, comma == std::string::npos ? std::string::npos : comma - pos);
    pos = comma == std::string::npos ? text.size() : comma + 1;
    const size_t eq = item.find('=');
    if (eq == std::string::npos) {
      return "malformed inject spec item '" + item +
             "' (want shard=K,attempt=N,fault=SITE:ACTION)";
    }
    const std::string key = item.substr(0, eq);
    const std::string value = item.substr(eq + 1);
    char* end = nullptr;
    const long v = std::strtol(value.c_str(), &end, 10);
    if (end != value.c_str() + value.size() || value.empty()) {
      return "non-numeric inject " + key + " value '" + value + "'";
    }
    if (key == "shard") {
      if (v < 0) return "inject shard must be >= 0";
      plan.shard = static_cast<uint32_t>(v);
    } else if (key == "attempt") {
      if (v < 0) return "inject attempt must be >= 0 (0 = every attempt)";
      plan.attempt = static_cast<int>(v);
    } else {
      return "unknown inject key '" + key + "'";
    }
  }
  if (!have_fault) {
    return "inject spec '" + text + "' is missing fault=SITE:ACTION";
  }
  *out = std::move(plan);
  return "";
}

double BackoffSeconds(int next_attempt, uint32_t shard, double base,
                      double cap, uint64_t seed) {
  if (next_attempt < 2 || base <= 0.0) return 0.0;
  // Exponent clamped so the doubling can never overflow; the cap clamps
  // the magnitude anyway.
  const int failures = std::min(next_attempt - 2, 40);
  double delay = base * static_cast<double>(1ull << failures);
  if (delay > cap) delay = cap;
  const uint64_t h =
      Mix64(seed ^ Mix64(static_cast<uint64_t>(shard) << 32 |
                         static_cast<uint64_t>(next_attempt)));
  const double r =
      static_cast<double>(h >> 11) / static_cast<double>(1ull << 53);
  // Jitter into [0.5, 1.0]×: spread concurrent retries without ever
  // collapsing the wait to zero.
  return delay * (0.5 + 0.5 * r);
}

std::string RunReport::ToJson() const {
  std::string j = "{";
  j += "\"version\":1,";
  j += "\"ok\":";
  j += ok ? "true" : "false";
  j += ",\"num_shards\":" + std::to_string(num_shards);
  j += ",\"attempts_total\":" + std::to_string(attempts_total);
  j += ",\"retries\":" + std::to_string(retries);
  j += ",\"timeouts\":" + std::to_string(timeouts);
  j += ",\"wall_seconds\":";
  AppendJsonDouble(&j, wall_seconds);
  j += ",\"failed_shards\":[";
  for (size_t i = 0; i < failed_shards.size(); ++i) {
    if (i > 0) j += ",";
    j += std::to_string(failed_shards[i]);
  }
  j += "],\"shards\":[";
  for (size_t i = 0; i < shards.size(); ++i) {
    const ShardRunRecord& s = shards[i];
    if (i > 0) j += ",";
    j += "{\"shard\":" + std::to_string(s.shard);
    j += ",\"ok\":";
    j += s.ok ? "true" : "false";
    j += ",\"result_path\":";
    AppendJsonString(&j, s.result_path);
    j += ",\"attempts\":[";
    for (size_t a = 0; a < s.attempts.size(); ++a) {
      const AttemptRecord& at = s.attempts[a];
      if (a > 0) j += ",";
      j += "{\"attempt\":" + std::to_string(at.attempt);
      j += ",\"outcome\":";
      AppendJsonString(&j, ShardOutcomeName(at.outcome));
      j += ",\"code\":" + std::to_string(at.code);
      j += ",\"seconds\":";
      AppendJsonDouble(&j, at.seconds);
      j += ",\"backoff_seconds\":";
      AppendJsonDouble(&j, at.backoff_seconds);
      j += ",\"detail\":";
      AppendJsonString(&j, at.detail);
      j += "}";
    }
    j += "]}";
  }
  j += "]}";
  return j;
}

#if SILKMOTH_HAVE_FORK

namespace {

// One live worker process under supervision.
struct LiveWorker {
  uint32_t shard = 0;
  int attempt = 0;
  pid_t pid = -1;
  WallTimer timer;
  bool timed_out = false;
  std::string result_path;
  std::string log_path;
};

// Per-shard supervision state.
struct ShardState {
  int attempts_done = 0;
  bool done = false;
  bool running = false;
  double ready_at = 0.0;  // Run-clock seconds when the next attempt may go.
};

// The SILKMOTH_FAULT value for (shard, attempt), comma-joining every
// matching plan; empty when none match.
std::string FaultEnvFor(const std::vector<FaultPlan>& plans, uint32_t shard,
                        int attempt) {
  std::string env;
  for (const FaultPlan& p : plans) {
    if (p.shard != shard) continue;
    if (p.attempt != 0 && p.attempt != attempt) continue;
    if (!env.empty()) env += ",";
    env += p.fault;
  }
  return env;
}

}  // namespace

std::string RunSupervised(const OrchestratorOptions& options,
                          RunReport* report,
                          std::vector<ShardResult>* results) {
  if (options.num_shards == 0) {
    return "orchestrator: shard count is zero";
  }
  if (options.worker_binary.empty()) {
    return "orchestrator: no worker binary";
  }
  const int max_attempts = std::max(1, options.max_attempts);
  const int max_parallel =
      options.max_parallel > 0
          ? options.max_parallel
          : static_cast<int>(std::min<uint32_t>(options.num_shards, 4));

  RunReport rep;
  rep.num_shards = options.num_shards;
  rep.shards.resize(options.num_shards);
  std::vector<ShardState> states(options.num_shards);
  std::vector<std::optional<ShardResult>> loaded(options.num_shards);
  for (uint32_t s = 0; s < options.num_shards; ++s) {
    rep.shards[s].shard = s;
    rep.shards[s].result_path =
        options.result_dir + "/shard" + std::to_string(s) + ".res";
  }

  WallTimer run_timer;
  std::vector<LiveWorker> active;
  size_t done_count = 0;

  // Launches one attempt of `shard`. Returns false when fork failed (the
  // caller records a spawn failure).
  auto launch = [&](uint32_t shard) -> bool {
    ShardState& st = states[shard];
    const int attempt = st.attempts_done + 1;
    LiveWorker w;
    w.shard = shard;
    w.attempt = attempt;
    w.result_path = rep.shards[shard].result_path;
    w.log_path = options.result_dir + "/shard" + std::to_string(shard) +
                 ".attempt" + std::to_string(attempt) + ".log";
    // A stale file from a previous torn attempt must never be mistaken for
    // this attempt's output.
    std::remove(w.result_path.c_str());

    const std::string fault_env =
        FaultEnvFor(options.injections, shard, attempt);
    std::vector<std::string> args;
    args.push_back(options.worker_binary);
    args.push_back("shard-run");
    args.push_back("--snapshot");
    args.push_back(options.snapshot_path);
    args.push_back("--shard");
    args.push_back(std::to_string(shard));
    args.push_back("--out");
    args.push_back(w.result_path);
    if (!options.query_path.empty()) {
      args.push_back("--query");
      args.push_back(options.query_path);
    }
    for (const std::string& f : options.worker_flags) args.push_back(f);

    const pid_t pid = fork();
    if (pid < 0) return false;
    if (pid == 0) {
      // Child: own log file on stdout+stderr, per-attempt fault arming,
      // then exec the worker. Only async-signal-safe calls after fork.
      const int log_fd =
          open(w.log_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
      if (log_fd >= 0) {
        dup2(log_fd, STDOUT_FILENO);
        dup2(log_fd, STDERR_FILENO);
        if (log_fd > STDERR_FILENO) close(log_fd);
      }
      if (!fault_env.empty()) {
        setenv("SILKMOTH_FAULT", fault_env.c_str(), 1);
      } else {
        unsetenv("SILKMOTH_FAULT");
      }
      std::vector<char*> argv;
      argv.reserve(args.size() + 1);
      for (std::string& a : args) argv.push_back(a.data());
      argv.push_back(nullptr);
      execv(argv[0], argv.data());
      _exit(127);  // exec failed; classified as exit-nonzero upstream.
    }
    w.pid = pid;
    w.timer.Restart();
    st.running = true;
    ++rep.attempts_total;
    if (attempt > 1) ++rep.retries;
    active.push_back(std::move(w));
    return true;
  };

  // Records a finished attempt and either schedules a retry or finalizes
  // the shard.
  auto settle = [&](uint32_t shard, const AttemptRecord& record,
                    ShardResult&& result) {
    ShardState& st = states[shard];
    st.running = false;
    ++st.attempts_done;
    AttemptRecord rec = record;
    if (rec.outcome == ShardOutcome::kTimeout) ++rep.timeouts;
    if (rec.outcome == ShardOutcome::kSuccess) {
      loaded[shard] = std::move(result);
      rep.shards[shard].ok = true;
      st.done = true;
      ++done_count;
    } else if (st.attempts_done >= max_attempts) {
      st.done = true;
      ++done_count;
    } else {
      rec.backoff_seconds = BackoffSeconds(
          st.attempts_done + 1, shard, options.backoff_base_seconds,
          options.backoff_cap_seconds, options.backoff_seed);
      st.ready_at = run_timer.ElapsedSeconds() + rec.backoff_seconds;
    }
    rep.shards[shard].attempts.push_back(std::move(rec));
  };

  while (done_count < options.num_shards) {
    if (options.cancel != nullptr &&
        options.cancel->load(std::memory_order_relaxed)) {
      // Cancellation (the CLI's SIGTERM path): hard-kill and reap every
      // active worker so none outlives its supervisor, then finalize the
      // unfinished shards as failed — no retries, no partial launches.
      for (LiveWorker& w : active) {
        kill(w.pid, SIGKILL);
        int status = 0;
        pid_t r;
        do {
          r = waitpid(w.pid, &status, 0);
        } while (r < 0 && errno == EINTR);
        AttemptRecord rec;
        rec.attempt = w.attempt;
        rec.seconds = w.timer.ElapsedSeconds();
        rec.outcome = ShardOutcome::kSignal;
        rec.code = SIGKILL;
        rec.detail = "cancelled: supervisor killed the worker";
        ShardState& st = states[w.shard];
        st.running = false;
        ++st.attempts_done;
        rep.shards[w.shard].attempts.push_back(std::move(rec));
      }
      active.clear();
      for (uint32_t s = 0; s < options.num_shards; ++s) {
        if (!states[s].done) {
          states[s].done = true;
          ++done_count;
        }
      }
      break;
    }

    // Fill free slots with shards whose backoff wait has elapsed.
    const double now = run_timer.ElapsedSeconds();
    for (uint32_t s = 0;
         s < options.num_shards &&
         active.size() < static_cast<size_t>(max_parallel);
         ++s) {
      ShardState& st = states[s];
      if (st.done || st.running || st.ready_at > now) continue;
      if (!launch(s)) {
        AttemptRecord rec;
        rec.attempt = st.attempts_done + 1;
        rec.outcome = ShardOutcome::kSpawnFailure;
        rec.detail = "fork failed";
        ++rep.attempts_total;
        if (rec.attempt > 1) ++rep.retries;
        settle(s, rec, ShardResult{});
      }
    }

    // Reap and classify finished workers; police deadlines.
    for (size_t i = 0; i < active.size();) {
      LiveWorker& w = active[i];
      int status = 0;
      pid_t r;
      // EINTR retries in place: a signal landing on the supervisor (the
      // CLI's SIGTERM handler, say) must not make a live worker look like
      // a waitpid failure.
      do {
        r = waitpid(w.pid, &status, WNOHANG);
      } while (r < 0 && errno == EINTR);
      if (r == 0) {
        if (options.shard_deadline_seconds > 0.0 && !w.timed_out &&
            w.timer.ElapsedSeconds() > options.shard_deadline_seconds) {
          // Over deadline: SIGKILL and keep polling — the kill shows up as
          // a signal exit on the next reap, classified as timeout below.
          kill(w.pid, SIGKILL);
          w.timed_out = true;
        }
        ++i;
        continue;
      }
      AttemptRecord rec;
      rec.attempt = w.attempt;
      rec.seconds = w.timer.ElapsedSeconds();
      ShardResult result;
      if (r < 0) {
        rec.outcome = ShardOutcome::kSpawnFailure;
        rec.detail = "waitpid failed";
      } else if (w.timed_out) {
        rec.outcome = ShardOutcome::kTimeout;
        rec.code = WIFSIGNALED(status) ? WTERMSIG(status) : 0;
        char buf[128];
        std::snprintf(buf, sizeof(buf),
                      "exceeded %.3fs deadline; killed",
                      options.shard_deadline_seconds);
        rec.detail = buf;
      } else if (WIFSIGNALED(status)) {
        rec.outcome = ShardOutcome::kSignal;
        rec.code = WTERMSIG(status);
        rec.detail =
            "killed by signal " + std::to_string(WTERMSIG(status));
      } else if (WIFEXITED(status) && WEXITSTATUS(status) != 0) {
        rec.outcome = ShardOutcome::kExitNonZero;
        rec.code = WEXITSTATUS(status);
        rec.detail = "exited with status " +
                     std::to_string(WEXITSTATUS(status)) + " (log: " +
                     w.log_path + ")";
      } else {
        // Exit 0 still has to produce a loadable result file — a torn or
        // malformed file is a failure, and retrying is safe because the
        // writer publishes atomically.
        const std::string err = LoadShardResult(w.result_path, &result);
        if (err.empty()) {
          rec.outcome = ShardOutcome::kSuccess;
        } else {
          rec.outcome = ShardOutcome::kCorruptResult;
          rec.detail = err;
        }
      }
      const uint32_t shard = w.shard;
      active.erase(active.begin() + static_cast<ptrdiff_t>(i));
      settle(shard, rec, std::move(result));
    }

    if (done_count < options.num_shards) {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  }

  rep.ok = true;
  for (uint32_t s = 0; s < options.num_shards; ++s) {
    if (!rep.shards[s].ok) {
      rep.ok = false;
      rep.failed_shards.push_back(s);
    }
  }
  rep.wall_seconds = run_timer.ElapsedSeconds();

  results->clear();
  for (uint32_t s = 0; s < options.num_shards; ++s) {
    if (loaded[s].has_value()) results->push_back(std::move(*loaded[s]));
  }
  *report = std::move(rep);
  return "";
}

#else  // !SILKMOTH_HAVE_FORK

std::string RunSupervised(const OrchestratorOptions& options,
                          RunReport* report,
                          std::vector<ShardResult>* results) {
  (void)options;
  (void)report;
  (void)results;
  return "orchestrator: supervised runs need fork/exec (POSIX); use "
         "build/shard-run/merge by hand on this platform";
}

#endif  // SILKMOTH_HAVE_FORK

}  // namespace silkmoth
