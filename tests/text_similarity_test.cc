#include "text/similarity.h"

#include <string>

#include <gtest/gtest.h>

#include "text/tokenizer.h"
#include "util/rng.h"

namespace silkmoth {
namespace {

Element WordElem(const std::string& text, TokenDictionary* dict) {
  static ElementArena arena;  // Outlives every element a test builds.
  return Tokenizer(TokenizerKind::kWord).MakeElement(text, dict, &arena);
}

TEST(JaccardTest, PaperExample) {
  // Section 2.1: Jac({50,Vassar,St,MA},{50,Vassar,Street,MA}) = 3/5.
  TokenDictionary dict;
  Element a = WordElem("50 Vassar St MA", &dict);
  Element b = WordElem("50 Vassar Street MA", &dict);
  const ElementSimilarity* jac = GetSimilarity(SimilarityKind::kJaccard);
  EXPECT_NEAR(jac->Score(a, b), 3.0 / 5.0, 1e-12);
}

TEST(JaccardTest, IdenticalAndDisjoint) {
  TokenDictionary dict;
  Element a = WordElem("x y z", &dict);
  Element b = WordElem("x y z", &dict);
  Element c = WordElem("p q", &dict);
  const ElementSimilarity* jac = GetSimilarity(SimilarityKind::kJaccard);
  EXPECT_DOUBLE_EQ(jac->Score(a, b), 1.0);
  EXPECT_DOUBLE_EQ(jac->Score(a, c), 0.0);
}

TEST(JaccardTest, DuplicateWordsCollapse) {
  TokenDictionary dict;
  Element a = WordElem("x x y", &dict);
  Element b = WordElem("x y y", &dict);
  const ElementSimilarity* jac = GetSimilarity(SimilarityKind::kJaccard);
  EXPECT_DOUBLE_EQ(jac->Score(a, b), 1.0);  // Both are {x, y}.
}

TEST(EdsTest, PaperExample) {
  // Eds("50 Vassar St MA", "50 Vassar Street MA") = 1 - 2*4/(15+19+4) = 15/19.
  EXPECT_NEAR(EdsOfStrings("50 Vassar St MA", "50 Vassar Street MA"),
              15.0 / 19.0, 1e-12);
}

TEST(EdsTest, BoundsAndIdentity) {
  EXPECT_DOUBLE_EQ(EdsOfStrings("same", "same"), 1.0);
  EXPECT_DOUBLE_EQ(EdsOfStrings("", ""), 1.0);
  EXPECT_DOUBLE_EQ(EdsOfStrings("ab", ""), 0.0);  // 1 - 2*2/(2+0+2).
  const double s = EdsOfStrings("abc", "xyz");
  EXPECT_GE(s, 0.0);
  EXPECT_LE(s, 1.0);
}

TEST(NedsTest, Formula) {
  // NEds = 1 - LD/max(|x|,|y|).
  EXPECT_NEAR(NedsOfStrings("50 Vassar St MA", "50 Vassar Street MA"),
              1.0 - 4.0 / 19.0, 1e-12);
  EXPECT_DOUBLE_EQ(NedsOfStrings("same", "same"), 1.0);
  EXPECT_DOUBLE_EQ(NedsOfStrings("abc", "xyz"), 0.0);
}

TEST(SimilarityTest, EdsNeverExceedsNeds) {
  // Section 7.1 uses NEds(r, s) <= Eds(r, s)?? No: it derives
  // NEds <= ... <= Eds; verify on random strings.
  Rng rng(4);
  auto random_string = [&](size_t max_len) {
    std::string s;
    const size_t len = 1 + rng.NextBounded(max_len);
    for (size_t i = 0; i < len; ++i) {
      s.push_back(static_cast<char>('a' + rng.NextBounded(5)));
    }
    return s;
  };
  for (int t = 0; t < 500; ++t) {
    const std::string a = random_string(15);
    const std::string b = random_string(15);
    EXPECT_LE(NedsOfStrings(a, b), EdsOfStrings(a, b) + 1e-12)
        << "a=" << a << " b=" << b;
  }
}

TEST(ThresholdTest, AlphaCutoff) {
  TokenDictionary dict;
  Element a = WordElem("1 2 3 4 5", &dict);
  Element b = WordElem("1 2 3 9 10", &dict);  // Jac = 3/7 ≈ 0.4286.
  const ElementSimilarity* jac = GetSimilarity(SimilarityKind::kJaccard);
  EXPECT_NEAR(jac->ScoreThresholded(a, b, 0.0), 3.0 / 7.0, 1e-12);
  EXPECT_NEAR(jac->ScoreThresholded(a, b, 0.4), 3.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(jac->ScoreThresholded(a, b, 0.5), 0.0);
}

TEST(ThresholdTest, AlphaExactBoundaryKept) {
  TokenDictionary dict;
  Element a = WordElem("1 2", &dict);
  Element b = WordElem("1 3", &dict);  // Jac = 1/3.
  const ElementSimilarity* jac = GetSimilarity(SimilarityKind::kJaccard);
  EXPECT_GT(jac->ScoreThresholded(a, b, 1.0 / 3.0), 0.0);
}

TEST(ThresholdTest, EdsBandedAgreesWithPlain) {
  Element a;
  a.text = "silkmoth engine";
  Element b;
  b.text = "silkmoth enginee";
  const ElementSimilarity* eds = GetSimilarity(SimilarityKind::kEds);
  const double plain = eds->Score(a, b);
  for (double alpha : {0.0, 0.3, 0.5, 0.7, 0.9}) {
    const double thresholded = eds->ScoreThresholded(a, b, alpha);
    if (plain >= alpha) {
      EXPECT_NEAR(thresholded, plain, 1e-12) << "alpha=" << alpha;
    } else {
      EXPECT_DOUBLE_EQ(thresholded, 0.0) << "alpha=" << alpha;
    }
  }
}

TEST(ThresholdTest, NedsBandedAgreesWithPlain) {
  Element a;
  a.text = "database systems";
  Element b;
  b.text = "dtabase systms";
  const ElementSimilarity* neds = GetSimilarity(SimilarityKind::kNeds);
  const double plain = neds->Score(a, b);
  for (double alpha : {0.0, 0.4, 0.6, 0.8, 0.95}) {
    const double thresholded = neds->ScoreThresholded(a, b, alpha);
    if (plain >= alpha) {
      EXPECT_NEAR(thresholded, plain, 1e-12);
    } else {
      EXPECT_DOUBLE_EQ(thresholded, 0.0);
    }
  }
}

TEST(MetricDualTest, JaccardDistanceTriangle) {
  // 1 - Jac is the Jaccard distance, a metric; sample-check it because the
  // reduction-based verification (Section 5.3) depends on it.
  Rng rng(21);
  TokenDictionary dict;
  auto random_elem = [&]() {
    std::string text;
    const size_t words = 1 + rng.NextBounded(6);
    for (size_t w = 0; w < words; ++w) {
      if (!text.empty()) text.push_back(' ');
      text += "w" + std::to_string(rng.NextBounded(8));
    }
    return WordElem(text, &dict);
  };
  const ElementSimilarity* jac = GetSimilarity(SimilarityKind::kJaccard);
  for (int t = 0; t < 400; ++t) {
    Element x = random_elem(), y = random_elem(), z = random_elem();
    const double dxz = 1.0 - jac->Score(x, z);
    const double dxy = 1.0 - jac->Score(x, y);
    const double dyz = 1.0 - jac->Score(y, z);
    EXPECT_LE(dxz, dxy + dyz + 1e-9);
  }
}

TEST(MetricDualTest, EdsDualTriangle) {
  // 1 - Eds = 2*LD/(|x|+|y|+LD) is the normalized metric of Li & Liu [19].
  Rng rng(22);
  auto random_string = [&](size_t max_len) {
    std::string s;
    const size_t len = rng.NextBounded(max_len + 1);
    for (size_t i = 0; i < len; ++i) {
      s.push_back(static_cast<char>('a' + rng.NextBounded(3)));
    }
    return s;
  };
  for (int t = 0; t < 400; ++t) {
    const std::string x = random_string(10);
    const std::string y = random_string(10);
    const std::string z = random_string(10);
    const double dxz = 1.0 - EdsOfStrings(x, z);
    const double dxy = 1.0 - EdsOfStrings(x, y);
    const double dyz = 1.0 - EdsOfStrings(y, z);
    EXPECT_LE(dxz, dxy + dyz + 1e-9)
        << "x=" << x << " y=" << y << " z=" << z;
  }
}

TEST(MetricDualFlagTest, MatchesPaper) {
  EXPECT_TRUE(GetSimilarity(SimilarityKind::kJaccard)->HasMetricDual());
  EXPECT_TRUE(GetSimilarity(SimilarityKind::kEds)->HasMetricDual());
  EXPECT_FALSE(GetSimilarity(SimilarityKind::kNeds)->HasMetricDual());
}

TEST(IdentityKeyTest, JaccardUsesTokenSet) {
  TokenDictionary dict;
  Element a = WordElem("b a", &dict);
  Element b = WordElem("a b", &dict);
  Element c = WordElem("a c", &dict);
  EXPECT_EQ(IdentityKey(a, SimilarityKind::kJaccard),
            IdentityKey(b, SimilarityKind::kJaccard));
  EXPECT_NE(IdentityKey(a, SimilarityKind::kJaccard),
            IdentityKey(c, SimilarityKind::kJaccard));
}

TEST(IdentityKeyTest, EditUsesText) {
  TokenDictionary dict;
  Element a = WordElem("b a", &dict);
  Element b = WordElem("a b", &dict);
  EXPECT_NE(IdentityKey(a, SimilarityKind::kEds),
            IdentityKey(b, SimilarityKind::kEds));
  EXPECT_EQ(IdentityKey(a, SimilarityKind::kEds), "b a");
}

TEST(KindNameTest, Names) {
  EXPECT_STREQ(SimilarityKindName(SimilarityKind::kJaccard), "Jac");
  EXPECT_STREQ(SimilarityKindName(SimilarityKind::kEds), "Eds");
  EXPECT_STREQ(SimilarityKindName(SimilarityKind::kNeds), "NEds");
}

}  // namespace
}  // namespace silkmoth
