#ifndef SILKMOTH_SNAPSHOT_SHARD_RUNNER_H_
#define SILKMOTH_SNAPSHOT_SHARD_RUNNER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/engine.h"
#include "core/options.h"
#include "core/reference_block.h"
#include "core/stats.h"
#include "snapshot/snapshot.h"

namespace silkmoth {

/// The out-of-process half of sharded discovery: run one snapshot shard's
/// slice of discovery — a self-join of the snapshot's own collection or an
/// external query block against it — persist the resulting PairMatch
/// stream, and k-way merge shard streams back into the exact single-process
/// output. Together with the snapshot container this is the process-level
/// protocol:
///
///   build      tokenize + index + SaveSnapshot             (one process)
///   shard-run  LoadSnapshot + DiscoverShardSelf(k)         (one per shard,
///              or DiscoverShardAgainst(k, query block)      any machine)
///              + SaveShardResult
///   merge      LoadShardResult × N + MergeShardResults     (one process)
///
/// MergeShardResults output is byte-identical (ids and exact scores) to the
/// matching in-process run on the same corpus and options —
/// ShardedEngine::DiscoverSelf for self-joins, ShardedEngine::Discover over
/// the same query block for query runs — enforced by
/// tests/snapshot_roundtrip_property_test.cc and tests/query_mode_test.cc
/// in memory and tests/cli_parity_test.sh through the real binary.

/// Runs shard `shard`'s slice of RELATED SET DISCOVERY within the snapshot's
/// own collection (R = S): every set is streamed as a reference through the
/// shard's index, with the same self-pair and unordered-pair semantics as
/// ShardedEngine::DiscoverSelf. Results are sorted by (ref_id, set_id).
/// `options.num_threads` workers split the reference stream; `stats`
/// aggregates every pass against this shard (untouched for empty shards,
/// matching the in-process engine, which never runs passes against them).
/// Compatibility between `options` and the snapshot's tokenization is NOT
/// checked here — callers gate on CheckSnapshotCompatible first.
std::vector<PairMatch> DiscoverShardSelf(const Snapshot& snap, size_t shard,
                                         const Options& options,
                                         SearchStats* stats = nullptr);

/// Query-vs-corpus variant of DiscoverShardSelf: streams an *external*
/// reference block (block.self_join must be false; see BuildQueryBlock in
/// datagen/builders.h for constructing one against the snapshot's
/// dictionary) through shard `shard`'s index. Every (query set, candidate)
/// pair in the shard's range is evaluated — no self-pair exclusion, no
/// unordered-pair dedup. Results are sorted by (ref_id, set_id); ref_id
/// indexes the query collection. Concatenating the per-shard streams over
/// all shards is exactly ShardedEngine::Discover on the same block. The
/// same CheckSnapshotCompatible gate applies — and the query must have been
/// tokenized against this snapshot's dictionary, or token ids silently
/// disagree.
std::vector<PairMatch> DiscoverShardAgainst(const Snapshot& snap,
                                            size_t shard,
                                            const ReferenceBlock& block,
                                            const Options& options,
                                            SearchStats* stats = nullptr);

/// Returns "" when `options` can run against `snap` (φ's tokenization and
/// effective q match what the snapshot was built with), else a one-line
/// error explaining the mismatch.
std::string CheckSnapshotCompatible(const Snapshot& snap,
                                    const Options& options);

/// One shard's persisted discovery output: the sorted PairMatch stream plus
/// the shard's SearchStats funnel. Scores round-trip exactly (%.17g).
///
/// `options` records the output-affecting query options the shard ran with
/// (metric, φ, δ, α, effective q, exact_scores) so merge can refuse to
/// combine shards run under different queries. Cost-only knobs (scheme,
/// filters, threads) are deliberately not recorded — they never change the
/// output, and shard workers may legitimately tune them independently.
///
/// `query_mode`/`query_hash` fingerprint the *reference payload* the same
/// way: a self-join stream and a query stream — or two query streams over
/// different payloads — must never merge, because the combined stream would
/// match no single-process run.
struct ShardResult {
  uint32_t shard = 0;            ///< Shard id this result came from.
  uint32_t num_shards = 0;       ///< Total shard count of the snapshot run.
  SetIdRange range;              ///< Global set-id range the shard covered
                                 ///< (from the snapshot's shard table) —
                                 ///< what a partial merge stamps as covered.
  Options options;               ///< Query options (output-affecting fields).
  bool query_mode = false;       ///< True when the references were an
                                 ///< external query block, false for the
                                 ///< snapshot's own self-join.
  uint64_t query_hash = 0;       ///< ReferenceBlock::content_hash of the
                                 ///< query payload (query_mode only; 0 for
                                 ///< self-joins).
  SearchStats stats;             ///< Funnel counters for this shard's passes.
  std::vector<PairMatch> pairs;  ///< Sorted by (ref_id, set_id).
};

/// Writes `result` to `path` (versioned text format, "end"-terminated so
/// truncation is detectable). Returns "" on success, else a one-line error.
std::string SaveShardResult(const ShardResult& result,
                            const std::string& path);

/// Loads a shard result from `path`. Returns "" on success, else a one-line
/// error; on failure `*out` is left untouched.
std::string LoadShardResult(const std::string& path, ShardResult* out);

/// Merge policy for MergeShardResults. The default is strict: every shard
/// of the run must be present. `allow_partial` is the orchestrator's
/// degraded mode — a merge over a subset of shards is permitted, but the
/// coverage record makes the gap explicit so partial results are never
/// passed off as complete.
struct MergeOptions {
  /// Permit merging a subset of shards (consistency checks still apply).
  bool allow_partial = false;
};

/// What a merge actually covered — filled by MergeShardResults so callers
/// (the `run`/`merge` subcommands, the run report) can stamp partial
/// output with its covered shard ranges instead of silently presenting a
/// subset as the full answer.
struct MergeCoverage {
  uint32_t num_shards = 0;     ///< Total shard count of the run.
  bool complete = true;        ///< True when every shard was present.
  std::vector<uint32_t> covered;        ///< Present shard ids, ascending.
  std::vector<SetIdRange> covered_ranges;  ///< Their set-id ranges,
                                           ///< parallel to `covered`.
  std::vector<uint32_t> missing;        ///< Absent shard ids, ascending.
};

/// Renders `cov` as the canonical partial-coverage stamp: "# partial
/// coverage", "# covered shards", "# covered set-id ranges", "# missing
/// shards" comment lines, ahead of whatever pair stream follows. The one
/// formatter behind the `run`/`merge` subcommands' stdout stamp and the
/// serve daemon's DEADLINE_EXCEEDED frame bodies, so the stamp grammar
/// cannot drift between the batch and serving paths.
std::string FormatCoverage(const MergeCoverage& cov);

/// K-way merges shard result streams into the canonical (ref_id, set_id)
/// order. The inputs must agree on num_shards, on the output-affecting
/// query options, AND on the reference payload (query_mode + query_hash),
/// and — unless `merge_options.allow_partial` — cover shard ids 0..N-1
/// exactly once each; anything else returns a one-line error (shards run
/// with, say, different --delta, or against different query files, would
/// merge into a stream that matches no single-process run). On success
/// fills `pairs` (exactly the in-process ShardedEngine output restricted
/// to the covered shards), and, when non-null, `stats` (per_shard[k] =
/// shard k's funnel; absent shards stay zero) and `coverage` (which
/// shards/ranges the merge actually covered).
std::string MergeShardResults(const std::vector<ShardResult>& results,
                              std::vector<PairMatch>* pairs,
                              ShardedSearchStats* stats = nullptr,
                              const MergeOptions& merge_options = {},
                              MergeCoverage* coverage = nullptr);

}  // namespace silkmoth

#endif  // SILKMOTH_SNAPSHOT_SHARD_RUNNER_H_
