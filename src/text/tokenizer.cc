#include "text/tokenizer.h"

#include <algorithm>
#include <cctype>

namespace silkmoth {

std::vector<std::string_view> SplitWords(std::string_view text) {
  std::vector<std::string_view> words;
  size_t i = 0;
  while (i < text.size()) {
    while (i < text.size() &&
           std::isspace(static_cast<unsigned char>(text[i]))) {
      ++i;
    }
    size_t start = i;
    while (i < text.size() &&
           !std::isspace(static_cast<unsigned char>(text[i]))) {
      ++i;
    }
    if (i > start) words.push_back(text.substr(start, i - start));
  }
  return words;
}

std::string PadForQGrams(std::string_view text, int q) {
  std::string padded(text);
  padded.append(static_cast<size_t>(q > 0 ? q - 1 : 0), kQGramPad);
  return padded;
}

Tokenizer::Tokenizer(TokenizerKind kind, int q) : kind_(kind), q_(q) {}

Element Tokenizer::MakeElement(std::string_view text, TokenDictionary* dict,
                               ElementArena* arena) const {
  // Token lists are assembled in scratch vectors (they need sorting and
  // deduplication) and materialized into the arena only once final.
  std::vector<TokenId> tokens;
  std::vector<TokenId> chunks;
  if (kind_ == TokenizerKind::kWord) {
    for (std::string_view w : SplitWords(text)) {
      tokens.push_back(dict->Intern(w));
    }
  } else {
    const std::string padded = PadForQGrams(text, q_);
    if (!text.empty()) {
      // All q-grams (index/probe tokens). The padded string has exactly
      // |text| q-grams.
      for (size_t i = 0; i + static_cast<size_t>(q_) <= padded.size(); ++i) {
        tokens.push_back(
            dict->Intern(std::string_view(padded).substr(i, q_)));
      }
      // Non-overlapping q-chunks (signature tokens), ceil(|text|/q) of them.
      for (size_t i = 0; i < text.size(); i += static_cast<size_t>(q_)) {
        chunks.push_back(
            dict->Intern(std::string_view(padded).substr(i, q_)));
      }
      std::sort(chunks.begin(), chunks.end());
    }
  }
  std::sort(tokens.begin(), tokens.end());
  tokens.erase(std::unique(tokens.begin(), tokens.end()), tokens.end());
  return MakeArenaElement(arena, text, tokens, chunks);
}

SetRecord Tokenizer::MakeSet(const std::vector<std::string>& element_texts,
                             TokenDictionary* dict,
                             ElementArena* arena) const {
  SetRecord set;
  set.elements.reserve(element_texts.size());
  for (const auto& text : element_texts) {
    Element e = MakeElement(text, dict, arena);
    // Empty elements carry no information and break the per-element weight
    // 1/|r_i|; the builders drop them.
    if (!e.tokens.empty()) set.elements.push_back(e);
  }
  return set;
}

}  // namespace silkmoth
