#include "core/engine.h"

#include <algorithm>
#include <thread>

#include "core/query_scratch.h"

namespace silkmoth {

SilkMoth::SilkMoth(const Collection* data, Options options)
    : data_(data), options_(options) {
  error_ = options_.Validate();
  if (error_.empty()) index_.Build(*data_);
}

std::vector<SearchMatch> SilkMoth::Search(const SetRecord& ref,
                                          SearchStats* stats) const {
  if (!ok()) return {};
  // One scratch per thread, reused across calls: repeated searches pay the
  // dense-array allocation once (the scratch grows to any collection it
  // sees and epoch-stamping keeps stale state invisible). ShrinkTo bounds
  // the retention when a past query against a much larger collection left
  // oversized buffers behind.
  static thread_local QueryScratch scratch;
  scratch.ShrinkTo(data_->sets.size());
  return RunSearchPass(ref, *data_, index_, options_, kNoExclude, stats,
                       &scratch);
}

std::vector<SearchMatch> SilkMoth::SearchTopK(const SetRecord& ref, size_t k,
                                              SearchStats* stats) const {
  if (!ok() || k == 0) return {};
  // The pass runs in top-k mode: it keeps a k-best heap during verification
  // and threads the heap's k-th-best score into the verifier as a floating
  // floor, so candidates whose upper bound cannot reach the current top k
  // are rejected without any matching solve. The returned matches are
  // already the exact top k, sorted best-first.
  static thread_local QueryScratch scratch;
  scratch.ShrinkTo(data_->sets.size());
  return RunSearchPass(ref, *data_, index_, options_, kNoExclude, stats,
                       &scratch, SetIdRange{}, k);
}

std::vector<PairMatch> SilkMoth::Discover(const Collection& refs,
                                          SearchStats* stats) const {
  return Discover(ReferenceBlock::External(refs), stats);
}

std::vector<PairMatch> SilkMoth::DiscoverSelf(SearchStats* stats) const {
  return Discover(ReferenceBlock::SelfJoin(*data_), stats);
}

std::vector<PairMatch> SilkMoth::Discover(const ReferenceBlock& block,
                                          SearchStats* stats) const {
  if (!ok()) return {};
  const Collection& refs = *block.refs;
  const bool self_join = block.self_join;
  const uint32_t ref_begin = block.begin_id();
  const uint32_t ref_end = block.end_id();
  const uint32_t num_refs = block.NumRefs();
  const int threads =
      std::max(1, std::min<int>(options_.num_threads,
                                static_cast<int>(num_refs == 0 ? 1
                                                               : num_refs)));

  const bool dedup_pairs =
      self_join && SelfJoinReportsUnorderedPairs(options_.metric);

  // One QueryScratch per worker: its dense arrays are sized to the data
  // collection on the first reference and then reused — epoch stamping
  // makes per-reference clearing a counter bump instead of an O(sets) wipe.
  auto run_range = [&](uint32_t begin, uint32_t end,
                       std::vector<PairMatch>* out, SearchStats* st,
                       QueryScratch* scratch) {
    for (uint32_t r = begin; r < end; ++r) {
      const uint32_t exclude = self_join ? r : kNoExclude;
      std::vector<SearchMatch> matches =
          RunSearchPass(refs.sets[r], *data_, index_, options_, exclude, st,
                        scratch);
      for (const SearchMatch& m : matches) {
        if (dedup_pairs && m.set_id < r) continue;
        out->push_back(PairMatch{r, m.set_id, m.matching_score,
                                 m.relatedness});
      }
    }
  };

  std::vector<PairMatch> results;
  if (threads == 1) {
    QueryScratch scratch;
    run_range(ref_begin, ref_end, &results, stats, &scratch);
  } else {
    std::vector<std::vector<PairMatch>> partial(threads);
    std::vector<SearchStats> partial_stats(threads);
    std::vector<QueryScratch> scratches(threads);
    std::vector<std::thread> workers;
    workers.reserve(threads);
    const uint32_t chunk = (num_refs + threads - 1) / threads;
    for (int t = 0; t < threads; ++t) {
      const uint32_t begin = ref_begin + std::min(num_refs, t * chunk);
      const uint32_t end = ref_begin + std::min(num_refs, (t + 1) * chunk);
      workers.emplace_back(run_range, begin, end, &partial[t],
                           &partial_stats[t], &scratches[t]);
    }
    for (auto& w : workers) w.join();
    for (int t = 0; t < threads; ++t) {
      results.insert(results.end(), partial[t].begin(), partial[t].end());
      if (stats != nullptr) stats->Merge(partial_stats[t]);
    }
  }

  // External blocks carry the query-side accounting; stamped once, after
  // the worker merge.
  if (stats != nullptr && !self_join) {
    stats->query_sets += num_refs;
    stats->oov_tokens += block.oov_tokens;
  }

  std::sort(results.begin(), results.end(), PairMatchIdLess);
  return results;
}

}  // namespace silkmoth
