// Figure 8 reproduction: SilkMoth vs the FastJoin-style baseline on the
// approximate string matching application (Section 8.5). Left: θ sweep at
// α = 0.8. Right: α sweep at θ(δ) = 0.8.
//
// Expected shape (paper): SILKMOTH <= FASTJOIN everywhere, with gaps up to
// ~13x at lower α, converging as α grows (the baseline's signature becomes
// competitive when the sim-thresh cut dominates).

#include <iostream>

#include "baseline/fastjoin.h"
#include "bench_common.h"

namespace {

using namespace silkmoth;
using namespace silkmoth::bench;

RunResult RunFastJoin(const Workload& w) {
  RunResult r;
  FastJoin baseline(&w.data, w.options);
  if (!baseline.ok()) {
    std::fprintf(stderr, "fastjoin: %s\n", baseline.error().c_str());
    return r;
  }
  WallTimer timer;
  r.results = baseline.DiscoverSelf(&r.stats).size();
  r.seconds = timer.ElapsedSeconds();
  return r;
}

void Sweep(const char* title, const std::vector<double>& deltas,
           const std::vector<double>& alphas) {
  std::cout << "--- " << title << " ---\n";
  TablePrinter table({"delta", "alpha", "system", "time(s)", "verifications",
                      "results", "agree"});
  for (double delta : deltas) {
    for (double alpha : alphas) {
      // Rebuild per α: the q-gram length follows α (footnote 11).
      Workload w = StringMatchingWorkload(Scaled(500), delta, alpha);
      const RunResult sm = RunSilkMoth(w);
      const RunResult fj = RunFastJoin(w);
      const char* agree = sm.results == fj.results ? "yes" : "NO!";
      table.AddRow({TablePrinter::Num(delta, 2), TablePrinter::Num(alpha, 2),
                    "SILKMOTH", TablePrinter::Num(sm.seconds, 3),
                    TablePrinter::Int(
                        static_cast<long long>(sm.stats.verifications)),
                    TablePrinter::Int(static_cast<long long>(sm.results)),
                    agree});
      table.AddRow({TablePrinter::Num(delta, 2), TablePrinter::Num(alpha, 2),
                    "FASTJOIN", TablePrinter::Num(fj.seconds, 3),
                    TablePrinter::Int(
                        static_cast<long long>(fj.stats.verifications)),
                    TablePrinter::Int(static_cast<long long>(fj.results)),
                    agree});
    }
  }
  table.Print(std::cout);
  std::cout << "\n";
}

}  // namespace

int main() {
  PrintHeader("Figure 8", "SilkMoth vs FastJoin (string matching)");
  Sweep("8 left: varying theta (alpha=0.8)", {0.7, 0.75, 0.8, 0.85}, {0.8});
  Sweep("8 right: varying alpha (theta=0.8)", {0.8}, {0.7, 0.75, 0.8, 0.85});
  return 0;
}
