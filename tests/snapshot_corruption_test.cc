// Corrupt-snapshot robustness: every way a snapshot file can go bad —
// truncation, bad magic/version/endianness, flipped checksum or payload
// bytes, and checksum-valid section-length lies — must yield a clean error
// from LoadSnapshot: never UB, never an OOM-sized allocation, never a
// partially-initialized Snapshot (the output is untouched on failure).

#include <cstring>
#include <fstream>
#include <string>

#include <gtest/gtest.h>

#include "datagen/builders.h"
#include "snapshot/snapshot.h"

namespace silkmoth {
namespace {

class SnapshotCorruptionTest : public testing::Test {
 protected:
  void SetUp() override {
    RawSets raw = {
        {"alpha beta gamma", "delta epsilon"},
        {"alpha beta", "zeta eta theta iota"},
        {"gamma delta epsilon zeta"},
        {"kappa lambda mu"},
    };
    Collection data = BuildCollection(raw, TokenizerKind::kWord);
    Snapshot snap = BuildSnapshot(std::move(data), TokenizerKind::kWord, 0,
                                  /*num_shards=*/2);
    path_ = testing::TempDir() + "/silkmoth_corruption_test.snap";
    ASSERT_EQ(SaveSnapshot(snap, path_), "");
    std::ifstream in(path_, std::ios::binary);
    pristine_.assign(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
    ASSERT_GT(pristine_.size(), kSnapshotHeaderSize);

    // The pristine file must load, or every "rejects corruption" assertion
    // below would be vacuous.
    Snapshot check;
    ASSERT_EQ(LoadSnapshot(path_, &check), "");
    ASSERT_EQ(check.num_shards(), 2u);
    ASSERT_EQ(check.data.sets.size(), 4u);
  }

  void TearDown() override { std::remove(path_.c_str()); }

  /// Recomputes the header checksum over the (possibly doctored) payload, so
  /// mutations get past the CRC gate and must be caught by the structural
  /// bounds checks alone.
  static void FixCrc(std::string* bytes) {
    const uint32_t crc =
        SnapshotCrc32(bytes->data() + kSnapshotHeaderSize,
                      bytes->size() - kSnapshotHeaderSize);
    std::memcpy(bytes->data() + kSnapshotCrcOffset, &crc, 4);
  }

  static void FixPayloadLen(std::string* bytes) {
    const uint64_t len = bytes->size() - kSnapshotHeaderSize;
    std::memcpy(bytes->data() + kSnapshotPayloadLenOffset, &len, 8);
  }

  /// Writes `bytes` to disk and asserts LoadSnapshot rejects them with an
  /// error mentioning `expect_substr`, leaving the output untouched.
  void ExpectRejected(const std::string& bytes,
                      const std::string& expect_substr) {
    {
      std::ofstream out(path_, std::ios::binary | std::ios::trunc);
      out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    }
    // Sentinel state: a failed load must not disturb any of it.
    Snapshot out;
    out.q = -42;
    out.tokenizer = TokenizerKind::kQGram;
    const std::string err = LoadSnapshot(path_, &out);
    ASSERT_FALSE(err.empty()) << "corrupt snapshot loaded cleanly ("
                              << expect_substr << ")";
    EXPECT_NE(err.find(expect_substr), std::string::npos)
        << "unexpected error: " << err;
    EXPECT_EQ(out.q, -42) << "output modified by failed load";
    EXPECT_EQ(out.tokenizer, TokenizerKind::kQGram);
    EXPECT_TRUE(out.data.sets.empty());
    EXPECT_TRUE(out.shards.empty());
    EXPECT_EQ(out.data.dict, nullptr);
  }

  /// Offset of the first SHRD section header within the file (the fourcc is
  /// binary and cannot collide with the lowercase-ASCII dictionary tokens).
  size_t FindShrdSection() const {
    const size_t pos = pristine_.find("SHRD");
    EXPECT_NE(pos, std::string::npos);
    return pos;
  }

  std::string path_;
  std::string pristine_;
};

TEST_F(SnapshotCorruptionTest, MissingFile) {
  Snapshot out;
  out.q = -42;
  const std::string err =
      LoadSnapshot(testing::TempDir() + "/no_such_snapshot.snap", &out);
  EXPECT_NE(err.find("cannot open"), std::string::npos) << err;
  EXPECT_EQ(out.q, -42);
}

TEST_F(SnapshotCorruptionTest, EmptyAndHeaderTruncatedFiles) {
  ExpectRejected("", "truncated header");
  ExpectRejected(pristine_.substr(0, 4), "truncated header");
  ExpectRejected(pristine_.substr(0, kSnapshotHeaderSize - 1),
                 "truncated header");
}

TEST_F(SnapshotCorruptionTest, BadMagic) {
  std::string bytes = pristine_;
  bytes[0] = 'X';
  ExpectRejected(bytes, "bad magic");
}

TEST_F(SnapshotCorruptionTest, UnsupportedVersion) {
  std::string bytes = pristine_;
  const uint32_t version = kSnapshotVersion + 1;
  std::memcpy(bytes.data() + kSnapshotVersionOffset, &version, 4);
  ExpectRejected(bytes, "unsupported snapshot version");
}

TEST_F(SnapshotCorruptionTest, EndiannessMismatch) {
  std::string bytes = pristine_;
  std::swap(bytes[kSnapshotEndianOffset], bytes[kSnapshotEndianOffset + 3]);
  ExpectRejected(bytes, "endianness mismatch");
}

TEST_F(SnapshotCorruptionTest, PayloadTruncationAndPadding) {
  // Cut at many points in the payload; every prefix must be rejected by the
  // length gate long before any parsing happens.
  for (size_t keep :
       {kSnapshotHeaderSize, kSnapshotHeaderSize + 1, pristine_.size() / 2,
        pristine_.size() - 8, pristine_.size() - 1}) {
    ExpectRejected(pristine_.substr(0, keep), "payload length mismatch");
  }
  ExpectRejected(pristine_ + "JUNK", "payload length mismatch");
}

TEST_F(SnapshotCorruptionTest, FlippedChecksumByte) {
  std::string bytes = pristine_;
  bytes[kSnapshotCrcOffset] ^= 0x5A;
  ExpectRejected(bytes, "checksum mismatch");
}

TEST_F(SnapshotCorruptionTest, FlippedPayloadBytes) {
  for (size_t at : {size_t{0}, pristine_.size() / 3, pristine_.size() - 2}) {
    std::string bytes = pristine_;
    bytes[kSnapshotHeaderSize + at % (bytes.size() - kSnapshotHeaderSize)] ^=
        0x01;
    ExpectRejected(bytes, "checksum mismatch");
  }
}

// From here on every mutation re-checksums, proving the structural bounds
// checks reject lies on their own (a forged CRC must not enable UB or OOM).

TEST_F(SnapshotCorruptionTest, SectionLengthLieHuge) {
  std::string bytes = pristine_;
  // META is the first section: its u64 body length sits right after the
  // 4-byte tag at the start of the payload.
  const uint64_t huge = uint64_t{1} << 60;
  std::memcpy(bytes.data() + kSnapshotHeaderSize + 4, &huge, 8);
  FixCrc(&bytes);
  ExpectRejected(bytes, "malformed META section");
}

TEST_F(SnapshotCorruptionTest, MetaNumSetsLie) {
  std::string bytes = pristine_;
  // META body layout: tokenizer u32, q u32, num_sets u64, num_shards u32.
  const uint64_t lie = uint64_t{1} << 40;
  std::memcpy(bytes.data() + kSnapshotHeaderSize + 12 + 8, &lie, 8);
  FixCrc(&bytes);
  ExpectRejected(bytes, "truncated COLL section");
}

TEST_F(SnapshotCorruptionTest, DictCountLie) {
  std::string bytes = pristine_;
  // DICT follows META: payload + META section (12 + 20) + DICT tag/len 12;
  // its body starts with the u64 token count.
  const size_t dict_count_at = kSnapshotHeaderSize + 32 + 12;
  const uint64_t lie = uint64_t{1} << 50;
  std::memcpy(bytes.data() + dict_count_at, &lie, 8);
  FixCrc(&bytes);
  ExpectRejected(bytes, "truncated DICT section");
}

TEST_F(SnapshotCorruptionTest, OffsetsCountLieDoesNotAllocate) {
  std::string bytes = pristine_;
  // SHRD body: shard u32, begin u32, end u32, offsets_count u64, ...; the
  // lie lands on offsets_count
  const size_t shrd = FindShrdSection();
  const uint64_t lie = uint64_t{1} << 55;  // Would be a 256 PiB allocation.
  std::memcpy(bytes.data() + shrd + 12 + 12, &lie, 8);
  FixCrc(&bytes);
  ExpectRejected(bytes, "malformed SHRD section 0");
}

TEST_F(SnapshotCorruptionTest, InvalidCsrOffsets) {
  std::string bytes = pristine_;
  // First offsets entry must be 0; a checksum-valid nonzero value has to be
  // caught by AdoptCsr's structural validation.
  const size_t shrd = FindShrdSection();
  const uint64_t bogus = 12345;
  std::memcpy(bytes.data() + shrd + 12 + 12 + 8, &bogus, 8);
  FixCrc(&bytes);
  ExpectRejected(bytes, "invalid CSR arrays in SHRD section 0");
}

TEST_F(SnapshotCorruptionTest, PostingValueLie) {
  std::string bytes = pristine_;
  // A checksum-valid posting pointing outside the shard's set range (or at
  // a nonexistent element) would be indexed unchecked by query code; the
  // loader's value gate must reject it. First posting of shard 0 sits after
  // the SHRD ids (12), the offsets count (8), and the offsets block.
  const size_t shrd = FindShrdSection();
  uint64_t offsets_count = 0;
  std::memcpy(&offsets_count, bytes.data() + shrd + 12 + 12, 8);
  ASSERT_GT(offsets_count, 0u);
  const size_t first_posting =
      shrd + 12 + 12 + 8 + 8 * static_cast<size_t>(offsets_count) + 8;
  const uint32_t bogus_set = 0xFFFFFF00u;
  std::memcpy(bytes.data() + first_posting, &bogus_set, 4);
  FixCrc(&bytes);
  ExpectRejected(bytes, "posting out of range in SHRD section 0");

  // Same gate for a plausible set id with an impossible element id.
  bytes = pristine_;
  const uint32_t bogus_elem = 0xFFFFFF00u;
  std::memcpy(bytes.data() + first_posting + 4, &bogus_elem, 4);
  FixCrc(&bytes);
  ExpectRejected(bytes, "posting out of range in SHRD section 0");
}

TEST_F(SnapshotCorruptionTest, UnsortedPostingsInList) {
  std::string bytes = pristine_;
  // Token 0 ("alpha") occurs in sets 0 and 1, both owned by shard 0, so the
  // snapshot's first list is [{0,0},{1,0}]. Swapping the two (checksum
  // fixed) breaks the (set, elem) order ListInSet binary-searches; writing
  // the first over the second makes a duplicate. Both must be rejected.
  const size_t shrd = FindShrdSection();
  uint64_t offsets_count = 0;
  std::memcpy(&offsets_count, bytes.data() + shrd + 12 + 12, 8);
  const size_t first_posting =
      shrd + 12 + 12 + 8 + 8 * static_cast<size_t>(offsets_count) + 8;
  const uint32_t swapped[4] = {1, 0, 0, 0};  // {1,0} then {0,0}.
  std::memcpy(bytes.data() + first_posting, swapped, 16);
  FixCrc(&bytes);
  ExpectRejected(bytes, "unsorted or duplicate postings in SHRD section 0");

  bytes = pristine_;
  const uint32_t duplicated[4] = {0, 0, 0, 0};  // {0,0} twice.
  std::memcpy(bytes.data() + first_posting, duplicated, 16);
  FixCrc(&bytes);
  ExpectRejected(bytes, "unsorted or duplicate postings in SHRD section 0");
}

TEST_F(SnapshotCorruptionTest, TrailingGarbageAfterSections) {
  std::string bytes = pristine_ + std::string(16, '\0');
  FixPayloadLen(&bytes);
  FixCrc(&bytes);
  ExpectRejected(bytes, "trailing bytes after last section");
}

TEST_F(SnapshotCorruptionTest, ZeroShardsRejected) {
  std::string bytes = pristine_;
  // META body: ..., num_shards u32 at offset 16 of the body.
  const uint32_t zero = 0;
  std::memcpy(bytes.data() + kSnapshotHeaderSize + 12 + 16, &zero, 4);
  FixCrc(&bytes);
  ExpectRejected(bytes, "malformed META section");
}

}  // namespace
}  // namespace silkmoth
