#include "core/brute_force.h"

#include <algorithm>

#include "core/relatedness.h"
#include "matching/verifier.h"

namespace silkmoth {

BruteForce::BruteForce(const Collection* data, Options options)
    : data_(data), options_(options) {
  error_ = options_.Validate();
}

std::vector<SearchMatch> BruteForce::Search(const SetRecord& ref) const {
  std::vector<SearchMatch> results;
  if (!ok() || ref.Empty()) return results;
  const MaxMatchingVerifier verifier(GetSimilarity(options_.phi),
                                     options_.alpha, options_.reduction);
  for (uint32_t s = 0; s < data_->sets.size(); ++s) {
    const SetRecord& set = data_->sets[s];
    const double m = verifier.Score(ref, set);
    if (IsRelated(m, ref.Size(), set.Size(), options_)) {
      results.push_back(SearchMatch{
          s, m, RelatednessScore(m, ref.Size(), set.Size(), options_)});
    }
  }
  return results;
}

std::vector<PairMatch> BruteForce::Discover(const Collection& refs) const {
  return DiscoverImpl(refs, /*self_join=*/false);
}

std::vector<PairMatch> BruteForce::DiscoverSelf() const {
  return DiscoverImpl(*data_, /*self_join=*/true);
}

std::vector<PairMatch> BruteForce::DiscoverImpl(const Collection& refs,
                                                bool self_join) const {
  std::vector<PairMatch> results;
  if (!ok()) return results;
  const bool dedup_pairs =
      self_join && options_.metric == Relatedness::kSimilarity;
  const MaxMatchingVerifier verifier(GetSimilarity(options_.phi),
                                     options_.alpha, options_.reduction);
  for (uint32_t r = 0; r < refs.sets.size(); ++r) {
    const SetRecord& ref = refs.sets[r];
    if (ref.Empty()) continue;
    for (uint32_t s = 0; s < data_->sets.size(); ++s) {
      if (self_join && s == r) continue;
      if (dedup_pairs && s < r) continue;
      const SetRecord& set = data_->sets[s];
      const double m = verifier.Score(ref, set);
      if (IsRelated(m, ref.Size(), set.Size(), options_)) {
        results.push_back(PairMatch{
            r, s, m, RelatednessScore(m, ref.Size(), set.Size(), options_)});
      }
    }
  }
  std::sort(results.begin(), results.end(),
            [](const PairMatch& a, const PairMatch& b) {
              if (a.ref_id != b.ref_id) return a.ref_id < b.ref_id;
              return a.set_id < b.set_id;
            });
  return results;
}

}  // namespace silkmoth
