#include "snapshot/snapshot.h"

#include <algorithm>
#include <array>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <type_traits>

#include "core/sharded_engine.h"
#include "util/atomic_file_writer.h"
#include "util/fault_injection.h"

namespace silkmoth {
namespace {

// The flat-block read/write below serves these types directly out of the
// file payload (views) or memcpys them (deep copy); all three facts are
// load-bearing.
static_assert(std::is_trivially_copyable_v<Posting> && sizeof(Posting) == 8,
              "Posting must be a flat 8-byte record for in-place snapshot "
              "service");
static_assert(sizeof(size_t) == sizeof(uint64_t),
              "snapshot offsets are stored as u64 and viewed as size_t");
static_assert(sizeof(TokenId) == 4,
              "element token blocks are stored as u32 arrays");

// Section fourcc tags, in the order they must appear in the payload.
constexpr uint32_t kSecMeta = 0x4154454du;  // "META"
constexpr uint32_t kSecDict = 0x54434944u;  // "DICT"
constexpr uint32_t kSecColl = 0x4c4c4f43u;  // "COLL"
constexpr uint32_t kSecStab = 0x42415453u;  // "STAB"
constexpr uint32_t kSecShrd = 0x44524853u;  // "SHRD"

// Container kinds (META field): what this file is in the split protocol.
constexpr uint32_t kContainerMonolithic = 0;
constexpr uint32_t kContainerSplitCommon = 1;
constexpr uint32_t kContainerSplitShard = 2;

constexpr uint32_t kNoShardId = 0xFFFFFFFFu;

// ---------------------------------------------------------------------------
// Writer: append little-endian scalars and raw blocks to a byte buffer.
// The buffer holds exactly the payload, and the payload begins at the
// 8-aligned file offset kSnapshotHeaderSize, so buf->size() % 8 is the
// block's alignment both in the file and in a mapped region.

void AppendBytes(std::string* buf, const void* data, size_t size) {
  buf->append(static_cast<const char*>(data), size);
}

void AppendU32(std::string* buf, uint32_t v) { AppendBytes(buf, &v, 4); }
void AppendU64(std::string* buf, uint64_t v) { AppendBytes(buf, &v, 8); }

/// Zero-pads to the next 8-byte boundary; array blocks are always written
/// (and read back) 8-aligned so views can be typed without misalignment.
void AlignTo8(std::string* buf) {
  while (buf->size() % 8 != 0) buf->push_back('\0');
}

// Opens a section: appends the tag and a length placeholder, returns the
// placeholder's position for CloseSection to patch.
size_t OpenSection(std::string* buf, uint32_t tag) {
  AppendU32(buf, tag);
  const size_t len_pos = buf->size();
  AppendU64(buf, 0);
  return len_pos;
}

void CloseSection(std::string* buf, size_t len_pos) {
  const uint64_t body_len = buf->size() - (len_pos + 8);
  std::memcpy(buf->data() + len_pos, &body_len, 8);
}

// ---------------------------------------------------------------------------
// Reader: a bounds-checked cursor over a byte span. Every read checks the
// remaining length first; the first overrun latches an error and every
// subsequent read fails, so parsing code can check ok() once per section.
// `base` is the span's offset from the payload start, which makes the
// 8-alignment of any position computable — ReadArrayView aligns exactly the
// way the writer did before handing out a typed view of the raw bytes.

class Reader {
 public:
  Reader(const char* data, size_t size, size_t base)
      : data_(data), size_(size), base_(base) {}

  bool ok() const { return ok_; }
  size_t remaining() const { return size_ - pos_; }
  size_t payload_pos() const { return base_ + pos_; }

  const char* ReadBytes(size_t n) {
    if (!ok_ || n > remaining()) {
      ok_ = false;
      return nullptr;
    }
    const char* p = data_ + pos_;
    pos_ += n;
    return p;
  }

  uint32_t ReadU32() {
    const char* p = ReadBytes(4);
    uint32_t v = 0;
    if (p != nullptr) std::memcpy(&v, p, 4);
    return v;
  }

  uint64_t ReadU64() {
    const char* p = ReadBytes(8);
    uint64_t v = 0;
    if (p != nullptr) std::memcpy(&v, p, 8);
    return v;
  }

  /// Skips the writer's zero padding up to the next 8-aligned payload
  /// position.
  void AlignTo8() {
    const size_t pad = (8 - (payload_pos() & 7)) & 7;
    if (pad != 0) ReadBytes(pad);
  }

  /// Aligns, validates `count` against the remaining bytes, and returns a
  /// typed view of the block *in place* — no allocation, no copy, so a
  /// lying count can neither OOM nor overrun (the span is empty and ok()
  /// is false on any failure).
  template <typename T>
  std::span<const T> ReadArrayView(uint64_t count) {
    AlignTo8();
    if (!ok_ || count > remaining() / sizeof(T)) {
      ok_ = false;
      return {};
    }
    const char* p = ReadBytes(static_cast<size_t>(count) * sizeof(T));
    if (p == nullptr) return {};
    return {reinterpret_cast<const T*>(p), static_cast<size_t>(count)};
  }

 private:
  const char* data_;
  size_t size_;
  size_t base_;
  size_t pos_ = 0;
  bool ok_ = true;
};

// Reads one section header and returns a sub-reader confined to its body.
// The tag must match and the claimed body length must fit in the payload.
bool EnterSection(Reader* payload, uint32_t want_tag, Reader* body) {
  const uint32_t tag = payload->ReadU32();
  const uint64_t len = payload->ReadU64();
  if (!payload->ok() || tag != want_tag) return false;
  const size_t body_base = payload->payload_pos();
  const char* p = payload->ReadBytes(len);
  if (p == nullptr) return false;
  *body = Reader(p, len, body_base);
  return true;
}

/// True when `offsets` is a valid CSR ruler: starts at 0, never decreases,
/// and ends exactly at `arena_size`.
bool ValidOffsets(std::span<const uint64_t> offsets, uint64_t arena_size) {
  if (offsets.empty() || offsets.front() != 0) return false;
  for (size_t i = 1; i < offsets.size(); ++i) {
    if (offsets[i] < offsets[i - 1]) return false;
  }
  return offsets.back() == arena_size;
}

// ---------------------------------------------------------------------------
// Section writers.

struct MetaInfo {
  uint32_t kind = kContainerMonolithic;
  uint32_t tokenizer = 0;
  uint32_t q = 0;
  uint64_t num_sets = 0;
  uint32_t num_shards = 0;
  uint32_t binding_crc = 0;   ///< Split-shard: CRC of the common payload.
  uint32_t shard_id = kNoShardId;  ///< Split-shard: which shard this is.
  uint64_t generation = 1;    ///< Compaction lineage counter (v3).
};

void AppendMetaSection(std::string* payload, const MetaInfo& meta) {
  const size_t len_pos = OpenSection(payload, kSecMeta);
  AppendU32(payload, meta.kind);
  AppendU32(payload, meta.tokenizer);
  AppendU32(payload, meta.q);
  AppendU64(payload, meta.num_sets);
  AppendU32(payload, meta.num_shards);
  AppendU32(payload, meta.binding_crc);
  AppendU32(payload, meta.shard_id);
  AppendU64(payload, meta.generation);
  CloseSection(payload, len_pos);
}

void AppendDictSection(std::string* payload, const TokenDictionary& dict) {
  const size_t len_pos = OpenSection(payload, kSecDict);
  AppendU64(payload, dict.size());
  AlignTo8(payload);
  uint64_t offset = 0;
  for (TokenId t = 0; t < dict.size(); ++t) {
    AppendU64(payload, offset);
    offset += dict.Token(t).size();
  }
  AppendU64(payload, offset);
  for (TokenId t = 0; t < dict.size(); ++t) {
    const std::string_view tok = dict.Token(t);
    AppendBytes(payload, tok.data(), tok.size());
  }
  CloseSection(payload, len_pos);
}

void AppendCollSection(std::string* payload, const Collection& data) {
  const size_t len_pos = OpenSection(payload, kSecColl);
  const uint64_t num_elements = data.NumElements();
  AppendU64(payload, data.sets.size());
  AppendU64(payload, num_elements);
  AlignTo8(payload);
  // Four CSR rulers (all u64, written back to back so one alignment pad
  // covers them), then the three arenas they slice.
  uint64_t cursor = 0;
  for (const SetRecord& set : data.sets) {  // set -> element range
    AppendU64(payload, cursor);
    cursor += set.elements.size();
  }
  AppendU64(payload, cursor);
  uint64_t text_off = 0, token_off = 0, chunk_off = 0;
  for (const SetRecord& set : data.sets) {  // element -> text range
    for (const Element& e : set.elements) {
      AppendU64(payload, text_off);
      text_off += e.text.size();
    }
  }
  AppendU64(payload, text_off);
  for (const SetRecord& set : data.sets) {  // element -> token range
    for (const Element& e : set.elements) {
      AppendU64(payload, token_off);
      token_off += e.tokens.size();
    }
  }
  AppendU64(payload, token_off);
  for (const SetRecord& set : data.sets) {  // element -> chunk range
    for (const Element& e : set.elements) {
      AppendU64(payload, chunk_off);
      chunk_off += e.chunks.size();
    }
  }
  AppendU64(payload, chunk_off);
  for (const SetRecord& set : data.sets) {  // text arena
    for (const Element& e : set.elements) {
      AppendBytes(payload, e.text.data(), e.text.size());
    }
  }
  AlignTo8(payload);
  for (const SetRecord& set : data.sets) {  // token arena
    for (const Element& e : set.elements) {
      AppendBytes(payload, e.tokens.data(), e.tokens.size() * sizeof(TokenId));
    }
  }
  AlignTo8(payload);
  for (const SetRecord& set : data.sets) {  // chunk arena
    for (const Element& e : set.elements) {
      AppendBytes(payload, e.chunks.data(), e.chunks.size() * sizeof(TokenId));
    }
  }
  CloseSection(payload, len_pos);
}

void AppendStabSection(std::string* payload,
                       const std::vector<Snapshot::Shard>& shards) {
  const size_t len_pos = OpenSection(payload, kSecStab);
  AppendU32(payload, static_cast<uint32_t>(shards.size()));
  for (const Snapshot::Shard& shard : shards) {
    AppendU32(payload, shard.range.begin);
    AppendU32(payload, shard.range.end);
  }
  CloseSection(payload, len_pos);
}

void AppendShrdSection(std::string* payload, uint32_t shard_id,
                       const Snapshot::Shard& shard) {
  const size_t len_pos = OpenSection(payload, kSecShrd);
  AppendU32(payload, shard_id);
  AppendU32(payload, shard.range.begin);
  AppendU32(payload, shard.range.end);
  const auto offsets = shard.index.RawOffsets();
  const auto postings = shard.index.RawPostings();
  AppendU64(payload, offsets.size());
  AlignTo8(payload);
  AppendBytes(payload, offsets.data(), offsets.size() * sizeof(size_t));
  AppendU64(payload, postings.size());
  AlignTo8(payload);
  AppendBytes(payload, postings.data(), postings.size() * sizeof(Posting));
  CloseSection(payload, len_pos);
}

/// Computes the payload CRC, frames it with the v2 header, and stages the
/// container's bytes through `writer` (AtomicFileWriter's ".tmp" sibling).
/// Publication is a separate step (writer->Commit()), so multi-file saves
/// can stage everything before renaming anything — and an abandoned writer
/// cleans its staging file up by itself. `crc_out` (optional) receives the
/// payload CRC — the split protocol's binding id.
std::string StageContainer(AtomicFileWriter* writer,
                           const std::string& payload,
                           uint32_t* crc_out = nullptr) {
  std::string header(kSnapshotHeaderSize, '\0');
  std::memcpy(header.data(), kSnapshotMagic, sizeof(kSnapshotMagic));
  const uint32_t version = kSnapshotVersion;
  std::memcpy(header.data() + kSnapshotVersionOffset, &version, 4);
  const uint32_t endian = kSnapshotEndianMarker;
  std::memcpy(header.data() + kSnapshotEndianOffset, &endian, 4);
  const uint64_t payload_len = payload.size();
  std::memcpy(header.data() + kSnapshotPayloadLenOffset, &payload_len, 8);
  const uint32_t crc = SnapshotCrc32(payload.data(), payload.size());
  std::memcpy(header.data() + kSnapshotCrcOffset, &crc, 4);
  if (crc_out != nullptr) *crc_out = crc;

  std::string err = writer->Open();
  if (err.empty()) err = writer->Write(header);
  if (err.empty()) err = writer->Write(payload);
  if (err.empty()) err = writer->Stage();
  return err;
}

/// Stage + commit in one step, for single-file saves.
std::string WriteContainer(const std::string& path,
                           const std::string& payload,
                           const char* fault_site,
                           uint32_t* crc_out = nullptr) {
  AtomicFileWriter writer(path, fault_site);
  const std::string err = StageContainer(&writer, payload, crc_out);
  if (!err.empty()) return err;
  return writer.Commit();
}

// ---------------------------------------------------------------------------
// Container opening: one region per file, with header/CRC gate and byte
// accounting.

struct ContainerView {
  MmapRegion region;
  const char* payload = nullptr;
  size_t payload_len = 0;
  uint32_t crc = 0;
};

std::string OpenContainer(const std::string& path, SnapshotLoadMode mode,
                          ContainerView* out, SnapshotLoadStats* stats) {
  // Fault-injection site: a worker armed with `snapshot-open:fail` sees its
  // snapshot load error out, exercising the orchestrator's exit-nonzero
  // path without a real broken file.
  if (fault::Hit("snapshot-open").kind == fault::Outcome::kFail) {
    return "cannot open " + path + " (injected open failure)";
  }
  ContainerView cv;
  const std::string io_err = mode == SnapshotLoadMode::kMmap
                                 ? cv.region.Map(path)
                                 : cv.region.Read(path);
  if (!io_err.empty()) return io_err;
  stats->files += 1;
  if (cv.region.is_mapped()) {
    stats->bytes_mapped += cv.region.size();
  } else {
    stats->bytes_copied += cv.region.size();
  }

  const char* buf = cv.region.data();
  const size_t file_size = cv.region.size();
  if (file_size < kSnapshotHeaderSize) {
    return path + ": truncated header (file too small to be a snapshot)";
  }
  // Header gate: magic, version, endianness, length, checksum — in that
  // order, so every error names the first thing actually wrong.
  if (std::memcmp(buf, kSnapshotMagic, sizeof(kSnapshotMagic)) != 0) {
    return path + ": bad magic (not a silkmoth snapshot)";
  }
  uint32_t version = 0;
  std::memcpy(&version, buf + kSnapshotVersionOffset, 4);
  if (version != kSnapshotVersion) {
    return path + ": unsupported snapshot version " + std::to_string(version);
  }
  uint32_t endian = 0;
  std::memcpy(&endian, buf + kSnapshotEndianOffset, 4);
  if (endian != kSnapshotEndianMarker) {
    return path + ": endianness mismatch (snapshot written on an " +
           "opposite-endian machine)";
  }
  uint64_t payload_len = 0;
  std::memcpy(&payload_len, buf + kSnapshotPayloadLenOffset, 8);
  if (payload_len != file_size - kSnapshotHeaderSize) {
    return path + ": payload length mismatch (truncated or padded file)";
  }
  uint32_t want_crc = 0;
  std::memcpy(&want_crc, buf + kSnapshotCrcOffset, 4);
  cv.payload = buf + kSnapshotHeaderSize;
  cv.payload_len = payload_len;
  cv.crc = SnapshotCrc32(cv.payload, payload_len);
  if (cv.crc != want_crc) {
    return path + ": checksum mismatch (corrupt payload)";
  }
  *out = std::move(cv);
  return "";
}

// ---------------------------------------------------------------------------
// Section parsers. All views point into the container's bytes; `deep_copy`
// materializes owned storage instead (the kCopy mode).

bool ParseMetaSection(Reader* payload, MetaInfo* meta) {
  Reader body(nullptr, 0, 0);
  if (!EnterSection(payload, kSecMeta, &body)) return false;
  meta->kind = body.ReadU32();
  meta->tokenizer = body.ReadU32();
  meta->q = body.ReadU32();
  meta->num_sets = body.ReadU64();
  meta->num_shards = body.ReadU32();
  meta->binding_crc = body.ReadU32();
  meta->shard_id = body.ReadU32();
  meta->generation = body.ReadU64();
  return body.ok() && body.remaining() == 0 &&
         meta->kind <= kContainerSplitShard && meta->tokenizer <= 1 &&
         meta->q <= (1u << 20) && meta->num_shards != 0 &&
         meta->generation != 0;
}

std::string ParseDictSection(Reader* payload, const std::string& path,
                             bool deep_copy,
                             std::shared_ptr<TokenDictionary>* out) {
  Reader body(nullptr, 0, 0);
  if (!EnterSection(payload, kSecDict, &body)) {
    return path + ": malformed DICT section";
  }
  const uint64_t count = body.ReadU64();
  // count+1 offsets; reject counts the body cannot possibly hold before
  // computing count + 1 (no overflow, no oversized view).
  if (!body.ok() || count > body.remaining() / 8) {
    return path + ": truncated DICT section";
  }
  const std::span<const uint64_t> offsets =
      body.ReadArrayView<uint64_t>(count + 1);
  if (!body.ok()) return path + ": truncated DICT section";
  if (!ValidOffsets(offsets, body.remaining())) {
    return path + ": malformed DICT section";
  }
  const char* bytes = body.ReadBytes(body.remaining());
  if (bytes == nullptr && offsets.back() != 0) {
    return path + ": truncated DICT section";
  }
  std::vector<std::string_view> tokens(static_cast<size_t>(count));
  for (uint64_t t = 0; t < count; ++t) {
    tokens[t] = std::string_view(bytes + offsets[t],
                                 static_cast<size_t>(offsets[t + 1] -
                                                     offsets[t]));
  }
  auto dict = std::make_shared<TokenDictionary>();
  if (deep_copy) {
    for (uint64_t t = 0; t < count; ++t) {
      if (dict->Intern(tokens[t]) != t) {
        return path + ": duplicate token in DICT section";
      }
    }
  } else {
    if (!dict->AdoptTokens(std::move(tokens)).empty()) {
      return path + ": duplicate token in DICT section";
    }
  }
  *out = std::move(dict);
  return "";
}

std::string ParseCollSection(Reader* payload, const std::string& path,
                             uint64_t want_sets, bool deep_copy,
                             std::vector<SetRecord>* out) {
  Reader body(nullptr, 0, 0);
  if (!EnterSection(payload, kSecColl, &body)) {
    return path + ": malformed COLL section";
  }
  const uint64_t num_sets = body.ReadU64();
  const uint64_t num_elements = body.ReadU64();
  if (!body.ok() || num_sets != want_sets) {
    return path + ": malformed COLL section";
  }
  // Ruler sizes are validated against the remaining bytes by ReadArrayView
  // itself; the +1 additions cannot overflow past that gate because each
  // count must fit in remaining/8 first.
  if (num_sets > body.remaining() / 8 || num_elements > body.remaining() / 8) {
    return path + ": truncated COLL section";
  }
  const auto set_offsets = body.ReadArrayView<uint64_t>(num_sets + 1);
  const auto text_offsets = body.ReadArrayView<uint64_t>(num_elements + 1);
  const auto token_offsets = body.ReadArrayView<uint64_t>(num_elements + 1);
  const auto chunk_offsets = body.ReadArrayView<uint64_t>(num_elements + 1);
  if (!body.ok()) return path + ": truncated COLL section";
  if (!ValidOffsets(set_offsets, num_elements)) {
    return path + ": malformed COLL section";
  }
  // The three arenas: text (raw bytes), then 8-aligned token and chunk
  // blocks. Each ruler must end exactly at its arena's size.
  const uint64_t text_size = text_offsets.empty() ? 0 : text_offsets.back();
  if (text_offsets.empty() || text_offsets.front() != 0 ||
      text_size > body.remaining()) {
    return path + ": malformed COLL section";
  }
  const char* text_arena = body.ReadBytes(static_cast<size_t>(text_size));
  const auto token_arena = body.ReadArrayView<TokenId>(
      token_offsets.empty() ? 0 : token_offsets.back());
  const auto chunk_arena = body.ReadArrayView<TokenId>(
      chunk_offsets.empty() ? 0 : chunk_offsets.back());
  if (!body.ok() ||
      !ValidOffsets(text_offsets, text_size) ||
      !ValidOffsets(token_offsets, token_arena.size()) ||
      !ValidOffsets(chunk_offsets, chunk_arena.size())) {
    return path + ": malformed COLL section";
  }
  if (body.remaining() != 0) return path + ": oversized COLL section";

  std::vector<SetRecord> sets;
  sets.reserve(static_cast<size_t>(num_sets));
  auto arena = deep_copy ? std::make_shared<ElementArena>() : nullptr;
  for (uint64_t s = 0; s < num_sets; ++s) {
    SetRecord set;
    const uint64_t first = set_offsets[s];
    const uint64_t last = set_offsets[s + 1];
    set.elements.reserve(static_cast<size_t>(last - first));
    for (uint64_t e = first; e < last; ++e) {
      Element elem;
      elem.text = std::string_view(
          text_arena + text_offsets[e],
          static_cast<size_t>(text_offsets[e + 1] - text_offsets[e]));
      elem.tokens = token_arena.subspan(
          static_cast<size_t>(token_offsets[e]),
          static_cast<size_t>(token_offsets[e + 1] - token_offsets[e]));
      elem.chunks = chunk_arena.subspan(
          static_cast<size_t>(chunk_offsets[e]),
          static_cast<size_t>(chunk_offsets[e + 1] - chunk_offsets[e]));
      if (deep_copy) {
        elem = MakeArenaElement(arena.get(), elem.text, elem.tokens,
                                elem.chunks);
      }
      set.elements.push_back(elem);
    }
    set.arena = arena;
    sets.push_back(std::move(set));
  }
  *out = std::move(sets);
  return "";
}

std::string ParseStabSection(Reader* payload, const std::string& path,
                             const MetaInfo& meta,
                             std::vector<SetIdRange>* out) {
  Reader body(nullptr, 0, 0);
  if (!EnterSection(payload, kSecStab, &body)) {
    return path + ": malformed STAB section";
  }
  const uint32_t count = body.ReadU32();
  if (!body.ok() || count != meta.num_shards) {
    return path + ": malformed STAB section";
  }
  std::vector<SetIdRange> ranges(count);
  uint32_t cursor = 0;
  for (uint32_t s = 0; s < count; ++s) {
    ranges[s].begin = body.ReadU32();
    ranges[s].end = body.ReadU32();
    // The ranges must partition [0, num_sets) in order — DiscoverShardSelf
    // and the merge protocol both assume exactly that.
    if (!body.ok() || ranges[s].begin != cursor ||
        ranges[s].end < ranges[s].begin || ranges[s].end > meta.num_sets) {
      return path + ": malformed STAB section";
    }
    cursor = ranges[s].end;
  }
  if (body.remaining() != 0 || cursor != meta.num_sets) {
    return path + ": malformed STAB section";
  }
  *out = std::move(ranges);
  return "";
}

std::string ParseShrdSection(Reader* payload, const std::string& path,
                             uint32_t want_shard, SetIdRange want_range,
                             bool deep_copy, InvertedIndex* out) {
  const std::string err =
      path + ": malformed SHRD section " + std::to_string(want_shard);
  Reader body(nullptr, 0, 0);
  if (!EnterSection(payload, kSecShrd, &body)) return err;
  const uint32_t shard_id = body.ReadU32();
  const uint32_t begin = body.ReadU32();
  const uint32_t end = body.ReadU32();
  const auto offsets = body.ReadArrayView<size_t>(body.ReadU64());
  const auto postings = body.ReadArrayView<Posting>(body.ReadU64());
  if (!body.ok() || body.remaining() != 0 || shard_id != want_shard ||
      begin != want_range.begin || end != want_range.end) {
    return err;
  }
  const bool adopted =
      deep_copy
          ? out->AdoptCsr(std::vector<size_t>(offsets.begin(), offsets.end()),
                          std::vector<Posting>(postings.begin(),
                                               postings.end()))
          : out->AdoptCsrView(offsets, postings);
  if (!adopted) {
    return path + ": invalid CSR arrays in SHRD section " +
           std::to_string(want_shard);
  }
  return "";
}

/// Value gate, after adoption has vetted the offsets shape: query code
/// indexes sets and scratch arrays by posting set/elem ids without further
/// checks, and ListInSet binary-searches each list's (set, elem) order — so
/// even a checksum-valid file must not smuggle out-of-range, unsorted, or
/// duplicate postings past load (one linear scan of the in-place lists; the
/// postings themselves are never re-parsed).
std::string ValidatePostings(const std::string& path, uint32_t shard_id,
                             const Snapshot::Shard& shard,
                             const std::vector<SetRecord>& sets) {
  for (TokenId t = 0; t < shard.index.NumTokens(); ++t) {
    const std::span<const Posting> list = shard.index.List(t);
    for (size_t i = 0; i < list.size(); ++i) {
      if (!shard.range.Contains(list[i].set_id) ||
          list[i].elem_id >= sets[list[i].set_id].elements.size()) {
        return path + ": posting out of range in SHRD section " +
               std::to_string(shard_id);
      }
      if (i > 0 && !(list[i - 1] < list[i])) {
        return path + ": unsorted or duplicate postings in SHRD section " +
               std::to_string(shard_id);
      }
    }
  }
  return "";
}

/// Shared load driver. `only_shard` < 0 loads every shard; otherwise only
/// that shard's index is built (and, for split snapshots, only that shard's
/// file is opened). *out is only touched on full success.
std::string LoadImpl(const std::string& path, long only_shard, Snapshot* out,
                     SnapshotLoadMode mode, SnapshotLoadStats* stats_out) {
  const bool deep_copy = mode == SnapshotLoadMode::kCopy;
  SnapshotLoadStats stats;
  Snapshot snap;

  ContainerView common;
  {
    const std::string err = OpenContainer(path, mode, &common, &stats);
    if (!err.empty()) return err;
  }
  Reader payload(common.payload, common.payload_len, 0);

  MetaInfo meta;
  if (!ParseMetaSection(&payload, &meta)) {
    return path + ": malformed META section";
  }
  if (meta.kind == kContainerSplitShard) {
    return path + ": is a split snapshot shard file; load it through its "
           "common file";
  }
  snap.tokenizer = static_cast<TokenizerKind>(meta.tokenizer);
  snap.q = static_cast<int>(meta.q);
  snap.generation = meta.generation;
  if (only_shard >= 0 &&
      static_cast<uint64_t>(only_shard) >= meta.num_shards) {
    return path + ": shard id " + std::to_string(only_shard) +
           " out of range: snapshot has " + std::to_string(meta.num_shards) +
           " shards";
  }

  {
    const std::string err =
        ParseDictSection(&payload, path, deep_copy, &snap.data.dict);
    if (!err.empty()) return err;
  }
  {
    const std::string err = ParseCollSection(&payload, path, meta.num_sets,
                                             deep_copy, &snap.data.sets);
    if (!err.empty()) return err;
  }
  std::vector<SetIdRange> ranges;
  {
    const std::string err = ParseStabSection(&payload, path, meta, &ranges);
    if (!err.empty()) return err;
  }
  snap.shards.resize(meta.num_shards);
  for (uint32_t s = 0; s < meta.num_shards; ++s) {
    snap.shards[s].range = ranges[s];
  }

  if (meta.kind == kContainerMonolithic) {
    // SHRD sections follow in shard order; unrequested shards are still
    // structurally validated (the bytes are in hand anyway) but as views —
    // never deep-copied — and their index is dropped.
    for (uint32_t s = 0; s < meta.num_shards; ++s) {
      const bool wanted =
          only_shard < 0 || static_cast<uint32_t>(only_shard) == s;
      InvertedIndex index;
      const std::string err = ParseShrdSection(&payload, path, s, ranges[s],
                                               deep_copy && wanted, &index);
      if (!err.empty()) return err;
      if (wanted) {
        snap.shards[s].index = std::move(index);
        snap.shards[s].loaded = true;
      }
    }
    if (payload.remaining() != 0) {
      return path + ": trailing bytes after last section";
    }
  } else {  // Split common: shard indexes live in sibling files.
    if (payload.remaining() != 0) {
      return path + ": trailing bytes after last section";
    }
    for (uint32_t s = 0; s < meta.num_shards; ++s) {
      if (only_shard >= 0 && static_cast<uint32_t>(only_shard) != s) {
        continue;  // The point of the split: other shards stay untouched.
      }
      const std::string shard_path = SnapshotShardPath(path, s);
      ContainerView sv;
      {
        const std::string err = OpenContainer(shard_path, mode, &sv, &stats);
        if (!err.empty()) return err;
      }
      Reader spayload(sv.payload, sv.payload_len, 0);
      MetaInfo smeta;
      if (!ParseMetaSection(&spayload, &smeta)) {
        return shard_path + ": malformed META section";
      }
      if (smeta.kind != kContainerSplitShard || smeta.shard_id != s ||
          smeta.num_sets != meta.num_sets ||
          smeta.num_shards != meta.num_shards ||
          smeta.generation != meta.generation) {
        return shard_path + ": malformed META section";
      }
      if (smeta.binding_crc != common.crc) {
        return shard_path + ": snapshot/shard binding mismatch (shard file "
               "belongs to a different build of " + path + ")";
      }
      const std::string err = ParseShrdSection(&spayload, shard_path, s,
                                               ranges[s], deep_copy,
                                               &snap.shards[s].index);
      if (!err.empty()) return err;
      if (spayload.remaining() != 0) {
        return shard_path + ": trailing bytes after last section";
      }
      snap.shards[s].loaded = true;
      if (!deep_copy) snap.regions.push_back(std::move(sv.region));
    }
  }

  for (uint32_t s = 0; s < meta.num_shards; ++s) {
    if (!snap.shards[s].loaded) continue;
    const std::string err =
        ValidatePostings(path, s, snap.shards[s], snap.data.sets);
    if (!err.empty()) return err;
  }

  // View mode keeps the backing bytes alive inside the snapshot; copy mode
  // owns everything already and lets the regions die here.
  if (!deep_copy) snap.regions.push_back(std::move(common.region));

  *out = std::move(snap);
  if (stats_out != nullptr) *stats_out = stats;
  return "";
}

}  // namespace

uint32_t SnapshotCrc32(const void* data, size_t size) {
  static const auto table = [] {
    std::array<uint32_t, 256> t{};
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  uint32_t crc = 0xFFFFFFFFu;
  const auto* p = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < size; ++i) {
    crc = table[(crc ^ p[i]) & 0xFF] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

Snapshot BuildSnapshot(Collection data, TokenizerKind tokenizer, int q,
                       uint32_t num_shards, int num_threads) {
  Snapshot snap;
  snap.tokenizer = tokenizer;
  snap.q = q;
  snap.data = std::move(data);

  // The exact partition + parallel index construction ShardedEngine uses,
  // so snapshot shard k is interchangeable with in-process shard k.
  const std::vector<SetIdRange> ranges =
      ComputeShardRanges(snap.data, num_shards);
  std::vector<InvertedIndex> indexes =
      BuildShardIndexes(snap.data, ranges, num_threads);
  snap.shards.resize(num_shards);
  for (uint32_t s = 0; s < num_shards; ++s) {
    snap.shards[s].range = ranges[s];
    snap.shards[s].index = std::move(indexes[s]);
    snap.shards[s].loaded = true;
  }
  return snap;
}

std::string SnapshotShardPath(const std::string& path, uint32_t shard) {
  return path + ".shard" + std::to_string(shard);
}

namespace {

std::string CheckSaveable(const Snapshot& snap) {
  if (snap.data.dict == nullptr) return "snapshot has no token dictionary";
  if (snap.shards.empty()) return "snapshot has no shards";
  for (const Snapshot::Shard& shard : snap.shards) {
    if (!shard.loaded) {
      return "cannot save a partially loaded snapshot (run build against "
             "the full corpus)";
    }
  }
  return "";
}

MetaInfo CommonMeta(const Snapshot& snap, uint32_t kind) {
  MetaInfo meta;
  meta.kind = kind;
  meta.tokenizer = static_cast<uint32_t>(snap.tokenizer);
  meta.q = static_cast<uint32_t>(snap.q);
  meta.num_sets = snap.data.sets.size();
  meta.num_shards = static_cast<uint32_t>(snap.shards.size());
  meta.generation = snap.generation;
  return meta;
}

void AppendCommonSections(std::string* payload, const Snapshot& snap,
                          uint32_t kind) {
  AppendMetaSection(payload, CommonMeta(snap, kind));
  AppendDictSection(payload, *snap.data.dict);
  AppendCollSection(payload, snap.data);
  AppendStabSection(payload, snap.shards);
}

}  // namespace

std::string SaveSnapshot(const Snapshot& snap, const std::string& path,
                         const char* fault_site) {
  const std::string err = CheckSaveable(snap);
  if (!err.empty()) return err;
  std::string payload;
  AppendCommonSections(&payload, snap, kContainerMonolithic);
  for (size_t s = 0; s < snap.shards.size(); ++s) {
    AppendShrdSection(&payload, static_cast<uint32_t>(s), snap.shards[s]);
  }
  return WriteContainer(path, payload, fault_site);
}

std::string SaveSnapshotSplit(const Snapshot& snap, const std::string& path,
                              const char* fault_site) {
  const std::string err = CheckSaveable(snap);
  if (!err.empty()) return err;

  // The common payload's CRC binds the generation together: every shard
  // file records it, so shards of different builds can never mix — a
  // cross-generation pairing fails the binding check at load instead of
  // silently combining.
  std::string common_payload;
  AppendCommonSections(&common_payload, snap, kContainerSplitCommon);
  const uint32_t common_crc =
      SnapshotCrc32(common_payload.data(), common_payload.size());

  // Two-phase publish: stage every file's bytes to its .tmp sibling first,
  // then rename them all — shard files first, common last. A previously
  // existing snapshot stays fully intact until the renames begin, so the
  // window in which a crash can leave mixed generations on disk is a few
  // renames wide, not the whole build — and the binding CRC turns even
  // that into a clean refusal. Writer destructors remove any still-staged
  // ".tmp" files on every early-return path.
  std::vector<std::unique_ptr<AtomicFileWriter>> writers;
  for (size_t s = 0; s < snap.shards.size(); ++s) {
    MetaInfo meta = CommonMeta(snap, kContainerSplitShard);
    meta.binding_crc = common_crc;
    meta.shard_id = static_cast<uint32_t>(s);
    std::string payload;
    AppendMetaSection(&payload, meta);
    AppendShrdSection(&payload, static_cast<uint32_t>(s), snap.shards[s]);
    writers.push_back(std::make_unique<AtomicFileWriter>(
        SnapshotShardPath(path, static_cast<uint32_t>(s)), fault_site));
    const std::string serr = StageContainer(writers.back().get(), payload);
    if (!serr.empty()) return serr;
  }
  writers.push_back(std::make_unique<AtomicFileWriter>(path, fault_site));
  std::string werr = StageContainer(writers.back().get(), common_payload);
  // Commit order: shard files first, common last — a readable common file
  // implies its shard files are complete. writers.back() is the common one.
  for (size_t i = 0; werr.empty() && i < writers.size(); ++i) {
    werr = writers[i]->Commit();
  }
  return werr;
}

std::string LoadSnapshot(const std::string& path, Snapshot* out,
                         SnapshotLoadMode mode, SnapshotLoadStats* stats) {
  return LoadImpl(path, /*only_shard=*/-1, out, mode, stats);
}

std::string LoadSnapshotShard(const std::string& path, uint32_t shard,
                              Snapshot* out, SnapshotLoadMode mode,
                              SnapshotLoadStats* stats) {
  return LoadImpl(path, static_cast<long>(shard), out, mode, stats);
}

}  // namespace silkmoth
