// Table 3 reproduction: prints the dataset/application setup actually used
// by the benchmark binaries (synthetic stand-ins for DBLP / WEBTABLE; see
// DESIGN.md "Substitutions"). Shapes — sets, elements/set, tokens/element —
// should track the paper's table.

#include <iostream>

#include "bench_common.h"

namespace {

using namespace silkmoth;
using namespace silkmoth::bench;

struct Shape {
  size_t sets = 0;
  double elems_per_set = 0.0;
  double tokens_per_elem = 0.0;
};

Shape Measure(const Collection& data, bool edit) {
  Shape s;
  s.sets = data.NumSets();
  size_t elems = 0, tokens = 0;
  for (const auto& set : data.sets) {
    elems += set.Size();
    for (const auto& e : set.elements) {
      tokens += edit ? e.tokens.size() : e.tokens.size();
    }
  }
  s.elems_per_set = elems == 0 ? 0 : static_cast<double>(elems) /
                                         static_cast<double>(s.sets);
  s.tokens_per_elem = elems == 0 ? 0 : static_cast<double>(tokens) /
                                           static_cast<double>(elems);
  return s;
}

}  // namespace

int main() {
  PrintHeader("Table 3", "dataset details (synthetic stand-ins)");

  Workload sm = StringMatchingWorkload(Scaled(1000));
  Workload sch = SchemaMatchingWorkload(Scaled(2000));
  Workload inc = InclusionDependencyWorkload(Scaled(3000), Scaled(50));

  TablePrinter table({"Application", "Dataset", "#Sets", "Elems/Set",
                      "Tokens/Elem", "Problem", "Relatedness", "phi",
                      "delta", "alpha"});
  auto add = [&](const Workload& w, const char* dataset, bool edit) {
    Shape s = Measure(w.data, edit);
    table.AddRow({w.name, dataset, TablePrinter::Int(
                      static_cast<long long>(s.sets)),
                  TablePrinter::Num(s.elems_per_set, 1),
                  TablePrinter::Num(s.tokens_per_elem, 1),
                  w.references.empty() ? "Discovery" : "Search",
                  RelatednessName(w.options.metric),
                  SimilarityKindName(w.options.phi),
                  TablePrinter::Num(w.options.delta, 2),
                  TablePrinter::Num(w.options.alpha, 2)});
  };
  add(sm, "DBLP-synth", true);
  add(sch, "WEBTABLE-synth", false);
  add(inc, "WEBTABLE-synth", false);
  table.Print(std::cout);

  std::cout << "\nPaper reference shapes: DBLP 100K sets, 9 elems/set, ~5 "
               "q-grams/elem (q=3);\nWEBTABLE schemas 500K sets, 3 elems/set,"
               " 11.3 tokens/elem;\nWEBTABLE columns 500K sets, 22 elems/set,"
               " 2.2 tokens/elem.\n";
  return 0;
}
