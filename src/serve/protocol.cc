#include "serve/protocol.h"

#include <cstring>

namespace silkmoth {
namespace serve {

namespace {

void PutU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void PutU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

uint32_t GetU32(const char* p) {
  uint32_t v = 0;
  for (int i = 3; i >= 0; --i) {
    v = (v << 8) | static_cast<unsigned char>(p[i]);
  }
  return v;
}

uint64_t GetU64(const char* p) {
  uint64_t v = 0;
  for (int i = 7; i >= 0; --i) {
    v = (v << 8) | static_cast<unsigned char>(p[i]);
  }
  return v;
}

}  // namespace

bool KnownFrameType(uint32_t type) {
  switch (static_cast<FrameType>(type)) {
    case FrameType::kQuery:
    case FrameType::kPing:
    case FrameType::kShutdown:
    case FrameType::kIngest:
    case FrameType::kResult:
    case FrameType::kPong:
    case FrameType::kError:
    case FrameType::kOverloaded:
    case FrameType::kDeadlineExceeded:
    case FrameType::kIngested:
      return true;
  }
  return false;
}

const char* FrameTypeName(FrameType type) {
  switch (type) {
    case FrameType::kQuery: return "query";
    case FrameType::kPing: return "ping";
    case FrameType::kShutdown: return "shutdown";
    case FrameType::kIngest: return "ingest";
    case FrameType::kResult: return "result";
    case FrameType::kPong: return "pong";
    case FrameType::kError: return "error";
    case FrameType::kOverloaded: return "overloaded";
    case FrameType::kDeadlineExceeded: return "deadline-exceeded";
    case FrameType::kIngested: return "ingested";
  }
  return "?";
}

std::string EncodeFrame(const Frame& frame) {
  std::string out;
  out.reserve(kFrameHeaderSize + frame.body.size());
  PutU32(&out, kFrameMagic);
  PutU32(&out, static_cast<uint32_t>(frame.type));
  PutU64(&out, frame.request_id);
  PutU64(&out, frame.body.size());
  out += frame.body;
  return out;
}

FrameDecoder::FrameDecoder(size_t max_frame_bytes)
    : max_frame_bytes_(max_frame_bytes == 0 ? kDefaultMaxFrameBytes
                                            : max_frame_bytes) {}

const char* FrameDecoder::StatusName(Status status) {
  switch (status) {
    case Status::kFrame:
    case Status::kNeedMore:
      return "ok";
    case Status::kBadMagic: return "bad-magic";
    case Status::kBadType: return "bad-type";
    case Status::kOversized: return "oversized";
  }
  return "?";
}

void FrameDecoder::Feed(const void* data, size_t len) {
  if (poisoned_ || len == 0) return;
  buffer_.append(static_cast<const char*>(data), len);
}

FrameDecoder::Status FrameDecoder::Next(Frame* out) {
  if (poisoned_) return error_;
  if (buffer_.size() < kFrameHeaderSize) return Status::kNeedMore;
  const char* p = buffer_.data();
  // Header validation runs front to back so the *first* lie is the one
  // reported: a garbage stream reports bad-magic, not whatever its byte 4-7
  // happen to decode to.
  if (GetU32(p) != kFrameMagic) {
    poisoned_ = true;
    error_ = Status::kBadMagic;
    return error_;
  }
  const uint32_t type = GetU32(p + 4);
  if (!KnownFrameType(type)) {
    poisoned_ = true;
    error_ = Status::kBadType;
    return error_;
  }
  const uint64_t request_id = GetU64(p + 8);
  const uint64_t body_len = GetU64(p + 16);
  // The length is validated against the cap *before* any buffering math, so
  // a forged 2^63 length can neither allocate nor wrap an offset.
  if (body_len > max_frame_bytes_) {
    poisoned_ = true;
    error_ = Status::kOversized;
    return error_;
  }
  if (buffer_.size() - kFrameHeaderSize < body_len) return Status::kNeedMore;
  out->type = static_cast<FrameType>(type);
  out->request_id = request_id;
  out->body.assign(buffer_, kFrameHeaderSize, static_cast<size_t>(body_len));
  buffer_.erase(0, kFrameHeaderSize + static_cast<size_t>(body_len));
  return Status::kFrame;
}

}  // namespace serve
}  // namespace silkmoth
