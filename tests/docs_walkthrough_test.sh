#!/usr/bin/env bash
# Runs the docs/CLI.md "Walkthrough: build → query" code block VERBATIM
# against the real binary: the fenced ```sh block under that heading is
# extracted and executed in a scratch directory with the CLI on PATH. If
# the walkthrough in the docs drifts from what the binary accepts, this
# fails — documentation that cannot rot.
#
# Usage: docs_walkthrough_test.sh /path/to/silkmoth_cli [/path/to/CLI.md]
set -euo pipefail

CLI="${1:?usage: docs_walkthrough_test.sh /path/to/silkmoth_cli [CLI.md]}"
DOC="${2:-$(dirname "$0")/../docs/CLI.md}"

[ -x "$CLI" ] || { echo "FAIL: $CLI is not executable" >&2; exit 1; }
[ -f "$DOC" ] || { echo "FAIL: $DOC not found" >&2; exit 1; }

TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

# Extract the ```sh block(s) of the walkthrough section only (from the
# "## Walkthrough" heading to the next "## " heading or EOF).
awk '
  /^## Walkthrough/       { section = 1; next }
  section && /^## /       { section = 0 }
  section && /^```sh$/    { fence = 1; next }
  section && fence && /^```$/ { fence = 0; next }
  section && fence        { print }
' "$DOC" > "$TMP/walkthrough.sh"

[ -s "$TMP/walkthrough.sh" ] \
  || { echo "FAIL: no \`\`\`sh block found under '## Walkthrough' in $DOC" >&2
       exit 1; }

# The doc says "with build/ on your PATH" — provide exactly that.
CLI_DIR="$(cd "$(dirname "$CLI")" && pwd)"
( cd "$TMP" && PATH="$CLI_DIR:$PATH" bash -euo pipefail walkthrough.sh ) \
  || { echo "FAIL: docs/CLI.md walkthrough exited non-zero" >&2; exit 1; }

echo "PASS: docs/CLI.md walkthrough ran verbatim"
