// Lemma 1 as an executable property, for EVERY scheme: if a set S shares no
// token with the signature's probe lists, then relatedness(R, S) < δ — the
// signature may produce false positives but never false negatives. Random
// collections, both similarity functions, α on and off.

#include <algorithm>
#include <string>

#include <gtest/gtest.h>

#include "core/relatedness.h"
#include "datagen/builders.h"
#include "datagen/dblp.h"
#include "matching/verifier.h"
#include "sig/scheme.h"
#include "util/rng.h"

namespace silkmoth {
namespace {

struct Case {
  SignatureSchemeKind scheme;
  SimilarityKind phi;
  double alpha;

  std::string Name() const {
    std::string n = SignatureSchemeName(scheme);
    n += "_";
    n += SimilarityKindName(phi);
    n += "_a" + std::to_string(static_cast<int>(alpha * 100));
    return n;
  }
};

class SignatureValiditySweep : public ::testing::TestWithParam<Case> {};

TEST_P(SignatureValiditySweep, NoFalseNegatives) {
  const Case& c = GetParam();
  const bool edit = IsEditSimilarity(c.phi);
  const int q = edit ? (c.alpha > 0 ? MaxQForAlpha(c.alpha) : 2) : 0;

  Collection data;
  if (edit) {
    DblpParams p;
    p.num_titles = 30;
    p.vocabulary = 40;
    p.min_words = 1;
    p.max_words = 3;
    p.duplicate_rate = 0.4;
    p.typo_rate = 0.3;
    p.seed = 19;
    RawSets raw = GenerateDblpSets(p);
    // Uppercase/digit sets share no q-gram with the lowercase corpus, so a
    // healthy population of non-candidate sets is guaranteed.
    Rng rng(23);
    for (int s = 0; s < 12; ++s) {
      std::vector<std::string> elems;
      const size_t ne = 1 + rng.NextBounded(3);
      for (size_t e = 0; e < ne; ++e) {
        std::string text;
        const size_t len = 4 + rng.NextBounded(8);
        for (size_t i = 0; i < len; ++i) {
          text.push_back(static_cast<char>('A' + rng.NextBounded(26)));
        }
        elems.push_back(text);
      }
      raw.push_back(elems);
    }
    data = BuildCollection(raw, TokenizerKind::kQGram, q);
  } else {
    Rng rng(29);
    RawSets raw;
    for (int s = 0; s < 30; ++s) {
      std::vector<std::string> elems;
      const size_t ne = 1 + rng.NextBounded(4);
      for (size_t e = 0; e < ne; ++e) {
        std::string text;
        const size_t nw = 1 + rng.NextBounded(4);
        for (size_t w = 0; w < nw; ++w) {
          if (!text.empty()) text.push_back(' ');
          text += "v" + std::to_string(rng.NextBounded(15));
        }
        elems.push_back(text);
      }
      raw.push_back(elems);
    }
    data = BuildCollection(raw, TokenizerKind::kWord);
  }

  InvertedIndex index;
  index.Build(data);
  const double delta = 0.7;
  const MaxMatchingVerifier verifier(GetSimilarity(c.phi), c.alpha, false);

  size_t checked = 0;
  for (size_t r = 0; r < data.sets.size(); r += 3) {
    const SetRecord& ref = data.sets[r];
    if (ref.Empty()) continue;
    SchemeParams params;
    params.scheme = c.scheme;
    params.phi = c.phi;
    params.theta = MatchingThreshold(delta, ref.Size());
    params.alpha = c.alpha;
    params.q = q;
    const Signature sig = GenerateSignature(ref, index, params);
    if (!sig.valid) continue;  // Engine would full-scan: nothing to check.
    const std::vector<TokenId> flat = sig.FlatTokens();

    for (const SetRecord& s : data.sets) {
      bool shares = false;
      for (const Element& e : s.elements) {
        for (TokenId t : e.tokens) {
          shares |= std::binary_search(flat.begin(), flat.end(), t);
        }
        if (shares) break;
      }
      if (shares) continue;
      // S never becomes a candidate, so it must NOT be related to R.
      const double m = verifier.Score(ref, s);
      EXPECT_LT(m, params.theta - 1e-12)
          << "false negative: scheme=" << c.Name() << " ref=" << r;
      ++checked;
    }
  }
  EXPECT_GT(checked, 20u) << "sweep too weak to be meaningful";
}

std::vector<Case> Cases() {
  std::vector<Case> cases;
  for (auto scheme : {SignatureSchemeKind::kWeighted,
                      SignatureSchemeKind::kCombUnweighted,
                      SignatureSchemeKind::kSkyline,
                      SignatureSchemeKind::kDichotomy}) {
    cases.push_back(Case{scheme, SimilarityKind::kJaccard, 0.0});
    cases.push_back(Case{scheme, SimilarityKind::kJaccard, 0.5});
    cases.push_back(Case{scheme, SimilarityKind::kEds, 0.0});
    cases.push_back(Case{scheme, SimilarityKind::kEds, 0.75});
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, SignatureValiditySweep,
                         ::testing::ValuesIn(Cases()),
                         [](const auto& info) { return info.param.Name(); });

}  // namespace
}  // namespace silkmoth
