#ifndef SILKMOTH_CORE_STATS_H_
#define SILKMOTH_CORE_STATS_H_

#include <cstddef>
#include <string>

#include "filter/check_filter.h"
#include "filter/nn_filter.h"

namespace silkmoth {

/// Aggregate statistics for one or more search passes. Every counter is a
/// plain size_t; parallel discovery keeps one instance per worker and merges
/// at the end, so no atomics are needed.
struct SearchStats {
  size_t references = 0;          ///< Search passes executed.
  size_t fallback_scans = 0;      ///< Passes with no valid signature (§7.3).
  size_t signature_tokens = 0;    ///< Flattened probe tokens generated.
  size_t initial_candidates = 0;  ///< Sets touched by signature probes.
  size_t after_size = 0;          ///< Surviving the size bounds.
  size_t after_check = 0;         ///< Surviving the check filter.
  size_t after_nn = 0;            ///< Surviving the NN filter.
  size_t verifications = 0;       ///< Maximum matchings computed.
  size_t results = 0;             ///< Related pairs found.
  size_t similarity_calls = 0;    ///< φ evaluations (filters + verification).
  size_t reduced_pairs = 0;       ///< Identical pairs removed in verification.
  size_t bound_accepts = 0;       ///< Verifications decided without the
                                  ///< solver: by the greedy lower bound, or
                                  ///< trivially (both sides fully consumed
                                  ///< by reduction). For greedy-decided
                                  ///< accepts the search pass still runs
                                  ///< one solve on the ready matrix to
                                  ///< report the pair's exact score;
                                  ///< trivial ones are already exact.
  size_t bound_rejects = 0;       ///< Verifications settled by the maxima
                                  ///< upper bound (no Hungarian run at all).
  size_t tier2_accepts = 0;       ///< Verifications accepted by the tier-2
                                  ///< local-max matching bound after the
                                  ///< greedy bound failed to settle.
  size_t heap_floor_rejects = 0;  ///< Top-k candidates dropped because their
                                  ///< upper bound fell below the running
                                  ///< k-th-best score (no bound or solve
                                  ///< ran); always 0 outside top-k search.
  size_t exact_solves = 0;        ///< Hungarian runs in the ambiguous band
                                  ///< lower < θ <= upper.
  size_t reporting_solves = 0;    ///< Hungarian runs made purely to report
                                  ///< an exact score on a bound-settled
                                  ///< accept (the decision was the bound's).
  size_t bound_only_scores = 0;   ///< Pairs reported with the greedy lower
                                  ///< bound instead of an exact score
                                  ///< (Options::exact_scores == false;
                                  ///< always 0 otherwise).
  size_t query_sets = 0;          ///< External (query-vs-corpus) reference
                                  ///< sets streamed; 0 for self-joins. Like
                                  ///< `references`, counted per index
                                  ///< streamed through, so sharded totals
                                  ///< sum to (query sets × non-empty
                                  ///< shards). See docs/COUNTERS.md.
  size_t oov_tokens = 0;          ///< Distinct query tokens absent from the
                                  ///< corpus dictionary (query mode only;
                                  ///< stamped per shard slot streamed).

  double signature_seconds = 0.0;  ///< Signature generation wall clock.
  double selection_seconds = 0.0;  ///< Candidate selection + check filter.
  double nn_seconds = 0.0;         ///< NN-filter wall clock.
  double verify_seconds = 0.0;     ///< Verification (incl. reporting solves).

  /// Merges `other` into this.
  void Merge(const SearchStats& other);

  /// Multi-line human-readable dump.
  std::string ToString() const;

  /// One JSON object with every counter and phase timer — the funnel block
  /// embedded in the orchestrator's run report (docs/CLI.md, "Run report").
  std::string ToJson() const;

  /// ToJson minus the four *_seconds phase timers: the deterministic subset.
  /// BENCH_*.json embeds this as its "funnel" object so the whole file
  /// outside the "timing" key is reproducible bit for bit; the timers move
  /// under "timing" instead.
  std::string CountersJson() const;
};

/// Statistics for a ShardedEngine run: one SearchStats per shard plus a
/// derived global view.
///
/// Each shard's slot aggregates every search pass that ran against that
/// shard's index, across all worker threads (workers keep private copies and
/// the engine merges them slot-wise at the end, so no atomics are needed —
/// the same discipline as SearchStats in threaded discovery).
///
/// Counter semantics shift under sharding: a single reference is streamed
/// through *every* shard, so `per_shard[s].references` counts references
/// streamed through shard s, and Total().references sums to
/// (references × shards), not the reference count. Candidate/verification/
/// result counters do not double-count — each shard only ever sees its own
/// set-id range — so their totals match an unsharded run exactly. See
/// docs/COUNTERS.md for the full reading guide.
struct ShardedSearchStats {
  std::vector<SearchStats> per_shard;  ///< Indexed by shard id.

  /// Sets the shard count, clearing all counters.
  void Reset(size_t num_shards);

  /// Slot-wise merge. If `other` has more shards, this grows to match
  /// (missing slots count as zero) — counters are never dropped.
  void Merge(const ShardedSearchStats& other);

  /// Global view: all shards merged into one SearchStats.
  SearchStats Total() const;

  /// Global dump followed by a compact per-shard funnel table.
  std::string ToString() const;
};

}  // namespace silkmoth

#endif  // SILKMOTH_CORE_STATS_H_
