#include <algorithm>

#include <gtest/gtest.h>

#include "core/relatedness.h"
#include "matching/verifier.h"
#include "paper_example.h"
#include "sig/scheme.h"
#include "util/rng.h"

namespace silkmoth {
namespace {

using test::MakePaperExample;
using test::T;

SchemeParams Params(double theta, double alpha = 0.0,
                    SimilarityKind phi = SimilarityKind::kJaccard) {
  SchemeParams p;
  p.scheme = SignatureSchemeKind::kWeighted;
  p.phi = phi;
  p.theta = theta;
  p.alpha = alpha;
  p.q = 2;
  return p;
}

TEST(WeightedSignatureTest, PaperExample7) {
  // δ = 0.7, θ = 2.1: the greedy picks t12, t11, t10, t9, t8 and stops
  // because Σ (|r_i|-|k_i|)/|r_i| = 2.0 < 2.1.
  auto ex = MakePaperExample();
  InvertedIndex index;
  index.Build(ex.data);
  Signature sig = WeightedSignature(ex.ref, index, Params(2.1));
  ASSERT_TRUE(sig.valid);
  EXPECT_EQ(sig.FlatTokens(),
            (std::vector<TokenId>{T(8), T(9), T(10), T(11), T(12)}));
  // Unflattened: k1={t8}, k2={t9,t10}, k3={t11,t12} (Example 6 / Figure 2).
  ASSERT_EQ(sig.probe.size(), 3u);
  EXPECT_EQ(sig.probe[0], (std::vector<TokenId>{T(8)}));
  std::vector<TokenId> k2 = sig.probe[1];
  std::sort(k2.begin(), k2.end());
  EXPECT_EQ(k2, (std::vector<TokenId>{T(9), T(10)}));
  std::vector<TokenId> k3 = sig.probe[2];
  std::sort(k3.begin(), k3.end());
  EXPECT_EQ(k3, (std::vector<TokenId>{T(11), T(12)}));
  // Miss bounds 0.8, 0.6, 0.6; sum 2.0.
  EXPECT_NEAR(sig.miss_bound[0], 0.8, 1e-12);
  EXPECT_NEAR(sig.miss_bound[1], 0.6, 1e-12);
  EXPECT_NEAR(sig.miss_bound[2], 0.6, 1e-12);
  EXPECT_NEAR(sig.miss_bound_sum, 2.0, 1e-12);
}

TEST(WeightedSignatureTest, ValiditySumBelowTheta) {
  auto ex = MakePaperExample();
  InvertedIndex index;
  index.Build(ex.data);
  for (double theta : {0.5, 1.0, 1.5, 2.1, 2.7, 3.0}) {
    Signature sig = WeightedSignature(ex.ref, index, Params(theta));
    ASSERT_TRUE(sig.valid) << theta;
    EXPECT_LT(sig.miss_bound_sum, theta) << theta;
  }
}

TEST(WeightedSignatureTest, HigherThetaNeedsFewerTokens) {
  auto ex = MakePaperExample();
  InvertedIndex index;
  index.Build(ex.data);
  const size_t tokens_low =
      WeightedSignature(ex.ref, index, Params(0.7 * 3)).FlatTokens().size();
  const size_t tokens_high =
      WeightedSignature(ex.ref, index, Params(0.85 * 3)).FlatTokens().size();
  EXPECT_GE(tokens_low, tokens_high);
}

TEST(WeightedSignatureTest, CheckThresholdEqualsMissBoundAtAlphaZero) {
  auto ex = MakePaperExample();
  InvertedIndex index;
  index.Build(ex.data);
  Signature sig = WeightedSignature(ex.ref, index, Params(2.1));
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_DOUBLE_EQ(sig.check_threshold[i], sig.miss_bound[i]);
  }
}

TEST(WeightedSignatureTest, CheckThresholdCappedByAlpha) {
  auto ex = MakePaperExample();
  InvertedIndex index;
  index.Build(ex.data);
  Signature sig = WeightedSignature(ex.ref, index, Params(2.1, /*alpha=*/0.5));
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_LE(sig.check_threshold[i], 0.5 + 1e-12);
    EXPECT_LE(sig.check_threshold[i], sig.miss_bound[i] + 1e-12);
  }
}

// Lemma 2's adversarial construction: S_i = r_i \ k_i must NOT share any
// token with the signature, and its matching score must equal the
// miss-bound sum — i.e. the weighted criterion is tight.
TEST(WeightedSignatureTest, Lemma2AdversarialSetIsTight) {
  auto ex = MakePaperExample();
  InvertedIndex index;
  index.Build(ex.data);
  Signature sig = WeightedSignature(ex.ref, index, Params(2.1));
  const std::vector<TokenId> flat = sig.FlatTokens();

  SetRecord adversarial;
  for (size_t i = 0; i < ex.ref.Size(); ++i) {
    std::vector<TokenId> kept;
    for (TokenId t : ex.ref.elements[i].tokens) {
      if (!std::binary_search(flat.begin(), flat.end(), t)) {
        kept.push_back(t);
      }
    }
    if (kept.empty()) continue;
    if (adversarial.arena == nullptr) {
      adversarial.arena = std::make_shared<ElementArena>();
    }
    adversarial.elements.push_back(
        MakeArenaElement(adversarial.arena.get(), "stripped", kept));
  }
  MaxMatchingVerifier verifier(GetSimilarity(SimilarityKind::kJaccard), 0.0,
                               false);
  // Aligning r_i with r_i \ k_i scores exactly (|r_i|-|k_i|)/|r_i| each.
  const double m = verifier.Score(ex.ref, adversarial);
  EXPECT_NEAR(m, sig.miss_bound_sum, 1e-9);
  EXPECT_LT(m, 2.1);  // Correctly not related.
}

// Property: for random small collections, any set sharing no token with the
// signature has matching score < θ (no false negatives from the signature).
TEST(WeightedSignatureTest, MissingSignatureImpliesBelowTheta) {
  Rng rng(311);
  for (int trial = 0; trial < 40; ++trial) {
    RawSets raw;
    const size_t num_sets = 8;
    for (size_t s = 0; s < num_sets; ++s) {
      std::vector<std::string> elems;
      const size_t ne = 1 + rng.NextBounded(4);
      for (size_t e = 0; e < ne; ++e) {
        std::string text;
        const size_t nw = 1 + rng.NextBounded(4);
        for (size_t w = 0; w < nw; ++w) {
          if (!text.empty()) text.push_back(' ');
          text += "v" + std::to_string(rng.NextBounded(12));
        }
        elems.push_back(text);
      }
      raw.push_back(elems);
    }
    Collection data = BuildCollection(raw, TokenizerKind::kWord);
    InvertedIndex index;
    index.Build(data);
    const SetRecord& ref = data.sets[0];
    if (ref.Empty()) continue;
    const double theta = MatchingThreshold(0.7, ref.Size());
    Signature sig = WeightedSignature(ref, index, Params(theta));
    ASSERT_TRUE(sig.valid);
    const std::vector<TokenId> flat = sig.FlatTokens();

    MaxMatchingVerifier verifier(GetSimilarity(SimilarityKind::kJaccard), 0.0,
                                 false);
    for (const SetRecord& s : data.sets) {
      bool shares = false;
      for (const Element& e : s.elements) {
        for (TokenId t : e.tokens) {
          shares |= std::binary_search(flat.begin(), flat.end(), t);
        }
      }
      if (!shares) {
        EXPECT_LT(verifier.Score(ref, s), theta) << "trial " << trial;
      }
    }
  }
}

TEST(WeightedSignatureTest, EditSimilaritySignatureUsesChunks) {
  RawSets raw = {{"abcdef", "ghijkl"}, {"abcxyz"}, {"mnopqr"}};
  Collection data = BuildCollection(raw, TokenizerKind::kQGram, 2);
  InvertedIndex index;
  index.Build(data);
  const SetRecord& ref = data.sets[0];
  SchemeParams p = Params(MatchingThreshold(0.7, ref.Size()), 0.0,
                          SimilarityKind::kEds);
  Signature sig = WeightedSignature(ref, index, p);
  ASSERT_TRUE(sig.valid);
  // Every probe token must be one of the element's chunks.
  for (size_t i = 0; i < ref.Size(); ++i) {
    for (TokenId t : sig.probe[i]) {
      EXPECT_TRUE(std::binary_search(ref.elements[i].chunks.begin(),
                                     ref.elements[i].chunks.end(), t));
    }
  }
  // Definition 11: Σ |r_i|/(|r_i|+|k_i|) < θ.
  EXPECT_LT(sig.miss_bound_sum, p.theta);
}

TEST(WeightedSignatureTest, EmptySetIsInvalid) {
  Collection data = BuildCollection({{"a"}}, TokenizerKind::kWord);
  InvertedIndex index;
  index.Build(data);
  SetRecord empty;
  Signature sig = WeightedSignature(empty, index, Params(0.7));
  // θ > 0 with no elements: bound sum 0 < θ trivially; signature is valid
  // and empty — the engine handles empty references separately.
  EXPECT_TRUE(sig.valid);
  EXPECT_EQ(sig.NumProbeTokens(), 0u);
}

}  // namespace
}  // namespace silkmoth
