#include "core/stats.h"

#include <iomanip>
#include <sstream>

namespace silkmoth {

void SearchStats::Merge(const SearchStats& other) {
  references += other.references;
  fallback_scans += other.fallback_scans;
  signature_tokens += other.signature_tokens;
  initial_candidates += other.initial_candidates;
  after_size += other.after_size;
  after_check += other.after_check;
  after_nn += other.after_nn;
  verifications += other.verifications;
  results += other.results;
  similarity_calls += other.similarity_calls;
  reduced_pairs += other.reduced_pairs;
  bound_accepts += other.bound_accepts;
  bound_rejects += other.bound_rejects;
  tier2_accepts += other.tier2_accepts;
  heap_floor_rejects += other.heap_floor_rejects;
  exact_solves += other.exact_solves;
  reporting_solves += other.reporting_solves;
  bound_only_scores += other.bound_only_scores;
  query_sets += other.query_sets;
  oov_tokens += other.oov_tokens;
  signature_seconds += other.signature_seconds;
  selection_seconds += other.selection_seconds;
  nn_seconds += other.nn_seconds;
  verify_seconds += other.verify_seconds;
}

std::string SearchStats::ToString() const {
  std::ostringstream out;
  out << "references:          " << references << "\n"
      << "fallback_scans:      " << fallback_scans << "\n"
      << "signature_tokens:    " << signature_tokens << "\n"
      << "initial_candidates:  " << initial_candidates << "\n"
      << "after_size:          " << after_size << "\n"
      << "after_check:         " << after_check << "\n"
      << "after_nn:            " << after_nn << "\n"
      << "verifications:       " << verifications << "\n"
      << "results:             " << results << "\n"
      << "similarity_calls:    " << similarity_calls << "\n"
      << "reduced_pairs:       " << reduced_pairs << "\n"
      << "bound_accepts:       " << bound_accepts << "\n"
      << "bound_rejects:       " << bound_rejects << "\n"
      << "tier2_accepts:       " << tier2_accepts << "\n"
      << "heap_floor_rejects:  " << heap_floor_rejects << "\n"
      << "exact_solves:        " << exact_solves << "\n"
      << "reporting_solves:    " << reporting_solves << "\n"
      << "bound_only_scores:   " << bound_only_scores << "\n"
      << "query_sets:          " << query_sets << "\n"
      << "oov_tokens:          " << oov_tokens << "\n"
      << "signature_seconds:   " << signature_seconds << "\n"
      << "selection_seconds:   " << selection_seconds << "\n"
      << "nn_seconds:          " << nn_seconds << "\n"
      << "verify_seconds:      " << verify_seconds << "\n";
  return out.str();
}

std::string SearchStats::ToJson() const {
  // The counters object with the phase timers spliced in before the closing
  // brace — keeps the two emitters from drifting apart field by field.
  std::string json = CountersJson();
  json.pop_back();
  std::ostringstream out;
  out << std::setprecision(17)
      << ",\"signature_seconds\":" << signature_seconds
      << ",\"selection_seconds\":" << selection_seconds
      << ",\"nn_seconds\":" << nn_seconds
      << ",\"verify_seconds\":" << verify_seconds << "}";
  return json + out.str();
}

std::string SearchStats::CountersJson() const {
  std::ostringstream out;
  out << "{"
      << "\"references\":" << references
      << ",\"fallback_scans\":" << fallback_scans
      << ",\"signature_tokens\":" << signature_tokens
      << ",\"initial_candidates\":" << initial_candidates
      << ",\"after_size\":" << after_size
      << ",\"after_check\":" << after_check
      << ",\"after_nn\":" << after_nn
      << ",\"verifications\":" << verifications
      << ",\"results\":" << results
      << ",\"similarity_calls\":" << similarity_calls
      << ",\"reduced_pairs\":" << reduced_pairs
      << ",\"bound_accepts\":" << bound_accepts
      << ",\"bound_rejects\":" << bound_rejects
      << ",\"tier2_accepts\":" << tier2_accepts
      << ",\"heap_floor_rejects\":" << heap_floor_rejects
      << ",\"exact_solves\":" << exact_solves
      << ",\"reporting_solves\":" << reporting_solves
      << ",\"bound_only_scores\":" << bound_only_scores
      << ",\"query_sets\":" << query_sets
      << ",\"oov_tokens\":" << oov_tokens << "}";
  return out.str();
}

void ShardedSearchStats::Reset(size_t num_shards) {
  per_shard.assign(num_shards, SearchStats{});
}

void ShardedSearchStats::Merge(const ShardedSearchStats& other) {
  // Slot-wise sum with zero-extension: no counter is ever silently dropped
  // when the shard counts differ.
  if (other.per_shard.size() > per_shard.size()) {
    per_shard.resize(other.per_shard.size());
  }
  for (size_t s = 0; s < other.per_shard.size(); ++s) {
    per_shard[s].Merge(other.per_shard[s]);
  }
}

SearchStats ShardedSearchStats::Total() const {
  SearchStats total;
  for (const SearchStats& s : per_shard) total.Merge(s);
  return total;
}

std::string ShardedSearchStats::ToString() const {
  std::ostringstream out;
  out << "=== global (all shards merged; references counts per-shard "
         "passes) ===\n"
      << Total().ToString();
  out << "=== per shard ===\n"
      << "shard  refs      cands     verified  results   exact_solves\n";
  for (size_t s = 0; s < per_shard.size(); ++s) {
    const SearchStats& st = per_shard[s];
    out << std::left << std::setw(7) << s << std::setw(10) << st.references
        << std::setw(10) << st.initial_candidates << std::setw(10)
        << st.verifications << std::setw(10) << st.results << st.exact_solves
        << "\n";
  }
  return out.str();
}

}  // namespace silkmoth
