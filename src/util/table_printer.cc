#include "util/table_printer.h"

#include <algorithm>
#include <cstdio>

namespace silkmoth {

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  cells.resize(header_.size());
  rows_.push_back(std::move(cells));
}

void TablePrinter::Print(std::ostream& out) const {
  std::vector<size_t> widths(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto emit = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      out << row[c];
      if (c + 1 < row.size()) {
        out << std::string(widths[c] - row[c].size() + 2, ' ');
      }
    }
    out << "\n";
  };
  emit(header_);
  size_t total = 0;
  for (size_t c = 0; c < widths.size(); ++c) total += widths[c] + 2;
  out << std::string(total > 2 ? total - 2 : total, '-') << "\n";
  for (const auto& row : rows_) emit(row);
}

std::string TablePrinter::Num(double v, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
  return buf;
}

std::string TablePrinter::Int(long long v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld", v);
  return buf;
}

}  // namespace silkmoth
