// Query-vs-corpus discovery: the ReferenceBlock abstraction and everything
// threaded through it.
//
//  - Self-join parity: the full-collection self-join block is byte-identical
//    to DiscoverSelf on both engines (the refactor's safety net), and
//    disjoint self-join sub-range blocks union to the full self-join.
//  - External-query oracle: snapshot round-trip + DiscoverShardAgainst per
//    shard, concatenated, equals ShardedEngine::Discover, SilkMoth::Discover,
//    and the brute-force oracle — across similarity/containment/edit.
//  - OOV edge cases: all-OOV queries, empty payloads, oov counting.
//  - Protocol: query fields round-trip through shard-result files; merge
//    refuses mixed self/query streams and mismatched query fingerprints.

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "core/brute_force.h"
#include "core/engine.h"
#include "core/sharded_engine.h"
#include "datagen/builders.h"
#include "datagen/dblp.h"
#include "datagen/webtable.h"
#include "snapshot/shard_runner.h"
#include "snapshot/snapshot.h"

namespace silkmoth {
namespace {

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/silkmoth_query_" + name;
}

RawSets SchemaRaw(size_t num_sets, uint64_t seed) {
  WebTableParams p = SchemaMatchingDefaults(num_sets, seed);
  p.min_elements = 1;
  p.max_elements = 4;
  p.min_tokens = 2;
  p.max_tokens = 5;
  p.num_domains = 5;
  p.domain_values = 30;
  return GenerateSchemaSets(p);
}

RawSets DblpRaw(size_t num_titles, uint64_t seed) {
  DblpParams p;
  p.num_titles = num_titles;
  p.vocabulary = 60;
  p.min_words = 1;
  p.max_words = 3;
  p.duplicate_rate = 0.4;
  p.typo_rate = 0.3;
  p.seed = seed;
  return GenerateDblpSets(p);
}

// --- Self-join parity ------------------------------------------------------

TEST(ReferenceBlockSelfJoin, FullBlockIdenticalToDiscoverSelf) {
  Collection data = BuildCollection(SchemaRaw(40, 71), TokenizerKind::kWord);
  for (Relatedness metric :
       {Relatedness::kSimilarity, Relatedness::kContainment}) {
    Options o;
    o.metric = metric;
    o.delta = 0.6;
    SilkMoth engine(&data, o);
    ASSERT_TRUE(engine.ok()) << engine.error();
    EXPECT_EQ(engine.Discover(ReferenceBlock::SelfJoin(data)),
              engine.DiscoverSelf());

    o.num_shards = 3;
    o.num_threads = 2;
    ShardedEngine sharded(&data, o);
    ASSERT_TRUE(sharded.ok()) << sharded.error();
    EXPECT_EQ(sharded.Discover(ReferenceBlock::SelfJoin(data)),
              sharded.DiscoverSelf());
    EXPECT_EQ(sharded.DiscoverSelf(), engine.DiscoverSelf());
  }
}

TEST(ReferenceBlockSelfJoin, DisjointSubRangesUnionToFullSelfJoin) {
  Collection data = BuildCollection(SchemaRaw(37, 72), TokenizerKind::kWord);
  for (Relatedness metric :
       {Relatedness::kSimilarity, Relatedness::kContainment}) {
    Options o;
    o.metric = metric;
    o.delta = 0.6;
    o.num_shards = 2;
    ShardedEngine engine(&data, o);
    ASSERT_TRUE(engine.ok()) << engine.error();
    const std::vector<PairMatch> whole = engine.DiscoverSelf();

    // Exclusion and dedup are per-reference decisions, so chopping the
    // reference stream anywhere and concatenating preserves the output —
    // the property that lets reference blocks distribute a self-join.
    const uint32_t n = static_cast<uint32_t>(data.NumSets());
    for (uint32_t cut : {uint32_t{0}, uint32_t{1}, n / 3, n - 1, n}) {
      std::vector<PairMatch> joined =
          engine.Discover(ReferenceBlock::SelfJoinRange(data, 0, cut));
      const std::vector<PairMatch> tail =
          engine.Discover(ReferenceBlock::SelfJoinRange(data, cut, n));
      joined.insert(joined.end(), tail.begin(), tail.end());
      EXPECT_EQ(joined, whole) << "cut at " << cut;
    }
  }
}

TEST(ReferenceBlockSelfJoin, SelfJoinStampsNoQueryCounters) {
  Collection data = BuildCollection(SchemaRaw(20, 73), TokenizerKind::kWord);
  Options o;
  o.delta = 0.6;
  SilkMoth engine(&data, o);
  SearchStats stats;
  engine.DiscoverSelf(&stats);
  EXPECT_EQ(stats.query_sets, 0u);
  EXPECT_EQ(stats.oov_tokens, 0u);
}

// --- External query: oracle identity across metrics and execution modes ---

struct QueryCase {
  SimilarityKind phi;
  Relatedness metric;
  double delta;
  double alpha;

  std::string Name() const {
    std::string n = SimilarityKindName(phi);
    n += metric == Relatedness::kSimilarity ? "_Sim" : "_Contain";
    n += "_d" + std::to_string(static_cast<int>(delta * 100));
    n += "_a" + std::to_string(static_cast<int>(alpha * 100));
    return n;
  }
};

class QueryModeSweep : public ::testing::TestWithParam<QueryCase> {};

TEST_P(QueryModeSweep, SnapshotQueryMatchesOracleEverywhere) {
  const QueryCase& c = GetParam();
  Options o;
  o.phi = c.phi;
  o.metric = c.metric;
  o.delta = c.delta;
  o.alpha = c.alpha;
  ASSERT_EQ(o.Validate(), "");
  const bool qgrams = IsEditSimilarity(c.phi);
  const TokenizerKind tk = qgrams ? TokenizerKind::kQGram
                                  : TokenizerKind::kWord;
  const int q = qgrams ? o.EffectiveQ() : 0;

  const RawSets corpus_raw = qgrams ? DblpRaw(30, 81) : SchemaRaw(30, 81);
  const RawSets query_raw = qgrams ? DblpRaw(12, 82) : SchemaRaw(12, 82);

  // Snapshot round-trip (the serve-traffic path): build, save, reload
  // zero-copy, tokenize the query against the *loaded* dictionary.
  const uint32_t kShards = 3;
  Snapshot built = BuildSnapshot(BuildCollection(corpus_raw, tk, q), tk, q,
                                 kShards, 2);
  const std::string path = TempPath("sweep_" + GetParam().Name() + ".snap");
  ASSERT_EQ(SaveSnapshot(built, path), "");
  Snapshot snap;
  ASSERT_EQ(LoadSnapshot(path, &snap), "");
  std::remove(path.c_str());

  Collection query;
  const ReferenceBlock block =
      BuildQueryBlock(query_raw, tk, q, snap.data, &query);
  ASSERT_EQ(block.refs, &query);
  ASSERT_FALSE(block.self_join);
  EXPECT_EQ(block.content_hash, HashRawSets(query_raw));

  // Per-shard out-of-process primitive, concatenated: shard ranges are
  // disjoint and ascending, so concatenation is already canonical order.
  std::vector<PairMatch> concatenated;
  SearchStats shard_stats;
  for (uint32_t s = 0; s < kShards; ++s) {
    const std::vector<PairMatch> part =
        DiscoverShardAgainst(snap, s, block, o, &shard_stats);
    concatenated.insert(concatenated.end(), part.begin(), part.end());
  }
  std::sort(concatenated.begin(), concatenated.end(), PairMatchIdLess);

  // In-process engines over the in-memory corpus (same dictionary as the
  // snapshot: interning order is deterministic, so ids agree).
  Collection data = BuildCollection(corpus_raw, tk, q);
  Collection mem_query = BuildCollectionWithDict(query_raw, tk, q, data.dict);
  SilkMoth single(&data, o);
  ASSERT_TRUE(single.ok()) << single.error();
  Options sharded_opt = o;
  sharded_opt.num_shards = kShards;
  sharded_opt.num_threads = 2;
  ShardedEngine sharded(&data, sharded_opt);
  ASSERT_TRUE(sharded.ok()) << sharded.error();
  BruteForce oracle(&data, o);

  const std::vector<PairMatch> truth = oracle.Discover(mem_query);
  EXPECT_EQ(single.Discover(mem_query), truth) << c.Name();
  EXPECT_EQ(sharded.Discover(mem_query), truth) << c.Name();
  EXPECT_EQ(concatenated, truth) << c.Name();
}

std::vector<QueryCase> QueryCases() {
  return {
      {SimilarityKind::kJaccard, Relatedness::kSimilarity, 0.6, 0.0},
      {SimilarityKind::kJaccard, Relatedness::kContainment, 0.6, 0.25},
      {SimilarityKind::kEds, Relatedness::kSimilarity, 0.6, 0.75},
      {SimilarityKind::kEds, Relatedness::kContainment, 0.6, 0.7},
      {SimilarityKind::kNeds, Relatedness::kSimilarity, 0.7, 0.0},
      {SimilarityKind::kNeds, Relatedness::kContainment, 0.6, 0.75},
  };
}

INSTANTIATE_TEST_SUITE_P(Configs, QueryModeSweep,
                         ::testing::ValuesIn(QueryCases()),
                         [](const auto& info) { return info.param.Name(); });

// --- OOV edge cases --------------------------------------------------------

TEST(QueryOov, AllOovQueryFindsNothingAndCounts) {
  Collection data = BuildCollection(SchemaRaw(25, 91), TokenizerKind::kWord);
  const size_t dict_before = data.dict->size();
  Options o;
  o.delta = 0.5;
  SilkMoth engine(&data, o);

  // A vocabulary guaranteed disjoint from the generated corpus (generator
  // tokens are lowercase word/domain ids).
  const RawSets oov_raw = {{"ZZZZ-1 ZZZZ-2", "ZZZZ-3"}, {"ZZZZ-4"}};
  Collection query;
  const ReferenceBlock block =
      BuildQueryBlock(oov_raw, TokenizerKind::kWord, 0, data, &query);
  EXPECT_EQ(block.oov_tokens, 4u);
  EXPECT_EQ(data.dict->size(), dict_before + 4);

  SearchStats stats;
  EXPECT_TRUE(engine.Discover(block, &stats).empty());
  EXPECT_EQ(stats.query_sets, 2u);
  EXPECT_EQ(stats.oov_tokens, 4u);
}

TEST(QueryOov, PartialOovStillMatchesOracle) {
  const RawSets corpus_raw = SchemaRaw(25, 92);
  Collection data = BuildCollection(corpus_raw, TokenizerKind::kWord);
  // Take real corpus sets and pollute each with an OOV element: matches
  // must still be found through the in-vocabulary tokens, and the oracle
  // (which evaluates the polluted query sets directly) must agree.
  RawSets query_raw(corpus_raw.begin(), corpus_raw.begin() + 6);
  for (auto& set_texts : query_raw) set_texts.push_back("QQQQ-oov QQQQ-oov2");

  Options o;
  o.metric = Relatedness::kSimilarity;
  o.delta = 0.5;
  SilkMoth engine(&data, o);
  BruteForce oracle(&data, o);

  Collection query;
  const ReferenceBlock block =
      BuildQueryBlock(query_raw, TokenizerKind::kWord, 0, data, &query);
  EXPECT_EQ(block.oov_tokens, 2u);
  const std::vector<PairMatch> got = engine.Discover(block);
  EXPECT_EQ(got, oracle.Discover(query));
  EXPECT_FALSE(got.empty());
}

TEST(QueryOov, EmptyPayloadYieldsNothing) {
  Collection data = BuildCollection(SchemaRaw(10, 93), TokenizerKind::kWord);
  Options o;
  SilkMoth engine(&data, o);
  Collection query;
  const ReferenceBlock block =
      BuildQueryBlock(RawSets{}, TokenizerKind::kWord, 0, data, &query);
  EXPECT_EQ(block.NumRefs(), 0u);
  EXPECT_EQ(block.oov_tokens, 0u);
  SearchStats stats;
  EXPECT_TRUE(engine.Discover(block, &stats).empty());
  EXPECT_EQ(stats.query_sets, 0u);
  EXPECT_EQ(stats.references, 0u);
}

TEST(QueryOov, HashDistinguishesPayloads) {
  const RawSets a = {{"x y", "z"}};
  const RawSets b = {{"x y z"}};      // Same bytes, different structure.
  const RawSets c = {{"x y"}, {"z"}}; // Same elements, different sets.
  EXPECT_EQ(HashRawSets(a), HashRawSets(a));
  EXPECT_NE(HashRawSets(a), HashRawSets(b));
  EXPECT_NE(HashRawSets(a), HashRawSets(c));
  EXPECT_NE(HashRawSets(b), HashRawSets(c));
}

// --- Shard-result protocol: query fingerprints -----------------------------

TEST(QueryProtocol, ResultFileRoundTripsQueryFields) {
  ShardResult result;
  result.shard = 1;
  result.num_shards = 2;
  result.query_mode = true;
  result.query_hash = 0xdeadbeefcafef00dull;
  result.stats.query_sets = 7;
  result.stats.oov_tokens = 3;
  result.pairs = {{0, 4, 1.5, 0.75}, {2, 9, 2.0, 0.8}};
  const std::string path = TempPath("query_result.txt");
  ASSERT_EQ(SaveShardResult(result, path), "");
  ShardResult reloaded;
  ASSERT_EQ(LoadShardResult(path, &reloaded), "");
  std::remove(path.c_str());
  EXPECT_TRUE(reloaded.query_mode);
  EXPECT_EQ(reloaded.query_hash, 0xdeadbeefcafef00dull);
  EXPECT_EQ(reloaded.stats.query_sets, 7u);
  EXPECT_EQ(reloaded.stats.oov_tokens, 3u);
  EXPECT_EQ(reloaded.pairs, result.pairs);
}

ShardResult MakeResult(uint32_t shard, uint32_t num_shards, bool query_mode,
                       uint64_t hash) {
  ShardResult r;
  r.shard = shard;
  r.num_shards = num_shards;
  r.query_mode = query_mode;
  r.query_hash = hash;
  return r;
}

TEST(QueryProtocol, MergeRejectsMixedSelfAndQueryStreams) {
  std::vector<ShardResult> results;
  results.push_back(MakeResult(0, 2, /*query_mode=*/false, 0));
  results.push_back(MakeResult(1, 2, /*query_mode=*/true, 0x1234));
  std::vector<PairMatch> pairs;
  const std::string err = MergeShardResults(results, &pairs);
  EXPECT_NE(err.find("reference payload"), std::string::npos) << err;
  EXPECT_NE(err.find("self-join"), std::string::npos) << err;
}

TEST(QueryProtocol, MergeRejectsMismatchedQueryHashes) {
  std::vector<ShardResult> results;
  results.push_back(MakeResult(0, 2, /*query_mode=*/true, 0x1111));
  results.push_back(MakeResult(1, 2, /*query_mode=*/true, 0x2222));
  std::vector<PairMatch> pairs;
  const std::string err = MergeShardResults(results, &pairs);
  EXPECT_NE(err.find("different query payloads"), std::string::npos) << err;
}

TEST(QueryProtocol, MergeAcceptsMatchingQueryStreams) {
  std::vector<ShardResult> results;
  results.push_back(MakeResult(0, 2, /*query_mode=*/true, 0xabcd));
  results.push_back(MakeResult(1, 2, /*query_mode=*/true, 0xabcd));
  results[0].pairs = {{0, 0, 1.0, 1.0}};
  results[1].pairs = {{0, 1, 1.0, 1.0}};
  std::vector<PairMatch> pairs;
  ASSERT_EQ(MergeShardResults(results, &pairs), "");
  ASSERT_EQ(pairs.size(), 2u);
  EXPECT_EQ(pairs[0].set_id, 0u);
  EXPECT_EQ(pairs[1].set_id, 1u);
}

// End-to-end protocol parity: shard-run-against + save + load + merge over a
// real snapshot equals the in-process sharded run, stats included.
TEST(QueryProtocol, SaveLoadMergeMatchesInProcessQueryRun) {
  const RawSets corpus_raw = SchemaRaw(32, 95);
  const RawSets query_raw = SchemaRaw(10, 96);
  Options o;
  o.metric = Relatedness::kContainment;
  o.delta = 0.6;
  const uint32_t kShards = 3;

  Snapshot snap = BuildSnapshot(BuildCollection(corpus_raw,
                                                TokenizerKind::kWord, 0),
                                TokenizerKind::kWord, 0, kShards, 1);
  Collection query;
  const ReferenceBlock block =
      BuildQueryBlock(query_raw, TokenizerKind::kWord, 0, snap.data, &query);

  std::vector<ShardResult> loaded(kShards);
  for (uint32_t s = 0; s < kShards; ++s) {
    ShardResult result;
    result.shard = s;
    result.num_shards = kShards;
    result.options = o;
    result.query_mode = true;
    result.query_hash = block.content_hash;
    result.pairs = DiscoverShardAgainst(snap, s, block, o, &result.stats);
    const std::string path = TempPath("e2e_" + std::to_string(s) + ".txt");
    ASSERT_EQ(SaveShardResult(result, path), "");
    ASSERT_EQ(LoadShardResult(path, &loaded[s]), "");
    std::remove(path.c_str());
  }
  std::vector<PairMatch> merged;
  ShardedSearchStats merged_stats;
  ASSERT_EQ(MergeShardResults(loaded, &merged, &merged_stats), "");

  Options sharded_opt = o;
  sharded_opt.num_shards = kShards;
  Collection data = BuildCollection(corpus_raw, TokenizerKind::kWord, 0);
  ShardedEngine engine(&data, sharded_opt);
  ASSERT_TRUE(engine.ok()) << engine.error();
  Collection mem_query;
  const ReferenceBlock mem_block =
      BuildQueryBlock(query_raw, TokenizerKind::kWord, 0, data, &mem_query);
  ShardedSearchStats mem_stats;
  EXPECT_EQ(merged, engine.Discover(mem_block, &mem_stats));
  ASSERT_EQ(merged_stats.per_shard.size(), mem_stats.per_shard.size());
  for (size_t s = 0; s < mem_stats.per_shard.size(); ++s) {
    EXPECT_EQ(merged_stats.per_shard[s].query_sets,
              mem_stats.per_shard[s].query_sets) << "shard " << s;
    EXPECT_EQ(merged_stats.per_shard[s].results,
              mem_stats.per_shard[s].results) << "shard " << s;
    EXPECT_EQ(merged_stats.per_shard[s].verifications,
              mem_stats.per_shard[s].verifications) << "shard " << s;
  }
  // oov_tokens differ by design between the two runs only if tokenization
  // happened twice; both tokenized one payload against one fresh corpus
  // dictionary here, so they agree too.
  EXPECT_EQ(merged_stats.Total().oov_tokens, mem_stats.Total().oov_tokens);
}

// DiscoverShardAgainst refuses self-join blocks: the query entry point
// must never silently apply exclusion/dedup semantics.
TEST(QueryProtocol, DiscoverShardAgainstRefusesSelfJoinBlocks) {
  Snapshot snap = BuildSnapshot(BuildCollection(SchemaRaw(10, 97),
                                                TokenizerKind::kWord, 0),
                                TokenizerKind::kWord, 0, 1, 1);
  Options o;
  o.delta = 0.5;
  SearchStats stats;
  EXPECT_TRUE(DiscoverShardAgainst(snap, 0,
                                   ReferenceBlock::SelfJoin(snap.data), o,
                                   &stats)
                  .empty());
  EXPECT_EQ(stats.references, 0u);
}

}  // namespace
}  // namespace silkmoth
