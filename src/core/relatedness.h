#ifndef SILKMOTH_CORE_RELATEDNESS_H_
#define SILKMOTH_CORE_RELATEDNESS_H_

#include <cstddef>

#include "core/options.h"

namespace silkmoth {

/// Maximum matching threshold θ = δ|R| (Section 4.2): a set S can only be
/// related to R when |R ∩̃ S| >= θ, for both metrics.
double MatchingThreshold(double delta, size_t ref_size);

/// Relatedness score from a matching score m (Definitions 1 and 2).
/// For containment with enforce_containment_size and |S| < |R| the pair is
/// unrelated by definition and the score reported is 0.
double RelatednessScore(double matching_score, size_t ref_size,
                        size_t set_size, const Options& options);

/// True when the pair is related: RelatednessScore >= δ (within slack).
bool IsRelated(double matching_score, size_t ref_size, size_t set_size,
               const Options& options);

/// Smallest matching score m making the pair related — the inverse of
/// RelatednessScore at δ: δ(|R|+|S|)/(1+δ) for SET-SIMILARITY, δ|R| for
/// SET-CONTAINMENT. IsRelated(m, ...) holds iff m >= this (within slack).
/// Callers must pre-exclude pairs that are unrelated regardless of m (empty
/// sets; containment with enforcement and |S| < |R|) — SizeFeasible already
/// rejects all of them.
double RelatedScoreThreshold(size_t ref_size, size_t set_size,
                             const Options& options);

/// Smallest matching score m whose RelatednessScore reaches `relatedness`
/// for this pair shape — RelatedScoreThreshold generalized from δ to an
/// arbitrary target ratio. Top-k search uses it to translate the running
/// k-th-best relatedness into a matching-score floor for the verifier:
/// RelatednessScore is nondecreasing in m, so any m strictly below this
/// value has a strictly smaller ratio than `relatedness` (up to the usual
/// kFloatSlack-scale drift, which the verifier's margin absorbs).
double ScoreThresholdForRelatedness(double relatedness, size_t ref_size,
                                    size_t set_size, const Options& options);

/// Size bounds a candidate set must satisfy (footnote 6 and Definition 2).
/// For SET-SIMILARITY: δ|R| <= |S| <= |R|/δ. For SET-CONTAINMENT with
/// enforcement: |S| >= |R|. Returns true when |S| = `set_size` is feasible.
bool SizeFeasible(size_t ref_size, size_t set_size, const Options& options);

}  // namespace silkmoth

#endif  // SILKMOTH_CORE_RELATEDNESS_H_
