// Unit tests for the supervision building blocks: the backoff schedule,
// the fault-injection spec grammar and --inject plan grammar, the run
// report JSON, atomic file publication (including injected torn/corrupt
// commits), the EINTR/short-read file reader, the shard-result v5
// round-trip, and degraded partial merges with coverage stamping.
//
// The end-to-end supervision paths (real fork/exec workers, deadlines,
// kill/retry) are exercised by tests/orchestrator_fault_matrix_test.sh
// against the real silkmoth_cli binary.

#include "snapshot/orchestrator.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "snapshot/shard_runner.h"
#include "util/atomic_file_writer.h"
#include "util/fault_injection.h"

namespace silkmoth {
namespace {

// --- BackoffSeconds --------------------------------------------------------

TEST(BackoffTest, DeterministicGivenSeedShardAttempt) {
  const double a = BackoffSeconds(2, 7, 0.05, 2.0, 42);
  const double b = BackoffSeconds(2, 7, 0.05, 2.0, 42);
  EXPECT_EQ(a, b);
}

TEST(BackoffTest, JitterStaysInHalfToFullBand) {
  // Attempt 2 = first retry: undithered delay is exactly `base`.
  for (uint32_t shard = 0; shard < 50; ++shard) {
    const double d = BackoffSeconds(2, shard, 0.1, 10.0, shard * 13 + 1);
    EXPECT_GE(d, 0.05);
    EXPECT_LE(d, 0.1);
  }
}

TEST(BackoffTest, DoublesPerFailureUntilCap) {
  // With jitter bounded to [0.5, 1.0]x, the undithered schedule is visible
  // through the upper bound: attempt k waits at most base * 2^(k-2).
  const double base = 0.01, cap = 0.5;
  for (int attempt = 2; attempt <= 12; ++attempt) {
    const double undithered = base * static_cast<double>(1 << (attempt - 2));
    const double expected = undithered < cap ? undithered : cap;
    const double d = BackoffSeconds(attempt, 3, base, cap, 9);
    EXPECT_LE(d, expected);
    EXPECT_GE(d, expected * 0.5);
  }
}

TEST(BackoffTest, DifferentShardsSpreadOut) {
  // Not a hard guarantee per pair, but across many shards the jitter must
  // produce more than one distinct wait — that is its whole point.
  std::vector<double> waits;
  for (uint32_t shard = 0; shard < 16; ++shard) {
    waits.push_back(BackoffSeconds(2, shard, 0.1, 2.0, 0));
  }
  bool any_differ = false;
  for (size_t i = 1; i < waits.size(); ++i) {
    any_differ = any_differ || waits[i] != waits[0];
  }
  EXPECT_TRUE(any_differ);
}

// --- Fault spec / fault plan grammars --------------------------------------

TEST(FaultSpecTest, ParsesFullGrammar) {
  std::vector<fault::FaultSpec> specs;
  const std::string err = fault::ParseFaultSpecs(
      "result-write:torn:20,worker-start:kill,result-pair:abort:0:3", &specs);
  EXPECT_EQ(err, "");
  ASSERT_EQ(specs.size(), 3u);
  EXPECT_EQ(specs[0].site, "result-write");
  EXPECT_EQ(specs[0].action, fault::FaultSpec::Action::kTorn);
  EXPECT_EQ(specs[0].arg, 20);
  EXPECT_EQ(specs[0].nth, 1);
  EXPECT_EQ(specs[1].action, fault::FaultSpec::Action::kKill);
  EXPECT_EQ(specs[2].nth, 3);
}

TEST(FaultSpecTest, RejectsJunk) {
  std::vector<fault::FaultSpec> specs;
  EXPECT_NE(fault::ParseFaultSpecs("no-action-here", &specs), "");
  EXPECT_NE(fault::ParseFaultSpecs("site:frobnicate", &specs), "");
  EXPECT_NE(fault::ParseFaultSpecs("site:fail:notanumber", &specs), "");
}

TEST(FaultSpecTest, HitFiresOnNthCallOnly) {
  fault::ArmForTest("spot:fail:0:3");
  EXPECT_EQ(fault::Hit("spot").kind, fault::Outcome::kNone);
  EXPECT_EQ(fault::Hit("spot").kind, fault::Outcome::kNone);
  EXPECT_EQ(fault::Hit("spot").kind, fault::Outcome::kFail);
  EXPECT_EQ(fault::Hit("spot").kind, fault::Outcome::kNone);
  EXPECT_EQ(fault::Hit("elsewhere").kind, fault::Outcome::kNone);
  fault::ArmForTest("");
}

TEST(FaultPlanTest, ParsesInjectGrammar) {
  FaultPlan plan;
  const std::string err =
      ParseFaultPlan("shard=2,attempt=1,fault=worker-start:kill", &plan);
  EXPECT_EQ(err, "");
  EXPECT_EQ(plan.shard, 2u);
  EXPECT_EQ(plan.attempt, 1);
  EXPECT_EQ(plan.fault, "worker-start:kill");
}

TEST(FaultPlanTest, FaultKeyConsumesRestIncludingCommas) {
  FaultPlan plan;
  const std::string err = ParseFaultPlan(
      "shard=0,attempt=0,fault=result-write:torn:20,snapshot-open:fail",
      &plan);
  EXPECT_EQ(err, "");
  EXPECT_EQ(plan.fault, "result-write:torn:20,snapshot-open:fail");
}

TEST(FaultPlanTest, RejectsJunk) {
  FaultPlan plan;
  EXPECT_NE(ParseFaultPlan("", &plan), "");
  EXPECT_NE(ParseFaultPlan("shard=x,fault=a:fail", &plan), "");
  EXPECT_NE(ParseFaultPlan("shard=1,attempt=2", &plan), "");
  EXPECT_NE(ParseFaultPlan("frob=1,fault=a:fail", &plan), "");
}

// --- Run report JSON -------------------------------------------------------

TEST(RunReportTest, ToJsonCarriesTheSupervisionHistory) {
  RunReport report;
  report.ok = false;
  report.num_shards = 2;
  report.attempts_total = 3;
  report.retries = 1;
  report.timeouts = 1;
  report.wall_seconds = 1.5;
  report.failed_shards = {1};
  ShardRunRecord rec;
  rec.shard = 1;
  rec.ok = false;
  rec.result_path = "/tmp/shard1.res";
  AttemptRecord att;
  att.attempt = 1;
  att.outcome = ShardOutcome::kTimeout;
  att.code = 9;
  att.detail = "deadline \"exceeded\"";
  rec.attempts.push_back(att);
  report.shards.push_back(rec);

  const std::string json = report.ToJson();
  EXPECT_NE(json.find("\"ok\":false"), std::string::npos);
  EXPECT_NE(json.find("\"num_shards\":2"), std::string::npos);
  EXPECT_NE(json.find("\"retries\":1"), std::string::npos);
  EXPECT_NE(json.find("\"failed_shards\":[1]"), std::string::npos);
  EXPECT_NE(json.find("\"outcome\":\"timeout\""), std::string::npos);
  // Quotes inside details must be escaped — the report is machine-read.
  EXPECT_NE(json.find("deadline \\\"exceeded\\\""), std::string::npos);
}

TEST(RunReportTest, OutcomeNamesAreStable) {
  EXPECT_STREQ(ShardOutcomeName(ShardOutcome::kSuccess), "success");
  EXPECT_STREQ(ShardOutcomeName(ShardOutcome::kExitNonZero), "exit-nonzero");
  EXPECT_STREQ(ShardOutcomeName(ShardOutcome::kSignal), "signal");
  EXPECT_STREQ(ShardOutcomeName(ShardOutcome::kTimeout), "timeout");
  EXPECT_STREQ(ShardOutcomeName(ShardOutcome::kCorruptResult),
               "corrupt-result");
  EXPECT_STREQ(ShardOutcomeName(ShardOutcome::kSpawnFailure),
               "spawn-failure");
}

// --- AtomicFileWriter / ReadFileToString -----------------------------------

std::string TempPath(const char* name) {
  return testing::TempDir() + "/" + name;
}

TEST(AtomicFileWriterTest, CommitPublishesExactBytes) {
  const std::string path = TempPath("afw_commit.txt");
  AtomicFileWriter writer(path);
  ASSERT_EQ(writer.Open(), "");
  ASSERT_EQ(writer.Write("hello "), "");
  ASSERT_EQ(writer.Write("world"), "");
  ASSERT_EQ(writer.Commit(), "");
  std::string back;
  ASSERT_EQ(ReadFileToString(path, &back), "");
  EXPECT_EQ(back, "hello world");
  std::remove(path.c_str());
}

TEST(AtomicFileWriterTest, AbortLeavesNothingBehind) {
  const std::string path = TempPath("afw_abort.txt");
  {
    AtomicFileWriter writer(path);
    ASSERT_EQ(writer.Open(), "");
    ASSERT_EQ(writer.Write("doomed"), "");
    // No Commit(): destruction must remove the staged sibling.
  }
  std::string back;
  EXPECT_NE(ReadFileToString(path, &back), "");
  std::FILE* tmp = std::fopen((path + ".tmp").c_str(), "rb");
  EXPECT_EQ(tmp, nullptr);
  if (tmp != nullptr) std::fclose(tmp);
}

TEST(AtomicFileWriterTest, InjectedFailedCommitLeavesOldFileIntact) {
  const std::string path = TempPath("afw_fail.txt");
  {
    AtomicFileWriter writer(path);
    ASSERT_EQ(writer.Open(), "");
    ASSERT_EQ(writer.Write("old"), "");
    ASSERT_EQ(writer.Commit(), "");
  }
  fault::ArmForTest("unit-commit:fail");
  {
    AtomicFileWriter writer(path, "unit-commit");
    ASSERT_EQ(writer.Open(), "");
    ASSERT_EQ(writer.Write("new"), "");
    EXPECT_NE(writer.Commit(), "");
  }
  fault::ArmForTest("");
  std::string back;
  ASSERT_EQ(ReadFileToString(path, &back), "");
  EXPECT_EQ(back, "old");
  std::remove(path.c_str());
}

TEST(AtomicFileWriterTest, InjectedTornCommitTruncates) {
  const std::string path = TempPath("afw_torn.txt");
  fault::ArmForTest("unit-commit:torn:4");
  {
    AtomicFileWriter writer(path, "unit-commit");
    ASSERT_EQ(writer.Open(), "");
    ASSERT_EQ(writer.Write("0123456789"), "");
    ASSERT_EQ(writer.Commit(), "");
  }
  fault::ArmForTest("");
  std::string back;
  ASSERT_EQ(ReadFileToString(path, &back), "");
  EXPECT_EQ(back, "0123");
  std::remove(path.c_str());
}

TEST(ReadFileToStringTest, MissingFileReportsCannotOpen) {
  std::string back = "untouched";
  const std::string err =
      ReadFileToString(TempPath("never_written.txt"), &back);
  EXPECT_NE(err.find("cannot open"), std::string::npos);
  EXPECT_EQ(back, "untouched");
}

// --- Shard-result v5 round-trip + partial merge ----------------------------

ShardResult MakeResult(uint32_t shard, uint32_t num_shards, uint32_t begin,
                       uint32_t end) {
  ShardResult r;
  r.shard = shard;
  r.num_shards = num_shards;
  r.range = SetIdRange{begin, end};
  PairMatch p;
  p.ref_id = begin;
  p.set_id = begin + 1;
  p.matching_score = 1.0;
  p.relatedness = 0.5;
  r.pairs.push_back(p);
  r.stats.results = 1;
  return r;
}

TEST(ShardResultV5Test, RangeSurvivesTheRoundTrip) {
  const std::string path = TempPath("shard_v5.res");
  const ShardResult out = MakeResult(1, 3, 40, 80);
  ASSERT_EQ(SaveShardResult(out, path), "");
  ShardResult in;
  ASSERT_EQ(LoadShardResult(path, &in), "");
  EXPECT_EQ(in.shard, 1u);
  EXPECT_EQ(in.range.begin, 40u);
  EXPECT_EQ(in.range.end, 80u);
  ASSERT_EQ(in.pairs.size(), 1u);
  EXPECT_EQ(in.pairs[0].ref_id, 40u);
  std::remove(path.c_str());
}

TEST(PartialMergeTest, StrictMergeStillRefusesMissingShards) {
  std::vector<ShardResult> results = {MakeResult(0, 3, 0, 40),
                                      MakeResult(2, 3, 80, 120)};
  std::vector<PairMatch> pairs;
  const std::string err = MergeShardResults(results, &pairs);
  EXPECT_NE(err, "");
}

TEST(PartialMergeTest, AllowPartialMergesAndStampsCoverage) {
  std::vector<ShardResult> results = {MakeResult(0, 3, 0, 40),
                                      MakeResult(2, 3, 80, 120)};
  std::vector<PairMatch> pairs;
  ShardedSearchStats stats;
  MergeCoverage cov;
  const std::string err = MergeShardResults(results, &pairs, &stats,
                                            MergeOptions{true}, &cov);
  ASSERT_EQ(err, "");
  EXPECT_EQ(pairs.size(), 2u);
  EXPECT_FALSE(cov.complete);
  EXPECT_EQ(cov.num_shards, 3u);
  ASSERT_EQ(cov.covered.size(), 2u);
  EXPECT_EQ(cov.covered[0], 0u);
  EXPECT_EQ(cov.covered[1], 2u);
  ASSERT_EQ(cov.covered_ranges.size(), 2u);
  EXPECT_EQ(cov.covered_ranges[1].begin, 80u);
  EXPECT_EQ(cov.covered_ranges[1].end, 120u);
  ASSERT_EQ(cov.missing.size(), 1u);
  EXPECT_EQ(cov.missing[0], 1u);
}

TEST(PartialMergeTest, CompleteMergeReportsFullCoverage) {
  std::vector<ShardResult> results = {MakeResult(0, 2, 0, 40),
                                      MakeResult(1, 2, 40, 80)};
  std::vector<PairMatch> pairs;
  ShardedSearchStats stats;
  MergeCoverage cov;
  const std::string err = MergeShardResults(results, &pairs, &stats,
                                            MergeOptions{true}, &cov);
  ASSERT_EQ(err, "");
  EXPECT_TRUE(cov.complete);
  EXPECT_EQ(cov.covered.size(), 2u);
  EXPECT_TRUE(cov.missing.empty());
}

}  // namespace
}  // namespace silkmoth
