#include "sig/optimal.h"

#include <gtest/gtest.h>

#include "core/relatedness.h"
#include "datagen/builders.h"
#include "sig/scheme.h"
#include "util/rng.h"

namespace silkmoth {
namespace {

SchemeParams WeightedParams(double theta) {
  SchemeParams p;
  p.scheme = SignatureSchemeKind::kWeighted;
  p.phi = SimilarityKind::kJaccard;
  p.theta = theta;
  return p;
}

// Random tiny word collections so the exhaustive oracle stays cheap.
Collection TinyData(Rng* rng, size_t num_sets, size_t vocab) {
  RawSets raw;
  for (size_t s = 0; s < num_sets; ++s) {
    std::vector<std::string> elems;
    const size_t ne = 1 + rng->NextBounded(3);
    for (size_t e = 0; e < ne; ++e) {
      std::string text;
      const size_t nw = 1 + rng->NextBounded(3);
      for (size_t w = 0; w < nw; ++w) {
        if (!text.empty()) text.push_back(' ');
        text += "t" + std::to_string(rng->NextBounded(vocab));
      }
      elems.push_back(text);
    }
    raw.push_back(elems);
  }
  return BuildCollection(raw, TokenizerKind::kWord);
}

TEST(OptimalSignatureTest, OptimalIsValidAndGreedyIsNeverCheaper) {
  Rng rng(404);
  int compared = 0;
  for (int trial = 0; trial < 30; ++trial) {
    Collection data = TinyData(&rng, 6, 10);
    InvertedIndex index;
    index.Build(data);
    const SetRecord& ref = data.sets[0];
    if (ref.Empty()) continue;
    const double theta = MatchingThreshold(0.7, ref.Size());
    auto optimal = OptimalWeightedSignature(ref, index, WeightedParams(theta));
    if (!optimal) continue;
    Signature greedy = WeightedSignature(ref, index, WeightedParams(theta));
    ASSERT_TRUE(greedy.valid);
    // NP-completeness (Theorem 2) means greedy may be suboptimal but can
    // never beat the exhaustive optimum.
    EXPECT_GE(greedy.Cost(index), optimal->cost) << "trial " << trial;
    ++compared;
  }
  EXPECT_GT(compared, 10);
}

TEST(OptimalSignatureTest, OptimalSubsetSatisfiesWeightedCriterion) {
  Rng rng(405);
  Collection data = TinyData(&rng, 5, 8);
  InvertedIndex index;
  index.Build(data);
  const SetRecord& ref = data.sets[0];
  const double theta = MatchingThreshold(0.8, ref.Size());
  auto optimal = OptimalWeightedSignature(ref, index, WeightedParams(theta));
  ASSERT_TRUE(optimal.has_value());
  // Recompute the bound sum of the chosen subset.
  const auto units = MakeElementUnits(ref, SimilarityKind::kJaccard);
  double bound_sum = 0.0;
  for (const auto& u : units) {
    size_t selected = 0;
    for (size_t j = 0; j < u.tokens.size(); ++j) {
      if (std::binary_search(optimal->tokens.begin(), optimal->tokens.end(),
                             u.tokens[j])) {
        selected += u.mults[j];
      }
    }
    bound_sum += u.BoundAfter(selected);
  }
  EXPECT_LT(bound_sum, theta);
}

TEST(OptimalSignatureTest, TooManyTokensReturnsNullopt) {
  Rng rng(406);
  Collection data = TinyData(&rng, 3, 50);
  InvertedIndex index;
  index.Build(data);
  // Build an artificial wide reference with > 20 distinct tokens.
  RawSets wide_raw = {{[&] {
    std::string text;
    for (int w = 0; w < 25; ++w) {
      if (!text.empty()) text.push_back(' ');
      text += "w" + std::to_string(w);
    }
    return text;
  }()}};
  Collection wide = BuildCollectionWithDict(wide_raw, TokenizerKind::kWord, 0,
                                            data.dict);
  auto result = OptimalWeightedSignature(wide.sets[0], index,
                                         WeightedParams(0.7), 20);
  EXPECT_FALSE(result.has_value());
}

TEST(OptimalSignatureTest, GreedyOftenNearOptimal) {
  // Sanity on heuristic quality: cost ratio should usually be small. This is
  // a soft check (bounded by 5x) so the test is robust yet still meaningful.
  Rng rng(407);
  double worst_ratio = 1.0;
  for (int trial = 0; trial < 20; ++trial) {
    Collection data = TinyData(&rng, 8, 9);
    InvertedIndex index;
    index.Build(data);
    const SetRecord& ref = data.sets[0];
    if (ref.Empty()) continue;
    const double theta = MatchingThreshold(0.7, ref.Size());
    auto optimal = OptimalWeightedSignature(ref, index, WeightedParams(theta));
    if (!optimal || optimal->cost == 0) continue;
    Signature greedy = WeightedSignature(ref, index, WeightedParams(theta));
    worst_ratio = std::max(
        worst_ratio, static_cast<double>(greedy.Cost(index)) /
                         static_cast<double>(optimal->cost));
  }
  EXPECT_LE(worst_ratio, 5.0);
}

}  // namespace
}  // namespace silkmoth
