#ifndef SILKMOTH_SIG_SIGNATURE_H_
#define SILKMOTH_SIG_SIGNATURE_H_

#include <cstdint>
#include <vector>

#include "core/options.h"
#include "index/inverted_index.h"
#include "text/dataset.h"

namespace silkmoth {

/// A generated signature for a reference set R (Sections 4, 6, 7).
///
/// All schemes produce this uniform shape so candidate selection and the
/// refinement filters compose with any scheme:
///
///  - `probe[i]`       the signature tokens l_i of element r_i; candidate
///                     selection looks these up in the inverted index.
///  - `miss_bound[i]`  an upper bound on φ_α(r_i, s) valid for EVERY element
///                     s of a set S with S ∩ l_i = ∅. For weighted-style
///                     token sets this is (|r_i|-|k_i|)/|r_i| (Jaccard) or
///                     |r_i|/(|r_i|+|k_i|) (edit similarity, Definition 11);
///                     for α-protected elements (l_i is a valid sim-thresh
///                     set, Section 6.1) it is 0.
///  - `check_threshold[i]` the strong-match threshold of the check filter
///                     (Section 5.1 / 6.5): a probed match with
///                     φ_α < check_threshold[i] cannot raise element i's
///                     contribution above miss_bound[i].
///  - `alpha_protected[i]` whether l_i is a valid sim-thresh set.
///
/// `valid` reports whether the scheme's own validity criterion holds; when
/// false the engine must fall back to scanning every set for this reference
/// (Section 7.3). Whenever miss_bound_sum < θ the check/NN filters may prune
/// candidates by bound arithmetic; this is implied by `valid` for the
/// weighted-family schemes but not for the combined-unweighted scheme, whose
/// validity rests on the c = ⌈θ⌉ count argument instead.
struct Signature {
  std::vector<std::vector<TokenId>> probe;
  std::vector<double> miss_bound;
  std::vector<double> check_threshold;
  std::vector<uint8_t> alpha_protected;
  double miss_bound_sum = 0.0;
  bool valid = false;

  /// Total number of probe tokens across elements (with repetition).
  size_t NumProbeTokens() const;

  /// Flattened, deduplicated probe token list (K^T_R / L^T_R).
  std::vector<TokenId> FlatTokens() const;

  /// Sum of inverted list lengths over FlatTokens(): the optimization
  /// objective of Problems 3 and 4.
  size_t Cost(const InvertedIndex& index) const;
};

/// Everything a scheme needs to know about one element of R.
///
/// "Units" are the selectable signature atoms: distinct word tokens for
/// Jaccard (multiplicity 1 each), distinct q-chunk tokens for edit
/// similarity (multiplicity = occurrence count). `size` is |r_i| in the
/// paper's formulas: distinct token count (Jaccard) or string length (edit).
struct ElementUnits {
  std::vector<TokenId> tokens;       ///< Distinct selectable tokens.
  std::vector<uint32_t> mults;       ///< Parallel multiplicities.
  size_t total_units = 0;            ///< Σ mults.
  double size = 0.0;                 ///< |r_i|.
  bool edit = false;                 ///< Edit-similarity bound shape.

  /// Remaining-similarity upper bound after selecting `selected` units:
  /// (size - selected)/size for Jaccard, size/(size + selected) for edit.
  double BoundAfter(size_t selected) const;

  /// BoundAfter(selected) - BoundAfter(selected + mult): marginal gain.
  double Gain(size_t selected, uint32_t mult) const;
};

/// Extracts the unit view of every element of `set` for similarity `phi`.
std::vector<ElementUnits> MakeElementUnits(const SetRecord& set,
                                           SimilarityKind phi);

/// Inputs shared by all signature schemes.
struct SchemeParams {
  SignatureSchemeKind scheme = SignatureSchemeKind::kDichotomy;
  SimilarityKind phi = SimilarityKind::kJaccard;
  double theta = 0.0;  ///< Maximum matching threshold δ|R|.
  double alpha = 0.0;
  int q = 0;           ///< Effective q (edit similarity only).
};

/// Populates check_threshold / miss_bound_sum once probe, miss_bound and
/// alpha_protected are filled. `li_bound[i]` must hold the weighted-formula
/// bound computed over l_i's units (used by the §6.5 thresholds).
void FinalizeSignature(Signature* sig, const SchemeParams& params,
                       const std::vector<double>& li_bound);

}  // namespace silkmoth

#endif  // SILKMOTH_SIG_SIGNATURE_H_
