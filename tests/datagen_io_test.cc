#include "datagen/io.h"

#include <cstdio>
#include <sstream>

#include <gtest/gtest.h>

#include "datagen/dblp.h"

namespace silkmoth {
namespace {

TEST(RawSetIoTest, StreamRoundTrip) {
  RawSets sets = {{"a b", "c"}, {"single"}, {"x", "y", "z"}};
  std::stringstream buf;
  WriteRawSets(sets, buf);
  RawSets loaded;
  ReadRawSets(buf, &loaded);
  EXPECT_EQ(loaded, sets);
}

TEST(RawSetIoTest, LeadingCommentsSkipped) {
  std::stringstream buf("# comment line\n# another\nelem one\nelem two\n");
  RawSets loaded;
  ReadRawSets(buf, &loaded);
  ASSERT_EQ(loaded.size(), 1u);
  EXPECT_EQ(loaded[0], (std::vector<std::string>{"elem one", "elem two"}));
}

TEST(RawSetIoTest, MultipleBlankLinesCollapse) {
  std::stringstream buf("a\n\n\n\nb\n");
  RawSets loaded;
  ReadRawSets(buf, &loaded);
  ASSERT_EQ(loaded.size(), 2u);
}

TEST(RawSetIoTest, EmptyInput) {
  std::stringstream buf("");
  RawSets loaded = {{"stale"}};
  ReadRawSets(buf, &loaded);
  EXPECT_TRUE(loaded.empty());
}

TEST(RawSetIoTest, FileRoundTrip) {
  DblpParams p;
  p.num_titles = 20;
  RawSets sets = GenerateDblpSets(p);
  const std::string path = ::testing::TempDir() + "/silkmoth_io_test.txt";
  ASSERT_TRUE(SaveRawSets(sets, path));
  RawSets loaded;
  ASSERT_TRUE(LoadRawSets(path, &loaded));
  EXPECT_EQ(loaded, sets);
  std::remove(path.c_str());
}

TEST(RawSetIoTest, LoadMissingFileFails) {
  RawSets loaded;
  EXPECT_FALSE(LoadRawSets("/nonexistent/path/nope.txt", &loaded));
}

TEST(RawSetIoTest, SaveToBadPathFails) {
  EXPECT_FALSE(SaveRawSets({{"a"}}, "/nonexistent/dir/file.txt"));
}

}  // namespace
}  // namespace silkmoth
