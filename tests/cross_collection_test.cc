// Cross-collection discovery (R != S) across metrics and similarity
// functions — the configuration the integration sweep exercises only for
// Jaccard. Also covers the check-only filter flag combination on edit
// similarity.

#include <gtest/gtest.h>

#include "core/brute_force.h"
#include "core/engine.h"
#include "datagen/dblp.h"
#include "datagen/webtable.h"

namespace silkmoth {
namespace {

struct CrossCase {
  SimilarityKind phi;
  Relatedness metric;
  double delta;
  double alpha;
  bool check_filter;
  bool nn_filter;

  std::string Name() const {
    std::string n = SimilarityKindName(phi);
    n += metric == Relatedness::kSimilarity ? "_Sim" : "_Contain";
    n += "_d" + std::to_string(static_cast<int>(delta * 100));
    n += "_a" + std::to_string(static_cast<int>(alpha * 100));
    if (!check_filter) n += "_nocheck";
    if (!nn_filter) n += "_nonn";
    return n;
  }
};

class CrossCollectionSweep : public ::testing::TestWithParam<CrossCase> {};

TEST_P(CrossCollectionSweep, DiscoverAgainstSeparateReferences) {
  const CrossCase& c = GetParam();
  Options o;
  o.phi = c.phi;
  o.metric = c.metric;
  o.delta = c.delta;
  o.alpha = c.alpha;
  o.check_filter = c.check_filter;
  o.nn_filter = c.nn_filter;
  ASSERT_EQ(o.Validate(), "");

  Collection data, refs;
  if (IsEditSimilarity(c.phi)) {
    DblpParams p;
    p.num_titles = 30;
    p.vocabulary = 60;
    p.min_words = 1;
    p.max_words = 3;
    p.duplicate_rate = 0.4;
    p.typo_rate = 0.3;
    p.seed = 61;
    data = BuildCollection(GenerateDblpSets(p), TokenizerKind::kQGram,
                           o.EffectiveQ());
    p.seed = 62;  // Overlapping vocabulary, fresh draws.
    p.num_titles = 12;
    refs = BuildCollectionWithDict(GenerateDblpSets(p),
                                   TokenizerKind::kQGram, o.EffectiveQ(),
                                   data.dict);
  } else {
    WebTableParams p = SchemaMatchingDefaults(30, 63);
    p.min_elements = 1;
    p.max_elements = 4;
    p.min_tokens = 2;
    p.max_tokens = 5;
    p.num_domains = 5;
    p.domain_values = 30;
    data = BuildCollection(GenerateSchemaSets(p), TokenizerKind::kWord);
    p.num_sets = 12;
    p.seed = 64;
    refs = BuildCollectionWithDict(GenerateSchemaSets(p),
                                   TokenizerKind::kWord, 0, data.dict);
  }

  SilkMoth engine(&data, o);
  BruteForce oracle(&data, o);
  ASSERT_TRUE(engine.ok()) << engine.error();
  EXPECT_EQ(engine.Discover(refs), oracle.Discover(refs)) << c.Name();
}

std::vector<CrossCase> CrossCases() {
  return {
      {SimilarityKind::kJaccard, Relatedness::kSimilarity, 0.6, 0.0, true,
       true},
      {SimilarityKind::kJaccard, Relatedness::kContainment, 0.6, 0.25, true,
       true},
      {SimilarityKind::kJaccard, Relatedness::kContainment, 0.8, 0.5, true,
       false},
      {SimilarityKind::kEds, Relatedness::kSimilarity, 0.6, 0.75, true,
       true},
      {SimilarityKind::kEds, Relatedness::kSimilarity, 0.7, 0.8, true,
       false},
      {SimilarityKind::kEds, Relatedness::kContainment, 0.6, 0.7, false,
       false},
      {SimilarityKind::kNeds, Relatedness::kContainment, 0.6, 0.75, true,
       true},
      {SimilarityKind::kNeds, Relatedness::kSimilarity, 0.7, 0.0, true,
       true},
  };
}

INSTANTIATE_TEST_SUITE_P(Configs, CrossCollectionSweep,
                         ::testing::ValuesIn(CrossCases()),
                         [](const auto& info) { return info.param.Name(); });

TEST(CrossCollectionTest, DisjointDictionariesWouldBreakSilently) {
  // Documented contract: references must share the data dictionary. A
  // reference tokenized against a dictionary with a different interning
  // order gets different ids and silently cannot match — this test pins the
  // sharp edge so the contract stays visible.
  RawSets raw = GenerateSchemaSets(SchemaMatchingDefaults(10, 65));
  Collection data = BuildCollection(raw, TokenizerKind::kWord);
  // Same raw sets, but a leading extra set shifts every token id.
  RawSets shifted_raw = raw;
  shifted_raw.insert(shifted_raw.begin(), {"zz yy xx"});
  Collection foreign = BuildCollection(shifted_raw, TokenizerKind::kWord);
  Options o;
  o.metric = Relatedness::kSimilarity;
  o.delta = 0.7;
  SilkMoth engine(&data, o);
  // foreign.sets[1] is textually identical to data.sets[0] but carries
  // shifted ids: silently unrelated.
  ASSERT_EQ(foreign.sets[1].elements[0].text, data.sets[0].elements[0].text);
  EXPECT_TRUE(engine.Search(foreign.sets[1]).empty());
  // The shared-dictionary route finds the identical set.
  EXPECT_FALSE(engine.Search(data.sets[0]).empty());
}

}  // namespace
}  // namespace silkmoth
