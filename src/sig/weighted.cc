#include <algorithm>
#include <queue>
#include <unordered_map>

#include "sig/greedy_internal.h"
#include "sig/scheme.h"
#include "sig/simthresh.h"
#include "text/similarity.h"

namespace silkmoth {
namespace sig_internal {

std::vector<TokenOcc> CollectTokens(const std::vector<ElementUnits>& units,
                                    const InvertedIndex& index) {
  std::unordered_map<TokenId, size_t> slot;
  std::vector<TokenOcc> tokens;
  for (uint32_t i = 0; i < units.size(); ++i) {
    const ElementUnits& u = units[i];
    for (size_t j = 0; j < u.tokens.size(); ++j) {
      auto [it, inserted] = slot.try_emplace(u.tokens[j], tokens.size());
      if (inserted) {
        TokenOcc occ;
        occ.token = u.tokens[j];
        occ.cost = index.ListSize(u.tokens[j]);
        tokens.push_back(std::move(occ));
      }
      tokens[it->second].occs.emplace_back(i, u.mults[j]);
    }
  }
  return tokens;
}

namespace {

struct HeapEntry {
  double ratio;
  size_t cost;
  TokenId token;
  uint32_t index;  // Into the tokens vector.
  double value;    // Value at push time (for staleness detection).
};

/// Min-heap order: ratio asc, then cost asc, then token id DESC (the paper's
/// running example breaks cost/value ties toward later-subscripted, i.e.
/// rarer, tokens).
struct HeapCompare {
  bool operator()(const HeapEntry& a, const HeapEntry& b) const {
    if (a.ratio != b.ratio) return a.ratio > b.ratio;
    if (a.cost != b.cost) return a.cost > b.cost;
    return a.token < b.token;
  }
};

}  // namespace

GreedyResult RunGreedy(const std::vector<ElementUnits>& units,
                       const std::vector<TokenOcc>& tokens, double theta,
                       const std::vector<size_t>& completion) {
  GreedyResult result;
  result.state.resize(units.size());
  result.bound_sum = 0.0;
  for (const ElementUnits& u : units) result.bound_sum += u.BoundAfter(0);
  if (result.bound_sum < theta - kFloatSlack) {
    result.reached = true;  // Degenerate: already below θ (tiny θ).
    return result;
  }

  auto token_value = [&](const TokenOcc& t) {
    double v = 0.0;
    for (const auto& [elem, mult] : t.occs) {
      const SelectState& st = result.state[elem];
      if (st.complete) continue;
      v += units[elem].Gain(st.selected_units, mult);
    }
    return v;
  };

  std::priority_queue<HeapEntry, std::vector<HeapEntry>, HeapCompare> heap;
  for (uint32_t i = 0; i < tokens.size(); ++i) {
    const double v = token_value(tokens[i]);
    if (v <= 0.0) continue;
    heap.push(HeapEntry{static_cast<double>(tokens[i].cost) / v,
                        tokens[i].cost, tokens[i].token, i, v});
  }

  while (!heap.empty()) {
    HeapEntry top = heap.top();
    heap.pop();
    const TokenOcc& tok = tokens[top.index];
    const double v = token_value(tok);
    if (v <= 0.0) continue;  // All hosting elements completed meanwhile.
    if (v < top.value - 1e-12) {
      // Stale: the marginal gain shrank since push; re-rank lazily.
      heap.push(HeapEntry{static_cast<double>(tok.cost) / v, tok.cost,
                          tok.token, top.index, v});
      continue;
    }

    for (const auto& [elem, mult] : tok.occs) {
      SelectState& st = result.state[elem];
      if (st.complete) continue;
      const ElementUnits& u = units[elem];
      const double before = u.BoundAfter(st.selected_units);
      st.selected_units += mult;
      st.chosen.push_back(tok.token);
      double after = u.BoundAfter(st.selected_units);
      if (completion[elem] != kNoSimThresh &&
          st.selected_units >= completion[elem]) {
        st.complete = true;  // §6.4: remaining tokens of r_i become free.
        after = 0.0;
      }
      result.bound_sum += after - before;
    }
    if (result.bound_sum < theta - kFloatSlack) {
      result.reached = true;
      break;
    }
  }
  return result;
}

}  // namespace sig_internal

Signature WeightedSignature(const SetRecord& set, const InvertedIndex& index,
                            const SchemeParams& params) {
  using sig_internal::CollectTokens;
  using sig_internal::RunGreedy;

  const std::vector<ElementUnits> units = MakeElementUnits(set, params.phi);
  const std::vector<sig_internal::TokenOcc> tokens =
      CollectTokens(units, index);
  const std::vector<size_t> no_completion(units.size(), kNoSimThresh);
  sig_internal::GreedyResult greedy =
      RunGreedy(units, tokens, params.theta, no_completion);

  Signature sig;
  const size_t n = units.size();
  sig.probe.resize(n);
  sig.miss_bound.resize(n);
  sig.alpha_protected.assign(n, 0);
  std::vector<double> li_bound(n);
  for (size_t i = 0; i < n; ++i) {
    sig.probe[i] = std::move(greedy.state[i].chosen);
    sig.miss_bound[i] = units[i].BoundAfter(greedy.state[i].selected_units);
    li_bound[i] = sig.miss_bound[i];
  }
  sig.valid = greedy.reached;
  FinalizeSignature(&sig, params, li_bound);
  return sig;
}

}  // namespace silkmoth
