#include "util/zipf.h"

#include <vector>

#include <gtest/gtest.h>

namespace silkmoth {
namespace {

TEST(ZipfTest, PmfSumsToOne) {
  ZipfDistribution zipf(100, 1.0);
  double sum = 0.0;
  for (size_t k = 0; k < 100; ++k) sum += zipf.Pmf(k);
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(ZipfTest, PmfMonotoneDecreasing) {
  ZipfDistribution zipf(50, 1.2);
  for (size_t k = 1; k < 50; ++k) {
    EXPECT_LE(zipf.Pmf(k), zipf.Pmf(k - 1) + 1e-15) << "rank " << k;
  }
}

TEST(ZipfTest, ZeroSkewIsUniform) {
  ZipfDistribution zipf(10, 0.0);
  for (size_t k = 0; k < 10; ++k) EXPECT_NEAR(zipf.Pmf(k), 0.1, 1e-12);
}

TEST(ZipfTest, SamplesStayInRange) {
  ZipfDistribution zipf(37, 1.0);
  Rng rng(5);
  for (int i = 0; i < 2000; ++i) EXPECT_LT(zipf.Sample(&rng), 37u);
}

TEST(ZipfTest, SampleFrequenciesTrackPmf) {
  const size_t n = 20;
  ZipfDistribution zipf(n, 1.0);
  Rng rng(6);
  std::vector<int> counts(n, 0);
  const int trials = 40000;
  for (int i = 0; i < trials; ++i) counts[zipf.Sample(&rng)]++;
  // First rank should be the most common and close to its pmf.
  EXPECT_NEAR(static_cast<double>(counts[0]) / trials, zipf.Pmf(0), 0.02);
  EXPECT_GT(counts[0], counts[n - 1]);
}

TEST(ZipfTest, SingleRank) {
  ZipfDistribution zipf(1, 2.0);
  Rng rng(8);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(zipf.Sample(&rng), 0u);
  EXPECT_NEAR(zipf.Pmf(0), 1.0, 1e-12);
}

TEST(ZipfTest, PmfOutOfRangeIsZero) {
  ZipfDistribution zipf(5, 1.0);
  EXPECT_EQ(zipf.Pmf(5), 0.0);
  EXPECT_EQ(zipf.Pmf(100), 0.0);
}

class ZipfSkewSweep : public ::testing::TestWithParam<double> {};

TEST_P(ZipfSkewSweep, HigherSkewConcentratesMass) {
  const double skew = GetParam();
  ZipfDistribution zipf(64, skew);
  double sum = 0.0;
  for (size_t k = 0; k < 64; ++k) sum += zipf.Pmf(k);
  EXPECT_NEAR(sum, 1.0, 1e-9);
  if (skew > 0.0) {
    EXPECT_GT(zipf.Pmf(0), 1.0 / 64.0);  // Head above uniform.
  }
}

INSTANTIATE_TEST_SUITE_P(Skews, ZipfSkewSweep,
                         ::testing::Values(0.0, 0.5, 0.8, 1.0, 1.5, 2.0));

}  // namespace
}  // namespace silkmoth
