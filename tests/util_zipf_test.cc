#include "util/zipf.h"

#include <vector>

#include <gtest/gtest.h>

namespace silkmoth {
namespace {

TEST(ZipfTest, PmfSumsToOne) {
  ZipfDistribution zipf(100, 1.0);
  double sum = 0.0;
  for (size_t k = 0; k < 100; ++k) sum += zipf.Pmf(k);
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(ZipfTest, PmfMonotoneDecreasing) {
  ZipfDistribution zipf(50, 1.2);
  for (size_t k = 1; k < 50; ++k) {
    EXPECT_LE(zipf.Pmf(k), zipf.Pmf(k - 1) + 1e-15) << "rank " << k;
  }
}

TEST(ZipfTest, ZeroSkewIsUniform) {
  // The CDF is quantized to 2^-32 fixed point, so per-rank mass matches the
  // analytic value to the quantization step, not to double precision.
  ZipfDistribution zipf(10, 0.0);
  for (size_t k = 0; k < 10; ++k) EXPECT_NEAR(zipf.Pmf(k), 0.1, 1e-9);
}

TEST(ZipfTest, SamplesStayInRange) {
  ZipfDistribution zipf(37, 1.0);
  Rng rng(5);
  for (int i = 0; i < 2000; ++i) EXPECT_LT(zipf.Sample(&rng), 37u);
}

TEST(ZipfTest, SampleFrequenciesTrackPmf) {
  const size_t n = 20;
  ZipfDistribution zipf(n, 1.0);
  Rng rng(6);
  std::vector<int> counts(n, 0);
  const int trials = 40000;
  for (int i = 0; i < trials; ++i) counts[zipf.Sample(&rng)]++;
  // First rank should be the most common and close to its pmf.
  EXPECT_NEAR(static_cast<double>(counts[0]) / trials, zipf.Pmf(0), 0.02);
  EXPECT_GT(counts[0], counts[n - 1]);
}

TEST(ZipfTest, SingleRank) {
  ZipfDistribution zipf(1, 2.0);
  Rng rng(8);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(zipf.Sample(&rng), 0u);
  EXPECT_NEAR(zipf.Pmf(0), 1.0, 1e-12);
}

TEST(ZipfTest, PmfOutOfRangeIsZero) {
  ZipfDistribution zipf(5, 1.0);
  EXPECT_EQ(zipf.Pmf(5), 0.0);
  EXPECT_EQ(zipf.Pmf(100), 0.0);
}

// --- Golden streams: platform/compiler independence -------------------------
// The bench harness's workload generators promise byte-identical request
// streams across platforms (docs/WORKLOADS.md), which bottoms out here: the
// sampler must emit exactly these ranks for these seeds, on every libm and
// compiler. The CDF quantization (2^-32 grid) is what absorbs libm ulp
// differences in the one-time pow() pass; the sampling path itself is pure
// integer. If one of these fails on a new platform, the quantization
// guarantee is broken — do not just re-pin the values.

TEST(ZipfGoldenStream, SkewedStreamIsPinned) {
  ZipfDistribution zipf(16, 0.99);
  Rng rng(42);
  const size_t expected[32] = {0, 1, 5, 12, 15, 7, 5, 9, 6, 3, 5,  0, 7, 1,
                               5, 10, 4, 9, 5, 5, 0, 0, 1, 3, 1,  2, 1, 7,
                               4, 0, 1, 4};
  for (size_t i = 0; i < 32; ++i) {
    EXPECT_EQ(zipf.Sample(&rng), expected[i]) << "sample " << i;
  }
}

TEST(ZipfGoldenStream, UniformStreamIsPinned) {
  ZipfDistribution zipf(1000, 0.0);
  Rng rng(7);
  const size_t expected[16] = {700, 278, 839, 981, 990, 872, 60,  104,
                               403, 151, 541, 731, 938, 880, 451, 560};
  for (size_t i = 0; i < 16; ++i) {
    EXPECT_EQ(zipf.Sample(&rng), expected[i]) << "sample " << i;
  }
}

TEST(ZipfGoldenStream, QuantizedCdfSumsExactlyToOne) {
  // back() is forced to 2^32, so the realized masses sum to exactly 1.0 —
  // no rounding drift for any n or skew.
  for (double skew : {0.0, 0.5, 0.99, 1.5}) {
    ZipfDistribution zipf(257, skew);
    double sum = 0.0;
    for (size_t k = 0; k < 257; ++k) sum += zipf.Pmf(k);
    EXPECT_EQ(sum, 1.0) << "skew " << skew;
  }
}

TEST(ZipfGoldenStream, SameSeedSameStream) {
  ZipfDistribution zipf(64, 0.8);
  Rng a(123), b(123);
  for (int i = 0; i < 500; ++i) EXPECT_EQ(zipf.Sample(&a), zipf.Sample(&b));
}

class ZipfSkewSweep : public ::testing::TestWithParam<double> {};

TEST_P(ZipfSkewSweep, HigherSkewConcentratesMass) {
  const double skew = GetParam();
  ZipfDistribution zipf(64, skew);
  double sum = 0.0;
  for (size_t k = 0; k < 64; ++k) sum += zipf.Pmf(k);
  EXPECT_NEAR(sum, 1.0, 1e-9);
  if (skew > 0.0) {
    EXPECT_GT(zipf.Pmf(0), 1.0 / 64.0);  // Head above uniform.
  }
}

INSTANTIATE_TEST_SUITE_P(Skews, ZipfSkewSweep,
                         ::testing::Values(0.0, 0.5, 0.8, 1.0, 1.5, 2.0));

}  // namespace
}  // namespace silkmoth
