#include "text/token_dictionary.h"

namespace silkmoth {

TokenId TokenDictionary::Intern(std::string_view token) {
  auto it = ids_.find(token);
  if (it != ids_.end()) return it->second;
  TokenId id = static_cast<TokenId>(tokens_.size());
  arena_.emplace_back(token);
  tokens_.push_back(arena_.back());
  ids_.emplace(tokens_.back(), id);
  return id;
}

TokenId TokenDictionary::Lookup(std::string_view token) const {
  auto it = ids_.find(token);
  if (it == ids_.end()) return kInvalidToken;
  return it->second;
}

std::string TokenDictionary::AdoptTokens(
    std::vector<std::string_view> tokens) {
  if (!tokens_.empty()) return "dictionary is not empty";
  ids_.reserve(tokens.size());
  for (size_t i = 0; i < tokens.size(); ++i) {
    auto [it, inserted] = ids_.emplace(tokens[i], static_cast<TokenId>(i));
    if (!inserted) {
      ids_.clear();
      return "duplicate token '" + std::string(tokens[i]) + "'";
    }
  }
  tokens_ = std::move(tokens);
  return "";
}

}  // namespace silkmoth
