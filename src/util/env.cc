#include "util/env.h"

#include <cstdlib>

namespace silkmoth {

long long GetEnvInt(const std::string& name, long long fallback) {
  const char* raw = std::getenv(name.c_str());
  if (raw == nullptr) return fallback;
  char* end = nullptr;
  long long v = std::strtoll(raw, &end, 10);
  if (end == raw) return fallback;
  return v;
}

double GetEnvDouble(const std::string& name, double fallback) {
  const char* raw = std::getenv(name.c_str());
  if (raw == nullptr) return fallback;
  char* end = nullptr;
  double v = std::strtod(raw, &end);
  if (end == raw) return fallback;
  return v;
}

double BenchScale() { return GetEnvDouble("SILKMOTH_BENCH_SCALE", 1.0); }

}  // namespace silkmoth
